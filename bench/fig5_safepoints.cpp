/**
 * @file
 * Figure 5 reproduction: preemption overhead of two *precise*
 * mechanisms — Concord-style compiler polling and xUI hardware
 * safepoints — plus imprecise UIPI, on matmul and base64, across
 * preemption quanta. Overhead = extra cycles to commit the same
 * instruction count vs the uninstrumented, uninterrupted program.
 */

#include <functional>
#include <iostream>

#include "bench_util.hh"
#include "obs_util.hh"
#include "stats/table.hh"
#include "uarch/uarch_system.hh"
#include "workloads/kernels.hh"

using namespace xui;

namespace
{

/** Instructions per hot-loop iteration (loop body incl. back-edge). */
double
instsPerIter(const Program &prog)
{
    for (std::uint32_t pc = 0; pc < prog.size(); ++pc) {
        const MacroOp &op = prog.at(pc);
        if (op.opcode == MacroOpcode::Branch &&
            op.branch.kind == BranchKind::Loop)
            return static_cast<double>(pc + 1);
    }
    return static_cast<double>(prog.size());
}

/** Cycles per hot-loop iteration under the given configuration. */
double
runCase(const std::function<Program(const KernelOptions &)> &make,
        Instrumentation instr, DeliveryStrategy strategy,
        bool safepoint_mode, bool use_timer, Cycles quantum,
        std::uint64_t insts)
{
    KernelOptions kopts;
    kopts.instr = instr;
    // Handler models a user-level scheduler entry + context switch.
    kopts.handlerWork = 24;
    Program prog = make(kopts);
    double per_iter = instsPerIter(prog);

    CoreParams params;
    params.strategy = strategy;
    params.safepointMode = safepoint_mode;
    UarchSystem sys(7);
    OooCore &core = sys.addCore(params, &prog);
    if (use_timer) {
        core.kbTimer().configure(true, 0x21);
        core.kbTimer().setTimer(0, quantum, KbTimerMode::Periodic);
    }
    Cycles cycles = core.runUntilCommitted(insts, insts * 900);

    // Polling preemption: the instrumented program also takes a
    // preemption every quantum; model the taken-poll path as the
    // same handler work via per-event cost (poll hit + user switch).
    if (instr == Instrumentation::Polling) {
        double events = static_cast<double>(cycles) /
            static_cast<double>(quantum);
        cycles += static_cast<Cycles>(events * 160.0);
    }

    double iters = static_cast<double>(
        core.stats().committedInsts) / per_iter;
    return static_cast<double>(cycles) / iters;
}

} // namespace

int
main(int argc, char **argv)
{
    auto opts = bench::parseArgs(argc, argv);
    bench::banner(
        "Figure 5: Preemption with hardware safepoints",
        "xUI paper, Fig. 5 (matmul/base64; polling vs UIPI vs xUI "
        "safepoints)");

    std::uint64_t insts = opts.quick ? 60000 : 300000;

    struct Bench
    {
        const char *name;
        std::function<Program(const KernelOptions &)> make;
    };
    const Bench benches[] = {
        {"matmul",
         [](const KernelOptions &o) { return makeMatmul(o); }},
        {"base64",
         [](const KernelOptions &o) { return makeBase64(o); }},
    };

    for (const auto &b : benches) {
        // Uninstrumented, uninterrupted baseline: cycles per loop
        // iteration of the plain kernel.
        double base_per_iter =
            runCase(b.make, Instrumentation::None,
                    DeliveryStrategy::Flush, false, false, 1,
                    insts);

        TablePrinter t(std::string("Preemption overhead: ") +
                       b.name + " (% slowdown vs plain, per loop "
                       "iteration)");
        t.setHeader({"Quantum", "Polling (Concord)",
                     "UIPI (imprecise)", "xUI HW safepoints"});
        for (double us : {5.0, 10.0, 20.0, 50.0, 100.0}) {
            Cycles q = usToCycles(us);
            double poll = runCase(b.make, Instrumentation::Polling,
                                  DeliveryStrategy::Flush, false,
                                  false, q, insts);
            double uipi = runCase(b.make, Instrumentation::None,
                                  DeliveryStrategy::Flush, false,
                                  true, q, insts);
            double sp = runCase(b.make, Instrumentation::Safepoint,
                                DeliveryStrategy::Tracked, true,
                                true, q, insts);
            auto fmt = [&](double v) {
                double pct = (v - base_per_iter) / base_per_iter *
                    100.0;
                return TablePrinter::num(pct < 0 ? 0 : pct, 2) + "%";
            };
            t.addRow({TablePrinter::num(us, 0) + " us", fmt(poll),
                      fmt(uipi), fmt(sp)});
        }
        t.print(std::cout);
        std::cout << '\n';
    }
    std::cout << "(Paper at 5us: safepoints 1.2-1.5%, polling "
                 "8.5-11%, UIPI in between and imprecise.)\n";

    ObsSession obs(opts.metricsJson, opts.traceJson);
    bench::runObsScenario(obs, opts);
    return obs.finish();
}
