/**
 * @file
 * Section 6.1 "Maximum interrupt latency" reproduction: tracked
 * interrupts never discard work, but their delivery can be delayed
 * by in-flight instructions. The pathological case fills the pipe
 * with a long chain of cache-missing loads whose final value feeds
 * the stack pointer — which the delivery microcode reads. Sweeps
 * chain length, with and without the SP dependence, comparing
 * tracked and flush delivery latency.
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "obs_util.hh"
#include "des/simulation.hh"
#include "os/kernel.hh"
#include "stats/rng.hh"
#include "stats/summary.hh"
#include "stats/table.hh"
#include "uarch/uarch_system.hh"
#include "verify/bound.hh"
#include "workloads/kernels.hh"

using namespace xui;

namespace
{

double
measureDeliveryLatency(unsigned chain, bool feed_sp,
                       DeliveryStrategy strategy, bool quick)
{
    // 8 MB working set: chain loads miss L1/L2 and hit the LLC,
    // as in the paper's experiment.
    Program prog = makePointerChase(chain, 8ull << 20, feed_sp);
    CoreParams params;
    params.strategy = strategy;
    UarchSystem sys(9);
    OooCore &core = sys.addCore(params, &prog);
    core.kbTimer().configure(true, 0x21);

    SummaryStats lat;
    unsigned samples = quick ? 4 : 12;
    for (unsigned i = 0; i < samples; ++i) {
        core.runCycles(30000);  // refill the pipe with the chain
        std::size_t before = core.stats().intrRecords.size();
        core.kbTimer().setTimer(core.now(), core.now() + 50,
                                KbTimerMode::OneShot);
        core.runCycles(400000);
        if (core.stats().intrRecords.size() > before) {
            // Latency to the handler *starting to execute* — with
            // tracking this precedes retirement of older work.
            const auto &r = core.stats().intrRecords.back();
            lat.add(static_cast<double>(r.deliveryExecAt -
                                        r.raisedAt));
        }
    }
    return lat.max();
}

/**
 * Mixed-criticality co-tenancy (--rt-vector): one resident receiver
 * shares its core between three best-effort vectors with long
 * handler frames and one latency-critical (RT) vector at the
 * --priority level, all routed through the kernel's occupancy
 * engine. The sweep adversarially searches the worst observed
 * raise -> handler-start latency over many seeds and sender phase
 * offsets, and checks every observation against the analytical
 * bound from computeDeliveryBounds.
 * @return 0 when every observation stayed under its bound.
 */
int
runCoTenancy(const bench::Options &opts)
{
    struct Tenant
    {
        unsigned vector;
        unsigned priority;
        Cycles cost;
        Cycles period;
    };
    std::vector<Tenant> tenants = {
        {1, 0, 5000, 20000},
        {2, 1, 2500, 15000},
        {3, 2, 1200, 12000},
    };
    const unsigned rt_vector =
        static_cast<unsigned>(opts.rtVector);
    const unsigned rt_priority =
        static_cast<unsigned>(opts.rtPriority);
    // The RT vector joins the tenancy; same-vector collisions with
    // a best-effort tenant are rejected up front.
    for (const Tenant &t : tenants) {
        if (t.vector == rt_vector) {
            std::cerr << "--rt-vector " << rt_vector
                      << " collides with a best-effort tenant "
                         "(vectors 1-3)\n";
            return 2;
        }
    }
    tenants.push_back({rt_vector, rt_priority, 200, 6000});

    CostModel costs;
    std::vector<VectorProfile> profiles;
    for (const Tenant &t : tenants) {
        VectorProfile p;
        p.vector = t.vector;
        p.priority = t.priority;
        p.handlerCost = t.cost;
        p.minInterArrival = t.period;
        profiles.push_back(p);
    }
    std::vector<DeliveryBound> bounds =
        computeDeliveryBounds(costs, profiles);

    BoundChecker checker;
    bool diverged = false;
    for (const DeliveryBound &b : bounds) {
        if (!b.converged) {
            std::cerr << "analytical bound diverged for vector "
                      << b.vector << " (overload)\n";
            diverged = true;
            continue;
        }
        checker.setBound(b.vector, b.priority, b.bound);
    }
    if (diverged)
        return 1;

    const unsigned trials = opts.quick ? 8 : 32;
    const Cycles horizon = opts.quick ? 200000 : 1000000;
    std::uint64_t delivered = 0;
    for (unsigned trial = 0; trial < trials; ++trial) {
        Simulation sim(opts.seed + trial);
        Kernel kernel(sim, costs, 2);
        kernel.setEngineRaiseHook(
            [&checker](unsigned v, unsigned prio, Cycles now) {
                checker.onRaise(v, prio, now);
            });
        kernel.setEngineDeliverHook(
            [&checker](unsigned v, Cycles now) {
                checker.onDeliver(v, now);
            });

        ThreadId recv = kernel.createThread();
        kernel.registerHandler(recv, [](unsigned) {});
        kernel.scheduleOn(recv, 1);

        Rng rng(opts.seed * 0x9e3779b97f4a7c15ull + trial);
        for (const Tenant &t : tenants) {
            int idx = kernel.registerSender(
                recv, static_cast<std::uint8_t>(t.vector));
            if (idx < 0) {
                std::cerr << "registerSender failed\n";
                return 1;
            }
            DeliveryPolicy p;
            p.priority = clampPriority(t.priority);
            kernel.setDeliveryPolicy(recv, t.vector, p);
            kernel.setHandlerCost(recv, t.vector, t.cost);
            // Adversarial phase: each tenant's periodic stream
            // starts at a random offset inside its period, so the
            // grid of trials hunts alignments where the RT arrival
            // lands just after a long frame started.
            Cycles phase = 1 + rng.nextBounded(t.period);
            for (Cycles at = phase; at < horizon; at += t.period) {
                sim.queue().scheduleAt(at, [&kernel, idx] {
                    kernel.senduipi(idx);
                });
            }
        }

        // Drain every in-flight frame: leftover raises would
        // FIFO-mismatch against the next trial's timeline.
        for (;;) {
            Cycles next = sim.queue().peekNextTime();
            if (next == EventQueue::kNoPending)
                break;
            sim.runUntil(next);
        }
        delivered = checker.matched();
    }

    TablePrinter t("Co-tenancy: observed vs analytical worst-case "
                   "delivery latency (cycles)");
    t.setHeader({"Vector", "Priority", "Analytical bound",
                 "Observed max", "Headroom %"});
    for (const DeliveryBound &b : bounds) {
        Cycles obs = checker.maxObservedVector(b.vector);
        double headroom = b.bound == 0
            ? 0.0
            : 100.0 *
                static_cast<double>(b.bound - std::min(obs, b.bound)) /
                static_cast<double>(b.bound);
        t.addRow({TablePrinter::integer(b.vector),
                  TablePrinter::integer(b.priority),
                  TablePrinter::integer(b.bound),
                  TablePrinter::integer(obs),
                  TablePrinter::num(headroom, 1)});
    }
    t.print(std::cout);
    std::cout << "\nMatched deliveries (last trial cumulative): "
              << delivered << "\n";

    if (!checker.ok()) {
        std::cout << "\nBOUND VIOLATIONS:\n";
        for (const auto &v : checker.violations())
            std::cout << "  " << v << "\n";
        return 1;
    }
    std::cout << "\nEvery observed latency stayed under its "
                 "analytical bound.\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    auto opts = bench::parseArgs(argc, argv);
    if (opts.rtVector != 256) {
        bench::banner(
            "Mixed-criticality co-tenancy: checked worst-case "
            "delivery bound",
            "priority preemption extension; RT vector vs "
            "best-effort handler frames");
        return runCoTenancy(opts);
    }
    bench::banner(
        "Section 6.1: Maximum interrupt latency (pathological case)",
        "xUI paper, worst-case tracked delivery under a long "
        "SP-feeding miss chain");

    TablePrinter t("Worst-case delivery latency (cycles) vs chain "
                   "length");
    t.setHeader({"Chain loads", "Tracked (SP feed)",
                 "Tracked (no SP)", "Flush (SP feed)"});
    for (unsigned chain : {10u, 20u, 30u, 50u}) {
        double tracked_sp = measureDeliveryLatency(
            chain, true, DeliveryStrategy::Tracked, opts.quick);
        double tracked_nosp = measureDeliveryLatency(
            chain, false, DeliveryStrategy::Tracked, opts.quick);
        double flush_sp = measureDeliveryLatency(
            chain, true, DeliveryStrategy::Flush, opts.quick);
        t.addRow({TablePrinter::integer(chain),
                  TablePrinter::num(tracked_sp, 0),
                  TablePrinter::num(tracked_nosp, 0),
                  TablePrinter::num(flush_sp, 0)});
    }
    t.print(std::cout);
    std::cout
        << "\nPaper anchors: ~7000-cycle worst case for tracking "
           "with a >=50-deep chain feeding\nSP; flushing is an order "
           "of magnitude lower there (it squashes the chain), while\n"
           "on typical workloads tracking is faster (see fig4 "
           "bench).\n";

    ObsSession obs(opts.metricsJson, opts.traceJson);
    bench::runObsScenario(obs, opts);
    return obs.finish();
}
