/**
 * @file
 * Section 6.1 "Maximum interrupt latency" reproduction: tracked
 * interrupts never discard work, but their delivery can be delayed
 * by in-flight instructions. The pathological case fills the pipe
 * with a long chain of cache-missing loads whose final value feeds
 * the stack pointer — which the delivery microcode reads. Sweeps
 * chain length, with and without the SP dependence, comparing
 * tracked and flush delivery latency.
 */

#include <iostream>

#include "bench_util.hh"
#include "obs_util.hh"
#include "stats/summary.hh"
#include "stats/table.hh"
#include "uarch/uarch_system.hh"
#include "workloads/kernels.hh"

using namespace xui;

namespace
{

double
measureDeliveryLatency(unsigned chain, bool feed_sp,
                       DeliveryStrategy strategy, bool quick)
{
    // 8 MB working set: chain loads miss L1/L2 and hit the LLC,
    // as in the paper's experiment.
    Program prog = makePointerChase(chain, 8ull << 20, feed_sp);
    CoreParams params;
    params.strategy = strategy;
    UarchSystem sys(9);
    OooCore &core = sys.addCore(params, &prog);
    core.kbTimer().configure(true, 0x21);

    SummaryStats lat;
    unsigned samples = quick ? 4 : 12;
    for (unsigned i = 0; i < samples; ++i) {
        core.runCycles(30000);  // refill the pipe with the chain
        std::size_t before = core.stats().intrRecords.size();
        core.kbTimer().setTimer(core.now(), core.now() + 50,
                                KbTimerMode::OneShot);
        core.runCycles(400000);
        if (core.stats().intrRecords.size() > before) {
            // Latency to the handler *starting to execute* — with
            // tracking this precedes retirement of older work.
            const auto &r = core.stats().intrRecords.back();
            lat.add(static_cast<double>(r.deliveryExecAt -
                                        r.raisedAt));
        }
    }
    return lat.max();
}

} // namespace

int
main(int argc, char **argv)
{
    auto opts = bench::parseArgs(argc, argv);
    bench::banner(
        "Section 6.1: Maximum interrupt latency (pathological case)",
        "xUI paper, worst-case tracked delivery under a long "
        "SP-feeding miss chain");

    TablePrinter t("Worst-case delivery latency (cycles) vs chain "
                   "length");
    t.setHeader({"Chain loads", "Tracked (SP feed)",
                 "Tracked (no SP)", "Flush (SP feed)"});
    for (unsigned chain : {10u, 20u, 30u, 50u}) {
        double tracked_sp = measureDeliveryLatency(
            chain, true, DeliveryStrategy::Tracked, opts.quick);
        double tracked_nosp = measureDeliveryLatency(
            chain, false, DeliveryStrategy::Tracked, opts.quick);
        double flush_sp = measureDeliveryLatency(
            chain, true, DeliveryStrategy::Flush, opts.quick);
        t.addRow({TablePrinter::integer(chain),
                  TablePrinter::num(tracked_sp, 0),
                  TablePrinter::num(tracked_nosp, 0),
                  TablePrinter::num(flush_sp, 0)});
    }
    t.print(std::cout);
    std::cout
        << "\nPaper anchors: ~7000-cycle worst case for tracking "
           "with a >=50-deep chain feeding\nSP; flushing is an order "
           "of magnitude lower there (it squashes the chain), while\n"
           "on typical workloads tracking is faster (see fig4 "
           "bench).\n";

    ObsSession obs(opts.metricsJson, opts.traceJson);
    bench::runObsScenario(obs, opts);
    return obs.finish();
}
