/**
 * @file
 * Table 2 reproduction: key performance metrics of UIPI, measured on
 * the cycle-tier simulator and printed against the paper's Sapphire
 * Rapids measurements. Also prints the §2 mechanism comparison
 * (signals / polling / UIPI).
 */

#include <iostream>

#include "bench_util.hh"
#include "core/calibration.hh"
#include "obs_util.hh"
#include "os/cost_model.hh"
#include "stats/table.hh"

using namespace xui;

int
main(int argc, char **argv)
{
    auto opts = bench::parseArgs(argc, argv);
    bench::banner("Table 2: Key performance metrics of UIPIs",
                  "xUI paper, Table 2 + Section 2 measurements");

    CalibrationResult c = calibrateFromCycleSim(opts.quick);

    TablePrinter t("Table 2 (cycles @ 2 GHz)");
    t.setHeader({"Metric", "Paper (SPR)", "Simulated", "Notes"});
    t.addRow({"End-to-End Latency", "1360",
              TablePrinter::num(c.endToEndLatency, 0),
              "senduipi start -> handler entry"});
    t.addRow({"Receiver Cost", "720",
              TablePrinter::num(c.receiverCostFlush, 0),
              "flush-based delivery occupancy"});
    t.addRow({"SENDUIPI", "383",
              TablePrinter::num(c.senduipiCost, 0),
              "tight senduipi loop throughput"});
    t.addRow({"CLUI", "2", TablePrinter::num(c.cluiCost, 0), ""});
    t.addRow({"STUI", "32", TablePrinter::num(c.stuiCost, 0), ""});
    t.print(std::cout);

    CostModel costs;
    TablePrinter m("\nSection 2: notification mechanism comparison "
                   "(receiver-side cycles per event)");
    m.setHeader({"Mechanism", "Paper", "This repo", "Notes"});
    m.addRow({"Signal", "~4800 (2.4us)",
              TablePrinter::integer(
                  static_cast<std::int64_t>(costs.signalReceive)),
              "OS context switches dominate"});
    m.addRow({"UIPI (flush)", "600-900",
              TablePrinter::num(c.receiverCostFlush, 0),
              "3x-5x cheaper than signals"});
    m.addRow({"Polling hit", "~100",
              TablePrinter::integer(
                  static_cast<std::int64_t>(costs.pollNotify)),
              "miss + branch mispredict"});
    m.addRow({"Polling check", "~3",
              TablePrinter::integer(
                  static_cast<std::int64_t>(costs.pollCheck)),
              "L1 hit + predicted branch"});
    m.addRow({"xUI tracked IPI", "231",
              TablePrinter::num(c.receiverCostTracked, 0), ""});
    m.addRow({"xUI KB timer", "105",
              TablePrinter::num(c.receiverCostKbTimer, 0),
              "no UPID access"});
    m.print(std::cout);

    ObsSession obs(opts.metricsJson, opts.traceJson);
    bench::runObsScenario(obs, opts);
    return obs.finish();
}
