/**
 * @file
 * Figure 7 reproduction: RocksDB-on-Aspen throughput/tail-latency
 * under the bimodal workload (99.5% GET @1.2us, 0.5% SCAN @580us),
 * comparing no-preemption, UIPI + dedicated timer core, and xUI
 * (KB timer + tracking) at a 5us quantum. Prints p99 per type across
 * an offered-load sweep and the maximum load meeting a 1 ms GET SLO.
 */

#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "kv/server.hh"
#include "obs/session.hh"
#include "obs_util.hh"
#include "overload_util.hh"
#include "stats/table.hh"

using namespace xui;

namespace
{

const PreemptMode kModes[] = {PreemptMode::None,
                              PreemptMode::UipiSwTimer,
                              PreemptMode::XuiKbTimer};
const char *kModeNames[] = {"No preemption", "UIPI SW Timer",
                            "xUI (KB+Track)"};

/**
 * Saturation frontier (--offered-load): push the open-loop offered
 * load past saturation and compare the fixed 5us quantum against
 * the load-adaptive quantum (--policy adaptive) on the xUI server.
 */
int
runOverloadFrontier(const bench::Options &opts)
{
    bench::banner(
        "RocksDB saturation frontier (overload survival)",
        "fixed vs adaptive preemption quantum past saturation");

    Cycles duration = (opts.quick ? 60 : 300) * kCyclesPerMs;
    std::vector<std::string> policies;
    if (opts.policyGiven)
        policies = {opts.policy.name};
    else
        policies = {"off", "adaptive"};
    std::vector<double> fracs = bench::loadLadder(opts.offeredLoad);

    for (const std::string &policy : policies) {
        bench::PolicyChoice pc;
        bool ok = bench::parsePolicyName(policy.c_str(), pc);
        (void)ok;
        TablePrinter t("policy = " + policy +
                       " (xUI KB timer, 1 worker core)");
        t.setHeader({"Load (rps)", "GET p99 us", "SCAN p99 us",
                     "Achieved rps", "Util"});
        for (double frac : fracs) {
            KvServerConfig cfg;
            cfg.mode = PreemptMode::XuiKbTimer;
            cfg.offeredLoadRps = frac * bench::kKvSaturationRps;
            cfg.duration = duration;
            cfg.seed = opts.seed;
            bench::applyPolicy(cfg, pc);
            KvServerResult r = runKvServer(cfg);
            t.addRow(
                {TablePrinter::num(cfg.offeredLoadRps, 0),
                 TablePrinter::num(
                     cyclesToUs(
                         static_cast<Cycles>(r.getLatency.p99())),
                     0),
                 TablePrinter::num(
                     cyclesToUs(
                         static_cast<Cycles>(r.scanLatency.p99())),
                     0),
                 TablePrinter::num(r.achievedRps, 0),
                 TablePrinter::percent(r.workerUtilization, 1)});
        }
        t.print(std::cout);
        std::cout << '\n';
    }

    // Observability run at the full overload point.
    ObsSession obs(opts.metricsJson, opts.traceJson);
    if (obs.enabled()) {
        bench::PolicyChoice pc = opts.policy;
        if (!opts.policyGiven)
            bench::parsePolicyName("adaptive", pc);
        KvServerConfig cfg;
        cfg.mode = PreemptMode::XuiKbTimer;
        cfg.offeredLoadRps =
            opts.offeredLoad * bench::kKvSaturationRps;
        cfg.duration = (opts.quick ? 20 : 100) * kCyclesPerMs;
        cfg.seed = opts.seed;
        cfg.metrics = obs.metrics();
        cfg.traceOut = obs.trace();
        bench::applyPolicy(cfg, pc);
        runKvServer(cfg);
    }
    bench::runObsScenario(obs, opts);
    return obs.finish();
}

} // namespace

int
main(int argc, char **argv)
{
    auto opts = bench::parseArgs(argc, argv);
    if (opts.offeredLoad > 0.0)
        return runOverloadFrontier(opts);
    bench::banner(
        "Figure 7: Improving RocksDB throughput",
        "xUI paper, Fig. 7 (GET/SCAN p99 vs offered load, 5us "
        "quantum)");

    Cycles duration = (opts.quick ? 100 : 600) * kCyclesPerMs;
    const double loads[] = {20000,  60000,  100000, 140000,
                            170000, 190000, 205000, 215000,
                            225000, 235000, 240000, 245000,
                            250000, 255000, 260000, 265000,
                            270000};

    double slo_capacity[3] = {0, 0, 0};
    TablePrinter t("GET p99 / SCAN p99 (us) vs offered load "
                   "(requests/s), 1 worker core");
    t.setHeader({"Load (rps)", "None GET", "None SCAN", "UIPI GET",
                 "UIPI SCAN", "xUI GET", "xUI SCAN"});
    for (double load : loads) {
        std::vector<std::string> row{TablePrinter::num(load, 0)};
        for (std::size_t m = 0; m < 3; ++m) {
            KvServerConfig cfg;
            cfg.mode = kModes[m];
            cfg.offeredLoadRps = load;
            cfg.duration = duration;
            cfg.seed = opts.seed;
            KvServerResult r = runKvServer(cfg);
            double get_p99 = cyclesToUs(
                static_cast<Cycles>(r.getLatency.p99()));
            double scan_p99 = cyclesToUs(
                static_cast<Cycles>(r.scanLatency.p99()));
            row.push_back(TablePrinter::num(get_p99, 0));
            row.push_back(TablePrinter::num(scan_p99, 0));
            // Useful capacity: the GET tail meets the 1 ms SLO and
            // the server actually sustains the offered rate.
            if (get_p99 <= 1000.0 && r.completed > 100 &&
                r.achievedRps >= 0.97 * load)
                slo_capacity[m] = load;
        }
        t.addRow(row);
    }
    t.print(std::cout);

    TablePrinter s("\nMax load meeting 1 ms GET p99 SLO");
    s.setHeader({"Configuration", "Capacity (rps)", "Timer core",
                 "Paper result"});
    const char *paper[] = {
        "tail blows up at low load",
        "low tail up to >100k rps, +1 core burned",
        "+10% GET throughput over UIPI, no timer core"};
    for (std::size_t m = 0; m < 3; ++m) {
        KvServerConfig cfg;
        cfg.mode = kModes[m];
        cfg.offeredLoadRps = slo_capacity[m];
        cfg.duration = duration;
        cfg.seed = opts.seed;
        KvServerResult r;
        if (slo_capacity[m] > 0)
            r = runKvServer(cfg);
        s.addRow({kModeNames[m],
                  TablePrinter::num(slo_capacity[m], 0),
                  kModes[m] == PreemptMode::UipiSwTimer
                      ? "+1 dedicated core (" +
                            TablePrinter::percent(
                                r.timerCoreUtilization, 0) +
                            " senduipi)"
                      : "none",
                  paper[m]});
    }
    s.print(std::cout);
    if (slo_capacity[1] > 0) {
        double gain = (slo_capacity[2] - slo_capacity[1]) /
            slo_capacity[1] * 100.0;
        std::cout << "\nxUI vs UIPI capacity at the SLO: "
                  << TablePrinter::num(gain, 1)
                  << "% (paper: ~10%), plus the freed timer core.\n";
    }

    // Observability run: one xUI server run with kv.* metrics and
    // the DES event stream attached.
    ObsSession obs(opts.metricsJson, opts.traceJson);
    if (obs.enabled()) {
        KvServerConfig cfg;
        cfg.mode = PreemptMode::XuiKbTimer;
        cfg.offeredLoadRps = 100000;
        cfg.duration = (opts.quick ? 20 : 100) * kCyclesPerMs;
        cfg.seed = opts.seed;
        cfg.metrics = obs.metrics();
        cfg.traceOut = obs.trace();
        runKvServer(cfg);
    }
    bench::runObsScenario(obs, opts);
    return obs.finish();
}
