/**
 * @file
 * Overload-survival reference benchmark (BENCH_overload.json).
 *
 * Runs the saturation frontiers the fig7/fig8 overload sections
 * expose — l3fwd under each delivery policy at and past saturation,
 * the KV server with fixed vs adaptive quantum — on fixed seeds and
 * quick-sized durations, prints the frontier, and emits
 * BENCH_overload.json (cwd) as the committed reference. The run
 * also enforces the overload-survival acceptance bar: with ITR
 * moderation enabled at the 2x point, l3fwd must sustain at least
 * the unmoderated policy's peak throughput (exit 1 otherwise), so
 * CI fails if moderation ever costs peak throughput.
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "kv/server.hh"
#include "net/l3fwd.hh"
#include "overload_util.hh"
#include "stats/table.hh"

using namespace xui;

namespace
{

struct L3Point
{
    std::string policy;
    double load = 0.0;
    L3FwdResult r;
};

struct KvPoint
{
    std::string policy;
    double loadRps = 0.0;
    KvServerResult r;
};

void
writeJson(const char *path, const std::vector<L3Point> &l3,
          const std::vector<KvPoint> &kv, bool sustains,
          const bench::Options &opts)
{
    std::FILE *f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return;
    }
    std::fprintf(f, "{\n  \"bench\": \"overload\",\n");
    std::fprintf(f, "  \"quick\": %s,\n",
                 opts.quick ? "true" : "false");
    std::fprintf(f, "  \"seed\": %llu,\n",
                 static_cast<unsigned long long>(opts.seed));
    std::fprintf(f, "  \"l3fwd\": [\n");
    for (std::size_t i = 0; i < l3.size(); ++i) {
        const L3Point &p = l3[i];
        std::fprintf(
            f,
            "    {\"policy\": \"%s\", \"load\": %.2f, "
            "\"forwarded\": %llu, \"dropped\": %llu, "
            "\"throughput_mpps\": %.4f, \"p95_us\": %.2f, "
            "\"p99_us\": %.2f, \"coalesced\": %llu, "
            "\"missed\": %llu, \"missed_recovered\": %llu}%s\n",
            p.policy.c_str(), p.load,
            static_cast<unsigned long long>(p.r.forwarded),
            static_cast<unsigned long long>(p.r.dropped),
            p.r.throughputMpps,
            cyclesToUs(static_cast<Cycles>(p.r.latency.p95())),
            cyclesToUs(static_cast<Cycles>(p.r.latency.p99())),
            static_cast<unsigned long long>(p.r.coalesced),
            static_cast<unsigned long long>(p.r.missed),
            static_cast<unsigned long long>(p.r.missedRecovered),
            i + 1 < l3.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"kv\": [\n");
    for (std::size_t i = 0; i < kv.size(); ++i) {
        const KvPoint &p = kv[i];
        std::fprintf(
            f,
            "    {\"policy\": \"%s\", \"load_rps\": %.0f, "
            "\"achieved_rps\": %.0f, \"get_p99_us\": %.1f, "
            "\"scan_p99_us\": %.1f}%s\n",
            p.policy.c_str(), p.loadRps, p.r.achievedRps,
            cyclesToUs(static_cast<Cycles>(p.r.getLatency.p99())),
            cyclesToUs(static_cast<Cycles>(p.r.scanLatency.p99())),
            i + 1 < kv.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"moderated_sustains_unmoderated_peak\": %s\n",
                 sustains ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    auto opts = bench::parseArgs(argc, argv);
    bench::banner(
        "Overload survival reference (BENCH_overload.json)",
        "delivery policies, ITR moderation, adaptive quantum past "
        "saturation");

    double multiplier =
        opts.offeredLoad > 0.0 ? opts.offeredLoad : 2.0;
    Cycles l3_duration = (opts.quick ? 20 : 50) * kCyclesPerMs;
    Cycles kv_duration = (opts.quick ? 60 : 150) * kCyclesPerMs;

    const std::vector<std::string> l3_policies{
        "off", "next_or_missed_edge", "next_or_missed_level",
        "next_only_edge", "next_only_level", "moderated"};
    const std::vector<double> l3_loads{1.0, multiplier};

    std::vector<L3Point> l3;
    double off_peak = 0.0;
    double moderated_at_max = 0.0;
    for (const std::string &policy : l3_policies) {
        bench::PolicyChoice pc;
        bool ok = bench::parsePolicyName(policy.c_str(), pc);
        (void)ok;
        for (double load : l3_loads) {
            L3FwdConfig cfg;
            cfg.mode = RxMode::XuiForwarded;
            cfg.numNics = 2;
            cfg.duration = l3_duration;
            cfg.routeCount = 4000;
            cfg.load = load;
            cfg.seed = opts.seed;
            bench::applyPolicy(cfg, pc, opts.itrNs);
            L3Point p;
            p.policy = policy;
            p.load = load;
            p.r = runL3Fwd(cfg);
            if (policy == "off")
                off_peak = std::max(off_peak, p.r.throughputMpps);
            if (policy == "moderated" && load == multiplier)
                moderated_at_max = p.r.throughputMpps;
            l3.push_back(std::move(p));
        }
    }

    TablePrinter lt("l3fwd frontier (2 NICs, loads are fractions "
                    "of capacity)");
    lt.setHeader({"Policy", "Load", "Mpps", "Dropped", "p99 us",
                  "Coalesced", "Missed"});
    for (const L3Point &p : l3) {
        lt.addRow(
            {p.policy, TablePrinter::num(p.load, 2),
             TablePrinter::num(p.r.throughputMpps, 3),
             TablePrinter::num(static_cast<double>(p.r.dropped), 0),
             TablePrinter::num(
                 cyclesToUs(static_cast<Cycles>(p.r.latency.p99())),
                 2),
             TablePrinter::num(
                 static_cast<double>(p.r.coalesced), 0),
             TablePrinter::num(static_cast<double>(p.r.missed),
                               0)});
    }
    lt.print(std::cout);
    std::cout << '\n';

    const std::vector<std::string> kv_policies{"off", "adaptive"};
    std::vector<KvPoint> kv;
    for (const std::string &policy : kv_policies) {
        bench::PolicyChoice pc;
        bool ok = bench::parsePolicyName(policy.c_str(), pc);
        (void)ok;
        for (double load : l3_loads) {
            KvServerConfig cfg;
            cfg.mode = PreemptMode::XuiKbTimer;
            cfg.offeredLoadRps = load * bench::kKvSaturationRps;
            cfg.duration = kv_duration;
            cfg.seed = opts.seed;
            bench::applyPolicy(cfg, pc);
            KvPoint p;
            p.policy = policy;
            p.loadRps = cfg.offeredLoadRps;
            p.r = runKvServer(cfg);
            kv.push_back(std::move(p));
        }
    }

    TablePrinter kt("KV server frontier (xUI KB timer)");
    kt.setHeader({"Policy", "Load rps", "Achieved rps",
                  "GET p99 us", "SCAN p99 us"});
    for (const KvPoint &p : kv) {
        kt.addRow(
            {p.policy, TablePrinter::num(p.loadRps, 0),
             TablePrinter::num(p.r.achievedRps, 0),
             TablePrinter::num(
                 cyclesToUs(
                     static_cast<Cycles>(p.r.getLatency.p99())),
                 1),
             TablePrinter::num(
                 cyclesToUs(
                     static_cast<Cycles>(p.r.scanLatency.p99())),
                 1)});
    }
    kt.print(std::cout);

    bool sustains = moderated_at_max >= off_peak;
    std::cout << "\nmoderated @" << multiplier
              << "x: " << moderated_at_max
              << " Mpps vs unmoderated peak " << off_peak
              << " Mpps -> "
              << (sustains ? "sustains the peak"
                           : "FAILS the overload-survival bar")
              << '\n';

    writeJson("BENCH_overload.json", l3, kv, sustains, opts);
    std::printf("wrote BENCH_overload.json\n");
    return sustains ? 0 : 1;
}
