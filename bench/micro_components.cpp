/**
 * @file
 * google-benchmark microbenchmarks for the substrate components:
 * LPM lookup, skiplist operations, histogram recording, event-queue
 * throughput, cache-model access, branch-predictor updates and the
 * 256-bit vector bitmap. These measure the *simulator's* own
 * performance, guarding against regressions that would make the
 * figure benches impractically slow.
 */

#include <benchmark/benchmark.h>

#include "des/event_queue.hh"
#include "intr/bitset256.hh"
#include "kv/skiplist.hh"
#include "net/lpm.hh"
#include "net/traffic.hh"
#include "stats/histogram.hh"
#include "stats/rng.hh"
#include "uarch/branch_predictor.hh"
#include "uarch/cache.hh"

using namespace xui;

static void
BM_LpmLookup(benchmark::State &state)
{
    Rng rng(1);
    LpmTable table(512);
    auto routes = installRandomRoutes(
        table, static_cast<std::size_t>(state.range(0)), rng);
    std::vector<std::uint32_t> probes;
    for (int i = 0; i < 4096; ++i)
        probes.push_back(randomCoveredIp(routes, rng));
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            table.lookup(probes[i++ & 4095]));
    }
}
BENCHMARK(BM_LpmLookup)->Arg(1000)->Arg(16000);

static void
BM_SkipListGet(benchmark::State &state)
{
    SkipList list;
    const std::uint64_t n =
        static_cast<std::uint64_t>(state.range(0));
    for (std::uint64_t i = 0; i < n; ++i)
        list.put("key" + std::to_string(i), "value");
    Rng rng(2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            list.get("key" + std::to_string(rng.nextBounded(n))));
    }
}
BENCHMARK(BM_SkipListGet)->Arg(1000)->Arg(100000);

static void
BM_SkipListPut(benchmark::State &state)
{
    SkipList list;
    std::uint64_t i = 0;
    for (auto _ : state)
        list.put("key" + std::to_string(i++), "value");
}
BENCHMARK(BM_SkipListPut);

static void
BM_HistogramRecord(benchmark::State &state)
{
    Histogram h;
    Rng rng(3);
    for (auto _ : state)
        h.record(static_cast<std::int64_t>(
            rng.nextBounded(1ull << 40)));
}
BENCHMARK(BM_HistogramRecord);

static void
BM_HistogramPercentile(benchmark::State &state)
{
    Histogram h;
    Rng rng(4);
    for (int i = 0; i < 100000; ++i)
        h.record(static_cast<std::int64_t>(
            rng.nextBounded(1ull << 30)));
    for (auto _ : state)
        benchmark::DoNotOptimize(h.p99());
}
BENCHMARK(BM_HistogramPercentile);

static void
BM_EventQueueChurn(benchmark::State &state)
{
    EventQueue q;
    for (auto _ : state) {
        q.scheduleAfter(10, [] {});
        q.runOne();
    }
}
BENCHMARK(BM_EventQueueChurn);

static void
BM_CacheAccess(benchmark::State &state)
{
    MemHierarchy mem;
    Rng rng(5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            mem.access(rng.nextBounded(64ull << 20)));
    }
}
BENCHMARK(BM_CacheAccess);

static void
BM_PredictorUpdate(benchmark::State &state)
{
    BranchPredictor bp;
    Rng rng(6);
    std::uint64_t pc = 0;
    for (auto _ : state) {
        bool taken = rng.nextBool(0.6);
        bool pred = bp.predict(pc);
        bp.update(pc, taken, pred);
        pc = (pc + 17) & 0xffff;
    }
}
BENCHMARK(BM_PredictorUpdate);

static void
BM_Bitset256Scan(benchmark::State &state)
{
    Bitset256 b;
    b.set(7);
    b.set(130);
    b.set(255);
    for (auto _ : state)
        benchmark::DoNotOptimize(b.findHighest());
}
BENCHMARK(BM_Bitset256Scan);

static void
BM_RngNext(benchmark::State &state)
{
    Rng rng(7);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

BENCHMARK_MAIN();
