/**
 * @file
 * Observability wiring shared by the bench binaries.
 *
 * Benches whose headline numbers come from the cycle tier call
 * runObsScenario() before ObsSession::finish(): when the user passed
 * `--metrics-json` / `--trace-json` it executes one representative
 * instrumented scenario — fib under a periodic 5 us KB timer with
 * tracked delivery — so the exported files always carry interrupt-
 * lifecycle spans, per-core pipeline events, and core counters. The
 * benches' own measurement runs stay uninstrumented (null observer,
 * identical timing).
 *
 * applyProfileFlags() forwards `--counter-stride` / `--tax` into the
 * session's pipeline-pressure profiler (src/obs/sampler.hh). With
 * `--tax` the scenario widens to one core per delivery strategy
 * (Tracked / Flush / Drain), each under its own periodic timer, so
 * the exported `core<N>.tax.*` tables compare the interrupt tax of
 * all three mechanisms side by side.
 */

#ifndef XUI_BENCH_OBS_UTIL_HH
#define XUI_BENCH_OBS_UTIL_HH

#include "bench_util.hh"
#include "obs/session.hh"
#include "workloads/kernels.hh"

namespace xui::bench
{

/** Forward --counter-stride / --tax; call before the first attach. */
inline void
applyProfileFlags(ObsSession &obs, const Options &opts)
{
    ProfileConfig cfg;
    cfg.counterStride = opts.counterStride;
    cfg.tax = opts.tax;
    obs.setProfile(cfg);
}

inline void
runObsScenario(ObsSession &obs, const Options &opts)
{
    if (!obs.enabled())
        return;
    applyProfileFlags(obs, opts);
    Program prog = makeFib();
    UarchSystem sys(opts.seed);
    static const DeliveryStrategy kStrategies[] = {
        DeliveryStrategy::Tracked,
        DeliveryStrategy::Flush,
        DeliveryStrategy::Drain,
    };
    std::size_t ncores = opts.tax ? 3 : 1;
    for (std::size_t i = 0; i < ncores; ++i) {
        CoreParams params;
        params.strategy = kStrategies[i];
        sys.addCore(params, &prog);
    }
    obs.attach(sys);
    for (std::size_t i = 0; i < ncores; ++i) {
        OooCore &core = sys.core(i);
        core.kbTimer().configure(true, 0x21);
        core.kbTimer().setTimer(0, usToCycles(5),
                                KbTimerMode::Periodic);
    }
    sys.run(opts.quick ? 20000 : 100000);
    for (std::size_t i = 0; i < ncores; ++i)
        obs.publishCore(sys.core(i));
}

} // namespace xui::bench

#endif // XUI_BENCH_OBS_UTIL_HH
