/**
 * @file
 * Observability wiring shared by the bench binaries.
 *
 * Benches whose headline numbers come from the cycle tier call
 * runObsScenario() before ObsSession::finish(): when the user passed
 * `--metrics-json` / `--trace-json` it executes one representative
 * instrumented scenario — fib under a periodic 5 us KB timer with
 * tracked delivery — so the exported files always carry interrupt-
 * lifecycle spans, per-core pipeline events, and core counters. The
 * benches' own measurement runs stay uninstrumented (null observer,
 * identical timing).
 */

#ifndef XUI_BENCH_OBS_UTIL_HH
#define XUI_BENCH_OBS_UTIL_HH

#include "bench_util.hh"
#include "obs/session.hh"
#include "workloads/kernels.hh"

namespace xui::bench
{

inline void
runObsScenario(ObsSession &obs, const Options &opts)
{
    if (!obs.enabled())
        return;
    Program prog = makeFib();
    CoreParams params;
    params.strategy = DeliveryStrategy::Tracked;
    UarchSystem sys(opts.seed);
    OooCore &core = sys.addCore(params, &prog);
    obs.attach(sys);
    core.kbTimer().configure(true, 0x21);
    core.kbTimer().setTimer(0, usToCycles(5), KbTimerMode::Periodic);
    core.runCycles(opts.quick ? 20000 : 100000);
    obs.publishCore(core);
}

} // namespace xui::bench

#endif // XUI_BENCH_OBS_UTIL_HH
