/**
 * @file
 * Ablation studies for the design choices DESIGN.md calls out:
 *
 *  1. Delivery strategy vs instruction-window size — the paper
 *     argues flushing/draining get *worse* as ROBs grow (§2, §4.2);
 *     tracking should be insensitive.
 *  2. Safepoint density — how sparse can safepoints be before
 *     delivery latency suffers (precision is free, latency is not).
 *  3. Re-injection under branch-misprediction pressure — tracked
 *     interrupts must never be lost no matter how often the
 *     microcode is squashed.
 *  4. umwait vs polling vs xUI in l3fwd — mwait only monitors one
 *     queue (§2), so its benefit evaporates with multiple NICs.
 */

#include <iostream>

#include "bench_util.hh"
#include "net/l3fwd.hh"
#include "obs_util.hh"
#include "stats/table.hh"
#include "uarch/uarch_system.hh"
#include "workloads/kernels.hh"

using namespace xui;

namespace
{

/** Throughput cost per interrupt: extra cycles to commit the same
 * instruction count, divided by deliveries. This is the quantity
 * that captures flush's *discarded work*, which grows with the
 * instruction window (paper §2, §4.2). */
double
perEventThroughputCost(DeliveryStrategy strategy,
                       unsigned rob_size, std::uint64_t insts)
{
    Program prog = makeFib();
    CoreParams params;
    params.strategy = strategy;
    params.robSize = rob_size;
    params.iqSize = rob_size / 2;

    Cycles base;
    {
        UarchSystem sys(5);
        OooCore &core = sys.addCore(params, &prog);
        base = core.runUntilCommitted(insts, insts * 900);
    }
    UarchSystem sys(5);
    OooCore &core = sys.addCore(params, &prog);
    core.kbTimer().configure(true, 0x21);
    core.kbTimer().setTimer(0, usToCycles(5),
                            KbTimerMode::Periodic);
    Cycles with = core.runUntilCommitted(insts, insts * 900);
    std::uint64_t events = core.stats().interruptsDelivered;
    if (events == 0)
        return 0.0;
    double delta = static_cast<double>(with) -
        static_cast<double>(base);
    return std::max(0.0, delta / static_cast<double>(events));
}

void
robSweep(std::uint64_t insts)
{
    TablePrinter t("Ablation 1: per-event throughput cost (cycles "
                   "of lost progress) vs ROB size");
    t.setHeader({"ROB", "Flush", "Drain", "Tracked"});
    for (unsigned rob : {192u, 384u, 768u}) {
        double f = perEventThroughputCost(DeliveryStrategy::Flush,
                                          rob, insts);
        double d = perEventThroughputCost(DeliveryStrategy::Drain,
                                          rob, insts);
        double tr = perEventThroughputCost(
            DeliveryStrategy::Tracked, rob, insts);
        t.addRow({TablePrinter::integer(rob),
                  TablePrinter::num(f, 0), TablePrinter::num(d, 0),
                  TablePrinter::num(tr, 0)});
    }
    t.print(std::cout);
    std::cout
        << "(Flush pays the full delivery downtime at every window "
           "size because the squashed\n backlog must be redone "
           "afterwards; tracking overlaps delivery with the "
           "in-flight\n window completely, at any ROB size — the "
           "paper's §4.2 argument.)\n\n";
}

void
safepointDensity(std::uint64_t insts)
{
    TablePrinter t("Ablation 2: safepoint density vs delivery "
                   "latency (tracked + safepoint mode)");
    t.setHeader({"Insts between safepoints", "Accept->handler "
                 "(cycles)", "Delivered"});
    for (unsigned gap : {8u, 32u, 128u, 512u}) {
        ProgramBuilder b("spgap");
        std::uint32_t top = b.here();
        for (unsigned i = 0; i < gap; ++i)
            b.intAlu(static_cast<std::uint8_t>(
                         reg::kGpr0 + 1 + (i % 6)),
                     static_cast<std::uint8_t>(
                         reg::kGpr0 + 1 + (i % 6)));
        b.safepoint();
        b.jump(top);
        b.beginHandler();
        b.intAlu(reg::kGpr0 + 12, reg::kGpr0 + 12);
        b.uiret();
        Program prog = b.build();

        CoreParams params;
        params.strategy = DeliveryStrategy::Tracked;
        params.safepointMode = true;
        UarchSystem sys(6);
        OooCore &core = sys.addCore(params, &prog);
        core.kbTimer().configure(true, 0x21);
        core.kbTimer().setTimer(0, usToCycles(5),
                                KbTimerMode::Periodic);
        core.runUntilCommitted(insts, insts * 900);
        const auto &recs = core.stats().intrRecords;
        double sum = 0;
        for (const auto &r : recs)
            sum += static_cast<double>(r.deliveryExecAt -
                                       r.acceptedAt);
        t.addRow({TablePrinter::integer(gap),
                  TablePrinter::num(
                      recs.empty()
                          ? 0
                          : sum / static_cast<double>(recs.size()),
                      0),
                  TablePrinter::integer(static_cast<std::int64_t>(
                      recs.size()))});
    }
    t.print(std::cout);
    std::cout << "(Delivery waits for the next safepoint; density "
                 "is the compiler's latency knob.)\n\n";
}

void
reinjectionPressure(std::uint64_t insts)
{
    TablePrinter t("Ablation 3: tracked re-injection under "
                   "misprediction pressure");
    t.setHeader({"Branch p(taken)", "Mispredicts", "Re-injections",
                 "Raised", "Delivered"});
    for (double p : {0.0, 0.1, 0.3, 0.5}) {
        ProgramBuilder b("noisy");
        std::uint32_t top = b.here();
        b.intAlu(reg::kGpr0 + 1, reg::kGpr0 + 1);
        if (p > 0)
            b.randomBranch(top, p);
        b.intAlu(reg::kGpr0 + 2, reg::kGpr0 + 2);
        b.jump(top);
        b.beginHandler();
        b.intAlu(reg::kGpr0 + 12, reg::kGpr0 + 12);
        b.uiret();
        Program prog = b.build();

        CoreParams params;
        params.strategy = DeliveryStrategy::Tracked;
        UarchSystem sys(7);
        OooCore &core = sys.addCore(params, &prog);
        core.kbTimer().configure(true, 0x21);
        core.kbTimer().setTimer(0, usToCycles(2),
                                KbTimerMode::Periodic);
        core.runUntilCommitted(insts, insts * 900);
        const auto &s = core.stats();
        t.addRow({TablePrinter::num(p, 1),
                  TablePrinter::integer(static_cast<std::int64_t>(
                      s.branchMispredicts)),
                  TablePrinter::integer(static_cast<std::int64_t>(
                      s.reinjections)),
                  TablePrinter::integer(static_cast<std::int64_t>(
                      s.interruptsRaised)),
                  TablePrinter::integer(static_cast<std::int64_t>(
                      s.interruptsDelivered))});
    }
    t.print(std::cout);
    std::cout << "(Raised - delivered <= 1 at every pressure level: "
                 "squashed microcode is always\n re-injected, the "
                 "paper's Fig. 3 guarantee.)\n\n";
}

void
mwaitComparison(bool quick)
{
    TablePrinter t("Ablation 4: umwait vs polling vs xUI in l3fwd "
                   "(free cycles at 40% load)");
    t.setHeader({"NICs", "Polling", "umwait (1 queue)", "xUI"});
    for (unsigned nics : {1u, 2u, 4u}) {
        std::vector<std::string> row{TablePrinter::integer(nics)};
        for (RxMode mode : {RxMode::Polling,
                            RxMode::MwaitSingleQueue,
                            RxMode::XuiForwarded}) {
            L3FwdConfig cfg;
            cfg.mode = mode;
            cfg.numNics = nics;
            cfg.load = 0.4;
            cfg.duration = (quick ? 10 : 40) * kCyclesPerMs;
            cfg.routeCount = 2000;
            cfg.seed = 8;
            L3FwdResult r = runL3Fwd(cfg);
            row.push_back(TablePrinter::percent(r.freeFrac, 1));
        }
        t.addRow(row);
    }
    t.print(std::cout);
    std::cout << "(§2: mwait idles on a single line only — its "
                 "benefit disappears beyond one queue,\n while xUI "
                 "forwarding scales with queue count.)\n";
}

} // namespace

int
main(int argc, char **argv)
{
    auto opts = bench::parseArgs(argc, argv);
    bench::banner("Ablations: xUI design choices",
                  "DESIGN.md §4 (strategy vs window, safepoint "
                  "density, re-injection, mwait)");
    std::uint64_t insts = opts.quick ? 60000 : 250000;
    robSweep(insts);
    safepointDensity(insts);
    reinjectionPressure(insts);
    mwaitComparison(opts.quick);

    ObsSession obs(opts.metricsJson, opts.traceJson);
    bench::runObsScenario(obs, opts);
    return obs.finish();
}
