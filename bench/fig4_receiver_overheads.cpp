/**
 * @file
 * Figure 4 reproduction: receiver-side overheads of periodic
 * interrupts on fib / linpack / memops under the three mechanisms —
 * UIPI with a software-timer core (flush), xUI tracked interrupts
 * (SW timer source), and xUI KB timer + tracking. Reports both the
 * per-event delivery-path occupancy (the paper's 645/231/105
 * comparison) and the end-to-end program slowdown at each interval.
 */

#include <functional>
#include <iostream>

#include "bench_util.hh"
#include "obs_util.hh"
#include "stats/table.hh"
#include "uarch/uarch_system.hh"
#include "workloads/kernels.hh"

using namespace xui;

namespace
{

struct Mechanism
{
    const char *name;
    DeliveryStrategy strategy;
    bool viaUpid;  // SW timer core sends UIPIs vs local KB timer
};

const Mechanism kMechanisms[] = {
    {"UIPI SW Timer", DeliveryStrategy::Flush, true},
    {"xUI SW Timer + Tracking", DeliveryStrategy::Tracked, true},
    {"xUI KB_Timer + Tracking", DeliveryStrategy::Tracked, false},
};

struct RunResult
{
    double perEventOccupancy = 0.0;
    double slowdownPct = 0.0;
    std::uint64_t events = 0;
};

RunResult
runOne(const std::function<Program()> &make, const Mechanism &mech,
       Cycles interval, std::uint64_t insts)
{
    Program prog = make();
    CoreParams params;
    params.strategy = mech.strategy;

    Cycles base_cycles;
    {
        Program base_prog = make();
        UarchSystem sys(11);
        OooCore &core = sys.addCore(params, &base_prog);
        base_cycles = core.runUntilCommitted(insts, insts * 900);
    }

    UarchSystem sys(11);
    OooCore &core = sys.addCore(params, &prog);
    Cycles with_cycles = 0;
    if (mech.viaUpid) {
        core.upid().setNotificationVector(core.uinv());
        core.upid().setDestination(core.id());
        while (core.stats().committedInsts < insts &&
               with_cycles < insts * 1000) {
            sys.run(interval);
            with_cycles += interval;
            sys.injectUipi(core, 3);
        }
    } else {
        core.kbTimer().configure(true, 0x21);
        core.kbTimer().setTimer(0, interval, KbTimerMode::Periodic);
        with_cycles = core.runUntilCommitted(insts, insts * 1000);
    }

    RunResult out;
    const auto &recs = core.stats().intrRecords;
    out.events = recs.size();
    double occ = 0;
    for (const auto &r : recs)
        occ += static_cast<double>(r.uiretCommitAt - r.acceptedAt);
    out.perEventOccupancy =
        recs.empty() ? 0 : occ / static_cast<double>(recs.size());
    double scaled_base = static_cast<double>(base_cycles) *
        static_cast<double>(core.stats().committedInsts) /
        static_cast<double>(insts);
    out.slowdownPct =
        (static_cast<double>(with_cycles) - scaled_base) /
        scaled_base * 100.0;
    if (out.slowdownPct < 0)
        out.slowdownPct = 0;
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    auto opts = bench::parseArgs(argc, argv);
    bench::banner("Figure 4: Reducing receiver overheads",
                  "xUI paper, Fig. 4 (fib/linpack/memops, periodic "
                  "interrupts)");

    std::uint64_t insts = opts.quick ? 60000 : 400000;

    struct Bench
    {
        const char *name;
        std::function<Program()> make;
    };
    const Bench benches[] = {
        {"fib", [] { return makeFib(); }},
        {"linpack", [] { return makeLinpack(); }},
        {"memops", [] { return makeMemops(); }},
    };

    TablePrinter t("Per-event receiver cost (delivery occupancy, "
                   "cycles) and slowdown, 5us interval");
    t.setHeader({"Benchmark", "Mechanism", "Cycles/event",
                 "Slowdown", "Events"});
    double mech_avg[3] = {0, 0, 0};
    for (const auto &b : benches) {
        for (std::size_t m = 0; m < 3; ++m) {
            RunResult r = runOne(b.make, kMechanisms[m],
                                 usToCycles(5), insts);
            mech_avg[m] += r.perEventOccupancy / 3.0;
            t.addRow({b.name, kMechanisms[m].name,
                      TablePrinter::num(r.perEventOccupancy, 0),
                      TablePrinter::num(r.slowdownPct, 2) + "%",
                      TablePrinter::integer(
                          static_cast<std::int64_t>(r.events))});
        }
        t.addRule();
    }
    t.print(std::cout);

    TablePrinter s("\nMechanism averages vs paper (5us interval)");
    s.setHeader({"Mechanism", "Paper cycles/event", "Simulated"});
    const char *paper_vals[3] = {"645", "231", "105"};
    for (std::size_t m = 0; m < 3; ++m)
        s.addRow({kMechanisms[m].name, paper_vals[m],
                  TablePrinter::num(mech_avg[m], 0)});
    s.print(std::cout);

    TablePrinter i("\nInterval sweep (fib, slowdown %)");
    i.setHeader({"Interval", "UIPI SW Timer", "xUI SW+Track",
                 "xUI KB+Track"});
    for (double us : {5.0, 10.0, 20.0}) {
        std::vector<std::string> row{
            TablePrinter::num(us, 0) + " us"};
        for (const auto &mech : kMechanisms) {
            RunResult r = runOne([] { return makeFib(); }, mech,
                                 usToCycles(us), insts);
            row.push_back(TablePrinter::num(r.slowdownPct, 2) + "%");
        }
        i.addRow(row);
    }
    i.print(std::cout);
    std::cout << "(Paper: 6.86% for UIPI at 5us -> 1.06% for "
                 "KB_Timer+tracking, a 6.9x reduction.)\n";

    // Observability run: UserIpi flavour (periodic injectUipi), so
    // this bench's span export covers the SW-timer source.
    ObsSession obs(opts.metricsJson, opts.traceJson);
    if (obs.enabled()) {
        Program prog = makeFib();
        CoreParams params;
        params.strategy = DeliveryStrategy::Tracked;
        UarchSystem sys(opts.seed);
        OooCore &core = sys.addCore(params, &prog);
        obs.attach(sys);
        core.upid().setNotificationVector(core.uinv());
        core.upid().setDestination(core.id());
        Cycles total = opts.quick ? 20000 : 100000;
        for (Cycles c = 0; c < total; c += usToCycles(5)) {
            sys.run(usToCycles(5));
            sys.injectUipi(core, 3);
        }
        obs.publishCore(core);
    }
    return obs.finish();
}
