/**
 * @file
 * Figure 9 reproduction: latency and efficiency of DSA completion
 * delivery — busy spinning vs periodic polling (OS interval timer)
 * vs xUI forwarded interrupts, for 2 us and 20 us offloads, sweeping
 * response-time unpredictability (noise).
 */

#include <iostream>

#include "bench_util.hh"
#include "accel/client.hh"
#include "obs/session.hh"
#include "obs_util.hh"
#include "stats/table.hh"

using namespace xui;

int
main(int argc, char **argv)
{
    auto opts = bench::parseArgs(argc, argv);
    bench::banner(
        "Figure 9: Optimizing latency and efficiency of DSA "
        "response delivery",
        "xUI paper, Fig. 9 (free cycles and delivery latency vs "
        "noise; 2us / 20us offloads)");

    Cycles duration = (opts.quick ? 30 : 150) * kCyclesPerMs;

    for (double base_us : {2.0, 20.0}) {
        TablePrinter t(
            TablePrinter::num(base_us, 0) +
            " us offloads (free cycle fraction / mean delivery "
            "latency in us)");
        t.setHeader({"Noise", "spin free", "poll free", "xUI free",
                     "spin lat", "poll lat", "xUI lat", "xUI IOPS"});
        for (double noise : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
            DsaClientResult res[3];
            const WaitStrategy strategies[] = {
                WaitStrategy::BusySpin, WaitStrategy::PeriodicPoll,
                WaitStrategy::XuiInterrupt};
            for (int s = 0; s < 3; ++s) {
                DsaClientConfig cfg;
                cfg.strategy = strategies[s];
                cfg.latency.meanServiceTime = usToCycles(base_us);
                cfg.latency.noiseFraction = noise;
                cfg.duration = duration;
                cfg.seed = opts.seed;
                res[s] = runDsaClient(cfg);
            }
            auto lat_us = [](const DsaClientResult &r) {
                return TablePrinter::num(
                    cyclesToUs(static_cast<Cycles>(
                        r.deliveryLatency.mean())),
                    2);
            };
            t.addRow({TablePrinter::percent(noise, 0),
                      TablePrinter::percent(res[0].freeFrac, 1),
                      TablePrinter::percent(res[1].freeFrac, 1),
                      TablePrinter::percent(res[2].freeFrac, 1),
                      lat_us(res[0]), lat_us(res[1]), lat_us(res[2]),
                      TablePrinter::num(res[2].ipos, 0)});
        }
        t.print(std::cout);
        std::cout << '\n';
    }
    std::cout
        << "Paper anchors: spin burns the core but minimizes "
           "latency; periodic polling frees\ncycles but its latency "
           "rises sharply with noise for 20us requests; xUI stays\n"
           "within 0.2us of spinning at all noise levels and frees "
           "~75% of cycles for 2us\noffloads (~50K IOPS for 20us "
           "offloads).\n";

    // Observability run: one xUI-interrupt client run with dsa.*
    // metrics and per-offload trace spans attached.
    ObsSession obs(opts.metricsJson, opts.traceJson);
    if (obs.enabled()) {
        DsaClientConfig cfg;
        cfg.strategy = WaitStrategy::XuiInterrupt;
        cfg.latency.meanServiceTime = usToCycles(2.0);
        cfg.latency.noiseFraction = 0.2;
        cfg.duration = (opts.quick ? 10 : 50) * kCyclesPerMs;
        cfg.seed = opts.seed;
        cfg.metrics = obs.metrics();
        cfg.traceOut = obs.trace();
        runDsaClient(cfg);
    }
    bench::runObsScenario(obs, opts);
    return obs.finish();
}
