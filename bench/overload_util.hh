/**
 * @file
 * Shared saturation-frontier helpers for the overload sections of
 * fig7 (KV server) and fig8 (l3fwd), and for tools/bench_overload:
 * mapping a parsed `--policy` choice onto the workload configs, the
 * load ladders, and the nominal saturation points. Keeping the
 * mapping in one place guarantees the benches and the reference
 * generator measure the same configurations.
 */

#ifndef XUI_BENCH_OVERLOAD_UTIL_HH
#define XUI_BENCH_OVERLOAD_UTIL_HH

#include <vector>

#include "bench_util.hh"
#include "kv/server.hh"
#include "net/l3fwd.hh"

namespace xui::bench
{

/** Nominal fig7 saturation (requests/s) the load ladder scales. */
constexpr double kKvSaturationRps = 250000.0;

/** Moderation default when --itr-ns is not given. */
constexpr std::uint64_t kDefaultItrNs = 1000;

/** Nanoseconds -> cycles at the simulator's 2 GHz clock. */
inline Cycles
nsToCyclesBench(std::uint64_t ns)
{
    return static_cast<Cycles>(ns) * kCyclesPerUs / 1000;
}

/** The moderation params a bench uses for `--policy moderated`. */
inline ModerationParams
moderationFor(std::uint64_t itr_ns)
{
    if (itr_ns == 0)
        itr_ns = kDefaultItrNs;
    ModerationParams m;
    m.itr = nsToCyclesBench(itr_ns);
    m.coalesceWindow = m.itr / 2;
    return m;
}

/**
 * Apply a policy choice to an l3fwd config. `adaptive` names a
 * runtime (fig7) mechanism and leaves l3fwd at the legacy path.
 */
inline void
applyPolicy(L3FwdConfig &cfg, const PolicyChoice &choice,
            std::uint64_t itr_ns)
{
    if (!choice.enabled)
        return;
    if (choice.moderated) {
        cfg.moderation = moderationFor(itr_ns);
        return;
    }
    if (choice.adaptive)
        return;
    cfg.policyEnabled = true;
    cfg.policy = choice.policy;
}

/**
 * Apply a policy choice to a KV-server config. Only `adaptive` maps
 * onto the runtime; the NIC-side policies leave fig7 at the legacy
 * path. The adaptive watermarks sit just above/below the nominal
 * saturation arrival rate so the quantum tightens exactly when the
 * server crosses into overload.
 */
inline void
applyPolicy(KvServerConfig &cfg, const PolicyChoice &choice)
{
    if (!choice.enabled || !choice.adaptive)
        return;
    AdaptiveQuantumConfig a;
    a.window = usToCycles(100);
    // kKvSaturationRps = 25 arrivals / 100us window.
    a.highWatermark = 28;
    a.lowWatermark = 15;
    a.tightQuantum = cfg.quantum / 4;
    cfg.adaptive = a;
}

/** The frontier's load ladder: fractions of the saturation point up
 *  to the `--offered-load` multiplier. */
inline std::vector<double>
loadLadder(double multiplier)
{
    return {0.2 * multiplier, 0.4 * multiplier, 0.6 * multiplier,
            0.8 * multiplier, multiplier};
}

} // namespace xui::bench

#endif // XUI_BENCH_OVERLOAD_UTIL_HH
