/**
 * @file
 * Figure 2 reproduction: the UIPI latency timeline — per-step costs
 * of delivering a posted user interrupt, from senduipi on the sender
 * to uiret on the receiver. Also reproduces the §3.5 deconstruction
 * experiments that identified the flush strategy: (1) end-to-end
 * latency is independent of the in-flight dependence chain under
 * flushing, and (2) squashed micro-ops grow linearly with the number
 * of interrupts received.
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "core/calibration.hh"
#include "exec/sweep.hh"
#include "obs_util.hh"
#include "stats/table.hh"
#include "uarch/uarch_system.hh"
#include "workloads/kernels.hh"

using namespace xui;

namespace
{

/** §3.5 experiment 1: pointer-chase working-set sweep. */
void
flushDetectionSweep(bool quick, unsigned jobs)
{
    struct WsPoint
    {
        double missrate = 0;
        double lat = 0;
        double squashed = 0;
    };
    const std::vector<std::uint64_t> sets{
        std::uint64_t{16} << 10, std::uint64_t{256} << 10,
        std::uint64_t{4} << 20, std::uint64_t{64} << 20};
    // One job per working set; each owns its UarchSystem, so the
    // sweep parallelizes without perturbing any simulated number.
    std::vector<WsPoint> points = exec::sweep(
        sets.size(), jobs, [&](std::size_t i) {
            const std::uint64_t ws = sets[i];
            Program prog = makePointerChase(16, ws, false);
            CoreParams params;
            params.strategy = DeliveryStrategy::Flush;
            UarchSystem sys(3);
            OooCore &core = sys.addCore(params, &prog);
            core.kbTimer().configure(true, 0x21);
            core.kbTimer().setTimer(0, usToCycles(20),
                                    KbTimerMode::Periodic);
            core.runCycles(quick ? 300000 : 1200000);

            const auto &recs = core.stats().intrRecords;
            WsPoint p;
            for (const auto &r : recs)
                p.lat += static_cast<double>(r.deliveryCommitAt -
                                             r.raisedAt);
            p.lat = recs.empty()
                ? 0
                : p.lat / static_cast<double>(recs.size());
            p.missrate =
                core.mem().l1().misses() /
                std::max(1.0, static_cast<double>(
                                  core.mem().l1().misses() +
                                  core.mem().l1().hits()));
            p.squashed = recs.empty()
                ? 0
                : static_cast<double>(core.stats().squashedUops) /
                    static_cast<double>(recs.size());
            return p;
        });

    TablePrinter t("\nSection 3.5: e2e latency vs in-flight miss "
                   "chain (flush => flat)");
    t.setHeader({"Working set", "L1 misses/load", "Delivery latency",
                 "Squashed uops/intr"});
    for (std::size_t i = 0; i < sets.size(); ++i) {
        const std::uint64_t ws = sets[i];
        const WsPoint &p = points[i];
        char wsbuf[32];
        if (ws >= (1ull << 20))
            std::snprintf(wsbuf, sizeof(wsbuf), "%llu MB",
                          (unsigned long long)(ws >> 20));
        else
            std::snprintf(wsbuf, sizeof(wsbuf), "%llu KB",
                          (unsigned long long)(ws >> 10));
        t.addRow({wsbuf, TablePrinter::percent(p.missrate, 1),
                  TablePrinter::num(p.lat, 0),
                  TablePrinter::num(p.squashed, 0)});
    }
    t.print(std::cout);
    std::cout << "(Flat delivery latency across working sets => the "
                 "core flushes rather than drains,\n matching the "
                 "paper's conclusion for Sapphire Rapids.)\n";
}

/** §3.5 experiment 2: squashed uops scale linearly in interrupts. */
void
squashLinearity(bool quick, unsigned jobs)
{
    struct SquashPoint
    {
        std::uint64_t delivered = 0;
        std::uint64_t squashed = 0;
    };
    const Cycles run = quick ? 400000 : 2000000;
    const std::vector<Cycles> periods{usToCycles(50), usToCycles(20),
                                      usToCycles(10), usToCycles(5)};
    std::vector<SquashPoint> points = exec::sweep(
        periods.size(), jobs, [&](std::size_t i) {
            Program prog = makeFib();
            CoreParams params;
            params.strategy = DeliveryStrategy::Flush;
            UarchSystem sys(4);
            OooCore &core = sys.addCore(params, &prog);
            core.kbTimer().configure(true, 0x21);
            core.kbTimer().setTimer(0, periods[i],
                                    KbTimerMode::Periodic);
            core.runCycles(run);
            // Subtract the mispredict-squash background measured
            // with the same program and no interrupts.
            UarchSystem sys0(4);
            OooCore &base = sys0.addCore(CoreParams{}, &prog);
            base.runCycles(run);
            SquashPoint p;
            p.delivered = core.stats().interruptsDelivered;
            p.squashed =
                core.stats().squashedUops > base.stats().squashedUops
                    ? core.stats().squashedUops -
                        base.stats().squashedUops
                    : 0;
            return p;
        });

    TablePrinter t("\nSection 3.5: flushed uops vs interrupts "
                   "received (linear => flush)");
    t.setHeader({"Interrupts", "Squashed uops", "Uops/interrupt"});
    for (const SquashPoint &p : points) {
        t.addRow({TablePrinter::integer(
                      static_cast<std::int64_t>(p.delivered)),
                  TablePrinter::integer(
                      static_cast<std::int64_t>(p.squashed)),
                  TablePrinter::num(
                      p.delivered ? static_cast<double>(p.squashed) /
                              static_cast<double>(p.delivered)
                                  : 0.0,
                      0)});
    }
    t.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    auto opts = bench::parseArgs(argc, argv);
    bench::banner("Figure 2: UIPI latency timeline",
                  "xUI paper, Fig. 2 + Section 3.5 deconstruction");

    CalibrationResult c = calibrateFromCycleSim(opts.quick);

    TablePrinter t("UIPI delivery timeline (cycles @ 2 GHz)");
    t.setHeader({"Step", "Paper (SPR)", "Simulated"});
    t.addRow({"senduipi execution (sender)", "~380*",
              TablePrinter::num(c.senduipiCost, 0)});
    t.addRow({"IPI wire (ICR write -> receiver APIC)", "(in 380)",
              TablePrinter::num(c.ipiArrival, 0)});
    t.addRow({"flush + ucode entry -> first notify event", "424",
              TablePrinter::num(c.notifyStart, 0)});
    t.addRow({"notification + delivery", "262",
              TablePrinter::num(c.deliveryDone, 0)});
    t.addRow({"uiret", "10", TablePrinter::num(c.uiretCost, 0)});
    t.addRule();
    t.addRow({"end-to-end (send -> handler)", "~1066-1360",
              TablePrinter::num(c.endToEndLatency, 0)});
    t.print(std::cout);
    std::cout << "(*paper measures senduipi-start to receiver "
                 "interruption as 380 cycles)\n";

    flushDetectionSweep(opts.quick, opts.jobs);
    squashLinearity(opts.quick, opts.jobs);

    ObsSession obs(opts.metricsJson, opts.traceJson);
    bench::runObsScenario(obs, opts);
    return obs.finish();
}
