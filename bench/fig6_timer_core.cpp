/**
 * @file
 * Figure 6 reproduction: the cost of a dedicated timer core. CPU
 * utilization of one timer core using setitimer() or nanosleep() to
 * wake and senduipi to notify N application cores, across
 * preemption intervals; xUI's KB timer eliminates the core entirely.
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "des/simulation.hh"
#include "exec/sweep.hh"
#include "obs/session.hh"
#include "obs_util.hh"
#include "os/kernel.hh"
#include "os/timer_core.hh"
#include "stats/table.hh"

using namespace xui;

int
main(int argc, char **argv)
{
    auto opts = bench::parseArgs(argc, argv);
    bench::banner("Figure 6: The cost of a timer",
                  "xUI paper, Fig. 6 (timer-core CPU use vs app "
                  "cores x interval)");

    CostModel costs;
    Cycles duration = (opts.quick ? 20 : 200) * kCyclesPerMs;

    const TimerInterface ifaces[] = {TimerInterface::Setitimer,
                                     TimerInterface::Nanosleep,
                                     TimerInterface::RdtscSpin,
                                     TimerInterface::XuiKbTimer};
    const char *iface_names[] = {"setitimer()", "nanosleep()",
                                 "rdtsc spin", "xUI KB_Timer"};

    // One job per (interval, app-core-count) cell; each cell runs
    // the four timer interfaces on its own Simulation, so the grid
    // fans out across threads with bit-identical tables.
    const std::vector<double> intervals{5.0, 20.0, 100.0};
    const std::vector<unsigned> core_counts{1u, 2u, 4u, 8u,
                                            16u, 22u, 28u};
    struct Cell
    {
        double util[4] = {0, 0, 0, 0};
        double achievedSetitimer = 1.0;
    };
    const std::size_t n = intervals.size() * core_counts.size();
    std::vector<Cell> cells = exec::sweep(
        n, opts.jobs, [&](std::size_t idx) {
            const double us = intervals[idx / core_counts.size()];
            const unsigned cores =
                core_counts[idx % core_counts.size()];
            Cell cell;
            for (std::size_t i = 0; i < 4; ++i) {
                Simulation sim(opts.seed);
                TimerCoreModel m(sim, costs, ifaces[i],
                                 usToCycles(us), cores);
                m.run(duration);
                cell.util[i] = m.utilization();
                if (ifaces[i] == TimerInterface::Setitimer)
                    cell.achievedSetitimer =
                        m.achievedRateFraction();
            }
            return cell;
        });

    for (std::size_t ui = 0; ui < intervals.size(); ++ui) {
        const double us = intervals[ui];
        TablePrinter t("Timer-core utilization, preemption interval " +
                       TablePrinter::num(us, 0) + " us");
        std::vector<std::string> header{"App cores"};
        for (const char *n2 : iface_names)
            header.push_back(n2);
        header.push_back("achieved (setitimer)");
        t.setHeader(header);
        for (std::size_t ci = 0; ci < core_counts.size(); ++ci) {
            const Cell &cell = cells[ui * core_counts.size() + ci];
            std::vector<std::string> row{
                TablePrinter::integer(core_counts[ci])};
            for (std::size_t i = 0; i < 4; ++i)
                row.push_back(
                    TablePrinter::percent(cell.util[i], 1));
            row.push_back(
                TablePrinter::percent(cell.achievedSetitimer, 0));
            t.addRow(row);
        }
        t.print(std::cout);
        std::cout << '\n';
    }

    // Paper: an rdtsc-spinning timer core supports up to 22 app
    // cores at a 5us interval (senduipi-limited).
    CostModel c;
    double max_cores = static_cast<double>(usToCycles(5)) /
        static_cast<double>(c.senduipiCost);
    std::cout << "rdtsc-spin capacity at 5us interval: "
              << TablePrinter::num(max_cores, 1)
              << " cores (paper: ~22; senduipi-limited)\n";
    std::cout << "xUI: zero timer-core cycles at every point — each "
                 "core's KB timer is local.\n";

    // Observability run: a setitimer-driven timer core at the 5us
    // interval plus the kernel's interval-timer machinery, so the
    // DES event stream and kernel.* counters land in the export.
    ObsSession obs(opts.metricsJson, opts.traceJson);
    bench::applyProfileFlags(obs, opts);
    if (obs.enabled()) {
        Simulation sim(opts.seed);
        obs.attach(sim.queue(), 0, "timer_core");
        Kernel kernel(sim, costs, 1);
        kernel.attachMetrics(*obs.metrics());
        kernel.attachCounterTrace(obs.kernelTrace());
        ThreadId thread = kernel.createThread();
        kernel.registerHandler(thread, [](unsigned) {});
        kernel.scheduleOn(thread, 0);
        kernel.setInterval(thread, usToCycles(5));
        TimerCoreModel model(sim, costs, TimerInterface::Setitimer,
                             usToCycles(5), 8);
        model.attachMetrics(*obs.metrics());
        model.run(duration);
        sim.runUntil(duration);
        model.publish();
    }
    bench::runObsScenario(obs, opts);
    return obs.finish();
}
