/**
 * @file
 * Figure 8 reproduction: l3fwd efficiency — cycle accounting
 * (networking / polling / notification / free) and p95 latency for
 * spin-polling vs xUI interrupt forwarding, across offered load and
 * 1/2/4/8 NIC queues, with the 16,000-entry DIR-24-8 LPM table.
 */

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "exec/sweep.hh"
#include "net/l3fwd.hh"
#include "obs/session.hh"
#include "obs_util.hh"
#include "overload_util.hh"
#include "stats/table.hh"

using namespace xui;

namespace
{

/**
 * Saturation frontier (--offered-load): push the open-loop offered
 * load up to `multiplier` x the core's forwarding capacity under
 * each delivery policy and print the throughput-vs-tail frontier.
 */
int
runOverloadFrontier(const bench::Options &opts)
{
    bench::banner(
        "l3fwd saturation frontier (overload survival)",
        "delivery policies and ITR moderation past saturation");

    Cycles duration = (opts.quick ? 20 : 100) * kCyclesPerMs;
    std::size_t routes = opts.quick ? 4000 : 16000;
    std::vector<std::string> policies;
    if (opts.policyGiven)
        policies = {opts.policy.name};
    else
        policies = {"off", "next_or_missed_edge",
                    "next_or_missed_level", "next_only_edge",
                    "next_only_level", "moderated"};
    std::vector<double> loads = bench::loadLadder(opts.offeredLoad);

    struct Cell
    {
        L3FwdResult r;
    };
    std::vector<Cell> cells = exec::sweep(
        policies.size() * loads.size(), opts.jobs,
        [&](std::size_t idx) {
            bench::PolicyChoice pc;
            bool ok = bench::parsePolicyName(
                policies[idx / loads.size()].c_str(), pc);
            (void)ok;
            L3FwdConfig cfg;
            cfg.mode = RxMode::XuiForwarded;
            cfg.numNics = 2;
            cfg.duration = duration;
            cfg.routeCount = routes;
            cfg.load = loads[idx % loads.size()];
            cfg.seed = opts.seed;
            bench::applyPolicy(cfg, pc, opts.itrNs);
            Cell cell;
            cell.r = runL3Fwd(cfg);
            return cell;
        });

    double off_peak = 0.0;
    double moderated_at_max = 0.0;
    for (std::size_t pi = 0; pi < policies.size(); ++pi) {
        TablePrinter t("policy = " + policies[pi] +
                       " (loads are fractions of capacity)");
        t.setHeader({"Load", "Forwarded", "Dropped", "Mpps",
                     "p50 us", "p95 us", "p99 us", "Coalesced",
                     "Missed", "Recovered"});
        for (std::size_t li = 0; li < loads.size(); ++li) {
            const L3FwdResult &r =
                cells[pi * loads.size() + li].r;
            if (policies[pi] == "off")
                off_peak = std::max(off_peak, r.throughputMpps);
            if (policies[pi] == "moderated" &&
                li == loads.size() - 1)
                moderated_at_max = r.throughputMpps;
            t.addRow(
                {TablePrinter::percent(loads[li], 0),
                 TablePrinter::num(
                     static_cast<double>(r.forwarded), 0),
                 TablePrinter::num(
                     static_cast<double>(r.dropped), 0),
                 TablePrinter::num(r.throughputMpps, 3),
                 TablePrinter::num(
                     cyclesToUs(
                         static_cast<Cycles>(r.latency.p50())),
                     2),
                 TablePrinter::num(
                     cyclesToUs(
                         static_cast<Cycles>(r.latency.p95())),
                     2),
                 TablePrinter::num(
                     cyclesToUs(
                         static_cast<Cycles>(r.latency.p99())),
                     2),
                 TablePrinter::num(
                     static_cast<double>(r.coalesced), 0),
                 TablePrinter::num(
                     static_cast<double>(r.missed), 0),
                 TablePrinter::num(
                     static_cast<double>(r.missedRecovered), 0)});
        }
        t.print(std::cout);
        std::cout << '\n';
    }
    if (off_peak > 0.0 && moderated_at_max > 0.0) {
        std::cout << "moderated @" << opts.offeredLoad
                  << "x load: " << moderated_at_max
                  << " Mpps vs unmoderated peak " << off_peak
                  << " Mpps ("
                  << (moderated_at_max >= off_peak
                          ? "sustains the peak"
                          : "BELOW the unmoderated peak")
                  << ")\n";
    }

    // Observability run at the full overload point under the
    // selected (or moderated) policy.
    ObsSession obs(opts.metricsJson, opts.traceJson);
    if (obs.enabled()) {
        bench::PolicyChoice pc = opts.policy;
        if (!opts.policyGiven)
            bench::parsePolicyName("moderated", pc);
        L3FwdConfig cfg;
        cfg.mode = RxMode::XuiForwarded;
        cfg.numNics = 2;
        cfg.load = opts.offeredLoad;
        cfg.duration = (opts.quick ? 10 : 40) * kCyclesPerMs;
        cfg.routeCount = opts.quick ? 2000 : routes;
        cfg.seed = opts.seed;
        cfg.metrics = obs.metrics();
        cfg.traceOut = obs.trace();
        bench::applyPolicy(cfg, pc, opts.itrNs);
        runL3Fwd(cfg);
    }
    bench::runObsScenario(obs, opts);
    return obs.finish();
}

} // namespace

int
main(int argc, char **argv)
{
    auto opts = bench::parseArgs(argc, argv);
    if (opts.offeredLoad > 0.0)
        return runOverloadFrontier(opts);
    bench::banner("Figure 8: Improving l3fwd efficiency",
                  "xUI paper, Fig. 8 (free cycles and latency vs "
                  "load, 1/2/4/8 NICs)");

    Cycles duration = (opts.quick ? 20 : 100) * kCyclesPerMs;
    std::size_t routes = opts.quick ? 4000 : 16000;

    // One job per (NIC count, load) cell running both rx modes on
    // its own DES instance; the (nics, load) grid fans out across
    // threads and reduces into tables in grid order.
    const std::vector<unsigned> nic_counts{1u, 2u, 4u, 8u};
    const std::vector<double> loads{0.1, 0.2, 0.4, 0.6, 0.8};
    struct Cell
    {
        L3FwdResult poll;
        L3FwdResult xui;
    };
    std::vector<Cell> cells = exec::sweep(
        nic_counts.size() * loads.size(), opts.jobs,
        [&](std::size_t idx) {
            L3FwdConfig base;
            base.duration = duration;
            base.routeCount = routes;
            base.numNics = nic_counts[idx / loads.size()];
            base.load = loads[idx % loads.size()];
            base.seed = opts.seed;

            Cell cell;
            L3FwdConfig pc = base;
            pc.mode = RxMode::Polling;
            cell.poll = runL3Fwd(pc);

            L3FwdConfig xc = base;
            xc.mode = RxMode::XuiForwarded;
            cell.xui = runL3Fwd(xc);
            return cell;
        });

    for (std::size_t ni = 0; ni < nic_counts.size(); ++ni) {
        TablePrinter t("NICs = " + std::to_string(nic_counts[ni]) +
                       " (cycle fractions; latency in us)");
        t.setHeader({"Load", "poll net%", "poll free%", "xUI net%",
                     "xUI notif%", "xUI free%", "poll p95",
                     "xUI p95", "thr ratio"});
        for (std::size_t li = 0; li < loads.size(); ++li) {
            const double load = loads[li];
            const L3FwdResult &poll =
                cells[ni * loads.size() + li].poll;
            const L3FwdResult &xui =
                cells[ni * loads.size() + li].xui;

            double thr_ratio = poll.forwarded
                ? static_cast<double>(xui.forwarded) /
                    static_cast<double>(poll.forwarded)
                : 1.0;
            t.addRow(
                {TablePrinter::percent(load, 0),
                 TablePrinter::percent(poll.networkingFrac, 1),
                 TablePrinter::percent(poll.freeFrac, 1),
                 TablePrinter::percent(xui.networkingFrac, 1),
                 TablePrinter::percent(xui.notificationFrac, 1),
                 TablePrinter::percent(xui.freeFrac, 1),
                 TablePrinter::num(
                     cyclesToUs(static_cast<Cycles>(
                         poll.latency.p95())),
                     2),
                 TablePrinter::num(
                     cyclesToUs(static_cast<Cycles>(
                         xui.latency.p95())),
                     2),
                 TablePrinter::num(thr_ratio, 4)});
        }
        t.print(std::cout);
        std::cout << '\n';
    }
    std::cout
        << "Paper anchors: polling always burns 100% of the core; "
           "at 40% load with 1 queue\nxUI leaves ~45% of cycles "
           "free; throughput within 0.08%; p95 within +2%/-8%/+65%\n"
           "for 1/4/8 NICs.\n";

    // Observability run: one xUI-forwarded run with l3fwd.* metrics
    // and the DES event stream attached.
    ObsSession obs(opts.metricsJson, opts.traceJson);
    if (obs.enabled()) {
        L3FwdConfig cfg;
        cfg.mode = RxMode::XuiForwarded;
        cfg.numNics = 2;
        cfg.load = 0.4;
        cfg.duration = (opts.quick ? 10 : 40) * kCyclesPerMs;
        cfg.routeCount = opts.quick ? 2000 : 16000;
        cfg.seed = opts.seed;
        cfg.metrics = obs.metrics();
        cfg.traceOut = obs.trace();
        runL3Fwd(cfg);
    }
    bench::runObsScenario(obs, opts);
    return obs.finish();
}
