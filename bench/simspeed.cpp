/**
 * @file
 * Simulator-throughput benchmark: simulated-cycles-per-wall-second
 * and events-per-second across four canonical scenarios, so the
 * perf trajectory of the simulation kernel itself (event queue,
 * OoO tick loop, obs hot paths) has a pinned baseline and CI can
 * chart regressions.
 *
 * Scenarios:
 *  - fig2:       uarch tier, pointer-chase + periodic KB timer in
 *                Flush mode (the Fig. 2 timeline workload). With
 *                `--ff` it additionally runs a sampled-detail pass
 *                and gates its accuracy.
 *  - timer_core: uarch tier, compute loop + periodic 20us KB timer.
 *                Runs full detail AND a sampled (fast-forward)
 *                pass over the same simulated horizon; reports the
 *                sampled rate, the speedup over detail, and the
 *                delivery-latency p50/p99 drift — and FAILS (exit
 *                1) when the speedup is < 10x or the drift > 5%.
 *  - l3fwd:      uarch tier, forwarding core + DES-driven network
 *                arrivals through the hybrid co-sim driver. Same
 *                detail-vs-sampled pair and gates as timer_core.
 *  - timer_core_des: DES tier, kernel interval timers plus
 *                cancel-heavy watchdog re-arm churn on the event
 *                queue (the pattern that leaked under the old
 *                lazy-cancel queue).
 *  - l3fwd_des:  DES tier, Fig. 8 forwarding app under xUI
 *                interrupt forwarding.
 *  - fuzz:       uarch tier, verification scenario runner (fuzz
 *                program + digest instrumentation).
 *
 * Emits BENCH_simspeed.json (cwd) with per-scenario rates (plus
 * `ff_*` fields and `peak_rss_kb` per scenario) and the speedup
 * against the pre-optimization baseline recorded below.
 *
 * A second, parallel-scaling section sweeps a corpus of fuzz
 * scenarios through the src/exec engine at a worker-thread ladder
 * (1/2/4/8, or powers of two up to `--jobs N`), cross-checks that
 * the combined digests are bit-identical at every rung, and emits
 * BENCH_parallel.json with sims/sec and speedup-vs-serial. The
 * canonical four scenarios above stay serial so their wall-clock
 * rates remain comparable against kBaseline.
 *
 * `--checkpoint-every N` / `--restore FILE` switch to a dedicated
 * checkpoint/restore mode on the fuzz scenario: snapshot cost per
 * interval, whole-run overhead, estimated replay-on-crash time (the
 * EXPERIMENTS.md recovery-time table), and a bit-identity check of
 * the checkpointed/restored run against an uninterrupted reference.
 */

#include <cstdio>
#include <ctime>
#include <string>
#include <sys/resource.h>
#include <vector>

#include "bench_util.hh"
#include "ckpt/codec.hh"
#include "exec/sweep.hh"
#include "des/simulation.hh"
#include "net/l3fwd.hh"
#include "os/cost_model.hh"
#include "os/kernel.hh"
#include "stats/rng.hh"
#include "uarch/cosim.hh"
#include "uarch/uarch_system.hh"
#include "verify/scenario.hh"
#include "verify/scenario_run.hh"
#include "verify/statcheck.hh"
#include "workloads/kernels.hh"

using namespace xui;

namespace
{

/**
 * Pre-optimization rates, captured on the reference container at
 * the commit immediately before the hot-path overhaul (same
 * scenarios, full mode, RelWithDebInfo). `speedup_vs_baseline` in
 * the JSON is measured against these.
 */
struct BaselineRate
{
    const char *name;
    double cyclesPerSec;
    double eventsPerSec;
};

constexpr BaselineRate kBaseline[] = {
    {"fig2", 2912915.0, 17044.0},
    // timer_core / l3fwd are the uarch-tier fast-forward pairs; the
    // baseline is their full-detail rate when the pair was added, so
    // speedup_vs_baseline tracks the detailed path and the sampled
    // gain is reported separately (ff_speedup_vs_detail).
    {"timer_core", 4770959.0, 5379173.0},
    {"l3fwd", 2548408.0, 6020061.0},
    {"timer_core_des", 42924291.0, 3490015.0},
    {"l3fwd_des", 550843927.0, 2883792.0},
    {"fuzz", 899235.0, 6644826.0},
};

double
baselineCyclesPerSec(const std::string &name)
{
    for (const auto &b : kBaseline)
        if (name == b.name)
            return b.cyclesPerSec;
    return 0.0;
}

struct SpeedResult
{
    std::string name;
    double simCycles = 0.0;
    double events = 0.0;
    double wallSec = 0.0;
    /** Process peak RSS (ru_maxrss, KiB) after this scenario. */
    long peakRssKb = 0;

    /** Sampled (fast-forward) companion pass, when one ran. */
    bool hasFf = false;
    double ffWallSec = 0.0;
    /** Share of simulated cycles spent fast-forwarded (0..1). */
    double ffCycleFraction = 0.0;
    /** Worst per-source delivery-latency drift vs detail (abs %). */
    double ffP50DeltaPct = 0.0;
    double ffP99DeltaPct = 0.0;
    bool ffAccuracyOk = true;
    std::string ffMessage;
    /** Gate the >= 10x sampled-speedup requirement on this row. */
    bool gateFfSpeedup = false;

    double cyclesPerSec() const
    {
        return wallSec > 0.0 ? simCycles / wallSec : 0.0;
    }
    double eventsPerSec() const
    {
        return wallSec > 0.0 ? events / wallSec : 0.0;
    }
    double ffCyclesPerSec() const
    {
        return ffWallSec > 0.0 ? simCycles / ffWallSec : 0.0;
    }
    double ffSpeedupVsDetail() const
    {
        double d = cyclesPerSec();
        return d > 0.0 ? ffCyclesPerSec() / d : 0.0;
    }
};

/** Monotonic wall clock (immune to wall-time adjustments). */
class WallTimer
{
  public:
    WallTimer() { clock_gettime(CLOCK_MONOTONIC, &start_); }
    double seconds() const
    {
        timespec now;
        clock_gettime(CLOCK_MONOTONIC, &now);
        return static_cast<double>(now.tv_sec - start_.tv_sec) +
               static_cast<double>(now.tv_nsec - start_.tv_nsec) *
                   1e-9;
    }

  private:
    timespec start_;
};

/** Process peak RSS in KiB (Linux ru_maxrss unit). */
long
peakRssKb()
{
    rusage ru{};
    getrusage(RUSAGE_SELF, &ru);
    return ru.ru_maxrss;
}

/** One timed pass of a uarch-tier scenario. */
struct UarchPass
{
    double wallSec = 0.0;
    Cycles simCycles = 0;
    double events = 0.0;
    Cycles ffCycles = 0;
    std::vector<IntrRecord> records;
};

/**
 * Fold a detail/sampled pass pair into the result row: sampled
 * rate, per-source delivery-latency drift (statcheck, 5% tol on
 * p50/p99), and the accuracy verdict. Both passes cover the same
 * simulated horizon, so counts and distributions are comparable.
 */
void
foldFfPair(SpeedResult &r, const UarchPass &detail,
           const UarchPass &ff, std::uint64_t minCount = 8)
{
    r.hasFf = true;
    r.ffWallSec = ff.wallSec;
    r.ffCycleFraction = ff.simCycles > 0
        ? static_cast<double>(ff.ffCycles) /
            static_cast<double>(ff.simCycles)
        : 0.0;
    StatEquivalenceReport rep =
        checkStatEquivalence(detail.records, ff.records, 5.0,
                             minCount);
    r.ffP50DeltaPct = rep.worstP50Pct;
    r.ffP99DeltaPct = rep.worstP99Pct;
    r.ffAccuracyOk = rep.ok;
    r.ffMessage = rep.message;
}

/** One pass of the Fig. 2 timeline workload. */
UarchPass
fig2Pass(bool quick, std::uint64_t seed, bool ff, Cycles window)
{
    Program prog = makePointerChase(16, 4ull << 20, false);
    CoreParams params;
    params.strategy = DeliveryStrategy::Flush;
    params.fastForward = ff;
    params.detailWindow = window;
    UarchSystem sys(seed + 2);
    OooCore &core = sys.addCore(params, &prog);
    core.kbTimer().configure(true, 0x21);
    core.kbTimer().setTimer(0, usToCycles(20), KbTimerMode::Periodic);

    const Cycles cycles = quick ? 300'000 : 3'000'000;
    WallTimer t;
    core.runCycles(cycles);
    UarchPass p;
    p.wallSec = t.seconds();
    p.simCycles = core.now();
    p.events = static_cast<double>(core.stats().committedUops);
    p.ffCycles = core.stats().ffCycles;
    p.records = core.stats().intrRecords;
    return p;
}

/** Fig. 2 timeline workload: pointer-chase + Flush-mode KB timer. */
SpeedResult
runFig2(const bench::Options &opts)
{
    UarchPass detail = fig2Pass(opts.quick, opts.seed, false, 0);
    SpeedResult r;
    r.name = "fig2";
    r.wallSec = detail.wallSec;
    r.simCycles = static_cast<double>(detail.simCycles);
    r.events = detail.events;
    if (opts.ff) {
        UarchPass ff = fig2Pass(opts.quick, opts.seed, true,
                                opts.detailWindow);
        // The quick fig2 horizon fits only ~7 timer periods; a
        // minCount of 4 keeps the source comparable while the 5%
        // p50/p99 tolerance still applies in full.
        foldFfPair(r, detail, ff, 4);
    }
    r.peakRssKb = peakRssKb();
    return r;
}

/**
 * Uarch-tier timer core: an integer compute loop under a periodic
 * 20us KB timer — the cluster-scale "mostly idle between interrupt
 * activity" shape the fast-forward mode targets. Runs full detail
 * and the sampled pass over the same simulated horizon.
 */
UarchPass
timerCorePass(bool quick, std::uint64_t seed, bool ff, Cycles window)
{
    Program prog = makeFib();
    CoreParams params;
    params.strategy = DeliveryStrategy::Tracked;
    params.fastForward = ff;
    params.detailWindow = window;
    UarchSystem sys(seed + 3);
    OooCore &core = sys.addCore(params, &prog);
    core.kbTimer().configure(true, 0x21);
    core.kbTimer().setTimer(0, usToCycles(20), KbTimerMode::Periodic);

    const Cycles cycles = quick ? 2'000'000 : 40'000'000;
    WallTimer t;
    core.runCycles(cycles);
    UarchPass p;
    p.wallSec = t.seconds();
    p.simCycles = core.now();
    p.events = static_cast<double>(core.stats().committedUops);
    p.ffCycles = core.stats().ffCycles;
    p.records = core.stats().intrRecords;
    return p;
}

SpeedResult
runTimerCore(const bench::Options &opts)
{
    UarchPass detail =
        timerCorePass(opts.quick, opts.seed, false, 0);
    UarchPass ff = timerCorePass(opts.quick, opts.seed, true,
                                 opts.detailWindow);
    SpeedResult r;
    r.name = "timer_core";
    r.wallSec = detail.wallSec;
    r.simCycles = static_cast<double>(detail.simCycles);
    r.events = detail.events;
    r.gateFfSpeedup = true;
    foldFfPair(r, detail, ff);
    r.peakRssKb = peakRssKb();
    return r;
}

/**
 * Uarch-tier l3fwd: a forwarding core (base64-style table-lookup
 * compute) receiving DES-scheduled network interrupt arrivals
 * through the hybrid co-sim driver. Arrivals carry a 600-cycle
 * wire latency, so the fast-forward controller sees them far
 * enough ahead to re-warm the pipeline before the raise.
 */
UarchPass
l3fwdPass(bool quick, std::uint64_t seed, bool ff, Cycles window)
{
    Program prog = makeBase64();
    CoreParams params;
    params.strategy = DeliveryStrategy::Tracked;
    params.fastForward = ff;
    params.detailWindow = window;
    UarchSystem sys(seed + 5);
    OooCore &core = sys.addCore(params, &prog);

    // DES tier: self-rescheduling packet arrivals with jittered
    // inter-arrival times, identical across the detail and sampled
    // passes (the schedule is a pure function of the DES RNG).
    Simulation sim(seed * 9 + 7);
    Rng arrivalRng = sim.makeRng();
    // Moderated-NIC arrival rate: ~32us mean inter-arrival (a
    // typical interrupt-throttling setting), so the core is
    // compute-bound between interrupts — the regime where
    // sampled-detail simulation pays off.
    std::function<void()> arm = [&] {
        sim.queue().scheduleAfter(
            48000 + arrivalRng.nextBounded(32000), [&] {
                core.receiveIpi(core.uinv(), sim.now() + 600);
                arm();
            });
    };
    arm();

    const Cycles cycles = quick ? 2'000'000 : 40'000'000;
    WallTimer t;
    runCoSim(sim, sys, cycles);
    UarchPass p;
    p.wallSec = t.seconds();
    p.simCycles = core.now();
    p.events = static_cast<double>(core.stats().committedUops) +
               static_cast<double>(sim.queue().firedCount());
    p.ffCycles = core.stats().ffCycles;
    p.records = core.stats().intrRecords;
    return p;
}

SpeedResult
runL3Fwd(const bench::Options &opts)
{
    UarchPass detail = l3fwdPass(opts.quick, opts.seed, false, 0);
    UarchPass ff =
        l3fwdPass(opts.quick, opts.seed, true, opts.detailWindow);
    SpeedResult r;
    r.name = "l3fwd";
    r.wallSec = detail.wallSec;
    r.simCycles = static_cast<double>(detail.simCycles);
    r.events = detail.events;
    r.gateFfSpeedup = true;
    foldFfPair(r, detail, ff);
    r.peakRssKb = peakRssKb();
    return r;
}

/**
 * DES timer core: 8 cores running threads with interval timers,
 * plus a per-core watchdog that re-arms a timeout on every tick —
 * the schedule/cancel-heavy pattern from timeout-driven servers.
 */
struct Watchdog
{
    EventQueue &q;
    Rng rng;
    EventId timeout = kInvalidEventId;
    std::uint64_t rearms = 0;
    bool stopped = false;

    Watchdog(EventQueue &queue, std::uint64_t seed)
        : q(queue), rng(seed)
    {
    }

    void arm()
    {
        if (stopped)
            return;
        // Cancel the previous (rarely-fired) timeout and set a new
        // one — under the old queue each of these lingered in the
        // heap until its deadline passed.
        if (timeout != kInvalidEventId)
            q.cancel(timeout);
        timeout = q.scheduleAfter(500 + rng.nextBounded(1000), [] {});
        q.scheduleAfter(50 + rng.nextBounded(100), [this] {
            ++rearms;
            arm();
        });
    }
};

SpeedResult
runTimerCoreDes(bool quick, std::uint64_t seed)
{
    Simulation sim(seed);
    CostModel costs;
    const unsigned cores = 8;
    Kernel kernel(sim, costs, cores);
    for (unsigned c = 0; c < cores; ++c) {
        ThreadId thread = kernel.createThread();
        kernel.registerHandler(thread, [](unsigned) {});
        kernel.scheduleOn(thread, c);
        kernel.setInterval(thread, usToCycles(2 + c));
    }
    std::vector<std::unique_ptr<Watchdog>> dogs;
    for (unsigned c = 0; c < cores; ++c) {
        dogs.push_back(
            std::make_unique<Watchdog>(sim.queue(), seed * 31 + c));
        dogs.back()->arm();
    }

    const Cycles duration =
        quick ? 1 * kCyclesPerMs : 20 * kCyclesPerMs;
    WallTimer t;
    sim.runUntil(duration);
    for (auto &d : dogs)
        d->stopped = true;
    SpeedResult r;
    r.name = "timer_core_des";
    r.wallSec = t.seconds();
    r.simCycles = static_cast<double>(sim.now());
    r.events = static_cast<double>(sim.queue().firedCount());
    r.peakRssKb = peakRssKb();
    return r;
}

/** Fig. 8 l3fwd under xUI interrupt forwarding (DES tier). */
SpeedResult
runL3FwdDes(bool quick, std::uint64_t seed)
{
    L3FwdConfig cfg;
    cfg.mode = RxMode::XuiForwarded;
    cfg.numNics = 4;
    cfg.load = 0.7;
    cfg.seed = seed;
    cfg.duration = quick ? 2 * kCyclesPerMs : 40 * kCyclesPerMs;
    L3Fwd app(cfg);
    WallTimer t;
    L3FwdResult res = app.run();
    SpeedResult r;
    r.name = "l3fwd_des";
    r.wallSec = t.seconds();
    r.simCycles = static_cast<double>(cfg.duration);
    r.events = static_cast<double>(res.offered + res.forwarded +
                                   res.interrupts);
    r.peakRssKb = peakRssKb();
    return r;
}

/** Verification fuzz scenario (digest-instrumented uarch run). */
SpeedResult
runFuzz(bool quick, std::uint64_t seed)
{
    ScenarioConfig cfg;
    cfg.programSeed = seed + 4;
    cfg.systemSeed = seed + 4;
    cfg.targetInsts = quick ? 15'000 : 150'000;
    WallTimer t;
    ScenarioResult res = runScenario(cfg);
    SpeedResult r;
    r.name = "fuzz";
    r.wallSec = t.seconds();
    r.simCycles = static_cast<double>(res.cycles);
    r.events = static_cast<double>(res.eventCount);
    r.peakRssKb = peakRssKb();
    return r;
}

// ----------------------------------------------------------------------
// Parallel-scaling mode (src/exec sweep engine)
// ----------------------------------------------------------------------

/** One rung of the worker-thread ladder. */
struct ScalePoint
{
    unsigned jobs = 1;
    double wallSec = 0.0;
    std::size_t sims = 0;
    /** Order-sensitive combination of every scenario fullDigest. */
    std::uint64_t digest = 0;

    double simsPerSec() const
    {
        return wallSec > 0.0
            ? static_cast<double>(sims) / wallSec
            : 0.0;
    }
};

/**
 * Thread ladder for the scaling sweep: powers of two up to the
 * ceiling, plus the ceiling itself. `--jobs 0` (auto) uses the
 * fixed 1/2/4/8 ladder so JSON output is machine-comparable across
 * hosts regardless of core count.
 */
std::vector<unsigned>
jobLadder(unsigned requested)
{
    const unsigned cap = requested == 0 ? 8 : requested;
    std::vector<unsigned> ladder;
    for (unsigned j = 1; j <= cap; j *= 2)
        ladder.push_back(j);
    if (ladder.back() != cap)
        ladder.push_back(cap);
    return ladder;
}

/** Run the fuzz-scenario corpus once at `jobs` worker threads. */
ScalePoint
runScaleRung(unsigned jobs, std::size_t sims, bool quick,
             std::uint64_t seed)
{
    ScalePoint p;
    p.jobs = jobs;
    p.sims = sims;
    WallTimer t;
    exec::sweepReduce(
        sims, jobs,
        [&](std::size_t i) {
            ScenarioConfig cfg;
            cfg.programSeed = seed + 100 + i;
            cfg.systemSeed = seed + 200 + i;
            cfg.strategy = (i % 2 == 0) ? DeliveryStrategy::Flush
                                        : DeliveryStrategy::Tracked;
            cfg.targetInsts = quick ? 4'000 : 40'000;
            ScenarioResult res = runScenario(cfg);
            return res.fullDigest;
        },
        [&](std::size_t, std::uint64_t digest) {
            // Order-sensitive mix (splitmix-style) — any reorder of
            // the reduction would change the combined value.
            p.digest ^= digest + 0x9e3779b97f4a7c15ull +
                (p.digest << 6) + (p.digest >> 2);
        });
    p.wallSec = t.seconds();
    return p;
}

void
writeParallelJson(const char *path,
                  const std::vector<ScalePoint> &points, bool quick,
                  std::uint64_t seed)
{
    std::FILE *f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path);
        std::exit(1);
    }
    const double serial =
        points.empty() ? 0.0 : points.front().simsPerSec();
    std::fprintf(f, "{\n  \"bench\": \"simspeed_parallel\",\n");
    std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(f, "  \"seed\": %llu,\n",
                 static_cast<unsigned long long>(seed));
    std::fprintf(f, "  \"corpus_sims\": %zu,\n",
                 points.empty() ? std::size_t{0} : points[0].sims);
    std::fprintf(f, "  \"digest\": \"%016llx\",\n",
                 static_cast<unsigned long long>(
                     points.empty() ? 0 : points[0].digest));
    std::fprintf(f, "  \"points\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
        const ScalePoint &p = points[i];
        std::fprintf(f,
                     "    {\"jobs\": %u, \"wall_seconds\": %.6f, "
                     "\"sims_per_sec\": %.2f, "
                     "\"speedup_vs_serial\": %.2f}%s\n",
                     p.jobs, p.wallSec, p.simsPerSec(),
                     serial > 0.0 ? p.simsPerSec() / serial : 0.0,
                     i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

/**
 * Sweep the corpus at every rung, verify digest bit-identity
 * across thread counts, print the table, and write `path`.
 * Exits 1 on any cross-thread-count digest divergence.
 */
void
runScalingMode(const char *path, const bench::Options &opts)
{
    const std::size_t sims = opts.quick ? 8 : 16;
    std::vector<ScalePoint> points;
    for (unsigned j : jobLadder(opts.jobs))
        points.push_back(
            runScaleRung(j, sims, opts.quick, opts.seed));

    std::printf("\nparallel scaling (fuzz corpus, %zu sims; src/exec "
                "sweep engine)\n",
                sims);
    std::printf("%6s %10s %12s %9s %18s\n", "jobs", "wall s",
                "sims/s", "speedup", "digest");
    for (const ScalePoint &p : points) {
        std::printf("%6u %10.3f %12.2f %8.2fx   %016llx\n", p.jobs,
                    p.wallSec, p.simsPerSec(),
                    points[0].simsPerSec() > 0.0
                        ? p.simsPerSec() / points[0].simsPerSec()
                        : 0.0,
                    static_cast<unsigned long long>(p.digest));
    }

    for (const ScalePoint &p : points) {
        if (p.digest != points[0].digest) {
            std::fprintf(stderr,
                         "FAIL: digest diverged at --jobs %u "
                         "(%016llx vs %016llx at --jobs %u)\n",
                         p.jobs,
                         static_cast<unsigned long long>(p.digest),
                         static_cast<unsigned long long>(
                             points[0].digest),
                         points[0].jobs);
            std::exit(1);
        }
    }
    std::printf("digests bit-identical across all thread counts\n");
    writeParallelJson(path, points, opts.quick, opts.seed);
}

void
writeJson(const char *path, const std::vector<SpeedResult> &results,
          bool quick, std::uint64_t seed)
{
    std::FILE *f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path);
        std::exit(1);
    }
    std::fprintf(f, "{\n  \"bench\": \"simspeed\",\n");
    std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(f, "  \"seed\": %llu,\n",
                 static_cast<unsigned long long>(seed));
    std::fprintf(f, "  \"scenarios\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const SpeedResult &r = results[i];
        double base = baselineCyclesPerSec(r.name);
        double speedup =
            base > 0.0 ? r.cyclesPerSec() / base : 0.0;
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"sim_cycles\": %.0f, "
                     "\"events\": %.0f, \"wall_seconds\": %.6f,\n"
                     "     \"cycles_per_sec\": %.0f, "
                     "\"events_per_sec\": %.0f,\n"
                     "     \"baseline_cycles_per_sec\": %.0f, "
                     "\"speedup_vs_baseline\": %.2f,\n"
                     "     \"peak_rss_kb\": %ld",
                     r.name.c_str(), r.simCycles, r.events,
                     r.wallSec, r.cyclesPerSec(), r.eventsPerSec(),
                     base, speedup, r.peakRssKb);
        if (r.hasFf) {
            std::fprintf(
                f,
                ",\n     \"ff_wall_seconds\": %.6f, "
                "\"ff_cycles_per_sec\": %.0f,\n"
                "     \"ff_speedup_vs_detail\": %.2f, "
                "\"ff_cycle_fraction\": %.4f,\n"
                "     \"ff_p50_delta_pct\": %.4f, "
                "\"ff_p99_delta_pct\": %.4f",
                r.ffWallSec, r.ffCyclesPerSec(),
                r.ffSpeedupVsDetail(), r.ffCycleFraction,
                r.ffP50DeltaPct, r.ffP99DeltaPct);
        }
        std::fprintf(f, "}%s\n",
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

// ----------------------------------------------------------------------
// Checkpoint/restore mode (--checkpoint-every / --restore)
// ----------------------------------------------------------------------

/**
 * Dedicated mode measuring the cost side of the recovery-time
 * trade-off (EXPERIMENTS.md): run the fuzz scenario with a snapshot
 * every N cycles into the crash-consistent generation set
 * `BENCH_simspeed.ckpt.gen*` (kept on disk: `--restore` consumes
 * them), report per-snapshot cost and whole-run overhead against an
 * uncheckpointed reference, and verify the checkpointed — or
 * restored — run stays bit-identical to the reference. Exit 1 on
 * digest divergence or a refused restore (corrupt file, wrong
 * binary).
 */
int
runCheckpointMode(const bench::Options &opts)
{
    ScenarioConfig cfg;
    cfg.programSeed = opts.seed + 4;
    cfg.systemSeed = opts.seed + 4;
    cfg.targetInsts = opts.quick ? 15'000 : 150'000;

    // Uninterrupted reference: correctness oracle and wall-clock
    // baseline. Same config recipe as runFuzz, so the scenario is
    // a pure function of (--seed, --quick) — the reason a restored
    // snapshot lines up without serializing the config.
    WallTimer tRef;
    ScenarioRun ref(cfg);
    ref.runToEnd();
    const double refWall = tRef.seconds();
    const ScenarioResult refRes = ref.finish();

    ScenarioRun run(cfg);
    double restoreWall = 0.0;
    Cycles resumedAt = 0;
    if (!opts.restorePath.empty()) {
        WallTimer tRestore;
        ckpt::Snapshot snap;
        ckpt::LoadStatus st =
            ckpt::loadSnapshot(opts.restorePath, snap);
        if (st != ckpt::LoadStatus::Ok) {
            std::fprintf(stderr, "simspeed: restore %s: %s\n",
                         opts.restorePath.c_str(),
                         ckpt::loadStatusName(st));
            return 1;
        }
        ckpt::Reader r(snap.payload);
        if (!run.loadState(r)) {
            std::fprintf(stderr,
                         "simspeed: restore %s: snapshot payload "
                         "does not decode into this scenario "
                         "(different --seed/--quick?)\n",
                         opts.restorePath.c_str());
            return 1;
        }
        restoreWall = tRestore.seconds();
        resumedAt = run.now();
    }

    ckpt::GenerationSet gens("BENCH_simspeed.ckpt");
    std::uint64_t snaps = 0;
    double snapWall = 0.0;
    WallTimer tRun;
    if (opts.checkpointEvery != 0) {
        while (run.advance(opts.checkpointEvery)) {
            WallTimer tSnap;
            ckpt::Writer w;
            run.saveState(w);
            ckpt::Snapshot snap;
            snap.tag = "simspeed_fuzz";
            snap.payload = w.take();
            ckpt::SaveResult sr = gens.save(std::move(snap));
            if (!sr.ok) {
                std::fprintf(stderr,
                             "simspeed: snapshot save failed: %s\n",
                             sr.error.c_str());
                return 1;
            }
            snapWall += tSnap.seconds();
            ++snaps;
        }
    } else {
        run.runToEnd();
    }
    const double runWall = tRun.seconds();
    const ScenarioResult res = run.finish();

    const bool identical = res.fullDigest == refRes.fullDigest &&
                           res.eventCount == refRes.eventCount &&
                           res.cycles == refRes.cycles;

    std::printf("checkpoint/restore (fuzz scenario, %llu cycles)\n",
                static_cast<unsigned long long>(refRes.cycles));
    if (!opts.restorePath.empty())
        std::printf("  restored from %s at cycle %llu "
                    "(load+decode %.3f ms)\n",
                    opts.restorePath.c_str(),
                    static_cast<unsigned long long>(resumedAt),
                    restoreWall * 1e3);
    if (opts.checkpointEvery != 0) {
        // Crash-recovery model: restore the newest generation, then
        // replay from the snapshot to the crash point — on average
        // half an interval of re-simulated work.
        const double detailRate =
            refWall > 0.0
                ? static_cast<double>(refRes.cycles) / refWall
                : 0.0;
        const double meanReplaySec =
            detailRate > 0.0
                ? static_cast<double>(opts.checkpointEvery) / 2.0 /
                      detailRate
                : 0.0;
        std::printf(
            "  interval %llu cycles: %llu snapshots, "
            "%.3f ms each (%.3f s total)\n",
            static_cast<unsigned long long>(opts.checkpointEvery),
            static_cast<unsigned long long>(snaps),
            snaps != 0 ? snapWall * 1e3 /
                             static_cast<double>(snaps)
                       : 0.0,
            snapWall);
        std::printf("  run %.3f s vs reference %.3f s "
                    "(overhead %.1f%%); est. mean replay on crash "
                    "%.3f s\n",
                    runWall, refWall,
                    refWall > 0.0
                        ? (runWall / refWall - 1.0) * 100.0
                        : 0.0,
                    meanReplaySec);
        std::printf("  snapshots kept: BENCH_simspeed.ckpt.gen0..%u "
                    "(resume: --restore FILE)\n",
                    gens.keep() - 1);
    }
    std::printf("  digest %s: %016llx vs reference %016llx\n",
                identical ? "MATCH" : "MISMATCH",
                static_cast<unsigned long long>(res.fullDigest),
                static_cast<unsigned long long>(refRes.fullDigest));
    if (!identical) {
        std::fprintf(stderr,
                     "FAIL: checkpointed/restored run diverged "
                     "from the uninterrupted reference\n");
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Options opts = bench::parseArgs(argc, argv);
    bench::banner("simspeed — simulator throughput across canonical "
                  "scenarios",
                  "infrastructure (no paper figure): cycles/sec + "
                  "events/sec baseline");

    // Checkpoint/restore is its own mode (like a figure section):
    // the canonical scenarios stay serial and uncheckpointed so
    // their rates remain comparable against kBaseline.
    if (opts.checkpointEvery != 0 || !opts.restorePath.empty())
        return runCheckpointMode(opts);

    std::vector<SpeedResult> results;
    results.push_back(runFig2(opts));
    results.push_back(runTimerCore(opts));
    results.push_back(runL3Fwd(opts));
    results.push_back(runTimerCoreDes(opts.quick, opts.seed));
    results.push_back(runL3FwdDes(opts.quick, opts.seed));
    results.push_back(runFuzz(opts.quick, opts.seed));

    std::printf("%-14s %14s %14s %10s %14s %14s %9s\n", "scenario",
                "sim cycles", "events", "wall s", "cycles/s",
                "events/s", "speedup");
    for (const SpeedResult &r : results) {
        double base = baselineCyclesPerSec(r.name);
        std::printf("%-14s %14.0f %14.0f %10.3f %14.0f %14.0f %8.2fx\n",
                    r.name.c_str(), r.simCycles, r.events, r.wallSec,
                    r.cyclesPerSec(), r.eventsPerSec(),
                    base > 0.0 ? r.cyclesPerSec() / base : 0.0);
    }

    // Sampled-detail comparison table + gates. Accuracy deltas are
    // simulated quantities (deterministic per seed); the speedup is
    // a same-host ratio of the two passes, so both gates are safe
    // to enforce in CI.
    bool gateFailed = false;
    std::printf("\n%-14s %14s %12s %10s %12s %12s\n", "ff scenario",
                "ff cycles/s", "ff speedup", "ff frac",
                "p50 drift", "p99 drift");
    for (const SpeedResult &r : results) {
        if (!r.hasFf)
            continue;
        std::printf("%-14s %14.0f %11.2fx %9.1f%% %11.2f%% %11.2f%%\n",
                    r.name.c_str(), r.ffCyclesPerSec(),
                    r.ffSpeedupVsDetail(),
                    r.ffCycleFraction * 100.0, r.ffP50DeltaPct,
                    r.ffP99DeltaPct);
        if (!r.ffAccuracyOk) {
            std::fprintf(stderr,
                         "FAIL: %s sampled run drifted beyond "
                         "tolerance: %s\n",
                         r.name.c_str(), r.ffMessage.c_str());
            gateFailed = true;
        }
        if (r.gateFfSpeedup && r.ffSpeedupVsDetail() < 10.0) {
            std::fprintf(stderr,
                         "FAIL: %s sampled speedup %.2fx below the "
                         "10x requirement\n",
                         r.name.c_str(), r.ffSpeedupVsDetail());
            gateFailed = true;
        }
    }

    writeJson("BENCH_simspeed.json", results, opts.quick, opts.seed);
    std::printf("\nwrote BENCH_simspeed.json\n");

    runScalingMode("BENCH_parallel.json", opts);
    std::printf("wrote BENCH_parallel.json\n");
    if (gateFailed) {
        std::fprintf(stderr,
                     "simspeed: sampled-vs-detailed gate failed\n");
        return 1;
    }
    return 0;
}
