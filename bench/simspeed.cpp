/**
 * @file
 * Simulator-throughput benchmark: simulated-cycles-per-wall-second
 * and events-per-second across four canonical scenarios, so the
 * perf trajectory of the simulation kernel itself (event queue,
 * OoO tick loop, obs hot paths) has a pinned baseline and CI can
 * chart regressions.
 *
 * Scenarios:
 *  - fig2:       uarch tier, pointer-chase + periodic KB timer in
 *                Flush mode (the Fig. 2 timeline workload).
 *  - timer_core: DES tier, kernel interval timers plus
 *                cancel-heavy watchdog re-arm churn on the event
 *                queue (the pattern that leaked under the old
 *                lazy-cancel queue).
 *  - l3fwd:      DES tier, Fig. 8 forwarding app under xUI
 *                interrupt forwarding.
 *  - fuzz:       uarch tier, verification scenario runner (fuzz
 *                program + digest instrumentation).
 *
 * Emits BENCH_simspeed.json (cwd) with per-scenario rates and the
 * speedup against the pre-optimization baseline recorded below.
 *
 * A second, parallel-scaling section sweeps a corpus of fuzz
 * scenarios through the src/exec engine at a worker-thread ladder
 * (1/2/4/8, or powers of two up to `--jobs N`), cross-checks that
 * the combined digests are bit-identical at every rung, and emits
 * BENCH_parallel.json with sims/sec and speedup-vs-serial. The
 * canonical four scenarios above stay serial so their wall-clock
 * rates remain comparable against kBaseline.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "exec/sweep.hh"
#include "des/simulation.hh"
#include "net/l3fwd.hh"
#include "os/cost_model.hh"
#include "os/kernel.hh"
#include "stats/rng.hh"
#include "uarch/uarch_system.hh"
#include "verify/scenario.hh"
#include "workloads/kernels.hh"

using namespace xui;

namespace
{

/**
 * Pre-optimization rates, captured on the reference container at
 * the commit immediately before the hot-path overhaul (same
 * scenarios, full mode, RelWithDebInfo). `speedup_vs_baseline` in
 * the JSON is measured against these.
 */
struct BaselineRate
{
    const char *name;
    double cyclesPerSec;
    double eventsPerSec;
};

constexpr BaselineRate kBaseline[] = {
    {"fig2", 2912915.0, 17044.0},
    {"timer_core", 42924291.0, 3490015.0},
    {"l3fwd", 550843927.0, 2883792.0},
    {"fuzz", 899235.0, 6644826.0},
};

double
baselineCyclesPerSec(const std::string &name)
{
    for (const auto &b : kBaseline)
        if (name == b.name)
            return b.cyclesPerSec;
    return 0.0;
}

struct SpeedResult
{
    std::string name;
    double simCycles = 0.0;
    double events = 0.0;
    double wallSec = 0.0;

    double cyclesPerSec() const
    {
        return wallSec > 0.0 ? simCycles / wallSec : 0.0;
    }
    double eventsPerSec() const
    {
        return wallSec > 0.0 ? events / wallSec : 0.0;
    }
};

class WallTimer
{
  public:
    WallTimer() : start_(std::chrono::steady_clock::now()) {}
    double seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

/** Fig. 2 timeline workload: pointer-chase + Flush-mode KB timer. */
SpeedResult
runFig2(bool quick, std::uint64_t seed)
{
    Program prog = makePointerChase(16, 4ull << 20, false);
    CoreParams params;
    params.strategy = DeliveryStrategy::Flush;
    UarchSystem sys(seed + 2);
    OooCore &core = sys.addCore(params, &prog);
    core.kbTimer().configure(true, 0x21);
    core.kbTimer().setTimer(0, usToCycles(20), KbTimerMode::Periodic);

    const Cycles cycles = quick ? 300'000 : 3'000'000;
    WallTimer t;
    core.runCycles(cycles);
    SpeedResult r;
    r.name = "fig2";
    r.wallSec = t.seconds();
    r.simCycles = static_cast<double>(core.now());
    r.events = static_cast<double>(core.stats().committedUops);
    return r;
}

/**
 * DES timer core: 8 cores running threads with interval timers,
 * plus a per-core watchdog that re-arms a timeout on every tick —
 * the schedule/cancel-heavy pattern from timeout-driven servers.
 */
struct Watchdog
{
    EventQueue &q;
    Rng rng;
    EventId timeout = kInvalidEventId;
    std::uint64_t rearms = 0;
    bool stopped = false;

    Watchdog(EventQueue &queue, std::uint64_t seed)
        : q(queue), rng(seed)
    {
    }

    void arm()
    {
        if (stopped)
            return;
        // Cancel the previous (rarely-fired) timeout and set a new
        // one — under the old queue each of these lingered in the
        // heap until its deadline passed.
        if (timeout != kInvalidEventId)
            q.cancel(timeout);
        timeout = q.scheduleAfter(500 + rng.nextBounded(1000), [] {});
        q.scheduleAfter(50 + rng.nextBounded(100), [this] {
            ++rearms;
            arm();
        });
    }
};

SpeedResult
runTimerCore(bool quick, std::uint64_t seed)
{
    Simulation sim(seed);
    CostModel costs;
    const unsigned cores = 8;
    Kernel kernel(sim, costs, cores);
    for (unsigned c = 0; c < cores; ++c) {
        ThreadId thread = kernel.createThread();
        kernel.registerHandler(thread, [](unsigned) {});
        kernel.scheduleOn(thread, c);
        kernel.setInterval(thread, usToCycles(2 + c));
    }
    std::vector<std::unique_ptr<Watchdog>> dogs;
    for (unsigned c = 0; c < cores; ++c) {
        dogs.push_back(
            std::make_unique<Watchdog>(sim.queue(), seed * 31 + c));
        dogs.back()->arm();
    }

    const Cycles duration =
        quick ? 1 * kCyclesPerMs : 20 * kCyclesPerMs;
    WallTimer t;
    sim.runUntil(duration);
    for (auto &d : dogs)
        d->stopped = true;
    SpeedResult r;
    r.name = "timer_core";
    r.wallSec = t.seconds();
    r.simCycles = static_cast<double>(sim.now());
    r.events = static_cast<double>(sim.queue().firedCount());
    return r;
}

/** Fig. 8 l3fwd under xUI interrupt forwarding. */
SpeedResult
runL3Fwd(bool quick, std::uint64_t seed)
{
    L3FwdConfig cfg;
    cfg.mode = RxMode::XuiForwarded;
    cfg.numNics = 4;
    cfg.load = 0.7;
    cfg.seed = seed;
    cfg.duration = quick ? 2 * kCyclesPerMs : 40 * kCyclesPerMs;
    L3Fwd app(cfg);
    WallTimer t;
    L3FwdResult res = app.run();
    SpeedResult r;
    r.name = "l3fwd";
    r.wallSec = t.seconds();
    r.simCycles = static_cast<double>(cfg.duration);
    r.events = static_cast<double>(res.offered + res.forwarded +
                                   res.interrupts);
    return r;
}

/** Verification fuzz scenario (digest-instrumented uarch run). */
SpeedResult
runFuzz(bool quick, std::uint64_t seed)
{
    ScenarioConfig cfg;
    cfg.programSeed = seed + 4;
    cfg.systemSeed = seed + 4;
    cfg.targetInsts = quick ? 15'000 : 150'000;
    WallTimer t;
    ScenarioResult res = runScenario(cfg);
    SpeedResult r;
    r.name = "fuzz";
    r.wallSec = t.seconds();
    r.simCycles = static_cast<double>(res.cycles);
    r.events = static_cast<double>(res.eventCount);
    return r;
}

// ----------------------------------------------------------------------
// Parallel-scaling mode (src/exec sweep engine)
// ----------------------------------------------------------------------

/** One rung of the worker-thread ladder. */
struct ScalePoint
{
    unsigned jobs = 1;
    double wallSec = 0.0;
    std::size_t sims = 0;
    /** Order-sensitive combination of every scenario fullDigest. */
    std::uint64_t digest = 0;

    double simsPerSec() const
    {
        return wallSec > 0.0
            ? static_cast<double>(sims) / wallSec
            : 0.0;
    }
};

/**
 * Thread ladder for the scaling sweep: powers of two up to the
 * ceiling, plus the ceiling itself. `--jobs 0` (auto) uses the
 * fixed 1/2/4/8 ladder so JSON output is machine-comparable across
 * hosts regardless of core count.
 */
std::vector<unsigned>
jobLadder(unsigned requested)
{
    const unsigned cap = requested == 0 ? 8 : requested;
    std::vector<unsigned> ladder;
    for (unsigned j = 1; j <= cap; j *= 2)
        ladder.push_back(j);
    if (ladder.back() != cap)
        ladder.push_back(cap);
    return ladder;
}

/** Run the fuzz-scenario corpus once at `jobs` worker threads. */
ScalePoint
runScaleRung(unsigned jobs, std::size_t sims, bool quick,
             std::uint64_t seed)
{
    ScalePoint p;
    p.jobs = jobs;
    p.sims = sims;
    WallTimer t;
    exec::sweepReduce(
        sims, jobs,
        [&](std::size_t i) {
            ScenarioConfig cfg;
            cfg.programSeed = seed + 100 + i;
            cfg.systemSeed = seed + 200 + i;
            cfg.strategy = (i % 2 == 0) ? DeliveryStrategy::Flush
                                        : DeliveryStrategy::Tracked;
            cfg.targetInsts = quick ? 4'000 : 40'000;
            ScenarioResult res = runScenario(cfg);
            return res.fullDigest;
        },
        [&](std::size_t, std::uint64_t digest) {
            // Order-sensitive mix (splitmix-style) — any reorder of
            // the reduction would change the combined value.
            p.digest ^= digest + 0x9e3779b97f4a7c15ull +
                (p.digest << 6) + (p.digest >> 2);
        });
    p.wallSec = t.seconds();
    return p;
}

void
writeParallelJson(const char *path,
                  const std::vector<ScalePoint> &points, bool quick,
                  std::uint64_t seed)
{
    std::FILE *f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path);
        std::exit(1);
    }
    const double serial =
        points.empty() ? 0.0 : points.front().simsPerSec();
    std::fprintf(f, "{\n  \"bench\": \"simspeed_parallel\",\n");
    std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(f, "  \"seed\": %llu,\n",
                 static_cast<unsigned long long>(seed));
    std::fprintf(f, "  \"corpus_sims\": %zu,\n",
                 points.empty() ? std::size_t{0} : points[0].sims);
    std::fprintf(f, "  \"digest\": \"%016llx\",\n",
                 static_cast<unsigned long long>(
                     points.empty() ? 0 : points[0].digest));
    std::fprintf(f, "  \"points\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
        const ScalePoint &p = points[i];
        std::fprintf(f,
                     "    {\"jobs\": %u, \"wall_seconds\": %.6f, "
                     "\"sims_per_sec\": %.2f, "
                     "\"speedup_vs_serial\": %.2f}%s\n",
                     p.jobs, p.wallSec, p.simsPerSec(),
                     serial > 0.0 ? p.simsPerSec() / serial : 0.0,
                     i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

/**
 * Sweep the corpus at every rung, verify digest bit-identity
 * across thread counts, print the table, and write `path`.
 * Exits 1 on any cross-thread-count digest divergence.
 */
void
runScalingMode(const char *path, const bench::Options &opts)
{
    const std::size_t sims = opts.quick ? 8 : 16;
    std::vector<ScalePoint> points;
    for (unsigned j : jobLadder(opts.jobs))
        points.push_back(
            runScaleRung(j, sims, opts.quick, opts.seed));

    std::printf("\nparallel scaling (fuzz corpus, %zu sims; src/exec "
                "sweep engine)\n",
                sims);
    std::printf("%6s %10s %12s %9s %18s\n", "jobs", "wall s",
                "sims/s", "speedup", "digest");
    for (const ScalePoint &p : points) {
        std::printf("%6u %10.3f %12.2f %8.2fx   %016llx\n", p.jobs,
                    p.wallSec, p.simsPerSec(),
                    points[0].simsPerSec() > 0.0
                        ? p.simsPerSec() / points[0].simsPerSec()
                        : 0.0,
                    static_cast<unsigned long long>(p.digest));
    }

    for (const ScalePoint &p : points) {
        if (p.digest != points[0].digest) {
            std::fprintf(stderr,
                         "FAIL: digest diverged at --jobs %u "
                         "(%016llx vs %016llx at --jobs %u)\n",
                         p.jobs,
                         static_cast<unsigned long long>(p.digest),
                         static_cast<unsigned long long>(
                             points[0].digest),
                         points[0].jobs);
            std::exit(1);
        }
    }
    std::printf("digests bit-identical across all thread counts\n");
    writeParallelJson(path, points, opts.quick, opts.seed);
}

void
writeJson(const char *path, const std::vector<SpeedResult> &results,
          bool quick, std::uint64_t seed)
{
    std::FILE *f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path);
        std::exit(1);
    }
    std::fprintf(f, "{\n  \"bench\": \"simspeed\",\n");
    std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(f, "  \"seed\": %llu,\n",
                 static_cast<unsigned long long>(seed));
    std::fprintf(f, "  \"scenarios\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const SpeedResult &r = results[i];
        double base = baselineCyclesPerSec(r.name);
        double speedup =
            base > 0.0 ? r.cyclesPerSec() / base : 0.0;
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"sim_cycles\": %.0f, "
                     "\"events\": %.0f, \"wall_seconds\": %.6f,\n"
                     "     \"cycles_per_sec\": %.0f, "
                     "\"events_per_sec\": %.0f,\n"
                     "     \"baseline_cycles_per_sec\": %.0f, "
                     "\"speedup_vs_baseline\": %.2f}%s\n",
                     r.name.c_str(), r.simCycles, r.events,
                     r.wallSec, r.cyclesPerSec(), r.eventsPerSec(),
                     base, speedup,
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Options opts = bench::parseArgs(argc, argv);
    bench::banner("simspeed — simulator throughput across canonical "
                  "scenarios",
                  "infrastructure (no paper figure): cycles/sec + "
                  "events/sec baseline");

    std::vector<SpeedResult> results;
    results.push_back(runFig2(opts.quick, opts.seed));
    results.push_back(runTimerCore(opts.quick, opts.seed));
    results.push_back(runL3Fwd(opts.quick, opts.seed));
    results.push_back(runFuzz(opts.quick, opts.seed));

    std::printf("%-12s %14s %14s %10s %14s %14s %9s\n", "scenario",
                "sim cycles", "events", "wall s", "cycles/s",
                "events/s", "speedup");
    for (const SpeedResult &r : results) {
        double base = baselineCyclesPerSec(r.name);
        std::printf("%-12s %14.0f %14.0f %10.3f %14.0f %14.0f %8.2fx\n",
                    r.name.c_str(), r.simCycles, r.events, r.wallSec,
                    r.cyclesPerSec(), r.eventsPerSec(),
                    base > 0.0 ? r.cyclesPerSec() / base : 0.0);
    }

    writeJson("BENCH_simspeed.json", results, opts.quick, opts.seed);
    std::printf("\nwrote BENCH_simspeed.json\n");

    runScalingMode("BENCH_parallel.json", opts);
    std::printf("wrote BENCH_parallel.json\n");
    return 0;
}
