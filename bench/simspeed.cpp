/**
 * @file
 * Simulator-throughput benchmark: simulated-cycles-per-wall-second
 * and events-per-second across four canonical scenarios, so the
 * perf trajectory of the simulation kernel itself (event queue,
 * OoO tick loop, obs hot paths) has a pinned baseline and CI can
 * chart regressions.
 *
 * Scenarios:
 *  - fig2:       uarch tier, pointer-chase + periodic KB timer in
 *                Flush mode (the Fig. 2 timeline workload).
 *  - timer_core: DES tier, kernel interval timers plus
 *                cancel-heavy watchdog re-arm churn on the event
 *                queue (the pattern that leaked under the old
 *                lazy-cancel queue).
 *  - l3fwd:      DES tier, Fig. 8 forwarding app under xUI
 *                interrupt forwarding.
 *  - fuzz:       uarch tier, verification scenario runner (fuzz
 *                program + digest instrumentation).
 *
 * Emits BENCH_simspeed.json (cwd) with per-scenario rates and the
 * speedup against the pre-optimization baseline recorded below.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "des/simulation.hh"
#include "net/l3fwd.hh"
#include "os/cost_model.hh"
#include "os/kernel.hh"
#include "stats/rng.hh"
#include "uarch/uarch_system.hh"
#include "verify/scenario.hh"
#include "workloads/kernels.hh"

using namespace xui;

namespace
{

/**
 * Pre-optimization rates, captured on the reference container at
 * the commit immediately before the hot-path overhaul (same
 * scenarios, full mode, RelWithDebInfo). `speedup_vs_baseline` in
 * the JSON is measured against these.
 */
struct BaselineRate
{
    const char *name;
    double cyclesPerSec;
    double eventsPerSec;
};

constexpr BaselineRate kBaseline[] = {
    {"fig2", 2912915.0, 17044.0},
    {"timer_core", 42924291.0, 3490015.0},
    {"l3fwd", 550843927.0, 2883792.0},
    {"fuzz", 899235.0, 6644826.0},
};

double
baselineCyclesPerSec(const std::string &name)
{
    for (const auto &b : kBaseline)
        if (name == b.name)
            return b.cyclesPerSec;
    return 0.0;
}

struct SpeedResult
{
    std::string name;
    double simCycles = 0.0;
    double events = 0.0;
    double wallSec = 0.0;

    double cyclesPerSec() const
    {
        return wallSec > 0.0 ? simCycles / wallSec : 0.0;
    }
    double eventsPerSec() const
    {
        return wallSec > 0.0 ? events / wallSec : 0.0;
    }
};

class WallTimer
{
  public:
    WallTimer() : start_(std::chrono::steady_clock::now()) {}
    double seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

/** Fig. 2 timeline workload: pointer-chase + Flush-mode KB timer. */
SpeedResult
runFig2(bool quick, std::uint64_t seed)
{
    Program prog = makePointerChase(16, 4ull << 20, false);
    CoreParams params;
    params.strategy = DeliveryStrategy::Flush;
    UarchSystem sys(seed + 2);
    OooCore &core = sys.addCore(params, &prog);
    core.kbTimer().configure(true, 0x21);
    core.kbTimer().setTimer(0, usToCycles(20), KbTimerMode::Periodic);

    const Cycles cycles = quick ? 300'000 : 3'000'000;
    WallTimer t;
    core.runCycles(cycles);
    SpeedResult r;
    r.name = "fig2";
    r.wallSec = t.seconds();
    r.simCycles = static_cast<double>(core.now());
    r.events = static_cast<double>(core.stats().committedUops);
    return r;
}

/**
 * DES timer core: 8 cores running threads with interval timers,
 * plus a per-core watchdog that re-arms a timeout on every tick —
 * the schedule/cancel-heavy pattern from timeout-driven servers.
 */
struct Watchdog
{
    EventQueue &q;
    Rng rng;
    EventId timeout = kInvalidEventId;
    std::uint64_t rearms = 0;
    bool stopped = false;

    Watchdog(EventQueue &queue, std::uint64_t seed)
        : q(queue), rng(seed)
    {
    }

    void arm()
    {
        if (stopped)
            return;
        // Cancel the previous (rarely-fired) timeout and set a new
        // one — under the old queue each of these lingered in the
        // heap until its deadline passed.
        if (timeout != kInvalidEventId)
            q.cancel(timeout);
        timeout = q.scheduleAfter(500 + rng.nextBounded(1000), [] {});
        q.scheduleAfter(50 + rng.nextBounded(100), [this] {
            ++rearms;
            arm();
        });
    }
};

SpeedResult
runTimerCore(bool quick, std::uint64_t seed)
{
    Simulation sim(seed);
    CostModel costs;
    const unsigned cores = 8;
    Kernel kernel(sim, costs, cores);
    for (unsigned c = 0; c < cores; ++c) {
        ThreadId thread = kernel.createThread();
        kernel.registerHandler(thread, [](unsigned) {});
        kernel.scheduleOn(thread, c);
        kernel.setInterval(thread, usToCycles(2 + c));
    }
    std::vector<std::unique_ptr<Watchdog>> dogs;
    for (unsigned c = 0; c < cores; ++c) {
        dogs.push_back(
            std::make_unique<Watchdog>(sim.queue(), seed * 31 + c));
        dogs.back()->arm();
    }

    const Cycles duration =
        quick ? 1 * kCyclesPerMs : 20 * kCyclesPerMs;
    WallTimer t;
    sim.runUntil(duration);
    for (auto &d : dogs)
        d->stopped = true;
    SpeedResult r;
    r.name = "timer_core";
    r.wallSec = t.seconds();
    r.simCycles = static_cast<double>(sim.now());
    r.events = static_cast<double>(sim.queue().firedCount());
    return r;
}

/** Fig. 8 l3fwd under xUI interrupt forwarding. */
SpeedResult
runL3Fwd(bool quick, std::uint64_t seed)
{
    L3FwdConfig cfg;
    cfg.mode = RxMode::XuiForwarded;
    cfg.numNics = 4;
    cfg.load = 0.7;
    cfg.seed = seed;
    cfg.duration = quick ? 2 * kCyclesPerMs : 40 * kCyclesPerMs;
    L3Fwd app(cfg);
    WallTimer t;
    L3FwdResult res = app.run();
    SpeedResult r;
    r.name = "l3fwd";
    r.wallSec = t.seconds();
    r.simCycles = static_cast<double>(cfg.duration);
    r.events = static_cast<double>(res.offered + res.forwarded +
                                   res.interrupts);
    return r;
}

/** Verification fuzz scenario (digest-instrumented uarch run). */
SpeedResult
runFuzz(bool quick, std::uint64_t seed)
{
    ScenarioConfig cfg;
    cfg.programSeed = seed + 4;
    cfg.systemSeed = seed + 4;
    cfg.targetInsts = quick ? 15'000 : 150'000;
    WallTimer t;
    ScenarioResult res = runScenario(cfg);
    SpeedResult r;
    r.name = "fuzz";
    r.wallSec = t.seconds();
    r.simCycles = static_cast<double>(res.cycles);
    r.events = static_cast<double>(res.eventCount);
    return r;
}

void
writeJson(const char *path, const std::vector<SpeedResult> &results,
          bool quick, std::uint64_t seed)
{
    std::FILE *f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path);
        std::exit(1);
    }
    std::fprintf(f, "{\n  \"bench\": \"simspeed\",\n");
    std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(f, "  \"seed\": %llu,\n",
                 static_cast<unsigned long long>(seed));
    std::fprintf(f, "  \"scenarios\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const SpeedResult &r = results[i];
        double base = baselineCyclesPerSec(r.name);
        double speedup =
            base > 0.0 ? r.cyclesPerSec() / base : 0.0;
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"sim_cycles\": %.0f, "
                     "\"events\": %.0f, \"wall_seconds\": %.6f,\n"
                     "     \"cycles_per_sec\": %.0f, "
                     "\"events_per_sec\": %.0f,\n"
                     "     \"baseline_cycles_per_sec\": %.0f, "
                     "\"speedup_vs_baseline\": %.2f}%s\n",
                     r.name.c_str(), r.simCycles, r.events,
                     r.wallSec, r.cyclesPerSec(), r.eventsPerSec(),
                     base, speedup,
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Options opts = bench::parseArgs(argc, argv);
    bench::banner("simspeed — simulator throughput across canonical "
                  "scenarios",
                  "infrastructure (no paper figure): cycles/sec + "
                  "events/sec baseline");

    std::vector<SpeedResult> results;
    results.push_back(runFig2(opts.quick, opts.seed));
    results.push_back(runTimerCore(opts.quick, opts.seed));
    results.push_back(runL3Fwd(opts.quick, opts.seed));
    results.push_back(runFuzz(opts.quick, opts.seed));

    std::printf("%-12s %14s %14s %10s %14s %14s %9s\n", "scenario",
                "sim cycles", "events", "wall s", "cycles/s",
                "events/s", "speedup");
    for (const SpeedResult &r : results) {
        double base = baselineCyclesPerSec(r.name);
        std::printf("%-12s %14.0f %14.0f %10.3f %14.0f %14.0f %8.2fx\n",
                    r.name.c_str(), r.simCycles, r.events, r.wallSec,
                    r.cyclesPerSec(), r.eventsPerSec(),
                    base > 0.0 ? r.cyclesPerSec() / base : 0.0);
    }

    writeJson("BENCH_simspeed.json", results, opts.quick, opts.seed);
    std::printf("\nwrote BENCH_simspeed.json\n");
    return 0;
}
