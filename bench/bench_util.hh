/**
 * @file
 * Shared helpers for the bench binaries: flag parsing and header
 * banners. Every bench accepts `--quick` (shorter runs for CI),
 * `--seed N`, `--jobs N` (worker threads for the config-grid sweep;
 * 0/unset = one per hardware thread, 1 = the legacy serial path —
 * results are bit-identical either way), and the observability
 * flags `--metrics-json FILE` / `--trace-json FILE` (src/obs:
 * metrics snapshot and Perfetto-loadable Chrome trace export).
 * The pipeline-pressure profiler rides on the same session:
 * `--counter-stride N` samples core occupancy/rate/memory counter
 * tracks into the trace every N cycles (burst mode drops to every
 * cycle around interrupt spans), and `--tax` attributes every cycle
 * under a live interrupt span to flush/refill/ucode/handler/shadow
 * buckets (`core.tax.*` in the metrics snapshot).
 * Checkpoint/restore rides on the same session: `--checkpoint-every
 * N` snapshots the checkpoint-capable scenario into a
 * crash-consistent generation set, `--restore FILE` resumes from a
 * snapshot (provenance-strict), and `--version` prints the build's
 * git SHA, build type, and snapshot format version (the values
 * stamped into every snapshot header).
 * Unknown flags, flags missing their value, and malformed `--jobs`
 * values (0, signs, non-digits) are errors: usage goes to stderr
 * and the bench exits with status 2.
 */

#ifndef XUI_BENCH_BENCH_UTIL_HH
#define XUI_BENCH_BENCH_UTIL_HH

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "ckpt/build_info.hh"
#include "ckpt/snapshot.hh"
#include "exec/sweep.hh"
#include "intr/policy.hh"

namespace xui::bench
{

/**
 * Parsed `--policy NAME` choice. The names map onto the delivery
 * policies in src/intr/policy.hh plus the two mechanism knobs:
 *  - off (default): the legacy protocol, bit-identical runs;
 *  - next_only_edge / next_only_level / next_or_missed_edge /
 *    next_or_missed_level: a (behavior x trigger) combination;
 *  - moderated: ITR moderation + coalescing (see --itr-ns);
 *  - adaptive: load-adaptive preemption quantum (fig7 runtime).
 */
struct PolicyChoice
{
    std::string name = "off";
    /** True for every choice other than "off". */
    bool enabled = false;
    DeliveryPolicy policy{};
    bool moderated = false;
    bool adaptive = false;
};

/** @return false when `v` names no policy (`out` untouched). */
inline bool
parsePolicyName(const char *v, PolicyChoice &out)
{
    PolicyChoice c;
    c.name = v;
    c.enabled = true;
    if (std::strcmp(v, "off") == 0) {
        c.enabled = false;
    } else if (std::strcmp(v, "next_only_edge") == 0) {
        c.policy = {DeliveryBehavior::NextOnly, TriggerMode::Edge};
    } else if (std::strcmp(v, "next_only_level") == 0) {
        c.policy = {DeliveryBehavior::NextOnly, TriggerMode::Level};
    } else if (std::strcmp(v, "next_or_missed_edge") == 0) {
        c.policy = {DeliveryBehavior::NextOrMissed,
                    TriggerMode::Edge};
    } else if (std::strcmp(v, "next_or_missed_level") == 0) {
        c.policy = {DeliveryBehavior::NextOrMissed,
                    TriggerMode::Level};
    } else if (std::strcmp(v, "moderated") == 0) {
        c.moderated = true;
    } else if (std::strcmp(v, "adaptive") == 0) {
        c.adaptive = true;
    } else {
        return false;
    }
    out = c;
    return true;
}

inline const char *
policyUsageNames()
{
    return "off|next_only_edge|next_only_level|next_or_missed_edge|"
           "next_or_missed_level|moderated|adaptive";
}

/** Strict decimal parse: digits only, no sign, no trailing junk. */
inline bool
parseU64Strict(const char *v, std::uint64_t &out)
{
    if (v == nullptr || *v == '\0')
        return false;
    for (const char *p = v; *p != '\0'; ++p)
        if (*p < '0' || *p > '9')
            return false;
    errno = 0;
    char *end = nullptr;
    unsigned long long x = std::strtoull(v, &end, 10);
    if (errno != 0 || end == v || *end != '\0')
        return false;
    out = x;
    return true;
}

/** Strict positive-double parse (no trailing junk, finite, > 0). */
inline bool
parsePositiveDouble(const char *v, double &out)
{
    if (v == nullptr || *v == '\0')
        return false;
    errno = 0;
    char *end = nullptr;
    double x = std::strtod(v, &end);
    if (errno != 0 || end == v || *end != '\0' || !(x > 0.0) ||
        !(x < 1e12))
        return false;
    out = x;
    return true;
}

struct Options
{
    bool quick = false;
    std::uint64_t seed = 1;
    /** `--metrics-json FILE`: write a metrics snapshot ("" = off). */
    std::string metricsJson;
    /** `--trace-json FILE`: write a Chrome trace ("" = off). */
    std::string traceJson;
    /**
     * `--counter-stride N`: sample counter tracks every N cycles
     * into the trace (0 = off; needs --trace-json to emit).
     */
    std::uint64_t counterStride = 0;
    /** `--tax`: interrupt-tax stall attribution (core.tax.*). */
    bool tax = false;
    /** `--jobs N`: sweep worker threads (0 = hardware threads). */
    unsigned jobs = 0;
    /** `--policy NAME`: delivery policy for the overload section. */
    PolicyChoice policy;
    /** True when --policy was given (even as "off"): the frontier
     *  then runs only that policy instead of the full panel. */
    bool policyGiven = false;
    /** `--itr-ns N`: moderation rate limit (0 = bench default). */
    std::uint64_t itrNs = 0;
    /**
     * `--offered-load X`: open-loop load multiplier relative to
     * saturation (1.0 = saturation, 2.0 = 2x overload). When set
     * (> 0) the bench runs its saturation-frontier section instead
     * of the default figure sweep.
     */
    double offeredLoad = 0.0;
    /**
     * `--rt-vector V`: latency-critical user vector (< 64) for the
     * mixed-criticality co-tenancy section (maxlat bench). 256 =
     * unset; the bench runs its default sweep.
     */
    std::uint64_t rtVector = 256;
    /** `--priority P`: the RT vector's priority level (< 4). */
    std::uint64_t rtPriority = kNumPriorityLevels - 1;
    /**
     * `--ff`: also run the sampled (fast-forward) pass for every
     * FF-capable scenario that does not run it by default (e.g.
     * simspeed's fig2), gating its accuracy like the always-on
     * pairs. Exact-mode measurements are unaffected.
     */
    bool ff = false;
    /**
     * `--detail-window N`: cycles of full detail kept around every
     * interrupt lifecycle event in sampled passes (>= 1).
     */
    std::uint64_t detailWindow = 512;
    /**
     * `--checkpoint-every N`: snapshot the checkpoint-capable
     * scenario every N committed cycles into a crash-consistent
     * on-disk generation set (0 = off). The bench reports snapshot
     * cost alongside its usual rates (EXPERIMENTS.md recovery-time
     * table).
     */
    std::uint64_t checkpointEvery = 0;
    /**
     * `--restore FILE`: resume the checkpoint-capable scenario from
     * a snapshot file instead of starting fresh. Provenance-strict:
     * a snapshot from a different binary is refused loudly.
     */
    std::string restorePath;
};

inline void
printUsage(std::FILE *out, const char *prog)
{
    std::fprintf(out,
                 "usage: %s [--quick] [--seed N] [--jobs N] "
                 "[--metrics-json FILE] [--trace-json FILE]\n"
                 "       [--counter-stride N] [--tax]\n"
                 "       [--policy %s]\n"
                 "       [--itr-ns N] [--offered-load X]\n"
                 "       [--rt-vector V] [--priority P]\n"
                 "       [--ff] [--detail-window N]\n"
                 "       [--checkpoint-every N] [--restore FILE]\n"
                 "       [--version]\n",
                 prog, policyUsageNames());
}

inline Options
parseArgs(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--quick") == 0) {
            opts.quick = true;
        } else if (std::strcmp(arg, "--seed") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: --seed needs a value\n",
                             argv[0]);
                printUsage(stderr, argv[0]);
                std::exit(2);
            }
            opts.seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(arg, "--jobs") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: --jobs needs a value\n",
                             argv[0]);
                printUsage(stderr, argv[0]);
                std::exit(2);
            }
            const char *v = argv[++i];
            if (!exec::parseJobs(v, opts.jobs)) {
                std::fprintf(stderr,
                             "%s: --jobs needs an integer >= 1, "
                             "got '%s'\n",
                             argv[0], v);
                printUsage(stderr, argv[0]);
                std::exit(2);
            }
        } else if (std::strcmp(arg, "--metrics-json") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "%s: --metrics-json needs a file\n",
                             argv[0]);
                printUsage(stderr, argv[0]);
                std::exit(2);
            }
            opts.metricsJson = argv[++i];
        } else if (std::strcmp(arg, "--policy") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: --policy needs a value\n",
                             argv[0]);
                printUsage(stderr, argv[0]);
                std::exit(2);
            }
            const char *v = argv[++i];
            if (!parsePolicyName(v, opts.policy)) {
                std::fprintf(stderr,
                             "%s: unknown --policy '%s' (expected "
                             "%s)\n",
                             argv[0], v, policyUsageNames());
                printUsage(stderr, argv[0]);
                std::exit(2);
            }
            opts.policyGiven = true;
        } else if (std::strcmp(arg, "--itr-ns") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: --itr-ns needs a value\n",
                             argv[0]);
                printUsage(stderr, argv[0]);
                std::exit(2);
            }
            const char *v = argv[++i];
            if (!parseU64Strict(v, opts.itrNs)) {
                std::fprintf(stderr,
                             "%s: --itr-ns needs a non-negative "
                             "integer, got '%s'\n",
                             argv[0], v);
                printUsage(stderr, argv[0]);
                std::exit(2);
            }
        } else if (std::strcmp(arg, "--offered-load") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "%s: --offered-load needs a value\n",
                             argv[0]);
                printUsage(stderr, argv[0]);
                std::exit(2);
            }
            const char *v = argv[++i];
            if (!parsePositiveDouble(v, opts.offeredLoad)) {
                std::fprintf(stderr,
                             "%s: --offered-load needs a positive "
                             "number, got '%s'\n",
                             argv[0], v);
                printUsage(stderr, argv[0]);
                std::exit(2);
            }
        } else if (std::strcmp(arg, "--rt-vector") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "%s: --rt-vector needs a value\n",
                             argv[0]);
                printUsage(stderr, argv[0]);
                std::exit(2);
            }
            const char *v = argv[++i];
            if (!parseU64Strict(v, opts.rtVector) ||
                opts.rtVector >= 64) {
                std::fprintf(stderr,
                             "%s: --rt-vector needs an integer in "
                             "[0, 63], got '%s'\n",
                             argv[0], v);
                printUsage(stderr, argv[0]);
                std::exit(2);
            }
        } else if (std::strcmp(arg, "--priority") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "%s: --priority needs a value\n",
                             argv[0]);
                printUsage(stderr, argv[0]);
                std::exit(2);
            }
            const char *v = argv[++i];
            if (!parseU64Strict(v, opts.rtPriority) ||
                opts.rtPriority >= kNumPriorityLevels) {
                std::fprintf(stderr,
                             "%s: --priority needs an integer in "
                             "[0, %u], got '%s'\n",
                             argv[0], kNumPriorityLevels - 1, v);
                printUsage(stderr, argv[0]);
                std::exit(2);
            }
        } else if (std::strcmp(arg, "--counter-stride") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "%s: --counter-stride needs a value\n",
                             argv[0]);
                printUsage(stderr, argv[0]);
                std::exit(2);
            }
            const char *v = argv[++i];
            if (!parseU64Strict(v, opts.counterStride)) {
                std::fprintf(stderr,
                             "%s: --counter-stride needs a "
                             "non-negative integer, got '%s'\n",
                             argv[0], v);
                printUsage(stderr, argv[0]);
                std::exit(2);
            }
        } else if (std::strcmp(arg, "--ff") == 0) {
            opts.ff = true;
        } else if (std::strcmp(arg, "--detail-window") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "%s: --detail-window needs a value\n",
                             argv[0]);
                printUsage(stderr, argv[0]);
                std::exit(2);
            }
            const char *v = argv[++i];
            if (!parseU64Strict(v, opts.detailWindow) ||
                opts.detailWindow == 0) {
                std::fprintf(stderr,
                             "%s: --detail-window needs an integer "
                             ">= 1, got '%s'\n",
                             argv[0], v);
                printUsage(stderr, argv[0]);
                std::exit(2);
            }
        } else if (std::strcmp(arg, "--checkpoint-every") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "%s: --checkpoint-every needs a "
                             "value\n",
                             argv[0]);
                printUsage(stderr, argv[0]);
                std::exit(2);
            }
            const char *v = argv[++i];
            if (!parseU64Strict(v, opts.checkpointEvery) ||
                opts.checkpointEvery == 0) {
                std::fprintf(stderr,
                             "%s: --checkpoint-every needs an "
                             "integer >= 1, got '%s'\n",
                             argv[0], v);
                printUsage(stderr, argv[0]);
                std::exit(2);
            }
        } else if (std::strcmp(arg, "--restore") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: --restore needs a file\n",
                             argv[0]);
                printUsage(stderr, argv[0]);
                std::exit(2);
            }
            opts.restorePath = argv[++i];
        } else if (std::strcmp(arg, "--version") == 0) {
            std::printf("%s %s (%s), snapshot format %u\n", argv[0],
                        ckpt::kBuildGitSha, ckpt::kBuildType,
                        static_cast<unsigned>(ckpt::kFormatVersion));
            std::exit(0);
        } else if (std::strcmp(arg, "--tax") == 0) {
            opts.tax = true;
        } else if (std::strcmp(arg, "--trace-json") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "%s: --trace-json needs a file\n",
                             argv[0]);
                printUsage(stderr, argv[0]);
                std::exit(2);
            }
            opts.traceJson = argv[++i];
        } else if (std::strcmp(arg, "--help") == 0) {
            printUsage(stdout, argv[0]);
            std::exit(0);
        } else {
            std::fprintf(stderr, "%s: unknown argument '%s'\n",
                         argv[0], arg);
            printUsage(stderr, argv[0]);
            std::exit(2);
        }
    }
    return opts;
}

inline void
banner(const char *title, const char *paper_ref)
{
    std::printf("\n================================================="
                "=====================\n");
    std::printf("%s\n", title);
    std::printf("Reproduces: %s\n", paper_ref);
    std::printf("==================================================="
                "===================\n\n");
}

} // namespace xui::bench

#endif // XUI_BENCH_BENCH_UTIL_HH
