/**
 * @file
 * Shared helpers for the bench binaries: flag parsing and header
 * banners. Every bench accepts `--quick` (shorter runs for CI) and
 * `--seed N`.
 */

#ifndef XUI_BENCH_BENCH_UTIL_HH
#define XUI_BENCH_BENCH_UTIL_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace xui::bench
{

struct Options
{
    bool quick = false;
    std::uint64_t seed = 1;
};

inline Options
parseArgs(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            opts.quick = true;
        } else if (std::strcmp(argv[i], "--seed") == 0 &&
                   i + 1 < argc) {
            opts.seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--help") == 0) {
            std::printf("usage: %s [--quick] [--seed N]\n", argv[0]);
            std::exit(0);
        }
    }
    return opts;
}

inline void
banner(const char *title, const char *paper_ref)
{
    std::printf("\n================================================="
                "=====================\n");
    std::printf("%s\n", title);
    std::printf("Reproduces: %s\n", paper_ref);
    std::printf("==================================================="
                "===================\n\n");
}

} // namespace xui::bench

#endif // XUI_BENCH_BENCH_UTIL_HH
