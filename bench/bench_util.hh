/**
 * @file
 * Shared helpers for the bench binaries: flag parsing and header
 * banners. Every bench accepts `--quick` (shorter runs for CI),
 * `--seed N`, `--jobs N` (worker threads for the config-grid sweep;
 * 0/unset = one per hardware thread, 1 = the legacy serial path —
 * results are bit-identical either way), and the observability
 * flags `--metrics-json FILE` / `--trace-json FILE` (src/obs:
 * metrics snapshot and Perfetto-loadable Chrome trace export).
 * Unknown flags, flags missing their value, and malformed `--jobs`
 * values (0, signs, non-digits) are errors: usage goes to stderr
 * and the bench exits with status 2.
 */

#ifndef XUI_BENCH_BENCH_UTIL_HH
#define XUI_BENCH_BENCH_UTIL_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "exec/sweep.hh"

namespace xui::bench
{

struct Options
{
    bool quick = false;
    std::uint64_t seed = 1;
    /** `--metrics-json FILE`: write a metrics snapshot ("" = off). */
    std::string metricsJson;
    /** `--trace-json FILE`: write a Chrome trace ("" = off). */
    std::string traceJson;
    /** `--jobs N`: sweep worker threads (0 = hardware threads). */
    unsigned jobs = 0;
};

inline void
printUsage(std::FILE *out, const char *prog)
{
    std::fprintf(out,
                 "usage: %s [--quick] [--seed N] [--jobs N] "
                 "[--metrics-json FILE] [--trace-json FILE]\n",
                 prog);
}

inline Options
parseArgs(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--quick") == 0) {
            opts.quick = true;
        } else if (std::strcmp(arg, "--seed") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: --seed needs a value\n",
                             argv[0]);
                printUsage(stderr, argv[0]);
                std::exit(2);
            }
            opts.seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(arg, "--jobs") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: --jobs needs a value\n",
                             argv[0]);
                printUsage(stderr, argv[0]);
                std::exit(2);
            }
            const char *v = argv[++i];
            if (!exec::parseJobs(v, opts.jobs)) {
                std::fprintf(stderr,
                             "%s: --jobs needs an integer >= 1, "
                             "got '%s'\n",
                             argv[0], v);
                printUsage(stderr, argv[0]);
                std::exit(2);
            }
        } else if (std::strcmp(arg, "--metrics-json") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "%s: --metrics-json needs a file\n",
                             argv[0]);
                printUsage(stderr, argv[0]);
                std::exit(2);
            }
            opts.metricsJson = argv[++i];
        } else if (std::strcmp(arg, "--trace-json") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "%s: --trace-json needs a file\n",
                             argv[0]);
                printUsage(stderr, argv[0]);
                std::exit(2);
            }
            opts.traceJson = argv[++i];
        } else if (std::strcmp(arg, "--help") == 0) {
            printUsage(stdout, argv[0]);
            std::exit(0);
        } else {
            std::fprintf(stderr, "%s: unknown argument '%s'\n",
                         argv[0], arg);
            printUsage(stderr, argv[0]);
            std::exit(2);
        }
    }
    return opts;
}

inline void
banner(const char *title, const char *paper_ref)
{
    std::printf("\n================================================="
                "=====================\n");
    std::printf("%s\n", title);
    std::printf("Reproduces: %s\n", paper_ref);
    std::printf("==================================================="
                "===================\n\n");
}

} // namespace xui::bench

#endif // XUI_BENCH_BENCH_UTIL_HH
