file(REMOVE_RECURSE
  "libxui_accel.a"
)
