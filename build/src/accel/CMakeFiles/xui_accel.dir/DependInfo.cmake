
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accel/client.cc" "src/accel/CMakeFiles/xui_accel.dir/client.cc.o" "gcc" "src/accel/CMakeFiles/xui_accel.dir/client.cc.o.d"
  "/root/repo/src/accel/dsa.cc" "src/accel/CMakeFiles/xui_accel.dir/dsa.cc.o" "gcc" "src/accel/CMakeFiles/xui_accel.dir/dsa.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/des/CMakeFiles/xui_des.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/xui_os.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/xui_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/xui_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/intr/CMakeFiles/xui_intr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
