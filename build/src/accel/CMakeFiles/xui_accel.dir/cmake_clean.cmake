file(REMOVE_RECURSE
  "CMakeFiles/xui_accel.dir/client.cc.o"
  "CMakeFiles/xui_accel.dir/client.cc.o.d"
  "CMakeFiles/xui_accel.dir/dsa.cc.o"
  "CMakeFiles/xui_accel.dir/dsa.cc.o.d"
  "libxui_accel.a"
  "libxui_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xui_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
