# Empty compiler generated dependencies file for xui_accel.
# This may be replaced when dependencies are built.
