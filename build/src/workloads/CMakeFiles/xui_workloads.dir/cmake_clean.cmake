file(REMOVE_RECURSE
  "CMakeFiles/xui_workloads.dir/kernels.cc.o"
  "CMakeFiles/xui_workloads.dir/kernels.cc.o.d"
  "libxui_workloads.a"
  "libxui_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xui_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
