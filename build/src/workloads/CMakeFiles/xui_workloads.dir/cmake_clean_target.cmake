file(REMOVE_RECURSE
  "libxui_workloads.a"
)
