# Empty dependencies file for xui_workloads.
# This may be replaced when dependencies are built.
