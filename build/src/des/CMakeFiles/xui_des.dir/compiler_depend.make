# Empty compiler generated dependencies file for xui_des.
# This may be replaced when dependencies are built.
