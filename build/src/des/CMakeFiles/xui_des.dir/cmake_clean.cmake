file(REMOVE_RECURSE
  "CMakeFiles/xui_des.dir/event_queue.cc.o"
  "CMakeFiles/xui_des.dir/event_queue.cc.o.d"
  "CMakeFiles/xui_des.dir/simulation.cc.o"
  "CMakeFiles/xui_des.dir/simulation.cc.o.d"
  "libxui_des.a"
  "libxui_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xui_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
