file(REMOVE_RECURSE
  "libxui_des.a"
)
