file(REMOVE_RECURSE
  "libxui_stats.a"
)
