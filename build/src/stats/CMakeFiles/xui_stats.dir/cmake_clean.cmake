file(REMOVE_RECURSE
  "CMakeFiles/xui_stats.dir/csv.cc.o"
  "CMakeFiles/xui_stats.dir/csv.cc.o.d"
  "CMakeFiles/xui_stats.dir/distributions.cc.o"
  "CMakeFiles/xui_stats.dir/distributions.cc.o.d"
  "CMakeFiles/xui_stats.dir/histogram.cc.o"
  "CMakeFiles/xui_stats.dir/histogram.cc.o.d"
  "CMakeFiles/xui_stats.dir/rng.cc.o"
  "CMakeFiles/xui_stats.dir/rng.cc.o.d"
  "CMakeFiles/xui_stats.dir/summary.cc.o"
  "CMakeFiles/xui_stats.dir/summary.cc.o.d"
  "CMakeFiles/xui_stats.dir/table.cc.o"
  "CMakeFiles/xui_stats.dir/table.cc.o.d"
  "libxui_stats.a"
  "libxui_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xui_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
