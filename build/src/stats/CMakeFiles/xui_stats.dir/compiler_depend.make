# Empty compiler generated dependencies file for xui_stats.
# This may be replaced when dependencies are built.
