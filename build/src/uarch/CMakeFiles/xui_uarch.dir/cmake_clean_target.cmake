file(REMOVE_RECURSE
  "libxui_uarch.a"
)
