# Empty compiler generated dependencies file for xui_uarch.
# This may be replaced when dependencies are built.
