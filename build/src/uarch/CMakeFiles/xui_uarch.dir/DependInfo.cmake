
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uarch/branch_predictor.cc" "src/uarch/CMakeFiles/xui_uarch.dir/branch_predictor.cc.o" "gcc" "src/uarch/CMakeFiles/xui_uarch.dir/branch_predictor.cc.o.d"
  "/root/repo/src/uarch/cache.cc" "src/uarch/CMakeFiles/xui_uarch.dir/cache.cc.o" "gcc" "src/uarch/CMakeFiles/xui_uarch.dir/cache.cc.o.d"
  "/root/repo/src/uarch/interrupt_unit.cc" "src/uarch/CMakeFiles/xui_uarch.dir/interrupt_unit.cc.o" "gcc" "src/uarch/CMakeFiles/xui_uarch.dir/interrupt_unit.cc.o.d"
  "/root/repo/src/uarch/mcrom.cc" "src/uarch/CMakeFiles/xui_uarch.dir/mcrom.cc.o" "gcc" "src/uarch/CMakeFiles/xui_uarch.dir/mcrom.cc.o.d"
  "/root/repo/src/uarch/ooo_core.cc" "src/uarch/CMakeFiles/xui_uarch.dir/ooo_core.cc.o" "gcc" "src/uarch/CMakeFiles/xui_uarch.dir/ooo_core.cc.o.d"
  "/root/repo/src/uarch/program.cc" "src/uarch/CMakeFiles/xui_uarch.dir/program.cc.o" "gcc" "src/uarch/CMakeFiles/xui_uarch.dir/program.cc.o.d"
  "/root/repo/src/uarch/trace.cc" "src/uarch/CMakeFiles/xui_uarch.dir/trace.cc.o" "gcc" "src/uarch/CMakeFiles/xui_uarch.dir/trace.cc.o.d"
  "/root/repo/src/uarch/uarch_system.cc" "src/uarch/CMakeFiles/xui_uarch.dir/uarch_system.cc.o" "gcc" "src/uarch/CMakeFiles/xui_uarch.dir/uarch_system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/intr/CMakeFiles/xui_intr.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/xui_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/xui_des.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
