file(REMOVE_RECURSE
  "CMakeFiles/xui_uarch.dir/branch_predictor.cc.o"
  "CMakeFiles/xui_uarch.dir/branch_predictor.cc.o.d"
  "CMakeFiles/xui_uarch.dir/cache.cc.o"
  "CMakeFiles/xui_uarch.dir/cache.cc.o.d"
  "CMakeFiles/xui_uarch.dir/interrupt_unit.cc.o"
  "CMakeFiles/xui_uarch.dir/interrupt_unit.cc.o.d"
  "CMakeFiles/xui_uarch.dir/mcrom.cc.o"
  "CMakeFiles/xui_uarch.dir/mcrom.cc.o.d"
  "CMakeFiles/xui_uarch.dir/ooo_core.cc.o"
  "CMakeFiles/xui_uarch.dir/ooo_core.cc.o.d"
  "CMakeFiles/xui_uarch.dir/program.cc.o"
  "CMakeFiles/xui_uarch.dir/program.cc.o.d"
  "CMakeFiles/xui_uarch.dir/trace.cc.o"
  "CMakeFiles/xui_uarch.dir/trace.cc.o.d"
  "CMakeFiles/xui_uarch.dir/uarch_system.cc.o"
  "CMakeFiles/xui_uarch.dir/uarch_system.cc.o.d"
  "libxui_uarch.a"
  "libxui_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xui_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
