file(REMOVE_RECURSE
  "CMakeFiles/xui_kv.dir/kvstore.cc.o"
  "CMakeFiles/xui_kv.dir/kvstore.cc.o.d"
  "CMakeFiles/xui_kv.dir/server.cc.o"
  "CMakeFiles/xui_kv.dir/server.cc.o.d"
  "CMakeFiles/xui_kv.dir/skiplist.cc.o"
  "CMakeFiles/xui_kv.dir/skiplist.cc.o.d"
  "libxui_kv.a"
  "libxui_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xui_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
