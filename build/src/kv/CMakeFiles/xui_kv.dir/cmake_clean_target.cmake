file(REMOVE_RECURSE
  "libxui_kv.a"
)
