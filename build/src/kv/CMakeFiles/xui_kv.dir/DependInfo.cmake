
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kv/kvstore.cc" "src/kv/CMakeFiles/xui_kv.dir/kvstore.cc.o" "gcc" "src/kv/CMakeFiles/xui_kv.dir/kvstore.cc.o.d"
  "/root/repo/src/kv/server.cc" "src/kv/CMakeFiles/xui_kv.dir/server.cc.o" "gcc" "src/kv/CMakeFiles/xui_kv.dir/server.cc.o.d"
  "/root/repo/src/kv/skiplist.cc" "src/kv/CMakeFiles/xui_kv.dir/skiplist.cc.o" "gcc" "src/kv/CMakeFiles/xui_kv.dir/skiplist.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/des/CMakeFiles/xui_des.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/xui_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/xui_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/xui_os.dir/DependInfo.cmake"
  "/root/repo/build/src/intr/CMakeFiles/xui_intr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
