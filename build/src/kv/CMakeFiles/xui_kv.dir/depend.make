# Empty dependencies file for xui_kv.
# This may be replaced when dependencies are built.
