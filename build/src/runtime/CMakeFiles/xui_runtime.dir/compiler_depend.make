# Empty compiler generated dependencies file for xui_runtime.
# This may be replaced when dependencies are built.
