file(REMOVE_RECURSE
  "CMakeFiles/xui_runtime.dir/runtime.cc.o"
  "CMakeFiles/xui_runtime.dir/runtime.cc.o.d"
  "libxui_runtime.a"
  "libxui_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xui_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
