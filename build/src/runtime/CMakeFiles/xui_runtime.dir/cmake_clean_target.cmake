file(REMOVE_RECURSE
  "libxui_runtime.a"
)
