# Empty dependencies file for xui_intr.
# This may be replaced when dependencies are built.
