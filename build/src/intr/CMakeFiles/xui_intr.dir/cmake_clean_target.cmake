file(REMOVE_RECURSE
  "libxui_intr.a"
)
