file(REMOVE_RECURSE
  "CMakeFiles/xui_intr.dir/bitset256.cc.o"
  "CMakeFiles/xui_intr.dir/bitset256.cc.o.d"
  "CMakeFiles/xui_intr.dir/forwarding.cc.o"
  "CMakeFiles/xui_intr.dir/forwarding.cc.o.d"
  "CMakeFiles/xui_intr.dir/kb_timer.cc.o"
  "CMakeFiles/xui_intr.dir/kb_timer.cc.o.d"
  "CMakeFiles/xui_intr.dir/uitt.cc.o"
  "CMakeFiles/xui_intr.dir/uitt.cc.o.d"
  "CMakeFiles/xui_intr.dir/upid.cc.o"
  "CMakeFiles/xui_intr.dir/upid.cc.o.d"
  "libxui_intr.a"
  "libxui_intr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xui_intr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
