
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/intr/bitset256.cc" "src/intr/CMakeFiles/xui_intr.dir/bitset256.cc.o" "gcc" "src/intr/CMakeFiles/xui_intr.dir/bitset256.cc.o.d"
  "/root/repo/src/intr/forwarding.cc" "src/intr/CMakeFiles/xui_intr.dir/forwarding.cc.o" "gcc" "src/intr/CMakeFiles/xui_intr.dir/forwarding.cc.o.d"
  "/root/repo/src/intr/kb_timer.cc" "src/intr/CMakeFiles/xui_intr.dir/kb_timer.cc.o" "gcc" "src/intr/CMakeFiles/xui_intr.dir/kb_timer.cc.o.d"
  "/root/repo/src/intr/uitt.cc" "src/intr/CMakeFiles/xui_intr.dir/uitt.cc.o" "gcc" "src/intr/CMakeFiles/xui_intr.dir/uitt.cc.o.d"
  "/root/repo/src/intr/upid.cc" "src/intr/CMakeFiles/xui_intr.dir/upid.cc.o" "gcc" "src/intr/CMakeFiles/xui_intr.dir/upid.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/des/CMakeFiles/xui_des.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/xui_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
