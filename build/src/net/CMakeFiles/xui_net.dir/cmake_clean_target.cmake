file(REMOVE_RECURSE
  "libxui_net.a"
)
