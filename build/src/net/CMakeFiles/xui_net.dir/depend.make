# Empty dependencies file for xui_net.
# This may be replaced when dependencies are built.
