file(REMOVE_RECURSE
  "CMakeFiles/xui_net.dir/l3fwd.cc.o"
  "CMakeFiles/xui_net.dir/l3fwd.cc.o.d"
  "CMakeFiles/xui_net.dir/lpm.cc.o"
  "CMakeFiles/xui_net.dir/lpm.cc.o.d"
  "CMakeFiles/xui_net.dir/traffic.cc.o"
  "CMakeFiles/xui_net.dir/traffic.cc.o.d"
  "libxui_net.a"
  "libxui_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xui_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
