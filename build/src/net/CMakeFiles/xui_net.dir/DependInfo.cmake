
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/l3fwd.cc" "src/net/CMakeFiles/xui_net.dir/l3fwd.cc.o" "gcc" "src/net/CMakeFiles/xui_net.dir/l3fwd.cc.o.d"
  "/root/repo/src/net/lpm.cc" "src/net/CMakeFiles/xui_net.dir/lpm.cc.o" "gcc" "src/net/CMakeFiles/xui_net.dir/lpm.cc.o.d"
  "/root/repo/src/net/traffic.cc" "src/net/CMakeFiles/xui_net.dir/traffic.cc.o" "gcc" "src/net/CMakeFiles/xui_net.dir/traffic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/des/CMakeFiles/xui_des.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/xui_os.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/xui_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/intr/CMakeFiles/xui_intr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
