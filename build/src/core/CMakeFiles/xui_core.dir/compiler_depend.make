# Empty compiler generated dependencies file for xui_core.
# This may be replaced when dependencies are built.
