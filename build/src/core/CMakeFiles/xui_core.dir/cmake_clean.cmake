file(REMOVE_RECURSE
  "CMakeFiles/xui_core.dir/calibration.cc.o"
  "CMakeFiles/xui_core.dir/calibration.cc.o.d"
  "libxui_core.a"
  "libxui_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xui_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
