file(REMOVE_RECURSE
  "libxui_core.a"
)
