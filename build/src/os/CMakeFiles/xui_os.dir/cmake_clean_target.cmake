file(REMOVE_RECURSE
  "libxui_os.a"
)
