# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for xui_os.
