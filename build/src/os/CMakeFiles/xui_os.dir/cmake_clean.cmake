file(REMOVE_RECURSE
  "CMakeFiles/xui_os.dir/kernel.cc.o"
  "CMakeFiles/xui_os.dir/kernel.cc.o.d"
  "CMakeFiles/xui_os.dir/timer_core.cc.o"
  "CMakeFiles/xui_os.dir/timer_core.cc.o.d"
  "libxui_os.a"
  "libxui_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xui_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
