# Empty dependencies file for xui_os.
# This may be replaced when dependencies are built.
