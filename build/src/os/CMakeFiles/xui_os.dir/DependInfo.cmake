
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/kernel.cc" "src/os/CMakeFiles/xui_os.dir/kernel.cc.o" "gcc" "src/os/CMakeFiles/xui_os.dir/kernel.cc.o.d"
  "/root/repo/src/os/timer_core.cc" "src/os/CMakeFiles/xui_os.dir/timer_core.cc.o" "gcc" "src/os/CMakeFiles/xui_os.dir/timer_core.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/des/CMakeFiles/xui_des.dir/DependInfo.cmake"
  "/root/repo/build/src/intr/CMakeFiles/xui_intr.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/xui_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
