# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_des[1]_include.cmake")
include("/root/repo/build/tests/test_intr[1]_include.cmake")
include("/root/repo/build/tests/test_uarch_parts[1]_include.cmake")
include("/root/repo/build/tests/test_ooo_core[1]_include.cmake")
include("/root/repo/build/tests/test_os[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_kv[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_accel[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline_properties[1]_include.cmake")
include("/root/repo/build/tests/test_uarch_micro[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
