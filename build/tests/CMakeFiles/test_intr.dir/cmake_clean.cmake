file(REMOVE_RECURSE
  "CMakeFiles/test_intr.dir/test_intr.cc.o"
  "CMakeFiles/test_intr.dir/test_intr.cc.o.d"
  "test_intr"
  "test_intr.pdb"
  "test_intr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_intr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
