# Empty dependencies file for test_intr.
# This may be replaced when dependencies are built.
