# Empty dependencies file for test_uarch_parts.
# This may be replaced when dependencies are built.
