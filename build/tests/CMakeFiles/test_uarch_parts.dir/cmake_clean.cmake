file(REMOVE_RECURSE
  "CMakeFiles/test_uarch_parts.dir/test_uarch_parts.cc.o"
  "CMakeFiles/test_uarch_parts.dir/test_uarch_parts.cc.o.d"
  "test_uarch_parts"
  "test_uarch_parts.pdb"
  "test_uarch_parts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uarch_parts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
