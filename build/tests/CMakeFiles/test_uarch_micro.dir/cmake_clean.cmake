file(REMOVE_RECURSE
  "CMakeFiles/test_uarch_micro.dir/test_uarch_micro.cc.o"
  "CMakeFiles/test_uarch_micro.dir/test_uarch_micro.cc.o.d"
  "test_uarch_micro"
  "test_uarch_micro.pdb"
  "test_uarch_micro[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uarch_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
