# Empty dependencies file for test_uarch_micro.
# This may be replaced when dependencies are built.
