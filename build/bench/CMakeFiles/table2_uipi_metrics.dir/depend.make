# Empty dependencies file for table2_uipi_metrics.
# This may be replaced when dependencies are built.
