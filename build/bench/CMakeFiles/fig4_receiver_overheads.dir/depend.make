# Empty dependencies file for fig4_receiver_overheads.
# This may be replaced when dependencies are built.
