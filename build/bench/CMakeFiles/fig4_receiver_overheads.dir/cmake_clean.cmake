file(REMOVE_RECURSE
  "CMakeFiles/fig4_receiver_overheads.dir/fig4_receiver_overheads.cpp.o"
  "CMakeFiles/fig4_receiver_overheads.dir/fig4_receiver_overheads.cpp.o.d"
  "fig4_receiver_overheads"
  "fig4_receiver_overheads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_receiver_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
