
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig8_l3fwd.cpp" "bench/CMakeFiles/fig8_l3fwd.dir/fig8_l3fwd.cpp.o" "gcc" "bench/CMakeFiles/fig8_l3fwd.dir/fig8_l3fwd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/xui_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/xui_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/xui_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/xui_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/xui_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/xui_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/xui_net.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/xui_os.dir/DependInfo.cmake"
  "/root/repo/build/src/intr/CMakeFiles/xui_intr.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/xui_des.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/xui_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
