# Empty compiler generated dependencies file for fig8_l3fwd.
# This may be replaced when dependencies are built.
