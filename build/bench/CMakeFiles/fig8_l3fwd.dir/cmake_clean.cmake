file(REMOVE_RECURSE
  "CMakeFiles/fig8_l3fwd.dir/fig8_l3fwd.cpp.o"
  "CMakeFiles/fig8_l3fwd.dir/fig8_l3fwd.cpp.o.d"
  "fig8_l3fwd"
  "fig8_l3fwd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_l3fwd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
