# Empty compiler generated dependencies file for fig5_safepoints.
# This may be replaced when dependencies are built.
