file(REMOVE_RECURSE
  "CMakeFiles/fig5_safepoints.dir/fig5_safepoints.cpp.o"
  "CMakeFiles/fig5_safepoints.dir/fig5_safepoints.cpp.o.d"
  "fig5_safepoints"
  "fig5_safepoints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_safepoints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
