# Empty compiler generated dependencies file for fig2_latency_timeline.
# This may be replaced when dependencies are built.
