file(REMOVE_RECURSE
  "CMakeFiles/fig2_latency_timeline.dir/fig2_latency_timeline.cpp.o"
  "CMakeFiles/fig2_latency_timeline.dir/fig2_latency_timeline.cpp.o.d"
  "fig2_latency_timeline"
  "fig2_latency_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_latency_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
