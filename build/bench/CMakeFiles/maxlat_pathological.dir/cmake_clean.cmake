file(REMOVE_RECURSE
  "CMakeFiles/maxlat_pathological.dir/maxlat_pathological.cpp.o"
  "CMakeFiles/maxlat_pathological.dir/maxlat_pathological.cpp.o.d"
  "maxlat_pathological"
  "maxlat_pathological.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxlat_pathological.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
