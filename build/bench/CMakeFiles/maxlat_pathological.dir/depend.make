# Empty dependencies file for maxlat_pathological.
# This may be replaced when dependencies are built.
