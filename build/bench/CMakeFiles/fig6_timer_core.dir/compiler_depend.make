# Empty compiler generated dependencies file for fig6_timer_core.
# This may be replaced when dependencies are built.
