# Empty dependencies file for fig7_rocksdb.
# This may be replaced when dependencies are built.
