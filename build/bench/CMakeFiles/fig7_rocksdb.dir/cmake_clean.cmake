file(REMOVE_RECURSE
  "CMakeFiles/fig7_rocksdb.dir/fig7_rocksdb.cpp.o"
  "CMakeFiles/fig7_rocksdb.dir/fig7_rocksdb.cpp.o.d"
  "fig7_rocksdb"
  "fig7_rocksdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_rocksdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
