file(REMOVE_RECURSE
  "CMakeFiles/fig9_dsa.dir/fig9_dsa.cpp.o"
  "CMakeFiles/fig9_dsa.dir/fig9_dsa.cpp.o.d"
  "fig9_dsa"
  "fig9_dsa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_dsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
