# Empty compiler generated dependencies file for fig9_dsa.
# This may be replaced when dependencies are built.
