file(REMOVE_RECURSE
  "CMakeFiles/l3fwd_router.dir/l3fwd_router.cpp.o"
  "CMakeFiles/l3fwd_router.dir/l3fwd_router.cpp.o.d"
  "l3fwd_router"
  "l3fwd_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/l3fwd_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
