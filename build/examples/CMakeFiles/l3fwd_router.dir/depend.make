# Empty dependencies file for l3fwd_router.
# This may be replaced when dependencies are built.
