file(REMOVE_RECURSE
  "CMakeFiles/dsa_offload.dir/dsa_offload.cpp.o"
  "CMakeFiles/dsa_offload.dir/dsa_offload.cpp.o.d"
  "dsa_offload"
  "dsa_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsa_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
