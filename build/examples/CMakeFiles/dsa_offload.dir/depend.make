# Empty dependencies file for dsa_offload.
# This may be replaced when dependencies are built.
