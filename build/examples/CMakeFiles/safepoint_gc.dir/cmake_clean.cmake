file(REMOVE_RECURSE
  "CMakeFiles/safepoint_gc.dir/safepoint_gc.cpp.o"
  "CMakeFiles/safepoint_gc.dir/safepoint_gc.cpp.o.d"
  "safepoint_gc"
  "safepoint_gc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safepoint_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
