# Empty compiler generated dependencies file for safepoint_gc.
# This may be replaced when dependencies are built.
