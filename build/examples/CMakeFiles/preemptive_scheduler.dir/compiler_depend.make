# Empty compiler generated dependencies file for preemptive_scheduler.
# This may be replaced when dependencies are built.
