file(REMOVE_RECURSE
  "CMakeFiles/preemptive_scheduler.dir/preemptive_scheduler.cpp.o"
  "CMakeFiles/preemptive_scheduler.dir/preemptive_scheduler.cpp.o.d"
  "preemptive_scheduler"
  "preemptive_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preemptive_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
