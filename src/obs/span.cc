#include "obs/span.hh"

#include "obs/trace_export.hh"

namespace xui
{

const char *
intrSourceName(IntrSource source)
{
    switch (source) {
      case IntrSource::UserIpi:
        return "useripi";
      case IntrSource::KbTimer:
        return "kbtimer";
      case IntrSource::Forwarded:
        return "forwarded";
    }
    return "?";
}

IntrSpanTracker::IntrSpanTracker(MetricsRegistry &registry,
                                 std::string prefix)
    : registry_(registry), prefix_(std::move(prefix))
{}

void
IntrSpanTracker::intrStage(IntrStage stage, std::uint64_t span_id,
                           IntrSource source, std::uint8_t vector,
                           Cycles cycle, unsigned core_id)
{
    std::uint64_t k = key(core_id, span_id);
    switch (stage) {
      case IntrStage::Raise: {
        IntrSpan &span = open_[k];
        span.id = span_id;
        span.core = core_id;
        span.source = source;
        span.vector = vector;
        span.raisedAt = cycle;
        return;
      }
      case IntrStage::Accept: {
        auto it = open_.find(k);
        if (it != open_.end())
            it->second.acceptedAt = cycle;
        return;
      }
      case IntrStage::Inject: {
        auto it = open_.find(k);
        if (it != open_.end())
            it->second.injectedAt = cycle;
        return;
      }
      case IntrStage::Reinject: {
        auto it = open_.find(k);
        if (it != open_.end())
            ++it->second.reinjections;
        return;
      }
      case IntrStage::Deliver: {
        auto it = open_.find(k);
        if (it != open_.end())
            it->second.deliveredAt = cycle;
        return;
      }
      case IntrStage::Return: {
        auto it = open_.find(k);
        if (it == open_.end())
            return;
        if (it->second.preempting) {
            // Preempting span: uiret is not the end — the restore
            // cost still belongs to it (closed at PreemptResume).
            it->second.returnedAt = cycle;
            return;
        }
        IntrSpan span = it->second;
        open_.erase(it);
        span.returnedAt = cycle;
        span.complete = true;
        finish(span);
        spans_.push_back(span);
        return;
      }
      case IntrStage::PreemptSave: {
        auto it = open_.find(k);
        if (it != open_.end()) {
            it->second.preempting = true;
            it->second.saveStartAt = cycle;
        }
        return;
      }
      case IntrStage::PreemptResume: {
        auto it = open_.find(k);
        if (it == open_.end())
            return;
        IntrSpan span = it->second;
        open_.erase(it);
        span.restoredAt = cycle;
        span.complete = true;
        finish(span);
        spans_.push_back(span);
        return;
      }
    }
}

IntrSpanTracker::StreamIds &
IntrSpanTracker::streamIds(unsigned core, IntrSource source)
{
    std::uint64_t k = (static_cast<std::uint64_t>(core) << 8) |
        static_cast<std::uint64_t>(source);
    auto it = streams_.find(k);
    if (it != streams_.end())
        return it->second;
    std::string base = prefix_ + "core" + std::to_string(core) +
        ".intr." + intrSourceName(source) + ".";
    StreamIds ids;
    ids.pend = registry_.internLatency(base + "pend");
    ids.injectWait = registry_.internLatency(base + "inject_wait");
    ids.ucode = registry_.internLatency(base + "ucode");
    ids.handler = registry_.internLatency(base + "handler");
    ids.e2e = registry_.internLatency(base + "e2e");
    ids.delivered = registry_.internCounter(base + "delivered");
    ids.reinjections = kNoId;
    ids.preemptSave = kNoId;
    ids.preemptRestore = kNoId;
    return streams_.emplace(k, ids).first->second;
}

void
IntrSpanTracker::finish(IntrSpan &span)
{
    StreamIds &ids = streamIds(span.core, span.source);
    registry_.latencyAt(ids.pend).record(span.pend());
    registry_.latencyAt(ids.injectWait).record(span.injectWait());
    registry_.latencyAt(ids.ucode).record(span.ucode());
    registry_.latencyAt(ids.handler).record(span.handler());
    registry_.latencyAt(ids.e2e).record(span.endToEnd());
    registry_.counterAt(ids.delivered).inc();
    if (span.reinjections > 0) {
        if (ids.reinjections == kNoId)
            ids.reinjections = registry_.internCounter(
                prefix_ + "core" + std::to_string(span.core) +
                ".intr." + intrSourceName(span.source) +
                ".reinjections");
        registry_.counterAt(ids.reinjections).inc(span.reinjections);
    }
    if (span.preempting) {
        if (ids.preemptSave == kNoId) {
            std::string base = prefix_ + "core" +
                std::to_string(span.core) + ".intr." +
                intrSourceName(span.source) + ".";
            ids.preemptSave =
                registry_.internLatency(base + "preempt_save");
            ids.preemptRestore =
                registry_.internLatency(base + "preempt_restore");
        }
        registry_.latencyAt(ids.preemptSave)
            .record(span.preemptSave());
        registry_.latencyAt(ids.preemptRestore)
            .record(span.preemptRestore());
    }
}

void
IntrSpanTracker::exportTo(TraceJsonWriter &out) const
{
    for (const IntrSpan &span : spans_) {
        std::string src = intrSourceName(span.source);
        std::string args = "{\"span\": " + std::to_string(span.id) +
            ", \"vector\": " + std::to_string(span.vector) +
            ", \"reinjections\": " +
            std::to_string(span.reinjections) +
            (span.preempting ? ", \"preempting\": true" : "") + "}";
        out.instant("raise " + src, "intr", span.raisedAt,
                    kTracePidUarch, span.core, args);
        out.complete("pend " + src, "intr", span.raisedAt,
                     span.acceptedAt, kTracePidUarch, span.core,
                     args);
        if (span.preempting) {
            out.complete("inject_wait " + src, "intr",
                         span.acceptedAt, span.saveStartAt,
                         kTracePidUarch, span.core, args);
            out.complete("preempt_save " + src, "intr",
                         span.saveStartAt, span.injectedAt,
                         kTracePidUarch, span.core, args);
        } else {
            out.complete("inject_wait " + src, "intr",
                         span.acceptedAt, span.injectedAt,
                         kTracePidUarch, span.core, args);
        }
        out.complete("ucode " + src, "intr", span.injectedAt,
                     span.deliveredAt, kTracePidUarch, span.core,
                     args);
        out.complete("handler " + src, "intr", span.deliveredAt,
                     span.returnedAt, kTracePidUarch, span.core,
                     args);
        if (span.preempting)
            out.complete("preempt_restore " + src, "intr",
                         span.returnedAt, span.restoredAt,
                         kTracePidUarch, span.core, args);
    }
}

} // namespace xui
