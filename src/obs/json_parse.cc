#include "obs/json_parse.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace xui
{

namespace
{

/** Recursive-descent state over one document. */
class Parser
{
  public:
    Parser(const std::string &text, std::string &error)
        : text_(text), error_(error)
    {}

    bool parseDocument(JsonValue &out)
    {
        skipWs();
        if (!parseValue(out, 0))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    static constexpr unsigned kMaxDepth = 64;

    bool fail(const std::string &what)
    {
        error_ = what + " at byte " + std::to_string(pos_);
        return false;
    }

    void skipWs()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool literal(const char *word, std::size_t len)
    {
        if (text_.compare(pos_, len, word) != 0)
            return fail("invalid literal");
        pos_ += len;
        return true;
    }

    bool parseValue(JsonValue &out, unsigned depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        switch (text_[pos_]) {
          case '{':
            return parseObject(out, depth);
          case '[':
            return parseArray(out, depth);
          case '"':
            out.kind = JsonValue::Kind::String;
            return parseString(out.string);
          case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true", 4);
          case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false", 5);
          case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null", 4);
          default:
            return parseNumber(out);
        }
    }

    bool parseObject(JsonValue &out, unsigned depth)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos_;  // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':'");
            ++pos_;
            skipWs();
            JsonValue member;
            if (!parseValue(member, depth + 1))
                return false;
            out.object.emplace_back(std::move(key),
                                    std::move(member));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool parseArray(JsonValue &out, unsigned depth)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos_;  // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            JsonValue element;
            if (!parseValue(element, depth + 1))
                return false;
            out.array.push_back(std::move(element));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool parseString(std::string &out)
    {
        ++pos_;  // '"'
        out.clear();
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("invalid \\u escape");
                }
                // The emitters only produce \u00xx control-range
                // escapes; encode as UTF-8 for the general case.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out +=
                        static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(
                        0x80 | ((code >> 6) & 0x3f));
                    out +=
                        static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool parseNumber(JsonValue &out)
    {
        std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        auto digits = [&] {
            std::size_t n = 0;
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
                ++n;
            }
            return n;
        };
        std::size_t int_start = pos_;
        std::size_t int_digits = digits();
        if (int_digits == 0) {
            pos_ = start;
            return fail("invalid number");
        }
        // RFC 8259: no leading zeros ("01" is two tokens).
        if (int_digits > 1 && text_[int_start] == '0') {
            pos_ = start;
            return fail("invalid number");
        }
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (digits() == 0) {
                pos_ = start;
                return fail("invalid number");
            }
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (digits() == 0) {
                pos_ = start;
                return fail("invalid number");
            }
        }
        errno = 0;
        out.kind = JsonValue::Kind::Number;
        out.number =
            std::strtod(text_.c_str() + start, nullptr);
        if (errno == ERANGE) {
            pos_ = start;
            return fail("number out of range");
        }
        return true;
    }

    const std::string &text_;
    std::string &error_;
    std::size_t pos_ = 0;
};

} // namespace

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &[k, v] : object)
        if (k == key)
            return &v;
    return nullptr;
}

bool
jsonParse(const std::string &text, JsonValue &out,
          std::string &error)
{
    Parser p(text, error);
    return p.parseDocument(out);
}

bool
jsonParseFile(const std::string &path, JsonValue &out,
              std::string &error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error = "cannot open " + path;
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    if (!jsonParse(buf.str(), out, error)) {
        error = path + ": " + error;
        return false;
    }
    return true;
}

void
flattenNumbers(const JsonValue &value, const std::string &prefix,
               std::map<std::string, double> &out)
{
    switch (value.kind) {
      case JsonValue::Kind::Number:
        out[prefix] = value.number;
        break;
      case JsonValue::Kind::Bool:
        out[prefix] = value.boolean ? 1.0 : 0.0;
        break;
      case JsonValue::Kind::Object:
        for (const auto &[key, member] : value.object)
            flattenNumbers(
                member, prefix.empty() ? key : prefix + "." + key,
                out);
        break;
      case JsonValue::Kind::Array:
        for (std::size_t i = 0; i < value.array.size(); ++i)
            flattenNumbers(value.array[i],
                           (prefix.empty() ? "" : prefix + ".") +
                               std::to_string(i),
                           out);
        break;
      case JsonValue::Kind::String:
      case JsonValue::Kind::Null:
        break;
    }
}

} // namespace xui
