/**
 * @file
 * Tiny JSON-emission helpers shared by the metrics and trace-export
 * writers. Emission only — nothing in the repo parses JSON.
 */

#ifndef XUI_OBS_JSON_HH
#define XUI_OBS_JSON_HH

#include <cmath>
#include <cstdio>
#include <string>

namespace xui
{

/** Escape a string for inclusion inside JSON double quotes. */
inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Render a double as a JSON number (never NaN/Inf, never locale). */
inline std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "0";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

} // namespace xui

#endif // XUI_OBS_JSON_HH
