/**
 * @file
 * Per-vector counter tracks for kernel delivery-path counters.
 *
 * KernelCounterTrace turns `kernel.moderation.*` / `kernel.recovery.*`
 * counter bumps into Perfetto counter-track samples on the DES tier
 * (pid 1): one track per counter name, one series per vector
 * ("v<N>", or "all" for events with no vector in scope). Each bump
 * emits the cumulative count at the current simulated time, so an
 * overload or chaos run shows *when* coalescing windows opened,
 * flushes fired, or recovery rescans kicked in — in the same
 * timeline as the interrupt-lifecycle spans.
 *
 * The kernel holds a null-guarded pointer (the same
 * zero-cost-when-detached convention as metrics Counters); attach
 * via ObsSession::kernelTrace() + Kernel::attachCounterTrace().
 */

#ifndef XUI_OBS_KERNEL_TRACE_HH
#define XUI_OBS_KERNEL_TRACE_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "des/time.hh"
#include "obs/trace_export.hh"

namespace xui
{

/** Emits cumulative per-vector counter samples on the DES tier. */
class KernelCounterTrace
{
  public:
    /** Sentinel for bumps with no vector in scope. */
    static constexpr unsigned kNoVector = 256;

    explicit KernelCounterTrace(TraceJsonWriter &out) : out_(&out)
    {
        out_->nameProcess(kTracePidDes, "des");
    }

    /**
     * Count `n` events on track `name`, series `v<vector>` (or
     * "all"), and emit the new cumulative value at `now`.
     */
    void bump(const char *name, unsigned vector, Cycles now,
              std::uint64_t n = 1)
    {
        std::uint64_t &count = counts_[{name, vector}];
        count += n;
        std::string series = vector == kNoVector
                                 ? std::string("all")
                                 : "v" + std::to_string(vector);
        out_->counter(name, now, kTracePidDes, 0,
                      "{\"" + series +
                          "\": " + std::to_string(count) + "}");
    }

  private:
    TraceJsonWriter *out_;
    std::map<std::pair<std::string, unsigned>, std::uint64_t>
        counts_;
};

} // namespace xui

#endif // XUI_OBS_KERNEL_TRACE_HH
