#include "obs/trace_export.hh"

#include <fstream>

#include "obs/json.hh"

namespace xui
{

TraceJsonWriter::TraceJsonWriter(std::size_t max_events)
    : maxEvents_(max_events)
{}

void
TraceJsonWriter::push(Event &&ev)
{
    if (events_.size() < maxEvents_) {
        events_.push_back(std::move(ev));
        return;
    }
    // At the cap a span/instant event evicts the oldest buffered
    // counter sample: samples lose resolution gracefully, a lost
    // span deletes an interrupt from the timeline. Overwriting the
    // slot perturbs buffer order, which the trace format allows
    // (viewers sort by ts).
    if (sampleHead_ < sampleIdx_.size()) {
        events_[sampleIdx_[sampleHead_++]] = std::move(ev);
        ++droppedSamples_;
        return;
    }
    ++droppedSpans_;
}

void
TraceJsonWriter::instant(const std::string &name,
                         const char *category, Cycles cycle,
                         unsigned pid, unsigned tid,
                         const std::string &args_json)
{
    push(Event{name, category, 'i', cycle, 0, pid, tid, args_json});
}

void
TraceJsonWriter::complete(const std::string &name,
                          const char *category, Cycles start,
                          Cycles end, unsigned pid, unsigned tid,
                          const std::string &args_json)
{
    Cycles dur = end >= start ? end - start : 0;
    push(Event{name, category, 'X', start, dur, pid, tid,
               args_json});
}

void
TraceJsonWriter::counter(const std::string &name, Cycles cycle,
                         unsigned pid, unsigned tid,
                         const std::string &args_json)
{
    if (events_.size() >= maxEvents_) {
        ++droppedSamples_;
        return;
    }
    sampleIdx_.push_back(events_.size());
    events_.push_back(
        Event{name, "counter", 'C', cycle, 0, pid, tid, args_json});
}

void
TraceJsonWriter::nameProcess(unsigned pid, const std::string &name)
{
    events_.push_back(Event{"process_name", "__metadata", 'M', 0, 0,
                            pid, 0,
                            "{\"name\": \"" + jsonEscape(name) +
                                "\"}"});
}

void
TraceJsonWriter::nameThread(unsigned pid, unsigned tid,
                            const std::string &name)
{
    events_.push_back(Event{"thread_name", "__metadata", 'M', 0, 0,
                            pid, tid,
                            "{\"name\": \"" + jsonEscape(name) +
                                "\"}"});
}

void
TraceJsonWriter::writeEvent(std::ostream &os, const Event &ev) const
{
    os << "{\"name\": \"" << jsonEscape(ev.name) << "\", \"cat\": \""
       << ev.category << "\", \"ph\": \"" << ev.phase
       << "\", \"ts\": " << jsonNumber(cyclesToUs(ev.ts))
       << ", \"pid\": " << ev.pid << ", \"tid\": " << ev.tid;
    if (ev.phase == 'X')
        os << ", \"dur\": " << jsonNumber(cyclesToUs(ev.dur));
    if (ev.phase == 'i')
        os << ", \"s\": \"t\"";
    if (!ev.args.empty())
        os << ", \"args\": " << ev.args;
    os << "}";
}

void
TraceJsonWriter::write(std::ostream &os) const
{
    os << "[";
    bool first = true;
    for (const Event &ev : events_) {
        os << (first ? "\n" : ",\n");
        writeEvent(os, ev);
        first = false;
    }
    os << "\n]\n";
}

bool
TraceJsonWriter::writeFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    write(out);
    return static_cast<bool>(out);
}

void
PipelineTraceSink::event(TraceEvent ev, Cycles cycle,
                         std::uint64_t seq, std::uint32_t pc,
                         OpClass cls)
{
    std::string args;
    if (seq != 0) {
        args = "{\"seq\": " + std::to_string(seq) + ", \"pc\": " +
            std::to_string(pc) + ", \"cls\": " +
            std::to_string(static_cast<unsigned>(cls)) + "}";
    }
    out_.instant(traceEventName(ev), "pipeline", cycle, pid_, tid_,
                 args);
}

DesTraceHook::~DesTraceHook()
{
    if (queue_ != nullptr)
        queue_->setFireHook(nullptr);
}

void
DesTraceHook::attach(EventQueue &queue)
{
    queue_ = &queue;
    TraceJsonWriter *out = out_;
    unsigned pid = pid_;
    unsigned tid = tid_;
    queue.setFireHook([out, pid, tid](EventId id, Cycles when) {
        out->instant("event", "des", when, pid, tid,
                     "{\"id\": " + std::to_string(id) + "}");
    });
}

} // namespace xui
