#include "obs/perfdiff.hh"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "ckpt/build_info.hh"
#include "ckpt/snapshot.hh"
#include "obs/json_parse.hh"

namespace xui
{

bool
matchGlob(const std::string &pattern, const std::string &str)
{
    // Iterative '*' matcher with single-star backtracking.
    std::size_t p = 0, s = 0;
    std::size_t star = std::string::npos, mark = 0;
    while (s < str.size()) {
        if (p < pattern.size() &&
            (pattern[p] == str[s])) {
            ++p;
            ++s;
        } else if (p < pattern.size() && pattern[p] == '*') {
            star = p++;
            mark = s;
        } else if (star != std::string::npos) {
            p = star + 1;
            s = ++mark;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*')
        ++p;
    return p == pattern.size();
}

bool
parseTolRule(const std::string &arg, TolRule &out)
{
    std::size_t eq = arg.rfind('=');
    if (eq == std::string::npos || eq == 0 ||
        eq + 1 == arg.size())
        return false;
    TolRule rule;
    rule.pattern = arg.substr(0, eq);
    std::string spec = arg.substr(eq + 1);
    if (spec == "skip") {
        rule.skip = true;
        out = rule;
        return true;
    }
    const char *v = spec.c_str();
    if (*v == '+') {
        rule.direction = 1;
        ++v;
    } else if (*v == '-') {
        rule.direction = -1;
        ++v;
    }
    errno = 0;
    char *end = nullptr;
    double pct = std::strtod(v, &end);
    if (errno != 0 || end == v || *end != '\0' ||
        !std::isfinite(pct) || pct < 0.0)
        return false;
    rule.pct = pct;
    out = rule;
    return true;
}

namespace
{

/** First matching rule, or a synthetic default-tolerance rule. */
TolRule
ruleFor(const std::string &path, const PerfDiffOptions &opts)
{
    for (const TolRule &rule : opts.rules)
        if (matchGlob(rule.pattern, path))
            return rule;
    TolRule def;
    def.pct = opts.defaultTolPct;
    return def;
}

} // namespace

PerfDiffResult
perfDiff(const std::map<std::string, double> &base,
         const std::map<std::string, double> &cur,
         const PerfDiffOptions &opts)
{
    PerfDiffResult result;
    for (const auto &[path, b] : base) {
        TolRule rule = ruleFor(path, opts);
        if (rule.skip) {
            ++result.skipped;
            continue;
        }
        auto it = cur.find(path);
        if (it == cur.end()) {
            PerfDiffResult::Line line;
            line.path = path;
            line.baseline = b;
            line.missing = true;
            result.regressions.push_back(line);
            continue;
        }
        ++result.compared;
        double c = it->second;
        double delta = c - b;
        if (delta == 0.0)
            continue;
        // Deviation relative to |baseline|; a nonzero delta off a
        // zero baseline is an unbounded deviation (fails every
        // finite tolerance in its direction).
        double pct = b != 0.0
                         ? delta / std::fabs(b) * 100.0
                         : (delta > 0.0 ? HUGE_VAL : -HUGE_VAL);
        bool fails;
        if (rule.direction > 0)
            fails = pct > rule.pct;
        else if (rule.direction < 0)
            fails = pct < -rule.pct;
        else
            fails = std::fabs(pct) > rule.pct;
        if (fails) {
            PerfDiffResult::Line line;
            line.path = path;
            line.baseline = b;
            line.current = c;
            line.deltaPct = pct;
            result.regressions.push_back(line);
        }
    }
    return result;
}

namespace
{

void
usage(std::FILE *out, const char *prog)
{
    std::fprintf(
        out,
        "usage: %s BASELINE.json CURRENT.json [options]\n"
        "  --tol PCT           default tolerance in percent "
        "(default 0 = exact)\n"
        "  --rule PATTERN=SPEC per-metric tolerance; SPEC is PCT, "
        "+PCT (only\n"
        "                      increases fail), -PCT (only "
        "decreases fail), or\n"
        "                      skip. '*' wildcards; first matching "
        "rule wins.\n"
        "  --list              print every compared metric\n"
        "  --version           print build provenance and exit\n"
        "exit status: 0 within tolerance, 1 regressions, 2 usage "
        "or parse error\n",
        prog);
}

} // namespace

int
perfdiffMain(int argc, char **argv)
{
    const char *prog = argc > 0 ? argv[0] : "xui_perfdiff";
    std::string basePath, curPath;
    PerfDiffOptions opts;
    bool list = false;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--tol") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: --tol needs a value\n",
                             prog);
                usage(stderr, prog);
                return 2;
            }
            const char *v = argv[++i];
            errno = 0;
            char *end = nullptr;
            double pct = std::strtod(v, &end);
            if (errno != 0 || end == v || *end != '\0' ||
                !std::isfinite(pct) || pct < 0.0) {
                std::fprintf(stderr,
                             "%s: --tol needs a non-negative "
                             "percent, got '%s'\n",
                             prog, v);
                usage(stderr, prog);
                return 2;
            }
            opts.defaultTolPct = pct;
        } else if (std::strcmp(arg, "--rule") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: --rule needs a value\n",
                             prog);
                usage(stderr, prog);
                return 2;
            }
            const char *v = argv[++i];
            TolRule rule;
            if (!parseTolRule(v, rule)) {
                std::fprintf(stderr,
                             "%s: malformed --rule '%s' (expected "
                             "PATTERN=PCT|+PCT|-PCT|skip)\n",
                             prog, v);
                usage(stderr, prog);
                return 2;
            }
            opts.rules.push_back(rule);
        } else if (std::strcmp(arg, "--list") == 0) {
            list = true;
        } else if (std::strcmp(arg, "--help") == 0) {
            usage(stdout, prog);
            return 0;
        } else if (std::strcmp(arg, "--version") == 0) {
            std::printf("%s %s (%s), snapshot format %u\n", prog,
                        ckpt::kBuildGitSha, ckpt::kBuildType,
                        static_cast<unsigned>(ckpt::kFormatVersion));
            return 0;
        } else if (arg[0] == '-') {
            std::fprintf(stderr, "%s: unknown argument '%s'\n",
                         prog, arg);
            usage(stderr, prog);
            return 2;
        } else if (basePath.empty()) {
            basePath = arg;
        } else if (curPath.empty()) {
            curPath = arg;
        } else {
            std::fprintf(stderr, "%s: too many positionals\n",
                         prog);
            usage(stderr, prog);
            return 2;
        }
    }
    if (basePath.empty() || curPath.empty()) {
        std::fprintf(stderr,
                     "%s: need BASELINE and CURRENT files\n", prog);
        usage(stderr, prog);
        return 2;
    }

    JsonValue baseDoc, curDoc;
    std::string error;
    if (!jsonParseFile(basePath, baseDoc, error)) {
        std::fprintf(stderr, "%s: baseline: %s\n", prog,
                     error.c_str());
        return 2;
    }
    if (!jsonParseFile(curPath, curDoc, error)) {
        std::fprintf(stderr, "%s: current: %s\n", prog,
                     error.c_str());
        return 2;
    }

    std::map<std::string, double> base, cur;
    flattenNumbers(baseDoc, "", base);
    flattenNumbers(curDoc, "", cur);

    PerfDiffResult result = perfDiff(base, cur, opts);

    if (list) {
        for (const auto &[path, b] : base) {
            auto it = cur.find(path);
            std::printf("  %-56s %14g -> %s\n", path.c_str(), b,
                        it == cur.end()
                            ? "(missing)"
                            : std::to_string(it->second).c_str());
        }
    }
    for (const auto &line : result.regressions) {
        if (line.missing) {
            std::printf("REGRESSION %-56s %14g -> (missing)\n",
                        line.path.c_str(), line.baseline);
        } else {
            std::printf(
                "REGRESSION %-56s %14g -> %-14g (%+.2f%%)\n",
                line.path.c_str(), line.baseline, line.current,
                line.deltaPct);
        }
    }
    std::printf("perfdiff: %zu compared, %zu skipped, %zu "
                "regression(s)  [%s vs %s]\n",
                result.compared, result.skipped,
                result.regressions.size(), basePath.c_str(),
                curPath.c_str());
    return result.ok() ? 0 : 1;
}

} // namespace xui
