#include "obs/metrics.hh"

#include <fstream>

#include "obs/json.hh"
#include "stats/table.hh"

namespace xui
{

Counter &
MetricsRegistry::counter(const std::string &name)
{
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

LatencyRecorder &
MetricsRegistry::latency(const std::string &name,
                         unsigned sub_bucket_bits)
{
    auto &slot = latencies_[name];
    if (!slot)
        slot = std::make_unique<LatencyRecorder>(sub_bucket_bits);
    return *slot;
}

MetricId
MetricsRegistry::internCounter(const std::string &name)
{
    auto it = counterIds_.find(name);
    if (it != counterIds_.end())
        return it->second;
    Counter &c = counter(name);
    counterSlots_.push_back(&c);
    MetricId id = static_cast<MetricId>(counterSlots_.size() - 1);
    counterIds_.emplace(name, id);
    return id;
}

MetricId
MetricsRegistry::internGauge(const std::string &name)
{
    auto it = gaugeIds_.find(name);
    if (it != gaugeIds_.end())
        return it->second;
    Gauge &g = gauge(name);
    gaugeSlots_.push_back(&g);
    MetricId id = static_cast<MetricId>(gaugeSlots_.size() - 1);
    gaugeIds_.emplace(name, id);
    return id;
}

MetricId
MetricsRegistry::internLatency(const std::string &name,
                               unsigned sub_bucket_bits)
{
    auto it = latencyIds_.find(name);
    if (it != latencyIds_.end())
        return it->second;
    LatencyRecorder &l = latency(name, sub_bucket_bits);
    latencySlots_.push_back(&l);
    MetricId id = static_cast<MetricId>(latencySlots_.size() - 1);
    latencyIds_.emplace(name, id);
    return id;
}

void
MetricsRegistry::merge(const MetricsRegistry &other)
{
    for (const auto &[name, c] : other.counters_)
        counter(name).inc(c->value());
    for (const auto &[name, g] : other.gauges_)
        gauge(name).set(g->value());
    for (const auto &[name, l] : other.latencies_)
        latency(name).merge(l->hist());
}

const Counter *
MetricsRegistry::findCounter(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge *
MetricsRegistry::findGauge(const std::string &name) const
{
    auto it = gauges_.find(name);
    return it == gauges_.end() ? nullptr : it->second.get();
}

const LatencyRecorder *
MetricsRegistry::findLatency(const std::string &name) const
{
    auto it = latencies_.find(name);
    return it == latencies_.end() ? nullptr : it->second.get();
}

void
MetricsRegistry::writeTable(std::ostream &os,
                            const std::string &title) const
{
    TablePrinter t(title);
    t.setHeader({"Metric", "Kind", "Value / mean", "p50", "p99",
                 "Count"});
    for (const auto &[name, c] : counters_) {
        t.addRow({name, "counter",
                  TablePrinter::integer(
                      static_cast<std::int64_t>(c->value())),
                  "", "", ""});
    }
    for (const auto &[name, g] : gauges_) {
        t.addRow({name, "gauge", TablePrinter::num(g->value(), 4),
                  "", "", ""});
    }
    for (const auto &[name, l] : latencies_) {
        const Histogram &h = l->hist();
        t.addRow({name, "latency", TablePrinter::num(h.mean(), 1),
                  TablePrinter::integer(h.p50()),
                  TablePrinter::integer(h.p99()),
                  TablePrinter::integer(
                      static_cast<std::int64_t>(h.count()))});
    }
    t.print(os);
}

void
MetricsRegistry::writeCsv(CsvWriter &csv) const
{
    csv.writeRow({"kind", "name", "value", "count", "mean", "min",
                  "max", "p50", "p95", "p99", "p999"});
    for (const auto &[name, c] : counters_)
        csv.writeRow({"counter", name,
                      std::to_string(c->value()), "", "", "", "",
                      "", "", "", ""});
    for (const auto &[name, g] : gauges_)
        csv.writeRow({"gauge", name, jsonNumber(g->value()), "", "",
                      "", "", "", "", "", ""});
    for (const auto &[name, l] : latencies_) {
        const Histogram &h = l->hist();
        csv.writeRow({"latency", name, "",
                      std::to_string(h.count()),
                      jsonNumber(h.mean()),
                      std::to_string(h.min()),
                      std::to_string(h.max()),
                      std::to_string(h.p50()),
                      std::to_string(h.p95()),
                      std::to_string(h.p99()),
                      std::to_string(h.p999())});
    }
}

bool
MetricsRegistry::writeCsvFile(const std::string &path) const
{
    try {
        CsvWriter csv(path);
        writeCsv(csv);
        csv.close();
    } catch (const std::exception &) {
        return false;
    }
    return true;
}

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    os << "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, c] : counters_) {
        os << (first ? "" : ",") << "\n    \"" << jsonEscape(name)
           << "\": " << c->value();
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
    first = true;
    for (const auto &[name, g] : gauges_) {
        os << (first ? "" : ",") << "\n    \"" << jsonEscape(name)
           << "\": " << jsonNumber(g->value());
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n  \"latencies\": {";
    first = true;
    for (const auto &[name, l] : latencies_) {
        const Histogram &h = l->hist();
        os << (first ? "" : ",") << "\n    \"" << jsonEscape(name)
           << "\": {\"count\": " << h.count()
           << ", \"sum\": " << jsonNumber(h.sum())
           << ", \"mean\": " << jsonNumber(h.mean())
           << ", \"min\": " << h.min() << ", \"max\": " << h.max()
           << ", \"p50\": " << h.p50() << ", \"p95\": " << h.p95()
           << ", \"p99\": " << h.p99() << ", \"p999\": " << h.p999()
           << "}";
        first = false;
    }
    os << (first ? "" : "\n  ") << "}\n}\n";
}

bool
MetricsRegistry::writeJsonFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    writeJson(out);
    return static_cast<bool>(out);
}

} // namespace xui
