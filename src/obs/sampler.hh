/**
 * @file
 * Pipeline-pressure profiling: sampled counter tracks and the
 * interrupt-tax attribution engine.
 *
 * PipelinePressureProfiler attaches one CycleHook probe per core
 * and listens to the interrupt-lifecycle stream (via the same
 * observer path the span tracker uses). It produces two artifacts:
 *
 *  1. **Counter tracks** (`--counter-stride N`): every N executed
 *     cycles the probe samples ROB/IQ/LQ/SQ occupancy, fetch/issue/
 *     retire rates, cache MPKI, and branch mispredicts into Perfetto
 *     counter tracks ("C" events) next to the lifecycle spans.
 *     Inside a window around every raise -> deliver span the stride
 *     drops to 1 (burst mode, SMARTS-style): full-resolution detail
 *     exactly where the paper's claims live, cheap strided coverage
 *     everywhere else. The burst starts at Raise and ends
 *     `burstWindow` cycles after the last Deliver.
 *
 *  2. **Interrupt tax** (`--tax`): every cycle during which at
 *     least one interrupt span is open is attributed to exactly one
 *     bucket per open span, by the span's current lifecycle phase:
 *
 *       shadow  raise  -> accept   pending at the unit (queueing /
 *                                  moderation shadow)
 *       flush   accept -> inject   pipeline disruption: squash
 *                                  penalty (Flush), ROB drain
 *                                  (Drain), boundary wait (Tracked)
 *       refill  inject -> deliver  frontend-stalled share (fetch
 *                                  blocked on microcode entry /
 *                                  post-squash refill)
 *       ucode   inject -> deliver  remaining share (MSROM streaming
 *                                  through the backend)
 *       handler deliver-> return   user handler until uiret
 *
 *     Because each cycle of an open span falls in exactly one
 *     phase, the buckets *telescope*: flush + refill + ucode +
 *     handler + shadow == end-to-end span cycles, per span and
 *     therefore per source. Rollups land in MetricsRegistry under
 *     `core<N>.tax.src.<source>.*` and `core<N>.tax.vec<V>.*`.
 *
 * Digest neutrality: the profiler only reads core state from the
 * end-of-tick hook and never touches the simulation; the golden
 * corpus re-runs with a profiler attached and pins bit-identical
 * digests.
 */

#ifndef XUI_OBS_SAMPLER_HH
#define XUI_OBS_SAMPLER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hh"
#include "obs/trace_export.hh"
#include "uarch/cycle_hook.hh"
#include "uarch/intr_observer.hh"
#include "uarch/ooo_core.hh"

namespace xui
{

/** Profiling knobs (bench flags `--counter-stride`, `--tax`). */
struct ProfileConfig
{
    /** Sample every N executed cycles (0 = counter tracks off). */
    std::uint64_t counterStride = 0;
    /** Attribute interrupt-span cycles into tax buckets. */
    bool tax = false;
    /** Burst tail: stride-1 cycles kept after a Deliver. */
    Cycles burstWindow = 64;
};

/** Per-span cycle attribution (see file comment for the model). */
struct TaxCounts
{
    std::uint64_t flush = 0;
    std::uint64_t refill = 0;
    std::uint64_t ucode = 0;
    std::uint64_t handler = 0;
    std::uint64_t shadow = 0;

    std::uint64_t total() const
    {
        return flush + refill + ucode + handler + shadow;
    }
};

/** Samples counter tracks and attributes interrupt tax. */
class PipelinePressureProfiler : public IntrLifecycleObserver
{
  public:
    /**
     * @param cfg profiling knobs
     * @param metrics tax rollup target (may be null: tax off)
     * @param trace counter-track target (may be null: tracks off)
     */
    PipelinePressureProfiler(const ProfileConfig &cfg,
                             MetricsRegistry *metrics,
                             TraceJsonWriter *trace);
    ~PipelinePressureProfiler() override;

    PipelinePressureProfiler(const PipelinePressureProfiler &) =
        delete;
    PipelinePressureProfiler &
    operator=(const PipelinePressureProfiler &) = delete;

    /**
     * Hook one core (call once per core, before it runs). The
     * probe stays owned by the profiler; the profiler must outlive
     * the core's run.
     */
    void attachCore(OooCore &core);

    /** Lifecycle stream (drives bursts and tax phases). */
    void intrStage(IntrStage stage, std::uint64_t span_id,
                   IntrSource source, std::uint8_t vector,
                   Cycles cycle, unsigned core_id) override;

    /** Counter-track samples emitted across all cores. */
    std::uint64_t samplesEmitted() const;

    /** Cycles sampled at stride 1 inside burst windows. */
    std::uint64_t burstSamples() const;

    /** Publish profiler summary counters (obs.sampler.*). */
    void publish(MetricsRegistry &registry) const;

  private:
    /** Lifecycle phase an open span is currently in. */
    enum class Phase : std::uint8_t
    {
        Pend,       ///< raise observed, accept not yet
        InjectWait, ///< accept observed, inject not yet
        Ucode,      ///< inject observed, deliver not yet
        Handler,    ///< deliver observed, return not yet
    };

    struct OpenSpan
    {
        Phase phase = Phase::Pend;
        IntrSource source{};
        std::uint8_t vector = 0;
        TaxCounts tax;
    };

    /** One hooked core: sampling state + open-span table. */
    struct CoreProbe : CycleHook
    {
        PipelinePressureProfiler *owner = nullptr;
        unsigned coreId = 0;

        // Deltas since the previous sample.
        Cycles prevCycle = 0;
        std::uint64_t prevFetched = 0;
        std::uint64_t prevIssued = 0;
        std::uint64_t prevRetired = 0;
        std::uint64_t prevInsts = 0;
        std::uint64_t prevL1Miss = 0;
        std::uint64_t prevL2Miss = 0;
        std::uint64_t prevLlcMiss = 0;
        std::uint64_t prevMispred = 0;

        // Burst window: live while any span is pre-Deliver, plus a
        // tail after the last Deliver.
        unsigned pendingRaises = 0;
        Cycles burstUntil = 0;

        std::uint64_t samples = 0;
        std::uint64_t burstSamples = 0;

        /** Open spans on this core (span ids are per-unit). */
        std::unordered_map<std::uint64_t, OpenSpan> open;

        // Cached track names ("coreN occupancy" etc.).
        std::string occTrack;
        std::string rateTrack;
        std::string memTrack;

        void onCycle(const OooCore &core, bool sampled,
                     bool live) override;
    };

    /** Interned per-(core, stream) tax counter handles. */
    struct TaxIds
    {
        MetricId flush;
        MetricId refill;
        MetricId ucode;
        MetricId handler;
        MetricId shadow;
        MetricId spans;
    };

    CoreProbe *probeFor(unsigned core_id);
    bool inBurst(const CoreProbe &p, Cycles now) const;
    void sample(CoreProbe &p, const OooCore &core);
    void rollup(CoreProbe &p, const OpenSpan &span);
    TaxIds &taxIds(const std::string &stream);

    ProfileConfig cfg_;
    MetricsRegistry *metrics_;
    TraceJsonWriter *trace_;
    std::vector<std::unique_ptr<CoreProbe>> probes_;
    /** core id -> probe (ids are small and dense in practice). */
    std::vector<CoreProbe *> byCore_;
    std::unordered_map<std::string, TaxIds> taxIds_;
};

} // namespace xui

#endif // XUI_OBS_SAMPLER_HH
