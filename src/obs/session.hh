/**
 * @file
 * One-stop observability session for benches and tools.
 *
 * ObsSession bundles the registry, the span tracker, and the trace
 * writer behind the two bench flags (`--metrics-json FILE`,
 * `--trace-json FILE`). When neither flag is given the session is
 * disabled: attach() calls are no-ops, every instrumented component
 * keeps its null observer/metrics pointers, and the run is bit-for-
 * bit identical to an uninstrumented one.
 *
 * Typical bench wiring:
 *
 *     ObsSession obs(opt.metricsJson, opt.traceJson);
 *     obs.attach(sys);            // spans + per-core pipeline tracks
 *     ... run ...
 *     obs.publishCore(sys.core(0));
 *     return obs.finish();        // writes files, reports drops
 */

#ifndef XUI_OBS_SESSION_HH
#define XUI_OBS_SESSION_HH

#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hh"
#include "obs/span.hh"
#include "obs/trace_export.hh"
#include "uarch/uarch_system.hh"

namespace xui
{

class ObsSession
{
  public:
    /**
     * @param metrics_path `--metrics-json` argument ("" = off)
     * @param trace_path `--trace-json` argument ("" = off)
     */
    ObsSession(std::string metrics_path, std::string trace_path);
    ~ObsSession();

    ObsSession(const ObsSession &) = delete;
    ObsSession &operator=(const ObsSession &) = delete;

    bool metricsEnabled() const { return !metricsPath_.empty(); }
    bool traceEnabled() const { return trace_ != nullptr; }
    bool enabled() const { return metrics_ != nullptr; }

    /**
     * Null when disabled. The registry exists whenever either flag
     * was given (the span tracker records into it); its file is only
     * written when `--metrics-json` was requested.
     */
    MetricsRegistry *metrics() { return metrics_.get(); }
    TraceJsonWriter *trace() { return trace_.get(); }
    IntrSpanTracker *spanTracker() { return spans_.get(); }

    /**
     * Attach the span tracker and (when tracing) one pipeline sink
     * per existing core. No-op when disabled.
     */
    void attach(UarchSystem &sys);

    /** Render DES events fired on `queue` onto track (1, tid). */
    void attach(EventQueue &queue, unsigned tid = 0,
                const std::string &name = "des");

    /** Snapshot a core's CoreStats into `core<N>.*` counters. */
    void publishCore(OooCore &core);

    /**
     * Export spans, write the requested files, and report dropped
     * trace events on stderr.
     * @return 0 on success, 1 when a file could not be written.
     */
    int finish();

  private:
    std::unique_ptr<MetricsRegistry> metrics_;
    std::unique_ptr<TraceJsonWriter> trace_;
    std::unique_ptr<IntrSpanTracker> spans_;
    std::vector<std::unique_ptr<PipelineTraceSink>> sinks_;
    std::vector<std::unique_ptr<DesTraceHook>> desHooks_;
    std::string metricsPath_;
    std::string tracePath_;
    bool finished_ = false;
};

} // namespace xui

#endif // XUI_OBS_SESSION_HH
