/**
 * @file
 * One-stop observability session for benches and tools.
 *
 * ObsSession bundles the registry, the span tracker, and the trace
 * writer behind the two bench flags (`--metrics-json FILE`,
 * `--trace-json FILE`). When neither flag is given the session is
 * disabled: attach() calls are no-ops, every instrumented component
 * keeps its null observer/metrics pointers, and the run is bit-for-
 * bit identical to an uninstrumented one.
 *
 * Typical bench wiring:
 *
 *     ObsSession obs(opt.metricsJson, opt.traceJson);
 *     obs.attach(sys);            // spans + per-core pipeline tracks
 *     ... run ...
 *     obs.publishCore(sys.core(0));
 *     return obs.finish();        // writes files, reports drops
 */

#ifndef XUI_OBS_SESSION_HH
#define XUI_OBS_SESSION_HH

#include <memory>
#include <string>
#include <vector>

#include "obs/kernel_trace.hh"
#include "obs/metrics.hh"
#include "obs/sampler.hh"
#include "obs/span.hh"
#include "obs/trace_export.hh"
#include "uarch/uarch_system.hh"

namespace xui
{

class ObsSession
{
  public:
    /**
     * @param metrics_path `--metrics-json` argument ("" = off)
     * @param trace_path `--trace-json` argument ("" = off)
     */
    ObsSession(std::string metrics_path, std::string trace_path);
    ~ObsSession();

    ObsSession(const ObsSession &) = delete;
    ObsSession &operator=(const ObsSession &) = delete;

    bool metricsEnabled() const { return !metricsPath_.empty(); }
    bool traceEnabled() const { return trace_ != nullptr; }
    bool enabled() const { return metrics_ != nullptr; }

    /**
     * Null when disabled. The registry exists whenever either flag
     * was given (the span tracker records into it); its file is only
     * written when `--metrics-json` was requested.
     */
    MetricsRegistry *metrics() { return metrics_.get(); }
    TraceJsonWriter *trace() { return trace_.get(); }
    IntrSpanTracker *spanTracker() { return spans_.get(); }
    PipelinePressureProfiler *profiler() { return profiler_.get(); }

    /**
     * Configure pipeline-pressure profiling (`--counter-stride`,
     * `--tax`). Must be called before attach(); counter tracks
     * additionally need `--trace-json`, the tax rollup needs the
     * registry (either flag). No-op when the session is disabled.
     */
    void setProfile(const ProfileConfig &cfg) { profile_ = cfg; }

    /**
     * Per-vector counter tracks for kernel.moderation.* /
     * kernel.recovery.* (pass to Kernel::attachCounterTrace).
     * Null when tracing is off.
     */
    KernelCounterTrace *kernelTrace();

    /**
     * Attach the span tracker, the pressure profiler (when
     * configured), and (when tracing) one pipeline sink per
     * existing core. No-op when disabled.
     */
    void attach(UarchSystem &sys);

    /** Render DES events fired on `queue` onto track (1, tid). */
    void attach(EventQueue &queue, unsigned tid = 0,
                const std::string &name = "des");

    /** Snapshot a core's CoreStats into `core<N>.*` counters. */
    void publishCore(OooCore &core);

    /**
     * Export spans, write the requested files, and report dropped
     * trace events on stderr.
     * @return 0 on success, 1 when a file could not be written.
     */
    int finish();

  private:
    std::unique_ptr<MetricsRegistry> metrics_;
    std::unique_ptr<TraceJsonWriter> trace_;
    std::unique_ptr<IntrSpanTracker> spans_;
    std::unique_ptr<PipelinePressureProfiler> profiler_;
    std::unique_ptr<KernelCounterTrace> kernelTrace_;
    IntrObserverTee observerTee_;
    ProfileConfig profile_;
    std::vector<std::unique_ptr<PipelineTraceSink>> sinks_;
    std::vector<std::unique_ptr<DesTraceHook>> desHooks_;
    std::string metricsPath_;
    std::string tracePath_;
    bool teeBuilt_ = false;
    bool finished_ = false;
};

} // namespace xui

#endif // XUI_OBS_SESSION_HH
