/**
 * @file
 * Interrupt-lifecycle span tracking.
 *
 * IntrSpanTracker implements IntrLifecycleObserver: it keys every
 * stage callback on the span (correlation) id assigned at raise(),
 * reassembles per-interrupt timelines, and records the per-stage
 * latency breakdown into per-source LatencyRecorders in a
 * MetricsRegistry. The four stages telescope by construction —
 *
 *   pend        = accept  - raise     (queued at the APIC / unit)
 *   inject_wait = inject  - accept    (waiting for the boundary /
 *                                      drain / flush penalty)
 *   ucode       = deliver - inject    (microcode until the delivery
 *                                      jump commits, including any
 *                                      re-injected attempts)
 *   handler     = return  - deliver   (user handler until uiret)
 *
 * — so their sum is exactly the end-to-end raise -> uiret latency,
 * which is also recorded (name suffix "e2e"). Registry names follow
 * "<prefix><core>.intr.<source>.<stage>".
 *
 * Preempting spans (priority preemption of a running handler) add
 * two stages and keep the telescoping exact:
 *
 *   inject_wait     = save_start - accept   (boundary wait)
 *   preempt_save    = inject - save_start   (frame spill microcode)
 *   preempt_restore = resume - return       (restore after uiret)
 *
 * and e2e = resume - raise, so pend + inject_wait + preempt_save +
 * ucode + handler + preempt_restore == e2e exactly. Non-preempting
 * spans record zero-less streams (the two extra recorders are
 * interned lazily, so priority-off runs register nothing new).
 */

#ifndef XUI_OBS_SPAN_HH
#define XUI_OBS_SPAN_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hh"
#include "uarch/intr_observer.hh"

namespace xui
{

class TraceJsonWriter;

/** One reassembled interrupt lifecycle. */
struct IntrSpan
{
    std::uint64_t id = 0;
    unsigned core = 0;
    IntrSource source = IntrSource::UserIpi;
    std::uint8_t vector = 0;
    Cycles raisedAt = 0;
    Cycles acceptedAt = 0;
    Cycles injectedAt = 0;
    Cycles deliveredAt = 0;
    Cycles returnedAt = 0;
    /** Preempting spans: preempt-save began / handler restored. */
    Cycles saveStartAt = 0;
    Cycles restoredAt = 0;
    /** Squash-induced re-injections before first commit. */
    unsigned reinjections = 0;
    /** This delivery preempted a lower-priority handler. */
    bool preempting = false;
    /** All timestamps latched (Return / PreemptResume observed). */
    bool complete = false;

    Cycles pend() const { return acceptedAt - raisedAt; }
    Cycles injectWait() const
    {
        return (preempting ? saveStartAt : injectedAt) - acceptedAt;
    }
    Cycles preemptSave() const
    {
        return preempting ? injectedAt - saveStartAt : 0;
    }
    Cycles ucode() const { return deliveredAt - injectedAt; }
    Cycles handler() const { return returnedAt - deliveredAt; }
    Cycles preemptRestore() const
    {
        return preempting ? restoredAt - returnedAt : 0;
    }
    Cycles endToEnd() const
    {
        return (preempting ? restoredAt : returnedAt) - raisedAt;
    }
};

/** Name of an interrupt source (stable, registry-safe). */
const char *intrSourceName(IntrSource source);

/** Reassembles spans and feeds per-source stage histograms. */
class IntrSpanTracker : public IntrLifecycleObserver
{
  public:
    /**
     * @param registry receives the per-source stage recorders
     * @param prefix registry-name prefix before "core<N>."
     */
    explicit IntrSpanTracker(MetricsRegistry &registry,
                             std::string prefix = "");

    void intrStage(IntrStage stage, std::uint64_t span_id,
                   IntrSource source, std::uint8_t vector,
                   Cycles cycle, unsigned core_id) override;

    /** Completed spans, in completion order. */
    const std::vector<IntrSpan> &spans() const { return spans_; }

    /** Spans raised but not (yet) returned. */
    std::size_t openCount() const { return open_.size(); }

    /**
     * Export every completed span as stage-duration "X" events plus
     * a raise instant, on track (kTracePidUarch, core).
     */
    void exportTo(TraceJsonWriter &out) const;

  private:
    /** Span ids are per-unit; qualify with the core id. */
    static std::uint64_t key(unsigned core, std::uint64_t id)
    {
        return (static_cast<std::uint64_t>(core) << 48) | id;
    }

    void finish(IntrSpan &span);

    /**
     * Interned recorder ids for one (core, source) stream. Built
     * once per stream; finish() — which runs once per delivered
     * interrupt — then records through array indices instead of
     * rebuilding five registry names and hashing them.
     */
    struct StreamIds
    {
        MetricId pend;
        MetricId injectWait;
        MetricId ucode;
        MetricId handler;
        MetricId e2e;
        MetricId delivered;
        /** Interned on first squash-reinjection so streams without
         * reinjections register no counter (kNoId until then). */
        MetricId reinjections;
        /** Interned on the first preempting span (kNoId until
         * then): priority-off runs register nothing extra. */
        MetricId preemptSave;
        MetricId preemptRestore;
    };

    static constexpr MetricId kNoId = ~MetricId(0);

    StreamIds &streamIds(unsigned core, IntrSource source);

    MetricsRegistry &registry_;
    std::string prefix_;
    std::unordered_map<std::uint64_t, IntrSpan> open_;
    std::vector<IntrSpan> spans_;
    std::unordered_map<std::uint64_t, StreamIds> streams_;
};

} // namespace xui

#endif // XUI_OBS_SPAN_HH
