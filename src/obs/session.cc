#include "obs/session.hh"

#include <iostream>

namespace xui
{

ObsSession::ObsSession(std::string metrics_path,
                       std::string trace_path)
    : metricsPath_(std::move(metrics_path)),
      tracePath_(std::move(trace_path))
{
    if (metricsPath_.empty() && tracePath_.empty())
        return;
    metrics_ = std::make_unique<MetricsRegistry>();
    spans_ = std::make_unique<IntrSpanTracker>(*metrics_);
    if (!tracePath_.empty())
        trace_ = std::make_unique<TraceJsonWriter>();
}

ObsSession::~ObsSession() = default;

KernelCounterTrace *
ObsSession::kernelTrace()
{
    if (trace_ == nullptr)
        return nullptr;
    if (kernelTrace_ == nullptr)
        kernelTrace_ = std::make_unique<KernelCounterTrace>(*trace_);
    return kernelTrace_.get();
}

void
ObsSession::attach(UarchSystem &sys)
{
    if (!enabled())
        return;
    bool wantSampler =
        profile_.counterStride > 0 && trace_ != nullptr;
    bool wantTax = profile_.tax;
    if ((wantSampler || wantTax) && profiler_ == nullptr) {
        profiler_ = std::make_unique<PipelinePressureProfiler>(
            profile_, wantTax ? metrics_.get() : nullptr,
            wantSampler ? trace_.get() : nullptr);
    }
    if (profiler_ != nullptr) {
        // The core carries a single observer slot: fan the
        // lifecycle stream out to the span tracker and the
        // profiler (once, however many systems attach).
        if (!teeBuilt_) {
            observerTee_.add(spans_.get());
            observerTee_.add(profiler_.get());
            teeBuilt_ = true;
        }
        sys.setIntrObserver(&observerTee_);
        for (std::size_t i = 0; i < sys.numCores(); ++i)
            profiler_->attachCore(sys.core(i));
    } else {
        sys.setIntrObserver(spans_.get());
    }
    if (trace_ != nullptr) {
        trace_->nameProcess(kTracePidUarch, "uarch");
        for (std::size_t i = 0; i < sys.numCores(); ++i) {
            OooCore &core = sys.core(i);
            sinks_.push_back(std::make_unique<PipelineTraceSink>(
                *trace_, core.id()));
            core.setTracer(sinks_.back().get());
            trace_->nameThread(kTracePidUarch, core.id(),
                               "core" + std::to_string(core.id()));
        }
    }
}

void
ObsSession::attach(EventQueue &queue, unsigned tid,
                   const std::string &name)
{
    if (trace_ == nullptr)
        return;
    trace_->nameProcess(kTracePidDes, "des");
    trace_->nameThread(kTracePidDes, tid, name);
    desHooks_.push_back(
        std::make_unique<DesTraceHook>(*trace_, tid));
    desHooks_.back()->attach(queue);
}

void
ObsSession::publishCore(OooCore &core)
{
    if (!enabled())
        return;
    const CoreStats &s = core.stats();
    std::string base = "core" + std::to_string(core.id()) + ".";
    metrics_->counter(base + "cycles").inc(s.cycles);
    metrics_->counter(base + "committed_insts")
        .inc(s.committedInsts);
    metrics_->counter(base + "committed_uops").inc(s.committedUops);
    metrics_->counter(base + "fetched_uops").inc(s.fetchedUops);
    metrics_->counter(base + "squashed_uops").inc(s.squashedUops);
    metrics_->counter(base + "squashes").inc(s.squashes);
    metrics_->counter(base + "branch_mispredicts")
        .inc(s.branchMispredicts);
    metrics_->counter(base + "intr_raised").inc(s.interruptsRaised);
    metrics_->counter(base + "intr_delivered")
        .inc(s.interruptsDelivered);
    metrics_->counter(base + "reinjections").inc(s.reinjections);
    metrics_->counter(base + "slow_path_forwards")
        .inc(s.slowPathForwards);
    metrics_->counter(base + "drain_wait_cycles")
        .inc(s.drainWaitCycles);
    if (s.cycles > 0) {
        metrics_->gauge(base + "ipc").set(
            static_cast<double>(s.committedInsts) /
            static_cast<double>(s.cycles));
    }
    // Fast-forward (sampled-detail) accounting. Only emitted when
    // the mode ever engaged, so exact-mode metrics files are
    // unchanged byte-for-byte.
    if (s.ffEntries > 0) {
        metrics_->counter(base + "ff.entries").inc(s.ffEntries);
        metrics_->counter(base + "ff.exits").inc(s.ffExits);
        metrics_->counter(base + "ff.cycles").inc(s.ffCycles);
        metrics_->counter(base + "ff.insts").inc(s.ffInsts);
        metrics_->gauge(base + "ff.cycle_fraction")
            .set(static_cast<double>(s.ffCycles) /
                 static_cast<double>(s.cycles));
        if (trace_ != nullptr) {
            // Mode-transition spans: one "X" slice per fast-forward
            // region on the core's track, so the detail windows are
            // the visible gaps between them in Perfetto.
            for (const FfSpan &span : s.ffSpans) {
                Cycles end = span.exitedAt != 0 ? span.exitedAt
                                                : core.now();
                trace_->complete(
                    "ff", "mode", span.enteredAt, end,
                    kTracePidUarch, core.id(),
                    "{\"insts\": " + std::to_string(span.insts) +
                        "}");
            }
        }
    }
}

int
ObsSession::finish()
{
    if (finished_ || !enabled())
        return 0;
    finished_ = true;
    int rc = 0;
    if (profiler_ != nullptr)
        profiler_->publish(*metrics_);
    if (trace_ != nullptr) {
        spans_->exportTo(*trace_);
        // Drop accounting: counter samples are sacrificed before
        // span events at the buffer cap, and the two losses are
        // reported separately (a lost sample costs resolution, a
        // lost span deletes an interrupt from the timeline).
        metrics_->counter("obs.trace.dropped_samples")
            .inc(trace_->droppedSamples());
        metrics_->counter("obs.trace.dropped_spans")
            .inc(trace_->droppedSpans());
        if (trace_->dropped() > 0) {
            std::cerr << "obs: dropped " << trace_->droppedSamples()
                      << " counter samples and "
                      << trace_->droppedSpans()
                      << " span events (buffer cap reached)\n";
        }
        if (!trace_->writeFile(tracePath_)) {
            std::cerr << "obs: cannot write " << tracePath_ << "\n";
            rc = 1;
        }
    }
    if (metricsEnabled() && !metrics_->writeJsonFile(metricsPath_)) {
        std::cerr << "obs: cannot write " << metricsPath_ << "\n";
        rc = 1;
    }
    return rc;
}

} // namespace xui
