/**
 * @file
 * Minimal JSON parser for the repo's own artifacts.
 *
 * Everything under build/ — `--metrics-json` snapshots, BENCH_*.json
 * references, trace exports — is emitted by src/obs or the bench
 * drivers, so the parser only needs strict RFC-8259 JSON: objects,
 * arrays, strings (with the escapes jsonEscape produces), finite
 * numbers, true/false/null. It is a small recursive-descent parser
 * with a depth limit; errors carry a byte offset so a malformed
 * reference file is diagnosable from the CLI.
 *
 * Object member order is preserved (vector of pairs, not a map):
 * flattenNumbers() paths then enumerate deterministically in
 * document order.
 */

#ifndef XUI_OBS_JSON_PARSE_HH
#define XUI_OBS_JSON_PARSE_HH

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace xui
{

/** One parsed JSON value (tree-owning). */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    /** Members in document order. */
    std::vector<std::pair<std::string, JsonValue>> object;

    /** Object member lookup (first match; nullptr when absent). */
    const JsonValue *find(const std::string &key) const;
};

/**
 * Parse `text` as one JSON document (trailing junk is an error).
 * @param error on failure: message with byte offset
 * @return false on malformed input (`out` unspecified)
 */
bool jsonParse(const std::string &text, JsonValue &out,
               std::string &error);

/**
 * Read and parse a file.
 * @param error on failure: open error or parse diagnostic
 */
bool jsonParseFile(const std::string &path, JsonValue &out,
                   std::string &error);

/**
 * Flatten every numeric leaf (numbers and booleans as 0/1) into
 * dotted paths: object keys join with '.', array elements with
 * their index ("scenarios.0.sim_cycles"). Strings and nulls are
 * skipped — perfdiff compares numbers.
 */
void flattenNumbers(const JsonValue &value,
                    const std::string &prefix,
                    std::map<std::string, double> &out);

} // namespace xui

#endif // XUI_OBS_JSON_PARSE_HH
