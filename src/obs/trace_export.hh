/**
 * @file
 * Chrome trace-event JSON export (Perfetto-loadable).
 *
 * TraceJsonWriter buffers events and serializes the array-of-events
 * form of the Chrome trace format: every event carries `ph` (phase),
 * `ts` (microseconds), `pid` and `tid`, so `chrome://tracing` and
 * https://ui.perfetto.dev load the output directly. Three adapters
 * feed it:
 *
 *  - PipelineTraceSink: a Tracer that renders one instant event per
 *    pipeline stage event on its core's track;
 *  - DesTraceHook: attaches to an EventQueue fire hook and renders
 *    one instant event per DES event fired;
 *  - IntrSpanTracker (src/obs/span.hh) exports lifecycle stages as
 *    complete ("X") duration events.
 *
 * Track convention: pid 0 = the cycle tier (tid = core id), pid 1 =
 * the DES tier (tid = chosen by the caller, 0 by default).
 */

#ifndef XUI_OBS_TRACE_EXPORT_HH
#define XUI_OBS_TRACE_EXPORT_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "des/event_queue.hh"
#include "des/time.hh"
#include "uarch/trace.hh"

namespace xui
{

/** Track-naming convention: the cycle tier. */
constexpr unsigned kTracePidUarch = 0;
/** Track-naming convention: the DES tier. */
constexpr unsigned kTracePidDes = 1;

/** Buffers Chrome trace events and writes the JSON array form. */
class TraceJsonWriter
{
  public:
    /**
     * @param max_events buffered-event cap; events beyond it are
     *        dropped (and counted) so a long run cannot exhaust
     *        memory. Metadata events are never dropped, and at the
     *        cap counter-track samples are sacrificed before span /
     *        instant events: samples are a periodic signal whose
     *        loss degrades resolution, spans are the scarce signal
     *        whose loss deletes an interrupt from the timeline. An
     *        incoming sample at the cap is dropped outright; an
     *        incoming span evicts the oldest buffered sample (and
     *        only when no samples remain is the span itself
     *        dropped). The two cases are counted separately
     *        (droppedSamples() / droppedSpans()).
     */
    explicit TraceJsonWriter(std::size_t max_events = 1000000);

    /** Instant event ("i", thread scope). */
    void instant(const std::string &name, const char *category,
                 Cycles cycle, unsigned pid, unsigned tid,
                 const std::string &args_json = "");

    /** Complete event ("X") spanning [start, end] cycles. */
    void complete(const std::string &name, const char *category,
                  Cycles start, Cycles end, unsigned pid,
                  unsigned tid,
                  const std::string &args_json = "");

    /**
     * Counter-track sample ("C"): `args_json` carries one key per
     * series on the track named `name`. Perfetto renders one
     * stacked counter track per (pid, name).
     */
    void counter(const std::string &name, Cycles cycle,
                 unsigned pid, unsigned tid,
                 const std::string &args_json);

    /** Metadata: name a process or thread track. */
    void nameProcess(unsigned pid, const std::string &name);
    void nameThread(unsigned pid, unsigned tid,
                    const std::string &name);

    /** Buffered events (including metadata). */
    std::size_t size() const { return events_.size(); }

    /** Events discarded after the cap was reached (all kinds). */
    std::size_t dropped() const
    {
        return droppedSamples_ + droppedSpans_;
    }

    /** Counter-track samples dropped (or evicted) at the cap. */
    std::size_t droppedSamples() const { return droppedSamples_; }

    /** Span/instant events dropped at the cap (no sample left). */
    std::size_t droppedSpans() const { return droppedSpans_; }

    /** Serialize the JSON array. */
    void write(std::ostream &os) const;

    /**
     * Write the JSON rendering to a file.
     * @return false when the file cannot be written.
     */
    bool writeFile(const std::string &path) const;

  private:
    struct Event
    {
        std::string name;
        const char *category;
        char phase;
        /** Start time in cycles (converted to us at write time). */
        Cycles ts;
        /** Duration in cycles ("X" events only). */
        Cycles dur;
        unsigned pid;
        unsigned tid;
        /** Pre-rendered JSON object for "args" (may be empty). */
        std::string args;
    };

    /** Append a span/instant event, evicting a sample at the cap. */
    void push(Event &&ev);
    void writeEvent(std::ostream &os, const Event &ev) const;

    std::vector<Event> events_;
    std::size_t maxEvents_;
    std::size_t droppedSamples_ = 0;
    std::size_t droppedSpans_ = 0;

    /**
     * Buffer indices of admitted counter samples, in admission
     * order; entries before sampleHead_ were already evicted.
     * Samples are only appended while under the cap and eviction
     * overwrites a sample slot with the incoming span, so every
     * live entry always points at a sample event.
     */
    std::vector<std::size_t> sampleIdx_;
    std::size_t sampleHead_ = 0;
};

/**
 * Tracer rendering pipeline events as instant trace events on one
 * core's track. Attach one sink per core (the Tracer interface does
 * not carry a core id).
 */
class PipelineTraceSink : public Tracer
{
  public:
    PipelineTraceSink(TraceJsonWriter &out, unsigned tid,
                      unsigned pid = kTracePidUarch)
        : out_(out), pid_(pid), tid_(tid)
    {}

    void event(TraceEvent ev, Cycles cycle, std::uint64_t seq,
               std::uint32_t pc, OpClass cls) override;

  private:
    TraceJsonWriter &out_;
    unsigned pid_;
    unsigned tid_;
};

/**
 * Renders every DES event fired as an instant trace event. Install
 * with attach(); detaches (restores a null hook) on destruction.
 */
class DesTraceHook
{
  public:
    explicit DesTraceHook(TraceJsonWriter &out, unsigned tid = 0,
                          unsigned pid = kTracePidDes)
        : out_(&out), pid_(pid), tid_(tid)
    {}

    ~DesTraceHook();

    DesTraceHook(const DesTraceHook &) = delete;
    DesTraceHook &operator=(const DesTraceHook &) = delete;

    /** Install on a queue (replaces any existing fire hook). */
    void attach(EventQueue &queue);

  private:
    TraceJsonWriter *out_;
    EventQueue *queue_ = nullptr;
    unsigned pid_;
    unsigned tid_;
};

} // namespace xui

#endif // XUI_OBS_TRACE_EXPORT_HH
