/**
 * @file
 * Perf-regression diff over two metrics/bench JSON snapshots.
 *
 * perfDiff() flattens two JSON documents (see json_parse.hh) to
 * dotted numeric paths and compares them under per-metric tolerance
 * rules — the engine behind tools/xui_perfdiff, CI's perf guard:
 *
 *   xui_perfdiff BASELINE.json CURRENT.json \
 *       --rule '*.wall_seconds=skip' \
 *       --rule '*.cycles_per_sec=-75' --tol 0
 *
 * Rule spec grammar (`--rule PATTERN=SPEC`, first match wins,
 * `*` matches any run of characters):
 *
 *   PCT    symmetric: |delta| beyond PCT% of baseline fails
 *   +PCT   only increases fail (latency, counts: higher is worse)
 *   -PCT   only decreases fail (rates: lower is worse)
 *   skip   never compared (host-dependent wall-clock noise)
 *
 * Deterministic simulated quantities diff exactly with the default
 * `--tol 0`. A metric present in the baseline but missing from the
 * current snapshot is a regression (a silently vanished metric must
 * not pass a perf gate); new metrics in current are allowed.
 */

#ifndef XUI_OBS_PERFDIFF_HH
#define XUI_OBS_PERFDIFF_HH

#include <map>
#include <string>
#include <vector>

namespace xui
{

/** One `--rule` entry (see file comment for the grammar). */
struct TolRule
{
    std::string pattern;
    /** Never compare matching metrics. */
    bool skip = false;
    /** Allowed deviation, percent of |baseline|. */
    double pct = 0.0;
    /** 0 = both directions fail, +1 = increases, -1 = decreases. */
    int direction = 0;
};

struct PerfDiffOptions
{
    /** Tolerance for metrics no rule matches (percent). */
    double defaultTolPct = 0.0;
    /** First matching rule wins. */
    std::vector<TolRule> rules;
};

struct PerfDiffResult
{
    struct Line
    {
        std::string path;
        double baseline = 0.0;
        double current = 0.0;
        /** Percent deviation (0 when baseline == current == 0). */
        double deltaPct = 0.0;
        /** Metric vanished from the current snapshot. */
        bool missing = false;
    };

    /** Metrics outside tolerance, in path order. */
    std::vector<Line> regressions;
    std::size_t compared = 0;
    std::size_t skipped = 0;

    bool ok() const { return regressions.empty(); }
};

/** `*`-wildcard match over the whole string. */
bool matchGlob(const std::string &pattern, const std::string &str);

/** Parse "PATTERN=SPEC" (@return false on malformed spec). */
bool parseTolRule(const std::string &arg, TolRule &out);

/** Compare flattened snapshots under the options' rules. */
PerfDiffResult perfDiff(const std::map<std::string, double> &base,
                        const std::map<std::string, double> &cur,
                        const PerfDiffOptions &opts);

/**
 * Full CLI (argv[0] is the program name): parses flags, loads both
 * files, prints the report.
 * @return 0 clean, 1 regressions found, 2 usage/parse error
 */
int perfdiffMain(int argc, char **argv);

} // namespace xui

#endif // XUI_OBS_PERFDIFF_HH
