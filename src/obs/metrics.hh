/**
 * @file
 * Unified metrics registry for both simulation tiers.
 *
 * Components register a metric once (get-or-create by hierarchical
 * dot-separated name, e.g. "core0.intr.kbtimer.e2e") and keep the
 * returned pointer/reference; bumping it afterwards is one null
 * check plus an integer add — the same zero-cost-when-detached
 * convention as the pipeline Tracer. Three metric kinds cover the
 * repo's needs:
 *
 *  - Counter: monotonically increasing event count;
 *  - Gauge: last-written value (utilizations, fractions, config);
 *  - LatencyRecorder: Histogram-backed latency distribution with
 *    percentile queries.
 *
 * A registry snapshot renders to an aligned table (TablePrinter),
 * CSV (CsvWriter), or JSON — the `--metrics-json` bench output.
 * Iteration is in sorted name order, so every rendering is
 * deterministic.
 */

#ifndef XUI_OBS_METRICS_HH
#define XUI_OBS_METRICS_HH

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "stats/csv.hh"
#include "stats/histogram.hh"

namespace xui
{

/** Monotonic event counter. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Last-written value (set wins; no aggregation). */
class Gauge
{
  public:
    void set(double v) { value_ = v; }
    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/** Histogram-backed latency distribution. */
class LatencyRecorder
{
  public:
    explicit LatencyRecorder(unsigned sub_bucket_bits = 7)
        : hist_(sub_bucket_bits)
    {}

    void record(std::int64_t v) { hist_.record(v); }
    void record(std::int64_t v, std::uint64_t n)
    {
        hist_.record(v, n);
    }

    /** Merge an externally collected histogram. */
    void merge(const Histogram &h) { hist_.merge(h); }

    const Histogram &hist() const { return hist_; }

  private:
    Histogram hist_;
};

/**
 * Stable integer handle to an interned metric (see
 * MetricsRegistry::internCounter and friends). Ids are dense,
 * per-kind, and never invalidated, so hot paths can resolve a
 * metric with one array index instead of a string hash/compare.
 */
using MetricId = std::uint32_t;

/**
 * Owns every registered metric; returned references stay valid for
 * the registry's lifetime (metrics are never removed).
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** Get-or-create by name. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    LatencyRecorder &latency(const std::string &name,
                             unsigned sub_bucket_bits = 7);

    /**
     * Intern a metric name into a dense per-kind id (get-or-create,
     * same registry entry the string API returns). Pay the string
     * lookup once at setup; use the ...At() accessors on the hot
     * path.
     */
    MetricId internCounter(const std::string &name);
    MetricId internGauge(const std::string &name);
    MetricId internLatency(const std::string &name,
                           unsigned sub_bucket_bits = 7);

    /** O(1) handle-to-metric resolution (id must be interned). */
    Counter &counterAt(MetricId id) { return *counterSlots_[id]; }
    Gauge &gaugeAt(MetricId id) { return *gaugeSlots_[id]; }
    LatencyRecorder &latencyAt(MetricId id)
    {
        return *latencySlots_[id];
    }

    /**
     * Fold another registry into this one, get-or-creating each
     * metric by name: counters add, gauges take the other side's
     * value (last merge wins), latency histograms merge exactly
     * (Histogram::merge re-buckets on config mismatch). Iteration
     * is in sorted name order, so merging per-job registries in
     * job-index order — the exec::sweep reduction — produces a
     * snapshot that is bit-identical for every thread count.
     */
    void merge(const MetricsRegistry &other);

    /** Lookup without creating (nullptr when absent). */
    const Counter *findCounter(const std::string &name) const;
    const Gauge *findGauge(const std::string &name) const;
    const LatencyRecorder *
    findLatency(const std::string &name) const;

    std::size_t size() const
    {
        return counters_.size() + gauges_.size() + latencies_.size();
    }

    /** Render all metrics as an aligned table. */
    void writeTable(std::ostream &os,
                    const std::string &title = "Metrics") const;

    /**
     * Write one CSV row per metric (kind, name, stats columns).
     * The first row is a header; names containing commas, quotes,
     * or newlines are RFC-4180-quoted by CsvWriter, so a snapshot
     * always round-trips through spreadsheet tooling.
     */
    void writeCsv(CsvWriter &csv) const;

    /**
     * Write the CSV rendering (header row + escaped names) to a
     * file.
     * @return false when the file cannot be written.
     */
    bool writeCsvFile(const std::string &path) const;

    /** Serialize every metric as a JSON object. */
    void writeJson(std::ostream &os) const;

    /**
     * Write the JSON rendering to a file.
     * @return false when the file cannot be written.
     */
    bool writeJsonFile(const std::string &path) const;

  private:
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<LatencyRecorder>>
        latencies_;

    // Interning side tables: name -> id, id -> metric. Slots point
    // into the maps above (never removed, so always valid).
    std::map<std::string, MetricId> counterIds_;
    std::map<std::string, MetricId> gaugeIds_;
    std::map<std::string, MetricId> latencyIds_;
    std::vector<Counter *> counterSlots_;
    std::vector<Gauge *> gaugeSlots_;
    std::vector<LatencyRecorder *> latencySlots_;
};

} // namespace xui

#endif // XUI_OBS_METRICS_HH
