#include "obs/sampler.hh"

#include <algorithm>

#include "obs/json.hh"
#include "obs/span.hh"

namespace xui
{

PipelinePressureProfiler::PipelinePressureProfiler(
    const ProfileConfig &cfg, MetricsRegistry *metrics,
    TraceJsonWriter *trace)
    : cfg_(cfg), metrics_(metrics), trace_(trace)
{}

PipelinePressureProfiler::~PipelinePressureProfiler() = default;

void
PipelinePressureProfiler::attachCore(OooCore &core)
{
    if (probeFor(core.id()) != nullptr)
        return;  // one probe per core id; re-attach is a no-op
    auto probe = std::make_unique<CoreProbe>();
    probe->owner = this;
    probe->coreId = core.id();
    probe->prevCycle = core.now();
    const CoreStats &s = core.stats();
    probe->prevFetched = s.fetchedUops;
    probe->prevIssued = s.issuedUops;
    probe->prevRetired = s.committedUops;
    probe->prevInsts = s.committedInsts;
    probe->prevL1Miss = core.mem().l1().misses();
    probe->prevL2Miss = core.mem().l2().misses();
    probe->prevLlcMiss = core.mem().llc().misses();
    probe->prevMispred = s.branchMispredicts;
    std::string id = std::to_string(core.id());
    probe->occTrack = "core" + id + " occupancy";
    probe->rateTrack = "core" + id + " rates";
    probe->memTrack = "core" + id + " mem";
    // Counter tracks need both a stride and a trace sink; the tax
    // engine needs the registry. With neither the probe is inert
    // (and ObsSession does not attach one).
    bool sampling = cfg_.counterStride > 0 && trace_ != nullptr;
    probe->nextSampleAt = sampling
                              ? core.now() + cfg_.counterStride
                              : CycleHook::kNeverSample;
    if (byCore_.size() <= core.id())
        byCore_.resize(core.id() + 1, nullptr);
    byCore_[core.id()] = probe.get();
    core.setCycleHook(probe.get());
    probes_.push_back(std::move(probe));
}

PipelinePressureProfiler::CoreProbe *
PipelinePressureProfiler::probeFor(unsigned core_id)
{
    if (core_id >= byCore_.size())
        return nullptr;
    return byCore_[core_id];
}

bool
PipelinePressureProfiler::inBurst(const CoreProbe &p,
                                  Cycles now) const
{
    return p.pendingRaises > 0 || now <= p.burstUntil;
}

void
PipelinePressureProfiler::intrStage(IntrStage stage,
                                    std::uint64_t span_id,
                                    IntrSource source,
                                    std::uint8_t vector,
                                    Cycles cycle, unsigned core_id)
{
    CoreProbe *p = probeFor(core_id);
    if (p == nullptr)
        return;
    bool sampling = cfg_.counterStride > 0 && trace_ != nullptr;
    bool tax = cfg_.tax && metrics_ != nullptr;
    switch (stage) {
      case IntrStage::Raise:
        if (tax) {
            OpenSpan s;
            s.phase = Phase::Pend;
            s.source = source;
            s.vector = vector;
            p->open.emplace(span_id, s);
            ++p->liveSpans;
        }
        if (sampling) {
            // Burst: sample at the end of this very cycle and every
            // cycle until `burstWindow` past the last Deliver. The
            // detail demand keeps a fast-forwarding core in full
            // detail at least as long as the burst could run.
            ++p->pendingRaises;
            p->nextSampleAt = cycle;
            p->wantDetailUntil = std::max(
                p->wantDetailUntil, cycle + cfg_.burstWindow);
        }
        break;
      case IntrStage::Accept:
        if (tax) {
            auto it = p->open.find(span_id);
            if (it != p->open.end())
                it->second.phase = Phase::InjectWait;
        }
        break;
      case IntrStage::Inject:
      case IntrStage::Reinject:
        if (tax) {
            auto it = p->open.find(span_id);
            if (it != p->open.end())
                it->second.phase = Phase::Ucode;
        }
        break;
      case IntrStage::Deliver:
        if (tax) {
            auto it = p->open.find(span_id);
            if (it != p->open.end())
                it->second.phase = Phase::Handler;
        }
        if (sampling) {
            if (p->pendingRaises > 0)
                --p->pendingRaises;
            p->burstUntil = std::max(p->burstUntil,
                                     cycle + cfg_.burstWindow);
            // Sampled-detail runs must not fast-forward through the
            // burst tail: full fidelity through the window.
            p->wantDetailUntil =
                std::max(p->wantDetailUntil, p->burstUntil);
        }
        break;
      case IntrStage::PreemptSave:
        // Preempting delivery: the frame spill is microcode on the
        // nested span's critical path — bucket it with ucode.
        if (tax) {
            auto it = p->open.find(span_id);
            if (it != p->open.end())
                it->second.phase = Phase::Ucode;
        }
        break;
      case IntrStage::Return:
      case IntrStage::PreemptResume:
        // Tax rolls up at the first of Return / PreemptResume (the
        // map erase makes the second a no-op): a preempting span's
        // restore tail is not tax-attributed, which keeps the
        // telescoping guarantee for the default (no-preemption)
        // configuration untouched.
        if (tax) {
            auto it = p->open.find(span_id);
            if (it != p->open.end()) {
                rollup(*p, it->second);
                p->open.erase(it);
                --p->liveSpans;
            }
        }
        break;
    }
}

void
PipelinePressureProfiler::CoreProbe::onCycle(const OooCore &core,
                                             bool sampled,
                                             bool live)
{
    PipelinePressureProfiler &prof = *owner;
    if (live) {
        // Attribute this cycle to every open span, by phase. Each
        // cycle of a span's life lands in exactly one bucket, so
        // the buckets telescope to the span's end-to-end cycles.
        bool stalled = core.frontendStalled();
        for (auto &[id, s] : open) {
            switch (s.phase) {
              case Phase::Pend:
                ++s.tax.shadow;
                break;
              case Phase::InjectWait:
                ++s.tax.flush;
                break;
              case Phase::Ucode:
                if (stalled)
                    ++s.tax.refill;
                else
                    ++s.tax.ucode;
                break;
              case Phase::Handler:
                ++s.tax.handler;
                break;
            }
        }
    }
    if (sampled) {
        if (prof.cfg_.counterStride > 0 && prof.trace_ != nullptr) {
            prof.sample(*this, core);
            nextSampleAt = core.now() +
                           (prof.inBurst(*this, core.now())
                                ? 1
                                : prof.cfg_.counterStride);
        } else {
            nextSampleAt = kNeverSample;
        }
    }
}

void
PipelinePressureProfiler::sample(CoreProbe &p, const OooCore &core)
{
    Cycles now = core.now();
    const CoreStats &s = core.stats();

    std::string occ = "{\"rob\": " +
        std::to_string(core.robOccupancy()) + ", \"iq\": " +
        std::to_string(core.iqOccupancy()) + ", \"lq\": " +
        std::to_string(core.lqOccupancy()) + ", \"sq\": " +
        std::to_string(core.sqOccupancy()) + ", \"fetchbuf\": " +
        std::to_string(core.fetchBufferDepth()) + "}";
    trace_->counter(p.occTrack, now, kTracePidUarch, p.coreId, occ);

    // Per-cycle rates over the sampling interval. With tick
    // skipping the interval includes skipped (idle) cycles, so
    // rates read as utilization of simulated wall time.
    Cycles dt = now > p.prevCycle ? now - p.prevCycle : 1;
    double inv = 1.0 / static_cast<double>(dt);
    double fetch =
        static_cast<double>(s.fetchedUops - p.prevFetched) * inv;
    double issue =
        static_cast<double>(s.issuedUops - p.prevIssued) * inv;
    double retire =
        static_cast<double>(s.committedUops - p.prevRetired) * inv;
    double ipc =
        static_cast<double>(s.committedInsts - p.prevInsts) * inv;
    std::string rate = "{\"fetch\": " + jsonNumber(fetch) +
        ", \"issue\": " + jsonNumber(issue) + ", \"retire\": " +
        jsonNumber(retire) + ", \"ipc\": " + jsonNumber(ipc) + "}";
    trace_->counter(p.rateTrack, now, kTracePidUarch, p.coreId,
                    rate);

    // MPKI over the interval (0 when nothing committed).
    std::uint64_t d_insts = s.committedInsts - p.prevInsts;
    auto mpki = [d_insts](std::uint64_t d_miss) {
        if (d_insts == 0)
            return 0.0;
        return static_cast<double>(d_miss) * 1000.0 /
               static_cast<double>(d_insts);
    };
    std::uint64_t l1 = core.mem().l1().misses();
    std::uint64_t l2 = core.mem().l2().misses();
    std::uint64_t llc = core.mem().llc().misses();
    std::string mem = "{\"l1_mpki\": " +
        jsonNumber(mpki(l1 - p.prevL1Miss)) + ", \"l2_mpki\": " +
        jsonNumber(mpki(l2 - p.prevL2Miss)) + ", \"llc_mpki\": " +
        jsonNumber(mpki(llc - p.prevLlcMiss)) +
        ", \"mispredicts\": " +
        std::to_string(s.branchMispredicts - p.prevMispred) + "}";
    trace_->counter(p.memTrack, now, kTracePidUarch, p.coreId, mem);

    p.prevCycle = now;
    p.prevFetched = s.fetchedUops;
    p.prevIssued = s.issuedUops;
    p.prevRetired = s.committedUops;
    p.prevInsts = s.committedInsts;
    p.prevL1Miss = l1;
    p.prevL2Miss = l2;
    p.prevLlcMiss = llc;
    p.prevMispred = s.branchMispredicts;
    ++p.samples;
    if (inBurst(p, now))
        ++p.burstSamples;
}

PipelinePressureProfiler::TaxIds &
PipelinePressureProfiler::taxIds(const std::string &stream)
{
    auto it = taxIds_.find(stream);
    if (it != taxIds_.end())
        return it->second;
    TaxIds ids;
    ids.flush = metrics_->internCounter(stream + ".flush");
    ids.refill = metrics_->internCounter(stream + ".refill");
    ids.ucode = metrics_->internCounter(stream + ".ucode");
    ids.handler = metrics_->internCounter(stream + ".handler");
    ids.shadow = metrics_->internCounter(stream + ".shadow");
    ids.spans = metrics_->internCounter(stream + ".spans");
    return taxIds_.emplace(stream, ids).first->second;
}

void
PipelinePressureProfiler::rollup(CoreProbe &p, const OpenSpan &span)
{
    std::string base = "core" + std::to_string(p.coreId) + ".tax.";
    const TaxCounts &t = span.tax;
    for (const std::string &stream :
         {base + "src." + intrSourceName(span.source),
          base + "vec" + std::to_string(span.vector)}) {
        TaxIds &ids = taxIds(stream);
        metrics_->counterAt(ids.flush).inc(t.flush);
        metrics_->counterAt(ids.refill).inc(t.refill);
        metrics_->counterAt(ids.ucode).inc(t.ucode);
        metrics_->counterAt(ids.handler).inc(t.handler);
        metrics_->counterAt(ids.shadow).inc(t.shadow);
        metrics_->counterAt(ids.spans).inc();
    }
}

std::uint64_t
PipelinePressureProfiler::samplesEmitted() const
{
    std::uint64_t n = 0;
    for (const auto &p : probes_)
        n += p->samples;
    return n;
}

std::uint64_t
PipelinePressureProfiler::burstSamples() const
{
    std::uint64_t n = 0;
    for (const auto &p : probes_)
        n += p->burstSamples;
    return n;
}

void
PipelinePressureProfiler::publish(MetricsRegistry &registry) const
{
    registry.counter("obs.sampler.samples").inc(samplesEmitted());
    registry.counter("obs.sampler.burst_samples")
        .inc(burstSamples());
}

} // namespace xui
