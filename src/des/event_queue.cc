#include "des/event_queue.hh"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>

namespace xui
{

EventQueue::EventQueue() : now_(0), nextSeq_(0), live_(0)
{
    for (unsigned lvl = 0; lvl < kLevels; ++lvl) {
        for (unsigned b = 0; b < kBuckets; ++b)
            heads_[lvl][b] = kNil;
        std::memset(bits_[lvl], 0, sizeof(bits_[lvl]));
    }
}

EventQueue::~EventQueue() = default;

std::uint32_t
EventQueue::allocEvent()
{
    if (freeHead_ != kNil) {
        std::uint32_t idx = freeHead_;
        freeHead_ = pool_[idx].next;
        return idx;
    }
    pool_.emplace_back();
    return static_cast<std::uint32_t>(pool_.size() - 1);
}

void
EventQueue::freeEvent(std::uint32_t idx)
{
    Event &e = pool_[idx];
    e.cb.reset();
    if (++e.gen == 0)
        e.gen = 1;
    e.level = kUnlinked;
    e.next = freeHead_;
    freeHead_ = idx;
}

void
EventQueue::place(std::uint32_t idx)
{
    Event &e = pool_[idx];
    // Pick the level by *block* distance, not raw delta: when now_
    // sits mid-block, an event a hair under a wheel's span is a
    // full revolution ahead of the current bucket, and indexing by
    // (when >> shift) & mask would alias it into the bucket being
    // cascaded — which re-places it into itself forever. Block
    // distance < kBuckets makes every index unique within its
    // wheel.
    unsigned lvl;
    unsigned b;
    if (e.when - now_ < kBuckets) {
        lvl = 0;
        b = static_cast<unsigned>(e.when & kBucketMask);
    } else if ((e.when >> 10) - (now_ >> 10) < kBuckets) {
        lvl = 1;
        b = static_cast<unsigned>((e.when >> 10) & kBucketMask);
    } else if ((e.when >> 20) - (now_ >> 20) < kBuckets) {
        lvl = 2;
        b = static_cast<unsigned>((e.when >> 20) & kBucketMask);
    } else {
        e.level = kOverflow;
        e.prev = kNil;
        e.next = overflowHead_;
        if (overflowHead_ != kNil)
            pool_[overflowHead_].prev = idx;
        overflowHead_ = idx;
        if (overflowMinValid_ &&
            (overflowMin_ == kNoEvent || e.when < overflowMin_))
            overflowMin_ = e.when;
        return;
    }
    e.level = static_cast<std::uint8_t>(lvl);
    e.bucket = static_cast<std::uint16_t>(b);
    e.prev = kNil;
    e.next = heads_[lvl][b];
    if (heads_[lvl][b] != kNil)
        pool_[heads_[lvl][b]].prev = idx;
    heads_[lvl][b] = idx;
    bits_[lvl][b >> 6] |= (std::uint64_t(1) << (b & 63));
}

void
EventQueue::unlink(std::uint32_t idx)
{
    Event &e = pool_[idx];
    assert(e.level != kUnlinked);
    if (e.level == kOverflow) {
        if (e.prev == kNil)
            overflowHead_ = e.next;
        else
            pool_[e.prev].next = e.next;
        if (e.next != kNil)
            pool_[e.next].prev = e.prev;
        if (e.when == overflowMin_)
            overflowMinValid_ = false;
    } else {
        unsigned lvl = e.level;
        unsigned b = e.bucket;
        if (e.prev == kNil)
            heads_[lvl][b] = e.next;
        else
            pool_[e.prev].next = e.next;
        if (e.next != kNil)
            pool_[e.next].prev = e.prev;
        if (heads_[lvl][b] == kNil)
            bits_[lvl][b >> 6] &=
                ~(std::uint64_t(1) << (b & 63));
    }
    e.level = kUnlinked;
    e.next = kNil;
    e.prev = kNil;
}

EventId
EventQueue::scheduleImpl(Cycles when, SmallCallback cb)
{
    assert(when >= now_ && "cannot schedule in the past");
    std::uint32_t idx = allocEvent();
    Event &e = pool_[idx];
    e.when = when;
    e.seq = nextSeq_++;
    e.cb = std::move(cb);
    place(idx);
    ++live_;
    // Scheduling into the cycle currently being drained: append to
    // the active drain list (the new seq is the largest, so the
    // list stays sorted and same-cycle FIFO holds).
    if (scratchWhen_ == now_ && when == now_)
        scratch_.push_back(ScratchRef{e.seq, idx, e.gen});
    return makeId(idx, e.gen);
}

bool
EventQueue::cancel(EventId id)
{
    if (id == kInvalidEventId)
        return false;
    std::uint32_t idx = static_cast<std::uint32_t>(id);
    std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
    if (idx >= pool_.size())
        return false;
    Event &e = pool_[idx];
    if (e.gen != gen || e.level == kUnlinked)
        return false;
    unlink(idx);
    freeEvent(idx);
    assert(live_ > 0);
    --live_;
    return true;
}

Cycles
EventQueue::chainMin(std::uint32_t head) const
{
    Cycles m = kNoEvent;
    for (std::uint32_t idx = head; idx != kNil;
         idx = pool_[idx].next)
        m = std::min(m, pool_[idx].when);
    return m;
}

namespace
{

/**
 * First set bit at or after `start` in a kBuckets-bit map, scanning
 * in wrap order; -1 when empty.
 */
int
findBit(const std::uint64_t *words, unsigned start, unsigned nwords)
{
    unsigned w0 = start >> 6;
    unsigned off = start & 63;
    std::uint64_t m = words[w0] >> off;
    if (m)
        return static_cast<int>(start + std::countr_zero(m));
    for (unsigned i = 1; i < nwords; ++i) {
        unsigned w = (w0 + i) & (nwords - 1);
        if (words[w])
            return static_cast<int>((w << 6) +
                                    std::countr_zero(words[w]));
    }
    std::uint64_t low = words[w0] & ((std::uint64_t(1) << off) - 1);
    if (off && low)
        return static_cast<int>((w0 << 6) + std::countr_zero(low));
    return -1;
}

} // namespace

Cycles
EventQueue::nextEventTime()
{
    Cycles best = kNoEvent;

    unsigned s0 = static_cast<unsigned>(now_ & kBucketMask);
    int b0 = findBit(bits_[0], s0, kWords);
    if (b0 >= 0)
        best = now_ +
               ((static_cast<unsigned>(b0) - s0) & kBucketMask);

    unsigned s1 = static_cast<unsigned>((now_ >> 10) & kBucketMask);
    int b1 = findBit(bits_[1], s1, kWords);
    if (b1 >= 0) {
        Cycles block = (now_ >> 10) +
                       ((static_cast<unsigned>(b1) - s1) &
                        kBucketMask);
        if (best == kNoEvent || (block << 10) < best) {
            Cycles m = chainMin(heads_[1][b1]);
            best = std::min(best, m);
        }
    }

    unsigned s2 = static_cast<unsigned>((now_ >> 20) & kBucketMask);
    int b2 = findBit(bits_[2], s2, kWords);
    if (b2 >= 0) {
        Cycles block = (now_ >> 20) +
                       ((static_cast<unsigned>(b2) - s2) &
                        kBucketMask);
        if (best == kNoEvent || (block << 20) < best) {
            Cycles m = chainMin(heads_[2][b2]);
            best = std::min(best, m);
        }
    }

    if (overflowHead_ != kNil) {
        if (!overflowMinValid_) {
            overflowMin_ = chainMin(overflowHead_);
            overflowMinValid_ = true;
        }
        best = std::min(best, overflowMin_);
    }
    return best;
}

void
EventQueue::cascadeAt(Cycles t)
{
    if (overflowHead_ != kNil) {
        if (!overflowMinValid_) {
            overflowMin_ = chainMin(overflowHead_);
            overflowMinValid_ = true;
        }
        if (overflowMin_ != kNoEvent &&
            (overflowMin_ >> 20) - (t >> 20) < kBuckets) {
            std::uint32_t idx = overflowHead_;
            while (idx != kNil) {
                std::uint32_t next = pool_[idx].next;
                if ((pool_[idx].when >> 20) - (t >> 20) < kBuckets) {
                    unlink(idx);
                    place(idx);
                }
                idx = next;
            }
            overflowMin_ = chainMin(overflowHead_);
            overflowMinValid_ = true;
        }
    }
    // Entries of the L2 bucket containing t are now within L1
    // range (their when is in [t, block_end)), and likewise L1's
    // current bucket drops into L0.
    unsigned c2 = static_cast<unsigned>((t >> 20) & kBucketMask);
    while (heads_[2][c2] != kNil) {
        std::uint32_t idx = heads_[2][c2];
        unlink(idx);
        place(idx);
    }
    unsigned c1 = static_cast<unsigned>((t >> 10) & kBucketMask);
    while (heads_[1][c1] != kNil) {
        std::uint32_t idx = heads_[1][c1];
        unlink(idx);
        place(idx);
    }
}

void
EventQueue::buildScratch()
{
    scratch_.clear();
    scratchPos_ = 0;
    unsigned b = static_cast<unsigned>(now_ & kBucketMask);
    for (std::uint32_t idx = heads_[0][b]; idx != kNil;
         idx = pool_[idx].next) {
        assert(pool_[idx].when == now_);
        scratch_.push_back(
            ScratchRef{pool_[idx].seq, idx, pool_[idx].gen});
    }
    std::sort(scratch_.begin(), scratch_.end(),
              [](const ScratchRef &a, const ScratchRef &b2) {
                  return a.seq < b2.seq;
              });
    scratchWhen_ = now_;
}

std::uint32_t
EventQueue::popNext()
{
    for (;;) {
        if (scratchWhen_ == now_) {
            while (scratchPos_ < scratch_.size()) {
                const ScratchRef r = scratch_[scratchPos_++];
                Event &e = pool_[r.idx];
                if (e.gen == r.gen && e.level != kUnlinked &&
                    e.when == now_) {
                    unlink(r.idx);
                    return r.idx;
                }
            }
            // Same-cycle events scheduled outside an active drain
            // (e.g. right after runUntil advanced the clock).
            if (heads_[0][now_ & kBucketMask] != kNil) {
                buildScratch();
                continue;
            }
            scratchWhen_ = kNoEvent;
        }
        Cycles w = nextEventTime();
        if (w == kNoEvent)
            return kNil;
        assert(w >= now_);
        now_ = w;
        cascadeAt(w);
        buildScratch();
    }
}

bool
EventQueue::runOne()
{
    std::uint32_t idx = popNext();
    if (idx == kNil)
        return false;
    Event &e = pool_[idx];
    EventId id = makeId(idx, e.gen);
    Cycles when = e.when;
    SmallCallback cb = std::move(e.cb);
    freeEvent(idx);
    --live_;
    ++fired_;
    if (fireHook_)
        fireHook_(id, when);
    cb();
    return true;
}

Cycles
EventQueue::peekNextTime()
{
    if (scratchWhen_ == now_) {
        while (scratchPos_ < scratch_.size()) {
            const ScratchRef &r = scratch_[scratchPos_];
            const Event &e = pool_[r.idx];
            if (e.gen == r.gen && e.level != kUnlinked &&
                e.when == now_)
                break;
            ++scratchPos_;
        }
        if (scratchPos_ < scratch_.size() ||
            heads_[0][now_ & kBucketMask] != kNil)
            return now_;
        scratchWhen_ = kNoEvent;
    }
    return nextEventTime();
}

std::vector<EventQueue::PendingEvent>
EventQueue::pendingSnapshot(std::size_t max) const
{
    auto less = [](const PendingEvent &a, const PendingEvent &b) {
        return a.when != b.when ? a.when < b.when : a.seq < b.seq;
    };
    std::vector<PendingEvent> out;
    if (max == 0) {
        out.reserve(live_);
        for (const Event &e : pool_) {
            if (e.level != kUnlinked)
                out.push_back(PendingEvent{e.when, e.seq});
        }
        std::sort(out.begin(), out.end(), less);
        return out;
    }
    // Bounded top-k: a max-heap of the k smallest (when, seq) seen
    // so far — O(pool log k) time and O(k) memory, so a watchdog
    // trip against a runaway queue with millions pending reports in
    // microseconds instead of copying and sorting the whole pool
    // (it can trip repeatedly: rollback-retry re-runs the cell).
    out.reserve(max);
    for (const Event &e : pool_) {
        if (e.level == kUnlinked)
            continue;
        PendingEvent p{e.when, e.seq};
        if (out.size() < max) {
            out.push_back(p);
            std::push_heap(out.begin(), out.end(), less);
        } else if (less(p, out.front())) {
            std::pop_heap(out.begin(), out.end(), less);
            out.back() = p;
            std::push_heap(out.begin(), out.end(), less);
        }
    }
    std::sort_heap(out.begin(), out.end(), less);
    return out;
}

std::uint64_t
EventQueue::runUntil(Cycles limit)
{
    std::uint64_t executed = 0;
    for (;;) {
        Cycles w = peekNextTime();
        if (w == kNoEvent || w > limit)
            break;
        if (!runOne())
            break;
        ++executed;
    }
    if (now_ < limit)
        now_ = limit;
    return executed;
}

std::uint64_t
EventQueue::runAll()
{
    std::uint64_t executed = 0;
    while (runOne())
        ++executed;
    return executed;
}

} // namespace xui
