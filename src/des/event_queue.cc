#include "des/event_queue.hh"

#include <cassert>
#include <utility>

namespace xui
{

EventQueue::EventQueue()
    : now_(0), nextSeq_(0), nextId_(1), live_(0)
{}

EventId
EventQueue::scheduleAt(Cycles when, Callback cb)
{
    assert(when >= now_ && "cannot schedule in the past");
    EventId id = nextId_++;
    heap_.push(Entry{when, nextSeq_++, id, std::move(cb)});
    ++live_;
    return id;
}

EventId
EventQueue::scheduleAfter(Cycles delta, Callback cb)
{
    return scheduleAt(now_ + delta, std::move(cb));
}

bool
EventQueue::cancel(EventId id)
{
    if (id == kInvalidEventId)
        return false;
    // Only mark if it could still be pending; duplicates are benign
    // but we keep the live count exact by checking insertion result.
    auto [it, inserted] = cancelled_.insert(id);
    (void)it;
    if (inserted && live_ > 0) {
        --live_;
        return true;
    }
    if (inserted)
        cancelled_.erase(id);
    return false;
}

bool
EventQueue::popLive(Entry &out)
{
    while (!heap_.empty()) {
        // priority_queue::top is const; the callback must be moved
        // out, so copy the POD bits and const_cast the function.
        const Entry &top = heap_.top();
        if (cancelled_.erase(top.id)) {
            heap_.pop();
            continue;
        }
        out.when = top.when;
        out.seq = top.seq;
        out.id = top.id;
        out.cb = std::move(const_cast<Entry &>(top).cb);
        heap_.pop();
        --live_;
        return true;
    }
    return false;
}

bool
EventQueue::runOne()
{
    Entry e;
    if (!popLive(e))
        return false;
    assert(e.when >= now_);
    now_ = e.when;
    ++fired_;
    if (fireHook_)
        fireHook_(e.id, e.when);
    e.cb();
    return true;
}

std::uint64_t
EventQueue::runUntil(Cycles limit)
{
    std::uint64_t executed = 0;
    while (!heap_.empty()) {
        const Entry &top = heap_.top();
        if (cancelled_.count(top.id)) {
            cancelled_.erase(top.id);
            heap_.pop();
            continue;
        }
        if (top.when > limit)
            break;
        if (!runOne())
            break;
        ++executed;
    }
    if (now_ < limit && live_ == 0)
        now_ = limit;
    else if (now_ < limit && !heap_.empty())
        now_ = limit;
    return executed;
}

std::uint64_t
EventQueue::runAll()
{
    std::uint64_t executed = 0;
    while (runOne())
        ++executed;
    return executed;
}

} // namespace xui
