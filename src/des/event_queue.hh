/**
 * @file
 * Deterministic discrete-event queue.
 *
 * Events scheduled for the same cycle fire in scheduling order (a
 * monotonically increasing sequence number breaks ties), which makes
 * whole-system simulations reproducible regardless of heap internals.
 * Cancellation is lazy: cancelled entries are skipped at pop time.
 */

#ifndef XUI_DES_EVENT_QUEUE_HH
#define XUI_DES_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "des/time.hh"

namespace xui
{

/** Opaque handle identifying a scheduled event, used to cancel it. */
using EventId = std::uint64_t;

/** Sentinel returned when no event exists. */
constexpr EventId kInvalidEventId = 0;

/** Min-heap of timed callbacks with stable same-cycle ordering. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue();

    /** Current simulated time; advances as events are processed. */
    Cycles now() const { return now_; }

    /**
     * Schedule a callback at an absolute time.
     * @pre when >= now()
     * @return handle usable with cancel().
     */
    EventId scheduleAt(Cycles when, Callback cb);

    /** Schedule a callback delta cycles from now. */
    EventId scheduleAfter(Cycles delta, Callback cb);

    /**
     * Cancel a previously scheduled event.
     * @return true if the event was still pending.
     */
    bool cancel(EventId id);

    /** Number of live (non-cancelled) pending events. */
    std::size_t pending() const { return live_; }

    /** True when no live events remain. */
    bool empty() const { return live_ == 0; }

    /**
     * Observer invoked just before each event fires, with the
     * event's id and fire time. Used by the verification subsystem
     * to fingerprint the firing order; nullptr (default) disables
     * it. The hook must not schedule or cancel events.
     */
    using FireHook = std::function<void(EventId, Cycles)>;
    void setFireHook(FireHook hook) { fireHook_ = std::move(hook); }

    /** Total events fired since construction. */
    std::uint64_t firedCount() const { return fired_; }

    /**
     * Pop and run the next event.
     * @return false when the queue is empty.
     */
    bool runOne();

    /**
     * Run events until the queue drains or the time limit is passed.
     * Events scheduled exactly at the limit still run; the simulated
     * clock never exceeds limit on return unless events at `limit`
     * scheduled more work in the past (which is forbidden).
     * @return number of events executed.
     */
    std::uint64_t runUntil(Cycles limit);

    /** Run every remaining event (careful with self-rescheduling). */
    std::uint64_t runAll();

  private:
    struct Entry
    {
        Cycles when;
        std::uint64_t seq;
        EventId id;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** Pop skipping cancelled entries; false when empty. */
    bool popLive(Entry &out);

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::unordered_set<EventId> cancelled_;
    FireHook fireHook_;
    Cycles now_;
    std::uint64_t nextSeq_;
    EventId nextId_;
    std::uint64_t fired_ = 0;
    std::size_t live_;
};

} // namespace xui

#endif // XUI_DES_EVENT_QUEUE_HH
