/**
 * @file
 * Deterministic discrete-event queue.
 *
 * Internally a three-level hierarchical calendar (timing wheel):
 * level 0 resolves single cycles over a 1024-cycle horizon, level 1
 * 1024-cycle blocks over ~1M cycles, level 2 ~1M-cycle blocks over
 * ~1G cycles, plus an unsorted overflow list beyond that. Events
 * live in a free-listed pool (reused in place, no per-event heap
 * allocation) and carry their callback in small-buffer storage;
 * bucket membership is an intrusive doubly-linked list so cancel is
 * O(1) and reclaims the slot immediately. Handles are
 * generation-checked: a reused slot invalidates stale ids, so
 * cancelling a fired or already-cancelled event returns false
 * instead of corrupting the pending count (which the old lazy
 * cancellation scheme got wrong).
 *
 * Events scheduled for the same cycle fire in scheduling order: a
 * monotonically increasing sequence number is assigned at schedule
 * time and the current cycle's bucket is drained in seq order,
 * which makes whole-system simulations reproducible regardless of
 * wheel internals.
 */

#ifndef XUI_DES_EVENT_QUEUE_HH
#define XUI_DES_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "des/time.hh"

namespace xui
{

/** Opaque handle identifying a scheduled event, used to cancel it. */
using EventId = std::uint64_t;

/** Sentinel returned when no event exists. */
constexpr EventId kInvalidEventId = 0;

/**
 * Move-only callable with small-buffer storage: callables up to
 * kInlineBytes live inline in the event pool slot (reused across
 * events, never touching the allocator); larger ones fall back to
 * the heap.
 */
class SmallCallback
{
  public:
    static constexpr std::size_t kInlineBytes = 48;

    SmallCallback() = default;

    template <typename F,
              typename = std::enable_if_t<!std::is_same_v<
                  std::decay_t<F>, SmallCallback>>>
    SmallCallback(F &&f)
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= kInlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            ::new (static_cast<void *>(buf_))
                Fn(std::forward<F>(f));
            ops_ = &inlineOps<Fn>;
        } else {
            *reinterpret_cast<Fn **>(buf_) =
                new Fn(std::forward<F>(f));
            ops_ = &heapOps<Fn>;
        }
    }

    SmallCallback(SmallCallback &&o) noexcept : ops_(o.ops_)
    {
        if (ops_)
            ops_->relocate(o.buf_, buf_);
        o.ops_ = nullptr;
    }

    SmallCallback &
    operator=(SmallCallback &&o) noexcept
    {
        if (this != &o) {
            reset();
            ops_ = o.ops_;
            if (ops_)
                ops_->relocate(o.buf_, buf_);
            o.ops_ = nullptr;
        }
        return *this;
    }

    ~SmallCallback() { reset(); }

    void
    reset()
    {
        if (ops_) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    explicit operator bool() const { return ops_ != nullptr; }

    void
    operator()()
    {
        ops_->invoke(buf_);
    }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        void (*destroy)(void *);
        /** Move the callable from src storage to dst storage. */
        void (*relocate)(void *src, void *dst);
    };

    template <typename Fn>
    static constexpr Ops inlineOps = {
        [](void *p) { (*std::launder(reinterpret_cast<Fn *>(p)))(); },
        [](void *p) {
            std::launder(reinterpret_cast<Fn *>(p))->~Fn();
        },
        [](void *src, void *dst) {
            Fn *s = std::launder(reinterpret_cast<Fn *>(src));
            ::new (dst) Fn(std::move(*s));
            s->~Fn();
        },
    };

    template <typename Fn>
    static constexpr Ops heapOps = {
        [](void *p) { (**reinterpret_cast<Fn **>(p))(); },
        [](void *p) { delete *reinterpret_cast<Fn **>(p); },
        [](void *src, void *dst) {
            *reinterpret_cast<Fn **>(dst) =
                *reinterpret_cast<Fn **>(src);
        },
    };

    alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
    const Ops *ops_ = nullptr;
};

/** Hierarchical calendar queue with stable same-cycle ordering. */
class EventQueue
{
  public:
    /** Compatibility alias; any callable converts via the template
     * overloads below without a std::function round-trip. */
    using Callback = std::function<void()>;

    EventQueue();
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time; advances as events are processed. */
    Cycles now() const { return now_; }

    /**
     * Schedule a callback at an absolute time.
     * @pre when >= now()
     * @return handle usable with cancel().
     */
    template <typename F>
    EventId
    scheduleAt(Cycles when, F &&cb)
    {
        return scheduleImpl(when, SmallCallback(std::forward<F>(cb)));
    }

    /** Schedule a callback delta cycles from now. */
    template <typename F>
    EventId
    scheduleAfter(Cycles delta, F &&cb)
    {
        return scheduleImpl(now_ + delta,
                            SmallCallback(std::forward<F>(cb)));
    }

    /**
     * Cancel a previously scheduled event: O(1) unlink, slot
     * reclaimed immediately.
     * @return true if the event was still pending (stale, fired,
     *         cancelled, and invalid handles all return false).
     */
    bool cancel(EventId id);

    /** Number of live pending events. */
    std::size_t pending() const { return live_; }

    /** True when no live events remain. */
    bool empty() const { return live_ == 0; }

    /**
     * Observer invoked just before each event fires, with the
     * event's id and fire time. Used by the verification subsystem
     * to fingerprint the firing order; nullptr (default) disables
     * it. The hook must not schedule or cancel events.
     */
    using FireHook = std::function<void(EventId, Cycles)>;
    void setFireHook(FireHook hook) { fireHook_ = std::move(hook); }

    /** Total events fired since construction. */
    std::uint64_t firedCount() const { return fired_; }

    /** Sentinel returned by peekNextTime() when nothing is pending. */
    static constexpr Cycles kNoPending = ~Cycles(0);

    /**
     * Exact fire time of the next pending event without firing it
     * (kNoPending when the queue is empty). Non-const: maintains the
     * overflow-min cache and prunes cancelled entries from the
     * active same-cycle drain list, neither of which is observable
     * through the firing order.
     */
    Cycles peekNextTime();

    /** One pending event, as seen by diagnostics. */
    struct PendingEvent
    {
        Cycles when;
        std::uint64_t seq;
    };

    /**
     * Snapshot of pending events sorted by (when, seq), truncated to
     * `max` entries (0 = all). O(pool) — diagnostics only (watchdog
     * hang reports), never a hot path.
     */
    std::vector<PendingEvent> pendingSnapshot(std::size_t max = 0)
        const;

    /**
     * Pop and run the next event.
     * @return false when the queue is empty.
     */
    bool runOne();

    /**
     * Run events until the queue drains or the time limit is passed.
     * Events scheduled exactly at the limit still run; the simulated
     * clock never exceeds limit on return unless events at `limit`
     * scheduled more work in the past (which is forbidden).
     * @return number of events executed.
     */
    std::uint64_t runUntil(Cycles limit);

    /** Run every remaining event (careful with self-rescheduling). */
    std::uint64_t runAll();

    /**
     * Pool slots currently allocated (free or live). Bounded by the
     * peak number of simultaneously pending events: cancel and fire
     * both reclaim, so schedule/cancel churn cannot grow it
     * (regression guard for the old lazy-cancel leak).
     */
    std::size_t poolSize() const { return pool_.size(); }

  private:
    static constexpr std::uint32_t kNil = 0xffffffffu;
    static constexpr Cycles kNoEvent = ~Cycles(0);

    static constexpr unsigned kBucketBits = 10;
    static constexpr unsigned kBuckets = 1u << kBucketBits;
    static constexpr unsigned kBucketMask = kBuckets - 1;
    static constexpr unsigned kWords = kBuckets / 64;
    /** Levels 0..2 are wheel levels; 3 is the overflow list. */
    static constexpr unsigned kLevels = 3;
    static constexpr std::uint8_t kOverflow = kLevels;
    static constexpr std::uint8_t kUnlinked = 0xff;

    struct Event
    {
        Cycles when = 0;
        std::uint64_t seq = 0;
        SmallCallback cb;
        std::uint32_t gen = 1;
        std::uint32_t next = kNil;
        std::uint32_t prev = kNil;
        /** Wheel level (0..2), kOverflow, or kUnlinked (free /
         * being fired). */
        std::uint8_t level = kUnlinked;
        std::uint16_t bucket = 0;
    };

    /** Sorted drain list for the current cycle's bucket. */
    struct ScratchRef
    {
        std::uint64_t seq;
        std::uint32_t idx;
        std::uint32_t gen;
    };

    static EventId
    makeId(std::uint32_t idx, std::uint32_t gen)
    {
        return (static_cast<EventId>(gen) << 32) | idx;
    }

    EventId scheduleImpl(Cycles when, SmallCallback cb);
    std::uint32_t allocEvent();
    void freeEvent(std::uint32_t idx);
    /** Link into the wheel level/bucket for `when` given now_. */
    void place(std::uint32_t idx);
    void unlink(std::uint32_t idx);
    /** Exact earliest pending fire time (kNoEvent when empty). */
    Cycles nextEventTime();
    /** Min `when` over a bucket chain (kNoEvent when empty). */
    Cycles chainMin(std::uint32_t head) const;
    /** Re-place entries of current L1/L2/overflow buckets after
     * now_ advanced. */
    void cascadeAt(Cycles t);
    /** Build the sorted same-cycle drain list for now_. */
    void buildScratch();
    /** Resolve the next firing event; kNil when empty. Advances
     * now_ to the fire time. */
    std::uint32_t popNext();

    std::deque<Event> pool_;
    std::uint32_t freeHead_ = kNil;

    std::uint32_t heads_[kLevels][kBuckets];
    std::uint64_t bits_[kLevels][kWords];
    std::uint32_t overflowHead_ = kNil;
    Cycles overflowMin_ = kNoEvent;
    bool overflowMinValid_ = true;

    std::vector<ScratchRef> scratch_;
    std::size_t scratchPos_ = 0;
    Cycles scratchWhen_ = kNoEvent;

    FireHook fireHook_;
    Cycles now_;
    std::uint64_t nextSeq_;
    std::uint64_t fired_ = 0;
    std::size_t live_;
};

} // namespace xui

#endif // XUI_DES_EVENT_QUEUE_HH
