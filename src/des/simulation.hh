/**
 * @file
 * Simulation context: event queue + master RNG + periodic-event
 * helper. Every DES-tier model (kernel, runtime, NIC, accelerator)
 * holds a reference to one Simulation.
 */

#ifndef XUI_DES_SIMULATION_HH
#define XUI_DES_SIMULATION_HH

#include <functional>

#include "des/event_queue.hh"
#include "des/time.hh"
#include "stats/rng.hh"

namespace xui
{

/** Owns the event queue and the master random stream for one run. */
class Simulation
{
  public:
    explicit Simulation(std::uint64_t seed = 1);

    /** The event queue driving this simulation. */
    EventQueue &queue() { return queue_; }

    /** Current simulated time. */
    Cycles now() const { return queue_.now(); }

    /** Derive an independent RNG stream for a component. */
    Rng makeRng() { return master_.split(); }

    /** Run until the given absolute time. */
    void runUntil(Cycles limit) { queue_.runUntil(limit); }

    /**
     * Absolute time of the earliest pending event, or
     * EventQueue::kNoPending when the queue is idle. The coarse
     * wakeup primitive for hybrid co-simulation: a fast-forwarding
     * cycle tier can bulk-advance to just short of this time instead
     * of interleaving with an idle DES tier every cycle.
     */
    Cycles nextEventAt() { return queue_.peekNextTime(); }

  private:
    EventQueue queue_;
    Rng master_;
};

/**
 * Self-rescheduling periodic event. The callback runs every `period`
 * cycles from `start` until stop() is called or the callback returns
 * false.
 */
class PeriodicEvent
{
  public:
    /** Callback; return false to stop the series. */
    using Callback = std::function<bool()>;

    PeriodicEvent(EventQueue &queue, Cycles period, Callback cb);
    ~PeriodicEvent();

    PeriodicEvent(const PeriodicEvent &) = delete;
    PeriodicEvent &operator=(const PeriodicEvent &) = delete;

    /** Begin firing at absolute time `start`. */
    void start(Cycles start);

    /** Begin firing one period from now. */
    void startAfterPeriod();

    /** Cancel any pending firing. */
    void stop();

    /** True while a firing is scheduled. */
    bool running() const { return pending_ != kInvalidEventId; }

    /** Change the period; applies from the next rescheduling. */
    void setPeriod(Cycles period) { period_ = period; }

    Cycles period() const { return period_; }

  private:
    void fire();

    EventQueue &queue_;
    Cycles period_;
    Callback cb_;
    EventId pending_;
};

} // namespace xui

#endif // XUI_DES_SIMULATION_HH
