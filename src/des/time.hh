/**
 * @file
 * Simulated-time definitions shared by both simulation tiers.
 *
 * All timing in the repository is expressed in CPU cycles at the
 * paper's 2.0 GHz clock (Table 3), so 2000 cycles == 1 microsecond.
 * Using one unit everywhere lets the DES tier consume cost constants
 * calibrated on the cycle tier without conversion ambiguity.
 */

#ifndef XUI_DES_TIME_HH
#define XUI_DES_TIME_HH

#include <cstdint>

namespace xui
{

/** Simulated time / durations, in CPU cycles. */
using Cycles = std::uint64_t;

/** Clock frequency used throughout (Table 3: 2.0 GHz). */
constexpr double kClockGhz = 2.0;

/** Cycles per microsecond at the global clock. */
constexpr Cycles kCyclesPerUs = 2000;

/** Cycles per millisecond. */
constexpr Cycles kCyclesPerMs = kCyclesPerUs * 1000;

/** Cycles per second. */
constexpr Cycles kCyclesPerSec = kCyclesPerMs * 1000;

/** Convert microseconds to cycles. */
constexpr Cycles
usToCycles(double us)
{
    return static_cast<Cycles>(us * static_cast<double>(kCyclesPerUs));
}

/** Convert cycles to microseconds. */
constexpr double
cyclesToUs(Cycles cycles)
{
    return static_cast<double>(cycles) /
        static_cast<double>(kCyclesPerUs);
}

/** Convert cycles to nanoseconds. */
constexpr double
cyclesToNs(Cycles cycles)
{
    return static_cast<double>(cycles) * 1000.0 /
        static_cast<double>(kCyclesPerUs);
}

} // namespace xui

#endif // XUI_DES_TIME_HH
