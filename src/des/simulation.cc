#include "des/simulation.hh"

#include <cassert>

namespace xui
{

Simulation::Simulation(std::uint64_t seed)
    : master_(seed)
{}

PeriodicEvent::PeriodicEvent(EventQueue &queue, Cycles period,
                             Callback cb)
    : queue_(queue), period_(period), cb_(std::move(cb)),
      pending_(kInvalidEventId)
{
    assert(period_ > 0);
}

PeriodicEvent::~PeriodicEvent()
{
    stop();
}

void
PeriodicEvent::start(Cycles start_time)
{
    stop();
    pending_ = queue_.scheduleAt(start_time, [this] { fire(); });
}

void
PeriodicEvent::startAfterPeriod()
{
    start(queue_.now() + period_);
}

void
PeriodicEvent::stop()
{
    if (pending_ != kInvalidEventId) {
        queue_.cancel(pending_);
        pending_ = kInvalidEventId;
    }
}

void
PeriodicEvent::fire()
{
    pending_ = kInvalidEventId;
    if (!cb_())
        return;
    // Only reschedule if the callback did not restart/stop us.
    if (pending_ == kInvalidEventId)
        pending_ = queue_.scheduleAfter(period_, [this] { fire(); });
}

} // namespace xui
