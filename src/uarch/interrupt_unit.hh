/**
 * @file
 * Receiver-side interrupt state: the APIC inbox, the user interrupt
 * flag, and the tracked-interrupt state machine (paper §4.2 Fig. 3).
 *
 * This class holds pure control state; the OooCore drives it from the
 * pipeline loop. Keeping the FSM separate makes the re-injection
 * rules (squash while uncommitted -> re-inject with the new next_pc)
 * unit-testable in isolation.
 */

#ifndef XUI_UARCH_INTERRUPT_UNIT_HH
#define XUI_UARCH_INTERRUPT_UNIT_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "ckpt/codec.hh"
#include "des/time.hh"
#include "intr/policy.hh"

namespace xui
{

/** Where an accepted user interrupt came from. */
enum class IntrSource : std::uint8_t
{
    UserIpi,    ///< UIPI: notification + delivery microcode
    KbTimer,    ///< xUI KB timer: delivery microcode only
    Forwarded,  ///< xUI forwarded device interrupt: delivery only
};

/** One pending user interrupt awaiting delivery. */
struct PendingIntr
{
    IntrSource source;
    std::uint8_t vector;
    Cycles raisedAt;
    /**
     * Correlation id assigned at raise(), unique per unit and
     * monotonically increasing in raise order. Observability
     * (src/obs/) keys lifecycle spans on it; the unit itself never
     * reads it back.
     */
    std::uint64_t spanId = 0;
};

/** Tracked-interrupt front-end state machine (paper Fig. 3). */
enum class TrackerState : std::uint8_t
{
    /** No interrupt in progress. */
    Idle,
    /** Accepted; waiting for an instruction/safepoint boundary. */
    Pending,
    /** Microcode is being injected / is in flight, not committed. */
    Injected,
    /** First interrupt micro-op committed; no re-injection needed. */
    Committed,
};

/**
 * Per-core interrupt unit: pending queue, UIF, tracker FSM and the
 * bookkeeping needed for delivery-latency measurement.
 */
class InterruptUnit
{
  public:
    /** What the raise-time fault hook decided (fault injection). */
    enum class RaiseOutcome : std::uint8_t
    {
        Deliver,    ///< enqueue normally (the only path with no hook)
        Drop,       ///< swallow: nothing is enqueued, raise returns 0
        Duplicate,  ///< enqueue twice (both share one span id)
    };

    /**
     * Fault hook consulted on every raise(). Installed only by the
     * chaos harness; the default (empty) hook costs one bool check.
     */
    using RaiseFaultHook =
        std::function<RaiseOutcome(IntrSource, std::uint8_t)>;

    void setRaiseFaultHook(RaiseFaultHook hook)
    {
        raiseHook_ = std::move(hook);
    }

    /**
     * Raise (post) an interrupt toward this core.
     * @return the span (correlation) id assigned to it, or 0 when a
     *         fault hook dropped the raise (callers must not observe
     *         or count a span-0 raise).
     */
    std::uint64_t raise(IntrSource source, std::uint8_t vector,
                        Cycles now);

    /** True when an interrupt could be accepted this cycle. */
    bool canAccept() const;

    /**
     * Accept the next pending interrupt: the tracker moves to
     * Pending and delivery begins per the configured strategy.
     * With priorities off this is the oldest pending interrupt;
     * with priorities on, the highest-priority one (oldest within
     * a level — identical to FIFO when every level is 0).
     * @pre canAccept()
     */
    PendingIntr accept();

    /**
     * Configure a vector's delivery priority (mixed-criticality
     * layer). Level 0 is the default; the priority machinery is
     * engaged only once some vector is raised above 0, so an
     * all-default table keeps the unit bit-identical to the
     * pre-priority protocol.
     */
    void setVectorPriority(std::uint8_t vector, std::uint8_t prio);

    std::uint8_t vectorPriority(std::uint8_t vector) const
    {
        return prio_[vector];
    }

    /** True once any vector was configured above level 0. */
    bool priorityEnabled() const { return prioEnabled_; }

    /**
     * Should a pending vector preempt the running handler? True only
     * with priorities engaged, a committed (architectural) delivery
     * in progress, and a pending vector whose level strictly exceeds
     * the current handler's. Priority preemption deliberately
     * ignores UIF: a latency-critical level behaves NMI-like above
     * the best-effort masking the handler prologue applies.
     */
    bool shouldPreempt() const
    {
        if (!prioEnabled_ || state_ != TrackerState::Committed ||
            pending_.empty())
            return false;
        return highestPendingPriority() > prio_[current_.vector];
    }

    /**
     * Begin a priority preemption: the running handler's interrupt
     * is pushed onto the preemption stack and the highest-priority
     * pending one becomes current (tracker back to Pending, exactly
     * as a fresh accept).
     * @pre shouldPreempt()
     */
    PendingIntr beginPreempt();

    /**
     * The nested handler finished and the restore redirect
     * committed: the preempted interrupt becomes current again
     * (tracker back to Committed — its delivery was architectural
     * before the preemption).
     */
    void onNestedReturn();

    /** True while at least one preempted handler awaits resume. */
    bool inNestedDelivery() const { return !preemptStack_.empty(); }

    std::size_t preemptDepth() const { return preemptStack_.size(); }

    /** Highest priority among pending interrupts (0 when empty). */
    std::uint8_t highestPendingPriority() const;

    /** The interrupt currently being delivered. */
    const PendingIntr &current() const { return current_; }

    bool pendingAvailable() const { return !pending_.empty(); }
    std::size_t pendingCount() const { return pending_.size(); }

    TrackerState state() const { return state_; }
    bool busy() const { return state_ != TrackerState::Idle; }

    /** UIF: user interrupt delivery enabled? (stui/clui/uiret). */
    bool uif() const { return uif_; }
    void setUif(bool v) { uif_ = v; }

    /**
     * Front-end asks: should microcode be injected at this
     * instruction boundary?
     * @param at_safepoint the next instruction is safepoint-marked
     * @param safepoint_mode the core's safepoint mode flag
     */
    bool shouldInject(bool at_safepoint, bool safepoint_mode) const;

    /** The front-end began streaming the microcode. */
    void onInjected();

    /**
     * A squash killed micro-ops. If the interrupt path has not yet
     * committed its first micro-op, delivery must be re-injected at
     * the post-recovery PC.
     * @param killed_intr_uops at least one in-flight interrupt-path
     *        micro-op was squashed
     * @return true when the front-end must re-inject
     */
    bool onSquash(bool killed_intr_uops);

    /** First interrupt-path micro-op committed. */
    void onFirstIntrCommit();

    /** uiret committed: delivery is complete. */
    void onHandlerReturn();

    /**
     * Checkpoint everything except the raise fault hook, which is
     * harness-owned and reattached after load by whoever installed
     * it (chaos cells re-install their own).
     */
    void saveState(ckpt::Writer &w) const
    {
        auto putIntr = [&w](const PendingIntr &p) {
            w.u8(static_cast<std::uint8_t>(p.source));
            w.u8(p.vector);
            w.u64(p.raisedAt);
            w.u64(p.spanId);
        };
        w.u64(pending_.size());
        for (const PendingIntr &p : pending_)
            putIntr(p);
        putIntr(current_);
        w.u8(static_cast<std::uint8_t>(state_));
        w.b(uif_);
        w.u64(nextSpanId_);
        w.bytes(prio_, sizeof(prio_));
        w.b(prioEnabled_);
        w.u64(preemptStack_.size());
        for (const PendingIntr &p : preemptStack_)
            putIntr(p);
    }

    bool loadState(ckpt::Reader &r)
    {
        auto getIntr = [&r](PendingIntr &p) {
            std::uint8_t src = 0;
            if (!r.u8(src) || src > 2)
                return r.fail();
            p.source = static_cast<IntrSource>(src);
            return r.u8(p.vector) && r.u64(p.raisedAt) &&
                   r.u64(p.spanId);
        };
        std::uint64_t n = 0;
        if (!r.u64(n) || n > (1u << 20))
            return r.fail();
        pending_.clear();
        for (std::uint64_t i = 0; i < n; ++i) {
            PendingIntr p{};
            if (!getIntr(p))
                return false;
            pending_.push_back(p);
        }
        if (!getIntr(current_))
            return false;
        std::uint8_t st = 0;
        if (!r.u8(st) || st > 3)
            return r.fail();
        state_ = static_cast<TrackerState>(st);
        if (!r.b(uif_) || !r.u64(nextSpanId_) ||
            !r.bytes(prio_, sizeof(prio_)) || !r.b(prioEnabled_))
            return false;
        if (!r.u64(n) || n > (1u << 20))
            return r.fail();
        preemptStack_.clear();
        for (std::uint64_t i = 0; i < n; ++i) {
            PendingIntr p{};
            if (!getIntr(p))
                return false;
            preemptStack_.push_back(p);
        }
        return r.ok();
    }

  private:
    /** Pop the pending entry accept()/beginPreempt() should take. */
    PendingIntr takeNext();

    std::deque<PendingIntr> pending_;
    PendingIntr current_{};
    TrackerState state_ = TrackerState::Idle;
    bool uif_ = true;
    std::uint64_t nextSpanId_ = 1;
    RaiseFaultHook raiseHook_;
    /** Per-vector delivery priority (0 = best-effort default). */
    std::uint8_t prio_[256] = {};
    bool prioEnabled_ = false;
    /** Preempted handlers, outermost first. */
    std::vector<PendingIntr> preemptStack_;
};

} // namespace xui

#endif // XUI_UARCH_INTERRUPT_UNIT_HH
