/**
 * @file
 * Cycle-level out-of-order core model.
 *
 * A single class models the pipeline of a Sapphire-Rapids-like core
 * (Table 3 configuration): a fetch unit with branch prediction and
 * microcode injection, rename/dispatch into a ROB with IQ/LQ/SQ
 * occupancy limits, out-of-order issue to typed functional units, a
 * real cache hierarchy for loads, mispredict squash with bounded
 * squash width, and instruction-granular commit.
 *
 * Interrupt delivery implements all three strategies the paper
 * studies (§3.5, §4.2):
 *  - Flush: squash everything in flight, charge the microcode-entry
 *    latency, resume after the handler at the last committed PC;
 *  - Drain: stop fetching and wait for the ROB to empty first;
 *  - Tracked (xUI): redirect the next-PC mux to the MSROM at the next
 *    instruction (or safepoint) boundary, tag injected micro-ops, and
 *    re-inject after any squash that kills them before first commit.
 */

#ifndef XUI_UARCH_OOO_CORE_HH
#define XUI_UARCH_OOO_CORE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "ckpt/codec.hh"
#include "des/time.hh"
#include "intr/forwarding.hh"
#include "intr/kb_timer.hh"
#include "intr/upid.hh"
#include "stats/rng.hh"
#include "uarch/branch_predictor.hh"
#include "uarch/cache.hh"
#include "uarch/core_params.hh"
#include "uarch/cycle_hook.hh"
#include "uarch/interrupt_unit.hh"
#include "uarch/intr_observer.hh"
#include "uarch/mcrom.hh"
#include "uarch/program.hh"
#include "uarch/trace.hh"

namespace xui
{

class UarchSystem;

/** Timeline of one delivered interrupt (drives Fig. 2 / Fig. 4). */
struct IntrRecord
{
    IntrSource source{};
    std::uint8_t vector = 0;
    /** Correlation id assigned at raise (see PendingIntr::spanId). */
    std::uint64_t spanId = 0;
    Cycles raisedAt = 0;
    Cycles acceptedAt = 0;
    Cycles injectedAt = 0;
    Cycles firstUopCommitAt = 0;
    /** Delivery jump executed: the handler starts fetching. */
    Cycles deliveryExecAt = 0;
    Cycles deliveryCommitAt = 0;
    Cycles uiretCommitAt = 0;
    /**
     * Priority preemption fields (zero unless `preempting`): the
     * nested span's save window runs saveStartAt -> injectedAt and
     * its restore window uiretCommitAt -> restoredAt; restoredAt —
     * when the preempted handler resumed — closes the record.
     */
    Cycles saveStartAt = 0;
    Cycles restoredAt = 0;
    /** This delivery preempted a lower-priority handler. */
    bool preempting = false;
};

/** Sender-side timeline of one senduipi (drives Table 2 / Fig. 2). */
struct SendRecord
{
    Cycles dispatchedAt = 0;
    Cycles icrCommitAt = 0;
};

/** One closed fast-forward region (sampled-detail mode). */
struct FfSpan
{
    Cycles enteredAt = 0;
    Cycles exitedAt = 0;
    /** Macro instructions executed functionally in the region. */
    std::uint64_t insts = 0;
};

/** Aggregate core counters. */
struct CoreStats
{
    Cycles cycles = 0;
    std::uint64_t committedInsts = 0;
    std::uint64_t committedUops = 0;
    std::uint64_t fetchedUops = 0;
    std::uint64_t issuedUops = 0;
    std::uint64_t squashedUops = 0;
    std::uint64_t squashes = 0;
    std::uint64_t branchMispredicts = 0;
    std::uint64_t interruptsRaised = 0;
    std::uint64_t interruptsDelivered = 0;
    std::uint64_t reinjections = 0;
    std::uint64_t slowPathForwards = 0;
    std::uint64_t drainWaitCycles = 0;
    /** Priority preemptions begun (higher vector over a handler). */
    std::uint64_t preemptions = 0;
    /** Preempted handlers resumed (restore redirects committed). */
    std::uint64_t preemptRestores = 0;
    /** Fast-forward (sampled-detail) mode: regions entered/left,
     *  cycles covered functionally, instructions executed there. */
    std::uint64_t ffEntries = 0;
    std::uint64_t ffExits = 0;
    std::uint64_t ffInsts = 0;
    Cycles ffCycles = 0;
    std::vector<IntrRecord> intrRecords;
    std::vector<SendRecord> sendRecords;
    /** Closed fast-forward regions, in time order (mode-transition
     *  spans for the observability exporter). */
    std::vector<FfSpan> ffSpans;
};

/** The out-of-order core. */
class OooCore
{
  public:
    /**
     * @param id core / APIC identifier
     * @param params pipeline configuration
     * @param program the static program this core runs
     * @param rng private stream for address/branch randomness
     */
    OooCore(unsigned id, const CoreParams &params,
            const Program *program, Rng rng);

    /** Attach the multi-core fabric (needed only for senduipi). */
    void setSystem(UarchSystem *system) { system_ = system; }

    /** Attach a pipeline tracer (nullptr disables tracing). */
    void setTracer(Tracer *tracer) { tracer_ = tracer; }

    /** Attach a lifecycle observer (nullptr disables observation). */
    void setIntrObserver(IntrLifecycleObserver *obs)
    {
        intrObs_ = obs;
    }

    /**
     * Attach an end-of-tick observation hook (nullptr detaches).
     * The hook is read-only by contract: attaching one never
     * changes simulated behavior (digest-guarded).
     */
    void setCycleHook(CycleHook *hook) { cycleHook_ = hook; }

    /** Advance one cycle. */
    void tick();

    /** Run for a fixed number of cycles. */
    void runCycles(Cycles n);

    /**
     * Run until `insts` macro instructions have committed.
     * @return cycles elapsed; stops early at max_cycles.
     */
    Cycles runUntilCommitted(std::uint64_t insts,
                             Cycles max_cycles = ~0ull);

    /**
     * True when a tick would change nothing but the cycle counter:
     * the pipeline is empty and halted, no microcode or interrupt
     * work is in flight, and no interrupt can be accepted. The
     * run-to-next-wakeup loops skip such cycles in one jump.
     */
    bool quiesced() const;

    /**
     * Earliest future cycle at which a quiesced core can become
     * active again (KB-timer deadline or in-flight IPI arrival);
     * kNoWake when nothing is scheduled.
     */
    Cycles nextWakeCycle() const;

    /** No wake source pending (sentinel of nextWakeCycle()). */
    static constexpr Cycles kNoWake = ~Cycles(0);

    /**
     * Jump the clock of a quiesced core forward to `c` without
     * ticking the pipeline.
     * @pre quiesced() and c < nextWakeCycle()
     */
    void skipTo(Cycles c);

    Cycles now() const { return cycle_; }
    unsigned id() const { return id_; }
    bool halted() const;

    /** Fast-forward (sampled-detail) functional loop is active. */
    bool fastForwarding() const { return ffMode_; }

    /** The detail window is open through this cycle (diagnostic;
     *  meaningful only with params().fastForward). */
    Cycles detailUntil() const { return ffDetailUntil_; }

    /**
     * Fault hook consulted at every fast-forward mode transition:
     * once when the core is about to enter the functional loop
     * (`entering` true, pipeline already drained) and once right
     * after it returns to detail (`entering` false). Returning a
     * nonzero cycle count pins full detail for that many cycles
     * from `now` — an entry consult that pins detail aborts the
     * entry. Installed only by the chaos harness; unset it costs
     * one bool check per transition.
     */
    using FfTransitionHook = std::function<Cycles(bool entering,
                                                  Cycles now)>;

    void setFfTransitionHook(FfTransitionHook hook)
    {
        ffTransitionHook_ = std::move(hook);
    }

    /** Interrupt plumbing. */
    InterruptUnit &intrUnit() { return intr_; }
    KbTimer &kbTimer() { return kbTimer_; }
    ForwardingUnit &forwarding() { return forwarding_; }
    Dupid &dupid() { return dupid_; }
    Upid &upid() { return upid_; }

    /** The UINV vector discriminating UIPI notifications. */
    void setUinv(std::uint8_t v) { uinv_ = v; }
    std::uint8_t uinv() const { return uinv_; }

    /** A conventional IPI arrives at this core's APIC at `when`. */
    void receiveIpi(std::uint8_t vector, Cycles when);

    /** A device interrupt arrives now (forwarding logic applies). */
    void deviceInterrupt(std::uint8_t vector);

    CoreStats &stats() { return stats_; }
    const CoreParams &params() const { return params_; }
    MemHierarchy &mem() { return mem_; }
    const MemHierarchy &mem() const { return mem_; }
    BranchPredictor &predictor() { return predictor_; }

    /** Count of in-flight (un-committed) micro-ops. */
    std::size_t robOccupancy() const { return rob_.size(); }

    /** Issue-queue occupancy (un-issued micro-ops in the ROB). */
    unsigned iqOccupancy() const { return iqCount_; }
    /** Load-queue occupancy. */
    unsigned lqOccupancy() const { return lqCount_; }
    /** Store-queue occupancy. */
    unsigned sqOccupancy() const { return sqCount_; }
    /** Micro-ops buffered between fetch and dispatch. */
    std::size_t fetchBufferDepth() const
    {
        return fetchBuffer_.size();
    }
    /** Fetch is blocked (microcode entry / mispredict refill). */
    bool frontendStalled() const
    {
        return frontendStallUntil_ > cycle_ || awaitRedirect_;
    }
    /** Drain-strategy wait for an empty ROB is in progress. */
    bool drainWaiting() const { return drainWaiting_; }

    const CoreStats &stats() const { return stats_; }

    /**
     * Checkpoint the complete core state (implemented in
     * core_ckpt.cc). Capture happens at an inter-tick boundary; the
     * payload covers every run-to-run-visible member — pipeline
     * structures, interrupt plumbing, caches, predictor, RNG, stats
     * — except harness attachments (tracer/observer/hooks/system),
     * which the restoring harness re-wires itself.
     */
    void saveState(ckpt::Writer &w) const;

    /**
     * Restore from a payload produced by saveState() on a core
     * constructed with the same (params, program, id). Derived
     * structures (rename table, readiness ring, completion wheel,
     * IQ list) are rebuilt rather than deserialized.
     * @return false on malformed or mismatched data (the core is
     *         then unusable and must be discarded).
     */
    bool loadState(ckpt::Reader &r);

  private:
    /** One in-flight micro-op. */
    struct RobEntry
    {
        MicroOp uop;
        std::uint64_t seq = 0;
        std::uint32_t pc = kUcodePc;
        std::uint32_t nextPc = 0;
        std::uint64_t imm = 0;
        bool issued = false;
        bool done = false;
        Cycles readyAt = 0;
        std::uint64_t addr = 0;
        bool isBranch = false;
        /** Perfectly-biased branch: statically predicted, kept out
         * of the dynamic predictor and its history. */
        bool staticBranch = false;
        bool predictedTaken = false;
        bool actualTaken = false;
        bool mispredicted = false;
        bool wrongPath = false;
        /** This op advanced execCount_[pc] at fetch (Loop branch /
         * Stride address); a squash must undo the increment so the
         * re-fetched instance observes the same architectural
         * iteration count. */
        bool countedExec = false;
        std::uint32_t correctTarget = 0;
        std::uint64_t historyBefore = 0;
        std::uint64_t dep1 = 0;
        std::uint64_t dep2 = 0;
        /**
         * Lower bound on the first cycle this entry's dependencies
         * can all be ready. The issue scan skips the entry with one
         * compare until then; the bound is refreshed whenever a
         * dependency check fails, so skipping never delays an issue
         * (a dep ready at cycle c yields a bound <= c).
         */
        Cycles notBefore = 0;
    };

    static constexpr std::uint32_t kUcodePc = 0xffffffff;

    /** Pipeline stages (called in reverse order from tick()). */
    void commitStage();
    void writebackStage();
    void issueStage();
    void dispatchStage();
    void fetchStage();

    /** Interrupt accept / injection helpers. */
    void checkInterruptAccept();
    void beginInjection();
    void beginPreemptInjection();
    void loadUcodeForCurrent();
    /** Load preempt-save + delivery microcode (nested delivery). */
    void loadUcodeNested();
    /** Load the preempt-restore routine (after a nested uiret);
     *  the routine's imm latches its redirect target. */
    void loadUcodeRestore(std::uint32_t resume_pc);
    /** Resume pc the next writing-back uiret should use, accounting
     *  for restores already issued but not yet committed. */
    std::uint32_t resumeTargetForReturn() const;
    void squashAll();
    /** Undo a squashed restore routine's restoresInFlight_ slot. */
    void uncountRestore(const MicroOp &uop);
    /** Undo a squashed entry's speculative execCount_ increment. */
    void uncountExec(const RobEntry &entry);
    void squashYoungerThan(std::uint64_t seq,
                           std::uint32_t recovery_pc,
                           std::uint64_t history);
    void rebuildRenameTable();
    /** Checkpoint helpers (core_ckpt.cc). */
    static void saveUop(ckpt::Writer &w, const MicroOp &uop);
    static bool loadUop(ckpt::Reader &r, MicroOp &uop);
    static void saveRobEntry(ckpt::Writer &w, const RobEntry &e);
    static bool loadRobEntry(ckpt::Reader &r, RobEntry &e);
    static void saveIntrRecord(ckpt::Writer &w, const IntrRecord &rec);
    static bool loadIntrRecord(ckpt::Reader &r, IntrRecord &rec);
    /** Rebuild ring + completion wheel from rob_ after loadState. */
    void rebuildExecStructures();
    void applyCommitEffect(const RobEntry &entry);
    bool depReady(std::uint64_t dep) const;
    /** Earliest cycle `dep` can be ready (0 when ready now). */
    Cycles depBound(std::uint64_t dep) const;
    /** Enqueue a just-issued micro-op for writeback at readyAt. */
    void scheduleWriteback(std::uint64_t seq, Cycles ready_at);
    /** Drop `seq`'s ring slot when it leaves the ROB. */
    void releaseRingSlot(const RobEntry &entry);
    unsigned memAccessLatency(RobEntry &entry);
    std::uint64_t genAddress(const MacroOp &op, std::uint32_t pc);
    bool evalBranch(const MacroOp &op, std::uint32_t pc);
    void fetchProgramOp();
    void fetchUcodeUop();
    unsigned fuPoolOf(OpClass cls) const;
    unsigned classLatency(const MicroOp &uop) const;

    /** Fast-forward (sampled-detail) controller; see DESIGN.md §13.
     *  All of these are reached only when params_.fastForward. */
    void maybeEnterFastForward();
    void enterFastForward();
    void exitFastForward();
    /** One functional cycle (the per-tick fast-forward step). */
    void ffTick();
    /** One functional macro instruction.
     *  @return false when fast-forward must stop (halt reached or a
     *          microcoded op needs the detailed pipeline). */
    bool ffExecuteOne();
    /** Bulk functional run toward absolute cycle `end`, stopping
     *  ffWarmup cycles short of the next predicted interrupt
     *  arrival. */
    void ffAdvance(Cycles end);

    /** Emit a trace event when a tracer is attached. */
    void
    trace(TraceEvent ev, std::uint64_t seq = 0,
          std::uint32_t pc = kUcodePc, OpClass cls = OpClass::Nop)
    {
        if (tracer_)
            tracer_->event(ev, cycle_, seq, pc, cls);
    }

    /** Emit a lifecycle stage when an observer is attached. */
    void
    observe(IntrStage stage, std::uint64_t span_id,
            IntrSource source, std::uint8_t vector)
    {
        // Sampled-detail mode: every lifecycle event re-opens the
        // detail window, so full out-of-order fidelity covers
        // raise→accept→inject→deliver→return and the preempt
        // save/restore edges plus detailWindow cycles after each.
        if (params_.fastForward) {
            ffDetailUntil_ = cycle_ + params_.detailWindow;
            ffDrainPending_ = false;
        }
        if (intrObs_)
            intrObs_->intrStage(stage, span_id, source, vector,
                                cycle_, id_);
    }

    unsigned id_;
    CoreParams params_;
    const Program *program_;
    Rng rng_;
    UarchSystem *system_ = nullptr;
    Tracer *tracer_ = nullptr;
    IntrLifecycleObserver *intrObs_ = nullptr;
    CycleHook *cycleHook_ = nullptr;

    /**
     * Microcode routine tables; const so a core shared read-only
     * across sweep worker threads cannot mutate them after
     * construction (parallel sweeps give every job its own core,
     * but the freeze makes the invariant structural).
     */
    const Mcrom mcrom_;
    MemHierarchy mem_;
    BranchPredictor predictor_;
    InterruptUnit intr_;
    KbTimer kbTimer_;
    ForwardingUnit forwarding_;
    Dupid dupid_;
    Upid upid_;
    std::uint8_t uinv_ = 0xec;

    Cycles cycle_ = 0;
    std::uint64_t nextSeq_ = 1;

    // Fetch state.
    std::uint32_t fetchPc_;
    bool fetchHalted_ = false;
    Cycles frontendStallUntil_ = 0;
    bool onWrongPath_ = false;
    std::deque<MicroOp> ucodeQueue_;
    std::uint64_t ucodeImm_ = 0;
    std::uint32_t ucodeMacroPc_ = kUcodePc;
    std::uint32_t ucodeNextPc_ = 0;
    bool drainWaiting_ = false;
    /** Fetch is blocked on a microcode jump/return executing. */
    bool awaitRedirect_ = false;

    // Saved return point for uiret (the paper's tracked next_pc).
    std::uint32_t resumePc_ = 0;
    std::uint32_t lastCommittedNextPc_ = 0;

    // Fetch buffer: fetched micro-ops in flight to dispatch.
    std::deque<RobEntry> fetchBuffer_;

    // Backend.
    std::deque<RobEntry> rob_;
    std::vector<RobEntry *> iqList_;
    std::vector<std::uint64_t> renameTable_;
    std::vector<std::uint64_t> execCount_;

    // Producer readiness ring, indexed by seq & kRingMask. Avoids a
    // hash lookup per dependency per cycle. ringEntry_ additionally
    // resolves a live seq to its ROB entry (deque elements are
    // pointer-stable); slots are invalidated (ringSeq_ = 0) when the
    // entry commits or is squashed, so a matching slot always points
    // at an in-flight entry.
    static constexpr std::size_t kRingSize = 1 << 14;
    static constexpr std::uint64_t kRingMask = kRingSize - 1;
    std::vector<std::uint64_t> ringSeq_;
    std::vector<Cycles> ringReadyAt_;
    std::vector<RobEntry *> ringEntry_;

    // Completion wheel: bucket per cycle of the seqs whose execution
    // finishes then, so writeback touches only completing entries
    // instead of scanning the whole ROB. Latencies beyond the span
    // wait in farWb_ (checked once per cycle, normally empty).
    // Buckets hold seqs, validated against the ring when drained, so
    // squashed entries need no wheel surgery.
    static constexpr std::size_t kWbSpan = 2048;
    static constexpr std::uint64_t kWbMask = kWbSpan - 1;
    std::vector<std::vector<std::uint64_t>> wbWheel_;
    std::vector<std::uint64_t> farWb_;
    std::vector<std::uint64_t> wbScratch_;

    /** Max micro-ops buffered between fetch and dispatch. */
    static constexpr std::size_t kFetchBufferCap = 48;

    // Occupancy counters (recomputed after squashes).
    unsigned iqCount_ = 0;
    unsigned lqCount_ = 0;
    unsigned sqCount_ = 0;

    // Per-cycle FU tokens.
    unsigned fuTokens_[5] = {0, 0, 0, 0, 0};

    // In-flight IPIs addressed to this core.
    struct IpiArrival
    {
        std::uint8_t vector;
        Cycles when;
    };
    std::deque<IpiArrival> ipiInbox_;

    // Current interrupt record being assembled.
    IntrRecord currentRecord_;
    bool recordOpen_ = false;

    // Priority preemption: per-level saved core context, innermost
    // last (parallels InterruptUnit::preemptStack_).
    struct PreemptFrame
    {
        std::uint32_t resumePc;
        IntrRecord record;
        bool recordOpen;
    };
    std::vector<PreemptFrame> preemptFrames_;
    /** Preempt-restore routines in flight (uiret writeback ->
     *  ResumeFromPreempt commit or squash). Blocks further
     *  preemptions, and — because writeback is out of order —
     *  disambiguates nested from outermost uirets: an outer uiret
     *  can complete before the inner restore commits and pops
     *  preemptFrames_, so the frame stack alone is stale there. */
    unsigned restoresInFlight_ = 0;

    // Fast-forward (sampled-detail) state. Touched only when
    // params_.fastForward is set, which is what keeps ff-off runs
    // structurally bit-identical to a build without the feature.
    /** The functional loop is running instead of the pipeline. */
    bool ffMode_ = false;
    /** Window expired: program fetch is gated so the pipeline can
     *  drain empty, the precondition for a clean mode handoff. */
    bool ffDrainPending_ = false;
    /** Detail window open through this cycle. */
    Cycles ffDetailUntil_ = 0;
    /** Chaos-harness fault hook at mode transitions (usually unset). */
    FfTransitionHook ffTransitionHook_;
    /** Committed instructions per cycle, Q16 fixed point,
     *  recalibrated from each detailed phase at fast-forward
     *  entry. */
    std::uint64_t ffIpcQ16_ = 1u << 16;
    /** Fractional instruction credit carried across ff cycles. */
    std::uint64_t ffFracQ16_ = 0;
    /** Start of the current calibration sample (last mode switch
     *  into detail). */
    Cycles ffCalibStartCycle_ = 0;
    std::uint64_t ffCalibStartInsts_ = 0;
    /** stats_.ffInsts at entry of the open ff span. */
    std::uint64_t ffSpanStartInsts_ = 0;

    /** Detailed phases shorter than this give no IPC sample. */
    static constexpr std::uint64_t kFfCalibMinInsts = 64;
    /** IPC model clamp: [1/16, 8] insts per cycle, Q16. */
    static constexpr std::uint64_t kFfMinIpcQ16 = (1u << 16) / 16;
    static constexpr std::uint64_t kFfMaxIpcQ16 = 8ull << 16;
    /** Skippable gaps shorter than warmup + this are not worth the
     *  drain + re-warm round trip. */
    static constexpr Cycles kFfMinRegion = 64;

    CoreStats stats_;
};

} // namespace xui

#endif // XUI_UARCH_OOO_CORE_HH
