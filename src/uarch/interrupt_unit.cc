#include "uarch/interrupt_unit.hh"

#include <cassert>

namespace xui
{

std::uint64_t
InterruptUnit::raise(IntrSource source, std::uint8_t vector,
                     Cycles now)
{
    RaiseOutcome outcome = RaiseOutcome::Deliver;
    if (raiseHook_)
        outcome = raiseHook_(source, vector);
    if (outcome == RaiseOutcome::Drop)
        return 0;
    std::uint64_t id = nextSpanId_++;
    pending_.push_back(PendingIntr{source, vector, now, id});
    if (outcome == RaiseOutcome::Duplicate)
        pending_.push_back(PendingIntr{source, vector, now, id});
    return id;
}

bool
InterruptUnit::canAccept() const
{
    return uif_ && state_ == TrackerState::Idle && !pending_.empty();
}

PendingIntr
InterruptUnit::accept()
{
    assert(canAccept());
    current_ = pending_.front();
    pending_.pop_front();
    state_ = TrackerState::Pending;
    return current_;
}

bool
InterruptUnit::shouldInject(bool at_safepoint,
                            bool safepoint_mode) const
{
    if (state_ != TrackerState::Pending)
        return false;
    if (safepoint_mode && !at_safepoint)
        return false;
    return true;
}

void
InterruptUnit::onInjected()
{
    assert(state_ == TrackerState::Pending);
    state_ = TrackerState::Injected;
}

bool
InterruptUnit::onSquash(bool killed_intr_uops)
{
    if (state_ == TrackerState::Injected && killed_intr_uops) {
        // Paper §4.2: the interrupt processing microcode remains the
        // default misspeculation recovery path until its first
        // micro-op commits.
        state_ = TrackerState::Pending;
        return true;
    }
    return false;
}

void
InterruptUnit::onFirstIntrCommit()
{
    if (state_ == TrackerState::Injected)
        state_ = TrackerState::Committed;
}

void
InterruptUnit::onHandlerReturn()
{
    state_ = TrackerState::Idle;
}

} // namespace xui
