#include "uarch/interrupt_unit.hh"

#include <cassert>
#include <iterator>

namespace xui
{

std::uint64_t
InterruptUnit::raise(IntrSource source, std::uint8_t vector,
                     Cycles now)
{
    RaiseOutcome outcome = RaiseOutcome::Deliver;
    if (raiseHook_)
        outcome = raiseHook_(source, vector);
    if (outcome == RaiseOutcome::Drop)
        return 0;
    std::uint64_t id = nextSpanId_++;
    pending_.push_back(PendingIntr{source, vector, now, id});
    if (outcome == RaiseOutcome::Duplicate)
        pending_.push_back(PendingIntr{source, vector, now, id});
    return id;
}

bool
InterruptUnit::canAccept() const
{
    return uif_ && state_ == TrackerState::Idle && !pending_.empty();
}

PendingIntr
InterruptUnit::takeNext()
{
    if (!prioEnabled_) {
        PendingIntr p = pending_.front();
        pending_.pop_front();
        return p;
    }
    // Highest priority wins; the first (oldest) entry breaks ties,
    // so an all-default table degenerates to the FIFO pop above.
    auto best = pending_.begin();
    for (auto it = std::next(best); it != pending_.end(); ++it)
        if (prio_[it->vector] > prio_[best->vector])
            best = it;
    PendingIntr p = *best;
    pending_.erase(best);
    return p;
}

PendingIntr
InterruptUnit::accept()
{
    assert(canAccept());
    current_ = takeNext();
    state_ = TrackerState::Pending;
    return current_;
}

void
InterruptUnit::setVectorPriority(std::uint8_t vector,
                                 std::uint8_t prio)
{
    prio_[vector] = clampPriority(prio);
    if (prio_[vector] > 0)
        prioEnabled_ = true;
}

std::uint8_t
InterruptUnit::highestPendingPriority() const
{
    std::uint8_t best = 0;
    for (const PendingIntr &p : pending_)
        if (prio_[p.vector] > best)
            best = prio_[p.vector];
    return best;
}

PendingIntr
InterruptUnit::beginPreempt()
{
    assert(shouldPreempt());
    preemptStack_.push_back(current_);
    current_ = takeNext();
    state_ = TrackerState::Pending;
    return current_;
}

void
InterruptUnit::onNestedReturn()
{
    assert(!preemptStack_.empty());
    current_ = preemptStack_.back();
    preemptStack_.pop_back();
    state_ = TrackerState::Committed;
}

bool
InterruptUnit::shouldInject(bool at_safepoint,
                            bool safepoint_mode) const
{
    if (state_ != TrackerState::Pending)
        return false;
    if (safepoint_mode && !at_safepoint)
        return false;
    return true;
}

void
InterruptUnit::onInjected()
{
    assert(state_ == TrackerState::Pending);
    state_ = TrackerState::Injected;
}

bool
InterruptUnit::onSquash(bool killed_intr_uops)
{
    if (state_ == TrackerState::Injected && killed_intr_uops) {
        // Paper §4.2: the interrupt processing microcode remains the
        // default misspeculation recovery path until its first
        // micro-op commits.
        state_ = TrackerState::Pending;
        return true;
    }
    return false;
}

void
InterruptUnit::onFirstIntrCommit()
{
    if (state_ == TrackerState::Injected)
        state_ = TrackerState::Committed;
}

void
InterruptUnit::onHandlerReturn()
{
    state_ = TrackerState::Idle;
}

} // namespace xui
