/**
 * @file
 * Set-associative timing cache hierarchy for the core model.
 *
 * Tags and LRU state are modeled exactly; data is not (the simulator
 * is timing-only). Each access returns the total latency to the first
 * level that hits, and allocates the line on the way back (write-
 * allocate, writeback is not modeled since only timing matters).
 */

#ifndef XUI_UARCH_CACHE_HH
#define XUI_UARCH_CACHE_HH

#include <cstdint>
#include <vector>

#include "ckpt/codec.hh"

namespace xui
{

/** One level of set-associative cache, timing-only, true LRU. */
class Cache
{
  public:
    /**
     * @param size_bytes total capacity
     * @param assoc ways per set
     * @param line_bytes line size (power of two)
     * @param hit_latency cycles for a hit in this level
     * @param next next level, or nullptr for the last cache level
     * @param miss_latency latency charged beyond the last level
     *        (memory access time), used only when next == nullptr
     */
    Cache(std::uint64_t size_bytes, unsigned assoc,
          unsigned line_bytes, unsigned hit_latency, Cache *next,
          unsigned miss_latency = 0);

    /**
     * Access an address; allocate on miss.
     * @return total latency in cycles including lower levels.
     */
    unsigned access(std::uint64_t addr);

    /** Probe without modifying state. */
    bool contains(std::uint64_t addr) const;

    /** Invalidate one line if present (cross-core write model). */
    void invalidate(std::uint64_t addr);

    /** Drop all lines. */
    void flushAll();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    unsigned hitLatency() const { return hitLatency_; }

    /**
     * Checkpoint the mutable state (tags, LRU stamps, counters).
     * Geometry comes from the constructor, so load validates the
     * line count instead of serializing the configuration.
     */
    void saveState(ckpt::Writer &w) const
    {
        w.u64(lines_.size());
        for (const Line &l : lines_) {
            w.b(l.valid);
            w.u64(l.tag);
            w.u64(l.lruStamp);
        }
        w.u64(stamp_);
        w.u64(hits_);
        w.u64(misses_);
    }

    bool loadState(ckpt::Reader &r)
    {
        std::uint64_t n = 0;
        if (!r.u64(n) || n != lines_.size())
            return r.fail();
        for (Line &l : lines_)
            if (!r.b(l.valid) || !r.u64(l.tag) || !r.u64(l.lruStamp))
                return false;
        return r.u64(stamp_) && r.u64(hits_) && r.u64(misses_);
    }

  private:
    struct Line
    {
        bool valid = false;
        std::uint64_t tag = 0;
        std::uint64_t lruStamp = 0;
    };

    std::uint64_t setIndex(std::uint64_t addr) const;
    std::uint64_t tagOf(std::uint64_t addr) const;

    unsigned assoc_;
    unsigned lineShift_;
    std::uint64_t numSets_;
    unsigned hitLatency_;
    unsigned missLatency_;
    Cache *next_;
    std::vector<Line> lines_;
    std::uint64_t stamp_;
    std::uint64_t hits_;
    std::uint64_t misses_;
};

/** Parameters for the three-level hierarchy. */
struct MemHierarchyParams
{
    std::uint64_t l1Size = 32 * 1024;    ///< Table 3: 32 KB
    unsigned l1Assoc = 8;                ///< Table 3: 8-way
    unsigned l1Latency = 4;
    std::uint64_t l2Size = 2 * 1024 * 1024;
    unsigned l2Assoc = 16;
    unsigned l2Latency = 14;
    std::uint64_t llcSize = 32 * 1024 * 1024;
    unsigned llcAssoc = 16;
    unsigned llcLatency = 42;
    unsigned memLatency = 160;
    unsigned lineBytes = 64;
};

/** L1 + L2 + LLC + memory, presented as a single access() call. */
class MemHierarchy
{
  public:
    explicit MemHierarchy(const MemHierarchyParams &params = {});

    /** Data access through the hierarchy. */
    unsigned access(std::uint64_t addr) { return l1_.access(addr); }

    /**
     * Cross-core transfer: the line was last written by another
     * core, so it misses the local L1/L2 and is sourced from the
     * remote cache at LLC-ish latency. Models the UPID read during
     * UIPI notification processing.
     */
    unsigned remoteAccess(std::uint64_t addr);

    Cache &l1() { return l1_; }
    Cache &l2() { return l2_; }
    Cache &llc() { return llc_; }
    const Cache &l1() const { return l1_; }
    const Cache &l2() const { return l2_; }
    const Cache &llc() const { return llc_; }

    const MemHierarchyParams &params() const { return params_; }

    void saveState(ckpt::Writer &w) const
    {
        llc_.saveState(w);
        l2_.saveState(w);
        l1_.saveState(w);
    }

    bool loadState(ckpt::Reader &r)
    {
        return llc_.loadState(r) && l2_.loadState(r) &&
               l1_.loadState(r);
    }

  private:
    MemHierarchyParams params_;
    Cache llc_;
    Cache l2_;
    Cache l1_;
};

} // namespace xui

#endif // XUI_UARCH_CACHE_HH
