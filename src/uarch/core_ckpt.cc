/**
 * @file
 * OooCore checkpoint save/restore.
 *
 * Capture contract: the caller snapshots at an inter-tick boundary
 * (between two tick() calls), where every per-cycle transient
 * (fuTokens_, wbScratch_) is dead. Everything run-to-run-visible is
 * serialized field by field — never by memcpy of a struct, so padding
 * bytes cannot leak into the payload digest.
 *
 * Restore contract: loadState() runs on a core freshly constructed
 * with the same (id, params, program, seed) tuple; configuration is
 * therefore not serialized, only validated where cheap (table sizes).
 * Derived structures are rebuilt rather than deserialized:
 *  - rename table + IQ list + occupancy counters via
 *    rebuildRenameTable(), the same routine squash recovery uses;
 *  - the producer-readiness ring and the completion wheel via
 *    rebuildExecStructures() below, since both are pure functions of
 *    the ROB contents and the current cycle.
 * The rebuilt rename table maps registers whose producer already
 * committed to seq 0 where the uninterrupted run keeps the retired
 * seq; both read as "ready now" everywhere (depReady/depBound), so
 * the divergence is unobservable — the round-trip corpus test is
 * what pins that claim.
 */

#include <cstddef>

#include "uarch/ooo_core.hh"

namespace xui
{

namespace
{

/** Sanity bound on serialized container sizes (corrupt streams). */
constexpr std::uint64_t kMaxElems = 1ull << 22;

} // namespace

void
OooCore::saveUop(ckpt::Writer &w, const MicroOp &uop)
{
    w.u8(static_cast<std::uint8_t>(uop.cls));
    w.u8(uop.dest);
    w.u8(uop.src1);
    w.u8(uop.src2);
    w.b(uop.eom);
    w.b(uop.fromIntrPath);
    w.b(uop.safepoint);
    w.u8(static_cast<std::uint8_t>(uop.effect));
    w.u8(static_cast<std::uint8_t>(uop.mem));
    w.u64(uop.addr);
    w.u16(uop.fixedLatency);
}

bool
OooCore::loadUop(ckpt::Reader &r, MicroOp &uop)
{
    std::uint8_t cls = 0, effect = 0, mem = 0;
    if (!r.u8(cls) ||
        cls > static_cast<std::uint8_t>(OpClass::Nop))
        return r.fail();
    uop.cls = static_cast<OpClass>(cls);
    if (!r.u8(uop.dest) || !r.u8(uop.src1) || !r.u8(uop.src2) ||
        !r.b(uop.eom) || !r.b(uop.fromIntrPath) ||
        !r.b(uop.safepoint))
        return false;
    if (!r.u8(effect) ||
        effect > static_cast<std::uint8_t>(
                     McodeEffect::ResumeFromPreempt))
        return r.fail();
    uop.effect = static_cast<McodeEffect>(effect);
    if (!r.u8(mem) ||
        mem > static_cast<std::uint8_t>(MemMode::Remote))
        return r.fail();
    uop.mem = static_cast<MemMode>(mem);
    return r.u64(uop.addr) && r.u16(uop.fixedLatency);
}

void
OooCore::saveRobEntry(ckpt::Writer &w, const RobEntry &e)
{
    saveUop(w, e.uop);
    w.u64(e.seq);
    w.u32(e.pc);
    w.u32(e.nextPc);
    w.u64(e.imm);
    w.b(e.issued);
    w.b(e.done);
    w.u64(e.readyAt);
    w.u64(e.addr);
    w.b(e.isBranch);
    w.b(e.staticBranch);
    w.b(e.predictedTaken);
    w.b(e.actualTaken);
    w.b(e.mispredicted);
    w.b(e.wrongPath);
    w.b(e.countedExec);
    w.u32(e.correctTarget);
    w.u64(e.historyBefore);
    w.u64(e.dep1);
    w.u64(e.dep2);
    w.u64(e.notBefore);
}

bool
OooCore::loadRobEntry(ckpt::Reader &r, RobEntry &e)
{
    return loadUop(r, e.uop) && r.u64(e.seq) && r.u32(e.pc) &&
           r.u32(e.nextPc) && r.u64(e.imm) && r.b(e.issued) &&
           r.b(e.done) && r.u64(e.readyAt) && r.u64(e.addr) &&
           r.b(e.isBranch) && r.b(e.staticBranch) &&
           r.b(e.predictedTaken) && r.b(e.actualTaken) &&
           r.b(e.mispredicted) && r.b(e.wrongPath) &&
           r.b(e.countedExec) && r.u32(e.correctTarget) &&
           r.u64(e.historyBefore) && r.u64(e.dep1) &&
           r.u64(e.dep2) && r.u64(e.notBefore);
}

void
OooCore::saveIntrRecord(ckpt::Writer &w, const IntrRecord &rec)
{
    w.u8(static_cast<std::uint8_t>(rec.source));
    w.u8(rec.vector);
    w.u64(rec.spanId);
    w.u64(rec.raisedAt);
    w.u64(rec.acceptedAt);
    w.u64(rec.injectedAt);
    w.u64(rec.firstUopCommitAt);
    w.u64(rec.deliveryExecAt);
    w.u64(rec.deliveryCommitAt);
    w.u64(rec.uiretCommitAt);
    w.u64(rec.saveStartAt);
    w.u64(rec.restoredAt);
    w.b(rec.preempting);
}

bool
OooCore::loadIntrRecord(ckpt::Reader &r, IntrRecord &rec)
{
    std::uint8_t src = 0;
    if (!r.u8(src) || src > 2)
        return r.fail();
    rec.source = static_cast<IntrSource>(src);
    return r.u8(rec.vector) && r.u64(rec.spanId) &&
           r.u64(rec.raisedAt) && r.u64(rec.acceptedAt) &&
           r.u64(rec.injectedAt) && r.u64(rec.firstUopCommitAt) &&
           r.u64(rec.deliveryExecAt) && r.u64(rec.deliveryCommitAt) &&
           r.u64(rec.uiretCommitAt) && r.u64(rec.saveStartAt) &&
           r.u64(rec.restoredAt) && r.b(rec.preempting);
}

void
OooCore::saveState(ckpt::Writer &w) const
{
    // Identity guard: a payload restored into a core built for a
    // different program or id is caught before any state moves.
    w.u32(id_);
    w.u64(program_->size());

    for (unsigned i = 0; i < 4; ++i)
        w.u64(rng_.stateWord(i));

    mem_.saveState(w);
    predictor_.saveState(w);
    intr_.saveState(w);
    w.b(kbTimer_.enabled());
    w.u8(kbTimer_.vector());
    w.b(kbTimer_.armed());
    w.u8(static_cast<std::uint8_t>(kbTimer_.mode()));
    w.u64(kbTimer_.deadline());
    w.u64(kbTimer_.period());
    for (unsigned i = 0; i < 4; ++i)
        w.u64(forwarding_.enabledMask().word(i));
    for (unsigned i = 0; i < 4; ++i)
        w.u64(forwarding_.activeMask().word(i));
    for (unsigned i = 0; i < 4; ++i)
        w.u64(forwarding_.uirr().word(i));
    for (unsigned i = 0; i < 4; ++i)
        w.u64(dupid_.pending().word(i));
    w.u64(upid_.rawLow());
    w.u64(upid_.rawPir());
    w.u8(uinv_);

    w.u64(cycle_);
    w.u64(nextSeq_);

    // Fetch state.
    w.u32(fetchPc_);
    w.b(fetchHalted_);
    w.u64(frontendStallUntil_);
    w.b(onWrongPath_);
    w.u64(ucodeQueue_.size());
    for (const MicroOp &uop : ucodeQueue_)
        saveUop(w, uop);
    w.u64(ucodeImm_);
    w.u32(ucodeMacroPc_);
    w.u32(ucodeNextPc_);
    w.b(drainWaiting_);
    w.b(awaitRedirect_);
    w.u32(resumePc_);
    w.u32(lastCommittedNextPc_);

    w.u64(fetchBuffer_.size());
    for (const RobEntry &e : fetchBuffer_)
        saveRobEntry(w, e);
    w.u64(rob_.size());
    for (const RobEntry &e : rob_)
        saveRobEntry(w, e);
    w.vecU64(execCount_);

    w.u64(ipiInbox_.size());
    for (const IpiArrival &a : ipiInbox_) {
        w.u8(a.vector);
        w.u64(a.when);
    }

    saveIntrRecord(w, currentRecord_);
    w.b(recordOpen_);
    w.u64(preemptFrames_.size());
    for (const PreemptFrame &f : preemptFrames_) {
        w.u32(f.resumePc);
        saveIntrRecord(w, f.record);
        w.b(f.recordOpen);
    }
    w.u32(restoresInFlight_);

    // Fast-forward controller.
    w.b(ffMode_);
    w.b(ffDrainPending_);
    w.u64(ffDetailUntil_);
    w.u64(ffIpcQ16_);
    w.u64(ffFracQ16_);
    w.u64(ffCalibStartCycle_);
    w.u64(ffCalibStartInsts_);
    w.u64(ffSpanStartInsts_);

    // Stats.
    w.u64(stats_.cycles);
    w.u64(stats_.committedInsts);
    w.u64(stats_.committedUops);
    w.u64(stats_.fetchedUops);
    w.u64(stats_.issuedUops);
    w.u64(stats_.squashedUops);
    w.u64(stats_.squashes);
    w.u64(stats_.branchMispredicts);
    w.u64(stats_.interruptsRaised);
    w.u64(stats_.interruptsDelivered);
    w.u64(stats_.reinjections);
    w.u64(stats_.slowPathForwards);
    w.u64(stats_.drainWaitCycles);
    w.u64(stats_.preemptions);
    w.u64(stats_.preemptRestores);
    w.u64(stats_.ffEntries);
    w.u64(stats_.ffExits);
    w.u64(stats_.ffInsts);
    w.u64(stats_.ffCycles);
    w.u64(stats_.intrRecords.size());
    for (const IntrRecord &rec : stats_.intrRecords)
        saveIntrRecord(w, rec);
    w.u64(stats_.sendRecords.size());
    for (const SendRecord &rec : stats_.sendRecords) {
        w.u64(rec.dispatchedAt);
        w.u64(rec.icrCommitAt);
    }
    w.u64(stats_.ffSpans.size());
    for (const FfSpan &span : stats_.ffSpans) {
        w.u64(span.enteredAt);
        w.u64(span.exitedAt);
        w.u64(span.insts);
    }
}

bool
OooCore::loadState(ckpt::Reader &r)
{
    std::uint32_t id = 0;
    std::uint64_t programSize = 0;
    if (!r.u32(id) || id != id_ || !r.u64(programSize) ||
        programSize != program_->size())
        return r.fail();

    for (unsigned i = 0; i < 4; ++i) {
        std::uint64_t word = 0;
        if (!r.u64(word))
            return false;
        rng_.setStateWord(i, word);
    }

    if (!mem_.loadState(r) || !predictor_.loadState(r) ||
        !intr_.loadState(r))
        return false;
    {
        bool enabled = false, armed = false;
        std::uint8_t vector = 0, mode = 0;
        std::uint64_t deadline = 0, period = 0;
        if (!r.b(enabled) || !r.u8(vector) || !r.b(armed) ||
            !r.u8(mode) || mode > 1 || !r.u64(deadline) ||
            !r.u64(period))
            return r.fail();
        kbTimer_.loadRawState(enabled, vector, armed,
                              static_cast<KbTimerMode>(mode),
                              deadline, period);
    }
    {
        Bitset256 enabled, active, uirr, parked;
        for (unsigned i = 0; i < 4; ++i) {
            std::uint64_t word = 0;
            if (!r.u64(word))
                return false;
            enabled.setWord(i, word);
        }
        for (unsigned i = 0; i < 4; ++i) {
            std::uint64_t word = 0;
            if (!r.u64(word))
                return false;
            active.setWord(i, word);
        }
        for (unsigned i = 0; i < 4; ++i) {
            std::uint64_t word = 0;
            if (!r.u64(word))
                return false;
            uirr.setWord(i, word);
        }
        forwarding_.loadRegisters(enabled, active, uirr);
        for (unsigned i = 0; i < 4; ++i) {
            std::uint64_t word = 0;
            if (!r.u64(word))
                return false;
            parked.setWord(i, word);
        }
        dupid_.loadPending(parked);
    }
    {
        std::uint64_t low = 0, pir = 0;
        if (!r.u64(low) || !r.u64(pir))
            return false;
        upid_.loadRaw(low, pir);
    }
    if (!r.u8(uinv_) || !r.u64(cycle_) || !r.u64(nextSeq_))
        return false;

    if (!r.u32(fetchPc_) || !r.b(fetchHalted_) ||
        !r.u64(frontendStallUntil_) || !r.b(onWrongPath_))
        return false;
    std::uint64_t n = 0;
    if (!r.u64(n) || n > kMaxElems)
        return r.fail();
    ucodeQueue_.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
        MicroOp uop;
        if (!loadUop(r, uop))
            return false;
        ucodeQueue_.push_back(uop);
    }
    if (!r.u64(ucodeImm_) || !r.u32(ucodeMacroPc_) ||
        !r.u32(ucodeNextPc_) || !r.b(drainWaiting_) ||
        !r.b(awaitRedirect_) || !r.u32(resumePc_) ||
        !r.u32(lastCommittedNextPc_))
        return false;

    if (!r.u64(n) || n > kMaxElems)
        return r.fail();
    fetchBuffer_.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
        RobEntry e;
        if (!loadRobEntry(r, e))
            return false;
        fetchBuffer_.push_back(std::move(e));
    }
    if (!r.u64(n) || n > kMaxElems)
        return r.fail();
    rob_.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
        RobEntry e;
        if (!loadRobEntry(r, e))
            return false;
        rob_.push_back(std::move(e));
    }
    std::vector<std::uint64_t> execCount;
    if (!r.vecU64(execCount) || execCount.size() != execCount_.size())
        return r.fail();
    execCount_ = std::move(execCount);

    if (!r.u64(n) || n > kMaxElems)
        return r.fail();
    ipiInbox_.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
        IpiArrival a{};
        if (!r.u8(a.vector) || !r.u64(a.when))
            return false;
        ipiInbox_.push_back(a);
    }

    if (!loadIntrRecord(r, currentRecord_) || !r.b(recordOpen_))
        return false;
    if (!r.u64(n) || n > kMaxElems)
        return r.fail();
    preemptFrames_.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
        PreemptFrame f{};
        if (!r.u32(f.resumePc) || !loadIntrRecord(r, f.record) ||
            !r.b(f.recordOpen))
            return false;
        preemptFrames_.push_back(std::move(f));
    }
    if (!r.u32(restoresInFlight_))
        return false;

    if (!r.b(ffMode_) || !r.b(ffDrainPending_) ||
        !r.u64(ffDetailUntil_) || !r.u64(ffIpcQ16_) ||
        !r.u64(ffFracQ16_) || !r.u64(ffCalibStartCycle_) ||
        !r.u64(ffCalibStartInsts_) || !r.u64(ffSpanStartInsts_))
        return false;

    if (!r.u64(stats_.cycles) || !r.u64(stats_.committedInsts) ||
        !r.u64(stats_.committedUops) || !r.u64(stats_.fetchedUops) ||
        !r.u64(stats_.issuedUops) || !r.u64(stats_.squashedUops) ||
        !r.u64(stats_.squashes) ||
        !r.u64(stats_.branchMispredicts) ||
        !r.u64(stats_.interruptsRaised) ||
        !r.u64(stats_.interruptsDelivered) ||
        !r.u64(stats_.reinjections) ||
        !r.u64(stats_.slowPathForwards) ||
        !r.u64(stats_.drainWaitCycles) ||
        !r.u64(stats_.preemptions) ||
        !r.u64(stats_.preemptRestores) || !r.u64(stats_.ffEntries) ||
        !r.u64(stats_.ffExits) || !r.u64(stats_.ffInsts) ||
        !r.u64(stats_.ffCycles))
        return false;
    if (!r.u64(n) || n > kMaxElems)
        return r.fail();
    stats_.intrRecords.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
        IntrRecord rec{};
        if (!loadIntrRecord(r, rec))
            return false;
        stats_.intrRecords.push_back(rec);
    }
    if (!r.u64(n) || n > kMaxElems)
        return r.fail();
    stats_.sendRecords.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
        SendRecord rec{};
        if (!r.u64(rec.dispatchedAt) || !r.u64(rec.icrCommitAt))
            return false;
        stats_.sendRecords.push_back(rec);
    }
    if (!r.u64(n) || n > kMaxElems)
        return r.fail();
    stats_.ffSpans.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
        FfSpan span{};
        if (!r.u64(span.enteredAt) || !r.u64(span.exitedAt) ||
            !r.u64(span.insts))
            return false;
        stats_.ffSpans.push_back(span);
    }

    if (!r.ok())
        return false;

    rebuildRenameTable();
    rebuildExecStructures();
    return true;
}

void
OooCore::rebuildExecStructures()
{
    // Readiness ring: a pure function of the live ROB. Slots are
    // invalidated on commit/squash, so only in-flight seqs may
    // occupy one. Un-issued entries read ~0 (not ready) exactly as
    // dispatchStage initializes them; issued entries carry their
    // writeback time (which persists after done, matching the live
    // structure).
    std::fill(ringSeq_.begin(), ringSeq_.end(), 0);
    std::fill(ringReadyAt_.begin(), ringReadyAt_.end(), ~Cycles(0));
    std::fill(ringEntry_.begin(), ringEntry_.end(), nullptr);
    for (auto &bucket : wbWheel_)
        bucket.clear();
    farWb_.clear();
    wbScratch_.clear();
    for (RobEntry &e : rob_) {
        std::size_t slot = e.seq & kRingMask;
        ringSeq_[slot] = e.seq;
        ringEntry_[slot] = &e;
        ringReadyAt_[slot] = e.issued ? e.readyAt : ~Cycles(0);
        // Completion wheel: only issued-but-incomplete entries are
        // awaiting writeback. Membership (wheel vs far list) follows
        // the same distance rule scheduleWriteback applies, relative
        // to the restored cycle; drain order is seq-sorted there, so
        // rebuild order is free.
        if (e.issued && !e.done) {
            if (e.readyAt - cycle_ < kWbSpan)
                wbWheel_[e.readyAt & kWbMask].push_back(e.seq);
            else
                farWb_.push_back(e.seq);
        }
    }
}

} // namespace xui
