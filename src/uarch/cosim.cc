#include "uarch/cosim.hh"

namespace xui
{

void
runCoSim(Simulation &sim, UarchSystem &sys, Cycles until)
{
    // Fire anything already due (DES clock may trail the cores').
    sim.runUntil(sys.now());
    while (sys.now() < until) {
        Cycles next = sim.queue().peekNextTime();
        Cycles stop = until;
        if (next != EventQueue::kNoPending && next < stop)
            stop = next;
        if (stop > sys.now())
            sys.run(stop - sys.now());
        // The cycle tier reached `stop`; release every DES event due
        // up to the new core time. Injections they perform land in
        // core inboxes timestamped >= now, so the next bulk advance
        // sees them as wake sources.
        sim.runUntil(sys.now());
    }
}

} // namespace xui
