/**
 * @file
 * Micro-Sequencing ROM (MSROM): the microcode routines behind UIPI
 * and xUI instructions, expressed as real micro-op sequences that
 * flow through the pipeline.
 *
 * Routine shapes follow the paper's reverse engineering (§3.3-3.5):
 *  - senduipi: 57 uops including a UITT load, a UPID read-modify-
 *    write (remote line), and a serializing ICR MSR write that
 *    accounts for the measured 279 stall cycles;
 *  - notification processing: UPID read (remote), vector transfer to
 *    UIRR, ON-bit clear;
 *  - user interrupt delivery: pushes SP/PC/vector (the SP *read* is
 *    what creates the paper's pathological dependence case, §6.1),
 *    clears UIF, jumps to the handler;
 *  - uiret: pops state, sets UIF, returns;
 *  - KB-timer / forwarded delivery enter directly at the delivery
 *    routine, skipping all UPID traffic (§4.3, §4.5).
 *
 * Micro-op counts and fixed overhead latencies are calibration
 * parameters (McodeParams), tuned so the simulated Table 2 / Figure 2
 * values match the paper's Sapphire Rapids measurements — the same
 * methodology the paper used to calibrate its gem5 model.
 */

#ifndef XUI_UARCH_MCROM_HH
#define XUI_UARCH_MCROM_HH

#include <cstdint>
#include <vector>

#include "uarch/op_types.hh"

namespace xui
{

/** Architectural side effect attached to a micro-op. */
enum class McodeEffect : std::uint8_t
{
    None,
    /** Sender: read the UITT entry (senduipi operand lookup). */
    ReadUitt,
    /** Sender: post the user vector into the target UPID (RMW). */
    PostUpid,
    /** Sender: write the ICR — emits the notification IPI. */
    WriteIcr,
    /** Receiver: read UPID.PIR into UIRR and clear ON. */
    ReadUpidToUirr,
    /** Receiver: clear UIF (delivery disables nested UIs). */
    ClearUif,
    /** Receiver: set UIF (stui / uiret re-enable). */
    SetUif,
    /** Receiver: fetch continues at the user handler. */
    JumpHandler,
    /** Receiver: fetch returns to the saved resume PC. */
    ReturnFromHandler,
    /** xUI: arm the KB timer (set_timer). */
    SetTimerArm,
    /** xUI: disarm the KB timer (clear_timer). */
    ClearTimerArm,
    /**
     * Priority preemption: the preempted handler's frame spill is
     * architectural. Commit of this micro-op marks the end of the
     * nested span's preempt-save window (its Inject point).
     */
    PreemptSaveDone,
    /**
     * Priority preemption: the restore routine's redirect — fetch
     * returns to the preempted handler and the nested span closes.
     */
    ResumeFromPreempt,
};

/** Memory semantics of a micro-op. */
enum class MemMode : std::uint8_t
{
    None,
    /** Normal access through the local hierarchy. */
    Local,
    /** Cross-core line (UPID): invalidate + remote sourcing. */
    Remote,
};

/** One micro-op as it flows through the pipeline. */
struct MicroOp
{
    OpClass cls = OpClass::Nop;
    std::uint8_t dest = reg::kNone;
    std::uint8_t src1 = reg::kNone;
    std::uint8_t src2 = reg::kNone;
    /** Last micro-op of its macro instruction. */
    bool eom = false;
    /** Belongs to the interrupt processing/delivery path. */
    bool fromIntrPath = false;
    /** Decoded-safepoint marker (paper §4.4 micro-op bit). */
    bool safepoint = false;
    McodeEffect effect = McodeEffect::None;
    MemMode mem = MemMode::None;
    /** Fixed address for microcode accesses (UPID/UITT/stack). */
    std::uint64_t addr = 0;
    /** Overrides the OpClass latency when nonzero. */
    std::uint16_t fixedLatency = 0;
};

/** Calibration parameters for the microcode routines. */
struct McodeParams
{
    /** senduipi: total micro-ops (paper: 57 through MSROM). */
    unsigned senduipiUops = 57;
    /** Serializing ICR write latency (paper: 279 stall cycles). */
    unsigned icrWriteLatency = 375;
    /** Notification-processing micro-op count. */
    unsigned notifyUops = 18;
    /** Delivery micro-op count (stack pushes, UIF, jump). */
    unsigned deliveryUops = 14;
    /**
     * Fixed microcode-entry overhead charged on the *flush* path
     * between squash completion and the first notification micro-op
     * (paper Fig. 2: 424 cycles between last program instruction and
     * first notification event; most of it is flush + MSROM entry).
     */
    unsigned flushUcodeEntryLatency = 430;
    /**
     * Microcode-entry overhead for tracked injection. Tracking
     * redirects the next-PC mux, so entry is nearly free (§4.2).
     */
    unsigned trackedUcodeEntryLatency = 2;
    /** Fixed extra latency of the delivery routine's first uop. */
    unsigned deliveryOverheadLatency = 45;
    /** uiret micro-op count. */
    unsigned uiretUops = 6;
    /**
     * Preempt-save micro-op count (priority preemption: spill the
     * running handler's frame before the nested delivery).
     */
    unsigned preemptSaveUops = 10;
    /** Preempt-restore micro-op count (pops + UIF + redirect). */
    unsigned preemptRestoreUops = 8;
    /** Fixed extra latency of the preempt-save routine's first uop
     *  (pipeline drain of the interrupted handler's tail). */
    unsigned preemptSaveOverheadLatency = 30;
    /** clui measured cost (Table 2: 2 cycles). */
    unsigned cluiLatency = 2;
    /** stui measured cost (Table 2: 32 cycles). */
    unsigned stuiLatency = 32;
    /** set_timer / clear_timer cost (MSR-class but user-level). */
    unsigned timerProgramLatency = 12;
    /** APIC-to-APIC wire latency for the notification IPI. */
    unsigned ipiWireLatency = 80;
};

/** Pre-built microcode routines, cloned into the pipeline on use. */
class Mcrom
{
  public:
    explicit Mcrom(const McodeParams &params = {});

    const McodeParams &params() const { return params_; }

    /** Sender path for senduipi (decoded from the macro-op). */
    const std::vector<MicroOp> &senduipi() const { return senduipi_; }

    /** Receiver: UIPI notification processing (reads the UPID). */
    const std::vector<MicroOp> &notify() const { return notify_; }

    /** Receiver: user interrupt delivery (stack pushes + jump). */
    const std::vector<MicroOp> &delivery() const { return delivery_; }

    /** uiret routine. */
    const std::vector<MicroOp> &uiret() const { return uiret_; }

    /** Priority preemption: spill the running handler's frame. */
    const std::vector<MicroOp> &preemptSave() const
    {
        return preemptSave_;
    }

    /** Priority preemption: restore the preempted handler. */
    const std::vector<MicroOp> &preemptRestore() const
    {
        return preemptRestore_;
    }

    /** clui / stui / testui / set_timer / clear_timer. */
    const std::vector<MicroOp> &clui() const { return clui_; }
    const std::vector<MicroOp> &stui() const { return stui_; }
    const std::vector<MicroOp> &setTimer() const { return setTimer_; }
    const std::vector<MicroOp> &clearTimer() const
    {
        return clearTimer_;
    }

    /** Synthetic shared addresses used by microcode accesses. */
    static constexpr std::uint64_t kUittBase = 0x7f00'0000'0000ull;
    static constexpr std::uint64_t kUpidBase = 0x7f10'0000'0000ull;
    static constexpr std::uint64_t kStackBase = 0x7f20'0000'0000ull;

  private:
    McodeParams params_;
    std::vector<MicroOp> senduipi_;
    std::vector<MicroOp> notify_;
    std::vector<MicroOp> delivery_;
    std::vector<MicroOp> uiret_;
    std::vector<MicroOp> preemptSave_;
    std::vector<MicroOp> preemptRestore_;
    std::vector<MicroOp> clui_;
    std::vector<MicroOp> stui_;
    std::vector<MicroOp> setTimer_;
    std::vector<MicroOp> clearTimer_;
};

} // namespace xui

#endif // XUI_UARCH_MCROM_HH
