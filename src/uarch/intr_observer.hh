/**
 * @file
 * Interrupt-lifecycle observation interface for the cycle tier.
 *
 * Every interrupt raised toward an InterruptUnit is stamped with a
 * monotonically increasing per-unit correlation id (its *span id*).
 * An IntrLifecycleObserver attached to a core receives one callback
 * per lifecycle stage transition carrying that id, so an external
 * tracker (src/obs/span.hh) can reassemble per-interrupt timelines —
 * raise -> accept -> inject (-> re-inject)* -> deliver -> return —
 * without the core keeping any extra state.
 *
 * Like the pipeline Tracer, observation is off (null pointer, zero
 * cost) unless attached.
 */

#ifndef XUI_UARCH_INTR_OBSERVER_HH
#define XUI_UARCH_INTR_OBSERVER_HH

#include <cstdint>
#include <vector>

#include "des/time.hh"
#include "uarch/interrupt_unit.hh"

namespace xui
{

/** Lifecycle stage transition of one interrupt span. */
enum class IntrStage : std::uint8_t
{
    /** Posted toward the unit (APIC arrival / timer expiry). */
    Raise,
    /** Popped from the pending queue; tracker leaves Idle. */
    Accept,
    /** Delivery microcode began streaming from the MSROM. */
    Inject,
    /** A squash killed uncommitted microcode; injected again. */
    Reinject,
    /** Delivery jump committed: the handler is architectural. */
    Deliver,
    /** uiret committed: the span is complete. */
    Return,
    /**
     * A higher-priority vector preempted the running handler: the
     * preempt-save microcode began spilling the handler frame. The
     * preempting span's save window runs from here to its Inject.
     */
    PreemptSave,
    /**
     * The preempt-restore microcode's redirect committed: the
     * preempted outer handler is running again. For a preempting
     * span this — not Return — completes the span (Return only
     * marks its uiret; the restore cost still belongs to it).
     */
    PreemptResume,
};

/** Number of IntrStage enumerators (for stage-indexed tables). */
constexpr unsigned kNumIntrStages =
    static_cast<unsigned>(IntrStage::PreemptResume) + 1;

/** Name of a lifecycle stage (stable strings for output/tests). */
const char *intrStageName(IntrStage st);

/** Receives interrupt-lifecycle stage transitions from an OooCore. */
class IntrLifecycleObserver
{
  public:
    virtual ~IntrLifecycleObserver() = default;

    /**
     * One stage transition.
     * @param stage which transition happened
     * @param span_id correlation id assigned at raise()
     * @param source where the interrupt came from
     * @param vector its user vector
     * @param cycle when (core-local cycle)
     * @param core_id which core observed it
     */
    virtual void intrStage(IntrStage stage, std::uint64_t span_id,
                           IntrSource source, std::uint8_t vector,
                           Cycles cycle, unsigned core_id) = 0;
};

/**
 * Fans one core-side observer slot out to several observers (the
 * lifecycle analog of TeeTracer): a core carries a single observer
 * pointer, but a session may want both span reassembly and
 * pipeline-pressure profiling on the same stream.
 */
class IntrObserverTee : public IntrLifecycleObserver
{
  public:
    /** Append a sink (ignored when null). Order is call order. */
    void add(IntrLifecycleObserver *obs)
    {
        if (obs != nullptr)
            sinks_.push_back(obs);
    }

    void
    intrStage(IntrStage stage, std::uint64_t span_id,
              IntrSource source, std::uint8_t vector, Cycles cycle,
              unsigned core_id) override
    {
        for (IntrLifecycleObserver *obs : sinks_)
            obs->intrStage(stage, span_id, source, vector, cycle,
                           core_id);
    }

  private:
    std::vector<IntrLifecycleObserver *> sinks_;
};

} // namespace xui

#endif // XUI_UARCH_INTR_OBSERVER_HH
