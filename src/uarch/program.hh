/**
 * @file
 * Static program representation for the cycle-level core: an array of
 * macro-ops indexed by PC, with declarative memory-address and branch
 * behaviour so synthetic workloads exercise the cache hierarchy and
 * branch predictor realistically.
 */

#ifndef XUI_UARCH_PROGRAM_HH
#define XUI_UARCH_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "uarch/op_types.hh"

namespace xui
{

/** Declarative dynamic-address generator attached to a memory op. */
struct AddrPattern
{
    AddrKind kind = AddrKind::None;
    std::uint64_t base = 0;
    std::uint64_t stride = 0;
    /** Range in bytes the generated addresses cover. */
    std::uint64_t range = 0;
};

/** Declarative dynamic-direction generator attached to a branch. */
struct BranchPattern
{
    BranchKind kind = BranchKind::None;
    /** Loop trip count (Loop) or taken probability (Random). */
    std::uint64_t count = 0;
    double probability = 0.0;
};

/** One static macro-instruction. */
struct MacroOp
{
    MacroOpcode opcode = MacroOpcode::Nop;
    std::uint8_t dest = reg::kNone;
    std::uint8_t src1 = reg::kNone;
    std::uint8_t src2 = reg::kNone;
    /** Branch target PC (index into the program). */
    std::uint32_t target = 0;
    AddrPattern addr;
    BranchPattern branch;
    /** Hardware-safepoint prefix (paper §4.4). */
    bool isSafepoint = false;
    /** Immediate operand (UITT index, timer cycles, etc.). */
    std::uint64_t imm = 0;
};

/**
 * A static program plus its entry points. Workload builders in
 * src/workloads construct these; ProgramBuilder provides the fluent
 * construction API.
 */
class Program
{
  public:
    /** The macro-op at a PC. @pre pc < size(). */
    const MacroOp &at(std::uint32_t pc) const { return ops_[pc]; }

    std::uint32_t size() const
    {
        return static_cast<std::uint32_t>(ops_.size());
    }

    /** Main-code entry PC. */
    std::uint32_t entry() const { return entry_; }

    /** User interrupt handler entry PC (kNoHandler when absent). */
    std::uint32_t handlerEntry() const { return handlerEntry_; }

    static constexpr std::uint32_t kNoHandler = 0xffffffff;

    const std::string &name() const { return name_; }

  private:
    friend class ProgramBuilder;

    std::vector<MacroOp> ops_;
    std::uint32_t entry_ = 0;
    std::uint32_t handlerEntry_ = kNoHandler;
    std::string name_;
};

/** Fluent builder used by the workload generators. */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(std::string name);

    /** Current next-PC (where the next appended op will land). */
    std::uint32_t here() const;

    /** Append a generic op; returns its PC. */
    std::uint32_t append(MacroOp op);

    /** Convenience emitters; all return the op's PC. */
    std::uint32_t intAlu(std::uint8_t dest, std::uint8_t src1,
                         std::uint8_t src2 = reg::kNone);
    std::uint32_t intMult(std::uint8_t dest, std::uint8_t src1,
                          std::uint8_t src2 = reg::kNone);
    std::uint32_t fpAlu(std::uint8_t dest, std::uint8_t src1,
                        std::uint8_t src2 = reg::kNone);
    std::uint32_t fpMult(std::uint8_t dest, std::uint8_t src1,
                         std::uint8_t src2 = reg::kNone);
    std::uint32_t load(std::uint8_t dest, AddrPattern addr,
                       std::uint8_t addr_src = reg::kNone);
    std::uint32_t store(std::uint8_t src, AddrPattern addr);
    std::uint32_t nop();
    std::uint32_t safepoint();
    std::uint32_t rdtsc(std::uint8_t dest);

    /** Backward loop branch: taken (count-1) times to `target`. */
    std::uint32_t loopBranch(std::uint32_t target,
                             std::uint64_t count);

    /** Unconditional jump. */
    std::uint32_t jump(std::uint32_t target);

    /** Random-direction conditional branch (taken w.p. p). */
    std::uint32_t randomBranch(std::uint32_t target, double p);

    /** UIPI / xUI instructions. */
    std::uint32_t sendUipi(std::uint64_t uitt_index);
    std::uint32_t clui();
    std::uint32_t stui();
    std::uint32_t uiret();
    std::uint32_t setTimer(std::uint64_t cycles, bool periodic);
    std::uint32_t clearTimer();
    std::uint32_t halt();

    /** Mark the current position as the interrupt handler entry. */
    void beginHandler();

    /** Mark the most recently appended op as a safepoint. */
    void markSafepoint();

    /** Finish; the builder must not be reused afterwards. */
    Program build();

  private:
    Program prog_;
};

} // namespace xui

#endif // XUI_UARCH_PROGRAM_HH
