/**
 * @file
 * Hybrid co-simulation driver: one DES Simulation (kernel / device /
 * network tier) lock-stepped with one UarchSystem (cycle tier).
 *
 * The naive coupling interleaves the two tiers every cycle, which
 * forces the cycle tier through its per-tick path even when the DES
 * queue is idle for thousands of cycles. runCoSim() instead advances
 * the cycle tier in bulk to just short of the next pending DES event
 * (Simulation::nextEventAt), then fires everything due. A core in
 * fast-forward mode gets whole inter-event regions as one
 * ffAdvance() call, and a quiesced core skips them outright; either
 * way the DES tier only runs when it actually has work.
 *
 * DES callbacks inject work into the cycle tier through the usual
 * entry points (UarchSystem::injectUipi, OooCore::receiveIpi /
 * deviceInterrupt). Arrivals posted with a wire latency of at least
 * CoreParams::ffWarmup are visible to the fast-forward controller
 * far enough ahead that the pipeline re-warms before the raise —
 * shorter wires still deliver correctly, but land in a colder
 * pipeline than a full-detail run would show.
 */

#ifndef XUI_UARCH_COSIM_HH
#define XUI_UARCH_COSIM_HH

#include "des/simulation.hh"
#include "uarch/uarch_system.hh"

namespace xui
{

/**
 * Run both tiers to absolute cycle `until` (cycle-tier clock).
 * DES events due at time T fire after the cycle tier has reached T,
 * so an event's injections are timestamped at or after T — the same
 * ordering a per-cycle interleave produces.
 */
void runCoSim(Simulation &sim, UarchSystem &sys, Cycles until);

} // namespace xui

#endif // XUI_UARCH_COSIM_HH
