#include "uarch/trace.hh"

namespace xui
{

const char *
traceEventName(TraceEvent ev)
{
    switch (ev) {
      case TraceEvent::Fetch:
        return "fetch";
      case TraceEvent::Dispatch:
        return "dispatch";
      case TraceEvent::Issue:
        return "issue";
      case TraceEvent::Complete:
        return "complete";
      case TraceEvent::Commit:
        return "commit";
      case TraceEvent::Squash:
        return "squash";
      case TraceEvent::IntrAccept:
        return "intr-accept";
      case TraceEvent::IntrInject:
        return "intr-inject";
      case TraceEvent::IntrDeliver:
        return "intr-deliver";
      case TraceEvent::IntrReturn:
        return "intr-return";
    }
    return "?";
}

namespace
{

const char *
opClassName(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu:
        return "IntAlu";
      case OpClass::IntMult:
        return "IntMult";
      case OpClass::FpAlu:
        return "FpAlu";
      case OpClass::FpMult:
        return "FpMult";
      case OpClass::MemRead:
        return "MemRead";
      case OpClass::MemWrite:
        return "MemWrite";
      case OpClass::Branch:
        return "Branch";
      case OpClass::SerializeMsr:
        return "SerializeMsr";
      case OpClass::McodeOverhead:
        return "Mcode";
      case OpClass::Rdtsc:
        return "Rdtsc";
      case OpClass::Nop:
        return "Nop";
    }
    return "?";
}

} // namespace

void
StreamTracer::event(TraceEvent ev, Cycles cycle, std::uint64_t seq,
                    std::uint32_t pc, OpClass cls)
{
    os_ << cycle << ": " << traceEventName(ev);
    if (seq != 0) {
        os_ << " sn:" << seq << " pc:";
        if (pc == 0xffffffffu)
            os_ << "ucode";
        else
            os_ << pc;
        os_ << ' ' << opClassName(cls);
    }
    os_ << '\n';
}

void
TeeTracer::attach(Tracer *sink)
{
    if (sink != nullptr)
        sinks_.push_back(sink);
}

void
TeeTracer::event(TraceEvent ev, Cycles cycle, std::uint64_t seq,
                 std::uint32_t pc, OpClass cls)
{
    for (Tracer *sink : sinks_)
        sink->event(ev, cycle, seq, pc, cls);
}

} // namespace xui
