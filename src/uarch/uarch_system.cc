#include "uarch/uarch_system.hh"

#include <algorithm>
#include <cassert>

namespace xui
{

UarchSystem::UarchSystem(std::uint64_t seed)
    : master_(seed)
{}

OooCore &
UarchSystem::addCore(const CoreParams &params, const Program *program)
{
    auto core = std::make_unique<OooCore>(
        static_cast<unsigned>(cores_.size()), params, program,
        master_.split());
    core->setSystem(this);
    core->setTracer(tracer_);
    core->setIntrObserver(intrObs_);
    cores_.push_back(std::move(core));
    return *cores_.back();
}

void
UarchSystem::setTracer(Tracer *tracer)
{
    tracer_ = tracer;
    for (auto &core : cores_)
        core->setTracer(tracer);
}

void
UarchSystem::setIntrObserver(IntrLifecycleObserver *obs)
{
    intrObs_ = obs;
    for (auto &core : cores_)
        core->setIntrObserver(obs);
}

int
UarchSystem::registerRoute(OooCore &receiver,
                           std::uint8_t user_vector)
{
    Upid &upid = receiver.upid();
    upid.setNotificationVector(receiver.uinv());
    upid.setDestination(receiver.id());
    return uitt_.allocate(&upid, user_vector);
}

void
UarchSystem::senduipiCommit(OooCore &sender,
                            std::uint64_t uitt_index)
{
    const UittEntry *entry =
        uitt_.lookup(static_cast<int>(uitt_index));
    if (entry == nullptr)
        return;  // invalid index: senduipi faults; timing unchanged
    Upid::PostResult result = entry->upid->post(entry->userVector);
    if (!result.sendIpi)
        return;
    std::uint32_t dest = entry->upid->destination();
    assert(dest < cores_.size());
    Cycles wire = sender.params().mcode.ipiWireLatency;
    cores_[dest]->receiveIpi(entry->upid->notificationVector(),
                             sender.now() + wire);
}

void
UarchSystem::injectUipi(OooCore &receiver, std::uint8_t user_vector)
{
    Upid &upid = receiver.upid();
    Upid::PostResult result = upid.post(user_vector);
    if (!result.sendIpi)
        return;
    receiver.receiveIpi(upid.notificationVector(),
                        receiver.now() + 1);
}

void
UarchSystem::tick()
{
    for (auto &core : cores_)
        core->tick();
}

void
UarchSystem::run(Cycles n)
{
    if (cores_.empty())
        return;
    // A single-core system runs through the core's own loop, which
    // carries both the quiesced skip and the fast-forward bulk path
    // (the lockstep scan below degenerates to the same decisions,
    // one virtual-call layer slower).
    if (cores_.size() == 1) {
        cores_[0]->runCycles(n);
        return;
    }
    Cycles end = cores_[0]->now() + n;
    const std::size_t n_cores = cores_.size();
    while (cores_[0]->now() < end) {
        // Cores tick in lockstep; when every core is provably idle,
        // jump all clocks to the earliest wake source in one step.
        // One pass folds the quiesced check and the min-wake
        // computation; the scan starts at the last core seen active
        // (scanHint_), so a region with one busy core vetoes the
        // jump after a single quiesced() test instead of rescanning
        // the idle cores in front of it every cycle.
        bool all_quiesced = true;
        Cycles wake = OooCore::kNoWake;
        for (std::size_t i = 0; i < n_cores; ++i) {
            std::size_t idx = scanHint_ + i;
            if (idx >= n_cores)
                idx -= n_cores;
            OooCore &core = *cores_[idx];
            if (!core.params().tickSkip || !core.quiesced()) {
                all_quiesced = false;
                scanHint_ = idx;
                break;
            }
            wake = std::min(wake, core.nextWakeCycle());
        }
        if (all_quiesced) {
            Cycles to = wake == OooCore::kNoWake
                            ? end
                            : std::min(wake - 1, end);
            if (to > cores_[0]->now()) {
                for (auto &core : cores_)
                    core->skipTo(to);
                if (cores_[0]->now() >= end)
                    break;
            }
        }
        tick();
    }
}

Cycles
UarchSystem::now() const
{
    return cores_.empty() ? 0 : cores_[0]->now();
}

} // namespace xui
