#include "uarch/intr_observer.hh"

namespace xui
{

const char *
intrStageName(IntrStage st)
{
    switch (st) {
      case IntrStage::Raise:
        return "raise";
      case IntrStage::Accept:
        return "accept";
      case IntrStage::Inject:
        return "inject";
      case IntrStage::Reinject:
        return "reinject";
      case IntrStage::Deliver:
        return "deliver";
      case IntrStage::Return:
        return "return";
      case IntrStage::PreemptSave:
        return "preempt_save";
      case IntrStage::PreemptResume:
        return "preempt_resume";
    }
    return "?";
}

} // namespace xui
