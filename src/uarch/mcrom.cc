#include "uarch/mcrom.hh"

#include <cassert>

namespace xui
{

namespace
{

MicroOp
overheadUop()
{
    MicroOp u;
    u.cls = OpClass::McodeOverhead;
    return u;
}

} // namespace

Mcrom::Mcrom(const McodeParams &params)
    : params_(params)
{
    // ----- senduipi --------------------------------------------------
    // Structure per §3.3 step 1-2: UITT lookup (load), UPID
    // read-modify-write (remote line: the receiver core owned it),
    // ICR MSR write (serializing), padded with sequencing overhead
    // uops to reach the measured MSROM uop count.
    {
        assert(params_.senduipiUops >= 6);
        MicroOp uitt;
        uitt.cls = OpClass::MemRead;
        uitt.dest = reg::kUtmp0;
        uitt.mem = MemMode::Local;
        uitt.addr = kUittBase;
        uitt.effect = McodeEffect::ReadUitt;
        senduipi_.push_back(uitt);

        MicroOp upid_read;
        upid_read.cls = OpClass::MemRead;
        upid_read.dest = reg::kUtmp0 + 1;
        upid_read.src1 = reg::kUtmp0;
        upid_read.mem = MemMode::Remote;
        upid_read.addr = kUpidBase;
        senduipi_.push_back(upid_read);

        MicroOp upid_write;
        upid_write.cls = OpClass::MemWrite;
        upid_write.src1 = reg::kUtmp0 + 1;
        upid_write.mem = MemMode::Local;
        upid_write.addr = kUpidBase;
        upid_write.effect = McodeEffect::PostUpid;
        senduipi_.push_back(upid_write);

        unsigned pad = params_.senduipiUops - 4;
        for (unsigned i = 0; i < pad; ++i)
            senduipi_.push_back(overheadUop());

        MicroOp icr;
        icr.cls = OpClass::SerializeMsr;
        icr.src1 = reg::kUtmp0 + 1;
        icr.fixedLatency =
            static_cast<std::uint16_t>(params_.icrWriteLatency);
        icr.effect = McodeEffect::WriteIcr;
        icr.eom = true;
        senduipi_.push_back(icr);
    }

    // The receiver-side routines are built as serial dependency
    // chains (each micro-op consumes its predecessor's destination):
    // microcode sequencing is not superscalar on real hardware, and
    // the routine's *execution* time is what gates the program-fetch
    // resume (the uiret target is data-dependent), which is how the
    // paper's measured 105/231-cycle receiver costs arise.
    const std::uint8_t chain_a = reg::kUtmp0 + 2;
    const std::uint8_t chain_b = reg::kUtmp0 + 3;

    // ----- notification processing (§3.3 step 4) ---------------------
    // Reads the current thread's UPID (remote: the sender just wrote
    // it), transfers PIR to UIRR, clears ON.
    {
        assert(params_.notifyUops >= 4);
        MicroOp upid_read;
        upid_read.cls = OpClass::MemRead;
        upid_read.dest = chain_a;
        upid_read.mem = MemMode::Remote;
        upid_read.addr = kUpidBase;
        upid_read.fromIntrPath = true;
        notify_.push_back(upid_read);

        MicroOp to_uirr;
        to_uirr.cls = OpClass::IntAlu;
        to_uirr.dest = chain_b;
        to_uirr.src1 = chain_a;
        to_uirr.effect = McodeEffect::ReadUpidToUirr;
        to_uirr.fromIntrPath = true;
        notify_.push_back(to_uirr);

        MicroOp clear_on;
        clear_on.cls = OpClass::MemWrite;
        clear_on.src1 = chain_b;
        clear_on.mem = MemMode::Local;
        clear_on.addr = kUpidBase;
        clear_on.fromIntrPath = true;
        notify_.push_back(clear_on);

        unsigned pad = params_.notifyUops - 3;
        std::uint8_t prev = chain_b;
        for (unsigned i = 0; i < pad; ++i) {
            MicroOp u = overheadUop();
            u.fromIntrPath = true;
            u.src1 = prev;
            u.dest = (prev == chain_a) ? chain_b : chain_a;
            prev = u.dest;
            notify_.push_back(u);
        }
    }

    // ----- user interrupt delivery (§3.3 step 5) ----------------------
    // Pushes SP, PC and the vector onto the user stack (the SP read
    // is a real register source -> the §6.1 pathological dependence),
    // clears UIF, updates UIRR, jumps to the handler. The jump is the
    // chain tail: program fetch resumes at the handler only once the
    // routine has executed.
    {
        assert(params_.deliveryUops >= 7);
        MicroOp first = overheadUop();
        first.fromIntrPath = true;
        first.dest = chain_a;
        // Serialize behind the notification routine when one ran
        // (its chain registers are the sources); for KB-timer /
        // forwarded delivery these registers are long since ready.
        first.src1 = chain_a;
        first.src2 = chain_b;
        first.fixedLatency = static_cast<std::uint16_t>(
            params_.deliveryOverheadLatency);
        delivery_.push_back(first);

        std::uint8_t prev = chain_a;
        for (unsigned i = 0; i < 3; ++i) {
            MicroOp push;
            push.cls = OpClass::MemWrite;
            push.src1 = reg::kSp;   // depends on the program's SP
            push.src2 = prev;
            push.mem = MemMode::Local;
            push.addr = kStackBase + 8 * i;
            push.fromIntrPath = true;
            delivery_.push_back(push);
        }

        MicroOp clr_uif;
        clr_uif.cls = OpClass::IntAlu;
        clr_uif.src1 = prev;
        // Delivery cannot complete before the frame is saved; the
        // saved SP gates the rest of the routine (this is what makes
        // the §6.1 SP-feeding chain pathological).
        clr_uif.src2 = reg::kSp;
        clr_uif.dest = chain_b;
        clr_uif.effect = McodeEffect::ClearUif;
        clr_uif.fromIntrPath = true;
        delivery_.push_back(clr_uif);
        prev = chain_b;

        unsigned pad = params_.deliveryUops - 6;
        for (unsigned i = 0; i < pad; ++i) {
            MicroOp u = overheadUop();
            u.fromIntrPath = true;
            u.src1 = prev;
            u.dest = (prev == chain_a) ? chain_b : chain_a;
            prev = u.dest;
            delivery_.push_back(u);
        }

        MicroOp jump;
        jump.cls = OpClass::Branch;
        jump.src1 = prev;
        jump.effect = McodeEffect::JumpHandler;
        jump.fromIntrPath = true;
        jump.eom = true;
        delivery_.push_back(jump);
    }

    // ----- uiret -------------------------------------------------------
    // Pops the saved SP/PC; the return target is data-dependent, so
    // the final redirect fires at execute, serialized behind the
    // pops.
    {
        assert(params_.uiretUops >= 4);
        std::uint8_t prev = reg::kNone;
        for (unsigned i = 0; i < 2; ++i) {
            MicroOp pop;
            pop.cls = OpClass::MemRead;
            pop.dest = i == 0 ? chain_a : chain_b;
            pop.src1 = prev;
            pop.mem = MemMode::Local;
            pop.addr = kStackBase + 8 * i;
            uiret_.push_back(pop);
            prev = pop.dest;
        }
        MicroOp set_uif;
        set_uif.cls = OpClass::IntAlu;
        set_uif.src1 = prev;
        set_uif.dest = chain_a;
        set_uif.effect = McodeEffect::SetUif;
        uiret_.push_back(set_uif);
        prev = chain_a;

        unsigned pad = params_.uiretUops - 4;
        for (unsigned i = 0; i < pad; ++i) {
            MicroOp u = overheadUop();
            u.src1 = prev;
            u.dest = (prev == chain_a) ? chain_b : chain_a;
            prev = u.dest;
            uiret_.push_back(u);
        }

        MicroOp ret;
        ret.cls = OpClass::Branch;
        ret.src1 = prev;
        ret.effect = McodeEffect::ReturnFromHandler;
        ret.eom = true;
        uiret_.push_back(ret);
    }

    // ----- preempt save (priority preemption) ---------------------------
    // A higher-priority vector interrupts the running handler: spill
    // the handler's frame (second stack slot group) before the nested
    // delivery routine runs. The chain-tail PreemptSaveDone marks the
    // spill architectural; delivery serializes behind it through the
    // shared chain registers.
    {
        assert(params_.preemptSaveUops >= 6);
        MicroOp first = overheadUop();
        first.fromIntrPath = true;
        first.dest = chain_a;
        first.fixedLatency = static_cast<std::uint16_t>(
            params_.preemptSaveOverheadLatency);
        preemptSave_.push_back(first);

        std::uint8_t prev = chain_a;
        for (unsigned i = 0; i < 3; ++i) {
            MicroOp push;
            push.cls = OpClass::MemWrite;
            push.src1 = reg::kSp;
            push.src2 = prev;
            push.mem = MemMode::Local;
            push.addr = kStackBase + 0x40 + 8 * i;
            push.fromIntrPath = true;
            preemptSave_.push_back(push);
        }

        unsigned pad = params_.preemptSaveUops - 5;
        for (unsigned i = 0; i < pad; ++i) {
            MicroOp u = overheadUop();
            u.fromIntrPath = true;
            u.src1 = prev;
            u.dest = (prev == chain_a) ? chain_b : chain_a;
            prev = u.dest;
            preemptSave_.push_back(u);
        }

        MicroOp done;
        done.cls = OpClass::IntAlu;
        done.src1 = prev;
        done.src2 = reg::kSp;
        done.dest = (prev == chain_a) ? chain_b : chain_a;
        done.effect = McodeEffect::PreemptSaveDone;
        done.fromIntrPath = true;
        preemptSave_.push_back(done);
    }

    // ----- preempt restore ----------------------------------------------
    // After the nested handler's uiret: pop the preempted frame,
    // re-clear UIF (the outer handler ran with delivery disabled) and
    // redirect fetch back into it. The redirect is the chain tail,
    // like uiret's: the resume target is data-dependent on the pops.
    {
        assert(params_.preemptRestoreUops >= 5);
        std::uint8_t prev = reg::kNone;
        for (unsigned i = 0; i < 2; ++i) {
            MicroOp pop;
            pop.cls = OpClass::MemRead;
            pop.dest = i == 0 ? chain_a : chain_b;
            pop.src1 = prev;
            pop.mem = MemMode::Local;
            pop.addr = kStackBase + 0x40 + 8 * i;
            pop.fromIntrPath = true;
            preemptRestore_.push_back(pop);
            prev = pop.dest;
        }
        MicroOp clr_uif;
        clr_uif.cls = OpClass::IntAlu;
        clr_uif.src1 = prev;
        clr_uif.dest = chain_a;
        clr_uif.effect = McodeEffect::ClearUif;
        clr_uif.fromIntrPath = true;
        preemptRestore_.push_back(clr_uif);
        prev = chain_a;

        unsigned pad = params_.preemptRestoreUops - 4;
        for (unsigned i = 0; i < pad; ++i) {
            MicroOp u = overheadUop();
            u.fromIntrPath = true;
            u.src1 = prev;
            u.dest = (prev == chain_a) ? chain_b : chain_a;
            prev = u.dest;
            preemptRestore_.push_back(u);
        }

        MicroOp res;
        res.cls = OpClass::Branch;
        res.src1 = prev;
        res.effect = McodeEffect::ResumeFromPreempt;
        res.fromIntrPath = true;
        res.eom = true;
        preemptRestore_.push_back(res);
    }

    // ----- clui / stui --------------------------------------------------
    {
        MicroOp u;
        u.cls = OpClass::IntAlu;
        u.effect = McodeEffect::ClearUif;
        u.fixedLatency =
            static_cast<std::uint16_t>(params_.cluiLatency);
        u.eom = true;
        clui_.push_back(u);
    }
    {
        MicroOp u;
        u.cls = OpClass::SerializeMsr;
        u.effect = McodeEffect::SetUif;
        u.fixedLatency =
            static_cast<std::uint16_t>(params_.stuiLatency);
        u.eom = true;
        stui_.push_back(u);
    }

    // ----- set_timer / clear_timer (xUI, §4.3) --------------------------
    {
        MicroOp u;
        u.cls = OpClass::IntAlu;
        u.effect = McodeEffect::SetTimerArm;
        u.fixedLatency =
            static_cast<std::uint16_t>(params_.timerProgramLatency);
        u.eom = true;
        setTimer_.push_back(u);
    }
    {
        MicroOp u;
        u.cls = OpClass::IntAlu;
        u.effect = McodeEffect::ClearTimerArm;
        u.fixedLatency =
            static_cast<std::uint16_t>(params_.timerProgramLatency);
        u.eom = true;
        clearTimer_.push_back(u);
    }
}

} // namespace xui
