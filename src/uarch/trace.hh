/**
 * @file
 * Pipeline tracing for the cycle-level core — the equivalent of
 * gem5's Exec/O3 debug traces. A Tracer attached to an OooCore
 * receives one event per micro-op per stage plus interrupt-unit
 * transitions; StreamTracer renders them as text for debugging, and
 * tests use recording tracers to assert stage ordering.
 *
 * Tracing is off (null pointer, zero cost) unless attached.
 */

#ifndef XUI_UARCH_TRACE_HH
#define XUI_UARCH_TRACE_HH

#include <cstdint>
#include <ostream>
#include <vector>

#include "des/time.hh"
#include "uarch/op_types.hh"

namespace xui
{

/** Pipeline stage / event kind for trace records. */
enum class TraceEvent : std::uint8_t
{
    Fetch,
    Dispatch,
    Issue,
    Complete,
    Commit,
    Squash,
    IntrAccept,
    IntrInject,
    IntrDeliver,
    IntrReturn,
};

/** Number of TraceEvent enumerators (for tables indexed by event). */
constexpr unsigned kNumTraceEvents =
    static_cast<unsigned>(TraceEvent::IntrReturn) + 1;

/** Name of a trace event (stable strings for output/tests). */
const char *traceEventName(TraceEvent ev);

/** Receives pipeline events from an OooCore. */
class Tracer
{
  public:
    virtual ~Tracer() = default;

    /**
     * One event.
     * @param ev what happened
     * @param cycle when
     * @param seq dynamic micro-op sequence number (0 for
     *        interrupt-unit events)
     * @param pc macro PC (0xffffffff for injected microcode)
     * @param cls micro-op class (Nop for interrupt-unit events)
     */
    virtual void event(TraceEvent ev, Cycles cycle,
                       std::uint64_t seq, std::uint32_t pc,
                       OpClass cls) = 0;
};

/** Text tracer: one line per event, gem5-exec-trace flavoured. */
class StreamTracer : public Tracer
{
  public:
    explicit StreamTracer(std::ostream &os) : os_(os) {}

    void event(TraceEvent ev, Cycles cycle, std::uint64_t seq,
               std::uint32_t pc, OpClass cls) override;

  private:
    std::ostream &os_;
};

/**
 * Fan-out tracer: forwards every event to each attached sink in
 * attachment order. Lets a core feed a digest, a recorder, and a
 * text log simultaneously (the verify subsystem does exactly that).
 */
class TeeTracer : public Tracer
{
  public:
    /** Attach a sink; nullptr is ignored. Not owned. */
    void attach(Tracer *sink);

    std::size_t numSinks() const { return sinks_.size(); }

    void event(TraceEvent ev, Cycles cycle, std::uint64_t seq,
               std::uint32_t pc, OpClass cls) override;

  private:
    std::vector<Tracer *> sinks_;
};

} // namespace xui

#endif // XUI_UARCH_TRACE_HH
