#include "uarch/ooo_core.hh"

#include <algorithm>
#include <cassert>

#include "uarch/uarch_system.hh"

namespace xui
{

OooCore::OooCore(unsigned id, const CoreParams &params,
                 const Program *program, Rng rng)
    : id_(id),
      params_(params),
      program_(program),
      rng_(rng),
      mcrom_(params.mcode),
      mem_(params.mem),
      predictor_(params.predictorTableBits,
                 params.predictorHistoryBits),
      fetchPc_(program->entry()),
      resumePc_(program->entry()),
      lastCommittedNextPc_(program->entry()),
      renameTable_(reg::kCount, 0),
      execCount_(program->size(), 0),
      ringSeq_(kRingSize, 0),
      ringReadyAt_(kRingSize, 0),
      ringEntry_(kRingSize, nullptr),
      wbWheel_(kWbSpan)
{
    assert(program != nullptr);
    iqList_.reserve(512);
}

bool
OooCore::halted() const
{
    return fetchHalted_ && rob_.empty() && fetchBuffer_.empty();
}

void
OooCore::receiveIpi(std::uint8_t vector, Cycles when)
{
    ipiInbox_.push_back(IpiArrival{vector, when});
}

void
OooCore::deviceInterrupt(std::uint8_t vector)
{
    ForwardOutcome outcome = forwarding_.onInterrupt(vector);
    switch (outcome) {
      case ForwardOutcome::FastPath: {
        std::uint64_t span =
            intr_.raise(IntrSource::Forwarded, vector, cycle_);
        if (span != 0) {
            observe(IntrStage::Raise, span, IntrSource::Forwarded,
                    vector);
            ++stats_.interruptsRaised;
        }
        break;
      }
      case ForwardOutcome::SlowPath:
        dupid_.post(vector);
        ++stats_.slowPathForwards;
        break;
      case ForwardOutcome::NotForwarded:
        // Conventional kernel interrupt; outside this tier's scope.
        break;
    }
}

unsigned
OooCore::fuPoolOf(OpClass cls) const
{
    switch (cls) {
      case OpClass::IntMult:
        return 1;
      case OpClass::FpAlu:
      case OpClass::FpMult:
        return 2;
      case OpClass::MemRead:
        return 3;
      case OpClass::MemWrite:
        return 4;
      default:
        return 0;
    }
}

unsigned
OooCore::classLatency(const MicroOp &uop) const
{
    if (uop.fixedLatency)
        return uop.fixedLatency;
    const ExecParams &e = params_.exec;
    switch (uop.cls) {
      case OpClass::IntAlu:
        return e.intAluLatency;
      case OpClass::IntMult:
        return e.intMultLatency;
      case OpClass::FpAlu:
        return e.fpAluLatency;
      case OpClass::FpMult:
        return e.fpMultLatency;
      case OpClass::Branch:
        return e.branchLatency;
      case OpClass::Rdtsc:
        return e.rdtscLatency;
      case OpClass::MemWrite:
        return e.storeLatency;
      case OpClass::Nop:
        return e.nopLatency;
      case OpClass::McodeOverhead:
        return e.mcodeLatency;
      case OpClass::SerializeMsr:
        return 1;
      case OpClass::MemRead:
        return 1;  // actual latency computed at issue
    }
    return 1;
}

void
OooCore::tick()
{
    if (ffMode_) {
        // Sampled-detail mode: hand back to the detailed pipeline
        // ffWarmup cycles ahead of the next predicted interrupt
        // arrival (so the window around the lifecycle runs with a
        // warm pipeline), or immediately when something was raised
        // externally while fast-forwarding.
        Cycles wake = nextWakeCycle();
        bool event_near = wake != kNoWake &&
                          wake <= cycle_ + 1 + params_.ffWarmup;
        if (event_near || intr_.pendingAvailable() || intr_.busy())
            exitFastForward();
        else {
            ffTick();
            return;
        }
    }

    ++cycle_;
    ++stats_.cycles;

    // Refill per-cycle functional-unit tokens.
    fuTokens_[0] = params_.exec.intAluUnits;
    fuTokens_[1] = params_.exec.intMultUnits;
    fuTokens_[2] = params_.exec.fpUnits;
    fuTokens_[3] = params_.exec.loadPorts;
    fuTokens_[4] = params_.exec.storePorts;

    // Interrupt arrivals at the local APIC.
    while (!ipiInbox_.empty() && ipiInbox_.front().when <= cycle_) {
        IpiArrival a = ipiInbox_.front();
        ipiInbox_.pop_front();
        if (a.vector == uinv_) {
            std::uint64_t span =
                intr_.raise(IntrSource::UserIpi, a.vector, cycle_);
            if (span != 0) {
                observe(IntrStage::Raise, span, IntrSource::UserIpi,
                        a.vector);
                ++stats_.interruptsRaised;
            }
        } else {
            deviceInterrupt(a.vector);
        }
    }

    // KB timer expiry (one pending firing at a time, like an IRR
    // bit: repeated expirations collapse).
    if (kbTimer_.expired(cycle_)) {
        bool already = false;
        if (intr_.busy() &&
            intr_.current().source == IntrSource::KbTimer)
            already = true;
        kbTimer_.acknowledge();
        if (!already) {
            std::uint64_t span = intr_.raise(
                IntrSource::KbTimer, kbTimer_.vector(), cycle_);
            if (span != 0) {
                observe(IntrStage::Raise, span, IntrSource::KbTimer,
                        kbTimer_.vector());
                ++stats_.interruptsRaised;
            }
        }
    }

    commitStage();
    writebackStage();
    issueStage();
    dispatchStage();
    checkInterruptAccept();
    fetchStage();

    // End-of-tick observation: every lifecycle callback of this
    // cycle has already fired, so a hook sees a consistent
    // (cycle, open-span, occupancy) snapshot. Read-only by
    // contract; the fast path is two integer compares against
    // owner-maintained absolute marks (no per-tick mutation).
    if (cycleHook_ != nullptr) {
        bool live = cycleHook_->liveSpans != 0;
        bool sampled = cycle_ >= cycleHook_->nextSampleAt;
        if (live || sampled)
            cycleHook_->onCycle(*this, sampled, live);
    }

    if (params_.fastForward)
        maybeEnterFastForward();
}

bool
OooCore::quiesced() const
{
    return fetchHalted_ && rob_.empty() && fetchBuffer_.empty() &&
           ucodeQueue_.empty() && !drainWaiting_ &&
           !awaitRedirect_ && !intr_.busy() && !intr_.canAccept();
}

Cycles
OooCore::nextWakeCycle() const
{
    Cycles w = kNoWake;
    if (kbTimer_.enabled() && kbTimer_.armed())
        w = std::max(kbTimer_.deadline(), cycle_ + 1);
    for (const IpiArrival &a : ipiInbox_)
        w = std::min(w, std::max(a.when, cycle_ + 1));
    return w;
}

void
OooCore::skipTo(Cycles c)
{
    assert(c >= cycle_);
    stats_.cycles += c - cycle_;
    cycle_ = c;
}

void
OooCore::runCycles(Cycles n)
{
    Cycles end = cycle_ + n;
    while (cycle_ < end) {
        if (ffMode_) {
            // Bulk functional run: covers the whole gap to the next
            // predicted event (or the horizon) without the per-tick
            // dispatch overhead.
            ffAdvance(end);
            if (cycle_ >= end)
                break;
        } else if (params_.tickSkip && quiesced()) {
            // Idle until the next wake source (or the horizon):
            // every skipped tick would only have bumped counters.
            Cycles w = nextWakeCycle();
            Cycles to = w == kNoWake ? end : std::min(w - 1, end);
            if (to > cycle_) {
                skipTo(to);
                if (cycle_ >= end)
                    break;
            }
        }
        tick();
    }
}

Cycles
OooCore::runUntilCommitted(std::uint64_t insts, Cycles max_cycles)
{
    Cycles start = cycle_;
    std::uint64_t target = stats_.committedInsts + insts;
    while (stats_.committedInsts < target &&
           cycle_ - start < max_cycles && !halted()) {
        if (ffMode_) {
            // Bound the bulk run by the cycles the IPC model
            // expects the remaining instructions to take, so the
            // functional loop overshoots the commit target by at
            // most one chunk.
            Cycles left = max_cycles - (cycle_ - start);
            std::uint64_t rem = target - stats_.committedInsts;
            Cycles est = ((rem << 16) / ffIpcQ16_) + 1;
            ffAdvance(cycle_ + std::min(left, est));
            if (stats_.committedInsts >= target)
                break;
        }
        tick();
    }
    return cycle_ - start;
}

// ---------------------------------------------------------------------
// Fast-forward (sampled-detail) controller
// ---------------------------------------------------------------------

void
OooCore::maybeEnterFastForward()
{
    // The detail window must have expired, with no interrupt work
    // in any stage of its lifecycle. A halted core is left to the
    // cheaper quiesced-skip machinery.
    if (cycle_ < ffDetailUntil_ || fetchHalted_ || intr_.busy() ||
        intr_.pendingAvailable() || drainWaiting_ ||
        restoresInFlight_ != 0) {
        ffDrainPending_ = false;
        return;
    }
    // The profiler's burst window pins detail: sampled-detail runs
    // keep full fidelity wherever the sampler is bursting.
    if (cycleHook_ != nullptr &&
        cycleHook_->wantDetailUntil > cycle_) {
        ffDrainPending_ = false;
        return;
    }
    // Gaps too short to amortize the drain + re-warm round trip
    // stay detailed.
    Cycles wake = nextWakeCycle();
    if (wake != kNoWake &&
        wake <= cycle_ + params_.ffWarmup + kFfMinRegion) {
        ffDrainPending_ = false;
        return;
    }
    // Gate program fetch and wait for the pipeline to empty: the
    // architectural state (fetchPc_, execCount_, timer, caches) is
    // then the whole handoff.
    ffDrainPending_ = true;
    if (rob_.empty() && fetchBuffer_.empty() &&
        ucodeQueue_.empty() && !awaitRedirect_ &&
        frontendStallUntil_ <= cycle_) {
        if (ffTransitionHook_) {
            Cycles pin = ffTransitionHook_(true, cycle_);
            if (pin > 0) {
                // The fault fabric pinned detail at the boundary:
                // abort this entry and stay detailed.
                ffDetailUntil_ =
                    std::max(ffDetailUntil_, cycle_ + pin);
                ffDrainPending_ = false;
                return;
            }
        }
        enterFastForward();
    }
}

void
OooCore::enterFastForward()
{
    assert(rob_.empty() && fetchBuffer_.empty() &&
           ucodeQueue_.empty() && !onWrongPath_);
    ffDrainPending_ = false;
    ffMode_ = true;
    // Calibrate the IPC model from the detailed phase just ended.
    Cycles dc = cycle_ - ffCalibStartCycle_;
    std::uint64_t di = stats_.committedInsts - ffCalibStartInsts_;
    if (di >= kFfCalibMinInsts && dc > 0) {
        std::uint64_t q = (di << 16) / dc;
        ffIpcQ16_ = std::clamp(q, kFfMinIpcQ16, kFfMaxIpcQ16);
    }
    ffFracQ16_ = 0;
    ++stats_.ffEntries;
    ffSpanStartInsts_ = stats_.ffInsts;
    stats_.ffSpans.push_back(FfSpan{cycle_, 0, 0});
}

void
OooCore::exitFastForward()
{
    if (!ffMode_)
        return;
    ffMode_ = false;
    ++stats_.ffExits;
    FfSpan &span = stats_.ffSpans.back();
    span.exitedAt = cycle_;
    span.insts = stats_.ffInsts - ffSpanStartInsts_;
    // The detailed phase starting now is the next IPC sample.
    ffCalibStartCycle_ = cycle_;
    ffCalibStartInsts_ = stats_.committedInsts;
    if (ffTransitionHook_) {
        Cycles pin = ffTransitionHook_(false, cycle_);
        if (pin > 0)
            ffDetailUntil_ = std::max(ffDetailUntil_, cycle_ + pin);
    }
}

bool
OooCore::ffExecuteOne()
{
    const MacroOp &op = program_->at(fetchPc_);
    std::uint32_t pc = fetchPc_;
    switch (op.opcode) {
      case MacroOpcode::Halt:
        // Halt never commits a micro-op in detail mode either; the
        // rest of the region is idle time.
        fetchHalted_ = true;
        return false;
      case MacroOpcode::SendUipi:
      case MacroOpcode::Uiret:
      case MacroOpcode::Clui:
      case MacroOpcode::Stui:
      case MacroOpcode::TestUi:
      case MacroOpcode::SetTimer:
      case MacroOpcode::ClearTimer:
        // Microcoded: timer arms, UIF changes, and notifications
        // must run through the detailed pipeline. fetchPc_ is left
        // pointing at the op, so detail picks it up verbatim.
        exitFastForward();
        return false;
      case MacroOpcode::Load:
      case MacroOpcode::Store:
        // Architectural address-stream side effects (execCount_,
        // RNG draws) happen exactly as a correct-path detailed
        // fetch would, and the access keeps the cache tags warm
        // for the next detailed phase.
        mem_.access(genAddress(op, pc));
        fetchPc_ = pc + 1;
        break;
      case MacroOpcode::Branch:
        fetchPc_ = evalBranch(op, pc) ? op.target : pc + 1;
        break;
      default:
        fetchPc_ = pc + 1;
        break;
    }
    ++stats_.committedInsts;
    ++stats_.committedUops;
    ++stats_.fetchedUops;
    ++stats_.ffInsts;
    lastCommittedNextPc_ = fetchPc_;
    // Plain program macro-ops expand to exactly one micro-op, so one
    // Commit event here keeps the architectural commit-PC stream
    // (DigestTracer::archDigest, collectCommitPcs) comparable with a
    // full-detail run of the same program. Timing-sensitive fields
    // (cycle, seq, class) are not reproduced — only the arch stream
    // is contractual across modes.
    trace(TraceEvent::Commit, nextSeq_++, pc, OpClass::Nop);
    return true;
}

void
OooCore::ffTick()
{
    ++cycle_;
    ++stats_.cycles;
    ++stats_.ffCycles;
    if (fetchHalted_)
        return;
    ffFracQ16_ += ffIpcQ16_;
    std::uint64_t credit = ffFracQ16_ >> 16;
    ffFracQ16_ &= 0xffff;
    while (credit-- > 0) {
        if (!ffExecuteOne())
            break;
    }
}

void
OooCore::ffAdvance(Cycles end)
{
    // Stop ffWarmup + 1 cycles short of the next predicted arrival
    // so the detailed pipeline is warm when the raise fires; the
    // remaining approach is ticked in detail by the caller.
    Cycles wake = nextWakeCycle();
    Cycles stop = end;
    if (wake != kNoWake) {
        Cycles lead = params_.ffWarmup + 1;
        stop = std::min(stop, wake > lead ? wake - lead : cycle_);
    }
    while (cycle_ < stop && ffMode_) {
        if (fetchHalted_) {
            // Nothing left to execute: jump like the quiesced skip.
            stats_.ffCycles += stop - cycle_;
            stats_.cycles += stop - cycle_;
            cycle_ = stop;
            break;
        }
        ffTick();
    }
}

// ---------------------------------------------------------------------
// Commit
// ---------------------------------------------------------------------

void
OooCore::commitStage()
{
    for (unsigned n = 0; n < params_.retireWidth; ++n) {
        if (rob_.empty())
            break;
        RobEntry &head = rob_.front();
        if (!head.done || head.readyAt > cycle_)
            break;

        applyCommitEffect(head);
        trace(TraceEvent::Commit, head.seq, head.pc, head.uop.cls);

        if (head.uop.fromIntrPath) {
            if (recordOpen_ && currentRecord_.firstUopCommitAt == 0)
                currentRecord_.firstUopCommitAt = cycle_;
            intr_.onFirstIntrCommit();
        }

        ++stats_.committedUops;
        if (head.uop.eom && head.pc != kUcodePc) {
            ++stats_.committedInsts;
            lastCommittedNextPc_ = head.nextPc;
        }
        if (head.uop.cls == OpClass::MemRead && lqCount_ > 0)
            --lqCount_;
        if (head.uop.cls == OpClass::MemWrite) {
            if (sqCount_ > 0)
                --sqCount_;
            // Drain the store to the cache (tags only).
            if (head.uop.mem != MemMode::None)
                mem_.access(head.addr);
        }
        McodeEffect effect = head.uop.effect;
        releaseRingSlot(head);
        rob_.pop_front();

        // UIF-changing instructions are serializing: they end the
        // retire group so the interrupt-accept logic observes the
        // new flag value at a cycle boundary (the stui window).
        if (effect == McodeEffect::SetUif ||
            effect == McodeEffect::ClearUif)
            break;
    }
}

void
OooCore::applyCommitEffect(const RobEntry &entry)
{
    switch (entry.uop.effect) {
      case McodeEffect::None:
      case McodeEffect::ReadUitt:
      case McodeEffect::PostUpid:
        break;
      case McodeEffect::WriteIcr:
        // Handled at execute (writeback stage).
        break;
      case McodeEffect::ReadUpidToUirr:
        upid_.fetchAndClearPir();
        upid_.clearOutstanding();
        break;
      case McodeEffect::ClearUif:
        intr_.setUif(false);
        break;
      case McodeEffect::SetUif:
        intr_.setUif(true);
        break;
      case McodeEffect::JumpHandler:
        trace(TraceEvent::IntrDeliver);
        ++stats_.interruptsDelivered;
        if (recordOpen_) {
            currentRecord_.deliveryCommitAt = cycle_;
            observe(IntrStage::Deliver, currentRecord_.spanId,
                    currentRecord_.source, currentRecord_.vector);
        }
        break;
      case McodeEffect::ReturnFromHandler:
        trace(TraceEvent::IntrReturn);
        if (intr_.inNestedDelivery()) {
            // Nested (preempting) delivery: the preempt-restore
            // routine still runs before the outer handler resumes,
            // so the span stays open until ResumeFromPreempt and
            // the tracker keeps its nested current.
            if (recordOpen_) {
                currentRecord_.uiretCommitAt = cycle_;
                observe(IntrStage::Return, currentRecord_.spanId,
                        currentRecord_.source,
                        currentRecord_.vector);
            }
            break;
        }
        intr_.onHandlerReturn();
        if (recordOpen_) {
            currentRecord_.uiretCommitAt = cycle_;
            observe(IntrStage::Return, currentRecord_.spanId,
                    currentRecord_.source, currentRecord_.vector);
            stats_.intrRecords.push_back(currentRecord_);
            recordOpen_ = false;
        }
        break;
      case McodeEffect::PreemptSaveDone:
        // The preempted frame spill is architectural: this is the
        // nested span's injection point (its "microcode entry").
        if (recordOpen_ && currentRecord_.injectedAt == 0) {
            currentRecord_.injectedAt = cycle_;
            observe(IntrStage::Inject, currentRecord_.spanId,
                    currentRecord_.source, currentRecord_.vector);
        }
        break;
      case McodeEffect::ResumeFromPreempt: {
        assert(!preemptFrames_.empty());
        assert(restoresInFlight_ > 0);
        if (recordOpen_) {
            currentRecord_.restoredAt = cycle_;
            observe(IntrStage::PreemptResume, currentRecord_.spanId,
                    currentRecord_.source, currentRecord_.vector);
            stats_.intrRecords.push_back(currentRecord_);
        }
        ++stats_.preemptRestores;
        PreemptFrame f = preemptFrames_.back();
        preemptFrames_.pop_back();
        resumePc_ = f.resumePc;
        currentRecord_ = f.record;
        recordOpen_ = f.recordOpen;
        --restoresInFlight_;
        intr_.onNestedReturn();
        break;
      }
      case McodeEffect::SetTimerArm: {
        bool periodic = (entry.imm >> 63) & 1;
        Cycles cycles = entry.imm & ~(1ull << 63);
        kbTimer_.setTimer(cycle_, cycles,
                          periodic ? KbTimerMode::Periodic
                                   : KbTimerMode::OneShot);
        break;
      }
      case McodeEffect::ClearTimerArm:
        kbTimer_.clearTimer();
        break;
    }
}

// ---------------------------------------------------------------------
// Writeback / branch resolution
// ---------------------------------------------------------------------

void
OooCore::releaseRingSlot(const RobEntry &entry)
{
    std::size_t slot = entry.seq & kRingMask;
    if (ringSeq_[slot] == entry.seq) {
        ringSeq_[slot] = 0;
        ringEntry_[slot] = nullptr;
    }
}

void
OooCore::scheduleWriteback(std::uint64_t seq, Cycles ready_at)
{
    if (ready_at - cycle_ < kWbSpan)
        wbWheel_[ready_at & kWbMask].push_back(seq);
    else
        farWb_.push_back(seq);
}

void
OooCore::writebackStage()
{
    // Long-latency stragglers enter the wheel once in range.
    if (!farWb_.empty()) {
        std::size_t kept = 0;
        for (std::uint64_t seq : farWb_) {
            std::size_t slot = seq & kRingMask;
            if (ringSeq_[slot] != seq)
                continue;  // squashed while waiting
            Cycles ready = ringEntry_[slot]->readyAt;
            if (ready - cycle_ < kWbSpan)
                wbWheel_[ready & kWbMask].push_back(seq);
            else
                farWb_[kept++] = seq;
        }
        farWb_.resize(kept);
    }

    // Drain this cycle's completion bucket in age (seq) order —
    // exactly the order the old whole-ROB scan visited them. Stale
    // seqs (squashed entries, previous laps of the wheel) fail the
    // ring check and drop out here.
    std::vector<std::uint64_t> &bucket = wbWheel_[cycle_ & kWbMask];
    if (bucket.empty())
        return;
    wbScratch_.clear();
    for (std::uint64_t seq : bucket) {
        std::size_t slot = seq & kRingMask;
        if (ringSeq_[slot] != seq)
            continue;
        const RobEntry &e = *ringEntry_[slot];
        if (!e.issued || e.done)
            continue;
        assert(e.readyAt == cycle_);
        wbScratch_.push_back(seq);
    }
    bucket.clear();
    std::sort(wbScratch_.begin(), wbScratch_.end());

    for (std::uint64_t seq : wbScratch_) {
        // Revalidate: a mispredict earlier in this loop squashes
        // younger entries, which are exactly the seqs that follow.
        std::size_t slot = seq & kRingMask;
        if (ringSeq_[slot] != seq)
            continue;
        RobEntry &entry = *ringEntry_[slot];
        entry.done = true;
        trace(TraceEvent::Complete, entry.seq, entry.pc,
              entry.uop.cls);
        if (entry.uop.effect == McodeEffect::WriteIcr) {
            // The write to the ICR happens at execution; the APIC
            // emits the notification IPI then, not at retirement.
            // Safe to act on: SerializeMsr issues only from the ROB
            // head, so it is never on a speculative path.
            if (!stats_.sendRecords.empty() &&
                stats_.sendRecords.back().icrCommitAt == 0)
                stats_.sendRecords.back().icrCommitAt = cycle_;
            if (system_)
                system_->senduipiCommit(*this, entry.imm);
            continue;
        }
        if (entry.uop.effect == McodeEffect::JumpHandler) {
            if (recordOpen_ && currentRecord_.deliveryExecAt == 0)
                currentRecord_.deliveryExecAt = cycle_;
            fetchPc_ = program_->handlerEntry();
            awaitRedirect_ = false;
            frontendStallUntil_ = std::max<Cycles>(
                frontendStallUntil_,
                cycle_ + params_.takenBranchBubble);
            continue;
        }
        if (entry.uop.effect == McodeEffect::ReturnFromHandler) {
            // Writeback happens out of order: an outer handler's
            // uiret can complete before the inner restore routine's
            // ResumeFromPreempt commits and pops the frame stack, so
            // the tracker's nesting state alone is stale here. A
            // uiret is a nested return exactly when fewer restore
            // routines are outstanding than there are preempt
            // frames; otherwise every open frame already has its
            // restore in flight and this is the outermost return.
            if (restoresInFlight_ < intr_.preemptDepth()) {
                // Nested uiret: fetch must not resume the program —
                // stream the preempt-restore routine instead; its
                // chain-tail Branch (ResumeFromPreempt) carries the
                // redirect back into the preempted handler.
                std::uint32_t target = resumeTargetForReturn();
                entry.nextPc = target;
                loadUcodeRestore(target);
                ++restoresInFlight_;
                continue;
            }
            fetchPc_ = resumeTargetForReturn();
            // Record the real return target: uiret is a program
            // instruction, so its commit updates
            // lastCommittedNextPc_, and the fall-through pc+1 would
            // be wrong (out of bounds for a handler at the end of
            // the program) if a Flush-mode accept lands before the
            // next program op commits.
            entry.nextPc = fetchPc_;
            awaitRedirect_ = false;
            frontendStallUntil_ = std::max<Cycles>(
                frontendStallUntil_,
                cycle_ + params_.takenBranchBubble);
            continue;
        }
        if (entry.uop.effect == McodeEffect::ResumeFromPreempt) {
            // Restore redirect: back into the preempted handler at
            // the pc the preemption interrupted. The target was
            // latched into the routine's imm when the restore was
            // issued — reading resumePc_ here would race with an
            // earlier restore's commit-time frame pop when returns
            // stack more than one deep.
            fetchPc_ = static_cast<std::uint32_t>(entry.imm);
            entry.nextPc = fetchPc_;
            awaitRedirect_ = false;
            frontendStallUntil_ = std::max<Cycles>(
                frontendStallUntil_,
                cycle_ + params_.takenBranchBubble);
            continue;
        }
        if (!entry.isBranch)
            continue;
        if (!entry.wrongPath && !entry.staticBranch &&
            entry.uop.effect == McodeEffect::None) {
            predictor_.update(entry.pc, entry.actualTaken,
                              entry.predictedTaken);
        }
        if (entry.mispredicted) {
            ++stats_.branchMispredicts;
            // Restore history to the pre-branch state, then apply
            // the correct outcome.
            predictor_.restoreHistory(entry.historyBefore);
            predictor_.update(entry.pc, entry.actualTaken,
                              entry.predictedTaken);
            squashYoungerThan(entry.seq, entry.correctTarget,
                              predictor_.history());
            break;  // younger entries are gone; stop iterating
        }
    }
}

void
OooCore::uncountRestore(const MicroOp &uop)
{
    // A squashed restore routine (its chain-tail ResumeFromPreempt
    // never commits) releases its outstanding-restore slot so the
    // re-fetched uiret issues the routine again.
    if (uop.effect == McodeEffect::ResumeFromPreempt) {
        assert(restoresInFlight_ > 0);
        --restoresInFlight_;
    }
}

void
OooCore::uncountExec(const RobEntry &entry)
{
    if (entry.countedExec && entry.pc < program_->size() &&
        execCount_[entry.pc] > 0)
        --execCount_[entry.pc];
}

void
OooCore::squashYoungerThan(std::uint64_t seq,
                           std::uint32_t recovery_pc,
                           std::uint64_t history)
{
    std::uint64_t killed_rob = 0;
    bool killed_intr = false;
    trace(TraceEvent::Squash, seq);

    while (!rob_.empty() && rob_.back().seq > seq) {
        if (rob_.back().uop.fromIntrPath)
            killed_intr = true;
        uncountRestore(rob_.back().uop);
        uncountExec(rob_.back());
        releaseRingSlot(rob_.back());
        rob_.pop_back();
        ++killed_rob;
    }
    for (const auto &f : fetchBuffer_) {
        if (f.uop.fromIntrPath)
            killed_intr = true;
        uncountRestore(f.uop);
        uncountExec(f);
    }
    for (const auto &u : ucodeQueue_) {
        if (u.fromIntrPath)
            killed_intr = true;
        uncountRestore(u);
    }
    stats_.squashedUops += killed_rob + fetchBuffer_.size();
    ++stats_.squashes;
    fetchBuffer_.clear();
    ucodeQueue_.clear();

    rebuildRenameTable();

    onWrongPath_ = false;
    fetchHalted_ = false;
    awaitRedirect_ = false;
    fetchPc_ = recovery_pc;
    predictor_.restoreHistory(history);

    Cycles penalty =
        (killed_rob + params_.squashWidth - 1) / params_.squashWidth;
    Cycles until = cycle_ + penalty + 1;
    if (until > frontendStallUntil_)
        frontendStallUntil_ = until;

    if (intr_.onSquash(killed_intr)) {
        ++stats_.reinjections;
        const PendingIntr &cur = intr_.current();
        observe(IntrStage::Reinject, cur.spanId, cur.source,
                cur.vector);
    }
}

void
OooCore::squashAll()
{
    std::uint64_t killed_rob = rob_.size();
    stats_.squashedUops += killed_rob + fetchBuffer_.size();
    if (killed_rob + fetchBuffer_.size() > 0)
        ++stats_.squashes;
    for (const auto &entry : rob_) {
        uncountRestore(entry.uop);
        uncountExec(entry);
        releaseRingSlot(entry);
    }
    for (const auto &entry : fetchBuffer_) {
        uncountRestore(entry.uop);
        uncountExec(entry);
    }
    for (const auto &u : ucodeQueue_)
        uncountRestore(u);
    rob_.clear();
    fetchBuffer_.clear();
    ucodeQueue_.clear();
    rebuildRenameTable();
    onWrongPath_ = false;
    fetchHalted_ = false;
    awaitRedirect_ = false;

    Cycles penalty =
        (killed_rob + params_.squashWidth - 1) / params_.squashWidth;
    Cycles until = cycle_ + penalty;
    if (until > frontendStallUntil_)
        frontendStallUntil_ = until;
}

void
OooCore::rebuildRenameTable()
{
    for (auto &r : renameTable_)
        r = 0;
    iqCount_ = 0;
    lqCount_ = 0;
    sqCount_ = 0;
    iqList_.clear();
    for (auto &entry : rob_) {
        if (entry.uop.dest != reg::kNone)
            renameTable_[entry.uop.dest] = entry.seq;
        if (!entry.issued) {
            ++iqCount_;
            iqList_.push_back(&entry);
        }
        if (entry.uop.cls == OpClass::MemRead)
            ++lqCount_;
        if (entry.uop.cls == OpClass::MemWrite)
            ++sqCount_;
    }
}

// ---------------------------------------------------------------------
// Issue / execute
// ---------------------------------------------------------------------

unsigned
OooCore::memAccessLatency(RobEntry &entry)
{
    if (entry.uop.mem == MemMode::Remote)
        return mem_.remoteAccess(entry.addr);

    // Store-to-load forwarding from older in-flight stores.
    if (sqCount_ > 0) {
        for (auto it = rob_.rbegin(); it != rob_.rend(); ++it) {
            if (it->seq >= entry.seq)
                continue;
            if (it->uop.cls == OpClass::MemWrite &&
                it->addr == entry.addr)
                return 2;
        }
    }
    return mem_.access(entry.addr);
}

bool
OooCore::depReady(std::uint64_t dep) const
{
    if (dep == 0)
        return true;
    std::size_t slot = dep & kRingMask;
    // Slot reused by a much younger micro-op: the producer retired
    // thousands of micro-ops ago, so the value is ready.
    if (ringSeq_[slot] != dep)
        return true;
    return ringReadyAt_[slot] <= cycle_;
}

Cycles
OooCore::depBound(std::uint64_t dep) const
{
    if (dep == 0)
        return 0;
    std::size_t slot = dep & kRingMask;
    if (ringSeq_[slot] != dep)
        return 0;  // producer retired (or slot long since reused)
    Cycles ready = ringReadyAt_[slot];
    if (ready != ~Cycles(0))
        return ready;  // issued: completion cycle is exact
    // Producer not issued yet: it cannot produce before its own
    // dependencies resolve plus one cycle of execution — and never
    // this cycle. Its notBefore may be stale-low, which only means
    // we re-check sooner than strictly necessary — never later.
    return std::max(ringEntry_[slot]->notBefore + 1, cycle_ + 1);
}

void
OooCore::issueStage()
{
    unsigned issued = 0;
    std::size_t kept = 0;
    const std::size_t n = iqList_.size();
    for (std::size_t i = 0; i < n; ++i) {
        RobEntry *entry = iqList_[i];

        // Dependencies provably unready: one compare and move on.
        if (entry->notBefore > cycle_) {
            iqList_[kept++] = entry;
            continue;
        }

        bool can = issued < params_.issueWidth;

        // Serializing micro-ops issue only from the ROB head.
        if (can && entry->uop.cls == OpClass::SerializeMsr &&
            entry != &rob_.front())
            can = false;

        if (can) {
            Cycles bound =
                std::max(depBound(entry->dep1),
                         depBound(entry->dep2));
            if (bound > cycle_) {
                entry->notBefore = bound;
                can = false;
            }
        }

        unsigned pool = fuPoolOf(entry->uop.cls);
        if (can && fuTokens_[pool] == 0)
            can = false;

        if (!can) {
            iqList_[kept++] = entry;
            continue;
        }

        --fuTokens_[pool];
        unsigned latency;
        if (entry->uop.cls == OpClass::MemRead)
            latency = memAccessLatency(*entry);
        else
            latency = classLatency(entry->uop);
        assert(latency >= 1 && "zero-latency ops would complete in "
                               "the issue cycle, before writeback");

        entry->issued = true;
        entry->readyAt = cycle_ + latency;
        ++stats_.issuedUops;
        trace(TraceEvent::Issue, entry->seq, entry->pc,
              entry->uop.cls);
        ringReadyAt_[entry->seq & kRingMask] = entry->readyAt;
        scheduleWriteback(entry->seq, entry->readyAt);
        if (iqCount_ > 0)
            --iqCount_;
        ++issued;
    }
    iqList_.resize(kept);
}

// ---------------------------------------------------------------------
// Dispatch (rename + ROB allocation)
// ---------------------------------------------------------------------

void
OooCore::dispatchStage()
{
    for (unsigned n = 0; n < params_.decodeWidth; ++n) {
        if (fetchBuffer_.empty())
            break;
        RobEntry &front = fetchBuffer_.front();
        if (front.readyAt > cycle_)
            break;
        if (rob_.size() >= params_.robSize)
            break;
        if (iqCount_ >= params_.iqSize)
            break;
        if (front.uop.cls == OpClass::MemRead &&
            lqCount_ >= params_.lqSize)
            break;
        if (front.uop.cls == OpClass::MemWrite &&
            sqCount_ >= params_.sqSize)
            break;

        RobEntry entry = front;
        fetchBuffer_.pop_front();
        entry.readyAt = 0;
        entry.issued = false;
        entry.done = false;

        if (entry.uop.src1 != reg::kNone)
            entry.dep1 = renameTable_[entry.uop.src1];
        if (entry.uop.src2 != reg::kNone)
            entry.dep2 = renameTable_[entry.uop.src2];
        if (entry.uop.dest != reg::kNone)
            renameTable_[entry.uop.dest] = entry.seq;

        if (entry.uop.effect == McodeEffect::ReadUitt)
            stats_.sendRecords.push_back(SendRecord{cycle_, 0});

        ++iqCount_;
        if (entry.uop.cls == OpClass::MemRead)
            ++lqCount_;
        if (entry.uop.cls == OpClass::MemWrite)
            ++sqCount_;

        entry.notBefore = 0;

        trace(TraceEvent::Dispatch, entry.seq, entry.pc,
              entry.uop.cls);
        rob_.push_back(entry);
        RobEntry &placed = rob_.back();
        std::size_t slot = placed.seq & kRingMask;
        ringSeq_[slot] = placed.seq;
        ringReadyAt_[slot] = ~0ull;
        ringEntry_[slot] = &placed;
        iqList_.push_back(&placed);
    }
}

// ---------------------------------------------------------------------
// Interrupt acceptance
// ---------------------------------------------------------------------

void
OooCore::checkInterruptAccept()
{
    if (!intr_.canAccept())
        return;

    PendingIntr p = intr_.accept();
    trace(TraceEvent::IntrAccept);
    observe(IntrStage::Accept, p.spanId, p.source, p.vector);
    currentRecord_ = IntrRecord{};
    currentRecord_.source = p.source;
    currentRecord_.vector = p.vector;
    currentRecord_.spanId = p.spanId;
    currentRecord_.raisedAt = p.raisedAt;
    currentRecord_.acceptedAt = cycle_;
    recordOpen_ = true;

    switch (params_.strategy) {
      case DeliveryStrategy::Flush: {
        squashAll();
        resumePc_ = lastCommittedNextPc_;
        fetchPc_ = resumePc_;
        loadUcodeForCurrent();
        intr_.onInjected();
        currentRecord_.injectedAt = cycle_;
        observe(IntrStage::Inject, p.spanId, p.source, p.vector);
        frontendStallUntil_ = std::max<Cycles>(
            frontendStallUntil_,
            cycle_ + params_.mcode.flushUcodeEntryLatency);
        break;
      }
      case DeliveryStrategy::Drain:
        drainWaiting_ = true;
        break;
      case DeliveryStrategy::Tracked:
        // Fetch injects at the next instruction (or safepoint)
        // boundary.
        break;
    }
}

void
OooCore::loadUcodeForCurrent()
{
    ucodeQueue_.clear();
    const PendingIntr &cur = intr_.current();
    if (cur.source == IntrSource::UserIpi) {
        for (const auto &u : mcrom_.notify())
            ucodeQueue_.push_back(u);
    }
    // KB timer and forwarded interrupts skip notification
    // processing entirely (§4.3, §4.5): no UPID traffic.
    for (const auto &u : mcrom_.delivery())
        ucodeQueue_.push_back(u);
    ucodeMacroPc_ = kUcodePc;
    ucodeNextPc_ = 0;
    ucodeImm_ = 0;
}

void
OooCore::loadUcodeNested()
{
    // Nested (preempting) delivery: spill the preempted handler's
    // frame first, then the usual notification/delivery microcode.
    ucodeQueue_.clear();
    for (const auto &u : mcrom_.preemptSave())
        ucodeQueue_.push_back(u);
    const PendingIntr &cur = intr_.current();
    if (cur.source == IntrSource::UserIpi) {
        for (const auto &u : mcrom_.notify())
            ucodeQueue_.push_back(u);
    }
    for (const auto &u : mcrom_.delivery())
        ucodeQueue_.push_back(u);
    ucodeMacroPc_ = kUcodePc;
    ucodeNextPc_ = 0;
    ucodeImm_ = 0;
}

void
OooCore::loadUcodeRestore(std::uint32_t resume_pc)
{
    ucodeQueue_.clear();
    for (const auto &u : mcrom_.preemptRestore())
        ucodeQueue_.push_back(u);
    ucodeMacroPc_ = kUcodePc;
    ucodeNextPc_ = 0;
    // The routine carries its own redirect target: by the time its
    // ResumeFromPreempt executes, earlier restores may have popped
    // frames and moved resumePc_ under it.
    ucodeImm_ = resume_pc;
}

std::uint32_t
OooCore::resumeTargetForReturn() const
{
    // Resume targets form a stack: the open frames hold the outer
    // targets (outermost first) and resumePc_ holds the innermost.
    // Each outstanding restore consumes one target from the top, so
    // the next return resumes at position depth - restoresInFlight_.
    std::size_t depth = intr_.preemptDepth();
    assert(restoresInFlight_ <= depth);
    if (restoresInFlight_ == 0)
        return resumePc_;
    return preemptFrames_[depth - restoresInFlight_].resumePc;
}

void
OooCore::beginInjection()
{
    trace(TraceEvent::IntrInject);
    resumePc_ = fetchPc_;
    if (intr_.inNestedDelivery())
        loadUcodeNested();  // re-injection after a nested squash
    else
        loadUcodeForCurrent();
    intr_.onInjected();
    if (currentRecord_.injectedAt == 0 && !currentRecord_.preempting) {
        currentRecord_.injectedAt = cycle_;
        const PendingIntr &cur = intr_.current();
        observe(IntrStage::Inject, cur.spanId, cur.source,
                cur.vector);
    }
    frontendStallUntil_ = std::max<Cycles>(
        frontendStallUntil_,
        cycle_ + params_.mcode.trackedUcodeEntryLatency);
}

void
OooCore::beginPreemptInjection()
{
    trace(TraceEvent::IntrAccept);
    PendingIntr p = intr_.beginPreempt();
    ++stats_.preemptions;
    observe(IntrStage::Accept, p.spanId, p.source, p.vector);

    preemptFrames_.push_back(
        PreemptFrame{resumePc_, currentRecord_, recordOpen_});
    currentRecord_ = IntrRecord{};
    currentRecord_.source = p.source;
    currentRecord_.vector = p.vector;
    currentRecord_.spanId = p.spanId;
    currentRecord_.raisedAt = p.raisedAt;
    currentRecord_.acceptedAt = cycle_;
    currentRecord_.preempting = true;
    currentRecord_.saveStartAt = cycle_;
    recordOpen_ = true;
    observe(IntrStage::PreemptSave, p.spanId, p.source, p.vector);

    trace(TraceEvent::IntrInject);
    resumePc_ = fetchPc_;
    loadUcodeNested();
    intr_.onInjected();
    // injectedAt (and the Inject observation) for a preempting span
    // comes from the PreemptSaveDone commit: its ucode entry ends
    // when the frame spill is architectural.
    frontendStallUntil_ = std::max<Cycles>(
        frontendStallUntil_,
        cycle_ + params_.mcode.trackedUcodeEntryLatency);
}

// ---------------------------------------------------------------------
// Fetch
// ---------------------------------------------------------------------

std::uint64_t
OooCore::genAddress(const MacroOp &op, std::uint32_t pc)
{
    const AddrPattern &a = op.addr;
    switch (a.kind) {
      case AddrKind::Fixed:
        return a.base;
      case AddrKind::Stride: {
        std::uint64_t n = execCount_[pc];
        if (!onWrongPath_)
            ++execCount_[pc];
        std::uint64_t range = a.range ? a.range : 1;
        std::uint64_t span = n * a.stride;
        // Power-of-two ranges (the common case in the workload
        // kernels) mask instead of dividing: same value, and this
        // runs once per memory op on the fast-forward path.
        if ((range & (range - 1)) == 0)
            return a.base + (span & (range - 1));
        return a.base + span % range;
      }
      case AddrKind::Random:
      case AddrKind::Chase: {
        std::uint64_t off = rng_.nextBounded(a.range ? a.range : 64);
        return a.base + (off & ~7ull);
      }
      case AddrKind::None:
        break;
    }
    return a.base;
}

bool
OooCore::evalBranch(const MacroOp &op, std::uint32_t pc)
{
    switch (op.branch.kind) {
      case BranchKind::Always:
        return true;
      case BranchKind::Never:
        return false;
      case BranchKind::Loop: {
        std::uint64_t iter = execCount_[pc]++;
        std::uint64_t count = op.branch.count;
        if ((count & (count - 1)) == 0)
            return (iter & (count - 1)) != count - 1;
        return (iter % count) != count - 1;
      }
      case BranchKind::Random:
        return rng_.nextBool(op.branch.probability);
      case BranchKind::None:
        break;
    }
    return false;
}

void
OooCore::fetchStage()
{
    if (frontendStallUntil_ > cycle_)
        return;
    if (fetchBuffer_.size() >= kFetchBufferCap)
        return;

    if (drainWaiting_) {
        if (rob_.empty() && fetchBuffer_.empty()) {
            drainWaiting_ = false;
            beginInjection();
        } else {
            ++stats_.drainWaitCycles;
        }
        return;
    }

    unsigned budget = params_.fetchWidth;
    while (budget > 0) {
        if (fetchBuffer_.size() >= kFetchBufferCap)
            break;
        if (!ucodeQueue_.empty()) {
            fetchUcodeUop();
            --budget;
            if (frontendStallUntil_ > cycle_)
                break;  // redirect bubble
            continue;
        }

        // Waiting for a microcode jump/return to execute: the next
        // fetch address is not known yet.
        if (awaitRedirect_)
            break;

        // Instruction boundary: tracked injection point.
        bool at_safepoint =
            !fetchHalted_ && fetchPc_ < program_->size() &&
            program_->at(fetchPc_).isSafepoint;
        if (intr_.shouldInject(at_safepoint, params_.safepointMode)) {
            beginInjection();
            break;
        }

        // Priority preemption boundary: a strictly-higher-priority
        // pending vector interrupts the running handler — but only
        // once the running delivery is fully architectural (its
        // jump committed; in-order commit then guarantees no older
        // branch can still squash the nested work) and no restore
        // is in flight.
        if (intr_.shouldPreempt() && restoresInFlight_ == 0 &&
            recordOpen_ && currentRecord_.deliveryCommitAt != 0 &&
            currentRecord_.uiretCommitAt == 0) {
            beginPreemptInjection();
            break;
        }

        if (fetchHalted_)
            break;

        // Fast-forward handoff: the detail window expired, so stop
        // feeding program ops and let the pipeline drain empty.
        if (ffDrainPending_)
            break;

        std::uint32_t before_stall_pc = fetchPc_;
        (void)before_stall_pc;
        fetchProgramOp();
        --budget;
        if (frontendStallUntil_ > cycle_)
            break;  // taken-branch bubble
        if (fetchHalted_)
            break;
    }
}

void
OooCore::fetchProgramOp()
{
    assert(fetchPc_ < program_->size());
    const MacroOp &op = program_->at(fetchPc_);
    std::uint32_t pc = fetchPc_;

    // Microcoded instructions switch the fetch source to the MSROM.
    switch (op.opcode) {
      case MacroOpcode::Halt:
        fetchHalted_ = true;
        return;
      case MacroOpcode::SendUipi:
      case MacroOpcode::Uiret:
      case MacroOpcode::Clui:
      case MacroOpcode::Stui:
      case MacroOpcode::TestUi:
      case MacroOpcode::SetTimer:
      case MacroOpcode::ClearTimer: {
        const std::vector<MicroOp> *routine = nullptr;
        std::uint64_t imm = op.imm;
        switch (op.opcode) {
          case MacroOpcode::SendUipi:
            routine = &mcrom_.senduipi();
            break;
          case MacroOpcode::Uiret:
            routine = &mcrom_.uiret();
            break;
          case MacroOpcode::Clui:
            routine = &mcrom_.clui();
            break;
          case MacroOpcode::Stui:
          case MacroOpcode::TestUi:
            routine = &mcrom_.stui();
            break;
          case MacroOpcode::SetTimer:
            routine = &mcrom_.setTimer();
            imm = op.imm |
                (op.branch.count ? (1ull << 63) : 0);
            break;
          case MacroOpcode::ClearTimer:
            routine = &mcrom_.clearTimer();
            break;
          default:
            break;
        }
        for (const auto &u : *routine)
            ucodeQueue_.push_back(u);
        ucodeMacroPc_ = pc;
        ucodeNextPc_ = pc + 1;
        ucodeImm_ = imm;
        fetchPc_ = pc + 1;
        return;  // micro-ops stream on subsequent fetch slots
      }
      default:
        break;
    }

    RobEntry entry;
    entry.seq = nextSeq_++;
    entry.pc = pc;
    entry.nextPc = pc + 1;
    entry.imm = op.imm;
    entry.wrongPath = onWrongPath_;
    entry.readyAt = cycle_ + params_.frontendDepth;

    MicroOp u;
    u.dest = op.dest;
    u.src1 = op.src1;
    u.src2 = op.src2;
    u.eom = true;
    u.safepoint = op.isSafepoint;

    switch (op.opcode) {
      case MacroOpcode::IntAlu:
        u.cls = OpClass::IntAlu;
        break;
      case MacroOpcode::IntMult:
        u.cls = OpClass::IntMult;
        break;
      case MacroOpcode::FpAlu:
        u.cls = OpClass::FpAlu;
        break;
      case MacroOpcode::FpMult:
        u.cls = OpClass::FpMult;
        break;
      case MacroOpcode::Nop:
        u.cls = OpClass::Nop;
        break;
      case MacroOpcode::Rdtsc:
        u.cls = OpClass::Rdtsc;
        break;
      case MacroOpcode::Load:
        u.cls = OpClass::MemRead;
        u.mem = MemMode::Local;
        entry.addr = genAddress(op, pc);
        entry.countedExec =
            !entry.wrongPath && op.addr.kind == AddrKind::Stride;
        break;
      case MacroOpcode::Store:
        u.cls = OpClass::MemWrite;
        u.mem = MemMode::Local;
        entry.addr = genAddress(op, pc);
        entry.countedExec =
            !entry.wrongPath && op.addr.kind == AddrKind::Stride;
        break;
      case MacroOpcode::Branch: {
        u.cls = OpClass::Branch;
        entry.countedExec =
            !entry.wrongPath && op.branch.kind == BranchKind::Loop;
        entry.isBranch = true;
        entry.historyBefore = predictor_.history();

        bool predicted;
        bool actual;
        if (op.branch.kind == BranchKind::Always) {
            predicted = true;
            actual = true;
            entry.staticBranch = true;
        } else if (op.branch.kind == BranchKind::Never) {
            // Perfectly-biased not-taken branch (e.g.\ a Concord
            // poll check): statically predicted, filtered from the
            // global history like a real front-end would.
            predicted = false;
            actual = onWrongPath_ ? false : evalBranch(op, pc);
            entry.staticBranch = true;
        } else {
            predicted = predictor_.predict(pc);
            actual = onWrongPath_ ? predicted
                                  : evalBranch(op, pc);
        }
        entry.predictedTaken = predicted;
        entry.actualTaken = actual;
        entry.correctTarget = actual ? op.target : pc + 1;
        entry.nextPc = entry.correctTarget;
        entry.mispredicted = !onWrongPath_ && predicted != actual;
        if (entry.mispredicted)
            onWrongPath_ = true;

        fetchPc_ = predicted ? op.target : pc + 1;
        if (predicted) {
            frontendStallUntil_ = std::max<Cycles>(
                frontendStallUntil_,
                cycle_ + params_.takenBranchBubble);
        }
        entry.uop = u;
        fetchBuffer_.push_back(entry);
        ++stats_.fetchedUops;
        return;
      }
      default:
        u.cls = OpClass::Nop;
        break;
    }

    entry.uop = u;
    fetchPc_ = pc + 1;
    trace(TraceEvent::Fetch, entry.seq, entry.pc, entry.uop.cls);
    fetchBuffer_.push_back(entry);
    ++stats_.fetchedUops;
}

void
OooCore::fetchUcodeUop()
{
    assert(!ucodeQueue_.empty());
    MicroOp u = ucodeQueue_.front();
    ucodeQueue_.pop_front();

    RobEntry entry;
    entry.seq = nextSeq_++;
    entry.pc = ucodeMacroPc_;
    entry.nextPc = ucodeNextPc_;
    entry.imm = ucodeImm_;
    entry.wrongPath = onWrongPath_;
    entry.readyAt = cycle_ + params_.frontendDepth;
    entry.addr = u.addr;
    entry.isBranch = u.cls == OpClass::Branch;
    entry.uop = u;

    if (u.effect == McodeEffect::JumpHandler ||
        u.effect == McodeEffect::ReturnFromHandler ||
        u.effect == McodeEffect::ResumeFromPreempt) {
        assert(u.effect != McodeEffect::JumpHandler ||
               program_->handlerEntry() != Program::kNoHandler);
        // The target is produced by the routine itself (the uiret
        // target is popped from the stack): program fetch cannot
        // resume until the redirect micro-op *executes*.
        awaitRedirect_ = true;
    }

    trace(TraceEvent::Fetch, entry.seq, entry.pc, entry.uop.cls);
    fetchBuffer_.push_back(entry);
    ++stats_.fetchedUops;
}

} // namespace xui
