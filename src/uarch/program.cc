#include "uarch/program.hh"

#include <cassert>
#include <utility>

namespace xui
{

ProgramBuilder::ProgramBuilder(std::string name)
{
    prog_.name_ = std::move(name);
}

std::uint32_t
ProgramBuilder::here() const
{
    return static_cast<std::uint32_t>(prog_.ops_.size());
}

std::uint32_t
ProgramBuilder::append(MacroOp op)
{
    std::uint32_t pc = here();
    prog_.ops_.push_back(op);
    return pc;
}

std::uint32_t
ProgramBuilder::intAlu(std::uint8_t dest, std::uint8_t src1,
                       std::uint8_t src2)
{
    MacroOp op;
    op.opcode = MacroOpcode::IntAlu;
    op.dest = dest;
    op.src1 = src1;
    op.src2 = src2;
    return append(op);
}

std::uint32_t
ProgramBuilder::intMult(std::uint8_t dest, std::uint8_t src1,
                        std::uint8_t src2)
{
    MacroOp op;
    op.opcode = MacroOpcode::IntMult;
    op.dest = dest;
    op.src1 = src1;
    op.src2 = src2;
    return append(op);
}

std::uint32_t
ProgramBuilder::fpAlu(std::uint8_t dest, std::uint8_t src1,
                      std::uint8_t src2)
{
    MacroOp op;
    op.opcode = MacroOpcode::FpAlu;
    op.dest = dest;
    op.src1 = src1;
    op.src2 = src2;
    return append(op);
}

std::uint32_t
ProgramBuilder::fpMult(std::uint8_t dest, std::uint8_t src1,
                       std::uint8_t src2)
{
    MacroOp op;
    op.opcode = MacroOpcode::FpMult;
    op.dest = dest;
    op.src1 = src1;
    op.src2 = src2;
    return append(op);
}

std::uint32_t
ProgramBuilder::load(std::uint8_t dest, AddrPattern addr,
                     std::uint8_t addr_src)
{
    assert(addr.kind != AddrKind::None);
    MacroOp op;
    op.opcode = MacroOpcode::Load;
    op.dest = dest;
    op.src1 = addr_src;
    op.addr = addr;
    return append(op);
}

std::uint32_t
ProgramBuilder::store(std::uint8_t src, AddrPattern addr)
{
    assert(addr.kind != AddrKind::None);
    MacroOp op;
    op.opcode = MacroOpcode::Store;
    op.src1 = src;
    op.addr = addr;
    return append(op);
}

std::uint32_t
ProgramBuilder::nop()
{
    MacroOp op;
    op.opcode = MacroOpcode::Nop;
    return append(op);
}

std::uint32_t
ProgramBuilder::safepoint()
{
    MacroOp op;
    op.opcode = MacroOpcode::Nop;
    op.isSafepoint = true;
    return append(op);
}

std::uint32_t
ProgramBuilder::rdtsc(std::uint8_t dest)
{
    MacroOp op;
    op.opcode = MacroOpcode::Rdtsc;
    op.dest = dest;
    return append(op);
}

std::uint32_t
ProgramBuilder::loopBranch(std::uint32_t target, std::uint64_t count)
{
    assert(count >= 1);
    MacroOp op;
    op.opcode = MacroOpcode::Branch;
    op.target = target;
    op.branch.kind = BranchKind::Loop;
    op.branch.count = count;
    return append(op);
}

std::uint32_t
ProgramBuilder::jump(std::uint32_t target)
{
    MacroOp op;
    op.opcode = MacroOpcode::Branch;
    op.target = target;
    op.branch.kind = BranchKind::Always;
    return append(op);
}

std::uint32_t
ProgramBuilder::randomBranch(std::uint32_t target, double p)
{
    MacroOp op;
    op.opcode = MacroOpcode::Branch;
    op.target = target;
    op.branch.kind = BranchKind::Random;
    op.branch.probability = p;
    return append(op);
}

std::uint32_t
ProgramBuilder::sendUipi(std::uint64_t uitt_index)
{
    MacroOp op;
    op.opcode = MacroOpcode::SendUipi;
    op.imm = uitt_index;
    return append(op);
}

std::uint32_t
ProgramBuilder::clui()
{
    MacroOp op;
    op.opcode = MacroOpcode::Clui;
    return append(op);
}

std::uint32_t
ProgramBuilder::stui()
{
    MacroOp op;
    op.opcode = MacroOpcode::Stui;
    return append(op);
}

std::uint32_t
ProgramBuilder::uiret()
{
    MacroOp op;
    op.opcode = MacroOpcode::Uiret;
    return append(op);
}

std::uint32_t
ProgramBuilder::setTimer(std::uint64_t cycles, bool periodic)
{
    MacroOp op;
    op.opcode = MacroOpcode::SetTimer;
    op.imm = cycles;
    op.branch.count = periodic ? 1 : 0;
    return append(op);
}

std::uint32_t
ProgramBuilder::clearTimer()
{
    MacroOp op;
    op.opcode = MacroOpcode::ClearTimer;
    return append(op);
}

std::uint32_t
ProgramBuilder::halt()
{
    MacroOp op;
    op.opcode = MacroOpcode::Halt;
    return append(op);
}

void
ProgramBuilder::beginHandler()
{
    prog_.handlerEntry_ = here();
}

void
ProgramBuilder::markSafepoint()
{
    assert(!prog_.ops_.empty());
    prog_.ops_.back().isSafepoint = true;
}

Program
ProgramBuilder::build()
{
    assert(!prog_.ops_.empty());
    return std::move(prog_);
}

} // namespace xui
