/**
 * @file
 * Per-cycle observation hook for the cycle tier.
 *
 * A CycleHook attached to an OooCore is consulted at the end of
 * every tick, after all pipeline stages and lifecycle callbacks of
 * that cycle have run. Like the pipeline Tracer and the interrupt
 * lifecycle observer, the hook is off (null pointer, zero cost)
 * unless attached — and even when attached, the fast path the core
 * executes per tick is two inline integer tests against state the
 * *hook owner* maintains:
 *
 *  - `liveSpans`: the number of interrupt spans currently open on
 *    this core (raised, not yet returned). While it is zero the
 *    interrupt-tax engine has nothing to attribute;
 *  - `countdown`: cycles until the next counter-track sample. The
 *    sampler rewinds it to its stride (or to 1 inside a burst
 *    window) from inside onCycle().
 *
 * The virtual call happens only on cycles that are sampled or carry
 * a live span, so a detached-equivalent run (no live spans, huge
 * stride) pays one pointer test, one decrement, and one compare per
 * tick. Hooks must never mutate the core: observation is read-only
 * by contract, and the golden-digest corpus pins that a run with a
 * hook attached is bit-identical to one without.
 */

#ifndef XUI_UARCH_CYCLE_HOOK_HH
#define XUI_UARCH_CYCLE_HOOK_HH

#include <cstdint>

#include "des/time.hh"

namespace xui
{

class OooCore;

/** End-of-tick observation callback (see file comment). */
class CycleHook
{
  public:
    virtual ~CycleHook() = default;

    /**
     * One observed cycle.
     * @param core the core that just finished ticking
     * @param sampled the sample countdown reached zero this cycle
     * @param live at least one interrupt span is open on this core
     */
    virtual void onCycle(const OooCore &core, bool sampled,
                         bool live) = 0;

    /** Sentinel stride: effectively never sample. */
    static constexpr std::uint64_t kNeverSample = ~std::uint64_t(0);

    /** Cycles until the next sampled tick (maintained by owner). */
    std::uint64_t countdown = kNeverSample;

    /** Open interrupt spans on the hooked core. */
    std::uint32_t liveSpans = 0;
};

} // namespace xui

#endif // XUI_UARCH_CYCLE_HOOK_HH
