/**
 * @file
 * Per-cycle observation hook for the cycle tier.
 *
 * A CycleHook attached to an OooCore is consulted at the end of
 * every tick, after all pipeline stages and lifecycle callbacks of
 * that cycle have run. Like the pipeline Tracer and the interrupt
 * lifecycle observer, the hook is off (null pointer, zero cost)
 * unless attached — and even when attached, the fast path the core
 * executes per tick is two inline integer tests against state the
 * *hook owner* maintains:
 *
 *  - `liveSpans`: the number of interrupt spans currently open on
 *    this core (raised, not yet returned). While it is zero the
 *    interrupt-tax engine has nothing to attribute;
 *  - `nextSampleAt`: the absolute cycle of the next counter-track
 *    sample. The sampler advances it by its stride (or by 1 inside
 *    a burst window) from inside onCycle(). Keeping it absolute
 *    means a skipped or fast-forwarded region needs zero per-cycle
 *    hook bookkeeping: the first detailed tick at or past the mark
 *    samples, with no per-tick counter to decrement.
 *
 * The virtual call happens only on cycles that are sampled or carry
 * a live span, so a detached-equivalent run (no live spans,
 * never-sample mark) pays one pointer test and two compares per
 * tick. Hooks must never mutate the core: observation is read-only
 * by contract, and the golden-digest corpus pins that a run with a
 * hook attached is bit-identical to one without.
 *
 * One deliberate exception to read-only: `wantDetailUntil` lets the
 * owner demand full-detail execution through an absolute cycle.
 * The core consults it only when fast-forward (sampled-detail) mode
 * is enabled — the profiler uses it to pin detail across its burst
 * window around every raise→deliver span. With fast-forward off the
 * field is never read, so the digest guarantee above is untouched;
 * with it on, the field only widens where the core runs detailed,
 * which sampled runs are by construction allowed to do.
 */

#ifndef XUI_UARCH_CYCLE_HOOK_HH
#define XUI_UARCH_CYCLE_HOOK_HH

#include <cstdint>

#include "des/time.hh"

namespace xui
{

class OooCore;

/** End-of-tick observation callback (see file comment). */
class CycleHook
{
  public:
    virtual ~CycleHook() = default;

    /**
     * One observed cycle.
     * @param core the core that just finished ticking
     * @param sampled the cycle reached the next-sample mark
     * @param live at least one interrupt span is open on this core
     */
    virtual void onCycle(const OooCore &core, bool sampled,
                         bool live) = 0;

    /** Sentinel sample mark: effectively never sample. */
    static constexpr std::uint64_t kNeverSample = ~std::uint64_t(0);

    /** Absolute cycle of the next sample (maintained by owner). */
    std::uint64_t nextSampleAt = kNeverSample;

    /** Open interrupt spans on the hooked core. */
    std::uint32_t liveSpans = 0;

    /**
     * Owner's demand for full-detail execution through this
     * absolute cycle; read by the core only in fast-forward mode
     * (see file comment).
     */
    Cycles wantDetailUntil = 0;
};

} // namespace xui

#endif // XUI_UARCH_CYCLE_HOOK_HH
