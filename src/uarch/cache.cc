#include "uarch/cache.hh"

#include <bit>
#include <cassert>

namespace xui
{

Cache::Cache(std::uint64_t size_bytes, unsigned assoc,
             unsigned line_bytes, unsigned hit_latency, Cache *next,
             unsigned miss_latency)
    : assoc_(assoc),
      lineShift_(static_cast<unsigned>(std::countr_zero(
          static_cast<std::uint64_t>(line_bytes)))),
      numSets_(size_bytes / (static_cast<std::uint64_t>(assoc) *
                             line_bytes)),
      hitLatency_(hit_latency),
      missLatency_(miss_latency),
      next_(next),
      lines_(numSets_ * assoc),
      stamp_(0),
      hits_(0),
      misses_(0)
{
    assert(std::has_single_bit(static_cast<std::uint64_t>(line_bytes)));
    assert(std::has_single_bit(numSets_));
    assert(numSets_ >= 1);
}

std::uint64_t
Cache::setIndex(std::uint64_t addr) const
{
    return (addr >> lineShift_) & (numSets_ - 1);
}

std::uint64_t
Cache::tagOf(std::uint64_t addr) const
{
    return addr >> lineShift_;
}

unsigned
Cache::access(std::uint64_t addr)
{
    std::uint64_t set = setIndex(addr);
    std::uint64_t tag = tagOf(addr);
    Line *base = &lines_[set * assoc_];

    Line *victim = base;
    for (unsigned w = 0; w < assoc_; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.lruStamp = ++stamp_;
            ++hits_;
            return hitLatency_;
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid &&
                   line.lruStamp < victim->lruStamp) {
            victim = &line;
        }
    }

    ++misses_;
    unsigned below = next_ ? next_->access(addr) : missLatency_;
    victim->valid = true;
    victim->tag = tag;
    victim->lruStamp = ++stamp_;
    return hitLatency_ + below;
}

bool
Cache::contains(std::uint64_t addr) const
{
    std::uint64_t set = setIndex(addr);
    std::uint64_t tag = tagOf(addr);
    const Line *base = &lines_[set * assoc_];
    for (unsigned w = 0; w < assoc_; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return true;
    }
    return false;
}

void
Cache::invalidate(std::uint64_t addr)
{
    std::uint64_t set = setIndex(addr);
    std::uint64_t tag = tagOf(addr);
    Line *base = &lines_[set * assoc_];
    for (unsigned w = 0; w < assoc_; ++w) {
        if (base[w].valid && base[w].tag == tag)
            base[w].valid = false;
    }
}

void
Cache::flushAll()
{
    for (auto &line : lines_)
        line.valid = false;
}

MemHierarchy::MemHierarchy(const MemHierarchyParams &params)
    : params_(params),
      llc_(params.llcSize, params.llcAssoc, params.lineBytes,
           params.llcLatency, nullptr, params.memLatency),
      l2_(params.l2Size, params.l2Assoc, params.lineBytes,
          params.l2Latency, &llc_),
      l1_(params.l1Size, params.l1Assoc, params.lineBytes,
          params.l1Latency, &l2_)
{}

unsigned
MemHierarchy::remoteAccess(std::uint64_t addr)
{
    // The line was modified remotely: it cannot be valid locally.
    l1_.invalidate(addr);
    l2_.invalidate(addr);
    // Source from the remote core's cache via the LLC; the transfer
    // costs an LLC round trip. The line becomes locally cached.
    unsigned latency = params_.llcLatency + l1_.access(addr) -
        params_.l1Latency;
    return latency;
}

} // namespace xui
