#include "uarch/branch_predictor.hh"

namespace xui
{

BranchPredictor::BranchPredictor(unsigned table_bits,
                                 unsigned history_bits)
    : table_(1ull << table_bits, 1),  // weakly not-taken
      mask_((1ull << table_bits) - 1),
      historyMask_((1ull << history_bits) - 1),
      history_(0),
      lookups_(0),
      mispredicts_(0)
{}

std::size_t
BranchPredictor::index(std::uint64_t pc) const
{
    return static_cast<std::size_t>((pc ^ history_) & mask_);
}

bool
BranchPredictor::predict(std::uint64_t pc) const
{
    ++lookups_;
    return table_[index(pc)] >= 2;
}

bool
BranchPredictor::update(std::uint64_t pc, bool taken, bool predicted)
{
    std::uint8_t &ctr = table_[index(pc)];
    if (taken) {
        if (ctr < 3)
            ++ctr;
    } else {
        if (ctr > 0)
            --ctr;
    }
    history_ = ((history_ << 1) | (taken ? 1 : 0)) & historyMask_;
    bool wrong = taken != predicted;
    if (wrong)
        ++mispredicts_;
    return wrong;
}

void
BranchPredictor::speculate(bool predicted_taken)
{
    // The committed-path history is authoritative; speculative
    // history is folded in conservatively (single global history,
    // resynced on squash via restoreHistory).
    (void)predicted_taken;
}

void
BranchPredictor::restoreHistory(std::uint64_t history)
{
    history_ = history & historyMask_;
}

} // namespace xui
