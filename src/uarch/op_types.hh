/**
 * @file
 * Instruction and micro-op type definitions for the cycle-level
 * out-of-order core model.
 */

#ifndef XUI_UARCH_OP_TYPES_HH
#define XUI_UARCH_OP_TYPES_HH

#include <cstdint>

namespace xui
{

/** Macro-instruction opcodes visible to workload programs. */
enum class MacroOpcode : std::uint8_t
{
    IntAlu,     ///< integer ALU op, 1 uop
    IntMult,    ///< integer multiply
    FpAlu,      ///< FP add/sub
    FpMult,     ///< FP multiply / FMA
    Load,       ///< memory read
    Store,      ///< memory write
    Branch,     ///< conditional or unconditional branch
    Nop,        ///< no-op (also the safepoint carrier)
    Rdtsc,      ///< timestamp read (used by the spin-loop receiver)
    SendUipi,   ///< send a user IPI via a UITT index (microcoded)
    Clui,       ///< clear user interrupt flag
    Stui,       ///< set user interrupt flag
    TestUi,     ///< read user interrupt flag
    Uiret,      ///< return from user interrupt handler (microcoded)
    SetTimer,   ///< program the KB timer (xUI)
    ClearTimer, ///< disarm the KB timer (xUI)
    Halt,       ///< stop the core (end of program)
};

/** Micro-op execution classes, mapped to functional units. */
enum class OpClass : std::uint8_t
{
    IntAlu,
    IntMult,
    FpAlu,
    FpMult,
    MemRead,
    MemWrite,
    Branch,
    /** Serializing MSR access (issues only at ROB head). */
    SerializeMsr,
    /** Fixed microcode-sequencer overhead op. */
    McodeOverhead,
    Rdtsc,
    Nop,
};

/** How a memory macro-op generates its dynamic addresses. */
enum class AddrKind : std::uint8_t
{
    None,    ///< not a memory op
    Fixed,   ///< always the same address
    Stride,  ///< base + (n * stride) % range
    Random,  ///< uniform in [base, base + range)
    Chase,   ///< pointer chase: random in range, serialized by regs
};

/** How a branch macro-op resolves its dynamic direction. */
enum class BranchKind : std::uint8_t
{
    None,        ///< not a branch
    Always,      ///< unconditional, always to target
    Never,       ///< conditional, never taken
    Loop,        ///< taken (count-1) times, then falls through
    Random,      ///< taken with probability p
};

/** Architectural register file layout (64 flat registers). */
namespace reg
{
/** General-purpose program registers. */
constexpr std::uint8_t kGpr0 = 0;
/** FP program registers. */
constexpr std::uint8_t kFpr0 = 16;
/** Stack pointer — read by the interrupt delivery microcode. */
constexpr std::uint8_t kSp = 30;
/** Scratch registers reserved for microcode routines. */
constexpr std::uint8_t kUtmp0 = 50;
/** "No register" marker. */
constexpr std::uint8_t kNone = 0xff;
/** Total architectural register count. */
constexpr unsigned kCount = 64;
} // namespace reg

} // namespace xui

#endif // XUI_UARCH_OP_TYPES_HH
