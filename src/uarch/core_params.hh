/**
 * @file
 * Core configuration — defaults reproduce the paper's Table 3
 * baseline (modeling an Intel Xeon Gold 5420+ Sapphire Rapids core at
 * 2.0 GHz).
 */

#ifndef XUI_UARCH_CORE_PARAMS_HH
#define XUI_UARCH_CORE_PARAMS_HH

#include "des/time.hh"
#include "uarch/cache.hh"
#include "uarch/mcrom.hh"

namespace xui
{

/** Interrupt-delivery strategies the core can use (§3.5, §4.2). */
enum class DeliveryStrategy : std::uint8_t
{
    /** Squash all in-flight work, then run the handler (Intel). */
    Flush,
    /** Retire all in-flight work first, then run the handler. */
    Drain,
    /** xUI: inject handler micro-ops at fetch; never discard work. */
    Tracked,
};

/** Functional-unit and latency configuration. */
struct ExecParams
{
    unsigned intAluUnits = 6;   ///< Table 3: Int ALU(6)
    unsigned intMultUnits = 2;  ///< Table 3: Mult(2)
    unsigned fpUnits = 3;       ///< Table 3: FPALU/Mult(3)
    unsigned loadPorts = 2;
    unsigned storePorts = 1;

    unsigned intAluLatency = 1;
    unsigned intMultLatency = 3;
    unsigned fpAluLatency = 3;
    unsigned fpMultLatency = 4;
    unsigned branchLatency = 1;
    unsigned rdtscLatency = 18;
    unsigned storeLatency = 1;
    unsigned nopLatency = 1;
    unsigned mcodeLatency = 1;
};

/** Full core configuration (Table 3 defaults). */
struct CoreParams
{
    unsigned fetchWidth = 6;    ///< Table 3: Fetch Width 6 uops
    unsigned decodeWidth = 6;   ///< Table 3: Decode Width 6 uops
    unsigned issueWidth = 10;   ///< Table 3: Issue Width 10 uops
    unsigned retireWidth = 10;  ///< Table 3: Retire Width 10 uops
    unsigned squashWidth = 10;  ///< Table 3: Squash Width 10 uops
    unsigned robSize = 384;     ///< Table 3: ROB Size 384 entries
    unsigned iqSize = 168;      ///< Table 3: IQ 168 entries
    unsigned lqSize = 128;      ///< Table 3: LQ Size 128 entries
    unsigned sqSize = 72;       ///< Table 3: SQ Size 72 entries

    /** Fetch-to-dispatch pipeline depth (refill cost of redirects). */
    unsigned frontendDepth = 10;

    /** Extra fetch bubble on a predicted-taken branch (BTB hit). */
    unsigned takenBranchBubble = 1;

    ExecParams exec;
    MemHierarchyParams mem;
    McodeParams mcode;

    DeliveryStrategy strategy = DeliveryStrategy::Flush;
    /** Hardware safepoint mode (§4.4): deliver only at safepoints. */
    bool safepointMode = false;

    /**
     * Run-to-next-wakeup: runCycles / UarchSystem::run jump over
     * cycles where the core is provably idle (halted, empty
     * pipeline, no deliverable interrupt) instead of ticking through
     * them. Purely a simulator-speed knob — the architectural
     * timeline is bit-identical either way (the determinism suite
     * pins digests with the flag both on and off).
     */
    bool tickSkip = true;

    /**
     * Fast-forward (sampled-detail) execution, SMARTS-style. With
     * this on, the core leaves the detailed out-of-order pipeline
     * between interrupt activity and runs a functional in-order
     * loop timed by an IPC model calibrated online from the
     * surrounding detailed phases — no ROB/IQ/LSQ or
     * branch-predictor bookkeeping, no per-cycle event churn. Full
     * detail resumes inside a window around every interrupt
     * lifecycle event (raise, inject, deliver, return, preempt
     * save/restore), and the pipeline is re-warmed `ffWarmup`
     * cycles ahead of every predicted arrival. Off by default:
     * ff-off runs take none of the new paths and stay bit-identical
     * (golden corpus). See DESIGN.md §13.
     */
    bool fastForward = false;

    /**
     * Detail window: cycles of full out-of-order detail kept after
     * every interrupt lifecycle event before fast-forward may
     * resume.
     */
    Cycles detailWindow = 512;

    /**
     * Cycles of detailed execution run ahead of every *predicted*
     * interrupt arrival (KB-timer deadline, in-flight IPI) so the
     * pipeline, caches, and predictor are warm when the event
     * fires; without it, every raise would land in an empty
     * pipeline and bias delivery latencies low.
     */
    Cycles ffWarmup = 256;

    unsigned predictorTableBits = 14;
    unsigned predictorHistoryBits = 12;
};

} // namespace xui

#endif // XUI_UARCH_CORE_PARAMS_HH
