/**
 * @file
 * Gshare branch direction predictor plus a direct-mapped BTB.
 *
 * Mispredictions — the events whose recovery interacts with tracked
 * interrupt re-injection (paper §4.2) — emerge from this predictor
 * rather than being scripted.
 */

#ifndef XUI_UARCH_BRANCH_PREDICTOR_HH
#define XUI_UARCH_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "ckpt/codec.hh"

namespace xui
{

/** Gshare (global history xor PC) with 2-bit saturating counters. */
class BranchPredictor
{
  public:
    /**
     * @param table_bits log2 of the pattern-history-table size
     * @param history_bits global history length
     */
    explicit BranchPredictor(unsigned table_bits = 14,
                             unsigned history_bits = 12);

    /** Predict the direction for a branch at `pc`. */
    bool predict(std::uint64_t pc) const;

    /**
     * Train with the actual outcome and update global history.
     * @return true when the earlier prediction would have been wrong
     *         (convenience for counting).
     */
    bool update(std::uint64_t pc, bool taken, bool predicted);

    /** Speculative history update at fetch time. */
    void speculate(bool predicted_taken);

    /** Restore history after a squash (simplified: resync). */
    void restoreHistory(std::uint64_t history);

    std::uint64_t history() const { return history_; }

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t mispredicts() const { return mispredicts_; }

    /** Checkpoint the PHT, history, and counters (masks are
     *  constructor-derived and validated by table size). */
    void saveState(ckpt::Writer &w) const
    {
        w.u64(table_.size());
        w.bytes(table_.data(), table_.size());
        w.u64(history_);
        w.u64(lookups_);
        w.u64(mispredicts_);
    }

    bool loadState(ckpt::Reader &r)
    {
        std::uint64_t n = 0;
        if (!r.u64(n) || n != table_.size())
            return r.fail();
        return r.bytes(table_.data(), table_.size()) &&
               r.u64(history_) && r.u64(lookups_) &&
               r.u64(mispredicts_);
    }

  private:
    std::size_t index(std::uint64_t pc) const;

    std::vector<std::uint8_t> table_;
    std::uint64_t mask_;
    std::uint64_t historyMask_;
    std::uint64_t history_;
    mutable std::uint64_t lookups_;
    std::uint64_t mispredicts_;
};

} // namespace xui

#endif // XUI_UARCH_BRANCH_PREDICTOR_HH
