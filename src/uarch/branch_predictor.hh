/**
 * @file
 * Gshare branch direction predictor plus a direct-mapped BTB.
 *
 * Mispredictions — the events whose recovery interacts with tracked
 * interrupt re-injection (paper §4.2) — emerge from this predictor
 * rather than being scripted.
 */

#ifndef XUI_UARCH_BRANCH_PREDICTOR_HH
#define XUI_UARCH_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

namespace xui
{

/** Gshare (global history xor PC) with 2-bit saturating counters. */
class BranchPredictor
{
  public:
    /**
     * @param table_bits log2 of the pattern-history-table size
     * @param history_bits global history length
     */
    explicit BranchPredictor(unsigned table_bits = 14,
                             unsigned history_bits = 12);

    /** Predict the direction for a branch at `pc`. */
    bool predict(std::uint64_t pc) const;

    /**
     * Train with the actual outcome and update global history.
     * @return true when the earlier prediction would have been wrong
     *         (convenience for counting).
     */
    bool update(std::uint64_t pc, bool taken, bool predicted);

    /** Speculative history update at fetch time. */
    void speculate(bool predicted_taken);

    /** Restore history after a squash (simplified: resync). */
    void restoreHistory(std::uint64_t history);

    std::uint64_t history() const { return history_; }

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t mispredicts() const { return mispredicts_; }

  private:
    std::size_t index(std::uint64_t pc) const;

    std::vector<std::uint8_t> table_;
    std::uint64_t mask_;
    std::uint64_t historyMask_;
    std::uint64_t history_;
    mutable std::uint64_t lookups_;
    std::uint64_t mispredicts_;
};

} // namespace xui

#endif // XUI_UARCH_BRANCH_PREDICTOR_HH
