/**
 * @file
 * Multi-core container for the cycle tier: owns the cores, the
 * process-wide UITT, and the IPI fabric connecting local APICs.
 */

#ifndef XUI_UARCH_UARCH_SYSTEM_HH
#define XUI_UARCH_UARCH_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "intr/uitt.hh"
#include "stats/rng.hh"
#include "uarch/ooo_core.hh"

namespace xui
{

/**
 * A small multi-core system: cores tick in lockstep, senduipi routes
 * through the shared UITT, and notification IPIs traverse the fabric
 * with the configured wire latency.
 */
class UarchSystem
{
  public:
    explicit UarchSystem(std::uint64_t seed = 1);

    /** Create a core running `program`; returns a stable reference. */
    OooCore &addCore(const CoreParams &params, const Program *program);

    /**
     * Attach one tracer to every core, present and future (nullptr
     * detaches). Multi-core traces interleave per tick in core-id
     * order, so a system-wide event stream is still deterministic.
     */
    void setTracer(Tracer *tracer);

    /**
     * Attach one interrupt-lifecycle observer to every core, present
     * and future (nullptr detaches).
     */
    void setIntrObserver(IntrLifecycleObserver *obs);

    OooCore &core(std::size_t i) { return *cores_[i]; }
    std::size_t numCores() const { return cores_.size(); }

    /**
     * Set up a UIPI route to `receiver` (kernel register_handler +
     * register_sender): initializes the receiver's UPID (NV = its
     * UINV, NDST = its APIC id) and allocates a UITT entry.
     * @return the UITT index for senduipi.
     */
    int registerRoute(OooCore &receiver, std::uint8_t user_vector);

    /** senduipi ICR-write commit on `sender` (called by the core). */
    void senduipiCommit(OooCore &sender, std::uint64_t uitt_index);

    /**
     * Post a user IPI to `receiver` as an external agent (models a
     * timer core / kernel repost without simulating the sender's
     * pipeline). Applies the full UPID protocol.
     */
    void injectUipi(OooCore &receiver, std::uint8_t user_vector);

    /** Tick every core one cycle. */
    void tick();

    /** Run for `n` cycles. */
    void run(Cycles n);

    /** Global time (cycle of core 0). */
    Cycles now() const;

    Uitt &uitt() { return uitt_; }

  private:
    Rng master_;
    Uitt uitt_;
    Tracer *tracer_ = nullptr;
    IntrLifecycleObserver *intrObs_ = nullptr;
    std::vector<std::unique_ptr<OooCore>> cores_;
    /** run() scan rotation: index of the core last seen active, so
     *  the all-quiesced test fails fast while it stays busy. */
    std::size_t scanHint_ = 0;
};

} // namespace xui

#endif // XUI_UARCH_UARCH_SYSTEM_HH
