#include "workloads/kernels.hh"

namespace xui
{

namespace
{

/** Shared poll-flag address (stays L1-resident, as in Concord). */
constexpr std::uint64_t kPollFlagAddr = 0x5000'0000ull;

/**
 * Append the back-edge instrumentation chosen by the options. Must
 * be emitted *inside* the hot loop (immediately before the loop
 * branch), as Concord instruments every loop back-edge.
 */
void
emitBackEdgeInstr(ProgramBuilder &b, const KernelOptions &opts)
{
    switch (opts.instr) {
      case Instrumentation::Polling: {
        // Concord-style check: load the preemption flag and branch
        // on it (virtually never taken).
        AddrPattern flag;
        flag.kind = AddrKind::Fixed;
        flag.base = kPollFlagAddr;
        b.load(reg::kGpr0 + 9, flag);
        MacroOp br;
        br.opcode = MacroOpcode::Branch;
        br.src1 = reg::kGpr0 + 9;
        br.target = 0;
        br.branch.kind = BranchKind::Never;
        b.append(br);
        break;
      }
      case Instrumentation::Safepoint:
        // Hardware safepoints are an instruction *prefix* (§4.4):
        // they add no micro-ops. Mark the preceding instruction.
        b.markSafepoint();
        break;
      case Instrumentation::None:
        break;
    }
}

/** Append the user interrupt handler region. */
void
emitHandler(ProgramBuilder &b, const KernelOptions &opts)
{
    if (!opts.withHandler)
        return;
    b.beginHandler();
    // Handler body: acknowledge work / scheduler entry, modeled as
    // a short serial ALU chain plus an independent pair.
    for (unsigned i = 0; i < opts.handlerWork; ++i) {
        b.intAlu(reg::kGpr0 + 12, reg::kGpr0 + 12,
                 reg::kGpr0 + 13);
    }
    b.uiret();
}

} // namespace

Program
makeFib(const KernelOptions &opts)
{
    ProgramBuilder b("fib");
    // r1, r2 hold the rolling pair; serial integer dependency chain.
    std::uint32_t top = b.here();
    for (unsigned i = 0; i < 4; ++i) {
        b.intAlu(reg::kGpr0 + 1, reg::kGpr0 + 1, reg::kGpr0 + 2);
        b.intAlu(reg::kGpr0 + 2, reg::kGpr0 + 1, reg::kGpr0 + 2);
    }
    // Inner loop: 64 trips, then restart (predictable except exits).
    emitBackEdgeInstr(b, opts);
    std::uint32_t back = b.loopBranch(top, 64);
    (void)back;
    b.jump(top);
    emitHandler(b, opts);
    return b.build();
}

Program
makeLinpack(const KernelOptions &opts)
{
    ProgramBuilder b("linpack");
    // daxpy: y[i] += a * x[i]; streaming FP with two loads, FMA
    // chain and a store per iteration over a 1 MB vector pair.
    constexpr std::uint64_t kVecBytes = 1ull << 20;
    std::uint32_t top = b.here();
    AddrPattern x;
    x.kind = AddrKind::Stride;
    x.base = 0x1000'0000ull;
    x.stride = 8;
    x.range = kVecBytes;
    AddrPattern y = x;
    y.base = 0x2000'0000ull;
    b.load(reg::kFpr0 + 0, x);
    b.load(reg::kFpr0 + 1, y);
    b.fpMult(reg::kFpr0 + 2, reg::kFpr0 + 0, reg::kFpr0 + 7);
    b.fpAlu(reg::kFpr0 + 3, reg::kFpr0 + 2, reg::kFpr0 + 1);
    b.store(reg::kFpr0 + 3, y);
    b.intAlu(reg::kGpr0 + 4, reg::kGpr0 + 4);  // index update
    emitBackEdgeInstr(b, opts);
    std::uint32_t back = b.loopBranch(top, 128);
    (void)back;
    b.jump(top);
    emitHandler(b, opts);
    return b.build();
}

Program
makeMemops(const KernelOptions &opts)
{
    ProgramBuilder b("memops");
    // memcpy-like: line-stride load + store over 4 MB buffers.
    constexpr std::uint64_t kBufBytes = 4ull << 20;
    std::uint32_t top = b.here();
    AddrPattern src;
    src.kind = AddrKind::Stride;
    src.base = 0x3000'0000ull;
    src.stride = 64;
    src.range = kBufBytes;
    AddrPattern dst = src;
    dst.base = 0x4000'0000ull;
    b.load(reg::kGpr0 + 1, src);
    b.store(reg::kGpr0 + 1, dst);
    b.load(reg::kGpr0 + 2, src);
    b.store(reg::kGpr0 + 2, dst);
    b.intAlu(reg::kGpr0 + 3, reg::kGpr0 + 3);
    emitBackEdgeInstr(b, opts);
    std::uint32_t back = b.loopBranch(top, 256);
    (void)back;
    b.jump(top);
    emitHandler(b, opts);
    return b.build();
}

Program
makeMatmul(const KernelOptions &opts)
{
    ProgramBuilder b("matmul");
    // Blocked inner kernel: L1-resident tile, dense FMA traffic.
    constexpr std::uint64_t kTileBytes = 16 * 1024;
    std::uint32_t top = b.here();
    AddrPattern tile_a;
    tile_a.kind = AddrKind::Stride;
    tile_a.base = 0x1100'0000ull;
    tile_a.stride = 8;
    tile_a.range = kTileBytes;
    AddrPattern tile_b = tile_a;
    tile_b.base = 0x1200'0000ull;
    tile_b.stride = 64;
    b.load(reg::kFpr0 + 0, tile_a);
    b.load(reg::kFpr0 + 1, tile_b);
    b.fpMult(reg::kFpr0 + 2, reg::kFpr0 + 0, reg::kFpr0 + 1);
    b.fpAlu(reg::kFpr0 + 3, reg::kFpr0 + 3, reg::kFpr0 + 2);
    b.fpMult(reg::kFpr0 + 4, reg::kFpr0 + 0, reg::kFpr0 + 1);
    b.fpAlu(reg::kFpr0 + 5, reg::kFpr0 + 5, reg::kFpr0 + 4);
    emitBackEdgeInstr(b, opts);
    std::uint32_t back = b.loopBranch(top, 32);
    (void)back;
    b.jump(top);
    emitHandler(b, opts);
    return b.build();
}

Program
makeBase64(const KernelOptions &opts)
{
    ProgramBuilder b("base64");
    // Table-lookup integer code: input load, 64-entry LUT lookups
    // (L1 hits), shifts/masks, output store; short trip counts.
    std::uint32_t top = b.here();
    AddrPattern input;
    input.kind = AddrKind::Stride;
    input.base = 0x6000'0000ull;
    input.stride = 8;
    input.range = 1ull << 20;
    AddrPattern lut;
    lut.kind = AddrKind::Random;
    lut.base = 0x6100'0000ull;
    lut.range = 64;
    AddrPattern output;
    output.kind = AddrKind::Stride;
    output.base = 0x6200'0000ull;
    output.stride = 8;
    output.range = 2ull << 20;
    b.load(reg::kGpr0 + 1, input);
    b.intAlu(reg::kGpr0 + 2, reg::kGpr0 + 1);  // shift
    b.load(reg::kGpr0 + 3, lut, reg::kGpr0 + 2);
    b.intAlu(reg::kGpr0 + 4, reg::kGpr0 + 1);  // shift
    b.load(reg::kGpr0 + 5, lut, reg::kGpr0 + 4);
    b.intAlu(reg::kGpr0 + 6, reg::kGpr0 + 3, reg::kGpr0 + 5);
    b.store(reg::kGpr0 + 6, output);
    emitBackEdgeInstr(b, opts);
    std::uint32_t back = b.loopBranch(top, 16);
    (void)back;
    b.jump(top);
    emitHandler(b, opts);
    return b.build();
}

Program
makePointerChase(unsigned chain_length,
                 std::uint64_t working_set_bytes, bool feed_sp,
                 const KernelOptions &opts)
{
    ProgramBuilder b("ptrchase");
    std::uint32_t top = b.here();
    AddrPattern chase;
    chase.kind = AddrKind::Chase;
    chase.base = 0x7000'0000ull;
    chase.range = working_set_bytes;
    // Serialized chain: each load's address register is the prior
    // load's destination.
    std::uint8_t r = reg::kGpr0 + 1;
    for (unsigned i = 0; i < chain_length; ++i)
        b.load(r, chase, r);
    if (feed_sp) {
        // §6.1 pathological case: the dependency chain ultimately
        // produces the stack pointer the delivery microcode reads.
        b.intAlu(reg::kSp, r);
    }
    b.jump(top);
    emitHandler(b, opts);
    return b.build();
}

Program
makeSpinLoop(const KernelOptions &opts)
{
    ProgramBuilder b("spin");
    std::uint32_t top = b.here();
    b.rdtsc(reg::kGpr0 + 1);
    b.intAlu(reg::kGpr0 + 2, reg::kGpr0 + 1);
    b.jump(top);
    emitHandler(b, opts);
    return b.build();
}

Program
makeSenderLoop(unsigned uitt_index)
{
    ProgramBuilder b("sender");
    std::uint32_t top = b.here();
    b.sendUipi(uitt_index);
    b.intAlu(reg::kGpr0 + 1, reg::kGpr0 + 1);
    b.jump(top);
    // Senders also need a handler region in case anything routes
    // back; never used in practice.
    KernelOptions opts;
    emitHandler(b, opts);
    return b.build();
}

} // namespace xui
