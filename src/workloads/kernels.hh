/**
 * @file
 * Synthetic workload kernels for the cycle-level core, modeled after
 * the benchmarks the paper uses: fib, linpack2, memops, matmul,
 * base64, a pointer-chase probe and an rdtsc spin loop.
 *
 * Each builder returns a Program whose instruction mix, memory
 * behaviour and branch behaviour mimic the hot loop of the real
 * benchmark (e.g.\ linpack is an FP daxpy loop with streaming loads;
 * base64 is table-lookup integer code with short-trip loops; the
 * pointer chase is a serialized dependent-load chain over a sizable
 * working set).
 *
 * Options append the paper's two kinds of preemption support:
 *  - a minimal user interrupt handler (for UIPI/xUI experiments);
 *  - Concord-style polling instrumentation (load + branch at loop
 *    back-edges and "function" boundaries) for Figure 5;
 *  - hardware safepoints at the same locations (§4.4).
 */

#ifndef XUI_WORKLOADS_KERNELS_HH
#define XUI_WORKLOADS_KERNELS_HH

#include <cstdint>

#include "uarch/program.hh"

namespace xui
{

/** How the main loop is instrumented for preemption. */
enum class Instrumentation : std::uint8_t
{
    None,       ///< plain kernel
    Polling,    ///< Concord-style poll check at loop back-edges
    Safepoint,  ///< hardware safepoint instructions at back-edges
};

/** Configuration for kernel builders. */
struct KernelOptions
{
    Instrumentation instr = Instrumentation::None;
    /**
     * Handler body length in ALU ops: ~4 models a bare
     * acknowledge-and-return handler; larger values model a
     * user-level context switch (Figure 5 / Aspen-style yield).
     */
    unsigned handlerWork = 4;
    /** Attach the user interrupt handler region. */
    bool withHandler = true;
};

/** Integer Fibonacci-like dependency chain with loop branches. */
Program makeFib(const KernelOptions &opts = {});

/** FP daxpy inner loop (linpack2): streaming loads + FMA chain. */
Program makeLinpack(const KernelOptions &opts = {});

/** memcpy-like load/store streaming kernel (memops). */
Program makeMemops(const KernelOptions &opts = {});

/** Blocked matrix-multiply inner kernel (matmul). */
Program makeMatmul(const KernelOptions &opts = {});

/** base64 encode: table-lookup loads + shifts, short loops. */
Program makeBase64(const KernelOptions &opts = {});

/**
 * Pointer chase: `chainLength` serialized dependent loads over a
 * working set of `workingSetBytes` (cache misses rise with size),
 * ending with an op that feeds the stack pointer when
 * `feedSp` is set — the paper's §6.1 pathological case.
 */
Program makePointerChase(unsigned chain_length,
                         std::uint64_t working_set_bytes,
                         bool feed_sp,
                         const KernelOptions &opts = {});

/** rdtsc spin loop — the Table 2 / Figure 2 receiver program. */
Program makeSpinLoop(const KernelOptions &opts = {});

/**
 * Sender loop for Table 2: repeatedly executes senduipi to the
 * given UITT index.
 */
Program makeSenderLoop(unsigned uitt_index);

} // namespace xui

#endif // XUI_WORKLOADS_KERNELS_HH
