/**
 * @file
 * End-to-end delivery accounting for fault-injected runs.
 *
 * Every notification-bearing protocol in the repo is at-least-once
 * with coalescing: posting the same vector twice before the receiver
 * scans collapses into one delivery (UPID PIR, DUPID, SIGALRM
 * pending-signal semantics all coalesce by design). The ledger
 * therefore tracks per-key post/delivery counts and checks:
 *
 *  - no phantom delivery: a key is never delivered more times than
 *    it was posted (catches duplicated notifications leaking through
 *    the dedup logic, and handler invocations for vectors that were
 *    never raised);
 *  - no loss: every key posted at least once is delivered at least
 *    once, unless it was explicitly accounted as dropped-with-
 *    fallback (e.g. an in-flight timer fire cancelled by a re-arm);
 *  - no stranding: at check() time no key has posts newer than its
 *    last delivery/abandonment — coalescing only collapses posts
 *    that *precede* a delivery, so a trailing undelivered post is a
 *    loss even on a key that delivered earlier in the run;
 *  - violations carry the decoded key so a failing chaos cell
 *    reports *which* thread/vector was lost or duplicated.
 *
 * Keys are opaque 64-bit values; keyFor() packs (kind, thread,
 * vector) so the DES-tier kernel's four notification channels share
 * one ledger without colliding.
 */

#ifndef XUI_FAULT_INVARIANTS_HH
#define XUI_FAULT_INVARIANTS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace xui::fault
{

/** Notification channel a ledger key belongs to. */
enum class Channel : std::uint8_t
{
    Uipi,
    KbTimer,
    Forward,
    Signal,
};

/** Pack a (channel, thread, vector) into a ledger key. */
std::uint64_t keyFor(Channel ch, std::uint32_t thread,
                     unsigned vector);

/** Human-readable decoding of a ledger key. */
std::string describeKey(std::uint64_t key);

/** Per-run delivery accounting (see file comment). */
class DeliveryLedger
{
  public:
    /** A vector was posted/raised toward a receiver. */
    void onPosted(std::uint64_t key);

    /** The receiver's handler ran for the vector. */
    void onDelivered(std::uint64_t key);

    /**
     * The vector will never be delivered, and that is the intended
     * outcome (e.g. an in-flight fire cancelled by re-arm, or a
     * sender that exhausted retries against a receiver that never
     * resumes). Counts toward accounting, not toward loss.
     */
    void onAbandoned(std::uint64_t key);

    /**
     * Exactly one post was intentionally dropped (NEXT_ONLY: the
     * post never reached the pending state). Unlike onAbandoned it
     * leaves earlier posts outstanding — they are still pending for
     * a later delivery to consume.
     */
    void onAbandonedOne(std::uint64_t key);

    /** A notification scan found nothing pending (allowed; counted). */
    void onSpuriousScan() { ++spuriousScans_; }

    std::uint64_t posted() const { return posted_; }
    std::uint64_t delivered() const { return delivered_; }
    std::uint64_t abandoned() const { return abandoned_; }
    std::uint64_t spuriousScans() const { return spuriousScans_; }

    /**
     * Posts satisfied by a delivery they shared with earlier posts
     * (PIR / DUPID / moderation-window coalescing): each delivery
     * that finds k>1 outstanding posts adds k-1 here. The
     * generalized no-loss invariant is then
     *   posted == (delivered's own posts) + coalescedSatisfied
     *           + abandoned + outstanding
     * i.e. every post is delivered, coalesced into a delivery, or
     * explicitly abandoned — never silently lost.
     */
    std::uint64_t coalescedSatisfied() const
    {
        return coalescedSatisfied_;
    }

    /** Posts not yet covered by any delivery/abandonment. */
    std::uint64_t outstanding() const;

    /**
     * Evaluate the invariants over everything recorded so far.
     * @return one message per violation (empty = all invariants
     *         hold). Phantom deliveries are also recorded eagerly at
     *         onDelivered() time so they survive later posts.
     */
    std::vector<std::string> check() const;

    bool ok() const { return check().empty(); }

  private:
    struct Entry
    {
        std::uint64_t posted = 0;
        std::uint64_t delivered = 0;
        std::uint64_t abandoned = 0;
        /** Posts since the last delivery/abandonment: must be zero
         *  at check() time or the notification is stranded. */
        std::uint64_t outstanding = 0;
    };
    /** Ordered map: violation lists render deterministically. */
    std::map<std::uint64_t, Entry> entries_;
    std::vector<std::string> eager_;
    std::uint64_t posted_ = 0;
    std::uint64_t delivered_ = 0;
    std::uint64_t abandoned_ = 0;
    std::uint64_t spuriousScans_ = 0;
    std::uint64_t coalescedSatisfied_ = 0;
};

} // namespace xui::fault

#endif // XUI_FAULT_INVARIANTS_HH
