#include "fault/watchdog.hh"

#include <sstream>

namespace xui::fault
{

std::uint64_t
Watchdog::runUntil(Cycles limit)
{
    std::uint64_t executed = 0;
    for (;;) {
        Cycles w = queue_.peekNextTime();
        if (w == EventQueue::kNoPending || w > limit)
            break;
        if (eventsRun_ >= maxEvents_) {
            constexpr std::size_t kSnapshot = 8;
            auto pending = queue_.pendingSnapshot(kSnapshot);
            std::ostringstream msg;
            msg << "StuckSimulation: event budget of " << maxEvents_
                << " exhausted at cycle " << queue_.now() << " ("
                << queue_.pending() << " events still pending";
            if (!pending.empty()) {
                msg << "; next:";
                for (const auto &p : pending)
                    msg << " @" << p.when << "#" << p.seq;
            }
            msg << ")";
            throw StuckSimulation(msg.str(), queue_.now(),
                                  queue_.firedCount(),
                                  queue_.pending(),
                                  std::move(pending));
        }
        if (!queue_.runOne())
            break;
        ++executed;
        ++eventsRun_;
    }
    return executed;
}

} // namespace xui::fault
