/**
 * @file
 * Deterministic fault-injection fabric (chaos layer).
 *
 * The simulator's protocol machinery — tracked interrupts, the SN
 * bit, KB-timer save/restore, DUPID parking — exists to stay correct
 * under adverse timing, yet without this layer every notification is
 * delivered perfectly and those paths go unexercised. The fabric
 * injects *schedulable* faults at named protocol sites: a fault
 * schedule is a finite list of directives, each matching the n-th
 * consult of one site, so a run is a pure function of (scenario
 * seed, schedule) and any failure replays bit-for-bit. Schedules are
 * usually generated from a seed, but they round-trip through a
 * compact text encoding so a failing cell can be shrunk to a minimal
 * directive list and replayed from the command line.
 *
 * Determinism contract: an Injector holds no RNG — every decision is
 * a table lookup keyed by (site, consult count). Components consult
 * the fabric only when an injector is attached, so with faults
 * disabled no extra branches beyond one null check run and all
 * digests are bit-identical to the unfaulted build.
 */

#ifndef XUI_FAULT_FAULT_HH
#define XUI_FAULT_FAULT_HH

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hh"

namespace xui::fault
{

/** Protocol sites where the fabric can be consulted. */
enum class Site : std::uint8_t
{
    /** senduipi decided to emit a notification IPI (ON 0->1). */
    NotifyIpi,
    /** KB timer expiry observed at a poll point. */
    KbTimerFire,
    /** KB timer poll point (expired or not): spurious-fire window. */
    KbTimerPoll,
    /** Forwarded device interrupt took the APIC fast path. */
    ForwardDispatch,
    /** Scenario-consulted receiver deschedule window. */
    Deschedule,
    /** InterruptUnit::raise on the uarch tier. */
    RaiseUarch,
    /** A scheduled moderation-window flush is about to deliver. */
    ModerationFlush,
    /** Kernel occupancy engine is saving a preempted handler frame. */
    PreemptSave,
    /** Fast-forward mode transition on the uarch tier (entry about
     *  to happen or exit just completed): the window where sampled
     *  simulation hands off between the functional loop and the
     *  detailed pipeline. */
    FfTransition,
    /** Snapshot engine is writing a checkpoint file: torn writes,
     *  truncation, bit flips, and lost saves are modeled here. */
    CheckpointWrite,
    kCount,
};

constexpr std::size_t kNumSites = static_cast<std::size_t>(Site::kCount);

/** What to do to the operation at a matched site consult. */
enum class Action : std::uint8_t
{
    /** No fault (the default for every unmatched consult). */
    None,
    /** Lose the notification/fire entirely. */
    Drop,
    /** Deliver `magnitude` cycles late (Deschedule: window length). */
    Delay,
    /** Deliver, then deliver again (UPID dedup absorbs it). */
    Duplicate,
    /**
     * ON/PIR write reordering: the notification scan runs before the
     * PIR write is visible, so it finds nothing and must rescan.
     */
    Reorder,
    /** Fire with no armed expiry (receiver must tolerate). */
    Spurious,
    /** Notification storm: `magnitude` redundant rescans. */
    Storm,
    kCount,
};

const char *siteName(Site s);
const char *actionName(Action a);

/** One scheduled fault: apply `action` to the `occurrence`-th
 *  consult (0-based) of `site`. */
struct Directive
{
    Site site = Site::NotifyIpi;
    std::uint64_t occurrence = 0;
    Action action = Action::None;
    /** Delay cycles, window length, or storm size (action-specific). */
    std::uint32_t magnitude = 0;

    bool operator==(const Directive &o) const
    {
        return site == o.site && occurrence == o.occurrence &&
               action == o.action && magnitude == o.magnitude;
    }
};

/**
 * A complete fault schedule. Encodes to
 * "site:occurrence:action:magnitude;..." — stable, human-readable,
 * and replayable via xui_chaos --schedule.
 */
struct Schedule
{
    std::vector<Directive> directives;

    std::string encode() const;
    /** @return false on malformed text (`out` untouched). */
    static bool decode(const std::string &text, Schedule &out);

    bool empty() const { return directives.empty(); }
    std::size_t size() const { return directives.size(); }
};

/** Knobs for seed-driven schedule generation. */
struct ScheduleOptions
{
    /** Directives per schedule. */
    unsigned directives = 8;
    /** Occurrence indices are drawn uniformly below this horizon. */
    std::uint64_t horizon = 48;
    /** Delay magnitudes are drawn in [1, maxDelay]. */
    std::uint32_t maxDelay = 4096;
    /** Deschedule windows are drawn in [1, maxWindow]. */
    std::uint32_t maxWindow = 8192;
    /** Storm sizes are drawn in [2, maxStorm]. */
    std::uint32_t maxStorm = 6;

    // Per-class enables (shrunk reproducers often isolate one).
    bool dropNotification = true;
    bool delayNotification = true;
    bool duplicateNotification = true;
    bool reorderUpid = true;
    bool stormNotification = true;
    bool timerMisfire = true;
    bool timerDelay = true;
    bool timerSpurious = true;
    bool dropForward = true;
    bool delayForward = true;
    bool descheduleWindow = true;
    // Moderation-flush faults only make sense against a kernel with
    // moderation configured, so they default off: every schedule
    // generated before this layer existed stays byte-identical.
    bool dropModerationFlush = false;
    bool delayModerationFlush = false;
    // Preempt-save faults only make sense against a kernel with
    // handler occupancy costs (the priority engine) configured, so
    // they default off for the same byte-identical reason.
    bool dropPreemptSave = false;
    bool duplicatePreemptSave = false;
    // Fast-forward boundary faults only make sense against a core
    // running sampled-detail simulation, so they default off for
    // the same byte-identical reason. Delay pins full detail at the
    // transition; Drop/Duplicate arm the next raise at the boundary
    // to be lost or doubled.
    bool delayFfDetail = false;
    bool dropFfRaise = false;
    bool duplicateFfRaise = false;
    // Checkpoint-write faults only make sense for cells that take
    // on-disk snapshots (the ckpt_crash scenario), so they default
    // off for the same byte-identical reason. The action names are
    // reused for storage damage: Drop = save lost, Delay = torn
    // half-write, Duplicate = payload bit flip, Reorder = truncated
    // after the header, Spurious = bad magic, Storm = zero-length.
    bool dropCkptWrite = false;
    bool tearCkptWrite = false;
    bool flipCkptWrite = false;
    bool truncateCkptWrite = false;
    // Deschedule-site storm: the ckpt_crash scenario turns a storm
    // decision into a runaway self-rescheduling event loop — the
    // livelock the watchdog budget converts into StuckSimulation and
    // rollback-recovery must survive. Off by default for the same
    // byte-identical reason.
    bool stormDeschedule = false;
};

/**
 * Generate a schedule deterministically from a seed. Identical
 * (seed, options) always produce the identical schedule.
 */
Schedule generateSchedule(std::uint64_t seed,
                          const ScheduleOptions &opts);

/**
 * The injection engine: counts consults per site and answers with
 * the scheduled action when a directive matches, Action::None
 * otherwise. Holds no RNG; identical consult sequences always get
 * identical answers.
 */
class Injector
{
  public:
    struct Decision
    {
        Action action = Action::None;
        std::uint32_t magnitude = 0;
    };

    explicit Injector(Schedule schedule);

    /** Consult the fabric at a site (bumps the site's counter). */
    Decision decide(Site site);

    /** Consults so far at a site. */
    std::uint64_t consults(Site site) const
    {
        return counts_[static_cast<std::size_t>(site)];
    }

    /** Directives that actually matched a consult. */
    std::uint64_t injected() const { return injected_; }

    const Schedule &schedule() const { return schedule_; }

    /**
     * Register "fault.injected.<action>" counters; decisions bump
     * them. Null-safe like every other attachMetrics in the repo.
     */
    void attachMetrics(MetricsRegistry &registry);

  private:
    Schedule schedule_;
    /** site -> occurrence -> directive index (first match wins). */
    std::array<std::unordered_map<std::uint64_t, std::size_t>,
               kNumSites>
        byOccurrence_;
    std::array<std::uint64_t, kNumSites> counts_{};
    std::uint64_t injected_ = 0;
    std::array<Counter *, static_cast<std::size_t>(Action::kCount)>
        actionCounters_{};
};

} // namespace xui::fault

#endif // XUI_FAULT_FAULT_HH
