#include "fault/invariants.hh"

namespace xui::fault
{

namespace
{

const char *
channelName(Channel ch)
{
    switch (ch) {
      case Channel::Uipi:
        return "uipi";
      case Channel::KbTimer:
        return "kbtimer";
      case Channel::Forward:
        return "forward";
      case Channel::Signal:
        return "signal";
    }
    return "?";
}

} // namespace

std::uint64_t
keyFor(Channel ch, std::uint32_t thread, unsigned vector)
{
    return (static_cast<std::uint64_t>(ch) << 48) |
           (static_cast<std::uint64_t>(thread) << 16) |
           (vector & 0xffffu);
}

std::string
describeKey(std::uint64_t key)
{
    Channel ch = static_cast<Channel>((key >> 48) & 0xff);
    std::uint32_t thread =
        static_cast<std::uint32_t>((key >> 16) & 0xffffffffu);
    unsigned vector = static_cast<unsigned>(key & 0xffffu);
    return std::string(channelName(ch)) + " thread " +
           std::to_string(thread) + " vector " +
           std::to_string(vector);
}

void
DeliveryLedger::onPosted(std::uint64_t key)
{
    Entry &e = entries_[key];
    ++e.posted;
    ++e.outstanding;
    ++posted_;
}

void
DeliveryLedger::onDelivered(std::uint64_t key)
{
    Entry &e = entries_[key];
    ++e.delivered;
    ++delivered_;
    // One delivery satisfies every post that preceded it (PIR /
    // DUPID / pending-signal coalescing). The extras are accounted
    // as coalesced-into-this-delivery, not lost.
    if (e.outstanding > 1)
        coalescedSatisfied_ += e.outstanding - 1;
    e.outstanding = 0;
    // Record eagerly: a later post would otherwise mask the phantom.
    if (e.delivered > e.posted)
        eager_.push_back("phantom delivery: " + describeKey(key) +
                         " delivered " +
                         std::to_string(e.delivered) +
                         "x after only " +
                         std::to_string(e.posted) + " posts");
}

void
DeliveryLedger::onAbandoned(std::uint64_t key)
{
    Entry &e = entries_[key];
    ++e.abandoned;
    e.outstanding = 0;
    ++abandoned_;
}

void
DeliveryLedger::onAbandonedOne(std::uint64_t key)
{
    Entry &e = entries_[key];
    ++e.abandoned;
    if (e.outstanding > 0)
        --e.outstanding;
    ++abandoned_;
}

std::uint64_t
DeliveryLedger::outstanding() const
{
    std::uint64_t n = 0;
    for (const auto &[key, e] : entries_)
        n += e.outstanding;
    return n;
}

std::vector<std::string>
DeliveryLedger::check() const
{
    std::vector<std::string> out = eager_;
    for (const auto &[key, e] : entries_) {
        if (e.delivered > e.posted)
            continue;  // already reported eagerly
        if (e.posted > 0 && e.delivered == 0 && e.abandoned == 0) {
            out.push_back("lost notification: " + describeKey(key) +
                          " posted " + std::to_string(e.posted) +
                          "x, never delivered");
        } else if (e.outstanding > 0) {
            // The key saw deliveries, but posts arrived after the
            // last one and nothing ever satisfied them: a stranded
            // notification a whole-run total can't see.
            out.push_back("stranded notification: " +
                          describeKey(key) + " has " +
                          std::to_string(e.outstanding) +
                          " post(s) after its last delivery");
        }
    }
    return out;
}

} // namespace xui::fault
