#include "fault/chaos.hh"

#include <cassert>
#include <memory>
#include <utility>

#include <algorithm>
#include <sstream>

#include "ckpt/codec.hh"
#include "ckpt/snapshot.hh"
#include "des/simulation.hh"
#include "exec/sweep.hh"
#include "fault/invariants.hh"
#include "fault/watchdog.hh"
#include "stats/digest.hh"
#include "obs/metrics.hh"
#include "os/kernel.hh"
#include "runtime/sender.hh"
#include "stats/rng.hh"
#include "uarch/uarch_system.hh"
#include "workloads/kernels.hh"

namespace xui::chaos
{

namespace
{

const char *const kScenarioNames[kNumScenarios] = {
    "uipi_pingpong",
    "kbtimer_periodic",
    "forwarding_storm",
    "sender_retry",
    "interval_signals",
    "coalesce_drop",
    "itr_misfire",
    "preempt_storm",
    "ff_boundary",
    "ckpt_crash",
};

std::uint64_t
splitmix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Everything a scenario's event lambdas reach into. */
struct Cell
{
    const CellConfig &cfg;
    Simulation sim;
    CostModel costs;
    Kernel kernel;
    fault::Injector inj;
    fault::DeliveryLedger ledger;
    MetricsRegistry metrics;
    Rng rng;

    /** Threads to quiesce in the final drain. */
    std::vector<ThreadId> threads;
    std::uint64_t handlerRuns = 0;

    // Sources the drain phase must stop first.
    std::unique_ptr<PeriodicEvent> poll;
    std::vector<int> intervalIds;
    std::unique_ptr<ReliableSender> sender;

    explicit Cell(const CellConfig &c)
        : cfg(c), sim(c.seed), kernel(sim, costs, 2),
          inj(c.schedule),
          rng(splitmix(c.seed ^
                       (static_cast<std::uint64_t>(c.kind) + 1)))
    {
        kernel.attachMetrics(metrics);
        inj.attachMetrics(metrics);
        kernel.setFaultInjector(&inj);
        kernel.setDeliveryLedger(&ledger);
        kernel.setRecoveryEnabled(c.recovery);
    }

    ThreadId makeReceiver(CoreId core)
    {
        ThreadId t = kernel.createThread();
        kernel.registerHandler(t,
                               [this](unsigned) { ++handlerRuns; });
        kernel.scheduleOn(t, core);
        threads.push_back(t);
        return t;
    }

    /**
     * Fault-driven deschedule window: Site::Deschedule consult; a
     * Delay directive closes the receiver for `magnitude` cycles.
     * The resume is always scheduled, so windows end.
     */
    void maybeFaultWindow(ThreadId tid, CoreId core)
    {
        auto d = inj.decide(fault::Site::Deschedule);
        if (d.action != fault::Action::Delay || d.magnitude == 0)
            return;
        openWindow(tid, core, d.magnitude);
    }

    void openWindow(ThreadId tid, CoreId core, Cycles len)
    {
        if (!kernel.isRunning(tid))
            return;
        kernel.deschedule(tid);
        sim.queue().scheduleAfter(len, [this, tid, core] {
            if (!kernel.isRunning(tid))
                kernel.scheduleOn(tid, core);
        });
    }

    void stopSources()
    {
        if (poll)
            poll->stop();
        for (int id : intervalIds)
            kernel.cancelInterval(id);
    }

    /**
     * Runaway self-rescheduling event loop — the livelock a
     * deschedule-site Storm directive plants in the ckpt_crash
     * scenario. Nothing ever stops it; the watchdog budget converts
     * it into StuckSimulation and rollback-recovery must regress to
     * a checkpoint predating the directive (or a clean restart).
     */
    void startLivelock()
    {
        if (livelocked)
            return;
        livelocked = true;
        livelockTick();
    }

    void livelockTick()
    {
        sim.queue().scheduleAfter(1, [this] { livelockTick(); });
    }

    bool livelocked = false;

    /**
     * Deterministic background tick through the horizon. The
     * ckpt_crash scenario runs it so the event stream is dense
     * enough that periodic snapshots and the seed-chosen kill point
     * land inside every cell, storm or not (the protocol traffic
     * alone fires only a few hundred events). Stops itself at the
     * horizon, so drains are unaffected.
     */
    void startTicker(Cycles period)
    {
        if (sim.now() + period > cfg.horizon)
            return;
        sim.queue().scheduleAfter(period, [this, period] {
            startTicker(period);
        });
    }

    /** Reschedule everyone once so parked vectors drain. */
    void finalDrain()
    {
        for (ThreadId t : threads)
            if (kernel.isRunning(t))
                kernel.deschedule(t);
        for (ThreadId t : threads) {
            kernel.scheduleOn(t, 0);
            kernel.deschedule(t);
        }
    }
};

/** Draw `n` event times in [1, span], sorted by construction order
 *  (the queue orders same-cycle events by schedule order anyway). */
std::vector<Cycles>
drawTimes(Rng &rng, unsigned n, Cycles span)
{
    std::vector<Cycles> times(n);
    for (auto &t : times)
        t = 1 + rng.nextBounded(span);
    return times;
}

void
buildUipiPingPong(Cell &c)
{
    ThreadId recv = c.makeReceiver(1);
    int idx = c.kernel.registerSender(
        recv, static_cast<std::uint8_t>(1 + c.rng.nextBounded(3)));
    assert(idx >= 0);

    // Baseline deschedule windows independent of the fault schedule,
    // so the SN/repost slow path is exercised in every cell.
    for (Cycles t : drawTimes(c.rng, 4, c.cfg.horizon * 3 / 4)) {
        Cycles len = 200 + c.rng.nextBounded(1800);
        c.sim.queue().scheduleAt(t, [&c, recv, len] {
            c.openWindow(recv, 1, len);
        });
    }
    for (Cycles t : drawTimes(c.rng, 48, c.cfg.horizon * 3 / 4)) {
        c.sim.queue().scheduleAt(t, [&c, recv, idx] {
            c.maybeFaultWindow(recv, 1);
            c.kernel.senduipi(idx);
        });
    }
}

void
buildKbTimerPeriodic(Cell &c)
{
    ThreadId t = c.makeReceiver(0);
    c.kernel.enableKbTimer(t, 33);
    Cycles period = 400 + c.rng.nextBounded(1600);
    c.kernel.setTimer(t, period, KbTimerMode::Periodic);

    for (Cycles w : drawTimes(c.rng, 4, c.cfg.horizon * 3 / 4)) {
        Cycles len = 200 + c.rng.nextBounded(2200);
        c.sim.queue().scheduleAt(w, [&c, t, len] {
            c.openWindow(t, 0, len);
        });
    }

    Cycles tick = period / 4 < 64 ? 64 : period / 4;
    c.poll = std::make_unique<PeriodicEvent>(
        c.sim.queue(), tick, [&c, t] {
            c.maybeFaultWindow(t, 0);
            c.kernel.pollKbTimer(0, c.sim.now());
            return true;
        });
    c.poll->startAfterPeriod();
}

void
buildForwardingStorm(Cell &c)
{
    ThreadId t = c.makeReceiver(0);
    int vec = c.kernel.registerForwarding(t, 0);
    assert(vec >= 0);

    for (Cycles w : drawTimes(c.rng, 5, c.cfg.horizon * 3 / 4)) {
        Cycles len = 200 + c.rng.nextBounded(1800);
        c.sim.queue().scheduleAt(w, [&c, t, len] {
            c.openWindow(t, 0, len);
        });
    }
    for (Cycles w : drawTimes(c.rng, 48, c.cfg.horizon * 3 / 4)) {
        c.sim.queue().scheduleAt(w, [&c, t, vec] {
            c.maybeFaultWindow(t, 0);
            c.kernel.deviceInterrupt(
                0, static_cast<unsigned>(vec));
        });
    }
}

void
buildSenderRetry(Cell &c)
{
    ThreadId recv = c.makeReceiver(1);
    int idx = c.kernel.registerSender(recv, 2);
    assert(idx >= 0);
    ReliableSender::Options opts;
    opts.maxAttempts = 4;
    opts.backoff = 32 + c.rng.nextBounded(97);
    c.sender = std::make_unique<ReliableSender>(c.sim, c.kernel,
                                               idx, opts);
    c.sender->attachMetrics(c.metrics);

    // Aggressive windows: half the sends race a closed receiver, so
    // the retry loop (not just the resume drain) earns its keep.
    std::vector<Cycles> sends =
        drawTimes(c.rng, 32, c.cfg.horizon * 3 / 4);
    for (Cycles w : sends) {
        bool closed = c.rng.nextBool(0.5);
        Cycles len = 100 + c.rng.nextBounded(1400);
        c.sim.queue().scheduleAt(w, [&c, recv, closed, len] {
            c.maybeFaultWindow(recv, 1);
            if (closed)
                c.openWindow(recv, 1, len);
            c.sender->send();
        });
    }
}

void
buildIntervalSignals(Cell &c)
{
    ThreadId t = c.makeReceiver(0);
    Cycles interval = 800 + c.rng.nextBounded(1200);
    int id = c.kernel.setInterval(t, interval, 14);
    assert(id >= 0);
    c.intervalIds.push_back(id);

    for (Cycles w : drawTimes(c.rng, 6, c.cfg.horizon * 3 / 4)) {
        Cycles len = 400 + c.rng.nextBounded(2600);
        c.sim.queue().scheduleAt(w, [&c, t, len] {
            c.maybeFaultWindow(t, 0);
            c.openWindow(t, 0, len);
        });
    }
}

/**
 * Moderated UIPI stream whose flush events the fault fabric drops
 * mid-window (Site::ModerationFlush). Dense bursts keep a coalescing
 * window open most of the run, so a dropped flush strands a whole
 * batch in the PIR — which must then come back via the recovery
 * rescan or the resume drain, never be silently lost.
 */
void
buildCoalesceDrop(Cell &c)
{
    std::uint8_t vec =
        static_cast<std::uint8_t>(1 + c.rng.nextBounded(3));
    ThreadId recv = c.makeReceiver(1);
    int idx = c.kernel.registerSender(recv, vec);
    assert(idx >= 0);
    ModerationParams mp;
    mp.itr = 300 + c.rng.nextBounded(700);
    mp.coalesceWindow = mp.itr / 2;
    c.kernel.setModeration(recv, vec, mp);

    for (Cycles t : drawTimes(c.rng, 3, c.cfg.horizon * 3 / 4)) {
        Cycles len = 200 + c.rng.nextBounded(1800);
        c.sim.queue().scheduleAt(t, [&c, recv, len] {
            c.openWindow(recv, 1, len);
        });
    }
    for (Cycles t : drawTimes(c.rng, 64, c.cfg.horizon * 3 / 4)) {
        c.sim.queue().scheduleAt(t, [&c, recv, idx] {
            c.maybeFaultWindow(recv, 1);
            c.kernel.senduipi(idx);
        });
    }
}

/**
 * Heavy ITR suppression (no coalescing window, long gaps) with the
 * fault fabric delaying flushes and the receiver bouncing through
 * deschedule windows: flushes misfire against a parked receiver and
 * the batch has to ride the resume drain.
 */
void
buildItrMisfire(Cell &c)
{
    std::uint8_t vec =
        static_cast<std::uint8_t>(1 + c.rng.nextBounded(3));
    ThreadId recv = c.makeReceiver(1);
    int idx = c.kernel.registerSender(recv, vec);
    assert(idx >= 0);
    ModerationParams mp;
    mp.itr = 1500 + c.rng.nextBounded(2500);
    c.kernel.setModeration(recv, vec, mp);

    for (Cycles t : drawTimes(c.rng, 6, c.cfg.horizon * 3 / 4)) {
        Cycles len = 400 + c.rng.nextBounded(2400);
        c.sim.queue().scheduleAt(t, [&c, recv, len] {
            c.openWindow(recv, 1, len);
        });
    }
    for (Cycles t : drawTimes(c.rng, 48, c.cfg.horizon * 3 / 4)) {
        c.sim.queue().scheduleAt(t, [&c, recv, idx] {
            c.maybeFaultWindow(recv, 1);
            c.kernel.senduipi(idx);
        });
    }
}

/**
 * Mixed-criticality co-tenancy on one resident receiver: three
 * vectors at priorities 0/1/3 whose handler occupancies are chosen
 * so that higher-priority arrivals almost always land mid-frame and
 * preempt. The receiver never deschedules (the occupancy engine is
 * not scheduling-aware); the grid aims faults at the preempt-save
 * window, so lost and torn frame spills must come back through the
 * replay path or be caught by the ledger, never vanish silently.
 */
void
buildPreemptStorm(Cell &c)
{
    ThreadId recv = c.makeReceiver(1);
    const unsigned vecs[3] = {1, 2, 3};
    const unsigned prios[3] = {0, 1, 3};
    const Cycles frame[3] = {4000, 1500, 300};
    const unsigned sends[3] = {24, 32, 48};
    int idx[3];
    for (int i = 0; i < 3; ++i) {
        idx[i] = c.kernel.registerSender(
            recv, static_cast<std::uint8_t>(vecs[i]));
        assert(idx[i] >= 0);
        DeliveryPolicy p;
        p.priority = clampPriority(prios[i]);
        c.kernel.setDeliveryPolicy(recv, vecs[i], p);
        c.kernel.setHandlerCost(recv, vecs[i], frame[i]);
    }
    for (int i = 0; i < 3; ++i) {
        for (Cycles t : drawTimes(c.rng, sends[i],
                                  c.cfg.horizon * 3 / 4)) {
            int ix = idx[i];
            c.sim.queue().scheduleAt(t, [&c, ix] {
                c.kernel.senduipi(ix);
            });
        }
    }
}

/**
 * The checkpoint/crash scenario: a UIPI stream with deschedule
 * windows (so the protocol slow paths stay exercised) whose fault
 * consults can also plant a livelock (Storm) that only rollback
 * recovery survives. The runCellCkpt driver snapshots this cell
 * every few hundred events, kills it mid-run, and restores.
 */
void
buildCkptCrash(Cell &c)
{
    c.startTicker(40);
    ThreadId recv = c.makeReceiver(1);
    int idx = c.kernel.registerSender(
        recv, static_cast<std::uint8_t>(1 + c.rng.nextBounded(3)));
    assert(idx >= 0);

    for (Cycles t : drawTimes(c.rng, 4, c.cfg.horizon * 3 / 4)) {
        Cycles len = 200 + c.rng.nextBounded(1800);
        c.sim.queue().scheduleAt(t, [&c, recv, len] {
            c.openWindow(recv, 1, len);
        });
    }
    for (Cycles t : drawTimes(c.rng, 48, c.cfg.horizon * 3 / 4)) {
        c.sim.queue().scheduleAt(t, [&c, recv, idx] {
            auto d = c.inj.decide(fault::Site::Deschedule);
            if (d.action == fault::Action::Delay &&
                d.magnitude != 0)
                c.openWindow(recv, 1, d.magnitude);
            else if (d.action == fault::Action::Storm)
                c.startLivelock();
            c.kernel.senduipi(idx);
        });
    }
}

/**
 * FfBoundary runs on the uarch tier, not through the kernel Cell: a
 * fast-forwarding core with a periodic KB timer plus a burst of
 * external UIPIs, every one of them a wake source the sampled-detail
 * controller must hand off around. Site::FfTransition is consulted
 * exactly at the mode-transition cycles; a Delay directive pins full
 * detail at the boundary, and Drop/Duplicate arm the next raise (the
 * one landing on the handoff) to be lost or doubled. The cell then
 * checks the same interrupt conservation and record-timeline
 * invariants the verify tier enforces.
 */
CellResult
runFfBoundaryCell(const CellConfig &cfg)
{
    CellResult res;
    Rng rng(splitmix(cfg.seed ^
                     (static_cast<std::uint64_t>(cfg.kind) + 1)));
    fault::Injector inj(cfg.schedule);

    Program prog = makeSpinLoop();
    CoreParams params;
    params.fastForward = true;
    params.detailWindow = 1 + rng.nextBounded(128);
    params.ffWarmup = 8 + rng.nextBounded(57);
    UarchSystem sys(cfg.seed * 1000003 + 17);
    OooCore &core = sys.addCore(params, &prog);
    core.kbTimer().configure(true, 0x21);
    core.kbTimer().setTimer(0, 600 + rng.nextBounded(1800),
                            KbTimerMode::Periodic);

    auto armed = InterruptUnit::RaiseOutcome::Deliver;
    core.intrUnit().setRaiseFaultHook(
        [&](IntrSource, std::uint8_t) {
            auto out = armed;
            armed = InterruptUnit::RaiseOutcome::Deliver;
            if (out == InterruptUnit::RaiseOutcome::Drop)
                ++res.ffRaisesDropped;
            return out;
        });
    core.setFfTransitionHook([&](bool, Cycles) -> Cycles {
        auto d = inj.decide(fault::Site::FfTransition);
        switch (d.action) {
          case fault::Action::Delay:
            return d.magnitude;
          case fault::Action::Drop:
            armed = InterruptUnit::RaiseOutcome::Drop;
            return 0;
          case fault::Action::Duplicate:
            armed = InterruptUnit::RaiseOutcome::Duplicate;
            return 0;
          default:
            return 0;
        }
    });

    // The inbox pops in arrival order, so queue the burst sorted.
    std::vector<Cycles> uipis =
        drawTimes(rng, 12, cfg.horizon * 3 / 4);
    std::sort(uipis.begin(), uipis.end());
    for (Cycles t : uipis)
        core.receiveIpi(core.uinv(), t);

    core.runCycles(cfg.horizon);

    const CoreStats &s = core.stats();
    res.posted = s.interruptsRaised;
    res.delivered = s.interruptsDelivered;
    res.injected = inj.injected();
    res.handlerRuns = s.interruptsDelivered;
    res.ffEntries = s.ffEntries;
    res.ffExits = s.ffExits;

    if (s.interruptsRaised < s.interruptsDelivered) {
        std::ostringstream os;
        os << "duplicated deliveries: raised "
           << s.interruptsRaised << " < delivered "
           << s.interruptsDelivered;
        res.violations.push_back(os.str());
    }
    if (s.interruptsRaised - s.interruptsDelivered > 1) {
        std::ostringstream os;
        os << "lost interrupts: raised " << s.interruptsRaised
           << ", delivered " << s.interruptsDelivered;
        res.violations.push_back(os.str());
    }
    if (s.ffExits > s.ffEntries || s.ffEntries - s.ffExits > 1)
        res.violations.push_back(
            "fast-forward entries/exits do not telescope");
    if (s.ffEntries == 0)
        res.violations.push_back(
            "fast-forward never engaged: no boundaries exercised");
    if (s.intrRecords.size() > s.interruptsDelivered ||
        s.intrRecords.size() + 1 < s.interruptsDelivered) {
        std::ostringstream os;
        os << "record count " << s.intrRecords.size()
           << " inconsistent with delivered "
           << s.interruptsDelivered;
        res.violations.push_back(os.str());
    }
    Cycles prev_uiret = 0;
    for (std::size_t i = 0; i < s.intrRecords.size(); ++i) {
        const IntrRecord &r = s.intrRecords[i];
        const bool mono = r.acceptedAt >= r.raisedAt &&
            r.injectedAt >= r.acceptedAt &&
            r.deliveryCommitAt >= r.firstUopCommitAt &&
            r.uiretCommitAt > r.deliveryCommitAt &&
            r.injectedAt >= prev_uiret;
        if (!mono) {
            std::ostringstream os;
            os << "record " << i << " timeline not monotonic";
            res.violations.push_back(os.str());
        }
        prev_uiret = r.uiretCommitAt;
    }

    res.passed = res.violations.empty();
    return res;
}

void
buildScenario(Cell &c)
{
    switch (c.cfg.kind) {
      case ScenarioKind::UipiPingPong:
        buildUipiPingPong(c);
        return;
      case ScenarioKind::KbTimerPeriodic:
        buildKbTimerPeriodic(c);
        return;
      case ScenarioKind::ForwardingStorm:
        buildForwardingStorm(c);
        return;
      case ScenarioKind::SenderRetry:
        buildSenderRetry(c);
        return;
      case ScenarioKind::IntervalSignals:
        buildIntervalSignals(c);
        return;
      case ScenarioKind::CoalesceDrop:
        buildCoalesceDrop(c);
        return;
      case ScenarioKind::ItrMisfire:
        buildItrMisfire(c);
        return;
      case ScenarioKind::PreemptStorm:
        buildPreemptStorm(c);
        return;
      case ScenarioKind::CkptCrash:
        buildCkptCrash(c);
        return;
      case ScenarioKind::FfBoundary:
        // Runs on the uarch tier; runCell dispatches it before the
        // kernel Cell is built.
      case ScenarioKind::kCount:
        break;
    }
    assert(false && "unknown scenario kind");
}

std::uint64_t
counterValue(const MetricsRegistry &m, const char *name)
{
    const Counter *c = m.findCounter(name);
    return c != nullptr ? c->value() : 0;
}

/** Ledger/counter harvest shared by runCell and runCellCkpt. */
void
harvestCell(Cell &cell, CellResult &res)
{
    for (auto &v : cell.ledger.check())
        res.violations.push_back(std::move(v));
    res.posted = cell.ledger.posted();
    res.delivered = cell.ledger.delivered();
    res.abandoned = cell.ledger.abandoned();
    res.spuriousScans = cell.ledger.spuriousScans();
    res.coalescedSatisfied = cell.ledger.coalescedSatisfied();
    res.modCoalesced =
        counterValue(cell.metrics, "kernel.moderation.coalesced");
    res.modFlushes =
        counterValue(cell.metrics, "kernel.moderation.flushes");
    res.modFlushDropped = counterValue(
        cell.metrics, "kernel.moderation.flush_dropped");
    res.modFlushDelayed = counterValue(
        cell.metrics, "kernel.moderation.flush_delayed");
    res.injected = cell.inj.injected();
    res.handlerRuns = cell.handlerRuns;
    res.recoveredRescan =
        counterValue(cell.metrics, "kernel.recovery.upid_rescan");
    res.recoveredTimerLate =
        counterValue(cell.metrics, "kernel.recovery.kbtimer_late");
    res.recoveredFwdParked =
        counterValue(cell.metrics, "kernel.recovery.forward_parked");
    if (cell.sender) {
        res.senderRetries = cell.sender->stats().retries;
        res.senderFallbacks = cell.sender->stats().fallbacks;
    }
    res.preemptions =
        counterValue(cell.metrics, "kernel.preempt.preemptions");
    res.preemptSaveDropped =
        counterValue(cell.metrics, "kernel.preempt.save_dropped");
    res.preemptResumeReplayed = counterValue(
        cell.metrics, "kernel.preempt.resume_replayed");
    res.passed = res.violations.empty();
}

/**
 * Logical DES-tier checkpoint: the cell's Simulation holds live
 * lambdas, so its snapshot is not a byte image but the replay
 * coordinate (fired-event count) plus a validation digest of every
 * externally observable total. Restore rebuilds the cell from its
 * config (a pure function) and re-drives the queue to the recorded
 * event count; the digest then proves the replayed state is the
 * checkpointed state, never silently divergent.
 */
struct CkptState
{
    Cycles now = 0;
    std::uint64_t fired = 0;
    std::uint64_t posted = 0;
    std::uint64_t delivered = 0;
    std::uint64_t abandoned = 0;
    std::uint64_t spuriousScans = 0;
    std::uint64_t coalescedSatisfied = 0;
    std::uint64_t handlerRuns = 0;
    std::uint64_t consults[fault::kNumSites] = {};
};

CkptState
captureState(Cell &c)
{
    CkptState s;
    s.now = c.sim.now();
    s.fired = c.sim.queue().firedCount();
    s.posted = c.ledger.posted();
    s.delivered = c.ledger.delivered();
    s.abandoned = c.ledger.abandoned();
    s.spuriousScans = c.ledger.spuriousScans();
    s.coalescedSatisfied = c.ledger.coalescedSatisfied();
    s.handlerRuns = c.handlerRuns;
    for (std::size_t i = 0; i < fault::kNumSites; ++i)
        s.consults[i] =
            c.inj.consults(static_cast<fault::Site>(i));
    return s;
}

/**
 * Validation digest over the state, excluding CheckpointWrite
 * consults: the reference (uninterrupted) timeline takes no
 * snapshots, so storage-site consult counts legitimately differ
 * between a run that checkpoints and its replay.
 */
std::uint64_t
ckptStateDigest(const CkptState &s)
{
    Fnv1a d;
    d.update(s.now);
    d.update(s.fired);
    d.update(s.posted);
    d.update(s.delivered);
    d.update(s.abandoned);
    d.update(s.spuriousScans);
    d.update(s.coalescedSatisfied);
    d.update(s.handlerRuns);
    for (std::size_t i = 0; i < fault::kNumSites; ++i) {
        if (static_cast<fault::Site>(i) ==
            fault::Site::CheckpointWrite)
            continue;
        d.update(s.consults[i]);
    }
    return d.value();
}

std::string
encodeCkptState(const CkptState &s)
{
    ckpt::Writer w;
    w.u64(ckptStateDigest(s));
    w.u64(s.now);
    w.u64(s.fired);
    w.u64(s.posted);
    w.u64(s.delivered);
    w.u64(s.abandoned);
    w.u64(s.spuriousScans);
    w.u64(s.coalescedSatisfied);
    w.u64(s.handlerRuns);
    for (std::size_t i = 0; i < fault::kNumSites; ++i)
        w.u64(s.consults[i]);
    return w.take();
}

bool
decodeCkptState(const std::string &payload, CkptState &out,
                std::uint64_t &digest)
{
    ckpt::Reader r(payload);
    CkptState s;
    if (!r.u64(digest) || !r.u64(s.now) || !r.u64(s.fired) ||
        !r.u64(s.posted) || !r.u64(s.delivered) ||
        !r.u64(s.abandoned) || !r.u64(s.spuriousScans) ||
        !r.u64(s.coalescedSatisfied) || !r.u64(s.handlerRuns))
        return false;
    for (std::size_t i = 0; i < fault::kNumSites; ++i)
        if (!r.u64(s.consults[i]))
            return false;
    out = s;
    return r.ok();
}

/**
 * Transient-fault retry schedule: keep only the directives the
 * restored timeline already consumed — they replay identically on
 * the way back to the checkpoint — and disarm everything at or past
 * the restore point, storage faults included. This is what makes a
 * rollback a *retry*: the fault that wedged the run does not recur.
 */
fault::Schedule
filteredSchedule(const fault::Schedule &full,
                 const std::uint64_t consults[fault::kNumSites])
{
    fault::Schedule out;
    for (const fault::Directive &d : full.directives) {
        if (d.site == fault::Site::CheckpointWrite)
            continue;
        if (d.occurrence <
            consults[static_cast<std::size_t>(d.site)])
            out.directives.push_back(d);
    }
    return out;
}

} // namespace

const char *
scenarioName(ScenarioKind k)
{
    auto i = static_cast<std::size_t>(k);
    return i < kNumScenarios ? kScenarioNames[i] : "?";
}

bool
parseScenario(const std::string &text, ScenarioKind &out)
{
    for (std::size_t i = 0; i < kNumScenarios; ++i) {
        if (text == kScenarioNames[i]) {
            out = static_cast<ScenarioKind>(i);
            return true;
        }
    }
    return false;
}

std::uint64_t
cellScheduleSeed(ScenarioKind kind, std::uint64_t seed)
{
    return splitmix(seed * 0x100000001b3ull +
                    static_cast<std::uint64_t>(kind));
}

/**
 * Checkpoint-enabled cell driver. The plain runCell path is
 * untouched when every ckpt field is off; this driver adds three
 * behaviours around the same scenario machinery:
 *
 *  - every `ckptEvery` fired events, a logical snapshot is taken
 *    (in memory, and through the crash-consistent on-disk engine
 *    when a generation path is configured — with Site::
 *    CheckpointWrite consulted per write, so storage damage lands
 *    exactly where the schedule aims it);
 *  - at `crashAtEvent` the cell is killed once: all in-memory state
 *    is discarded, the latest *valid* on-disk generation is
 *    restored (damaged newer generations are detected and skipped,
 *    counted as fallbacks), and the run replays forward;
 *  - when the event budget trips (StuckSimulation) or the finished
 *    run violates delivery invariants, the driver rolls back and
 *    retries: the newest snapshot first, then geometrically earlier
 *    ones, finally a clean restart with every directive disarmed —
 *    the transient-fault model that escapes a fault-planted
 *    livelock.
 *
 * Every restore is digest-validated: a replayed state that does not
 * reproduce the checkpoint is reported as a violation, never
 * silently accepted.
 */
static CellResult
runCellCkpt(const CellConfig &cfg)
{
    CellResult res;

    const std::uint64_t every =
        cfg.ckptEvery != 0 ? cfg.ckptEvery : 512;
    ckpt::GenerationSet gens(cfg.ckptPathBase);
    // The kill below is an in-process simulation, so the page cache
    // survives it by construction and fsync buys no extra safety —
    // it only dominates runtime at this snapshot cadence. The
    // on-disk format and tmp+rename discipline are unchanged.
    gens.setSync(false);

    // Accounting that survives cell rebuilds; applied to the final
    // kernel (noteRollback) so its metrics reflect the totals.
    std::vector<std::uint64_t> retriesReplayed;
    std::uint64_t snapshots = 0;
    std::uint64_t corruptDetected = 0;
    std::uint64_t fallbacks = 0;
    bool crashRecovered = false;

    // In-memory snapshot history of the current timeline. Cleared
    // on the simulated kill: memory dies with the process, only the
    // on-disk generations survive it.
    std::vector<std::string> history;

    bool crashArmed = cfg.crashAtEvent != 0;
    fault::Schedule sched = cfg.schedule;
    unsigned attempts = 0;
    constexpr std::size_t kNoRestore = ~std::size_t(0);
    std::size_t lastRestoreIdx = kNoRestore;
    bool cleanRestartTried = false;

    CellConfig attemptCfg = cfg;
    std::unique_ptr<Cell> cell;

    CkptState target{};
    std::uint64_t targetDigest = 0;
    bool haveTarget = false;

    auto rebuild = [&]() {
        cell.reset();
        attemptCfg.schedule = sched;
        cell = std::make_unique<Cell>(attemptCfg);
        buildScenario(*cell);
    };

    /** Re-drive a fresh cell to the checkpoint and validate. */
    auto replay = [&]() -> bool {
        if (!haveTarget)
            return true;
        EventQueue &q = cell->sim.queue();
        while (q.firedCount() < target.fired) {
            if (q.peekNextTime() == EventQueue::kNoPending)
                return false;
            q.runOne();
        }
        return ckptStateDigest(captureState(*cell)) == targetDigest;
    };

    auto takeSnapshot = [&]() {
        std::string payload = encodeCkptState(captureState(*cell));
        history.push_back(payload);
        ++snapshots;
        if (!cfg.ckptPathBase.empty()) {
            ckpt::Snapshot snap;
            snap.tag = "chaos_cell";
            snap.payload = std::move(payload);
            // A faulted save (damaged or lost file) is the exercise
            // itself; restore must detect it. Clean saves never fail
            // here short of fatal I/O, which surfaces as a restore
            // fallback.
            gens.save(snap, &cell->inj);
        }
    };

    enum class Outcome : std::uint8_t { Completed, Stuck, Crashed };

    auto driveSpan = [&](Cycles limit,
                         std::uint64_t &ran) -> Outcome {
        EventQueue &q = cell->sim.queue();
        for (;;) {
            Cycles next = q.peekNextTime();
            if (next == EventQueue::kNoPending || next > limit)
                return Outcome::Completed;
            if (ran >= cfg.eventBudget)
                return Outcome::Stuck;
            q.runOne();
            ++ran;
            std::uint64_t k = q.firedCount();
            if (k % every == 0)
                takeSnapshot();
            if (crashArmed && k >= cfg.crashAtEvent) {
                crashArmed = false;
                return Outcome::Crashed;
            }
        }
    };

    auto drive = [&]() -> Outcome {
        std::uint64_t ran = 0;
        Outcome o = driveSpan(cfg.horizon, ran);
        if (o != Outcome::Completed)
            return o;
        cell->stopSources();
        for (;;) {
            Cycles next = cell->sim.queue().peekNextTime();
            if (next == EventQueue::kNoPending)
                break;
            o = driveSpan(next, ran);
            if (o != Outcome::Completed)
                return o;
        }
        if (cfg.finalDrain)
            cell->finalDrain();
        return Outcome::Completed;
    };

    /** Simulated kill: only the on-disk generations survive. */
    auto recoverFromCrash = [&]() {
        crashRecovered = true;
        history.clear();
        lastRestoreIdx = kNoRestore;
        haveTarget = false;
        // A crash is not fault-caused: the full schedule replays so
        // the recovered run stays identical to the crash-free one.
        sched = cfg.schedule;
        if (cfg.ckptPathBase.empty())
            return;
        ckpt::Snapshot snap;
        auto lo = gens.loadLatest(snap);
        corruptDetected += lo.corruptSkipped;
        if (lo.status != ckpt::LoadStatus::Ok)
            return; // nothing valid survived: restart from scratch
        if (lo.corruptSkipped != 0)
            ++fallbacks;
        CkptState st;
        std::uint64_t dg = 0;
        if (!decodeCkptState(snap.payload, st, dg)) {
            res.violations.push_back(
                "checkpoint payload undecodable behind a valid "
                "envelope digest");
            return;
        }
        target = st;
        targetDigest = dg;
        haveTarget = true;
        // Seeds the new timeline's history; lastRestoreIdx stays
        // unset so a later stuck-retry starts its regression from
        // the newest snapshot, not from this restore point.
        history.push_back(snap.payload);
    };

    /** @return false when out of retries (report the failure). */
    auto recoverFromStuck = [&]() -> bool {
        if (!cfg.rollbackRetry || attempts >= cfg.maxRollbackRetries)
            return false;
        if (cleanRestartTried)
            return false; // even the fault-free restart failed
        ++attempts;
        std::size_t idx = history.size(); // sentinel: clean restart
        if (!history.empty()) {
            if (lastRestoreIdx == kNoRestore)
                idx = history.size() - 1;
            else if (lastRestoreIdx > 0)
                idx = lastRestoreIdx / 2;
        }
        if (idx >= history.size()) {
            // Clean restart: no checkpoint, every directive
            // disarmed. Always terminates for a sane scenario.
            cleanRestartTried = true;
            haveTarget = false;
            sched.directives.clear();
            history.clear();
            lastRestoreIdx = kNoRestore;
            retriesReplayed.push_back(0);
            return true;
        }
        CkptState st;
        std::uint64_t dg = 0;
        if (!decodeCkptState(history[idx], st, dg)) {
            res.violations.push_back(
                "in-memory checkpoint undecodable");
            return false;
        }
        target = st;
        targetDigest = dg;
        haveTarget = true;
        lastRestoreIdx = idx;
        history.resize(idx + 1); // abandon the wedged timeline
        sched = filteredSchedule(cfg.schedule, st.consults);
        retriesReplayed.push_back(st.fired);
        return true;
    };

    auto stuckMessage = [&]() {
        EventQueue &q = cell->sim.queue();
        auto pending = q.pendingSnapshot(8);
        std::ostringstream msg;
        msg << "StuckSimulation: event budget of "
            << cfg.eventBudget << " exhausted at cycle " << q.now()
            << " (" << q.pending() << " events still pending";
        if (!pending.empty()) {
            msg << "; next:";
            for (const auto &p : pending)
                msg << " @" << p.when << "#" << p.seq;
        }
        msg << "; after " << attempts << " rollback retries)";
        return msg.str();
    };

    // `--restore FILE`: seed the run from an exact snapshot file.
    // The full schedule replays beneath the re-drive (like crash
    // recovery) so the resumed run stays identical to an
    // uninterrupted one.
    if (!cfg.restoreFrom.empty()) {
        ckpt::Snapshot snap;
        ckpt::LoadStatus st = ckpt::loadSnapshot(cfg.restoreFrom,
                                                 snap);
        if (st != ckpt::LoadStatus::Ok) {
            res.violations.push_back(
                "restore " + cfg.restoreFrom + ": " +
                ckpt::loadStatusName(st));
            res.passed = false;
            return res;
        }
        CkptState rst;
        std::uint64_t rdg = 0;
        if (!decodeCkptState(snap.payload, rst, rdg)) {
            res.violations.push_back(
                "restore " + cfg.restoreFrom +
                ": checkpoint payload undecodable behind a valid "
                "envelope digest");
            res.passed = false;
            return res;
        }
        target = rst;
        targetDigest = rdg;
        haveTarget = true;
        history.push_back(snap.payload);
    }

    rebuild();
    for (;;) {
        if (!replay()) {
            res.violations.push_back(
                "rollback restore diverged: replayed state does "
                "not reproduce the checkpoint digest");
            break;
        }
        Outcome o = drive();
        if (o == Outcome::Crashed) {
            recoverFromCrash();
            rebuild();
            continue;
        }
        if (o == Outcome::Stuck) {
            if (recoverFromStuck()) {
                rebuild();
                continue;
            }
            res.stuck = true;
            res.violations.push_back(stuckMessage());
            break;
        }
        // Completed: a run that ends in violation also rolls back
        // (bounded like the stuck path) — the invariant-violation
        // arm of rollback-recovery.
        if (!cell->ledger.check().empty() && recoverFromStuck()) {
            rebuild();
            continue;
        }
        break;
    }

    for (std::uint64_t replayed : retriesReplayed) {
        cell->kernel.noteRollback(replayed);
        res.rollbackEventsReplayed += replayed;
    }
    res.rollbackRetries = retriesReplayed.size();
    res.ckptSnapshots = snapshots;
    res.ckptCorruptDetected = corruptDetected;
    res.ckptFallbacks = fallbacks;
    res.crashRecovered = crashRecovered;

    harvestCell(*cell, res);
    if (!cfg.ckptPathBase.empty() && !cfg.ckptKeepFiles)
        gens.removeAll();
    return res;
}

CellResult
runCell(const CellConfig &cfg)
{
    if (cfg.kind == ScenarioKind::FfBoundary)
        return runFfBoundaryCell(cfg);
    if (cfg.kind == ScenarioKind::CkptCrash || cfg.ckptEvery != 0 ||
        cfg.crashAtEvent != 0 || !cfg.restoreFrom.empty())
        return runCellCkpt(cfg);

    CellResult res;
    Cell cell(cfg);
    buildScenario(cell);

    fault::Watchdog dog(cell.sim.queue(), cfg.eventBudget);
    try {
        dog.runUntil(cfg.horizon);
        cell.stopSources();
        // Drain in-flight delayed faults and recovery rescans; the
        // sources are stopped, so the queue empties (the watchdog
        // budget still guards against a runaway reschedule loop).
        for (;;) {
            Cycles next = cell.sim.queue().peekNextTime();
            if (next == EventQueue::kNoPending)
                break;
            dog.runUntil(next);
        }
        if (cfg.finalDrain)
            cell.finalDrain();
    } catch (const fault::StuckSimulation &e) {
        res.stuck = true;
        res.violations.push_back(e.what());
    }

    harvestCell(cell, res);
    return res;
}

fault::Schedule
shrink(const CellConfig &failing)
{
    fault::Schedule cur = failing.schedule;
    bool improved = true;
    while (improved && !cur.directives.empty()) {
        improved = false;
        for (std::size_t i = 0; i < cur.directives.size(); ++i) {
            fault::Schedule cand = cur;
            cand.directives.erase(cand.directives.begin() +
                                  static_cast<std::ptrdiff_t>(i));
            CellConfig probe = failing;
            probe.schedule = cand;
            if (!runCell(probe).passed) {
                cur = std::move(cand);
                improved = true;
                break;
            }
        }
    }
    return cur;
}

GridOutcome
runGrid(const GridConfig &cfg)
{
    std::vector<ScenarioKind> kinds = cfg.kinds;
    if (kinds.empty()) {
        for (std::size_t i = 0; i < kNumScenarios; ++i)
            kinds.push_back(static_cast<ScenarioKind>(i));
    }

    const std::size_t n =
        kinds.size() * static_cast<std::size_t>(cfg.seeds);
    GridOutcome out;
    out.cells = n;

    exec::sweepReduce(
        n, cfg.jobs,
        [&](std::size_t i) {
            CellReport rep;
            rep.kind = kinds[i / cfg.seeds];
            rep.seed = cfg.seedBase + i % cfg.seeds;
            CellConfig cc;
            cc.kind = rep.kind;
            cc.seed = rep.seed;
            // The moderation scenarios aim faults at the flush
            // event; other kinds keep the base option set, so their
            // generated schedules stay byte-identical to before the
            // moderation sites existed.
            fault::ScheduleOptions so = cfg.schedule;
            if (rep.kind == ScenarioKind::CoalesceDrop)
                so.dropModerationFlush = true;
            if (rep.kind == ScenarioKind::ItrMisfire)
                so.delayModerationFlush = true;
            if (rep.kind == ScenarioKind::PreemptStorm) {
                so.dropPreemptSave = true;
                so.duplicatePreemptSave = true;
            }
            if (rep.kind == ScenarioKind::FfBoundary) {
                // Boundary cells consult only the transition site,
                // so the schedule draws exclusively from the ff
                // classes (the kernel sites never fire there).
                // Duplicates are excluded: the uarch tier has no
                // dedup, so a doubled raise is an unconditional
                // conservation failure reserved for crafted cells.
                fault::ScheduleOptions ffso;
                ffso.directives = so.directives;
                ffso.horizon = so.horizon;
                ffso.maxDelay = so.maxDelay;
                ffso.dropNotification = false;
                ffso.delayNotification = false;
                ffso.duplicateNotification = false;
                ffso.reorderUpid = false;
                ffso.stormNotification = false;
                ffso.timerMisfire = false;
                ffso.timerDelay = false;
                ffso.timerSpurious = false;
                ffso.dropForward = false;
                ffso.delayForward = false;
                ffso.descheduleWindow = false;
                ffso.delayFfDetail = true;
                ffso.dropFfRaise = true;
                so = ffso;
            }
            if (rep.kind == ScenarioKind::CkptCrash) {
                // Aim faults at the snapshot write path and plant
                // the deschedule-storm livelock; also kill the cell
                // once at a seed-determined event count so the
                // crash-restore path runs in every cell.
                so.dropCkptWrite = true;
                so.tearCkptWrite = true;
                so.flipCkptWrite = true;
                so.truncateCkptWrite = true;
                so.stormDeschedule = true;
                cc.ckptEvery =
                    cfg.ckptEvery != 0 ? cfg.ckptEvery : 512;
                cc.crashAtEvent =
                    256 + cellScheduleSeed(rep.kind, rep.seed) % 2048;
                if (!cfg.ckptDir.empty())
                    cc.ckptPathBase = cfg.ckptDir + "/cell_" +
                        scenarioName(rep.kind) + "_" +
                        std::to_string(rep.seed) + ".ckpt";
            }
            cc.schedule = fault::generateSchedule(
                cellScheduleSeed(rep.kind, rep.seed), so);
            cc.recovery = cfg.recovery;
            cc.finalDrain = cfg.finalDrain;
            cc.horizon = cfg.horizon;
            cc.eventBudget = cfg.eventBudget;
            if (rep.kind == ScenarioKind::CkptCrash) {
                // A planted livelock costs the full budget per
                // rollback attempt; clean ckpt cells fire ~10k
                // events, so a tight budget keeps stuck detection
                // (and the whole regression ladder) cheap without
                // risking false trips.
                cc.eventBudget =
                    std::min<std::uint64_t>(cc.eventBudget, 64000);
            }
            rep.schedule = cc.schedule;
            rep.result = runCell(cc);
            rep.shrunk = rep.schedule;
            if (!rep.result.passed && cfg.shrinkFailures)
                rep.shrunk = shrink(cc);
            return rep;
        },
        [&](std::size_t, CellReport &&rep) {
            out.injected += rep.result.injected;
            out.posted += rep.result.posted;
            out.delivered += rep.result.delivered;
            out.abandoned += rep.result.abandoned;
            if (!rep.result.passed) {
                ++out.failed;
                out.failures.push_back(std::move(rep));
            }
        });
    return out;
}

} // namespace xui::chaos
