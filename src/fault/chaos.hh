/**
 * @file
 * Chaos harness: seeded protocol scenarios, the (scenario x
 * fault-seed) grid, and greedy schedule shrinking.
 *
 * A *cell* is one deterministic run: a scenario (a small DES-tier
 * workload exercising one notification protocol end to end) plus a
 * fault schedule, executed under a watchdog with a DeliveryLedger
 * attached. The cell passes when the run terminates within its event
 * budget and every delivery invariant holds. Because a cell is a
 * pure function of (kind, seed, schedule, flags), a failing cell
 * replays bit-for-bit from its command line, and its schedule can be
 * shrunk greedily to a 1-minimal reproducer: repeatedly drop any
 * directive whose removal keeps the cell failing.
 *
 * The *grid* fans (kind x seed) cells across threads with
 * exec::sweepReduce, so results and report order are bit-identical
 * for every --jobs value.
 */

#ifndef XUI_FAULT_CHAOS_HH
#define XUI_FAULT_CHAOS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "des/time.hh"
#include "fault/fault.hh"

namespace xui::chaos
{

/** The protocol workload a cell runs. */
enum class ScenarioKind : std::uint8_t
{
    /** senduipi stream into a receiver with deschedule windows. */
    UipiPingPong,
    /** Periodic KB timer + poll loop across context switches. */
    KbTimerPeriodic,
    /** Forwarded device interrupts, fast path vs DUPID parking. */
    ForwardingStorm,
    /** ReliableSender retry/backoff against a flaky receiver. */
    SenderRetry,
    /** setitimer signals with SIGALRM collapse semantics. */
    IntervalSignals,
    /** ITR+coalescing moderation with flush events lost mid-window
     *  (Site::ModerationFlush drops): the batch must survive via
     *  rescan/resume-drain, never silently. */
    CoalesceDrop,
    /** Heavy ITR suppression with delayed flushes racing deschedule
     *  windows: flushes misfire against a parked receiver. */
    ItrMisfire,
    /** Mixed-criticality co-tenancy through the occupancy engine:
     *  three priority levels of handler frames preempting each
     *  other, with faults aimed at the preempt-save window
     *  (Site::PreemptSave drops and torn double-saves). */
    PreemptStorm,
    /** Uarch-tier sampled-detail run with faults aimed exactly at
     *  the fast-forward mode-transition cycles (Site::FfTransition):
     *  detail pinned at the boundary, and raises landing on the
     *  handoff dropped or doubled. The cell checks the interrupt
     *  conservation and record-timeline invariants across every
     *  adversarial mode switch. */
    FfBoundary,
    /** Kernel-tier cell taking periodic on-disk snapshots through
     *  the crash-consistent engine, with faults aimed at the write
     *  path (Site::CheckpointWrite damage), a simulated kill at a
     *  configured event count (recovery restores the latest valid
     *  generation and replays), and deschedule-site storms that
     *  livelock the queue so the watchdog's rollback-retry earns
     *  its keep. */
    CkptCrash,
    kCount,
};

constexpr std::size_t kNumScenarios =
    static_cast<std::size_t>(ScenarioKind::kCount);

const char *scenarioName(ScenarioKind k);

/** @return false when `text` names no scenario (`out` untouched). */
bool parseScenario(const std::string &text, ScenarioKind &out);

/** One cell of the chaos grid. */
struct CellConfig
{
    ScenarioKind kind = ScenarioKind::UipiPingPong;
    /** Scenario seed: drives send times and deschedule windows. */
    std::uint64_t seed = 1;
    fault::Schedule schedule;
    /** Kernel graceful-degradation paths (rescan w/ backoff). */
    bool recovery = true;
    /**
     * After the horizon, reschedule every thread once so parked
     * vectors drain (models an OS that eventually runs everyone).
     * Disabling it models a receiver that never resumes — the way
     * to demonstrate that the invariants catch unrecovered loss.
     */
    bool finalDrain = true;
    /** Scenario activity stops at this cycle. */
    Cycles horizon = 200000;
    /** Watchdog event budget (hang -> StuckSimulation). */
    std::uint64_t eventBudget = 2000000;

    // --- Checkpoint/restore (all off by default: runCell takes the
    // --- pre-existing path untouched when every field is off).
    /** Snapshot every N fired events (0 = no checkpointing). */
    std::uint64_t ckptEvery = 0;
    /**
     * Simulated process kill once this many events fired (0 = no
     * crash). Recovery restores the latest valid on-disk generation
     * (or restarts from scratch when none survives) and replays;
     * the final result must match the crash-free run.
     */
    std::uint64_t crashAtEvent = 0;
    /**
     * Base path of the on-disk snapshot generation set; empty keeps
     * snapshots in memory only (a crash then restarts from scratch).
     */
    std::string ckptPathBase;
    /** Keep snapshot files after the run (tools set this). */
    bool ckptKeepFiles = false;
    /**
     * Resume from this exact snapshot file before running (the
     * `--restore FILE` path). Provenance-strict: a snapshot written
     * by a different binary is refused loudly, never replayed.
     */
    std::string restoreFrom;
    /** Roll back to a checkpoint and retry when the watchdog trips
     *  or the finished run violates delivery invariants. */
    bool rollbackRetry = true;
    /** Rollback-retry attempts before reporting the failure. */
    unsigned maxRollbackRetries = 16;
};

/** What one cell run produced. */
struct CellResult
{
    bool passed = false;
    /** The watchdog fired (violations[0] carries the message). */
    bool stuck = false;
    std::vector<std::string> violations;

    // Ledger totals.
    std::uint64_t posted = 0;
    std::uint64_t delivered = 0;
    std::uint64_t abandoned = 0;
    std::uint64_t spuriousScans = 0;
    /** Posts satisfied by a delivery that covered a batch. */
    std::uint64_t coalescedSatisfied = 0;

    // Moderation counters (kernel.moderation.*; zero without it).
    std::uint64_t modCoalesced = 0;
    std::uint64_t modFlushes = 0;
    std::uint64_t modFlushDropped = 0;
    std::uint64_t modFlushDelayed = 0;

    /** Fault directives that matched a consult. */
    std::uint64_t injected = 0;
    /** Scenario handler invocations. */
    std::uint64_t handlerRuns = 0;

    // Recovery-path counters (kernel.recovery.*).
    std::uint64_t recoveredRescan = 0;
    std::uint64_t recoveredTimerLate = 0;
    std::uint64_t recoveredFwdParked = 0;

    // SenderRetry only.
    std::uint64_t senderRetries = 0;
    std::uint64_t senderFallbacks = 0;

    // PreemptStorm only (kernel.preempt.*).
    std::uint64_t preemptions = 0;
    std::uint64_t preemptSaveDropped = 0;
    std::uint64_t preemptResumeReplayed = 0;

    // FfBoundary only: fast-forward region count and the raises the
    // boundary-armed fabric swallowed.
    std::uint64_t ffEntries = 0;
    std::uint64_t ffExits = 0;
    std::uint64_t ffRaisesDropped = 0;

    // Checkpoint/rollback accounting (ckpt-enabled cells only).
    /** Snapshots taken (in memory; each is also written to disk
     *  when a generation path is configured). */
    std::uint64_t ckptSnapshots = 0;
    /** Damaged generations detected and skipped during restore. */
    std::uint64_t ckptCorruptDetected = 0;
    /** Restores that fell back past a damaged newest generation. */
    std::uint64_t ckptFallbacks = 0;
    /** Watchdog/invariant rollback-retries performed. */
    std::uint64_t rollbackRetries = 0;
    /** Events re-driven to reach restored checkpoints, summed. */
    std::uint64_t rollbackEventsReplayed = 0;
    /** A simulated kill happened and recovery ran. */
    bool crashRecovered = false;
};

/** Deterministic schedule seed for a (kind, scenario-seed) cell. */
std::uint64_t cellScheduleSeed(ScenarioKind kind, std::uint64_t seed);

/** Run one cell (pure function of its config). */
CellResult runCell(const CellConfig &cfg);

/**
 * Greedy 1-minimal shrink of a failing cell's schedule: repeatedly
 * remove any directive whose removal keeps the cell failing.
 * @pre runCell(failing) fails.
 * @return the minimal still-failing schedule.
 */
fault::Schedule shrink(const CellConfig &failing);

/** The full (kind x seed) grid. */
struct GridConfig
{
    /** Scenario kinds to run (empty = all). */
    std::vector<ScenarioKind> kinds;
    unsigned seeds = 40;
    std::uint64_t seedBase = 1;
    /** Fan-out width (0 = one per hardware thread). */
    unsigned jobs = 1;
    fault::ScheduleOptions schedule;
    bool recovery = true;
    bool finalDrain = true;
    bool shrinkFailures = true;
    Cycles horizon = 200000;
    std::uint64_t eventBudget = 2000000;
    /**
     * Directory for CkptCrash cells' on-disk snapshot generations
     * (each cell uses a unique base path inside it); empty keeps
     * those cells' snapshots in memory only.
     */
    std::string ckptDir;
    /** CkptCrash snapshot cadence override (0 = default 512). */
    std::uint64_t ckptEvery = 0;
};

/** One grid cell's report (failures keep their shrunk schedule). */
struct CellReport
{
    ScenarioKind kind = ScenarioKind::UipiPingPong;
    std::uint64_t seed = 0;
    fault::Schedule schedule;
    /** Equal to `schedule` for passing cells. */
    fault::Schedule shrunk;
    CellResult result;
};

struct GridOutcome
{
    std::uint64_t cells = 0;
    std::uint64_t failed = 0;
    std::uint64_t injected = 0;
    std::uint64_t posted = 0;
    std::uint64_t delivered = 0;
    std::uint64_t abandoned = 0;
    /** Reports for failing cells only, in job-index order. */
    std::vector<CellReport> failures;
};

/** Run the grid (deterministic for every `jobs` value). */
GridOutcome runGrid(const GridConfig &cfg);

} // namespace xui::chaos

#endif // XUI_FAULT_CHAOS_HH
