#include "fault/fault.hh"

#include <cstdlib>

#include "stats/rng.hh"

namespace xui::fault
{

namespace
{

constexpr const char *kSiteNames[] = {
    "notify_ipi", "kbtimer_fire", "kbtimer_poll",
    "forward_dispatch", "deschedule", "raise_uarch",
    "moderation_flush", "preempt_save", "ff_transition",
    "checkpoint_write",
};
static_assert(sizeof(kSiteNames) / sizeof(kSiteNames[0]) ==
              kNumSites);

constexpr const char *kActionNames[] = {
    "none", "drop", "delay", "duplicate", "reorder", "spurious",
    "storm",
};
static_assert(sizeof(kActionNames) / sizeof(kActionNames[0]) ==
              static_cast<std::size_t>(Action::kCount));

bool
parseName(const std::string &text, const char *const *names,
          std::size_t n, std::size_t &out)
{
    for (std::size_t i = 0; i < n; ++i) {
        if (text == names[i]) {
            out = i;
            return true;
        }
    }
    return false;
}

bool
parseU64(const std::string &text, std::uint64_t &out)
{
    if (text.empty())
        return false;
    std::uint64_t v = 0;
    for (char c : text) {
        if (c < '0' || c > '9')
            return false;
        std::uint64_t next = v * 10 + static_cast<unsigned>(c - '0');
        if (next < v)
            return false;
        v = next;
    }
    out = v;
    return true;
}

} // namespace

const char *
siteName(Site s)
{
    return kSiteNames[static_cast<std::size_t>(s)];
}

const char *
actionName(Action a)
{
    return kActionNames[static_cast<std::size_t>(a)];
}

std::string
Schedule::encode() const
{
    std::string out;
    for (const Directive &d : directives) {
        if (!out.empty())
            out += ';';
        out += siteName(d.site);
        out += ':';
        out += std::to_string(d.occurrence);
        out += ':';
        out += actionName(d.action);
        out += ':';
        out += std::to_string(d.magnitude);
    }
    return out;
}

bool
Schedule::decode(const std::string &text, Schedule &out)
{
    Schedule parsed;
    if (text.empty()) {
        out = parsed;
        return true;
    }
    std::size_t pos = 0;
    while (pos <= text.size()) {
        std::size_t end = text.find(';', pos);
        if (end == std::string::npos)
            end = text.size();
        std::string item = text.substr(pos, end - pos);

        std::vector<std::string> parts;
        std::size_t p = 0;
        while (p <= item.size()) {
            std::size_t q = item.find(':', p);
            if (q == std::string::npos)
                q = item.size();
            parts.push_back(item.substr(p, q - p));
            p = q + 1;
        }
        if (parts.size() != 4)
            return false;

        Directive d;
        std::size_t idx = 0;
        if (!parseName(parts[0], kSiteNames, kNumSites, idx))
            return false;
        d.site = static_cast<Site>(idx);
        std::uint64_t occ = 0;
        if (!parseU64(parts[1], occ))
            return false;
        d.occurrence = occ;
        if (!parseName(parts[2], kActionNames,
                       static_cast<std::size_t>(Action::kCount), idx))
            return false;
        d.action = static_cast<Action>(idx);
        std::uint64_t mag = 0;
        if (!parseU64(parts[3], mag) || mag > 0xffffffffull)
            return false;
        d.magnitude = static_cast<std::uint32_t>(mag);
        parsed.directives.push_back(d);

        if (end == text.size())
            break;
        pos = end + 1;
    }
    out = std::move(parsed);
    return true;
}

Schedule
generateSchedule(std::uint64_t seed, const ScheduleOptions &opts)
{
    struct Class
    {
        Site site;
        Action action;
    };
    std::vector<Class> classes;
    if (opts.dropNotification)
        classes.push_back({Site::NotifyIpi, Action::Drop});
    if (opts.delayNotification)
        classes.push_back({Site::NotifyIpi, Action::Delay});
    if (opts.duplicateNotification)
        classes.push_back({Site::NotifyIpi, Action::Duplicate});
    if (opts.reorderUpid)
        classes.push_back({Site::NotifyIpi, Action::Reorder});
    if (opts.stormNotification)
        classes.push_back({Site::NotifyIpi, Action::Storm});
    if (opts.timerMisfire)
        classes.push_back({Site::KbTimerFire, Action::Drop});
    if (opts.timerDelay)
        classes.push_back({Site::KbTimerFire, Action::Delay});
    if (opts.timerSpurious)
        classes.push_back({Site::KbTimerPoll, Action::Spurious});
    if (opts.dropForward)
        classes.push_back({Site::ForwardDispatch, Action::Drop});
    if (opts.delayForward)
        classes.push_back({Site::ForwardDispatch, Action::Delay});
    if (opts.descheduleWindow)
        classes.push_back({Site::Deschedule, Action::Delay});
    if (opts.dropModerationFlush)
        classes.push_back({Site::ModerationFlush, Action::Drop});
    if (opts.delayModerationFlush)
        classes.push_back({Site::ModerationFlush, Action::Delay});
    // Appended after every pre-existing class so schedules generated
    // with the older option set stay byte-identical.
    if (opts.dropPreemptSave)
        classes.push_back({Site::PreemptSave, Action::Drop});
    if (opts.duplicatePreemptSave)
        classes.push_back({Site::PreemptSave, Action::Duplicate});
    if (opts.delayFfDetail)
        classes.push_back({Site::FfTransition, Action::Delay});
    if (opts.dropFfRaise)
        classes.push_back({Site::FfTransition, Action::Drop});
    if (opts.duplicateFfRaise)
        classes.push_back({Site::FfTransition, Action::Duplicate});
    if (opts.dropCkptWrite)
        classes.push_back({Site::CheckpointWrite, Action::Drop});
    if (opts.tearCkptWrite)
        classes.push_back({Site::CheckpointWrite, Action::Delay});
    if (opts.flipCkptWrite)
        classes.push_back({Site::CheckpointWrite, Action::Duplicate});
    if (opts.truncateCkptWrite)
        classes.push_back({Site::CheckpointWrite, Action::Reorder});
    if (opts.stormDeschedule)
        classes.push_back({Site::Deschedule, Action::Storm});

    Schedule sched;
    if (classes.empty())
        return sched;
    Rng rng(seed);
    for (unsigned i = 0; i < opts.directives; ++i) {
        const Class &c = classes[rng.nextBounded(classes.size())];
        Directive d;
        d.site = c.site;
        d.action = c.action;
        d.occurrence = rng.nextBounded(opts.horizon ? opts.horizon : 1);
        switch (c.action) {
          case Action::Delay:
            d.magnitude = c.site == Site::Deschedule
                ? 1 + static_cast<std::uint32_t>(
                      rng.nextBounded(opts.maxWindow))
                : 1 + static_cast<std::uint32_t>(
                      rng.nextBounded(opts.maxDelay));
            break;
          case Action::Storm:
            d.magnitude = 2 + static_cast<std::uint32_t>(
                rng.nextBounded(opts.maxStorm > 2
                                ? opts.maxStorm - 1 : 1));
            break;
          case Action::Duplicate:
            // Checkpoint bit flips land at (magnitude % file size);
            // draw an offset so flips hit the payload region too,
            // not always byte 0 of the header. Only CheckpointWrite
            // classes reach here with a draw, so pre-existing
            // schedules stay byte-identical.
            d.magnitude = c.site == Site::CheckpointWrite
                ? static_cast<std::uint32_t>(
                      rng.nextBounded(opts.maxDelay))
                : 0;
            break;
          default:
            d.magnitude = 0;
            break;
        }
        sched.directives.push_back(d);
    }
    return sched;
}

Injector::Injector(Schedule schedule)
    : schedule_(std::move(schedule))
{
    for (std::size_t i = 0; i < schedule_.directives.size(); ++i) {
        const Directive &d = schedule_.directives[i];
        auto &slot = byOccurrence_[static_cast<std::size_t>(d.site)];
        // First directive for a (site, occurrence) wins; later
        // duplicates are inert (shrinking removes them).
        slot.emplace(d.occurrence, i);
    }
}

Injector::Decision
Injector::decide(Site site)
{
    std::size_t s = static_cast<std::size_t>(site);
    std::uint64_t occ = counts_[s]++;
    auto it = byOccurrence_[s].find(occ);
    if (it == byOccurrence_[s].end())
        return Decision{};
    const Directive &d = schedule_.directives[it->second];
    if (d.action == Action::None)
        return Decision{};
    ++injected_;
    Counter *c = actionCounters_[static_cast<std::size_t>(d.action)];
    if (c != nullptr)
        c->inc();
    return Decision{d.action, d.magnitude};
}

void
Injector::attachMetrics(MetricsRegistry &registry)
{
    for (std::size_t a = 1;
         a < static_cast<std::size_t>(Action::kCount); ++a) {
        actionCounters_[a] = &registry.counter(
            std::string("fault.injected.") +
            kActionNames[a]);
    }
}

} // namespace xui::fault
