/**
 * @file
 * Simulation watchdog: converts hangs into diagnosable errors.
 *
 * A fault-injected run can hang in two ways: runaway event churn
 * (recovery events rescheduling each other forever) or a silent
 * stall (the queue drains while the workload is incomplete — the
 * latter surfaces as a DeliveryLedger violation, not here). The
 * watchdog guards the first kind: it drives the queue like
 * runUntil() but aborts with a StuckSimulation error once an event
 * budget is exhausted, attaching the simulated time, fired count,
 * and a snapshot of the pending event set so the hang is diagnosable
 * from the exception alone — in CI the budget fails the cell in
 * milliseconds instead of tripping the ctest timeout.
 */

#ifndef XUI_FAULT_WATCHDOG_HH
#define XUI_FAULT_WATCHDOG_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "des/event_queue.hh"

namespace xui::fault
{

/** Thrown when a guarded run exhausts its event budget. */
class StuckSimulation : public std::runtime_error
{
  public:
    StuckSimulation(std::string message, Cycles now,
                    std::uint64_t fired, std::size_t pendingCount,
                    std::vector<EventQueue::PendingEvent> pending)
        : std::runtime_error(std::move(message)), now_(now),
          fired_(fired), pendingCount_(pendingCount),
          pending_(std::move(pending))
    {}

    Cycles now() const { return now_; }
    std::uint64_t eventsFired() const { return fired_; }
    std::size_t pendingCount() const { return pendingCount_; }
    /** First few pending events (when, seq) at abort time. */
    const std::vector<EventQueue::PendingEvent> &pending() const
    {
        return pending_;
    }

  private:
    Cycles now_;
    std::uint64_t fired_;
    std::size_t pendingCount_;
    std::vector<EventQueue::PendingEvent> pending_;
};

/** Event-budget guard over one EventQueue. */
class Watchdog
{
  public:
    /** @param maxEvents events allowed per guarded run. */
    explicit Watchdog(EventQueue &queue,
                      std::uint64_t maxEvents = 2'000'000)
        : queue_(queue), maxEvents_(maxEvents)
    {}

    /**
     * Run events up to `limit` like EventQueue::runUntil, aborting
     * with StuckSimulation when more than the budget fires.
     * @return events executed.
     */
    std::uint64_t runUntil(Cycles limit);

    std::uint64_t eventsRun() const { return eventsRun_; }

  private:
    EventQueue &queue_;
    std::uint64_t maxEvents_;
    std::uint64_t eventsRun_ = 0;
};

} // namespace xui::fault

#endif // XUI_FAULT_WATCHDOG_HH
