/**
 * @file
 * Packet and NIC models for the l3fwd reproduction (§5.4): 64-byte
 * IPv4/UDP packets, per-NIC RX descriptor rings, and interrupt
 * generation hooks for xUI interrupt forwarding.
 */

#ifndef XUI_NET_PACKET_HH
#define XUI_NET_PACKET_HH

#include <cstdint>
#include <functional>

#include "des/time.hh"
#include "net/ring.hh"

namespace xui
{

/** One 64-byte IPv4 UDP packet (headers only; timing-relevant). */
struct Packet
{
    std::uint64_t id = 0;
    std::uint32_t srcIp = 0;
    std::uint32_t dstIp = 0;
    std::uint16_t size = 64;
    /** Wire arrival time at the NIC. */
    Cycles arrival = 0;
};

/** A NIC with one RX queue and an optional interrupt callback. */
class Nic
{
  public:
    /**
     * @param queue_depth RX descriptor ring capacity (power of two)
     */
    explicit Nic(std::size_t queue_depth = 1024)
        : rx_(queue_depth)
    {}

    /**
     * A packet arrives from the wire. Enqueued to the RX ring; when
     * the ring is full the packet is dropped (tail drop). Fires the
     * interrupt callback (if armed) on the empty->non-empty edge.
     * @return false when dropped.
     */
    bool
    deliver(Packet pkt)
    {
        bool was_empty = rx_.empty();
        if (!rx_.push(pkt)) {
            ++dropped_;
            return false;
        }
        ++received_;
        if (was_empty && intrArmed_ && onInterrupt_)
            onInterrupt_();
        return true;
    }

    /** Driver-side RX poll. @return false when the queue is empty. */
    bool poll(Packet &out) { return rx_.pop(out); }

    /** Arm/disarm RX interrupts (xUI handler protocol: disarm on
     * entry, drain, rearm before uiret). */
    void armInterrupt(bool armed) { intrArmed_ = armed; }
    bool interruptArmed() const { return intrArmed_; }

    /** Callback invoked on an interrupt-worthy arrival. */
    void setInterruptHandler(std::function<void()> cb)
    {
        onInterrupt_ = std::move(cb);
    }

    std::size_t queueDepth() const { return rx_.size(); }
    bool queueEmpty() const { return rx_.empty(); }
    std::uint64_t received() const { return received_; }
    std::uint64_t dropped() const { return dropped_; }

  private:
    DescRing<Packet> rx_;
    bool intrArmed_ = false;
    std::function<void()> onInterrupt_;
    std::uint64_t received_ = 0;
    std::uint64_t dropped_ = 0;
};

} // namespace xui

#endif // XUI_NET_PACKET_HH
