/**
 * @file
 * DIR-24-8 longest-prefix-match table — the same algorithm as DPDK's
 * librte_lpm, which l3fwd uses (§5.4): a 2^24-entry direct-indexed
 * table for the first 24 bits, overflowing into 256-entry "tbl8"
 * groups for prefixes longer than /24. Lookup is one or two array
 * reads. Insertions keep longest-prefix semantics regardless of
 * insertion order by tracking the depth that wrote each entry.
 */

#ifndef XUI_NET_LPM_HH
#define XUI_NET_LPM_HH

#include <cstdint>
#include <vector>

namespace xui
{

/** IPv4 longest-prefix-match table (DIR-24-8). */
class LpmTable
{
  public:
    /** Next-hop identifier; kNoRoute when a lookup misses. */
    using NextHop = std::uint16_t;
    static constexpr NextHop kNoRoute = 0xffff;

    /** @param max_tbl8_groups capacity for >/24 prefix groups. */
    explicit LpmTable(unsigned max_tbl8_groups = 256);

    /**
     * Install a route.
     * @param prefix network address (host byte order)
     * @param depth prefix length 1..32
     * @param next_hop forwarding target (< 0x8000)
     * @return false when depth is invalid or tbl8 space is
     *         exhausted.
     */
    bool addRoute(std::uint32_t prefix, unsigned depth,
                  NextHop next_hop);

    /** Longest-prefix lookup. */
    NextHop lookup(std::uint32_t ip) const;

    /** Number of installed routes. */
    std::size_t routeCount() const { return routeCount_; }

    /** tbl8 groups in use (tests). */
    unsigned tbl8InUse() const { return tbl8Next_; }

  private:
    // Entry encoding: bit15 = valid, bit14 = extended (tbl24 only:
    // low bits index a tbl8 group), low 14 bits = next hop / group.
    static constexpr std::uint16_t kValid = 0x8000;
    static constexpr std::uint16_t kExtended = 0x4000;
    static constexpr std::uint16_t kValueMask = 0x3fff;

    struct Tbl8Entry
    {
        std::uint16_t entry = 0;
        std::uint8_t depth = 0;
    };

    bool addShallowRoute(std::uint32_t prefix, unsigned depth,
                         NextHop next_hop);
    bool addDeepRoute(std::uint32_t prefix, unsigned depth,
                      NextHop next_hop);
    int allocateTbl8(std::uint16_t inherited_entry,
                     std::uint8_t inherited_depth);

    std::vector<std::uint16_t> tbl24_;
    std::vector<std::uint8_t> tbl24Depth_;
    std::vector<Tbl8Entry> tbl8_;
    unsigned maxTbl8_;
    unsigned tbl8Next_;
    std::size_t routeCount_;
};

} // namespace xui

#endif // XUI_NET_LPM_HH
