#include "net/l3fwd.hh"

#include "obs/metrics.hh"
#include "obs/trace_export.hh"
#include "stats/distributions.hh"

#include <algorithm>
#include <cassert>

namespace xui
{

L3Fwd::L3Fwd(const L3FwdConfig &config)
    : config_(config),
      sim_(config.seed),
      table_(512),
      rng_(sim_.makeRng())
{
    assert(config.numNics >= 1);
    routes_ = installRandomRoutes(table_, config_.routeCount, rng_);
    for (unsigned i = 0; i < config_.numNics; ++i)
        nics_.push_back(std::make_unique<Nic>(config_.queueDepth));

    if (config_.mode == RxMode::XuiForwarded) {
        for (unsigned i = 0; i < config_.numNics; ++i) {
            nics_[i]->armInterrupt(true);
            nics_[i]->setInterruptHandler([this] {
                if (handling_)
                    return;  // UIF clear: handler already running
                handling_ = true;
                ++result_.interrupts;
                notificationCycles_ +=
                    config_.costs.forwardedReceive;
                sim_.queue().scheduleAfter(
                    config_.costs.forwardedReceive,
                    [this] { serviceLoop(); });
            });
        }
    }
}

int
L3Fwd::nextQueue()
{
    for (unsigned i = 0; i < config_.numNics; ++i) {
        unsigned q = (rrNext_ + i) % config_.numNics;
        if (!nics_[q]->queueEmpty()) {
            rrNext_ = (q + 1) % config_.numNics;
            return static_cast<int>(q);
        }
    }
    return -1;
}

void
L3Fwd::onArrival(unsigned nic, Packet pkt)
{
    nics_[nic]->deliver(pkt);
    if (config_.mode == RxMode::Polling && !serviceActive_) {
        serviceActive_ = true;
        // Detection latency: the spin loop notices the descriptor on
        // its next rotation (positive poll = miss + mispredict).
        Cycles detect = config_.costs.pollNotify +
            config_.costs.pollCheck * (config_.numNics - 1) / 2;
        sim_.queue().scheduleAfter(detect, [this] { serviceLoop(); });
    } else if (config_.mode == RxMode::MwaitSingleQueue &&
               !serviceActive_) {
        serviceActive_ = true;
        // Queue 0 wakes the sleeping core via the monitored line;
        // other queues are only noticed by the poll rotation the
        // core resumes after waking (and with >1 NIC the core never
        // actually slept -- see run()'s accounting).
        Cycles detect = nic == 0
            ? config_.costs.mwaitWake
            : config_.costs.pollNotify +
                config_.costs.pollCheck * (config_.numNics - 1) / 2;
        sim_.queue().scheduleAfter(detect, [this] { serviceLoop(); });
    }
}

void
L3Fwd::serviceLoop()
{
    int q = nextQueue();
    if (q < 0) {
        // All queues empty: polling keeps spinning (accounted as
        // polling cycles); the xUI handler rearms and returns.
        serviceActive_ = false;
        handling_ = false;
        return;
    }
    Packet pkt;
    bool ok = nics_[static_cast<unsigned>(q)]->poll(pkt);
    assert(ok);
    (void)ok;

    // The real forwarding work: LPM route lookup.
    LpmTable::NextHop hop = table_.lookup(pkt.dstIp);
    (void)hop;

    networkingCycles_ += config_.costs.packetProcess;
    sim_.queue().scheduleAfter(
        config_.costs.packetProcess, [this, pkt] {
            ++result_.forwarded;
            result_.latency.record(static_cast<std::int64_t>(
                sim_.now() - pkt.arrival));
            serviceLoop();
        });
}

L3FwdResult
L3Fwd::run()
{
    std::unique_ptr<DesTraceHook> hook;
    if (config_.traceOut != nullptr) {
        hook = std::make_unique<DesTraceHook>(*config_.traceOut);
        hook->attach(sim_.queue());
    }

    // Per-NIC exponential arrivals at the configured load fraction
    // of the single-core forwarding capacity.
    double capacity_per_cycle =
        1.0 / static_cast<double>(config_.costs.packetProcess);
    double rate_per_nic = config_.load * capacity_per_cycle /
        static_cast<double>(config_.numNics);

    std::uint64_t id = 1;
    for (unsigned n = 0; n < config_.numNics; ++n) {
        PoissonProcess proc(rate_per_nic, rng_.split());
        while (true) {
            Cycles at = proc.nextArrival();
            if (at >= config_.duration)
                break;
            Packet pkt;
            pkt.id = id++;
            pkt.arrival = at;
            pkt.dstIp = randomCoveredIp(routes_, rng_);
            pkt.srcIp = static_cast<std::uint32_t>(rng_.next());
            ++result_.offered;
            sim_.queue().scheduleAt(
                at, [this, n, pkt] { onArrival(n, pkt); });
        }
    }

    sim_.queue().runAll();

    for (const auto &nic : nics_)
        result_.dropped += nic->dropped();

    double total = static_cast<double>(config_.duration);
    result_.networkingFrac =
        std::min(1.0, static_cast<double>(networkingCycles_) / total);
    result_.notificationFrac =
        static_cast<double>(notificationCycles_) / total;
    if (config_.mode == RxMode::Polling) {
        // The spin loop consumes every cycle not spent forwarding.
        result_.pollingFrac = 1.0 - result_.networkingFrac;
        result_.freeFrac = 0.0;
    } else if (config_.mode == RxMode::MwaitSingleQueue) {
        if (config_.numNics == 1) {
            // The core sleeps in umwait whenever queue 0 is empty.
            result_.pollingFrac = 0.0;
            result_.freeFrac = std::max(
                0.0, 1.0 - result_.networkingFrac);
        } else {
            // The other queues still need spin polling, so the core
            // can never enter umwait: all idle cycles burn (§2).
            result_.pollingFrac = 1.0 - result_.networkingFrac;
            result_.freeFrac = 0.0;
        }
    } else {
        result_.pollingFrac = 0.0;
        result_.freeFrac = std::max(
            0.0, 1.0 - result_.networkingFrac -
                     result_.notificationFrac);
    }
    double seconds = cyclesToUs(config_.duration) / 1e6;
    result_.throughputMpps =
        static_cast<double>(result_.forwarded) / seconds / 1e6;

    if (config_.metrics != nullptr) {
        MetricsRegistry &r = *config_.metrics;
        r.counter("l3fwd.offered").inc(result_.offered);
        r.counter("l3fwd.forwarded").inc(result_.forwarded);
        r.counter("l3fwd.dropped").inc(result_.dropped);
        r.counter("l3fwd.interrupts").inc(result_.interrupts);
        r.latency("l3fwd.latency").merge(result_.latency);
        r.gauge("l3fwd.throughput_mpps")
            .set(result_.throughputMpps);
        r.gauge("l3fwd.free_frac").set(result_.freeFrac);
    }
    return result_;
}

L3FwdResult
runL3Fwd(const L3FwdConfig &config)
{
    L3Fwd app(config);
    return app.run();
}

} // namespace xui
