#include "net/l3fwd.hh"

#include "obs/metrics.hh"
#include "obs/trace_export.hh"
#include "stats/distributions.hh"

#include <algorithm>
#include <cassert>

namespace xui
{

L3Fwd::L3Fwd(const L3FwdConfig &config)
    : config_(config),
      sim_(config.seed),
      table_(512),
      rng_(sim_.makeRng())
{
    assert(config.numNics >= 1);
    routes_ = installRandomRoutes(table_, config_.routeCount, rng_);
    for (unsigned i = 0; i < config_.numNics; ++i)
        nics_.push_back(std::make_unique<Nic>(config_.queueDepth));

    if (config_.mode == RxMode::XuiForwarded) {
        mods_.resize(config_.numNics);
        if (config_.moderation.enabled()) {
            for (unsigned i = 0; i < config_.numNics; ++i)
                mods_[i] = std::make_unique<VectorModerator>(
                    config_.moderation);
        }
        for (unsigned i = 0; i < config_.numNics; ++i) {
            nics_[i]->armInterrupt(true);
            nics_[i]->setInterruptHandler(
                [this, i] { onNicInterrupt(i); });
        }
    }
}

bool
L3Fwd::anyPending() const
{
    for (const auto &nic : nics_)
        if (!nic->queueEmpty())
            return true;
    return false;
}

void
L3Fwd::fireService()
{
    handling_ = true;
    ++result_.interrupts;
    notificationCycles_ += config_.costs.forwardedReceive;
    sim_.queue().scheduleAfter(config_.costs.forwardedReceive,
                               [this] { serviceLoop(); });
}

void
L3Fwd::onNicInterrupt(unsigned nic)
{
    if (handling_)
        return;  // UIF clear: handler already running
    if (mods_[nic] != nullptr) {
        switch (mods_[nic]->onPost(sim_.now())) {
          case VectorModerator::Verdict::Coalesced:
            ++result_.coalesced;
            return;
          case VectorModerator::Verdict::OpenWindow: {
            ++result_.suppressedWindows;
            Cycles delay = mods_[nic]->flushAt() - sim_.now();
            sim_.queue().scheduleAfter(
                delay == 0 ? 1 : delay,
                [this, nic] { moderationFlush(nic); });
            return;
          }
          case VectorModerator::Verdict::Deliver:
            break;
        }
    }
    fireService();
}

void
L3Fwd::moderationFlush(unsigned nic)
{
    if (mods_[nic] == nullptr || !mods_[nic]->flushPending())
        return;
    mods_[nic]->onFlush(sim_.now());
    if (handling_)
        return;  // the running service loop drains every queue
    if (!anyPending())
        return;  // drained before the window closed
    fireService();
}

void
L3Fwd::rearmDone()
{
    handling_ = false;
    if (!anyPending())
        return;
    // Packets arrived inside the rearm race window, so their RX
    // edge never reached the core.
    if (config_.policy.behavior == DeliveryBehavior::NextOrMissed ||
        config_.policy.trigger == TriggerMode::Level) {
        // Driver rechecks the descriptor rings after rearming
        // (NAPI-style): the missed wakeup is recovered.
        ++result_.missedRecovered;
        fireService();
    } else {
        // NEXT_ONLY + edge: the wakeup is gone. The queue strands
        // until another edge (a different NIC, or this queue
        // emptying by drops and refilling) rescues it.
        ++result_.missed;
    }
}

int
L3Fwd::nextQueue()
{
    for (unsigned i = 0; i < config_.numNics; ++i) {
        unsigned q = (rrNext_ + i) % config_.numNics;
        if (!nics_[q]->queueEmpty()) {
            rrNext_ = (q + 1) % config_.numNics;
            return static_cast<int>(q);
        }
    }
    return -1;
}

void
L3Fwd::onArrival(unsigned nic, Packet pkt)
{
    bool was_empty = nics_[nic]->queueEmpty();
    nics_[nic]->deliver(pkt);
    // Level trigger: pending packets re-raise the interrupt even
    // without an empty->non-empty RX edge, so a stranded queue
    // self-heals on the next arrival.
    if (config_.mode == RxMode::XuiForwarded &&
        config_.policyEnabled &&
        config_.policy.trigger == TriggerMode::Level &&
        !was_empty && !handling_) {
        ++result_.levelRedeliveries;
        onNicInterrupt(nic);
    }
    if (config_.mode == RxMode::Polling && !serviceActive_) {
        serviceActive_ = true;
        // Detection latency: the spin loop notices the descriptor on
        // its next rotation (positive poll = miss + mispredict).
        Cycles detect = config_.costs.pollNotify +
            config_.costs.pollCheck * (config_.numNics - 1) / 2;
        sim_.queue().scheduleAfter(detect, [this] { serviceLoop(); });
    } else if (config_.mode == RxMode::MwaitSingleQueue &&
               !serviceActive_) {
        serviceActive_ = true;
        // Queue 0 wakes the sleeping core via the monitored line;
        // other queues are only noticed by the poll rotation the
        // core resumes after waking (and with >1 NIC the core never
        // actually slept -- see run()'s accounting).
        Cycles detect = nic == 0
            ? config_.costs.mwaitWake
            : config_.costs.pollNotify +
                config_.costs.pollCheck * (config_.numNics - 1) / 2;
        sim_.queue().scheduleAfter(detect, [this] { serviceLoop(); });
    }
}

void
L3Fwd::serviceLoop()
{
    int q = nextQueue();
    if (q < 0) {
        // All queues empty: polling keeps spinning (accounted as
        // polling cycles); the xUI handler rearms and returns.
        serviceActive_ = false;
        if (config_.mode == RxMode::XuiForwarded &&
            config_.policyEnabled) {
            // The rearm write races arriving edges: the handler
            // stays masked for the gap, then the policy decides
            // what happens to anything that landed meanwhile.
            sim_.queue().scheduleAfter(config_.rearmGap,
                                       [this] { rearmDone(); });
            return;
        }
        handling_ = false;
        return;
    }
    Packet pkt;
    bool ok = nics_[static_cast<unsigned>(q)]->poll(pkt);
    assert(ok);
    (void)ok;

    // The real forwarding work: LPM route lookup.
    LpmTable::NextHop hop = table_.lookup(pkt.dstIp);
    (void)hop;

    networkingCycles_ += config_.costs.packetProcess;
    sim_.queue().scheduleAfter(
        config_.costs.packetProcess, [this, pkt] {
            ++result_.forwarded;
            result_.latency.record(static_cast<std::int64_t>(
                sim_.now() - pkt.arrival));
            serviceLoop();
        });
}

L3FwdResult
L3Fwd::run()
{
    std::unique_ptr<DesTraceHook> hook;
    if (config_.traceOut != nullptr) {
        hook = std::make_unique<DesTraceHook>(*config_.traceOut);
        hook->attach(sim_.queue());
    }

    // Per-NIC exponential arrivals at the configured load fraction
    // of the single-core forwarding capacity.
    double capacity_per_cycle =
        1.0 / static_cast<double>(config_.costs.packetProcess);
    double rate_per_nic = config_.load * capacity_per_cycle /
        static_cast<double>(config_.numNics);

    std::uint64_t id = 1;
    for (unsigned n = 0; n < config_.numNics; ++n) {
        PoissonProcess proc(rate_per_nic, rng_.split());
        while (true) {
            Cycles at = proc.nextArrival();
            if (at >= config_.duration)
                break;
            Packet pkt;
            pkt.id = id++;
            pkt.arrival = at;
            pkt.dstIp = randomCoveredIp(routes_, rng_);
            pkt.srcIp = static_cast<std::uint32_t>(rng_.next());
            ++result_.offered;
            sim_.queue().scheduleAt(
                at, [this, n, pkt] { onArrival(n, pkt); });
        }
    }

    sim_.queue().runAll();

    for (const auto &nic : nics_)
        result_.dropped += nic->dropped();

    double total = static_cast<double>(config_.duration);
    result_.networkingFrac =
        std::min(1.0, static_cast<double>(networkingCycles_) / total);
    result_.notificationFrac =
        static_cast<double>(notificationCycles_) / total;
    if (config_.mode == RxMode::Polling) {
        // The spin loop consumes every cycle not spent forwarding.
        result_.pollingFrac = 1.0 - result_.networkingFrac;
        result_.freeFrac = 0.0;
    } else if (config_.mode == RxMode::MwaitSingleQueue) {
        if (config_.numNics == 1) {
            // The core sleeps in umwait whenever queue 0 is empty.
            result_.pollingFrac = 0.0;
            result_.freeFrac = std::max(
                0.0, 1.0 - result_.networkingFrac);
        } else {
            // The other queues still need spin polling, so the core
            // can never enter umwait: all idle cycles burn (§2).
            result_.pollingFrac = 1.0 - result_.networkingFrac;
            result_.freeFrac = 0.0;
        }
    } else {
        result_.pollingFrac = 0.0;
        result_.freeFrac = std::max(
            0.0, 1.0 - result_.networkingFrac -
                     result_.notificationFrac);
    }
    double seconds = cyclesToUs(config_.duration) / 1e6;
    result_.throughputMpps =
        static_cast<double>(result_.forwarded) / seconds / 1e6;

    if (config_.metrics != nullptr) {
        MetricsRegistry &r = *config_.metrics;
        r.counter("l3fwd.offered").inc(result_.offered);
        r.counter("l3fwd.forwarded").inc(result_.forwarded);
        r.counter("l3fwd.dropped").inc(result_.dropped);
        r.counter("l3fwd.interrupts").inc(result_.interrupts);
        r.latency("l3fwd.latency").merge(result_.latency);
        r.gauge("l3fwd.throughput_mpps")
            .set(result_.throughputMpps);
        r.gauge("l3fwd.free_frac").set(result_.freeFrac);
        if (config_.policyEnabled || config_.moderation.enabled()) {
            r.counter("l3fwd.policy.coalesced")
                .inc(result_.coalesced);
            r.counter("l3fwd.policy.suppressed_windows")
                .inc(result_.suppressedWindows);
            r.counter("l3fwd.policy.missed").inc(result_.missed);
            r.counter("l3fwd.policy.missed_recovered")
                .inc(result_.missedRecovered);
            r.counter("l3fwd.policy.level_redeliver")
                .inc(result_.levelRedeliveries);
        }
    }
    return result_;
}

L3FwdResult
runL3Fwd(const L3FwdConfig &config)
{
    L3Fwd app(config);
    return app.run();
}

} // namespace xui
