#include "net/lpm.hh"

#include <cassert>

namespace xui
{

LpmTable::LpmTable(unsigned max_tbl8_groups)
    : tbl24_(1u << 24, 0),
      tbl24Depth_(1u << 24, 0),
      tbl8_(static_cast<std::size_t>(max_tbl8_groups) * 256),
      maxTbl8_(max_tbl8_groups),
      tbl8Next_(0),
      routeCount_(0)
{}

bool
LpmTable::addRoute(std::uint32_t prefix, unsigned depth,
                   NextHop next_hop)
{
    if (depth < 1 || depth > 32 || next_hop > kValueMask)
        return false;
    // Mask host bits so callers can pass any address in the prefix.
    std::uint32_t mask =
        depth == 32 ? 0xffffffffu : ~(0xffffffffu >> depth);
    prefix &= mask;

    bool ok = depth <= 24 ? addShallowRoute(prefix, depth, next_hop)
                          : addDeepRoute(prefix, depth, next_hop);
    if (ok)
        ++routeCount_;
    return ok;
}

bool
LpmTable::addShallowRoute(std::uint32_t prefix, unsigned depth,
                          NextHop next_hop)
{
    std::uint32_t start = prefix >> 8;
    std::uint32_t span = 1u << (24 - depth);
    std::uint16_t fresh = static_cast<std::uint16_t>(
        kValid | (next_hop & kValueMask));

    for (std::uint32_t i = start; i < start + span; ++i) {
        std::uint16_t cur = tbl24_[i];
        if (cur & kExtended) {
            // Propagate into the existing tbl8 group where this
            // route is the longest match.
            std::uint32_t group = cur & kValueMask;
            Tbl8Entry *g = &tbl8_[group * 256];
            for (unsigned j = 0; j < 256; ++j) {
                if (!(g[j].entry & kValid) || g[j].depth <= depth) {
                    g[j].entry = fresh;
                    g[j].depth = static_cast<std::uint8_t>(depth);
                }
            }
        } else if (!(cur & kValid) || tbl24Depth_[i] <= depth) {
            tbl24_[i] = fresh;
            tbl24Depth_[i] = static_cast<std::uint8_t>(depth);
        }
    }
    return true;
}

int
LpmTable::allocateTbl8(std::uint16_t inherited_entry,
                       std::uint8_t inherited_depth)
{
    if (tbl8Next_ >= maxTbl8_)
        return -1;
    unsigned group = tbl8Next_++;
    Tbl8Entry *g = &tbl8_[static_cast<std::size_t>(group) * 256];
    for (unsigned j = 0; j < 256; ++j) {
        g[j].entry = inherited_entry;
        g[j].depth = inherited_depth;
    }
    return static_cast<int>(group);
}

bool
LpmTable::addDeepRoute(std::uint32_t prefix, unsigned depth,
                       NextHop next_hop)
{
    std::uint32_t idx = prefix >> 8;
    std::uint16_t cur = tbl24_[idx];
    std::uint32_t group;

    if (cur & kExtended) {
        group = cur & kValueMask;
    } else {
        // Expand: new group inherits the covering shallow route.
        std::uint16_t inherited =
            (cur & kValid)
                ? static_cast<std::uint16_t>(kValid |
                                             (cur & kValueMask))
                : std::uint16_t{0};
        int alloc = allocateTbl8(inherited, tbl24Depth_[idx]);
        if (alloc < 0)
            return false;
        group = static_cast<std::uint32_t>(alloc);
        tbl24_[idx] = static_cast<std::uint16_t>(
            kValid | kExtended | (group & kValueMask));
        // Depth of the tbl24 slot itself no longer applies.
    }

    unsigned low = prefix & 0xff;
    unsigned span = 1u << (32 - depth);
    Tbl8Entry *g = &tbl8_[static_cast<std::size_t>(group) * 256];
    std::uint16_t fresh = static_cast<std::uint16_t>(
        kValid | (next_hop & kValueMask));
    for (unsigned j = low; j < low + span; ++j) {
        if (!(g[j].entry & kValid) || g[j].depth <= depth) {
            g[j].entry = fresh;
            g[j].depth = static_cast<std::uint8_t>(depth);
        }
    }
    return true;
}

LpmTable::NextHop
LpmTable::lookup(std::uint32_t ip) const
{
    std::uint16_t e = tbl24_[ip >> 8];
    if (e & kExtended) {
        const Tbl8Entry &t =
            tbl8_[static_cast<std::size_t>(e & kValueMask) * 256 +
                  (ip & 0xff)];
        if (t.entry & kValid)
            return t.entry & kValueMask;
        return kNoRoute;
    }
    if (e & kValid)
        return e & kValueMask;
    return kNoRoute;
}

} // namespace xui
