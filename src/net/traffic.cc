#include "net/traffic.hh"

#include <unordered_set>

namespace xui
{

std::vector<RouteSpec>
installRandomRoutes(LpmTable &table, std::size_t count, Rng &rng)
{
    std::vector<RouteSpec> routes;
    routes.reserve(count);
    // Real route tables have unique prefixes; duplicates would also
    // make longest-prefix results order-dependent.
    std::unordered_set<std::uint64_t> seen;
    while (routes.size() < count) {
        RouteSpec r;
        // Depth mix biased toward /16../24 like Internet tables;
        // a slice of >/24 routes exercises the tbl8 path.
        std::uint64_t roll = rng.nextBounded(100);
        if (roll < 10)
            r.depth = static_cast<unsigned>(8 + rng.nextBounded(8));
        else if (roll < 90)
            r.depth = static_cast<unsigned>(16 + rng.nextBounded(9));
        else
            r.depth = static_cast<unsigned>(25 + rng.nextBounded(4));
        r.prefix = static_cast<std::uint32_t>(rng.next());
        std::uint32_t mask = r.depth == 32
            ? 0xffffffffu
            : ~(0xffffffffu >> r.depth);
        r.prefix &= mask;
        r.nextHop = static_cast<LpmTable::NextHop>(
            rng.nextBounded(256));
        std::uint64_t key =
            (static_cast<std::uint64_t>(r.prefix) << 6) | r.depth;
        if (!seen.insert(key).second)
            continue;
        if (table.addRoute(r.prefix, r.depth, r.nextHop))
            routes.push_back(r);
        else if (table.tbl8InUse() == 0 && r.depth > 24)
            continue;  // tbl8 exhausted; retry with another depth
    }
    return routes;
}

std::uint32_t
randomCoveredIp(const std::vector<RouteSpec> &routes, Rng &rng)
{
    const RouteSpec &r =
        routes[rng.nextBounded(routes.size())];
    std::uint32_t host_bits = r.depth == 32
        ? 0
        : static_cast<std::uint32_t>(rng.next()) &
            (0xffffffffu >> r.depth);
    return r.prefix | host_bits;
}

} // namespace xui
