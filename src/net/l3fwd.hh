/**
 * @file
 * Layer-3 forwarding application (DPDK l3fwd reproduction, Fig. 8):
 * one core serving 1..8 NIC RX queues, routing 64-byte packets
 * through a real DIR-24-8 LPM table, comparing spin-polling RX
 * against xUI interrupt forwarding.
 */

#ifndef XUI_NET_L3FWD_HH
#define XUI_NET_L3FWD_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "des/simulation.hh"
#include "intr/policy.hh"
#include "net/lpm.hh"
#include "net/packet.hh"
#include "net/traffic.hh"
#include "os/cost_model.hh"
#include "stats/histogram.hh"

namespace xui
{

class MetricsRegistry;
class TraceJsonWriter;

/** RX notification mode. */
enum class RxMode : std::uint8_t
{
    /** DPDK default: busy-spin over every RX queue. */
    Polling,
    /** xUI: tracked interrupts via interrupt forwarding. */
    XuiForwarded,
    /**
     * umwait on queue 0's cache line (§2: "processors offer no way
     * to idle on more than a single queue"): with one NIC the core
     * sleeps between packets; with more it must spin-poll the other
     * queues and can never sleep.
     */
    MwaitSingleQueue,
};

/** Configuration for one l3fwd run. */
struct L3FwdConfig
{
    CostModel costs;
    RxMode mode = RxMode::Polling;
    unsigned numNics = 1;
    /** Offered load as a fraction of the core's forwarding capacity
     * (capacity = clock / packetProcess). */
    double load = 0.4;
    Cycles duration = 100 * kCyclesPerMs;
    std::size_t routeCount = 16000;
    std::size_t queueDepth = 1024;
    std::uint64_t seed = 1;
    /** Optional observability sinks (null = off, zero cost). */
    MetricsRegistry *metrics = nullptr;
    TraceJsonWriter *traceOut = nullptr;

    // ----- delivery policy & moderation (XuiForwarded only) ------
    /**
     * When set, model the interrupt rearm race explicitly: leaving
     * the service loop takes `rearmGap` cycles during which RX
     * edges cannot raise the handler. NEXT_ONLY + edge misses those
     * wakeups outright (the queue strands until another NIC's edge
     * rescues it — the failure mode NEXT_OR_MISSED exists to fix);
     * NEXT_OR_MISSED rechecks the queues after the rearm; level
     * trigger additionally refires on any arrival that finds
     * pending packets with the handler idle. Off (the default) the
     * run is bit-identical to the pre-policy model.
     */
    bool policyEnabled = false;
    DeliveryPolicy policy{};
    /** Rearm race window (cycles), used when policyEnabled. */
    Cycles rearmGap = 100;
    /** Per-NIC ITR moderation (disabled params = off). */
    ModerationParams moderation{};
};

/** Results of one l3fwd run. */
struct L3FwdResult
{
    std::uint64_t offered = 0;
    std::uint64_t forwarded = 0;
    std::uint64_t dropped = 0;
    std::uint64_t interrupts = 0;
    /** Per-packet latency (wire arrival -> forwarded). */
    Histogram latency;
    /** Cycle-accounting fractions (sum with freeFrac to 1). */
    double networkingFrac = 0.0;
    double pollingFrac = 0.0;
    double notificationFrac = 0.0;
    double freeFrac = 0.0;
    double throughputMpps = 0.0;

    // Delivery-policy / moderation outcomes (zero when off).
    /** Interrupts batched into an already-pending flush. */
    std::uint64_t coalesced = 0;
    /** Flush windows opened (notifications deferred). */
    std::uint64_t suppressedWindows = 0;
    /** NEXT_ONLY wakeups missed in the rearm gap. */
    std::uint64_t missed = 0;
    /** NEXT_OR_MISSED post-rearm recheck recoveries. */
    std::uint64_t missedRecovered = 0;
    /** Level-trigger refires without an RX edge. */
    std::uint64_t levelRedeliveries = 0;
};

/** The l3fwd application simulation. */
class L3Fwd
{
  public:
    explicit L3Fwd(const L3FwdConfig &config);

    /** Run to completion and collect results. */
    L3FwdResult run();

    /** The routing table (available for inspection / examples). */
    LpmTable &table() { return table_; }

  private:
    void onArrival(unsigned nic, Packet pkt);
    void serviceLoop();
    /** Pick the next non-empty queue round-robin; -1 when idle. */
    int nextQueue();
    /** Any RX queue holds packets. */
    bool anyPending() const;
    /** An RX interrupt reached the core (edge or level refire). */
    void onNicInterrupt(unsigned nic);
    /** Pay the notification cost and enter the service loop. */
    void fireService();
    /** A scheduled moderation flush fires for one NIC. */
    void moderationFlush(unsigned nic);
    /** The post-service interrupt rearm window closed. */
    void rearmDone();

    L3FwdConfig config_;
    Simulation sim_;
    LpmTable table_;
    std::vector<RouteSpec> routes_;
    std::vector<std::unique_ptr<Nic>> nics_;
    /** Per-NIC moderators (null = unmoderated). */
    std::vector<std::unique_ptr<VectorModerator>> mods_;
    Rng rng_;

    bool serviceActive_ = false;
    bool handling_ = false;
    unsigned rrNext_ = 0;

    Cycles networkingCycles_ = 0;
    Cycles notificationCycles_ = 0;
    L3FwdResult result_;
};

/** Convenience wrapper. */
L3FwdResult runL3Fwd(const L3FwdConfig &config);

} // namespace xui

#endif // XUI_NET_L3FWD_HH
