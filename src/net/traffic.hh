/**
 * @file
 * Route-table and traffic generation for l3fwd: random prefixes for
 * the 16,000-entry LPM table and packet destination addresses drawn
 * from the installed prefixes, with exponential inter-arrival times
 * (§5.4: "we modified the packet generator to use an exponential
 * distribution ... to more accurately model the burstiness of real
 * network traffic").
 */

#ifndef XUI_NET_TRAFFIC_HH
#define XUI_NET_TRAFFIC_HH

#include <cstdint>
#include <vector>

#include "net/lpm.hh"
#include "stats/rng.hh"

namespace xui
{

/** One generated route (for addressing traffic at it). */
struct RouteSpec
{
    std::uint32_t prefix;
    unsigned depth;
    LpmTable::NextHop nextHop;
};

/**
 * Install `count` random routes (mixed depths 8..28, deduplicated
 * against exact repeats) into `table`.
 * @return the installed routes.
 */
std::vector<RouteSpec> installRandomRoutes(LpmTable &table,
                                           std::size_t count,
                                           Rng &rng);

/** Pick a destination IP covered by one of the routes. */
std::uint32_t randomCoveredIp(const std::vector<RouteSpec> &routes,
                              Rng &rng);

} // namespace xui

#endif // XUI_NET_TRAFFIC_HH
