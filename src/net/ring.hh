/**
 * @file
 * Fixed-capacity descriptor ring, the queue structure between a NIC
 * (or accelerator) and its driver. Single producer, single consumer,
 * power-of-two capacity.
 */

#ifndef XUI_NET_RING_HH
#define XUI_NET_RING_HH

#include <cassert>
#include <cstdint>
#include <vector>

namespace xui
{

/** Bounded FIFO ring buffer. */
template <typename T>
class DescRing
{
  public:
    /** @param capacity must be a power of two. */
    explicit DescRing(std::size_t capacity = 1024)
        : slots_(capacity), mask_(capacity - 1), head_(0), tail_(0)
    {
        assert(capacity > 0 && (capacity & (capacity - 1)) == 0);
    }

    /** @return false when the ring is full (entry dropped). */
    bool
    push(T value)
    {
        if (full())
            return false;
        slots_[tail_ & mask_] = std::move(value);
        ++tail_;
        return true;
    }

    /** @return false when empty. */
    bool
    pop(T &out)
    {
        if (empty())
            return false;
        out = std::move(slots_[head_ & mask_]);
        ++head_;
        return true;
    }

    /** Peek without consuming. @pre !empty() */
    const T &front() const { return slots_[head_ & mask_]; }

    bool empty() const { return head_ == tail_; }
    bool full() const { return tail_ - head_ == slots_.size(); }
    std::size_t size() const { return tail_ - head_; }
    std::size_t capacity() const { return slots_.size(); }

  private:
    std::vector<T> slots_;
    std::size_t mask_;
    std::uint64_t head_;
    std::uint64_t tail_;
};

} // namespace xui

#endif // XUI_NET_RING_HH
