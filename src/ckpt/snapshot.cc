#include "ckpt/snapshot.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "ckpt/build_info.hh"
#include "stats/digest.hh"

namespace xui::ckpt
{

const char *loadStatusName(LoadStatus s)
{
    switch (s) {
    case LoadStatus::Ok:
        return "ok";
    case LoadStatus::Missing:
        return "missing";
    case LoadStatus::Corrupt:
        return "corrupt";
    case LoadStatus::VersionMismatch:
        return "version_mismatch";
    case LoadStatus::ProvenanceMismatch:
        return "provenance_mismatch";
    }
    return "?";
}

namespace
{

std::string encodeEnvelope(const Snapshot &snap)
{
    Writer w;
    w.bytes(kMagic, sizeof(kMagic));
    w.u32(kFormatVersion);
    w.str(kBuildGitSha);
    w.str(kBuildType);
    w.str(snap.tag);
    w.u64(snap.seq);
    w.u64(snap.payload.size());
    w.u64(fnv1a(snap.payload.data(), snap.payload.size()));
    w.bytes(snap.payload.data(), snap.payload.size());
    return w.take();
}

/** Write `data` to `path` directly (fault paths skip the tmp). */
bool writeFile(const std::string &path, const char *data,
               std::size_t n, bool sync, std::string *error)
{
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        if (error)
            *error = path + ": open: " + std::strerror(errno);
        return false;
    }
    std::size_t off = 0;
    while (off < n) {
        ssize_t wrote = ::write(fd, data + off, n - off);
        if (wrote < 0) {
            if (errno == EINTR)
                continue;
            if (error)
                *error = path + ": write: " + std::strerror(errno);
            ::close(fd);
            return false;
        }
        off += static_cast<std::size_t>(wrote);
    }
    bool synced = !sync || ::fsync(fd) == 0;
    if (!synced && error)
        *error = path + ": fsync: " + std::strerror(errno);
    ::close(fd);
    return synced;
}

/**
 * Mutate the encoded envelope per the injected storage fault. The
 * header through payloadDigest occupies a fixed prefix plus three
 * length-prefixed strings; rather than re-deriving that offset,
 * fault shaping works on simple byte positions that are guaranteed
 * to hit the region the action names.
 */
std::string applyFault(const std::string &bytes, fault::Action action,
                       std::uint32_t magnitude)
{
    std::string out = bytes;
    switch (action) {
    case fault::Action::Delay:
        // Torn write: only the first half of the file landed.
        out.resize(out.size() / 2);
        break;
    case fault::Action::Duplicate: {
        // Single bit flip somewhere in the payload region (last
        // byte of the file is always payload when non-empty, and a
        // flip anywhere fails the digest or the header parse).
        if (!out.empty()) {
            std::size_t pos = magnitude % out.size();
            out[pos] = static_cast<char>(out[pos] ^ 0x40);
        }
        break;
    }
    case fault::Action::Reorder:
        // Truncated right after the fixed magic+version prefix.
        out.resize(sizeof(kMagic) + 4);
        break;
    case fault::Action::Spurious:
        // Corrupted magic: reads as "not a snapshot at all".
        if (out.size() >= sizeof(kMagic))
            out[0] = '?';
        break;
    case fault::Action::Storm:
        out.clear();
        break;
    default:
        break;
    }
    return out;
}

} // namespace

SaveResult saveSnapshot(const std::string &path, const Snapshot &snap,
                        fault::Injector *injector, bool sync)
{
    SaveResult res;
    std::string bytes = encodeEnvelope(snap);

    fault::Injector::Decision d;
    if (injector)
        d = injector->decide(fault::Site::CheckpointWrite);

    if (d.action == fault::Action::Drop) {
        // Save silently lost before any byte reached storage; the
        // previous generation (if any) survives untouched.
        res.injected = d.action;
        return res;
    }
    if (d.action != fault::Action::None) {
        // Simulated storage fault on the final path: bypass the
        // tmp+rename discipline on purpose, because the scenario
        // being modeled is the final file ending up damaged.
        res.injected = d.action;
        std::string damaged = applyFault(bytes, d.action, d.magnitude);
        writeFile(path, damaged.data(), damaged.size(), sync,
                  &res.error);
        return res;
    }

    // Crash-consistent happy path: tmp sibling + fsync + rename.
    std::string tmp = path + ".tmp";
    if (!writeFile(tmp, bytes.data(), bytes.size(), sync,
                   &res.error)) {
        ::remove(tmp.c_str());
        return res;
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        res.error = path + ": rename: " + std::strerror(errno);
        ::remove(tmp.c_str());
        return res;
    }
    res.ok = true;
    return res;
}

LoadStatus loadSnapshot(const std::string &path, Snapshot &out,
                        bool requireProvenance)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return LoadStatus::Missing;
    std::string bytes;
    char buf[1 << 16];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.append(buf, got);
    bool readOk = std::ferror(f) == 0;
    std::fclose(f);
    if (!readOk)
        return LoadStatus::Missing;

    Reader r(bytes);
    char magic[sizeof(kMagic)];
    if (!r.bytes(magic, sizeof(magic)) ||
        std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        return LoadStatus::Corrupt;
    std::uint32_t version = 0;
    if (!r.u32(version))
        return LoadStatus::Corrupt;
    if (version != kFormatVersion)
        return LoadStatus::VersionMismatch;

    Snapshot snap;
    std::uint64_t payloadSize = 0;
    std::uint64_t payloadDigest = 0;
    if (!r.str(snap.gitSha) || !r.str(snap.buildType) ||
        !r.str(snap.tag) || !r.u64(snap.seq) ||
        !r.u64(payloadSize) || !r.u64(payloadDigest))
        return LoadStatus::Corrupt;
    if (payloadSize != r.remaining())
        return LoadStatus::Corrupt;
    snap.payload.assign(bytes.data() + (bytes.size() - r.remaining()),
                        r.remaining());
    if (fnv1a(snap.payload.data(), snap.payload.size()) !=
        payloadDigest)
        return LoadStatus::Corrupt;

    if (requireProvenance &&
        (snap.gitSha != kBuildGitSha || snap.buildType != kBuildType))
        return LoadStatus::ProvenanceMismatch;

    out = std::move(snap);
    return LoadStatus::Ok;
}

std::string GenerationSet::slotPath(std::uint64_t seq) const
{
    return base_ + ".gen" + std::to_string(seq % keep_);
}

SaveResult GenerationSet::save(Snapshot snap,
                               fault::Injector *injector)
{
    snap.seq = nextSeq_++;
    return saveSnapshot(slotPath(snap.seq), snap, injector, sync_);
}

GenerationSet::LoadOutcome
GenerationSet::loadLatest(Snapshot &out,
                          bool requireProvenance) const
{
    LoadOutcome outcome;
    Snapshot best;
    bool haveBest = false;
    for (unsigned slot = 0; slot < keep_; ++slot) {
        Snapshot snap;
        LoadStatus st = loadSnapshot(base_ + ".gen" +
                                         std::to_string(slot),
                                     snap, requireProvenance);
        if (st == LoadStatus::Ok) {
            if (!haveBest || snap.seq > best.seq) {
                best = std::move(snap);
                haveBest = true;
            }
        } else if (st != LoadStatus::Missing) {
            ++outcome.corruptSkipped;
            // Remember the most specific failure so a set that is
            // all-corrupt reports Corrupt, not Missing.
            outcome.status = st;
        }
    }
    if (haveBest) {
        out = std::move(best);
        outcome.status = LoadStatus::Ok;
    }
    return outcome;
}

void GenerationSet::removeAll() const
{
    for (unsigned slot = 0; slot < keep_; ++slot) {
        std::string path = base_ + ".gen" + std::to_string(slot);
        ::remove(path.c_str());
        ::remove((path + ".tmp").c_str());
    }
}

} // namespace xui::ckpt
