/**
 * @file
 * Crash-consistent snapshot files with versioned, provenance-stamped
 * headers and generation rotation.
 *
 * A snapshot is an opaque payload (built by the caller with
 * ckpt::Writer) wrapped in a self-validating envelope:
 *
 *   "XUICKPT\n" | u32 formatVersion | str gitSha | str buildType |
 *   str tag | u64 seq | u64 payloadSize | u64 payloadDigest |
 *   payload bytes
 *
 * Crash consistency is the classic POSIX recipe: write to a
 * temporary sibling, fsync, rename over the final path. A reader
 * therefore never observes a half-written final file from a crashed
 * writer — only from simulated write faults (Site::CheckpointWrite),
 * which is exactly what the FNV-1a payload digest and bounds-checked
 * header parse are there to catch.
 *
 * GenerationSet rotates saves across `keep` sibling paths so a
 * corrupt newest generation falls back to the newest *valid* one
 * instead of losing the run. Restore provenance is strict by
 * default: a snapshot produced by a different binary (git SHA or
 * build type mismatch) is refused rather than risking silent
 * divergence, because bit-identical resume is the whole contract.
 */

#ifndef XUI_CKPT_SNAPSHOT_HH
#define XUI_CKPT_SNAPSHOT_HH

#include <cstdint>
#include <string>

#include "ckpt/codec.hh"
#include "fault/fault.hh"

namespace xui::ckpt
{

/** Envelope format version; bump on any layout change. */
constexpr std::uint32_t kFormatVersion = 1;

/** Leading magic, newline-terminated so `head -c8` identifies it. */
constexpr char kMagic[8] = {'X', 'U', 'I', 'C', 'K', 'P', 'T', '\n'};

/** Parsed snapshot envelope + payload. */
struct Snapshot
{
    std::string gitSha;
    std::string buildType;
    /** Free-form producer tag (e.g. scenario name). */
    std::string tag;
    /** Monotonic save sequence number (newest-valid selection). */
    std::uint64_t seq = 0;
    std::string payload;
};

enum class LoadStatus : std::uint8_t
{
    Ok,
    /** File absent or unreadable. */
    Missing,
    /** Torn/truncated/bit-flipped envelope or digest mismatch. */
    Corrupt,
    /** Valid envelope from an incompatible format version. */
    VersionMismatch,
    /** Valid envelope from a different binary (SHA/build type). */
    ProvenanceMismatch,
};

const char *loadStatusName(LoadStatus s);

/** Result of one save attempt. */
struct SaveResult
{
    bool ok = false;
    /** The fault fabric corrupted or dropped this save. */
    fault::Action injected = fault::Action::None;
    std::string error;
};

/**
 * Serialize `snap` (provenance fields are overwritten with this
 * binary's) and write it crash-consistently to `path`.
 *
 * When `injector` is non-null the fabric is consulted once per save
 * at Site::CheckpointWrite; a matched directive simulates a storage
 * fault on the *final* file (the situation rename atomicity cannot
 * cause but flaky storage can):
 *   Drop      -> save silently lost (previous file kept)
 *   Delay     -> torn write: only the first half of the file lands
 *   Duplicate -> one payload byte bit-flipped (offset = magnitude)
 *   Reorder   -> file truncated right after the header
 *   Spurious  -> magic bytes corrupted
 *   Storm     -> zero-length file
 * Injected saves still return ok=false with `injected` set so the
 * caller can count them; every such outcome must be *detected* on
 * load (LoadStatus != Ok), never silently restored.
 *
 * `sync` controls the fsync before rename. It exists for callers
 * whose crash model is an in-process simulated kill (the chaos
 * harness): the page cache survives those by construction, so the
 * fsync buys nothing there and dominates runtime at high snapshot
 * cadence. Everything a reader can observe — envelope layout,
 * tmp+rename discipline, digest validation — is identical either
 * way. Real checkpointing keeps the default.
 */
SaveResult saveSnapshot(const std::string &path, const Snapshot &snap,
                        fault::Injector *injector = nullptr,
                        bool sync = true);

/**
 * Read and validate a snapshot. On anything but LoadStatus::Ok,
 * `out` is untouched. `requireProvenance` (default) refuses
 * snapshots from a different git SHA or build type.
 */
LoadStatus loadSnapshot(const std::string &path, Snapshot &out,
                        bool requireProvenance = true);

/**
 * Rotating set of `keep` snapshot generations under one base path
 * (files "<base>.gen0" .. "<base>.gen<keep-1>"). save() round-robins
 * by sequence number; loadLatest() scans every slot and restores the
 * valid snapshot with the highest seq, counting corrupt slots it
 * had to skip — the detected-corrupt + previous-generation fallback
 * the restore-under-fault tests assert on.
 */
class GenerationSet
{
  public:
    explicit GenerationSet(std::string base, unsigned keep = 4)
        : base_(std::move(base)), keep_(keep ? keep : 1)
    {}

    /** Path of the slot a given sequence number rotates into. */
    std::string slotPath(std::uint64_t seq) const;

    /** Save the next generation (assigns and bumps the seq). */
    SaveResult save(Snapshot snap,
                    fault::Injector *injector = nullptr);

    /** Toggle fsync-before-rename (see saveSnapshot's `sync`). */
    void setSync(bool sync) { sync_ = sync; }

    struct LoadOutcome
    {
        LoadStatus status = LoadStatus::Missing;
        /** Slots holding undecodable/mismatched snapshots. */
        unsigned corruptSkipped = 0;
    };

    /** Restore the newest valid generation across all slots. */
    LoadOutcome loadLatest(Snapshot &out,
                           bool requireProvenance = true) const;

    /** Next sequence number a save() would use. */
    std::uint64_t nextSeq() const { return nextSeq_; }
    unsigned keep() const { return keep_; }

    /** Remove every slot file (test hygiene). */
    void removeAll() const;

  private:
    std::string base_;
    unsigned keep_;
    std::uint64_t nextSeq_ = 1;
    bool sync_ = true;
};

} // namespace xui::ckpt

#endif // XUI_CKPT_SNAPSHOT_HH
