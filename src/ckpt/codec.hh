/**
 * @file
 * Byte codec for the snapshot engine: a little-endian, bounds-checked
 * Writer/Reader pair every serializable component implements
 * `save(Writer &)` / `load(Reader &)` against.
 *
 * Header-only and dependency-free on purpose: uarch/intr/verify
 * components include it without linking the snapshot file engine, so
 * the layering (ckpt's file code sits above fault, which sits above
 * des) stays acyclic.
 *
 * The format is deliberately dumb — fixed-width little-endian
 * integers, length-prefixed byte strings, no varints, no field tags.
 * Crash consistency and corruption detection live a layer up
 * (snapshot.hh: content digest + format version in the file header),
 * so the codec only has to be unambiguous and bounds-safe: every
 * Reader getter fails sticky on underrun instead of reading past the
 * buffer, which is what makes feeding it a torn or bit-flipped
 * payload safe.
 */

#ifndef XUI_CKPT_CODEC_HH
#define XUI_CKPT_CODEC_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace xui::ckpt
{

/** Append-only little-endian byte sink. */
class Writer
{
  public:
    void u8(std::uint8_t v)
    {
        out_.push_back(static_cast<char>(v));
    }

    void b(bool v) { u8(v ? 1 : 0); }

    void u16(std::uint16_t v)
    {
        u8(static_cast<std::uint8_t>(v));
        u8(static_cast<std::uint8_t>(v >> 8));
    }

    void u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            u8(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            u8(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void bytes(const void *data, std::size_t n)
    {
        out_.append(static_cast<const char *>(data), n);
    }

    /** Length-prefixed string. */
    void str(const std::string &s)
    {
        u64(s.size());
        out_.append(s);
    }

    /** Length-prefixed vector of 64-bit words. */
    void vecU64(const std::vector<std::uint64_t> &v)
    {
        u64(v.size());
        for (std::uint64_t x : v)
            u64(x);
    }

    const std::string &data() const { return out_; }
    std::string take() { return std::move(out_); }
    std::size_t size() const { return out_.size(); }

  private:
    std::string out_;
};

/** Bounds-checked reader over a byte buffer (not owned). */
class Reader
{
  public:
    Reader(const char *data, std::size_t n) : p_(data), n_(n) {}

    explicit Reader(const std::string &s)
        : Reader(s.data(), s.size())
    {}

    bool u8(std::uint8_t &v)
    {
        if (!need(1))
            return false;
        v = static_cast<std::uint8_t>(p_[pos_++]);
        return true;
    }

    bool b(bool &v)
    {
        std::uint8_t raw = 0;
        if (!u8(raw) || raw > 1)
            return fail();
        v = raw != 0;
        return true;
    }

    bool u16(std::uint16_t &v)
    {
        if (!need(2))
            return false;
        v = 0;
        for (int i = 0; i < 2; ++i)
            v |= static_cast<std::uint16_t>(
                     static_cast<std::uint8_t>(p_[pos_++]))
                 << (8 * i);
        return true;
    }

    bool u32(std::uint32_t &v)
    {
        if (!need(4))
            return false;
        v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(
                     static_cast<std::uint8_t>(p_[pos_++]))
                 << (8 * i);
        return true;
    }

    bool u64(std::uint64_t &v)
    {
        if (!need(8))
            return false;
        v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(
                     static_cast<std::uint8_t>(p_[pos_++]))
                 << (8 * i);
        return true;
    }

    bool bytes(void *out, std::size_t n)
    {
        if (!need(n))
            return false;
        std::memcpy(out, p_ + pos_, n);
        pos_ += n;
        return true;
    }

    bool str(std::string &s)
    {
        std::uint64_t len = 0;
        if (!u64(len) || len > n_ - pos_)
            return fail();
        s.assign(p_ + pos_, static_cast<std::size_t>(len));
        pos_ += static_cast<std::size_t>(len);
        return true;
    }

    bool vecU64(std::vector<std::uint64_t> &v)
    {
        std::uint64_t len = 0;
        // Each element costs 8 bytes; an impossible length is a
        // corrupt stream, not an allocation request.
        if (!u64(len) || len > (n_ - pos_) / 8)
            return fail();
        v.resize(static_cast<std::size_t>(len));
        for (auto &x : v)
            if (!u64(x))
                return false;
        return true;
    }

    /** Sticky failure flag: once an underrun happens, stays false. */
    bool ok() const { return ok_; }

    bool atEnd() const { return pos_ == n_; }
    std::size_t remaining() const { return n_ - pos_; }

    /** Mark the stream malformed (component-level invariants). */
    bool fail()
    {
        ok_ = false;
        return false;
    }

  private:
    bool need(std::size_t n)
    {
        if (!ok_ || n_ - pos_ < n)
            return fail();
        return true;
    }

    const char *p_;
    std::size_t n_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

} // namespace xui::ckpt

#endif // XUI_CKPT_CODEC_HH
