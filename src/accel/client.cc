#include "accel/client.hh"

#include <algorithm>
#include <memory>
#include <string>

#include "obs/metrics.hh"
#include "obs/trace_export.hh"

namespace xui
{

namespace
{

/** Event-driven closed-loop client state. */
class ClientRun
{
  public:
    explicit ClientRun(const DsaClientConfig &config)
        : config_(config),
          sim_(config.seed),
          device_(sim_, config.costs, config.latency)
    {}

    DsaClientResult
    run()
    {
        submitNext();
        sim_.queue().runAll();

        result_.offloads = completedCount_;
        double total = static_cast<double>(config_.duration);
        result_.freeFrac = std::max(
            0.0, 1.0 - static_cast<double>(busyCycles_) /
                     std::max(total, static_cast<double>(lastEnd_)));
        double seconds = cyclesToUs(config_.duration) / 1e6;
        result_.ipos =
            static_cast<double>(completedCount_) / seconds;
        if (config_.metrics != nullptr) {
            MetricsRegistry &r = *config_.metrics;
            r.counter("dsa.offloads").inc(result_.offloads);
            r.latency("dsa.delivery").merge(result_.deliveryLatency);
            r.latency("dsa.request").merge(result_.requestLatency);
            r.gauge("dsa.free_frac").set(result_.freeFrac);
            r.gauge("dsa.ipos").set(result_.ipos);
        }
        return result_;
    }

  private:
    void
    submitNext()
    {
        if (sim_.now() >= config_.duration)
            return;
        busyCycles_ += config_.costs.offloadSubmit;
        DsaDescriptor desc;
        desc.id = nextId_++;
        sim_.queue().scheduleAfter(
            config_.costs.offloadSubmit, [this, desc] {
                device_.submit(desc,
                               [this](const DsaCompletion &comp) {
                                   onComplete(comp);
                               });
            });
    }

    void
    onComplete(const DsaCompletion &comp)
    {
        // The record just became host-visible; determine when the
        // client notices per the wait strategy, and what the wait
        // cost the core.
        Cycles now = sim_.now();
        Cycles noticed = now;
        switch (config_.strategy) {
          case WaitStrategy::BusySpin: {
            noticed = now + config_.costs.pollNotify;
            // Spinning consumed the whole wait since submission.
            busyCycles_ += noticed - comp.submittedAt -
                config_.costs.offloadSubmit;
            break;
          }
          case WaitStrategy::PeriodicPoll: {
            // Polls at expected completion, then every interval.
            Cycles expected = comp.submittedAt +
                config_.costs.offloadSubmit +
                config_.latency.meanServiceTime +
                2 * config_.costs.pcieLatency;
            Cycles poll = expected;
            std::uint64_t ticks = 1;
            while (poll < now) {
                poll += config_.pollInterval;
                ++ticks;
            }
            noticed = poll + config_.costs.periodicPollTick;
            busyCycles_ += ticks * config_.costs.periodicPollTick;
            break;
          }
          case WaitStrategy::XuiInterrupt: {
            noticed = now + config_.costs.forwardedReceive;
            busyCycles_ += config_.costs.forwardedReceive;
            break;
          }
        }

        Cycles done = noticed + config_.costs.completionProcess;
        busyCycles_ += config_.costs.completionProcess;
        result_.deliveryLatency.record(
            static_cast<std::int64_t>(noticed - now));
        result_.requestLatency.record(
            static_cast<std::int64_t>(done - comp.submittedAt));
        ++completedCount_;
        lastEnd_ = done;
        if (config_.traceOut != nullptr) {
            config_.traceOut->complete(
                "offload", "dsa", comp.submittedAt, done,
                kTracePidDes, 0,
                "{\"id\": " + std::to_string(comp.id) + "}");
        }

        sim_.queue().scheduleAt(done, [this] { submitNext(); });
    }

    DsaClientConfig config_;
    Simulation sim_;
    DsaDevice device_;
    DsaClientResult result_;
    std::uint64_t nextId_ = 1;
    std::uint64_t completedCount_ = 0;
    Cycles busyCycles_ = 0;
    Cycles lastEnd_ = 0;
};

} // namespace

DsaClientResult
runDsaClient(const DsaClientConfig &config)
{
    ClientRun run(config);
    return run.run();
}

} // namespace xui
