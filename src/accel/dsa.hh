/**
 * @file
 * Simulated streaming accelerator modeled after Intel DSA (§5.4):
 * descriptor-ring submission over PCIe, configurable offload latency
 * with noise, completion records, and optional completion interrupts
 * for xUI interrupt forwarding.
 */

#ifndef XUI_ACCEL_DSA_HH
#define XUI_ACCEL_DSA_HH

#include <cstdint>
#include <functional>

#include "des/simulation.hh"
#include "net/ring.hh"
#include "os/cost_model.hh"
#include "stats/distributions.hh"

namespace xui
{

/** Offload operation types (a subset of DSA's). */
enum class DsaOp : std::uint8_t
{
    Memmove,
    Fill,
    Compare,
    Crc32,
};

/** One work descriptor. */
struct DsaDescriptor
{
    std::uint64_t id = 0;
    DsaOp op = DsaOp::Memmove;
    std::uint32_t bytes = 16 * 1024;
    Cycles submittedAt = 0;
};

/** Completion record written back by the device. */
struct DsaCompletion
{
    std::uint64_t id = 0;
    Cycles submittedAt = 0;
    /** When the device finished the operation. */
    Cycles completedAt = 0;
    /** When the completion record became host-visible. */
    Cycles visibleAt = 0;
};

/** Device latency configuration (paper: 2 us and 20 us classes). */
struct DsaLatencyParams
{
    /** Mean offload service time. */
    Cycles meanServiceTime = usToCycles(2.0);
    /**
     * Noise magnitude as a fraction of the mean (uniform +/-): the
     * Fig. 9 x-axis ("unpredictability").
     */
    double noiseFraction = 0.0;
};

/** The simulated accelerator. */
class DsaDevice
{
  public:
    /**
     * @param sim simulation context
     * @param costs PCIe/submission costs
     * @param latency service-time distribution
     * @param ring_depth work-queue capacity
     */
    DsaDevice(Simulation &sim, const CostModel &costs,
              const DsaLatencyParams &latency,
              std::size_t ring_depth = 64);

    /**
     * Submit a descriptor (asynchronous, SPDK-style §5.4). The
     * completion callback fires when the completion record becomes
     * visible to the host.
     * @return false when the work queue is full.
     */
    bool submit(DsaDescriptor desc,
                std::function<void(const DsaCompletion &)> on_done);

    /** Offloads accepted. */
    std::uint64_t accepted() const { return accepted_; }

    /** Offloads rejected (ring full). */
    std::uint64_t rejected() const { return rejected_; }

    /** Offloads completed. */
    std::uint64_t completed() const { return completed_; }

    const DsaLatencyParams &latency() const { return latency_; }

    /** Draw one service time (exposed for tests). */
    Cycles drawServiceTime();

  private:
    struct Pending
    {
        DsaDescriptor desc;
        std::function<void(const DsaCompletion &)> onDone;
    };

    void startNext();

    Simulation &sim_;
    CostModel costs_;
    DsaLatencyParams latency_;
    DescRing<Pending> queue_;
    bool busy_ = false;
    Rng rng_;
    std::uint64_t accepted_ = 0;
    std::uint64_t rejected_ = 0;
    std::uint64_t completed_ = 0;
};

} // namespace xui

#endif // XUI_ACCEL_DSA_HH
