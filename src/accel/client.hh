/**
 * @file
 * Closed-loop offload client for the DSA experiment (Fig. 9): submit
 * one offload at a time and receive the completion with one of three
 * strategies — busy spinning on the completion record, periodic
 * polling driven by the OS interval timer, or an xUI forwarded
 * device interrupt.
 */

#ifndef XUI_ACCEL_CLIENT_HH
#define XUI_ACCEL_CLIENT_HH

#include <cstdint>

#include "accel/dsa.hh"
#include "stats/histogram.hh"

namespace xui
{

class MetricsRegistry;
class TraceJsonWriter;

/** Completion-notification strategy (Fig. 9 series). */
enum class WaitStrategy : std::uint8_t
{
    BusySpin,
    PeriodicPoll,
    XuiInterrupt,
};

/** Configuration for one client run. */
struct DsaClientConfig
{
    CostModel costs;
    DsaLatencyParams latency;
    WaitStrategy strategy = WaitStrategy::BusySpin;
    /**
     * Periodic-poll interval. The first poll aims at the *expected*
     * completion time; subsequent polls repeat at this interval
     * (paper: 2 us, "almost at the limit of the OS interval timer").
     */
    Cycles pollInterval = usToCycles(2.0);
    Cycles duration = 100 * kCyclesPerMs;
    std::uint64_t seed = 1;
    /** Optional observability sinks (null = off, zero cost). */
    MetricsRegistry *metrics = nullptr;
    TraceJsonWriter *traceOut = nullptr;
};

/** Results of one client run. */
struct DsaClientResult
{
    std::uint64_t offloads = 0;
    /** Completion-record visibility -> client notices it. */
    Histogram deliveryLatency;
    /** Submission -> processing finished (end-to-end). */
    Histogram requestLatency;
    /** Core cycles not consumed by the wait mechanism (0..1). */
    double freeFrac = 0.0;
    /** Offloads per second (IOPS). */
    double ipos = 0.0;
};

/** Run the closed-loop experiment once. */
DsaClientResult runDsaClient(const DsaClientConfig &config);

} // namespace xui

#endif // XUI_ACCEL_CLIENT_HH
