#include "accel/dsa.hh"

#include <cassert>

namespace xui
{

DsaDevice::DsaDevice(Simulation &sim, const CostModel &costs,
                     const DsaLatencyParams &latency,
                     std::size_t ring_depth)
    : sim_(sim), costs_(costs), latency_(latency),
      queue_(ring_depth), rng_(sim.makeRng())
{}

Cycles
DsaDevice::drawServiceTime()
{
    double mean = static_cast<double>(latency_.meanServiceTime);
    double noise = latency_.noiseFraction;
    if (noise <= 0.0)
        return latency_.meanServiceTime;
    // Uniform +/- noiseFraction * mean (paper: "random noise with
    // varying magnitude").
    double lo = mean * (1.0 - noise);
    double hi = mean * (1.0 + noise);
    UniformDist dist(lo, hi);
    double v = dist.sample(rng_);
    return v < 1.0 ? 1 : static_cast<Cycles>(v);
}

bool
DsaDevice::submit(DsaDescriptor desc,
                  std::function<void(const DsaCompletion &)> on_done)
{
    desc.submittedAt = sim_.now();
    Pending p{desc, std::move(on_done)};
    if (!queue_.push(std::move(p))) {
        ++rejected_;
        return false;
    }
    ++accepted_;
    if (!busy_) {
        busy_ = true;
        // The descriptor crosses PCIe before work begins.
        sim_.queue().scheduleAfter(costs_.pcieLatency,
                                   [this] { startNext(); });
    }
    return true;
}

void
DsaDevice::startNext()
{
    Pending p;
    if (!queue_.pop(p)) {
        busy_ = false;
        return;
    }
    Cycles service = drawServiceTime();
    sim_.queue().scheduleAfter(service, [this, p = std::move(p),
                                         service]() mutable {
        DsaCompletion comp;
        comp.id = p.desc.id;
        comp.submittedAt = p.desc.submittedAt;
        comp.completedAt = sim_.now();
        // The completion record crosses PCIe back to host memory.
        Cycles visible_at = sim_.now() + costs_.pcieLatency;
        comp.visibleAt = visible_at;
        ++completed_;
        sim_.queue().scheduleAfter(
            costs_.pcieLatency,
            [cb = std::move(p.onDone), comp] {
                if (cb)
                    cb(comp);
            });
        startNext();
    });
}

} // namespace xui
