#include "os/kernel.hh"

#include <cassert>

namespace xui
{

Kernel::Kernel(Simulation &sim, const CostModel &costs,
               unsigned num_cores)
    : sim_(sim), costs_(costs), cores_(num_cores)
{
    assert(num_cores >= 1);
}

Kernel::Thread &
Kernel::thread(ThreadId id)
{
    assert(id < threads_.size() && threads_[id].exists);
    return threads_[id];
}

const Kernel::Thread &
Kernel::thread(ThreadId id) const
{
    assert(id < threads_.size() && threads_[id].exists);
    return threads_[id];
}

ThreadId
Kernel::createThread()
{
    Thread t;
    t.exists = true;
    threads_.push_back(std::move(t));
    return static_cast<ThreadId>(threads_.size() - 1);
}

ThreadId
Kernel::runningOn(CoreId core) const
{
    assert(core < cores_.size());
    return cores_[core].running;
}

bool
Kernel::isRunning(ThreadId id) const
{
    return thread(id).running;
}

unsigned
Kernel::drainParked(Thread &t)
{
    unsigned delivered = 0;
    // UIPI slow path: interrupts posted to the UPID while the thread
    // was descheduled are reposted as self-UIPIs on resume (§3.2).
    if (t.hasUpid && t.upid.hasPending()) {
        std::uint64_t pir = t.upid.fetchAndClearPir();
        t.upid.clearOutstanding();
        for (unsigned v = 0; v < kNumUserVectors; ++v) {
            if ((pir >> v) & 1) {
                if (t.handler)
                    t.handler(v);
                ++delivered;
            }
        }
    }
    // Forwarded-interrupt slow path: drain the DUPID (§4.5).
    if (t.dupid.hasPending()) {
        Bitset256 parked = t.dupid.fetchAndClear();
        for (unsigned v = parked.findFirst(); v < 256;
             v = parked.findFirst()) {
            parked.clear(v);
            if (t.handler)
                t.handler(v);
            ++delivered;
        }
    }
    return delivered;
}

Cycles
Kernel::scheduleOn(ThreadId id, CoreId core_id)
{
    assert(core_id < cores_.size());
    Core &core = cores_[core_id];
    Cycles cost = costs_.contextSwitch;

    if (core.running != kNoThread && core.running != id)
        cost += deschedule(core.running) - costs_.contextSwitch;

    Thread &t = thread(id);
    assert(!t.running && "thread already running elsewhere");
    t.running = true;
    t.core = core_id;
    core.running = id;

    // Resume accepts user interrupts again: clear SN.
    if (t.hasUpid) {
        t.upid.setSuppressed(false);
        t.upid.setDestination(core_id);
    }

    // Restore the KB timer image; a missed deadline fires now.
    if (t.timerEnabled) {
        core.timer.configure(true, t.timerVector);
        bool missed = t.timerSave.armed &&
            core.timer.restore(t.timerSave, sim_.now());
        if (missed && t.handler) {
            t.handler(t.timerVector);
            cost += costs_.kbTimerReceive;
        }
    } else {
        core.timer.configure(false, 0);
    }

    // Publish the thread's forwarded vectors.
    core.fwd.setActiveMask(t.fwdMask);

    // Deliver anything parked while the thread was out.
    unsigned reposts = drainParked(t);
    cost += reposts * costs_.uipiTrackedReceive;
    bump(mReposts_, reposts);

    // A pending interval-timer signal fires on resume.
    if (t.pendingSignal) {
        t.pendingSignal = false;
        if (t.handler)
            t.handler(t.pendingSigno);
        ++signalsDelivered_;
        bump(mSignals_);
        cost += costs_.signalReceive;
    }

    bump(mCtxSwitches_);
    return cost;
}

Cycles
Kernel::deschedule(ThreadId id)
{
    Thread &t = thread(id);
    if (!t.running)
        return 0;
    Core &core = cores_[t.core];

    // Halt further sender notifications (SN bit, §3.2).
    if (t.hasUpid)
        t.upid.setSuppressed(true);

    // Save the live timer so it can be restored on resume (§4.3).
    if (t.timerEnabled)
        t.timerSave = core.timer.saveAndDisarm();

    // The next thread's forwarded_active mask replaces this one's;
    // clear it in the meantime so arrivals take the slow path.
    core.fwd.setActiveMask(Bitset256{});

    t.running = false;
    core.running = kNoThread;
    return costs_.contextSwitch;
}

void
Kernel::registerHandler(ThreadId id,
                        std::function<void(unsigned)> handler)
{
    Thread &t = thread(id);
    t.hasUpid = true;
    t.handler = std::move(handler);
    t.upid.setNotificationVector(0xec);
    upidOwner_[&t.upid] = id;
}

int
Kernel::registerSender(ThreadId target, std::uint8_t user_vector)
{
    Thread &t = thread(target);
    if (!t.hasUpid)
        return -1;
    return uitt_.allocate(&t.upid, user_vector);
}

DeliveryPath
Kernel::senduipi(int uitt_index)
{
    const UittEntry *entry = uitt_.lookup(uitt_index);
    assert(entry != nullptr && "senduipi with invalid UITT index");

    Upid::PostResult result = entry->upid->post(entry->userVector);
    if (!result.sendIpi) {
        bump(mUipiSuppressed_);
        return DeliveryPath::Suppressed;
    }

    auto it = upidOwner_.find(entry->upid);
    assert(it != upidOwner_.end());
    Thread &t = thread(it->second);
    if (!t.running) {
        // Race: SN not yet observed; kernel captures it for later.
        bump(mUipiDeferred_);
        return DeliveryPath::Deferred;
    }
    // Fast path: notification IPI hits the running thread.
    std::uint64_t pir = t.upid.fetchAndClearPir();
    t.upid.clearOutstanding();
    for (unsigned v = 0; v < kNumUserVectors; ++v) {
        if (((pir >> v) & 1) && t.handler)
            t.handler(v);
    }
    bump(mUipiFast_);
    return DeliveryPath::Fast;
}

void
Kernel::enableKbTimer(ThreadId id, std::uint8_t vector)
{
    Thread &t = thread(id);
    t.timerEnabled = true;
    t.timerVector = vector;
    t.timerSave = KbTimerSave{};
    if (t.running)
        cores_[t.core].timer.configure(true, vector);
}

void
Kernel::disableKbTimer(ThreadId id)
{
    Thread &t = thread(id);
    t.timerEnabled = false;
    if (t.running)
        cores_[t.core].timer.configure(false, 0);
}

bool
Kernel::setTimer(ThreadId id, Cycles cycles, KbTimerMode mode)
{
    Thread &t = thread(id);
    if (!t.timerEnabled)
        return false;
    if (t.running)
        return cores_[t.core].timer.setTimer(sim_.now(), cycles, mode);
    // Programming while descheduled updates the saved image.
    t.timerSave.armed = true;
    t.timerSave.mode = mode;
    t.timerSave.vector = t.timerVector;
    if (mode == KbTimerMode::Periodic) {
        t.timerSave.period = cycles;
        t.timerSave.deadline = sim_.now() + cycles;
    } else {
        t.timerSave.period = 0;
        t.timerSave.deadline = cycles;
    }
    return true;
}

void
Kernel::clearTimer(ThreadId id)
{
    Thread &t = thread(id);
    if (t.running)
        cores_[t.core].timer.clearTimer();
    else
        t.timerSave.armed = false;
}

KbTimer &
Kernel::coreTimer(CoreId core)
{
    assert(core < cores_.size());
    return cores_[core].timer;
}

bool
Kernel::pollKbTimer(CoreId core_id, Cycles now)
{
    Core &core = cores_[core_id];
    if (!core.timer.expired(now))
        return false;
    core.timer.acknowledge();
    bump(mKbTimerFired_);
    ThreadId running = core.running;
    if (running != kNoThread) {
        Thread &t = thread(running);
        if (t.handler)
            t.handler(core.timer.vector());
    }
    return true;
}

int
Kernel::registerForwarding(ThreadId id, CoreId core_id)
{
    assert(core_id < cores_.size());
    Core &core = cores_[core_id];
    if (core.nextFwdVector == 0)
        return -1;  // 256-vector space exhausted (§4.5 limitation)
    unsigned vector = core.nextFwdVector++;
    if (vector >= 256) {
        core.nextFwdVector = 255;
        return -1;
    }

    Thread &t = thread(id);
    core.fwd.enableVector(vector);
    t.fwdMask.set(vector);
    if (t.running && t.core == core_id)
        core.fwd.setActiveMask(t.fwdMask);
    return static_cast<int>(vector);
}

DeliveryPath
Kernel::deviceInterrupt(CoreId core_id, unsigned vector)
{
    assert(core_id < cores_.size());
    Core &core = cores_[core_id];
    ForwardOutcome outcome = core.fwd.onInterrupt(vector);

    switch (outcome) {
      case ForwardOutcome::FastPath: {
        unsigned v = core.fwd.takeHighestUirr();
        ThreadId running = core.running;
        assert(running != kNoThread);
        Thread &t = thread(running);
        if (t.handler)
            t.handler(v);
        bump(mFwdFast_);
        return DeliveryPath::Fast;
      }
      case ForwardOutcome::SlowPath: {
        unsigned v = core.fwd.takeHighestUirr();
        ThreadId owner = forwardOwner(core_id, v);
        if (owner != kNoThread)
            thread(owner).dupid.post(v);
        bump(mFwdSlow_);
        return DeliveryPath::Deferred;
      }
      case ForwardOutcome::NotForwarded:
        return DeliveryPath::Deferred;
    }
    return DeliveryPath::Deferred;
}

ThreadId
Kernel::forwardOwner(CoreId core_id, unsigned vector) const
{
    for (std::size_t i = 0; i < threads_.size(); ++i) {
        const Thread &t = threads_[i];
        if (t.exists && t.fwdMask.test(vector) &&
            (t.running ? t.core == core_id : true))
            return static_cast<ThreadId>(i);
    }
    return kNoThread;
}

int
Kernel::setInterval(ThreadId id, Cycles interval, unsigned signo)
{
    if (interval == 0)
        return -1;
    thread(id);  // validate
    IntervalTimer timer;
    timer.thread = id;
    timer.signo = signo;
    int timer_id = static_cast<int>(intervalTimers_.size());
    timer.event = std::make_unique<PeriodicEvent>(
        sim_.queue(), interval, [this, id, signo] {
            Thread &t = thread(id);
            if (t.running) {
                if (t.handler)
                    t.handler(signo);
                ++signalsDelivered_;
                bump(mSignals_);
            } else {
                // SIGALRM semantics: firings while descheduled
                // collapse into one pending signal.
                t.pendingSignal = true;
                t.pendingSigno = signo;
            }
            return true;
        });
    timer.event->startAfterPeriod();
    intervalTimers_.push_back(std::move(timer));
    return timer_id;
}

void
Kernel::cancelInterval(int timer_id)
{
    if (timer_id < 0 ||
        static_cast<std::size_t>(timer_id) >= intervalTimers_.size())
        return;
    IntervalTimer &t = intervalTimers_[
        static_cast<std::size_t>(timer_id)];
    if (t.event)
        t.event->stop();
}

void
Kernel::attachMetrics(MetricsRegistry &registry)
{
    mCtxSwitches_ = &registry.counter("kernel.context_switches");
    mReposts_ = &registry.counter("kernel.reposts");
    mSignals_ = &registry.counter("kernel.signals_delivered");
    mUipiFast_ = &registry.counter("kernel.senduipi.fast");
    mUipiDeferred_ = &registry.counter("kernel.senduipi.deferred");
    mUipiSuppressed_ =
        &registry.counter("kernel.senduipi.suppressed");
    mFwdFast_ = &registry.counter("kernel.forward.fast");
    mFwdSlow_ = &registry.counter("kernel.forward.slow");
    mKbTimerFired_ = &registry.counter("kernel.kbtimer.fired");
}

unsigned
Kernel::pendingReposts(ThreadId id) const
{
    const Thread &t = thread(id);
    unsigned n = 0;
    if (t.hasUpid) {
        std::uint64_t pir = t.upid.pir();
        for (unsigned v = 0; v < kNumUserVectors; ++v)
            n += (pir >> v) & 1;
    }
    n += t.dupid.pending().count();
    return n;
}

} // namespace xui
