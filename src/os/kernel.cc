#include "os/kernel.hh"

#include <algorithm>
#include <cassert>

#include "obs/kernel_trace.hh"

namespace xui
{

void
Kernel::ktrace(const char *name, unsigned vector, std::uint64_t n)
{
    if (ktrace_ != nullptr)
        ktrace_->bump(name, vector, sim_.now(), n);
}

namespace
{

std::uint64_t
uipiKey(ThreadId t, unsigned v)
{
    return fault::keyFor(fault::Channel::Uipi, t, v);
}

std::uint64_t
kbKey(ThreadId t, unsigned v)
{
    return fault::keyFor(fault::Channel::KbTimer, t, v);
}

std::uint64_t
fwdKey(ThreadId t, unsigned v)
{
    return fault::keyFor(fault::Channel::Forward, t, v);
}

std::uint64_t
sigKey(ThreadId t, unsigned signo)
{
    return fault::keyFor(fault::Channel::Signal, t, signo);
}

} // namespace

Kernel::Kernel(Simulation &sim, const CostModel &costs,
               unsigned num_cores)
    : sim_(sim), costs_(costs), cores_(num_cores)
{
    assert(num_cores >= 1);
}

Kernel::Thread &
Kernel::thread(ThreadId id)
{
    assert(id < threads_.size() && threads_[id].exists);
    return threads_[id];
}

const Kernel::Thread &
Kernel::thread(ThreadId id) const
{
    assert(id < threads_.size() && threads_[id].exists);
    return threads_[id];
}

ThreadId
Kernel::createThread()
{
    Thread t;
    t.exists = true;
    threads_.push_back(std::move(t));
    return static_cast<ThreadId>(threads_.size() - 1);
}

ThreadId
Kernel::runningOn(CoreId core) const
{
    assert(core < cores_.size());
    return cores_[core].running;
}

bool
Kernel::isRunning(ThreadId id) const
{
    return thread(id).running;
}

unsigned
Kernel::drainParked(ThreadId id)
{
    Thread &t = thread(id);
    unsigned delivered = 0;
    inResumeDrain_ = true;
    // UIPI slow path: interrupts posted to the UPID while the thread
    // was descheduled are reposted as self-UIPIs on resume (§3.2).
    if (t.hasUpid && t.upid.hasPending())
        delivered += scanUpid(id);
    // Forwarded-interrupt slow path: drain the DUPID (§4.5).
    if (t.dupid.hasPending()) {
        Bitset256 parked = t.dupid.fetchAndClear();
        for (unsigned v = parked.findFirst(); v < 256;
             v = parked.findFirst()) {
            parked.clear(v);
            if (!deliverViaEngine(id, v, fwdKey(id, v))) {
                if (t.handler)
                    t.handler(v);
                if (ledger_ != nullptr)
                    ledger_->onDelivered(fwdKey(id, v));
            }
            const DeliveryPolicy *p = policyFor(t, v);
            if (p != nullptr &&
                p->behavior == DeliveryBehavior::NextOrMissed) {
                bump(mModMissedThenDelivered_);
                ktrace("kernel.moderation.missed_then_delivered",
                       v);
            }
            ++delivered;
        }
    }
    inResumeDrain_ = false;
    return delivered;
}

unsigned
Kernel::scanUpid(ThreadId id)
{
    Thread &t = thread(id);
    std::uint64_t pir = t.upid.fetchAndClearPir();
    t.upid.clearOutstanding();
    unsigned delivered = 0;
    for (unsigned v = 0; v < kNumUserVectors; ++v) {
        if ((pir >> v) & 1) {
            if (!deliverViaEngine(id, v, uipiKey(id, v))) {
                if (t.handler)
                    t.handler(v);
                if (ledger_ != nullptr)
                    ledger_->onDelivered(uipiKey(id, v));
            }
            if (inResumeDrain_) {
                const DeliveryPolicy *p = policyFor(t, v);
                if (p != nullptr &&
                    p->behavior ==
                        DeliveryBehavior::NextOrMissed) {
                    bump(mModMissedThenDelivered_);
                    ktrace(
                        "kernel.moderation.missed_then_delivered",
                        v);
                }
            }
            ++delivered;
        }
    }
    return delivered;
}

void
Kernel::notifyArrived(ThreadId id)
{
    Thread &t = thread(id);
    if (!t.hasUpid)
        return;
    if (!t.running)
        return;  // posts stay parked; resume-drain is the fallback
    if (t.upid.hasPending()) {
        scanUpid(id);
    } else {
        // Dedup absorbed it (duplicate/storm): scan finds nothing.
        t.upid.clearOutstanding();
        if (ledger_ != nullptr)
            ledger_->onSpuriousScan();
        bump(mSpuriousScans_);
        ktrace("kernel.recovery.spurious_scans",
               KernelCounterTrace::kNoVector);
    }
}

void
Kernel::scheduleUpidRecovery(ThreadId id, unsigned attempt)
{
    Cycles delay = recoveryBackoff_ << attempt;
    sim_.queue().scheduleAfter(delay, [this, id, attempt] {
        Thread &t = thread(id);
        if (!t.hasUpid || !t.upid.hasPending())
            return;  // fast path or resume-drain beat the rescan
        if (t.running) {
            unsigned n = scanUpid(id);
            bump(mRecoveredRescan_, n);
            if (n != 0)
                ktrace("kernel.recovery.upid_rescan",
                       KernelCounterTrace::kNoVector, n);
            return;
        }
        // Receiver descheduled: retry with backoff; if retries run
        // out, the posts stay parked and the resume-drain slow path
        // (scheduleOn) remains the designed fallback.
        if (attempt + 1 < maxRecoveryAttempts_) {
            bump(mRecoveryRetry_);
            ktrace("kernel.recovery.rescan_retry",
                   KernelCounterTrace::kNoVector);
            scheduleUpidRecovery(id, attempt + 1);
        } else {
            bump(mRecoveryParked_);
            ktrace("kernel.recovery.parked_fallback",
                   KernelCounterTrace::kNoVector);
        }
    });
}

Cycles
Kernel::scheduleOn(ThreadId id, CoreId core_id)
{
    assert(core_id < cores_.size());
    Core &core = cores_[core_id];
    Cycles cost = costs_.contextSwitch;

    if (core.running != kNoThread && core.running != id)
        cost += deschedule(core.running) - costs_.contextSwitch;

    Thread &t = thread(id);
    assert(!t.running && "thread already running elsewhere");
    t.running = true;
    t.core = core_id;
    core.running = id;

    // Resume accepts user interrupts again: clear SN.
    if (t.hasUpid) {
        t.upid.setSuppressed(false);
        t.upid.setDestination(core_id);
    }

    // Restore the KB timer image; a missed deadline fires now.
    if (t.timerEnabled) {
        core.timer.configure(true, t.timerVector);
        bool missed = t.timerSave.armed &&
            core.timer.restore(t.timerSave, sim_.now());
        if (missed && t.handler) {
            cost += costs_.kbTimerReceive;
            if (ledger_ != nullptr && !t.timerDuePosted)
                ledger_->onPosted(kbKey(id, t.timerVector));
            if (!deliverViaEngine(id, t.timerVector,
                                  kbKey(id, t.timerVector))) {
                t.handler(t.timerVector);
                if (ledger_ != nullptr)
                    ledger_->onDelivered(kbKey(id, t.timerVector));
            }
            if (t.timerDuePosted) {
                t.timerDuePosted = false;
                bump(mRecoveredTimerLate_);
                ktrace("kernel.recovery.kbtimer_late",
                       t.timerVector);
            }
        }
    } else {
        core.timer.configure(false, 0);
    }

    // Publish the thread's forwarded vectors.
    core.fwd.setActiveMask(t.fwdMask);

    // Deliver anything parked while the thread was out.
    unsigned reposts = drainParked(id);
    cost += reposts * costs_.uipiTrackedReceive;
    bump(mReposts_, reposts);

    // A pending interval-timer signal fires on resume.
    if (t.pendingSignal) {
        t.pendingSignal = false;
        if (!deliverViaEngine(id, t.pendingSigno,
                              sigKey(id, t.pendingSigno))) {
            if (t.handler)
                t.handler(t.pendingSigno);
            if (ledger_ != nullptr)
                ledger_->onDelivered(sigKey(id, t.pendingSigno));
        }
        ++signalsDelivered_;
        bump(mSignals_);
        cost += costs_.signalReceive;
    }

    bump(mCtxSwitches_);
    return cost;
}

Cycles
Kernel::deschedule(ThreadId id)
{
    Thread &t = thread(id);
    if (!t.running)
        return 0;
    Core &core = cores_[t.core];

    // Halt further sender notifications (SN bit, §3.2).
    if (t.hasUpid)
        t.upid.setSuppressed(true);

    // Save the live timer so it can be restored on resume (§4.3).
    if (t.timerEnabled) {
        t.timerSave = core.timer.saveAndDisarm();
        // An observed-but-undelivered expiry (fault drop/delay)
        // travels with the thread: the restore-missed path on the
        // next resume completes delivery and the accounting.
        if (core.timerDue) {
            core.timerDue = false;
            core.timerMisfired = false;
            t.timerDuePosted = true;
        }
    }

    // The next thread's forwarded_active mask replaces this one's;
    // clear it in the meantime so arrivals take the slow path.
    core.fwd.setActiveMask(Bitset256{});

    t.running = false;
    core.running = kNoThread;
    return costs_.contextSwitch;
}

void
Kernel::registerHandler(ThreadId id,
                        std::function<void(unsigned)> handler)
{
    Thread &t = thread(id);
    t.hasUpid = true;
    t.handler = std::move(handler);
    t.upid.setNotificationVector(0xec);
    upidOwner_[&t.upid] = id;
}

int
Kernel::registerSender(ThreadId target, std::uint8_t user_vector)
{
    Thread &t = thread(target);
    if (!t.hasUpid)
        return -1;
    return uitt_.allocate(&t.upid, user_vector);
}

DeliveryPath
Kernel::senduipi(int uitt_index)
{
    const UittEntry *entry = uitt_.lookup(uitt_index);
    assert(entry != nullptr && "senduipi with invalid UITT index");

    auto it = upidOwner_.find(entry->upid);
    assert(it != upidOwner_.end());
    ThreadId tid = it->second;
    unsigned uv = entry->userVector;

    Thread &t = thread(tid);
    const DeliveryPolicy *policy = policyFor(t, uv);

    // NEXT_ONLY: a post toward a receiver that can't take it is
    // missed by design — it never reaches the PIR, and the ledger
    // accounts it as an intended miss (posted + abandoned).
    if (policy != nullptr &&
        policy->behavior == DeliveryBehavior::NextOnly &&
        !t.running) {
        if (ledger_ != nullptr) {
            ledger_->onPosted(uipiKey(tid, uv));
            ledger_->onAbandonedOne(uipiKey(tid, uv));
        }
        bump(mModMissed_);
        ktrace("kernel.moderation.missed", uv);
        return DeliveryPath::Suppressed;
    }

    Upid::PostResult result = entry->upid->post(uv);
    if (ledger_ != nullptr)
        ledger_->onPosted(uipiKey(tid, uv));

    // Moderation gates only the notification: the post is already
    // in the PIR, so the eventual flush scan delivers the batch.
    if (t.running && !t.moderators.empty()) {
        auto mit = t.moderators.find(uv);
        if (mit != t.moderators.end()) {
            switch (mit->second.onPost(sim_.now())) {
              case VectorModerator::Verdict::Coalesced:
                bump(mModCoalesced_);
                ktrace("kernel.moderation.coalesced", uv);
                return DeliveryPath::Deferred;
              case VectorModerator::Verdict::OpenWindow: {
                bump(mModSuppressed_);
                ktrace("kernel.moderation.suppressed", uv);
                Cycles delay = mit->second.flushAt() - sim_.now();
                sim_.queue().scheduleAfter(
                    delay == 0 ? 1 : delay, [this, tid, uv] {
                        moderationFlush(tid, uv);
                    });
                return DeliveryPath::Deferred;
              }
              case VectorModerator::Verdict::Deliver:
                break;
            }
        }
    }

    if (!result.sendIpi) {
        // Level trigger: pending state re-raises the notification
        // even without an ON 0->1 edge, so a post that finds a
        // stranded PIR (e.g. after a dropped IPI) rescans now
        // instead of waiting for the recovery backoff.
        if (policy != nullptr &&
            policy->trigger == TriggerMode::Level && t.running) {
            bump(mModLevelRedeliver_);
            ktrace("kernel.moderation.level_redeliver", uv);
            scanUpid(tid);
            return DeliveryPath::Fast;
        }
        bump(mUipiSuppressed_);
        return DeliveryPath::Suppressed;
    }

    if (!t.running) {
        // Race: SN not yet observed; kernel captures it for later.
        bump(mUipiDeferred_);
        return DeliveryPath::Deferred;
    }

    // The notification IPI is in flight: the fault fabric may drop,
    // delay, duplicate, reorder, or storm it (Site::NotifyIpi).
    if (fault_ != nullptr) {
        auto d = fault_->decide(fault::Site::NotifyIpi);
        switch (d.action) {
          case fault::Action::Drop:
            // IPI lost on the wire: the post stays in the PIR. The
            // recovery rescan (or the resume-drain slow path)
            // eventually delivers it.
            bump(mFaultIpiDropped_);
            if (recoveryEnabled_)
                scheduleUpidRecovery(tid, 0);
            return DeliveryPath::Deferred;
          case fault::Action::Delay: {
            Cycles delta = d.magnitude == 0 ? 1 : d.magnitude;
            bump(mFaultIpiDelayed_);
            sim_.queue().scheduleAfter(delta, [this, tid] {
                notifyArrived(tid);
            });
            return DeliveryPath::Deferred;
          }
          case fault::Action::Duplicate:
            // Deliver now *and* echo the IPI one cycle later; the
            // second scan finds an empty PIR (spurious).
            bump(mFaultIpiDuplicated_);
            sim_.queue().scheduleAfter(1, [this, tid] {
                notifyArrived(tid);
            });
            break;
          case fault::Action::Reorder:
            // The IPI overtakes the PIR write: the scan runs before
            // the post is visible, finds nothing, and returns. The
            // rescan path recovers the stranded post.
            bump(mFaultIpiReordered_);
            t.upid.clearOutstanding();
            if (ledger_ != nullptr)
                ledger_->onSpuriousScan();
            bump(mSpuriousScans_);
            ktrace("kernel.recovery.spurious_scans",
                   KernelCounterTrace::kNoVector);
            if (recoveryEnabled_)
                scheduleUpidRecovery(tid, 0);
            return DeliveryPath::Deferred;
          case fault::Action::Storm: {
            unsigned copies = d.magnitude == 0 ? 1 : d.magnitude;
            bump(mFaultIpiStorm_, copies);
            for (unsigned i = 0; i < copies; ++i) {
                sim_.queue().scheduleAfter(1 + i, [this, tid] {
                    notifyArrived(tid);
                });
            }
            break;
          }
          case fault::Action::None:
          case fault::Action::Spurious:
          default:
            break;
        }
    }

    // Fast path: notification IPI hits the running thread.
    scanUpid(tid);
    bump(mUipiFast_);
    return DeliveryPath::Fast;
}

void
Kernel::setDeliveryPolicy(ThreadId id, unsigned vector,
                          DeliveryPolicy policy)
{
    thread(id).policies[vector] = policy;
}

DeliveryPolicy
Kernel::deliveryPolicy(ThreadId id, unsigned vector) const
{
    const DeliveryPolicy *p = policyFor(thread(id), vector);
    return p != nullptr ? *p : DeliveryPolicy{};
}

void
Kernel::setModeration(ThreadId id, unsigned vector,
                      ModerationParams params)
{
    Thread &t = thread(id);
    t.moderators.erase(vector);
    if (params.enabled())
        t.moderators.emplace(vector, VectorModerator(params));
}

const DeliveryPolicy *
Kernel::policyFor(const Thread &t, unsigned vector) const
{
    if (t.policies.empty())
        return nullptr;
    auto it = t.policies.find(vector);
    return it == t.policies.end() ? nullptr : &it->second;
}

void
Kernel::moderationFlush(ThreadId id, unsigned vector)
{
    Thread &t = thread(id);
    auto mit = t.moderators.find(vector);
    if (mit == t.moderators.end())
        return;
    VectorModerator &mod = mit->second;
    if (!mod.flushPending())
        return;  // cancelled by an earlier fault or reconfiguration

    if (fault_ != nullptr) {
        auto d = fault_->decide(fault::Site::ModerationFlush);
        if (d.action == fault::Action::Drop) {
            // The flush event is lost. The batch stays in the PIR:
            // later posts open a fresh window, and the rescan or
            // resume-drain paths recover the stranded posts. The
            // moderator must forget the window or every future post
            // would coalesce into a flush that never comes.
            mod.cancelFlush();
            bump(mModFlushDropped_);
            ktrace("kernel.moderation.flush_dropped", vector);
            if (recoveryEnabled_)
                scheduleUpidRecovery(id, 0);
            return;
        }
        if (d.action == fault::Action::Delay) {
            Cycles delta = d.magnitude == 0 ? 1 : d.magnitude;
            bump(mModFlushDelayed_);
            ktrace("kernel.moderation.flush_delayed", vector);
            sim_.queue().scheduleAfter(delta, [this, id, vector] {
                moderationFlush(id, vector);
            });
            return;
        }
    }

    mod.onFlush(sim_.now());
    bump(mModFlushes_);
    ktrace("kernel.moderation.flushes", vector);
    if (!t.running) {
        // Receiver descheduled between post and flush: the batch
        // stays parked; resume drain (or the rescan) delivers it.
        if (recoveryEnabled_)
            scheduleUpidRecovery(id, 0);
        return;
    }
    if (t.hasUpid && t.upid.hasPending()) {
        scanUpid(id);
    } else {
        // Resume drain beat the flush to the batch.
        if (ledger_ != nullptr)
            ledger_->onSpuriousScan();
        bump(mSpuriousScans_);
        ktrace("kernel.recovery.spurious_scans", vector);
    }
}

void
Kernel::setHandlerCost(ThreadId id, unsigned vector, Cycles cost)
{
    thread(id).handlerCosts[vector] = cost;
}

std::size_t
Kernel::enginePreemptDepth(ThreadId id) const
{
    return thread(id).engFrames.size();
}

std::size_t
Kernel::engineDeferredCount(ThreadId id) const
{
    return thread(id).engDeferred.size();
}

bool
Kernel::engineIdle(ThreadId id) const
{
    const Thread &t = thread(id);
    return t.engState == EngState::Idle && t.engFrames.empty() &&
        t.engDeferred.empty();
}

unsigned
Kernel::enginePriority(const Thread &t, unsigned vector) const
{
    const DeliveryPolicy *p = policyFor(t, vector);
    return p != nullptr ? p->priority : 0;
}

void
Kernel::engineEnqueue(Thread &t, const EngDeferred &d)
{
    auto it = std::upper_bound(
        t.engDeferred.begin(), t.engDeferred.end(), d,
        [](const EngDeferred &a, const EngDeferred &b) {
            if (a.prio != b.prio)
                return a.prio > b.prio;
            return a.seq < b.seq;
        });
    t.engDeferred.insert(it, d);
}

bool
Kernel::deliverViaEngine(ThreadId id, unsigned vector,
                         std::uint64_t key)
{
    Thread &t = thread(id);
    if (t.handlerCosts.empty())
        return false;
    auto it = t.handlerCosts.find(vector);
    if (it == t.handlerCosts.end())
        return false;

    unsigned prio = enginePriority(t, vector);
    if (engineRaiseHook_)
        engineRaiseHook_(vector, prio, sim_.now());

    EngDeferred d;
    d.vector = vector;
    d.prio = prio;
    d.cost = it->second;
    d.key = key;
    d.seq = engSeq_++;
    engineEnqueue(t, d);
    engineArrival(id, vector);
    return true;
}

void
Kernel::engineArrival(ThreadId id, unsigned vector)
{
    Thread &t = thread(id);
    if (t.engState == EngState::Idle) {
        engineStartFrame(id);
        return;
    }
    // Preempt only a *running* frame: save/restore windows are
    // non-preemptible sections (they bound the blocking term in the
    // analytical worst case).
    if (t.engState == EngState::Running &&
        !t.engDeferred.empty() && !t.engFrames.empty() &&
        t.engDeferred.front().prio > t.engFrames.back().prio) {
        enginePreempt(id);
        return;
    }
    bump(mPreemptDeferredArrivals_);
    ktrace("kernel.preempt.deferred", vector);
}

void
Kernel::enginePreempt(ThreadId id)
{
    Thread &t = thread(id);
    assert(t.engState == EngState::Running && !t.engFrames.empty());
    Cycles now = sim_.now();

    // Bank the running frame's unfinished cycles.
    EngFrame &f = t.engFrames.back();
    f.remaining = t.engStateEnd > now ? t.engStateEnd - now : 0;
    bump(mPreemptions_);
    ktrace("kernel.preempt.preemptions", f.vector);

    Cycles save_len = costs_.preemptSave;
    if (fault_ != nullptr) {
        auto d = fault_->decide(fault::Site::PreemptSave);
        if (d.action == fault::Action::Drop) {
            // The frame spill is lost: the preempted continuation
            // vanishes with it. With recovery on, the kernel replays
            // the continuation after the backoff (as an
            // alreadyStarted arrival — the handler already ran its
            // prefix); with recovery off, the frame is stranded and
            // the ledger's conservation check flags the loss.
            EngFrame lost = t.engFrames.back();
            t.engFrames.pop_back();
            bump(mPreemptSaveDropped_);
            ktrace("kernel.preempt.save_dropped", lost.vector);
            if (recoveryEnabled_) {
                std::uint64_t seq = engSeq_++;
                sim_.queue().scheduleAfter(
                    recoveryBackoff_, [this, id, lost, seq] {
                        Thread &t2 = thread(id);
                        EngDeferred r;
                        r.vector = lost.vector;
                        r.prio = lost.prio;
                        r.cost = lost.remaining;
                        r.key = lost.key;
                        r.seq = seq;
                        r.alreadyStarted = true;
                        engineEnqueue(t2, r);
                        bump(mPreemptResumeReplayed_);
                        ktrace("kernel.preempt.resume_replayed",
                               lost.vector);
                        if (t2.engState == EngState::Idle)
                            engineStartFrame(id);
                    });
            }
        } else if (d.action == fault::Action::Duplicate) {
            // The spill microcode runs twice (torn save retried):
            // the nested delivery pays a doubled save window.
            save_len = 2 * costs_.preemptSave;
            bump(mPreemptDoubleSave_);
            ktrace("kernel.preempt.double_save", f.vector);
        }
    }

    t.engState = EngState::Saving;
    t.engStateEnd = now + save_len;
    scheduleEngineAdvance(id);
}

void
Kernel::engineStartFrame(ThreadId id)
{
    Thread &t = thread(id);
    assert(!t.engDeferred.empty());
    EngDeferred d = t.engDeferred.front();
    t.engDeferred.erase(t.engDeferred.begin());

    EngFrame f;
    f.vector = d.vector;
    f.prio = d.prio;
    f.key = d.key;
    f.remaining = 0;
    t.engFrames.push_back(f);
    t.engState = EngState::Running;
    t.engStateEnd = sim_.now() + d.cost;
    scheduleEngineAdvance(id);

    if (!d.alreadyStarted) {
        if (engineDeliverHook_)
            engineDeliverHook_(d.vector, sim_.now());
        if (t.handler)
            t.handler(d.vector);
    }
}

void
Kernel::scheduleEngineAdvance(ThreadId id)
{
    Thread &t = thread(id);
    std::uint64_t gen = ++t.engGen;
    Cycles now = sim_.now();
    Cycles delay = t.engStateEnd > now ? t.engStateEnd - now : 0;
    sim_.queue().scheduleAfter(delay == 0 ? 1 : delay,
                               [this, id, gen] {
                                   engineAdvance(id, gen);
                               });
}

void
Kernel::engineAdvance(ThreadId id, std::uint64_t gen)
{
    Thread &t = thread(id);
    if (gen != t.engGen)
        return;  // superseded by a preemption or replay

    switch (t.engState) {
      case EngState::Idle:
        return;
      case EngState::Saving:
        // Spill done: the highest-priority arrival takes the core.
        engineStartFrame(id);
        return;
      case EngState::Running: {
        assert(!t.engFrames.empty());
        EngFrame done = t.engFrames.back();
        t.engFrames.pop_back();
        if (ledger_ != nullptr && done.key != kNoLedgerKey)
            ledger_->onDelivered(done.key);
        bump(mPreemptCompletions_);
        ktrace("kernel.preempt.completions", done.vector);

        // A strictly-higher-priority arrival beats the resumable
        // frame (no pointless restore + re-save); otherwise resume
        // the preempted frame, or go idle.
        bool start_next = !t.engDeferred.empty() &&
            (t.engFrames.empty() ||
             t.engDeferred.front().prio > t.engFrames.back().prio);
        if (start_next) {
            engineStartFrame(id);
        } else if (!t.engFrames.empty()) {
            t.engState = EngState::Restoring;
            t.engStateEnd = sim_.now() + costs_.preemptRestore;
            scheduleEngineAdvance(id);
            bump(mPreemptResumes_);
            ktrace("kernel.preempt.resumes",
                   t.engFrames.back().vector);
        } else {
            t.engState = EngState::Idle;
        }
        return;
      }
      case EngState::Restoring: {
        assert(!t.engFrames.empty());
        t.engState = EngState::Running;
        t.engStateEnd = sim_.now() + t.engFrames.back().remaining;
        scheduleEngineAdvance(id);
        // An arrival that outranks the resumed frame but landed in
        // the restore window preempts the moment the frame is live.
        if (!t.engDeferred.empty() &&
            t.engDeferred.front().prio > t.engFrames.back().prio)
            enginePreempt(id);
        return;
      }
    }
}

void
Kernel::enableKbTimer(ThreadId id, std::uint8_t vector)
{
    Thread &t = thread(id);
    t.timerEnabled = true;
    t.timerVector = vector;
    t.timerSave = KbTimerSave{};
    if (t.running)
        cores_[t.core].timer.configure(true, vector);
}

void
Kernel::disableKbTimer(ThreadId id)
{
    Thread &t = thread(id);
    t.timerEnabled = false;
    if (t.running)
        cores_[t.core].timer.configure(false, 0);
}

bool
Kernel::setTimer(ThreadId id, Cycles cycles, KbTimerMode mode)
{
    Thread &t = thread(id);
    if (!t.timerEnabled)
        return false;
    if (t.running) {
        // Reprogramming cancels an observed-but-undelivered expiry.
        if (cores_[t.core].timerDue)
            abandonTimerDue(t.core);
        return cores_[t.core].timer.setTimer(sim_.now(), cycles, mode);
    }
    if (t.timerDuePosted) {
        t.timerDuePosted = false;
        if (ledger_ != nullptr)
            ledger_->onAbandoned(kbKey(id, t.timerVector));
    }
    // Programming while descheduled updates the saved image.
    t.timerSave.armed = true;
    t.timerSave.mode = mode;
    t.timerSave.vector = t.timerVector;
    if (mode == KbTimerMode::Periodic) {
        t.timerSave.period = cycles;
        t.timerSave.deadline = sim_.now() + cycles;
    } else {
        t.timerSave.period = 0;
        t.timerSave.deadline = cycles;
    }
    return true;
}

void
Kernel::clearTimer(ThreadId id)
{
    Thread &t = thread(id);
    if (t.running) {
        if (cores_[t.core].timerDue)
            abandonTimerDue(t.core);
        cores_[t.core].timer.clearTimer();
    } else {
        t.timerSave.armed = false;
        if (t.timerDuePosted) {
            t.timerDuePosted = false;
            if (ledger_ != nullptr)
                ledger_->onAbandoned(kbKey(id, t.timerVector));
        }
    }
}

KbTimer &
Kernel::coreTimer(CoreId core)
{
    assert(core < cores_.size());
    return cores_[core].timer;
}

bool
Kernel::pollKbTimer(CoreId core_id, Cycles now)
{
    Core &core = cores_[core_id];
    if (fault_ != nullptr) {
        auto d = fault_->decide(fault::Site::KbTimerPoll);
        if (d.action == fault::Action::Spurious) {
            // Phantom expiry: the handler runs although nothing was
            // armed. Out-of-band by design, so no ledger post — the
            // invariants only track real expiries.
            bump(mFaultTimerSpurious_);
            ThreadId running = core.running;
            if (running != kNoThread) {
                Thread &t = thread(running);
                if (t.handler)
                    t.handler(core.timer.vector());
            }
        }
    }
    if (!core.timer.expired(now))
        return false;

    // First observation of this expiry: account the post once.
    if (!core.timerDue) {
        core.timerDue = true;
        if (ledger_ != nullptr && core.running != kNoThread)
            ledger_->onPosted(
                kbKey(core.running, core.timer.vector()));
    }

    if (fault_ != nullptr) {
        auto d = fault_->decide(fault::Site::KbTimerFire);
        if (d.action == fault::Action::Drop) {
            // Misfire: the interrupt is swallowed, but the expiry
            // stays unacknowledged so the next poll — or the
            // restore-missed path on resume — redelivers it late.
            bump(mFaultTimerDropped_);
            core.timerMisfired = true;
            return false;
        }
        if (d.action == fault::Action::Delay) {
            Cycles delta = d.magnitude == 0 ? 1 : d.magnitude;
            bump(mFaultTimerDelayed_);
            core.timerMisfired = true;
            sim_.queue().scheduleAfter(delta, [this, core_id] {
                delayedKbTimerFire(core_id);
            });
            return false;
        }
    }

    core.timer.acknowledge();
    deliverKbTimerFired(core_id);
    return true;
}

void
Kernel::delayedKbTimerFire(CoreId core_id)
{
    Core &core = cores_[core_id];
    // The in-flight fire may race a clear/re-arm or a context
    // switch; consumeExpiry only acknowledges a still-live expiry.
    if (!core.timer.consumeExpiry(sim_.now())) {
        bump(mTimerFireCancelled_);
        ktrace("kernel.recovery.kbtimer_cancelled",
               core.timer.vector());
        if (core.timerDue)
            abandonTimerDue(core_id);
        return;
    }
    deliverKbTimerFired(core_id);
}

void
Kernel::deliverKbTimerFired(CoreId core_id)
{
    Core &core = cores_[core_id];
    bump(mKbTimerFired_);
    ThreadId running = core.running;
    if (running != kNoThread) {
        Thread &t = thread(running);
        unsigned v = core.timer.vector();
        std::uint64_t key = core.timerDue ? kbKey(running, v)
                                          : kNoLedgerKey;
        if (!deliverViaEngine(running, v, key)) {
            if (t.handler)
                t.handler(v);
            if (ledger_ != nullptr && core.timerDue)
                ledger_->onDelivered(kbKey(running, v));
        }
    }
    if (core.timerMisfired) {
        bump(mRecoveredTimerLate_);
        ktrace("kernel.recovery.kbtimer_late",
               core.timer.vector());
    }
    core.timerDue = false;
    core.timerMisfired = false;
}

void
Kernel::abandonTimerDue(CoreId core_id)
{
    Core &core = cores_[core_id];
    if (ledger_ != nullptr && core.running != kNoThread)
        ledger_->onAbandoned(
            kbKey(core.running, core.timer.vector()));
    core.timerDue = false;
    core.timerMisfired = false;
}

int
Kernel::registerForwarding(ThreadId id, CoreId core_id)
{
    assert(core_id < cores_.size());
    Core &core = cores_[core_id];
    if (core.nextFwdVector == 0)
        return -1;  // 256-vector space exhausted (§4.5 limitation)
    unsigned vector = core.nextFwdVector++;
    if (vector >= 256) {
        core.nextFwdVector = 255;
        return -1;
    }

    Thread &t = thread(id);
    core.fwd.enableVector(vector);
    t.fwdMask.set(vector);
    if (t.running && t.core == core_id)
        core.fwd.setActiveMask(t.fwdMask);
    return static_cast<int>(vector);
}

DeliveryPath
Kernel::deviceInterrupt(CoreId core_id, unsigned vector)
{
    assert(core_id < cores_.size());
    Core &core = cores_[core_id];
    ForwardOutcome outcome = core.fwd.onInterrupt(vector);

    switch (outcome) {
      case ForwardOutcome::FastPath: {
        unsigned v = core.fwd.takeHighestUirr();
        ThreadId running = core.running;
        assert(running != kNoThread);
        Thread &t = thread(running);
        if (ledger_ != nullptr)
            ledger_->onPosted(fwdKey(running, v));
        if (fault_ != nullptr) {
            auto d = fault_->decide(fault::Site::ForwardDispatch);
            if (d.action == fault::Action::Drop) {
                // Fast-path delivery lost: degrade to slow-path
                // semantics by parking in the DUPID; the resume
                // drain delivers it.
                bump(mFaultFwdDropped_);
                t.dupid.post(v);
                bump(mRecoveredFwdParked_);
                ktrace("kernel.recovery.forward_parked", v);
                return DeliveryPath::Deferred;
            }
            if (d.action == fault::Action::Delay) {
                Cycles delta = d.magnitude == 0 ? 1 : d.magnitude;
                bump(mFaultFwdDelayed_);
                sim_.queue().scheduleAfter(
                    delta, [this, core_id, v, running] {
                        delayedForwardDeliver(core_id, v, running);
                    });
                return DeliveryPath::Deferred;
            }
        }
        if (!deliverViaEngine(running, v, fwdKey(running, v))) {
            if (t.handler)
                t.handler(v);
            if (ledger_ != nullptr)
                ledger_->onDelivered(fwdKey(running, v));
        }
        bump(mFwdFast_);
        return DeliveryPath::Fast;
      }
      case ForwardOutcome::SlowPath: {
        unsigned v = core.fwd.takeHighestUirr();
        ThreadId owner = forwardOwner(core_id, v);
        if (owner != kNoThread) {
            Thread &ot = thread(owner);
            // NEXT_ONLY skips DUPID parking: a forwarded interrupt
            // toward a descheduled receiver is missed by design.
            const DeliveryPolicy *p = policyFor(ot, v);
            if (p != nullptr &&
                p->behavior == DeliveryBehavior::NextOnly) {
                if (ledger_ != nullptr) {
                    ledger_->onPosted(fwdKey(owner, v));
                    ledger_->onAbandonedOne(fwdKey(owner, v));
                }
                bump(mModMissed_);
                ktrace("kernel.moderation.missed", v);
                return DeliveryPath::Suppressed;
            }
            if (ledger_ != nullptr)
                ledger_->onPosted(fwdKey(owner, v));
            ot.dupid.post(v);
        }
        bump(mFwdSlow_);
        return DeliveryPath::Deferred;
      }
      case ForwardOutcome::NotForwarded:
        return DeliveryPath::Deferred;
    }
    return DeliveryPath::Deferred;
}

void
Kernel::delayedForwardDeliver(CoreId core_id, unsigned vector,
                              ThreadId posted_to)
{
    Core &core = cores_[core_id];
    if (core.running == posted_to) {
        Thread &t = thread(posted_to);
        if (!deliverViaEngine(posted_to, vector,
                              fwdKey(posted_to, vector))) {
            if (t.handler)
                t.handler(vector);
            if (ledger_ != nullptr)
                ledger_->onDelivered(fwdKey(posted_to, vector));
        }
        bump(mRecoveredFwdDelayed_);
        ktrace("kernel.recovery.forward_delayed", vector);
        return;
    }
    // Receiver context-switched while the interrupt was in flight:
    // fall back to DUPID parking; the resume drain delivers it.
    thread(posted_to).dupid.post(vector);
    bump(mRecoveredFwdParked_);
    ktrace("kernel.recovery.forward_parked", vector);
}

ThreadId
Kernel::forwardOwner(CoreId core_id, unsigned vector) const
{
    for (std::size_t i = 0; i < threads_.size(); ++i) {
        const Thread &t = threads_[i];
        if (t.exists && t.fwdMask.test(vector) &&
            (t.running ? t.core == core_id : true))
            return static_cast<ThreadId>(i);
    }
    return kNoThread;
}

int
Kernel::setInterval(ThreadId id, Cycles interval, unsigned signo)
{
    if (interval == 0)
        return -1;
    thread(id);  // validate
    IntervalTimer timer;
    timer.thread = id;
    timer.signo = signo;
    int timer_id = static_cast<int>(intervalTimers_.size());
    timer.event = std::make_unique<PeriodicEvent>(
        sim_.queue(), interval, [this, id, signo] {
            Thread &t = thread(id);
            if (ledger_ != nullptr)
                ledger_->onPosted(sigKey(id, signo));
            if (t.running) {
                if (!deliverViaEngine(id, signo,
                                      sigKey(id, signo))) {
                    if (t.handler)
                        t.handler(signo);
                    if (ledger_ != nullptr)
                        ledger_->onDelivered(sigKey(id, signo));
                }
                ++signalsDelivered_;
                bump(mSignals_);
            } else {
                // SIGALRM semantics: firings while descheduled
                // collapse into one pending signal.
                t.pendingSignal = true;
                t.pendingSigno = signo;
            }
            return true;
        });
    timer.event->startAfterPeriod();
    intervalTimers_.push_back(std::move(timer));
    return timer_id;
}

void
Kernel::cancelInterval(int timer_id)
{
    if (timer_id < 0 ||
        static_cast<std::size_t>(timer_id) >= intervalTimers_.size())
        return;
    IntervalTimer &t = intervalTimers_[
        static_cast<std::size_t>(timer_id)];
    if (t.event)
        t.event->stop();
}

void
Kernel::attachMetrics(MetricsRegistry &registry)
{
    mCtxSwitches_ = &registry.counter("kernel.context_switches");
    mReposts_ = &registry.counter("kernel.reposts");
    mSignals_ = &registry.counter("kernel.signals_delivered");
    mUipiFast_ = &registry.counter("kernel.senduipi.fast");
    mUipiDeferred_ = &registry.counter("kernel.senduipi.deferred");
    mUipiSuppressed_ =
        &registry.counter("kernel.senduipi.suppressed");
    mFwdFast_ = &registry.counter("kernel.forward.fast");
    mFwdSlow_ = &registry.counter("kernel.forward.slow");
    mKbTimerFired_ = &registry.counter("kernel.kbtimer.fired");

    mFaultIpiDropped_ = &registry.counter("kernel.fault.ipi_dropped");
    mFaultIpiDelayed_ = &registry.counter("kernel.fault.ipi_delayed");
    mFaultIpiDuplicated_ =
        &registry.counter("kernel.fault.ipi_duplicated");
    mFaultIpiReordered_ =
        &registry.counter("kernel.fault.ipi_reordered");
    mFaultIpiStorm_ = &registry.counter("kernel.fault.ipi_storm");
    mFaultTimerDropped_ =
        &registry.counter("kernel.fault.kbtimer_misfire");
    mFaultTimerDelayed_ =
        &registry.counter("kernel.fault.kbtimer_delayed");
    mFaultTimerSpurious_ =
        &registry.counter("kernel.fault.kbtimer_spurious");
    mFaultFwdDropped_ =
        &registry.counter("kernel.fault.forward_dropped");
    mFaultFwdDelayed_ =
        &registry.counter("kernel.fault.forward_delayed");

    mRecoveredRescan_ =
        &registry.counter("kernel.recovery.upid_rescan");
    mRecoveryRetry_ =
        &registry.counter("kernel.recovery.rescan_retry");
    mRecoveryParked_ =
        &registry.counter("kernel.recovery.parked_fallback");
    mRecoveredTimerLate_ =
        &registry.counter("kernel.recovery.kbtimer_late");
    mTimerFireCancelled_ =
        &registry.counter("kernel.recovery.kbtimer_cancelled");
    mRecoveredFwdParked_ =
        &registry.counter("kernel.recovery.forward_parked");
    mRecoveredFwdDelayed_ =
        &registry.counter("kernel.recovery.forward_delayed");
    mSpuriousScans_ =
        &registry.counter("kernel.recovery.spurious_scans");
    mRollbackRetries_ =
        &registry.counter("kernel.recovery.rollback_retries");
    mRollbackEventsReplayed_ = &registry.counter(
        "kernel.recovery.rollback_events_replayed");

    mModCoalesced_ = &registry.counter("kernel.moderation.coalesced");
    mModSuppressed_ =
        &registry.counter("kernel.moderation.suppressed");
    mModFlushes_ = &registry.counter("kernel.moderation.flushes");
    mModFlushDropped_ =
        &registry.counter("kernel.moderation.flush_dropped");
    mModFlushDelayed_ =
        &registry.counter("kernel.moderation.flush_delayed");
    mModMissed_ = &registry.counter("kernel.moderation.missed");
    mModMissedThenDelivered_ =
        &registry.counter("kernel.moderation.missed_then_delivered");
    mModLevelRedeliver_ =
        &registry.counter("kernel.moderation.level_redeliver");

    mPreemptions_ = &registry.counter("kernel.preempt.preemptions");
    mPreemptDeferredArrivals_ =
        &registry.counter("kernel.preempt.deferred");
    mPreemptCompletions_ =
        &registry.counter("kernel.preempt.completions");
    mPreemptResumes_ = &registry.counter("kernel.preempt.resumes");
    mPreemptSaveDropped_ =
        &registry.counter("kernel.preempt.save_dropped");
    mPreemptDoubleSave_ =
        &registry.counter("kernel.preempt.double_save");
    mPreemptResumeReplayed_ =
        &registry.counter("kernel.preempt.resume_replayed");
}

void
Kernel::noteRollback(std::uint64_t eventsReplayed)
{
    bump(mRollbackRetries_);
    bump(mRollbackEventsReplayed_, eventsReplayed);
    ktrace("kernel.recovery.rollback_retries",
           KernelCounterTrace::kNoVector);
}

unsigned
Kernel::pendingReposts(ThreadId id) const
{
    const Thread &t = thread(id);
    unsigned n = 0;
    if (t.hasUpid) {
        std::uint64_t pir = t.upid.pir();
        for (unsigned v = 0; v < kNumUserVectors; ++v)
            n += (pir >> v) & 1;
    }
    n += t.dupid.pending().count();
    return n;
}

} // namespace xui
