/**
 * @file
 * Kernel model for the DES tier.
 *
 * Implements the protocol surface the paper's mechanisms need from
 * the OS, with faithful state machines over the architectural
 * structures in src/intr:
 *  - UIPI registration (register_handler / register_sender), the SN
 *    bit on context switch, and slow-path reposting when a thread
 *    resumes (§3.2);
 *  - KB-timer access control and save/restore multiplexing across
 *    context switches, including missed-deadline delivery on resume
 *    (§4.3);
 *  - interrupt-forwarding registration, the per-thread
 *    forwarded_active mask written on context switch, and DUPID
 *    slow-path parking (§4.5);
 *  - signal delivery and timer syscalls as calibrated costs.
 *
 * The kernel does not execute code; it mutates state and reports the
 * cycle cost of each operation so callers (runtime, benches) can
 * account for time on the right core.
 */

#ifndef XUI_OS_KERNEL_HH
#define XUI_OS_KERNEL_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "des/simulation.hh"
#include "fault/fault.hh"
#include "fault/invariants.hh"
#include "intr/forwarding.hh"
#include "intr/kb_timer.hh"
#include "intr/policy.hh"
#include "intr/uitt.hh"
#include "intr/upid.hh"
#include "obs/metrics.hh"
#include "os/cost_model.hh"

namespace xui
{
class KernelCounterTrace;
}

namespace xui
{

/** Kernel thread identifier. */
using ThreadId = std::uint32_t;

/** Core identifier in the DES tier. */
using CoreId = std::uint32_t;

constexpr ThreadId kNoThread = 0xffffffff;

/** How a user interrupt reached (or failed to reach) its target. */
enum class DeliveryPath : std::uint8_t
{
    /** Receiver was running: delivered directly to user code. */
    Fast,
    /** Receiver descheduled: parked for delivery at next resume. */
    Deferred,
    /** Sender-side suppressed (SN): posted, no IPI sent. */
    Suppressed,
};

/** The kernel. */
class Kernel
{
  public:
    /**
     * @param sim owning simulation (for timestamps)
     * @param costs calibrated cost table
     * @param num_cores number of physical cores
     */
    Kernel(Simulation &sim, const CostModel &costs,
           unsigned num_cores);

    const CostModel &costs() const { return costs_; }
    unsigned numCores() const { return cores_.size(); }

    // ----- threads and scheduling ------------------------------------

    /** Create a kernel thread (descheduled). */
    ThreadId createThread();

    /** The thread currently running on a core (kNoThread if idle). */
    ThreadId runningOn(CoreId core) const;

    /**
     * Context switch `thread` onto `core` (descheduling whatever ran
     * there). Applies the full protocol: SN-bit management, KB-timer
     * save/restore, forwarded_active update, and reposting of any
     * user interrupts that arrived while the thread was out.
     * @return the cycle cost of the switch (including any reposts).
     */
    Cycles scheduleOn(ThreadId thread, CoreId core);

    /** Deschedule a thread (sets SN, saves timer state). */
    Cycles deschedule(ThreadId thread);

    /** True when the thread is running on some core. */
    bool isRunning(ThreadId thread) const;

    // ----- UIPI -------------------------------------------------------

    /**
     * register_handler(): allocate a UPID for the thread and
     * associate its user handler.
     */
    void registerHandler(ThreadId thread,
                         std::function<void(unsigned uv)> handler);

    /**
     * register_sender(): allocate a UITT entry routing to `target`.
     * @return the UITT index for senduipi.
     */
    int registerSender(ThreadId target, std::uint8_t user_vector);

    /**
     * senduipi: post through the UITT/UPID protocol. When the target
     * thread is running, its handler is invoked (fast path); when
     * descheduled, the vector is left posted and will be redelivered
     * by scheduleOn (slow path); when SN is set, no IPI is emitted.
     */
    DeliveryPath senduipi(int uitt_index);

    // ----- delivery policies & moderation (src/intr/policy.hh) ------

    /**
     * Set the delivery policy for one (thread, vector). Unset
     * vectors keep the legacy protocol (NEXT_OR_MISSED, edge) and
     * pay nothing: the policy lookup is guarded by an empty-map
     * check, so an unconfigured kernel is bit-identical.
     *
     * NEXT_ONLY drops posts toward a descheduled receiver (ledger:
     * posted+abandoned, counted in kernel.moderation.missed) — they
     * are never parked in the PIR/DUPID. Level trigger rescans the
     * UPID on a post that finds ON already set, recovering from a
     * lost notification IPI without the rescan backoff.
     */
    void setDeliveryPolicy(ThreadId thread, unsigned vector,
                           DeliveryPolicy policy);

    /** The policy for a (thread, vector); default if unset. */
    DeliveryPolicy deliveryPolicy(ThreadId thread,
                                  unsigned vector) const;

    /**
     * Configure ITR-style moderation for one (thread, vector):
     * posts land in the PIR immediately, but the notification is
     * batched — at most one per `itr` gap, and posts within
     * `coalesceWindow` of the first collapse into one flush.
     * Disabled params remove the moderator. Posts pending when the
     * receiver deschedules take the normal resume-drain slow path.
     */
    void setModeration(ThreadId thread, unsigned vector,
                       ModerationParams params);

    // ----- priority preemption (occupancy engine) --------------------

    /**
     * Declare that the thread's handler occupies the core for `cost`
     * cycles when invoked for `vector`, enabling the occupancy
     * engine for that vector. The engine models mixed-criticality
     * delivery: while a handler frame runs, a higher-priority
     * arrival (DeliveryPolicy::priority for the vector) preempts it
     * — the kernel pays preemptSave, runs the nested handler to
     * completion, then pays preemptRestore and resumes the
     * preempted frame's remaining cycles. Equal/lower priorities
     * queue in arrival order behind the running frame.
     *
     * Vectors without a declared cost keep the legacy immediate
     * (zero-occupancy) delivery, and a kernel with no costs declared
     * anywhere pays exactly one empty-map check — bit-identical to
     * the engine-less kernel. The engine is not scheduling-aware:
     * descheduling a thread mid-frame is unsupported (scenarios keep
     * the receiver resident while frames are in flight).
     */
    void setHandlerCost(ThreadId thread, unsigned vector,
                        Cycles cost);

    /**
     * Observer hooks for the occupancy engine, so the verify layer
     * (BoundChecker) can watch raise->deliver latencies without an
     * os -> verify link dependency. Raise fires at arrival (with the
     * vector's priority); deliver fires when the handler is invoked.
     */
    void setEngineRaiseHook(
        std::function<void(unsigned vector, unsigned prio,
                           Cycles now)> hook)
    {
        engineRaiseHook_ = std::move(hook);
    }
    void setEngineDeliverHook(
        std::function<void(unsigned vector, Cycles now)> hook)
    {
        engineDeliverHook_ = std::move(hook);
    }

    /** Nested depth of in-flight handler frames (tests). */
    std::size_t enginePreemptDepth(ThreadId thread) const;
    /** Arrivals queued behind the running frame (tests). */
    std::size_t engineDeferredCount(ThreadId thread) const;
    /** True when no frame is running or queued (tests). */
    bool engineIdle(ThreadId thread) const;

    // ----- KB timer (§4.3) ---------------------------------------------

    /** enable_kb_timer(): grant the thread timer access. */
    void enableKbTimer(ThreadId thread, std::uint8_t vector);

    /** disable_kb_timer(). */
    void disableKbTimer(ThreadId thread);

    /**
     * set_timer executed by the running thread.
     * @return false when the thread has no timer access.
     */
    bool setTimer(ThreadId thread, Cycles cycles, KbTimerMode mode);

    /** clear_timer executed by the running thread. */
    void clearTimer(ThreadId thread);

    /** The core's physical KB timer (tests / wiring). */
    KbTimer &coreTimer(CoreId core);

    /**
     * Check whether the running thread's timer on `core` expired by
     * `now`; if so acknowledge and invoke the thread's handler.
     * @return true when an interrupt fired.
     */
    bool pollKbTimer(CoreId core, Cycles now);

    // ----- interrupt forwarding (§4.5) -----------------------------------

    /**
     * Register the running thread to receive device interrupts on a
     * vector of this core.
     * @return the assigned vector, or -1 when exhausted.
     */
    int registerForwarding(ThreadId thread, CoreId core);

    /**
     * A device interrupt arrives at `core`. Fast path invokes the
     * owning thread's handler; slow path parks in the DUPID.
     */
    DeliveryPath deviceInterrupt(CoreId core, unsigned vector);

    /** The owner thread of a forwarded vector (kNoThread if none). */
    ThreadId forwardOwner(CoreId core, unsigned vector) const;

    // ----- classic services ----------------------------------------------

    /** Cost of delivering a POSIX signal to a running thread. */
    Cycles signalDeliveryCost() const { return costs_.signalReceive; }

    /**
     * setitimer(): deliver a periodic signal to `thread` every
     * `interval` cycles. While the thread is descheduled, firings
     * collapse into one pending signal delivered at the next resume
     * (SIGALRM semantics). The signal handler is the same callback
     * registered via registerHandler, invoked with `signo`.
     * @return a timer id for cancelInterval, or -1 on error.
     */
    int setInterval(ThreadId thread, Cycles interval,
                    unsigned signo = 14 /* SIGALRM */);

    /** Cancel a setInterval() timer. */
    void cancelInterval(int timer_id);

    /** Signals delivered so far via interval timers (tests). */
    std::uint64_t signalsDelivered() const
    {
        return signalsDelivered_;
    }

    /** Per-thread pending-repost count (tests). */
    unsigned pendingReposts(ThreadId thread) const;

    // ----- fault injection & graceful degradation (src/fault) -------

    /**
     * Attach the fault fabric. With no injector (the default) every
     * fault branch is one null check and delivery is byte-identical
     * to the unfaulted kernel.
     */
    void setFaultInjector(fault::Injector *inj) { fault_ = inj; }

    /**
     * Attach a delivery ledger: every post/delivery through the
     * kernel's four notification channels (UIPI, KB timer,
     * forwarding, signals) is accounted for invariant checking.
     */
    void setDeliveryLedger(fault::DeliveryLedger *ledger)
    {
        ledger_ = ledger;
    }

    /**
     * Enable the graceful-degradation paths (UPID rescan with
     * bounded backoff after a lost/reordered notification). On by
     * default; chaos turns it off to prove the invariants catch
     * unrecovered loss.
     */
    void setRecoveryEnabled(bool v) { recoveryEnabled_ = v; }
    bool recoveryEnabled() const { return recoveryEnabled_; }

    /** Tune the rescan backoff (base doubles per attempt). */
    void setRecoveryParams(Cycles backoff_base,
                           unsigned max_attempts)
    {
        recoveryBackoff_ = backoff_base;
        maxRecoveryAttempts_ = max_attempts;
    }

    /**
     * Record one watchdog rollback-retry: the run was rolled back
     * to a checkpoint and `eventsReplayed` events were re-driven to
     * reach it. Called by the chaos harness on the surviving cell
     * (checkpoint recovery rebuilds the kernel, so the totals are
     * accumulated outside and applied to the final instance).
     */
    void noteRollback(std::uint64_t eventsReplayed);

    /**
     * Register the kernel's counters ("kernel.*") with a metrics
     * registry. Without this call every counter pointer stays null
     * and the hot paths pay nothing.
     */
    void attachMetrics(MetricsRegistry &registry);

    /**
     * Mirror the moderation/recovery counters into per-vector
     * Perfetto counter tracks (obs/kernel_trace.hh); nullptr
     * detaches. Same null-guarded zero-cost convention as
     * attachMetrics.
     */
    void attachCounterTrace(KernelCounterTrace *trace)
    {
        ktrace_ = trace;
    }

  private:
    /** Occupancy-engine automaton states (per thread). */
    enum class EngState : std::uint8_t
    {
        Idle,
        /** Spilling the preempted frame (preemptSave cycles). */
        Saving,
        /** Reloading a preempted frame (preemptRestore cycles). */
        Restoring,
        /** A handler frame occupies the core. */
        Running,
    };

    /** Frame key sentinel: delivery not ledger-accounted. */
    static constexpr std::uint64_t kNoLedgerKey = ~std::uint64_t(0);

    /** One in-flight (running or preempted) handler frame. */
    struct EngFrame
    {
        unsigned vector = 0;
        unsigned prio = 0;
        /** Ledger key completed on frame completion. */
        std::uint64_t key = kNoLedgerKey;
        /** Cycles still owed when preempted. */
        Cycles remaining = 0;
    };

    /** One arrival waiting for the core. */
    struct EngDeferred
    {
        unsigned vector = 0;
        unsigned prio = 0;
        Cycles cost = 0;
        std::uint64_t key = kNoLedgerKey;
        /** Arrival order; ties within a priority resolve FIFO. */
        std::uint64_t seq = 0;
        /** Replayed continuation: skip the handler invocation. */
        bool alreadyStarted = false;
    };

    struct Thread
    {
        bool exists = false;
        CoreId core = 0;
        bool running = false;
        Upid upid;
        bool hasUpid = false;
        std::function<void(unsigned)> handler;
        KbTimerSave timerSave;
        bool timerEnabled = false;
        std::uint8_t timerVector = 0;
        Bitset256 fwdMask;
        Dupid dupid;
        /** Pending (collapsed) interval-timer signal. */
        bool pendingSignal = false;
        unsigned pendingSigno = 0;
        /**
         * A KB-timer expiry was observed (and ledger-posted) for
         * this thread but not yet delivered when it descheduled;
         * the restore-missed path completes the accounting.
         */
        bool timerDuePosted = false;
        /** Per-vector delivery policies (empty = all legacy). */
        std::unordered_map<unsigned, DeliveryPolicy> policies;
        /** Per-vector moderators (empty = no moderation). */
        std::unordered_map<unsigned, VectorModerator> moderators;
        /** Per-vector handler occupancy (empty = engine off). */
        std::unordered_map<unsigned, Cycles> handlerCosts;
        /** Occupancy-engine automaton state. */
        EngState engState = EngState::Idle;
        /** When the current Saving/Restoring/Running state ends. */
        Cycles engStateEnd = 0;
        /** Bumped to invalidate superseded advance events. */
        std::uint64_t engGen = 0;
        /** In-flight frames, innermost (running) last. */
        std::vector<EngFrame> engFrames;
        /** Queued arrivals, sorted (priority desc, seq asc). */
        std::vector<EngDeferred> engDeferred;
    };

    struct Core
    {
        ThreadId running = kNoThread;
        KbTimer timer;
        ForwardingUnit fwd;
        std::uint8_t nextFwdVector = 64;  // above the UV space
        /** An observed KB-timer expiry awaits delivery (fault). */
        bool timerDue = false;
        /** The awaited expiry was dropped/delayed by a fault. */
        bool timerMisfired = false;
    };

    Thread &thread(ThreadId id);
    const Thread &thread(ThreadId id) const;
    /** Deliver every vector parked for a thread; returns count. */
    unsigned drainParked(ThreadId id);
    /** Notification-processing scan: drain PIR to the handler. */
    unsigned scanUpid(ThreadId id);
    /** A (delayed/duplicated) notification IPI arrives. */
    void notifyArrived(ThreadId id);
    /** Bounded rescan-with-backoff after a lost notification. */
    void scheduleUpidRecovery(ThreadId id, unsigned attempt);
    /** In-flight (fault-delayed) KB-timer fire lands. */
    void delayedKbTimerFire(CoreId core_id);
    /** Deliver an acknowledged KB-timer fire to the running thread. */
    void deliverKbTimerFired(CoreId core_id);
    /** In-flight (fault-delayed) forwarded interrupt lands. */
    void delayedForwardDeliver(CoreId core_id, unsigned vector,
                               ThreadId posted_to);
    /** Abandon an observed-but-cancelled KB-timer expiry. */
    void abandonTimerDue(CoreId core_id);
    /** The policy for a vector, or null when unset (fast check). */
    const DeliveryPolicy *policyFor(const Thread &t,
                                    unsigned vector) const;
    /** A scheduled moderation-window flush fires. */
    void moderationFlush(ThreadId id, unsigned vector);

    // ----- occupancy engine (priority preemption) --------------------

    /**
     * Route one delivery through the occupancy engine. @return false
     * (and touch nothing) when the engine is off for this vector —
     * callers fall through to the legacy immediate delivery. `key`
     * is the ledger key completed when the frame finishes
     * (kNoLedgerKey = no accounting).
     */
    bool deliverViaEngine(ThreadId id, unsigned vector,
                          std::uint64_t key);
    /** The vector's priority (policy, or 0 when unset). */
    unsigned enginePriority(const Thread &t, unsigned vector) const;
    /** Insert into engDeferred keeping (prio desc, seq asc). */
    void engineEnqueue(Thread &t, const EngDeferred &d);
    /** React to a fresh arrival: start, preempt, or defer. */
    void engineArrival(ThreadId id, unsigned vector);
    /** Preempt the running frame for a higher-priority arrival. */
    void enginePreempt(ThreadId id);
    /** Pop the highest-priority deferred arrival and run it. */
    void engineStartFrame(ThreadId id);
    /** Schedule the state-end advance for the current state. */
    void scheduleEngineAdvance(ThreadId id);
    /** A state (save/run/restore) ran to its end. */
    void engineAdvance(ThreadId id, std::uint64_t gen);

    Simulation &sim_;
    CostModel costs_;
    /** Deque: UPID pointers stored in the UITT must stay stable. */
    std::deque<Thread> threads_;
    std::vector<Core> cores_;
    Uitt uitt_;
    /** UPID -> thread back-map for senduipi delivery. */
    std::unordered_map<const Upid *, ThreadId> upidOwner_;

    struct IntervalTimer
    {
        ThreadId thread = kNoThread;
        unsigned signo = 0;
        std::unique_ptr<PeriodicEvent> event;
    };
    std::vector<IntervalTimer> intervalTimers_;
    std::uint64_t signalsDelivered_ = 0;

    /** Null until attachMetrics; bumping is one null check. */
    static void bump(Counter *c, std::uint64_t n = 1)
    {
        if (c != nullptr)
            c->inc(n);
    }

    /**
     * Emit a per-vector counter-track sample (no-op when no trace
     * is attached). `vector` may be KernelCounterTrace::kNoVector
     * for events with no vector in scope.
     */
    void ktrace(const char *name, unsigned vector,
                std::uint64_t n = 1);

    KernelCounterTrace *ktrace_ = nullptr;
    Counter *mCtxSwitches_ = nullptr;
    Counter *mReposts_ = nullptr;
    Counter *mSignals_ = nullptr;
    Counter *mUipiFast_ = nullptr;
    Counter *mUipiDeferred_ = nullptr;
    Counter *mUipiSuppressed_ = nullptr;
    Counter *mFwdFast_ = nullptr;
    Counter *mFwdSlow_ = nullptr;
    Counter *mKbTimerFired_ = nullptr;

    // Fault fabric (null = perfect delivery, zero-cost).
    fault::Injector *fault_ = nullptr;
    fault::DeliveryLedger *ledger_ = nullptr;
    bool recoveryEnabled_ = true;
    Cycles recoveryBackoff_ = 256;
    unsigned maxRecoveryAttempts_ = 6;

    // kernel.fault.*: injections applied to kernel channels.
    Counter *mFaultIpiDropped_ = nullptr;
    Counter *mFaultIpiDelayed_ = nullptr;
    Counter *mFaultIpiDuplicated_ = nullptr;
    Counter *mFaultIpiReordered_ = nullptr;
    Counter *mFaultIpiStorm_ = nullptr;
    Counter *mFaultTimerDropped_ = nullptr;
    Counter *mFaultTimerDelayed_ = nullptr;
    Counter *mFaultTimerSpurious_ = nullptr;
    Counter *mFaultFwdDropped_ = nullptr;
    Counter *mFaultFwdDelayed_ = nullptr;

    // kernel.recovery.*: graceful-degradation outcomes.
    Counter *mRecoveredRescan_ = nullptr;
    Counter *mRecoveryRetry_ = nullptr;
    Counter *mRecoveryParked_ = nullptr;
    Counter *mRecoveredTimerLate_ = nullptr;
    Counter *mTimerFireCancelled_ = nullptr;
    Counter *mRecoveredFwdParked_ = nullptr;
    Counter *mRecoveredFwdDelayed_ = nullptr;
    Counter *mSpuriousScans_ = nullptr;
    Counter *mRollbackRetries_ = nullptr;
    Counter *mRollbackEventsReplayed_ = nullptr;

    // kernel.moderation.*: delivery-policy and moderation outcomes.
    Counter *mModCoalesced_ = nullptr;
    Counter *mModSuppressed_ = nullptr;
    Counter *mModFlushes_ = nullptr;
    Counter *mModFlushDropped_ = nullptr;
    Counter *mModFlushDelayed_ = nullptr;
    Counter *mModMissed_ = nullptr;
    Counter *mModMissedThenDelivered_ = nullptr;
    Counter *mModLevelRedeliver_ = nullptr;

    // kernel.preempt.*: occupancy-engine outcomes.
    Counter *mPreemptions_ = nullptr;
    Counter *mPreemptDeferredArrivals_ = nullptr;
    Counter *mPreemptCompletions_ = nullptr;
    Counter *mPreemptResumes_ = nullptr;
    Counter *mPreemptSaveDropped_ = nullptr;
    Counter *mPreemptDoubleSave_ = nullptr;
    Counter *mPreemptResumeReplayed_ = nullptr;

    /** Global arrival sequence for deferred FIFO tie-breaks. */
    std::uint64_t engSeq_ = 0;
    std::function<void(unsigned, unsigned, Cycles)> engineRaiseHook_;
    std::function<void(unsigned, Cycles)> engineDeliverHook_;
    /** True while drainParked delivers resume-drain backlog. */
    bool inResumeDrain_ = false;
};

} // namespace xui

#endif // XUI_OS_KERNEL_HH
