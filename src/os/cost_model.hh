/**
 * @file
 * Calibrated cost table for the DES (system) tier.
 *
 * Every notification/OS mechanism cost used by the request-level
 * simulations is collected here, in cycles at 2 GHz. Defaults come
 * from the paper's measurements (Table 2, Fig. 2, §2, §6.1) and from
 * this repository's own cycle-tier calibration (bench/table2): the
 * same two-step methodology the paper used for its gem5 model.
 */

#ifndef XUI_OS_COST_MODEL_HH
#define XUI_OS_COST_MODEL_HH

#include "des/time.hh"

namespace xui
{

/** Per-event costs of every mechanism the evaluation compares. */
struct CostModel
{
    // ----- receiver-side notification costs (per delivered event) --
    /** UIPI with Intel's flush-based delivery (Fig. 4: ~645). */
    Cycles uipiFlushReceive = 645;
    /** xUI tracked interrupt, IPI source (Fig. 4: ~231). */
    Cycles uipiTrackedReceive = 231;
    /** xUI KB-timer interrupt: skips the UPID (Fig. 4: ~105). */
    Cycles kbTimerReceive = 105;
    /** xUI forwarded device interrupt: also UPID-free (§4.5). */
    Cycles forwardedReceive = 105;
    /** POSIX signal delivery (§2: ~2.4 us at 2 GHz). */
    Cycles signalReceive = 4800;
    /** Negative poll check: L1 hit + predicted branch (§2). */
    Cycles pollCheck = 3;
    /** Positive poll: cache miss + branch mispredict (~100, §2). */
    Cycles pollNotify = 100;
    /** umwait wakeup on a monitored line (C0.1 exit latency). */
    Cycles mwaitWake = 250;

    // ----- sender-side costs ----------------------------------------
    /** senduipi instruction (Table 2: 383). */
    Cycles senduipiCost = 383;
    /** APIC-to-APIC notification latency (Fig. 2: ~380 from send). */
    Cycles ipiWire = 380;
    /** clui / stui pair guarding a critical section (Table 2). */
    Cycles cluiStuiPair = 34;

    // ----- mixed-criticality preemption costs ------------------------
    /**
     * Saving a running user handler's frame when a higher-priority
     * vector preempts it (register file + resume PC spill, microcode
     * preempt-save routine). Sized like a short delivery: well under
     * a context switch, above the tracked receive cost's ucode tail.
     */
    Cycles preemptSave = 180;
    /** Restoring a preempted handler frame after the nested handler
     *  returns (pops + UIF restore + redirect). */
    Cycles preemptRestore = 150;

    // ----- OS service costs ------------------------------------------
    /** Kernel context switch (~1.2 us of the signal cost, §2). */
    Cycles contextSwitch = 2400;
    /** Bare syscall entry/exit. */
    Cycles syscall = 500;
    /** User-level thread switch in the runtime (register save). */
    Cycles userContextSwitch = 60;
    /**
     * Timer-core cost per setitimer()-driven event: signal delivery
     * to the timer thread plus syscall work (Fig. 6).
     */
    Cycles setitimerEvent = 5200;
    /**
     * Timer-core cost per nanosleep()-driven event: sleep + wakeup,
     * i.e.\ two context switches plus syscall (Fig. 6).
     */
    Cycles nanosleepEvent = 5600;
    /** One rdtsc-spin check on a dedicated timing core. */
    Cycles rdtscSpinCheck = 30;
    /**
     * One OS-interval-timer-driven poll on the waiting application
     * core (timer interrupt + handler queue check, Fig. 9).
     */
    Cycles periodicPollTick = 800;
    /** Programming the KB timer from user space (set_timer). */
    Cycles kbTimerProgram = 12;

    // ----- device / application costs ---------------------------------
    /** l3fwd per-packet work: LPM lookup + header rewrite + TX. */
    Cycles packetProcess = 300;
    /** DSA completion-record processing once noticed. */
    Cycles completionProcess = 120;
    /** DSA submission (descriptor write + doorbell over PCIe). */
    Cycles offloadSubmit = 250;
    /** PCIe one-way latency device -> host (completion write). */
    Cycles pcieLatency = 600;
};

} // namespace xui

#endif // XUI_OS_COST_MODEL_HH
