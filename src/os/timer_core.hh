/**
 * @file
 * Dedicated-timer-core model for Figure 6 ("The Cost of a Timer").
 *
 * User-level runtimes without xUI dedicate a kernel thread (often a
 * whole core) to timing: it wakes every interval through an OS timer
 * interface (setitimer signal or nanosleep) or by spinning on rdtsc,
 * then notifies each application core with senduipi. This model
 * accounts the timer core's busy cycles and the achieved firing rate
 * so the bench can sweep interval x core-count, and contrasts with
 * xUI where each core's KB timer makes the timer core disappear.
 */

#ifndef XUI_OS_TIMER_CORE_HH
#define XUI_OS_TIMER_CORE_HH

#include <cstdint>

#include "des/simulation.hh"
#include "obs/metrics.hh"
#include "os/cost_model.hh"

namespace xui
{

/** How the timer core learns that the interval elapsed. */
enum class TimerInterface : std::uint8_t
{
    /** setitimer(): the kernel delivers a signal each interval. */
    Setitimer,
    /** nanosleep(): sleep + kernel wakeup each interval. */
    Nanosleep,
    /** Busy-spin on rdtsc: burns the core, no OS involvement. */
    RdtscSpin,
    /** xUI: no timer core exists; each core has a KB timer. */
    XuiKbTimer,
};

/** DES model of one timer core driving N application cores. */
class TimerCoreModel
{
  public:
    /**
     * @param sim simulation context
     * @param costs calibrated costs
     * @param iface wake-up mechanism
     * @param interval preemption interval in cycles
     * @param num_app_cores cores to notify each interval
     */
    TimerCoreModel(Simulation &sim, const CostModel &costs,
                   TimerInterface iface, Cycles interval,
                   unsigned num_app_cores);

    /** Schedule the firing events over [now, now + duration). */
    void run(Cycles duration);

    /** Fraction of the timer core's cycles spent busy (0..1). */
    double utilization() const;

    /** Intervals that fired (an overloaded core fires fewer). */
    std::uint64_t eventsFired() const { return eventsFired_; }

    /** senduipi notifications issued. */
    std::uint64_t notificationsSent() const { return sent_; }

    /**
     * Achieved firing rate relative to the requested rate (1.0 when
     * the timer core keeps up).
     */
    double achievedRateFraction() const;

    /** Per-interval busy cost of the chosen interface. */
    Cycles perEventCost() const;

    /**
     * Register this model's counters/gauges ("timer_core.*") with a
     * metrics registry; run() bumps them, utilization is published
     * by publish().
     */
    void attachMetrics(MetricsRegistry &registry);

    /** Push the derived gauges (utilization, achieved rate). */
    void publish();

  private:
    Simulation &sim_;
    CostModel costs_;
    TimerInterface iface_;
    Cycles interval_;
    unsigned numAppCores_;

    Cycles duration_ = 0;
    Cycles busyCycles_ = 0;
    std::uint64_t eventsFired_ = 0;
    std::uint64_t sent_ = 0;

    /** Null until attachMetrics. */
    Counter *mFired_ = nullptr;
    Counter *mSent_ = nullptr;
    Gauge *mUtilization_ = nullptr;
    Gauge *mAchievedRate_ = nullptr;
};

} // namespace xui

#endif // XUI_OS_TIMER_CORE_HH
