#include "os/timer_core.hh"

#include <algorithm>
#include <cassert>

namespace xui
{

TimerCoreModel::TimerCoreModel(Simulation &sim,
                               const CostModel &costs,
                               TimerInterface iface, Cycles interval,
                               unsigned num_app_cores)
    : sim_(sim), costs_(costs), iface_(iface), interval_(interval),
      numAppCores_(num_app_cores)
{
    assert(interval > 0);
}

Cycles
TimerCoreModel::perEventCost()  const
{
    switch (iface_) {
      case TimerInterface::Setitimer:
        return costs_.setitimerEvent;
      case TimerInterface::Nanosleep:
        return costs_.nanosleepEvent;
      case TimerInterface::RdtscSpin:
        return costs_.rdtscSpinCheck;
      case TimerInterface::XuiKbTimer:
        return 0;
    }
    return 0;
}

void
TimerCoreModel::run(Cycles duration)
{
    duration_ += duration;
    if (iface_ == TimerInterface::XuiKbTimer) {
        // No timer core: each application core owns a KB timer.
        return;
    }

    // Discrete event loop over intervals; if the per-interval work
    // exceeds the interval the next firing slips (overload).
    Cycles now = sim_.now();
    Cycles end = now + duration;
    Cycles next_fire = now + interval_;
    Cycles busy_until = now;

    while (next_fire < end) {
        Cycles start = std::max(next_fire, busy_until);
        if (start >= end)
            break;
        Cycles work = perEventCost() +
            static_cast<Cycles>(numAppCores_) * costs_.senduipiCost;
        busy_until = start + work;
        busyCycles_ += work;
        ++eventsFired_;
        sent_ += numAppCores_;
        if (mFired_ != nullptr)
            mFired_->inc();
        if (mSent_ != nullptr)
            mSent_->inc(numAppCores_);
        next_fire += interval_;
        // A saturated core fires back-to-back (start is clamped to
        // busy_until above); missed deadlines are skipped, not
        // queued, so eventsFired reflects the achieved rate.
        if (busy_until > next_fire)
            next_fire = busy_until;
    }

    if (iface_ == TimerInterface::RdtscSpin) {
        // The spin loop burns every remaining cycle polling rdtsc.
        busyCycles_ = duration_;
    }
}

double
TimerCoreModel::utilization() const
{
    if (duration_ == 0 || iface_ == TimerInterface::XuiKbTimer)
        return 0.0;
    return std::min(1.0, static_cast<double>(busyCycles_) /
                             static_cast<double>(duration_));
}

void
TimerCoreModel::attachMetrics(MetricsRegistry &registry)
{
    mFired_ = &registry.counter("timer_core.events_fired");
    mSent_ = &registry.counter("timer_core.notifications_sent");
    mUtilization_ = &registry.gauge("timer_core.utilization");
    mAchievedRate_ = &registry.gauge("timer_core.achieved_rate");
}

void
TimerCoreModel::publish()
{
    if (mUtilization_ != nullptr)
        mUtilization_->set(utilization());
    if (mAchievedRate_ != nullptr)
        mAchievedRate_->set(achievedRateFraction());
}

double
TimerCoreModel::achievedRateFraction() const
{
    if (iface_ == TimerInterface::XuiKbTimer)
        return 1.0;
    double expected = static_cast<double>(duration_) /
        static_cast<double>(interval_);
    if (expected <= 0.0)
        return 1.0;
    return std::min(1.0, static_cast<double>(eventsFired_) / expected);
}

} // namespace xui
