/**
 * @file
 * Minimal CSV writer so bench output can also be captured for
 * plotting.
 */

#ifndef XUI_STATS_CSV_HH
#define XUI_STATS_CSV_HH

#include <fstream>
#include <string>
#include <vector>

namespace xui
{

/** Writes quoted-as-needed CSV rows to a file. */
class CsvWriter
{
  public:
    /**
     * Open (truncate) the target file.
     * @throws std::runtime_error when the file cannot be opened.
     */
    explicit CsvWriter(const std::string &path);

    /** Write one row; fields containing commas/quotes are escaped. */
    void writeRow(const std::vector<std::string> &fields);

    /** Flush and close; also done by the destructor. */
    void close();

  private:
    static std::string escape(const std::string &field);

    std::ofstream out_;
};

} // namespace xui

#endif // XUI_STATS_CSV_HH
