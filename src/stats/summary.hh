/**
 * @file
 * Streaming summary statistics (Welford) used wherever a full
 * histogram is unnecessary.
 */

#ifndef XUI_STATS_SUMMARY_HH
#define XUI_STATS_SUMMARY_HH

#include <cstdint>

namespace xui
{

/** Online mean/variance/min/max accumulator (Welford's algorithm). */
class SummaryStats
{
  public:
    SummaryStats() { reset(); }

    /** Add one observation. */
    void add(double x);

    /** Number of observations. */
    std::uint64_t count() const { return n_; }

    /** Arithmetic mean; 0 when empty. */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Sample variance (n-1 denominator); 0 for n < 2. */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Smallest observation; 0 when empty. */
    double min() const { return n_ ? min_ : 0.0; }

    /** Largest observation; 0 when empty. */
    double max() const { return n_ ? max_ : 0.0; }

    /** Sum of observations. */
    double sum() const { return sum_; }

    /** Discard all observations. */
    void reset();

    /** Merge another accumulator (Chan's parallel formula). */
    void merge(const SummaryStats &other);

  private:
    std::uint64_t n_;
    double mean_;
    double m2_;
    double min_;
    double max_;
    double sum_;
};

} // namespace xui

#endif // XUI_STATS_SUMMARY_HH
