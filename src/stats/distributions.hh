/**
 * @file
 * Reproducible probability distributions used by the workload
 * generators and device models.
 *
 * The standard library's distributions are implementation-defined, so
 * results would differ across toolchains; these are pinned algorithms
 * (inverse-transform exponential, Marsaglia polar normal, Knuth
 * Poisson) that produce identical streams everywhere.
 */

#ifndef XUI_STATS_DISTRIBUTIONS_HH
#define XUI_STATS_DISTRIBUTIONS_HH

#include <cstdint>
#include <vector>

#include "stats/rng.hh"

namespace xui
{

/** Exponential distribution with the given mean (inverse rate). */
class ExponentialDist
{
  public:
    explicit ExponentialDist(double mean) : mean_(mean) {}

    /** Draw one value; always >= 0. */
    double sample(Rng &rng) const;

    double mean() const { return mean_; }

  private:
    double mean_;
};

/**
 * Normal distribution (Marsaglia polar method), optionally truncated
 * at zero for use as a latency jitter source.
 */
class NormalDist
{
  public:
    NormalDist(double mean, double stddev)
        : mean_(mean), stddev_(stddev)
    {}

    double sample(Rng &rng) const;

    /** Sample and clamp to >= 0 (latencies cannot be negative). */
    double sampleNonNegative(Rng &rng) const;

  private:
    double mean_;
    double stddev_;
};

/** Uniform distribution on [lo, hi). */
class UniformDist
{
  public:
    UniformDist(double lo, double hi) : lo_(lo), hi_(hi) {}

    double sample(Rng &rng) const;

  private:
    double lo_;
    double hi_;
};

/**
 * Two-point service-time mixture, e.g.\ the paper's RocksDB workload:
 * 99.5% GET at 1.2us and 0.5% SCAN at 580us.
 */
class BimodalDist
{
  public:
    /**
     * @param p_a probability of drawing value_a
     * @param value_a the common (fast) value
     * @param value_b the rare (slow) value
     */
    BimodalDist(double p_a, double value_a, double value_b)
        : pA_(p_a), valueA_(value_a), valueB_(value_b)
    {}

    /** Draw a value; also reports which mode was selected. */
    double sample(Rng &rng, bool *was_a = nullptr) const;

    double mean() const
    {
        return pA_ * valueA_ + (1.0 - pA_) * valueB_;
    }

  private:
    double pA_;
    double valueA_;
    double valueB_;
};

/**
 * Open-loop Poisson arrival process: exponential inter-arrival times
 * at a configurable rate, yielding absolute arrival timestamps.
 */
class PoissonProcess
{
  public:
    /**
     * @param rate_per_cycle mean arrivals per cycle
     * @param rng private generator for this process
     */
    PoissonProcess(double rate_per_cycle, Rng rng);

    /** Absolute time (cycles) of the next arrival. */
    std::uint64_t nextArrival();

    /** Change the rate; takes effect from the next arrival. */
    void setRate(double rate_per_cycle);

    double rate() const { return rate_; }

  private:
    double rate_;
    double nextTime_;
    Rng rng_;
};

/**
 * Empirical distribution over explicit (value, weight) pairs; used by
 * the accelerator model for configurable offload-latency mixes.
 */
class DiscreteDist
{
  public:
    struct Entry
    {
        double value;
        double weight;
    };

    explicit DiscreteDist(std::vector<Entry> entries);

    double sample(Rng &rng) const;

  private:
    std::vector<Entry> entries_;
    std::vector<double> cumulative_;
};

} // namespace xui

#endif // XUI_STATS_DISTRIBUTIONS_HH
