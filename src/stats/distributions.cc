#include "stats/distributions.hh"

#include <cassert>
#include <cmath>

namespace xui
{

double
ExponentialDist::sample(Rng &rng) const
{
    // Inverse transform; 1 - u avoids log(0).
    double u = 1.0 - rng.nextDouble();
    return -mean_ * std::log(u);
}

double
NormalDist::sample(Rng &rng) const
{
    // Marsaglia polar method (one value per call; the second root is
    // discarded to keep the stream position deterministic per call).
    while (true) {
        double u = 2.0 * rng.nextDouble() - 1.0;
        double v = 2.0 * rng.nextDouble() - 1.0;
        double s = u * u + v * v;
        if (s > 0.0 && s < 1.0) {
            double factor = std::sqrt(-2.0 * std::log(s) / s);
            return mean_ + stddev_ * u * factor;
        }
    }
}

double
NormalDist::sampleNonNegative(Rng &rng) const
{
    double x = sample(rng);
    return x < 0.0 ? 0.0 : x;
}

double
UniformDist::sample(Rng &rng) const
{
    return lo_ + (hi_ - lo_) * rng.nextDouble();
}

double
BimodalDist::sample(Rng &rng, bool *was_a) const
{
    bool a = rng.nextBool(pA_);
    if (was_a)
        *was_a = a;
    return a ? valueA_ : valueB_;
}

PoissonProcess::PoissonProcess(double rate_per_cycle, Rng rng)
    : rate_(rate_per_cycle), nextTime_(0.0), rng_(rng)
{
    assert(rate_per_cycle > 0.0);
}

std::uint64_t
PoissonProcess::nextArrival()
{
    double u = 1.0 - rng_.nextDouble();
    nextTime_ += -std::log(u) / rate_;
    return static_cast<std::uint64_t>(nextTime_);
}

void
PoissonProcess::setRate(double rate_per_cycle)
{
    assert(rate_per_cycle > 0.0);
    rate_ = rate_per_cycle;
}

DiscreteDist::DiscreteDist(std::vector<Entry> entries)
    : entries_(std::move(entries))
{
    assert(!entries_.empty());
    double total = 0.0;
    cumulative_.reserve(entries_.size());
    for (const auto &e : entries_) {
        assert(e.weight >= 0.0);
        total += e.weight;
        cumulative_.push_back(total);
    }
    assert(total > 0.0);
    for (auto &c : cumulative_)
        c /= total;
}

double
DiscreteDist::sample(Rng &rng) const
{
    double u = rng.nextDouble();
    for (std::size_t i = 0; i < cumulative_.size(); ++i) {
        if (u < cumulative_[i])
            return entries_[i].value;
    }
    return entries_.back().value;
}

} // namespace xui
