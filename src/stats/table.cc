#include "stats/table.hh"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <sstream>

namespace xui
{

TablePrinter::TablePrinter(std::string title)
    : title_(std::move(title))
{}

void
TablePrinter::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TablePrinter::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

void
TablePrinter::addRule()
{
    rows_.push_back({kRuleMarker});
}

std::string
TablePrinter::num(double v, int precision)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << v;
    return ss.str();
}

std::string
TablePrinter::integer(std::int64_t v)
{
    return std::to_string(v);
}

std::string
TablePrinter::percent(double fraction, int precision)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision)
       << fraction * 100.0 << "%";
    return ss.str();
}

void
TablePrinter::print(std::ostream &os) const
{
    // Column widths over header plus all non-rule rows.
    std::vector<std::size_t> widths;
    auto grow = [&](const std::vector<std::string> &cells) {
        if (cells.size() > widths.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto &row : rows_) {
        if (!(row.size() == 1 && row[0] == kRuleMarker))
            grow(row);
    }

    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    if (total >= 2)
        total -= 2;

    auto rule = [&]() { os << std::string(total, '-') << '\n'; };
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            os << std::left << std::setw(static_cast<int>(widths[i]))
               << cells[i];
            if (i + 1 != cells.size())
                os << "  ";
        }
        os << '\n';
    };

    if (!title_.empty()) {
        os << title_ << '\n';
        rule();
    }
    if (!header_.empty()) {
        emit(header_);
        rule();
    }
    for (const auto &row : rows_) {
        if (row.size() == 1 && row[0] == kRuleMarker)
            rule();
        else
            emit(row);
    }
}

} // namespace xui
