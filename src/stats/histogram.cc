#include "stats/histogram.hh"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>

namespace xui
{

Histogram::Histogram(unsigned sub_bucket_bits)
    : subBucketBits_(sub_bucket_bits),
      subBucketCount_(1ull << sub_bucket_bits),
      count_(0),
      sum_(0.0),
      min_(std::numeric_limits<std::int64_t>::max()),
      max_(std::numeric_limits<std::int64_t>::min())
{
    assert(sub_bucket_bits >= 1 && sub_bucket_bits <= 16);
    // One linear region [0, 2*subBucketCount) plus one half-band per
    // additional power of two up to 2^62.
    std::size_t bands = 63 - subBucketBits_;
    buckets_.assign(2 * subBucketCount_ + bands * subBucketCount_, 0);
}

std::size_t
Histogram::bucketIndex(std::uint64_t value) const
{
    if (value < 2 * subBucketCount_)
        return static_cast<std::size_t>(value);
    // The band is determined by the position of the leading bit; the
    // band for values in [2^(bits+1+k), 2^(bits+2+k)) contributes
    // subBucketCount_ buckets with stride 2^(k+1).
    unsigned msb = 63 - std::countl_zero(value);
    unsigned band = msb - subBucketBits_ - 1;   // 0 for [2n, 4n)
    std::uint64_t offset =
        (value >> (msb - subBucketBits_)) - subBucketCount_;
    return 2 * subBucketCount_ + band * subBucketCount_ +
        static_cast<std::size_t>(offset);
}

std::uint64_t
Histogram::bucketUpperBound(std::size_t index) const
{
    if (index < 2 * subBucketCount_)
        return index;
    std::size_t rel = index - 2 * subBucketCount_;
    unsigned band = static_cast<unsigned>(rel / subBucketCount_);
    std::uint64_t sub = rel % subBucketCount_;
    unsigned shift = band + 1;
    std::uint64_t stride = 1ull << shift;
    std::uint64_t base = (subBucketCount_ + sub) << shift;
    return base + stride - 1;
}

void
Histogram::record(std::int64_t value)
{
    record(value, 1);
}

void
Histogram::record(std::int64_t value, std::uint64_t count)
{
    if (count == 0)
        return;
    if (value < 0)
        value = 0;
    std::size_t idx = bucketIndex(static_cast<std::uint64_t>(value));
    idx = std::min(idx, buckets_.size() - 1);
    buckets_[idx] += count;
    count_ += count;
    sum_ += static_cast<double>(value) * static_cast<double>(count);
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

double
Histogram::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

std::int64_t
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0;
    p = std::clamp(p, 0.0, 100.0);
    // Rank of the target sample (1-based, ceil).
    std::uint64_t target = static_cast<std::uint64_t>(
        p / 100.0 * static_cast<double>(count_) + 0.5);
    if (target == 0)
        target = 1;
    if (target > count_)
        target = count_;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen >= target) {
            auto bound = bucketUpperBound(i);
            return static_cast<std::int64_t>(
                std::min<std::uint64_t>(
                    bound, static_cast<std::uint64_t>(max_)));
        }
    }
    return max_;
}

void
Histogram::merge(const Histogram &other)
{
    if (other.count_ == 0)
        return;
    if (other.subBucketBits_ == subBucketBits_) {
        for (std::size_t i = 0; i < buckets_.size(); ++i)
            buckets_[i] += other.buckets_[i];
    } else {
        // Differently configured source: re-bucket every occupied
        // bucket at its representative value. Percentiles keep the
        // coarser of the two configurations' relative error.
        for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
            if (other.buckets_[i] == 0)
                continue;
            std::size_t idx = bucketIndex(other.bucketUpperBound(i));
            idx = std::min(idx, buckets_.size() - 1);
            buckets_[idx] += other.buckets_[i];
        }
    }
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    sum_ = 0.0;
    min_ = std::numeric_limits<std::int64_t>::max();
    max_ = std::numeric_limits<std::int64_t>::min();
}

} // namespace xui
