#include "stats/digest.hh"

namespace xui
{

void
Fnv1a::update(const void *data, std::size_t len)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    for (std::size_t i = 0; i < len; ++i)
        updateByte(p[i]);
}

std::uint64_t
fnv1a(const void *data, std::size_t len)
{
    Fnv1a h;
    h.update(data, len);
    return h.value();
}

} // namespace xui
