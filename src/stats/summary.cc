#include "stats/summary.hh"

#include <algorithm>
#include <cmath>
#include <limits>

namespace xui
{

void
SummaryStats::add(double x)
{
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
}

double
SummaryStats::variance() const
{
    return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double
SummaryStats::stddev() const
{
    return std::sqrt(variance());
}

void
SummaryStats::reset()
{
    n_ = 0;
    mean_ = 0.0;
    m2_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
    sum_ = 0.0;
}

void
SummaryStats::merge(const SummaryStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    double delta = other.mean_ - mean_;
    std::uint64_t total = n_ + other.n_;
    double nb = static_cast<double>(other.n_);
    double na = static_cast<double>(n_);
    mean_ += delta * nb / static_cast<double>(total);
    m2_ += other.m2_ +
        delta * delta * na * nb / static_cast<double>(total);
    n_ = total;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
}

} // namespace xui
