#include "stats/csv.hh"

#include <stdexcept>

namespace xui
{

CsvWriter::CsvWriter(const std::string &path)
    : out_(path, std::ios::trunc)
{
    if (!out_)
        throw std::runtime_error("CsvWriter: cannot open " + path);
}

std::string
CsvWriter::escape(const std::string &field)
{
    bool needs_quotes =
        field.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quotes)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void
CsvWriter::writeRow(const std::vector<std::string> &fields)
{
    for (std::size_t i = 0; i < fields.size(); ++i) {
        out_ << escape(fields[i]);
        if (i + 1 != fields.size())
            out_ << ',';
    }
    out_ << '\n';
}

void
CsvWriter::close()
{
    if (out_.is_open())
        out_.close();
}

} // namespace xui
