/**
 * @file
 * Aligned-column table printer used by every bench binary to emit the
 * rows/series corresponding to the paper's tables and figures.
 */

#ifndef XUI_STATS_TABLE_HH
#define XUI_STATS_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace xui
{

/**
 * Collects rows of string cells and prints them with padded,
 * left-or-right aligned columns plus an optional title and rule lines.
 */
class TablePrinter
{
  public:
    /** @param title printed above the table when non-empty. */
    explicit TablePrinter(std::string title = "");

    /** Set the header row. */
    void setHeader(std::vector<std::string> header);

    /** Append one data row (cells already formatted). */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal separator at the current position. */
    void addRule();

    /** Format helpers. */
    static std::string num(double v, int precision = 2);
    static std::string integer(std::int64_t v);
    static std::string percent(double fraction, int precision = 1);

    /** Render to the stream. */
    void print(std::ostream &os) const;

  private:
    static constexpr const char *kRuleMarker = "\x01rule";

    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace xui

#endif // XUI_STATS_TABLE_HH
