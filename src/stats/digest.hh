/**
 * @file
 * Incremental order-sensitive 64-bit digest (FNV-1a) used by the
 * verification subsystem to fingerprint event streams. FNV-1a is
 * byte-serial, so two streams match iff every folded word matches in
 * order — exactly the property a determinism check needs. It is not
 * cryptographic and does not try to be.
 */

#ifndef XUI_STATS_DIGEST_HH
#define XUI_STATS_DIGEST_HH

#include <cstddef>
#include <cstdint>

namespace xui
{

/** Streaming FNV-1a 64-bit hasher. */
class Fnv1a
{
  public:
    static constexpr std::uint64_t kOffsetBasis =
        0xcbf29ce484222325ull;
    static constexpr std::uint64_t kPrime = 0x100000001b3ull;

    /** Fold one byte. */
    void updateByte(std::uint8_t b)
    {
        hash_ = (hash_ ^ b) * kPrime;
        ++bytes_;
    }

    /** Fold a 64-bit word, little-endian byte order. */
    void update(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            updateByte(static_cast<std::uint8_t>(v));
            v >>= 8;
        }
    }

    /** Fold a raw byte range. */
    void update(const void *data, std::size_t len);

    /** Current digest value. */
    std::uint64_t value() const { return hash_; }

    /** Count of bytes folded so far. */
    std::uint64_t bytes() const { return bytes_; }

    /** Reset to the empty-stream state. */
    void reset()
    {
        hash_ = kOffsetBasis;
        bytes_ = 0;
    }

    /**
     * Restore a mid-stream state captured by a snapshot. FNV-1a's
     * whole state is (hash, byte count), so resuming from these two
     * words continues the stream exactly where it left off.
     */
    void restore(std::uint64_t hash, std::uint64_t bytes)
    {
        hash_ = hash;
        bytes_ = bytes;
    }

  private:
    std::uint64_t hash_ = kOffsetBasis;
    std::uint64_t bytes_ = 0;
};

/** One-shot digest of a buffer. */
std::uint64_t fnv1a(const void *data, std::size_t len);

} // namespace xui

#endif // XUI_STATS_DIGEST_HH
