/**
 * @file
 * Deterministic pseudo-random number generation for all simulators.
 *
 * Every stochastic element in the repository (packet arrivals, offload
 * noise, workload memory addresses, request mixes) draws from an
 * explicitly seeded Rng so that simulations are reproducible
 * bit-for-bit. The generator is xoshiro256** seeded via SplitMix64,
 * which has far better statistical behaviour than std::minstd and is
 * much cheaper than std::mt19937_64.
 */

#ifndef XUI_STATS_RNG_HH
#define XUI_STATS_RNG_HH

#include <cstdint>

namespace xui
{

/**
 * xoshiro256** pseudo-random generator with SplitMix64 seeding.
 *
 * Satisfies the std uniform_random_bit_generator concept so it can be
 * used with standard distributions, although the distributions in
 * distributions.hh are preferred since they are reproducible across
 * standard library implementations.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed; any value (including 0) is fine. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Return the next 64-bit pseudo-random value. */
    std::uint64_t next();

    /** std URBG interface. */
    result_type operator()() { return next(); }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform integer in [0, bound) using Lemire rejection. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Bernoulli draw with probability p of returning true. */
    bool nextBool(double p);

    /**
     * Split off an independent child generator. Each call produces a
     * stream decorrelated from the parent and from other children,
     * allowing per-component seeding from one master seed.
     */
    Rng split();

    /**
     * Raw xoshiro256** state, for checkpoint save/restore. The four
     * words ARE the complete generator state; restoring them resumes
     * the stream bit-exactly.
     */
    std::uint64_t stateWord(unsigned i) const { return s_[i]; }
    void setStateWord(unsigned i, std::uint64_t v) { s_[i] = v; }

  private:
    std::uint64_t s_[4];
};

} // namespace xui

#endif // XUI_STATS_RNG_HH
