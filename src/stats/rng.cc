#include "stats/rng.hh"

namespace xui
{

namespace
{

std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Rng::nextDouble()
{
    // 53 high bits -> uniform in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    if (bound == 0)
        return 0;
    // Lemire's multiply-shift with rejection to remove modulo bias.
    std::uint64_t threshold = (-bound) % bound;
    while (true) {
        std::uint64_t r = next();
        unsigned __int128 m =
            static_cast<unsigned __int128>(r) * bound;
        if (static_cast<std::uint64_t>(m) >= threshold)
            return static_cast<std::uint64_t>(m >> 64);
    }
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBounded(span));
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xdeadbeefcafef00dull);
}

} // namespace xui
