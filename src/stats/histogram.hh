/**
 * @file
 * HDR-style logarithmic-bucket histogram for latency recording.
 *
 * Values are bucketed with bounded relative error (sub-bucket
 * resolution within each power-of-two band), giving O(1) insertion and
 * percentile queries accurate to ~0.8% with the default configuration,
 * over a value range of [0, 2^62]. This is the recorder behind every
 * tail-latency number the benches report.
 */

#ifndef XUI_STATS_HISTOGRAM_HH
#define XUI_STATS_HISTOGRAM_HH

#include <cstdint>
#include <vector>

namespace xui
{

/** Log-bucketed latency histogram with percentile queries. */
class Histogram
{
  public:
    /**
     * @param sub_bucket_bits log2 of the number of sub-buckets per
     *        power-of-two band; 7 gives <1% relative error.
     */
    explicit Histogram(unsigned sub_bucket_bits = 7);

    /** Record one value (clamped to >= 0). */
    void record(std::int64_t value);

    /** Record a value with a repeat count. */
    void record(std::int64_t value, std::uint64_t count);

    /** Total number of recorded values. */
    std::uint64_t count() const { return count_; }

    /** Sum of all recorded values (for mean computation). */
    double sum() const { return sum_; }

    /** Arithmetic mean; 0 when empty. */
    double mean() const;

    /** Smallest recorded value; 0 when empty. */
    std::int64_t min() const { return count_ ? min_ : 0; }

    /** Largest recorded value; 0 when empty. */
    std::int64_t max() const { return count_ ? max_ : 0; }

    /**
     * Value at the given percentile in [0, 100]; returns a bucket
     * representative value (upper bound of the containing bucket).
     */
    std::int64_t percentile(double p) const;

    /** Shorthand for common tails. */
    std::int64_t p50() const { return percentile(50.0); }
    std::int64_t p95() const { return percentile(95.0); }
    std::int64_t p99() const { return percentile(99.0); }
    std::int64_t p999() const { return percentile(99.9); }

    /**
     * Merge another histogram. Same configuration merges exactly
     * (bucket-wise); a differently configured source is re-bucketed
     * at its representative values, which keeps count/sum/min/max
     * exact and percentiles within the coarser configuration's
     * relative error.
     */
    void merge(const Histogram &other);

    /** Discard all recorded values. */
    void reset();

  private:
    std::size_t bucketIndex(std::uint64_t value) const;
    std::uint64_t bucketUpperBound(std::size_t index) const;

    unsigned subBucketBits_;
    std::uint64_t subBucketCount_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_;
    double sum_;
    std::int64_t min_;
    std::int64_t max_;
};

} // namespace xui

#endif // XUI_STATS_HISTOGRAM_HH
