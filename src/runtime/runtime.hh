/**
 * @file
 * Aspen-like user-level runtime for the DES tier (paper §5.3).
 *
 * Worker kernel-threads are pinned one per core (as the paper
 * configures Aspen in gem5). Each worker runs uthreads from its run
 * queue, steals work when idle, and preempts at a quantum using one
 * of the paper's mechanisms:
 *  - None: run-to-completion (the head-of-line-blocking baseline);
 *  - UipiSwTimer: a dedicated timer core sends flush-based UIPIs
 *    every quantum (the Intel baseline; burns one extra core);
 *  - XuiKbTimer: each core's own KB timer delivers tracked
 *    interrupts (no timer core, cheapest receive path).
 *
 * Preemption timing follows the hardware: the (virtual) timer fires
 * every quantum of *busy* time on a core; each firing costs the
 * mechanism's receive overhead, and rotating to another uthread adds
 * a user-level context switch.
 */

#ifndef XUI_RUNTIME_RUNTIME_HH
#define XUI_RUNTIME_RUNTIME_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "des/simulation.hh"
#include "obs/metrics.hh"
#include "os/cost_model.hh"
#include "runtime/uthread.hh"

namespace xui
{

/** Preemption mechanism (Fig. 7 configurations). */
enum class PreemptMode : std::uint8_t
{
    None,
    UipiSwTimer,
    XuiKbTimer,
};

/**
 * Adaptive preemption quantum (LibPreemptible-style): the runtime
 * tracks request arrivals per fixed window and tightens the
 * KB-timer interval to `tightQuantum` while the arrival rate sits
 * at or above `highWatermark` arrivals/window, relaxing back to the
 * base quantum once it falls to `lowWatermark` or below. The rate
 * is evaluated at submit time against window boundaries, so the
 * mechanism schedules no extra DES events; disabled (the default)
 * it is one branch and the runtime is bit-identical to the
 * pre-adaptive build.
 */
struct AdaptiveQuantumConfig
{
    /** Arrival-counting window (0 = disabled). */
    Cycles window = 0;
    /** Tighten at >= this many arrivals per window. */
    std::uint64_t highWatermark = 0;
    /** Relax at <= this many arrivals per window. */
    std::uint64_t lowWatermark = 0;
    /** The tightened quantum (0 = disabled). */
    Cycles tightQuantum = 0;

    bool enabled() const { return window != 0 && tightQuantum != 0; }
};

/** The user-level runtime. */
class Runtime
{
  public:
    /** Per-worker cycle accounting. */
    struct WorkerStats
    {
        Cycles appCycles = 0;
        Cycles notifCycles = 0;
        Cycles switchCycles = 0;
        std::uint64_t completed = 0;
        std::uint64_t preemptions = 0;
        std::uint64_t timerFires = 0;
        std::uint64_t steals = 0;
    };

    /**
     * @param sim simulation context
     * @param costs calibrated mechanism costs
     * @param num_workers worker cores (excludes any timer core)
     * @param mode preemption mechanism
     * @param quantum preemption quantum in cycles
     */
    Runtime(Simulation &sim, const CostModel &costs,
            unsigned num_workers, PreemptMode mode, Cycles quantum);

    /** Enqueue a uthread (round-robin placement + wake if idle). */
    void submit(UThread t);

    /** Uthreads queued or running. */
    std::uint64_t inFlight() const { return inFlight_; }

    /** Total completions across workers. */
    std::uint64_t completed() const;

    const WorkerStats &workerStats(unsigned i) const
    {
        return workers_[i].stats;
    }

    unsigned numWorkers() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    PreemptMode mode() const { return mode_; }
    Cycles quantum() const { return quantum_; }

    /** Enable/disable the adaptive quantum (see the config). */
    void setAdaptiveQuantum(AdaptiveQuantumConfig cfg);

    /** The quantum currently in force (== quantum() when the
     *  adaptive mechanism is disabled or relaxed). */
    Cycles effectiveQuantum() const
    {
        return adaptive_.enabled() ? effQuantum_ : quantum_;
    }

    /**
     * Register "runtime.adaptive.*" counters. Null-safe like every
     * other attachMetrics in the repo.
     */
    void attachMetrics(MetricsRegistry &registry);

    /**
     * Timer-core busy cycles implied by this run (UipiSwTimer only):
     * one senduipi per worker per quantum of wall time while the
     * runtime had work.
     */
    Cycles timerCoreBusy() const { return timerCoreBusy_; }

  private:
    struct Worker
    {
        std::deque<UThread> queue;
        std::optional<UThread> current;
        bool busy = false;
        Cycles quantumPhase = 0;
        WorkerStats stats;
    };

    void dispatch(unsigned w);
    void sliceDone(unsigned w, Cycles slice);
    bool trySteal(unsigned w);
    Cycles receiveCost() const;

    Simulation &sim_;
    CostModel costs_;
    PreemptMode mode_;
    Cycles quantum_;
    std::vector<Worker> workers_;
    unsigned nextWorker_ = 0;
    std::uint64_t inFlight_ = 0;
    Cycles timerCoreBusy_ = 0;
    Rng rng_;

    // Adaptive quantum (disabled by default: zero extra events).
    AdaptiveQuantumConfig adaptive_;
    Cycles effQuantum_ = 0;
    Cycles windowStart_ = 0;
    std::uint64_t windowArrivals_ = 0;
    static void bump(Counter *c, std::uint64_t n = 1)
    {
        if (c != nullptr)
            c->inc(n);
    }
    Counter *mAdaptTightened_ = nullptr;
    Counter *mAdaptRelaxed_ = nullptr;
    Counter *mAdaptWindows_ = nullptr;
};

} // namespace xui

#endif // XUI_RUNTIME_RUNTIME_HH
