/**
 * @file
 * User-level thread (uthread) descriptor for the runtime model.
 */

#ifndef XUI_RUNTIME_UTHREAD_HH
#define XUI_RUNTIME_UTHREAD_HH

#include <cstdint>
#include <functional>

#include "des/time.hh"

namespace xui
{

/**
 * One user-level thread: a unit of work with a service demand,
 * scheduled and preempted by the Runtime. The DES tier models work
 * as time; the uthread carries identity and measurement state.
 */
struct UThread
{
    std::uint64_t id = 0;
    /** Application tag (e.g.\ GET vs SCAN). */
    int tag = 0;
    /** Total service demand in cycles. */
    Cycles totalWork = 0;
    /** Remaining service demand. */
    Cycles remaining = 0;
    /** Arrival time (latency measurement origin). */
    Cycles enqueuedAt = 0;
    /** First time on a core. */
    Cycles startedAt = 0;
    /** Completion time (0 while running). */
    Cycles finishedAt = 0;
    /** Number of times this thread was preempted. */
    unsigned preemptions = 0;
    /** Invoked on the scheduling core at completion. */
    std::function<void(const UThread &)> onComplete;
};

} // namespace xui

#endif // XUI_RUNTIME_UTHREAD_HH
