/**
 * @file
 * Reliable user-interrupt sender (graceful degradation, sender side).
 *
 * senduipi is fire-and-forget: when the receiver is descheduled (SN
 * set or the running check races) the vector parks in the UPID and
 * waits for the resume drain. Under fault injection the notification
 * IPI itself can also be dropped on the wire. ReliableSender wraps
 * Kernel::senduipi with a bounded retry-with-backoff loop so a
 * latency-sensitive sender keeps nudging the receiver instead of
 * waiting an unbounded time for the next context switch:
 *
 *  - attempt 0 sends immediately;
 *  - every non-Fast outcome schedules a retry after
 *    backoff * 2^attempt cycles;
 *  - after maxRetries attempts the sender gives up and counts a
 *    fallback — the vector is still posted, so the kernel's
 *    resume-drain slow path remains the delivery guarantee.
 *
 * Retries re-post the same vector; the UPID PIR coalesces them, so
 * the receiver observes at-least-once semantics (same as raw UIPI).
 */

#ifndef XUI_RUNTIME_SENDER_HH
#define XUI_RUNTIME_SENDER_HH

#include <cstdint>

#include "des/simulation.hh"
#include "obs/metrics.hh"
#include "os/kernel.hh"

namespace xui
{

/** Bounded retry-with-backoff wrapper around Kernel::senduipi. */
class ReliableSender
{
  public:
    struct Options
    {
        /** Total attempts (first send + retries). */
        unsigned maxAttempts = 4;
        /** Base retry delay; doubles per attempt. */
        Cycles backoff = 64;
    };

    struct Stats
    {
        /** send() calls. */
        std::uint64_t sent = 0;
        /** Attempts that delivered on the fast path. */
        std::uint64_t fastDelivered = 0;
        /** Scheduled retry attempts. */
        std::uint64_t retries = 0;
        /** Sends that exhausted retries (resume drain takes over). */
        std::uint64_t fallbacks = 0;
    };

    ReliableSender(Simulation &sim, Kernel &kernel, int uitt_index,
                   Options opts)
        : sim_(sim), kernel_(kernel), index_(uitt_index), opts_(opts)
    {
    }

    ReliableSender(Simulation &sim, Kernel &kernel, int uitt_index)
        : ReliableSender(sim, kernel, uitt_index, Options())
    {
    }

    /**
     * Post the vector; on a non-Fast outcome arm the retry loop.
     * @return the first attempt's delivery path.
     */
    DeliveryPath send();

    const Stats &stats() const { return stats_; }

    /** Register "runtime.sender.*" counters. */
    void attachMetrics(MetricsRegistry &registry);

  private:
    void scheduleRetry(unsigned attempt);

    static void bump(Counter *c, std::uint64_t n = 1)
    {
        if (c != nullptr)
            c->inc(n);
    }

    Simulation &sim_;
    Kernel &kernel_;
    int index_;
    Options opts_;
    Stats stats_;
    Counter *mSent_ = nullptr;
    Counter *mFast_ = nullptr;
    Counter *mRetries_ = nullptr;
    Counter *mFallbacks_ = nullptr;
};

} // namespace xui

#endif // XUI_RUNTIME_SENDER_HH
