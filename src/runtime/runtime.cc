#include "runtime/runtime.hh"

#include <algorithm>
#include <cassert>

namespace xui
{

Runtime::Runtime(Simulation &sim, const CostModel &costs,
                 unsigned num_workers, PreemptMode mode,
                 Cycles quantum)
    : sim_(sim), costs_(costs), mode_(mode), quantum_(quantum),
      workers_(num_workers), rng_(sim.makeRng())
{
    assert(num_workers >= 1);
    assert(mode == PreemptMode::None || quantum > 0);
}

Cycles
Runtime::receiveCost() const
{
    switch (mode_) {
      case PreemptMode::UipiSwTimer:
        return costs_.uipiFlushReceive;
      case PreemptMode::XuiKbTimer:
        return costs_.kbTimerReceive;
      case PreemptMode::None:
        return 0;
    }
    return 0;
}

void
Runtime::setAdaptiveQuantum(AdaptiveQuantumConfig cfg)
{
    adaptive_ = cfg;
    effQuantum_ = quantum_;
    windowStart_ = sim_.now();
    windowArrivals_ = 0;
}

void
Runtime::attachMetrics(MetricsRegistry &registry)
{
    mAdaptTightened_ =
        &registry.counter("runtime.adaptive.tightened");
    mAdaptRelaxed_ = &registry.counter("runtime.adaptive.relaxed");
    mAdaptWindows_ = &registry.counter("runtime.adaptive.windows");
}

void
Runtime::submit(UThread t)
{
    // Adaptive quantum: account the arrival and close out any
    // elapsed windows at their boundaries. Evaluating here (instead
    // of on a periodic event) keeps the disabled path branch-free
    // beyond this one check and adds no DES events when enabled.
    if (adaptive_.enabled()) {
        Cycles now = sim_.now();
        while (now >= windowStart_ + adaptive_.window) {
            bump(mAdaptWindows_);
            if (windowArrivals_ >= adaptive_.highWatermark &&
                effQuantum_ != adaptive_.tightQuantum) {
                effQuantum_ = adaptive_.tightQuantum;
                bump(mAdaptTightened_);
            } else if (windowArrivals_ <= adaptive_.lowWatermark &&
                       effQuantum_ != quantum_) {
                effQuantum_ = quantum_;
                bump(mAdaptRelaxed_);
            }
            windowStart_ += adaptive_.window;
            windowArrivals_ = 0;
        }
        ++windowArrivals_;
    }

    t.enqueuedAt = sim_.now();
    t.remaining = t.totalWork;
    unsigned w = nextWorker_;
    nextWorker_ = (nextWorker_ + 1) % workers_.size();
    workers_[w].queue.push_back(std::move(t));
    ++inFlight_;
    if (!workers_[w].busy) {
        workers_[w].busy = true;
        sim_.queue().scheduleAfter(0, [this, w] { dispatch(w); });
        return;
    }
    // The target is busy: wake one idle worker so it can steal.
    for (unsigned i = 0; i < workers_.size(); ++i) {
        if (!workers_[i].busy) {
            workers_[i].busy = true;
            sim_.queue().scheduleAfter(0, [this, i] { dispatch(i); });
            break;
        }
    }
}

std::uint64_t
Runtime::completed() const
{
    std::uint64_t total = 0;
    for (const auto &w : workers_)
        total += w.stats.completed;
    return total;
}

bool
Runtime::trySteal(unsigned w)
{
    // Steal half of the largest other queue (Aspen/Caladan style).
    unsigned victim = w;
    std::size_t best = 0;
    for (unsigned i = 0; i < workers_.size(); ++i) {
        if (i == w)
            continue;
        if (workers_[i].queue.size() > best) {
            best = workers_[i].queue.size();
            victim = i;
        }
    }
    if (best == 0)
        return false;
    std::size_t take = (best + 1) / 2;
    for (std::size_t i = 0; i < take; ++i) {
        workers_[w].queue.push_back(
            std::move(workers_[victim].queue.back()));
        workers_[victim].queue.pop_back();
    }
    ++workers_[w].stats.steals;
    return true;
}

void
Runtime::dispatch(unsigned w)
{
    Worker &worker = workers_[w];
    if (!worker.current) {
        if (worker.queue.empty() && !trySteal(w)) {
            worker.busy = false;
            // Idle cores disarm their timer (set_timer on resume).
            worker.quantumPhase = 0;
            return;
        }
        worker.current = std::move(worker.queue.front());
        worker.queue.pop_front();
        if (worker.current->startedAt == 0)
            worker.current->startedAt = sim_.now();
    }

    UThread &t = *worker.current;
    Cycles slice = t.remaining;
    if (mode_ != PreemptMode::None) {
        // A quantum that tightened mid-slice can leave the phase at
        // or past the new boundary: fire on the next cycle.
        Cycles eq = effectiveQuantum();
        Cycles until_fire =
            eq > worker.quantumPhase ? eq - worker.quantumPhase : 1;
        slice = std::min(slice, until_fire);
    }
    assert(slice > 0);
    sim_.queue().scheduleAfter(slice,
                               [this, w, slice] { sliceDone(w, slice); });
}

void
Runtime::sliceDone(unsigned w, Cycles slice)
{
    Worker &worker = workers_[w];
    assert(worker.current);
    UThread &t = *worker.current;

    worker.stats.appCycles += slice;
    t.remaining -= slice;
    worker.quantumPhase += slice;

    Cycles overhead = 0;
    bool fired = false;
    if (mode_ != PreemptMode::None &&
        worker.quantumPhase >= effectiveQuantum()) {
        // The (KB or software) timer fires: pay the receive cost.
        worker.quantumPhase = 0;
        ++worker.stats.timerFires;
        fired = true;
        overhead += receiveCost();
        worker.stats.notifCycles += receiveCost();
        if (mode_ == PreemptMode::UipiSwTimer)
            timerCoreBusy_ += costs_.senduipiCost;
    }

    if (t.remaining == 0) {
        t.finishedAt = sim_.now();
        if (t.onComplete)
            t.onComplete(t);
        ++worker.stats.completed;
        --inFlight_;
        worker.current.reset();
        if (!worker.queue.empty() || mode_ != PreemptMode::None) {
            // Scheduler entry to pick the next thread.
            overhead += costs_.userContextSwitch;
            worker.stats.switchCycles += costs_.userContextSwitch;
        }
    } else if (fired && !worker.queue.empty()) {
        // Preempt: rotate to the queue tail.
        ++t.preemptions;
        ++worker.stats.preemptions;
        overhead += costs_.userContextSwitch;
        worker.stats.switchCycles += costs_.userContextSwitch;
        worker.queue.push_back(std::move(t));
        worker.current.reset();
    }
    // else: keep running the same thread (timer fired with an empty
    // queue, or mid-quantum completion of the slice).

    if (overhead > 0) {
        sim_.queue().scheduleAfter(overhead,
                                   [this, w] { dispatch(w); });
    } else {
        dispatch(w);
    }
}

} // namespace xui
