#include "runtime/sender.hh"

namespace xui
{

DeliveryPath
ReliableSender::send()
{
    ++stats_.sent;
    bump(mSent_);
    DeliveryPath path = kernel_.senduipi(index_);
    if (path == DeliveryPath::Fast) {
        ++stats_.fastDelivered;
        bump(mFast_);
        return path;
    }
    if (opts_.maxAttempts > 1)
        scheduleRetry(1);
    else {
        ++stats_.fallbacks;
        bump(mFallbacks_);
    }
    return path;
}

void
ReliableSender::scheduleRetry(unsigned attempt)
{
    Cycles delay = opts_.backoff << (attempt - 1);
    sim_.queue().scheduleAfter(delay, [this, attempt] {
        ++stats_.retries;
        bump(mRetries_);
        DeliveryPath path = kernel_.senduipi(index_);
        if (path == DeliveryPath::Fast) {
            ++stats_.fastDelivered;
            bump(mFast_);
            return;
        }
        if (attempt + 1 < opts_.maxAttempts) {
            scheduleRetry(attempt + 1);
        } else {
            // Out of attempts: the vector is posted in the UPID, so
            // the kernel's resume-drain slow path still delivers it.
            ++stats_.fallbacks;
            bump(mFallbacks_);
        }
    });
}

void
ReliableSender::attachMetrics(MetricsRegistry &registry)
{
    mSent_ = &registry.counter("runtime.sender.sent");
    mFast_ = &registry.counter("runtime.sender.fast");
    mRetries_ = &registry.counter("runtime.sender.retries");
    mFallbacks_ = &registry.counter("runtime.sender.fallbacks");
}

} // namespace xui
