#include "verify/differential.hh"

#include <sstream>

namespace xui
{

namespace
{

const char *
strategyName(DeliveryStrategy s)
{
    switch (s) {
      case DeliveryStrategy::Flush:
        return "flush";
      case DeliveryStrategy::Drain:
        return "drain";
      case DeliveryStrategy::Tracked:
        return "tracked";
    }
    return "?";
}

void
collectModeViolations(const ScenarioResult &r, DeliveryStrategy s,
                      std::vector<std::string> &out)
{
    for (const std::string &v : r.violations) {
        std::ostringstream os;
        os << strategyName(s) << ": " << v;
        out.push_back(os.str());
    }
}

} // namespace

DifferentialReport
runDifferential(const ScenarioConfig &base,
                const DifferentialOptions &opts)
{
    DifferentialReport rep;

    ScenarioConfig cfg = base;
    cfg.strategy = DeliveryStrategy::Flush;
    rep.flush = runScenario(cfg);
    cfg.strategy = DeliveryStrategy::Drain;
    rep.drain = runScenario(cfg);
    cfg.strategy = DeliveryStrategy::Tracked;
    rep.tracked = runScenario(cfg);

    collectModeViolations(rep.flush, DeliveryStrategy::Flush,
                          rep.violations);
    collectModeViolations(rep.drain, DeliveryStrategy::Drain,
                          rep.violations);
    collectModeViolations(rep.tracked, DeliveryStrategy::Tracked,
                          rep.violations);

    const struct
    {
        const char *name;
        const ScenarioResult *a;
        const ScenarioResult *b;
    } pairs[] = {
        {"flush vs drain", &rep.flush, &rep.drain},
        {"flush vs tracked", &rep.flush, &rep.tracked},
        {"drain vs tracked", &rep.drain, &rep.tracked},
    };
    for (const auto &p : pairs) {
        ArchEquivalenceReport eq =
            checkArchEquivalence(*p.a, *p.b, opts.minPrefix);
        if (!eq.ok) {
            std::ostringstream os;
            os << p.name << ": " << eq.message;
            rep.violations.push_back(os.str());
        }
    }

    if (rep.flush.delivered >= opts.minDeliveries &&
        rep.tracked.delivered >= opts.minDeliveries) {
        double bound = rep.flush.meanHandlerStartLatency *
                opts.latencySlackFactor +
            opts.latencySlackCycles;
        if (rep.tracked.meanHandlerStartLatency > bound) {
            std::ostringstream os;
            os << "latency ordering violated: tracked mean "
               << "handler-start latency "
               << rep.tracked.meanHandlerStartLatency
               << " > flush bound " << bound << " (flush mean "
               << rep.flush.meanHandlerStartLatency << ")";
            rep.violations.push_back(os.str());
        }
    }

    return rep;
}

} // namespace xui
