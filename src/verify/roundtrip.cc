#include "verify/roundtrip.hh"

#include <sstream>

#include "exec/sweep.hh"

namespace xui
{

namespace
{

constexpr DeliveryStrategy kStrategies[] = {
    DeliveryStrategy::Flush,
    DeliveryStrategy::Drain,
    DeliveryStrategy::Tracked,
};

const char *
strategyName(DeliveryStrategy s)
{
    switch (s) {
      case DeliveryStrategy::Flush:
        return "flush";
      case DeliveryStrategy::Drain:
        return "drain";
      case DeliveryStrategy::Tracked:
        return "tracked";
    }
    return "?";
}

} // namespace

ScenarioConfig
goldenCorpusConfig(std::uint64_t seed, DeliveryStrategy strategy)
{
    ScenarioConfig cfg;
    cfg.programSeed = seed;
    cfg.systemSeed = seed * 1000003 + 17;
    cfg.strategy = strategy;
    cfg.program.withSafepoints = (seed % 3) == 0;
    cfg.program.deterministicControl = (seed % 2) == 0;
    cfg.safepointMode = cfg.program.withSafepoints &&
                        strategy == DeliveryStrategy::Tracked;
    cfg.timerPeriod = 600;
    cfg.targetInsts = 4000;
    cfg.extraCycles = 4000;
    return cfg;
}

CorpusRoundTripSummary
runCorpusRoundTrip(const CorpusRoundTripOptions &opts)
{
    CorpusRoundTripSummary sum;
    const std::size_t n =
        static_cast<std::size_t>(opts.seeds) * 3;
    sum.rows = n;

    struct Row
    {
        std::uint64_t seed = 0;
        DeliveryStrategy strategy = DeliveryStrategy::Flush;
        RoundTripReport report;
    };

    auto runRow = [&opts](std::size_t i) {
        Row row;
        row.seed = i / 3 + 1;
        row.strategy = kStrategies[i % 3];
        std::string path;
        if (!opts.snapshotDir.empty()) {
            // Row-unique path: rows running concurrently must never
            // share a snapshot file (or its .tmp sibling).
            std::ostringstream os;
            os << opts.snapshotDir << "/roundtrip_s" << row.seed
               << "_" << strategyName(row.strategy) << ".ckpt";
            path = os.str();
        }
        row.report = checkRoundTrip(
            goldenCorpusConfig(row.seed, row.strategy),
            opts.splitCycles, path);
        return row;
    };

    exec::sweepReduce(
        n, opts.jobs, runRow, [&sum](std::size_t, Row &&row) {
            if (row.report.ok) {
                ++sum.passed;
                return;
            }
            std::ostringstream os;
            os << "seed " << row.seed << " "
               << strategyName(row.strategy) << ": "
               << row.report.message;
            sum.failures.push_back(os.str());
        });
    return sum;
}

} // namespace xui
