/**
 * @file
 * The xui_verify corpus sweep as a library: N fuzz programs × K
 * system seeds, each pair run through the double-run determinism
 * check and the three-way delivery-mode differential, plus the
 * cross-seed architectural-equivalence comparison against each
 * program's first seed.
 *
 * The sweep fans the (program, seed) grid out across a thread pool
 * (exec::sweep) — every job owns its own UarchSystem, RNG streams,
 * digest tracer, and MetricsRegistry — and reduces in job-index
 * order, so the summary (counts, floating-point latency means,
 * failure list, merged metrics snapshot, rendered table) is
 * bit-identical for every `jobs` value. In particular the failure
 * list is always ordered by (program, seed) with the per-pair
 * check order fixed, so the *first* reported divergence is the
 * lowest failing pair no matter which job finished first.
 */

#ifndef XUI_VERIFY_CORPUS_HH
#define XUI_VERIFY_CORPUS_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hh"
#include "verify/differential.hh"
#include "verify/scenario.hh"

namespace xui
{

/** The corpus grid and per-scenario knobs. */
struct CorpusOptions
{
    std::uint64_t programs = 20;
    std::uint64_t seeds = 2;
    std::uint64_t insts = 20000;
    double timerUs = 2.0;
    bool safepoints = false;
    /** Worker threads for the sweep (0 = hardware concurrency). */
    unsigned jobs = 1;
};

/** Everything one (program, seed) job produces. */
struct CorpusPairOutcome
{
    DeterminismReport det;
    DifferentialReport diff;
};

/**
 * Seam for tests: runs one (program, seed) scenario pair. The
 * default (empty function) runs checkDeterminism + runDifferential
 * for real. A custom runner must be safe to call concurrently when
 * jobs > 1.
 */
using CorpusPairRunner =
    std::function<CorpusPairOutcome(const ScenarioConfig &)>;

/** Aggregated sweep outcome, reduced in (program, seed) order. */
struct CorpusSummary
{
    std::uint64_t runs = 0;
    std::uint64_t determinismFails = 0;
    std::uint64_t differentialFails = 0;
    std::uint64_t crossSeedFails = 0;
    /** Ordered by (program, seed); first entry is the lowest
     *  failing pair. */
    std::vector<std::string> failures;

    /** Latency-mean accumulators (summed in job-index order). */
    double flushLat = 0.0;
    double drainLat = 0.0;
    double trackedLat = 0.0;
    std::uint64_t latSamples = 0;

    /** Per-job registries merged in job-index order. */
    std::unique_ptr<MetricsRegistry> metrics;

    bool ok() const { return failures.empty(); }
};

/** The ScenarioConfig the corpus runs for (program p, seed s). */
ScenarioConfig corpusPairConfig(const CorpusOptions &opt,
                                std::uint64_t program,
                                std::uint64_t seed);

/**
 * Run the full corpus sweep.
 * @param runner optional per-pair runner override (tests).
 */
CorpusSummary runVerifyCorpus(const CorpusOptions &opt,
                              const CorpusPairRunner &runner = {});

/**
 * Render the summary exactly as the xui_verify CLI prints it:
 * check table, failure list (capped at 40 lines unless `quiet`),
 * and the PASS/FAIL verdict.
 */
std::string renderCorpusSummary(const CorpusOptions &opt,
                                const CorpusSummary &summary,
                                bool quiet = false);

/** The merged metrics snapshot as JSON (deterministic). */
std::string corpusMetricsJson(const CorpusSummary &summary);

} // namespace xui

#endif // XUI_VERIFY_CORPUS_HH
