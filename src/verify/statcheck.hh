/**
 * @file
 * Statistical-equivalence checker for sampled-detail (fast-forward)
 * runs. Exact mode is digest-guarded: any drift is a bug. Sampled
 * mode deliberately trades cycle-exactness for speed, so its
 * contract is statistical instead — per-source delivery-latency
 * distributions (raise -> delivery-commit) must stay within a
 * percentage tolerance of the full-detail run. Every interrupt
 * lifecycle executes inside a detail window, so the latencies being
 * compared are all detailed-phase measurements; the checker is
 * probing whether the fast-forwarded gaps biased the state the
 * windows re-enter with (pipeline warmth, cache/predictor state,
 * timer phase), not whether the functional loop mis-times events.
 */

#ifndef XUI_VERIFY_STATCHECK_HH
#define XUI_VERIFY_STATCHECK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "uarch/ooo_core.hh"

namespace xui
{

/**
 * Nearest-rank percentiles of raise -> delivery-commit latency for
 * one interrupt source. Only records whose delivery committed are
 * counted (a run that ends mid-handler drops the open record on
 * both sides).
 */
struct LatencyDist
{
    std::uint64_t count = 0;
    double p50 = 0.0;
    double p99 = 0.0;
    double mean = 0.0;
};

/** Distribution over `records` restricted to `source`. */
LatencyDist deliveryLatencyDist(const std::vector<IntrRecord> &records,
                                IntrSource source);

/** Per-source comparison row of a sampled run against detail. */
struct SourceDelta
{
    IntrSource source{};
    LatencyDist detail;
    LatencyDist sampled;
    /** Signed percentage deltas, sampled relative to detail. */
    double p50DeltaPct = 0.0;
    double p99DeltaPct = 0.0;
    double countDeltaPct = 0.0;
    bool within = false;
};

/** Whole-run statistical-equivalence verdict. */
struct StatEquivalenceReport
{
    bool ok = false;
    /** Largest absolute p50 / p99 delta over all compared sources. */
    double worstP50Pct = 0.0;
    double worstP99Pct = 0.0;
    std::vector<SourceDelta> sources;
    /** Human-readable failure detail (empty when ok). */
    std::string message;
};

/**
 * Compare a sampled (fast-forward) run's interrupt records against
 * the full-detail run of the same workload. Every source that
 * delivered at least `minCount` interrupts in the detail run is
 * compared; its p50 and p99 must be within `tolPct` percent and its
 * delivery count within `2 * tolPct` percent (counts drift when the
 * IPC model stretches or shrinks the inter-arrival work, so the
 * count gate is looser but still catches lost or duplicated
 * streams). A source present in detail but absent from the sampled
 * run fails outright. Latencies are deterministic functions of the
 * seeds, so the verdict is host-independent and safe to gate CI on.
 */
StatEquivalenceReport
checkStatEquivalence(const std::vector<IntrRecord> &detail,
                     const std::vector<IntrRecord> &sampled,
                     double tolPct, std::uint64_t minCount = 8);

} // namespace xui

#endif // XUI_VERIFY_STATCHECK_HH
