/**
 * @file
 * DigestTracer — folds every pipeline trace event into an
 * order-sensitive 64-bit digest (FNV-1a over the packed event
 * words). Two runs of the simulator are cycle-identical iff their
 * digests match, which turns "is the model deterministic?" into a
 * single integer comparison instead of a gigabyte trace diff.
 *
 * Alongside the full timing digest it maintains an *architectural*
 * digest folding only the commit-order program PC stream (microcode
 * commits excluded). The architectural digest is the
 * timing-independent fingerprint used by the cross-mode differential
 * checks: flush, drain, and tracked delivery may commit the same
 * program on wildly different cycles, but the main-code PC sequence
 * they retire must be identical.
 */

#ifndef XUI_VERIFY_DIGEST_TRACER_HH
#define XUI_VERIFY_DIGEST_TRACER_HH

#include <cstdint>
#include <vector>

#include "ckpt/codec.hh"
#include "stats/digest.hh"
#include "uarch/trace.hh"

namespace xui
{

/** Digesting trace sink (attach via OooCore/UarchSystem setTracer). */
class DigestTracer : public Tracer
{
  public:
    void event(TraceEvent ev, Cycles cycle, std::uint64_t seq,
               std::uint32_t pc, OpClass cls) override;

    /** Digest over every event including cycle timestamps. */
    std::uint64_t fullDigest() const { return full_.value(); }

    /**
     * Digest over the commit-order program PC stream only (no
     * cycles, no microcode): equal across runs that retire the same
     * architectural instruction sequence regardless of timing.
     */
    std::uint64_t archDigest() const { return arch_.value(); }

    std::uint64_t eventCount() const { return events_; }

    /** Commits with a program PC (i.e. excluding microcode uops). */
    std::uint64_t programCommitCount() const { return commits_; }

    /** Per-event-kind counts, indexed by TraceEvent. */
    const std::uint64_t *eventCounts() const { return counts_; }

    /**
     * Optional sink collecting the commit-order program PC stream
     * (one entry per committed non-microcode uop). Not owned;
     * nullptr (default) disables collection.
     */
    void collectCommitPcs(std::vector<std::uint32_t> *sink)
    {
        commitPcs_ = sink;
    }

    void reset();

    /**
     * Checkpoint the digest mid-stream (FNV-1a is resumable from
     * (hash, bytes)). The commit-PC sink pointer is harness-owned
     * and reattached after load; its *contents* are saved by the
     * harness alongside this state.
     */
    void saveState(ckpt::Writer &w) const
    {
        w.u64(full_.value());
        w.u64(full_.bytes());
        w.u64(arch_.value());
        w.u64(arch_.bytes());
        w.u64(events_);
        w.u64(commits_);
        for (std::uint64_t c : counts_)
            w.u64(c);
    }

    bool loadState(ckpt::Reader &r)
    {
        std::uint64_t hash = 0, bytes = 0;
        if (!r.u64(hash) || !r.u64(bytes))
            return false;
        full_.restore(hash, bytes);
        if (!r.u64(hash) || !r.u64(bytes))
            return false;
        arch_.restore(hash, bytes);
        if (!r.u64(events_) || !r.u64(commits_))
            return false;
        for (std::uint64_t &c : counts_)
            if (!r.u64(c))
                return false;
        return true;
    }

  private:
    static constexpr std::uint32_t kUcodePc = 0xffffffff;

    Fnv1a full_;
    Fnv1a arch_;
    std::uint64_t events_ = 0;
    std::uint64_t commits_ = 0;
    std::uint64_t counts_[kNumTraceEvents] = {};
    std::vector<std::uint32_t> *commitPcs_ = nullptr;
};

} // namespace xui

#endif // XUI_VERIFY_DIGEST_TRACER_HH
