/**
 * @file
 * Golden-corpus checkpoint round-trip sweep: prove that a run
 * interrupted at an arbitrary cycle boundary and resumed from a
 * snapshot is bit-identical (full timing digest, architectural
 * digest, event count, final cycle) to the uninterrupted run — for
 * every row of the 96-row golden corpus pinned by the determinism
 * tests (32 seeds x 3 delivery strategies).
 *
 * Each row optionally drives its checkpoint through the on-disk
 * crash-consistent snapshot engine (ckpt/snapshot.hh) under a
 * row-unique path, so both the byte codec and the file format are
 * exercised; rows are independent and fan out on exec::sweep, so
 * results are bit-identical for every --jobs value.
 */

#ifndef XUI_VERIFY_ROUNDTRIP_HH
#define XUI_VERIFY_ROUNDTRIP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "verify/scenario_run.hh"

namespace xui
{

/** Seed count of the golden corpus (rows = seeds x 3 strategies). */
constexpr unsigned kGoldenCorpusSeeds = 32;

/**
 * The fixed recipe the golden-corpus rows were captured with — kept
 * in lockstep with corpusConfig() in tests/test_determinism.cc.
 */
ScenarioConfig goldenCorpusConfig(std::uint64_t seed,
                                  DeliveryStrategy strategy);

struct CorpusRoundTripOptions
{
    /** Seeds 1..seeds, three strategies each. */
    unsigned seeds = kGoldenCorpusSeeds;
    /** Worker threads for the row fan-out (0 = auto). */
    unsigned jobs = 1;
    /**
     * Directory for the per-row on-disk snapshots; empty keeps the
     * round-trip in memory (codec only, no file engine).
     */
    std::string snapshotDir;
    /** Absolute split cycle; 0 = half of each row's reference run. */
    Cycles splitCycles = 0;
};

struct CorpusRoundTripSummary
{
    std::size_t rows = 0;
    std::size_t passed = 0;
    /** One line per divergent/failed row, in row order. */
    std::vector<std::string> failures;

    bool ok() const { return rows > 0 && failures.empty(); }
};

/** Run the round-trip check over the whole corpus. */
CorpusRoundTripSummary
runCorpusRoundTrip(const CorpusRoundTripOptions &opts);

} // namespace xui

#endif // XUI_VERIFY_ROUNDTRIP_HH
