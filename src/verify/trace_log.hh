/**
 * @file
 * Compact binary pipeline-trace recording and replay comparison.
 *
 * A TraceLog holds the full event stream of a run as packed 22-byte
 * records and serializes to a versioned binary blob ("golden
 * trace"). LogTracer appends to a log while the simulator runs;
 * ReplayTracer re-attaches a previously recorded log to a fresh run
 * and reports the first divergence (index plus a human-readable
 * expected/actual rendering). Together they give golden-trace
 * regression testing: record once on a known-good build, replay on
 * every future build, and any behavioural drift — one cycle, one
 * reordered micro-op — is pinpointed rather than just detected.
 */

#ifndef XUI_VERIFY_TRACE_LOG_HH
#define XUI_VERIFY_TRACE_LOG_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "uarch/trace.hh"

namespace xui
{

/** One packed trace record. */
struct TraceRecord
{
    Cycles cycle = 0;
    std::uint64_t seq = 0;
    std::uint32_t pc = 0;
    std::uint8_t ev = 0;
    std::uint8_t cls = 0;

    bool operator==(const TraceRecord &) const = default;
};

/** In-memory event stream with binary save/load. */
class TraceLog
{
  public:
    /** File magic: "XUITRC" + 2-byte version. */
    static constexpr char kMagic[8] = {'X', 'U', 'I', 'T',
                                       'R', 'C', '0', '1'};

    void append(const TraceRecord &r) { records_.push_back(r); }

    std::size_t size() const { return records_.size(); }
    bool empty() const { return records_.empty(); }
    const TraceRecord &at(std::size_t i) const { return records_[i]; }
    const std::vector<TraceRecord> &records() const
    {
        return records_;
    }
    std::vector<TraceRecord> &records() { return records_; }

    void clear() { records_.clear(); }

    /** Order-sensitive digest of the whole stream. */
    std::uint64_t digest() const;

    /**
     * Serialize to a binary stream (magic, count, packed records).
     * @return false on stream failure.
     */
    bool save(std::ostream &os) const;

    /**
     * Replace contents from a binary stream.
     * @return false on bad magic/version, truncation, or stream
     *         failure (contents are cleared in that case).
     */
    bool load(std::istream &is);

    /** Convenience file wrappers. */
    bool saveFile(const std::string &path) const;
    bool loadFile(const std::string &path);

  private:
    std::vector<TraceRecord> records_;
};

/** Tracer sink appending every event to a TraceLog. */
class LogTracer : public Tracer
{
  public:
    explicit LogTracer(TraceLog &log) : log_(log) {}

    void event(TraceEvent ev, Cycles cycle, std::uint64_t seq,
               std::uint32_t pc, OpClass cls) override;

  private:
    TraceLog &log_;
};

/**
 * Tracer sink comparing a live run against a recorded log.
 * Divergence is latched at the first mismatching (or extra) event;
 * later events are still counted but not re-compared so the report
 * names the root divergence, not the noise after it.
 */
class ReplayTracer : public Tracer
{
  public:
    /** @param golden the recorded reference stream (not owned). */
    explicit ReplayTracer(const TraceLog &golden) : golden_(golden) {}

    void event(TraceEvent ev, Cycles cycle, std::uint64_t seq,
               std::uint32_t pc, OpClass cls) override;

    /**
     * True when every live event matched the golden log and the
     * live stream is exactly as long as the golden one. Call after
     * the run; a live stream that ended short also fails.
     */
    bool ok() const
    {
        return !diverged_ && position_ == golden_.size();
    }

    /** True when some prefix diverged (regardless of lengths). */
    bool diverged() const { return diverged_; }

    /** Index of the first divergent event (valid when diverged()). */
    std::size_t divergenceIndex() const { return divergenceIndex_; }

    /** Events received from the live run. */
    std::size_t received() const { return received_; }

    /** Human-readable expected-vs-actual line (empty when ok). */
    std::string message() const;

  private:
    const TraceLog &golden_;
    std::size_t position_ = 0;
    std::size_t received_ = 0;
    bool diverged_ = false;
    std::size_t divergenceIndex_ = 0;
    TraceRecord expected_;
    TraceRecord actual_;
};

} // namespace xui

#endif // XUI_VERIFY_TRACE_LOG_HH
