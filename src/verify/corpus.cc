#include "verify/corpus.hh"

#include <cmath>
#include <sstream>
#include <utility>

#include "exec/sweep.hh"
#include "stats/table.hh"

namespace xui
{

namespace
{

/** Everything one (program, seed) job hands to the reduction. */
struct PairJob
{
    CorpusPairOutcome outcome;
    std::unique_ptr<MetricsRegistry> metrics;
};

/**
 * The per-job metrics snapshot: fixed shape (every metric created
 * whether or not it fires) so the merged JSON is structurally
 * identical across runs and thread counts.
 */
std::unique_ptr<MetricsRegistry>
makePairMetrics(const CorpusPairOutcome &o)
{
    auto reg = std::make_unique<MetricsRegistry>();
    reg->counter("corpus.runs").inc();
    Counter &det = reg->counter("corpus.determinism_fails");
    if (!o.det.ok)
        det.inc();
    Counter &diff = reg->counter("corpus.differential_fails");
    if (!o.diff.ok())
        diff.inc();
    reg->counter("corpus.deliveries.flush")
        .inc(o.diff.flush.delivered);
    reg->counter("corpus.deliveries.drain")
        .inc(o.diff.drain.delivered);
    reg->counter("corpus.deliveries.tracked")
        .inc(o.diff.tracked.delivered);
    LatencyRecorder &lf =
        reg->latency("corpus.handler_start.flush");
    LatencyRecorder &ld =
        reg->latency("corpus.handler_start.drain");
    LatencyRecorder &lt =
        reg->latency("corpus.handler_start.tracked");
    if (o.diff.flush.delivered > 0 && o.diff.drain.delivered > 0 &&
        o.diff.tracked.delivered > 0) {
        lf.record(std::llround(o.diff.flush.meanHandlerStartLatency));
        ld.record(std::llround(o.diff.drain.meanHandlerStartLatency));
        lt.record(
            std::llround(o.diff.tracked.meanHandlerStartLatency));
    }
    return reg;
}

} // namespace

ScenarioConfig
corpusPairConfig(const CorpusOptions &opt, std::uint64_t program,
                 std::uint64_t seed)
{
    ScenarioConfig cfg;
    // Offset so program 0 differs from the suite's unit tests.
    cfg.programSeed = 1000 + program;
    cfg.systemSeed = 1 + seed;
    cfg.program.deterministicControl = true;
    cfg.program.withSafepoints = opt.safepoints;
    cfg.safepointMode = opt.safepoints;
    cfg.timerPeriod = usToCycles(opt.timerUs);
    cfg.targetInsts = opt.insts;
    return cfg;
}

CorpusSummary
runVerifyCorpus(const CorpusOptions &opt,
                const CorpusPairRunner &runner)
{
    CorpusPairRunner run_pair = runner;
    if (!run_pair) {
        run_pair = [](const ScenarioConfig &cfg) {
            CorpusPairOutcome o;
            o.det = checkDeterminism(cfg);
            o.diff = runDifferential(cfg);
            return o;
        };
    }

    CorpusSummary sum;
    sum.metrics = std::make_unique<MetricsRegistry>();
    sum.metrics->counter("corpus.cross_seed_fails");

    const std::size_t n =
        static_cast<std::size_t>(opt.programs * opt.seeds);
    // Job index i maps to program i / seeds, seed i % seeds, so the
    // reduction walks the same (p, s) lexicographic order as the
    // legacy serial loop.
    ScenarioResult first_seed_tracked;
    exec::sweepReduce(
        n, opt.jobs,
        [&](std::size_t i) {
            const std::uint64_t p = i / opt.seeds;
            const std::uint64_t s = i % opt.seeds;
            PairJob job;
            job.outcome = run_pair(corpusPairConfig(opt, p, s));
            job.metrics = makePairMetrics(job.outcome);
            return job;
        },
        [&](std::size_t i, PairJob &&job) {
            const std::uint64_t program_seed = 1000 + i / opt.seeds;
            const std::uint64_t system_seed = 1 + i % opt.seeds;
            const std::uint64_t s = i % opt.seeds;
            ++sum.runs;
            sum.metrics->merge(*job.metrics);

            const DeterminismReport &det = job.outcome.det;
            if (!det.ok) {
                ++sum.determinismFails;
                sum.failures.push_back(
                    "program " + std::to_string(program_seed) +
                    " seed " + std::to_string(system_seed) + ": " +
                    det.message);
            }

            DifferentialReport &diff = job.outcome.diff;
            if (!diff.ok()) {
                ++sum.differentialFails;
                for (const std::string &v : diff.violations)
                    sum.failures.push_back(
                        "program " + std::to_string(program_seed) +
                        " seed " + std::to_string(system_seed) +
                        ": " + v);
            }
            if (diff.flush.delivered > 0 &&
                diff.drain.delivered > 0 &&
                diff.tracked.delivered > 0) {
                sum.flushLat += diff.flush.meanHandlerStartLatency;
                sum.drainLat += diff.drain.meanHandlerStartLatency;
                sum.trackedLat +=
                    diff.tracked.meanHandlerStartLatency;
                ++sum.latSamples;
            }

            if (s == 0) {
                first_seed_tracked = std::move(diff.tracked);
            } else {
                ArchEquivalenceReport eq = checkArchEquivalence(
                    first_seed_tracked, diff.tracked, 1000);
                if (!eq.ok) {
                    ++sum.crossSeedFails;
                    sum.metrics
                        ->counter("corpus.cross_seed_fails")
                        .inc();
                    sum.failures.push_back(
                        "program " + std::to_string(program_seed) +
                        " seeds 1 vs " +
                        std::to_string(system_seed) +
                        " (tracked): " + eq.message);
                }
            }
        });
    return sum;
}

std::string
renderCorpusSummary(const CorpusOptions &opt,
                    const CorpusSummary &sum, bool quiet)
{
    std::ostringstream os;
    TablePrinter t("xui_verify: " + std::to_string(opt.programs) +
                   " programs x " + std::to_string(opt.seeds) +
                   " seeds x 3 delivery modes");
    t.setHeader({"Check", "Runs", "Failures"});
    t.addRow({"determinism (double run)",
              TablePrinter::integer(
                  static_cast<std::int64_t>(sum.runs)),
              TablePrinter::integer(static_cast<std::int64_t>(
                  sum.determinismFails))});
    t.addRow({"cross-mode differential",
              TablePrinter::integer(
                  static_cast<std::int64_t>(sum.runs)),
              TablePrinter::integer(static_cast<std::int64_t>(
                  sum.differentialFails))});
    t.addRow({"cross-seed arch equivalence",
              TablePrinter::integer(static_cast<std::int64_t>(
                  opt.programs *
                  (opt.seeds > 0 ? opt.seeds - 1 : 0))),
              TablePrinter::integer(static_cast<std::int64_t>(
                  sum.crossSeedFails))});
    t.addRule();
    if (sum.latSamples > 0) {
        double n = static_cast<double>(sum.latSamples);
        t.addRow({"mean handler-start latency (flush)",
                  TablePrinter::num(sum.flushLat / n, 1), "cycles"});
        t.addRow({"mean handler-start latency (drain)",
                  TablePrinter::num(sum.drainLat / n, 1), "cycles"});
        t.addRow({"mean handler-start latency (tracked)",
                  TablePrinter::num(sum.trackedLat / n, 1),
                  "cycles"});
    }
    t.print(os);

    if (!sum.failures.empty()) {
        os << "\nFailures:\n";
        std::size_t shown = 0;
        for (const std::string &f : sum.failures) {
            os << "  " << f << '\n';
            if (++shown >= 40 && !quiet) {
                os << "  ... (" << sum.failures.size() - shown
                   << " more)\n";
                break;
            }
        }
        os << "\nFAIL\n";
    } else {
        os << "\nPASS\n";
    }
    return os.str();
}

std::string
corpusMetricsJson(const CorpusSummary &summary)
{
    std::ostringstream os;
    if (summary.metrics)
        summary.metrics->writeJson(os);
    return os.str();
}

} // namespace xui
