#include "verify/bound.hh"

#include <algorithm>
#include <sstream>

namespace xui
{

namespace
{

/** Fixed-point iteration cap: past this the system is overloaded. */
constexpr unsigned kMaxIterations = 256;
/** Response-time ceiling: past this the recurrence diverged. */
constexpr Cycles kDivergenceCap = Cycles(1) << 40;

} // namespace

std::vector<DeliveryBound>
computeDeliveryBounds(const CostModel &costs,
                      const std::vector<VectorProfile> &profiles)
{
    std::vector<DeliveryBound> out;
    out.reserve(profiles.size());

    for (const VectorProfile &p : profiles) {
        DeliveryBound b;
        b.vector = p.vector;
        b.priority = p.priority;

        // Blocking term B(P): the longest lower-priority frame the
        // arrival can find occupying the core (conservative: the
        // whole frame, which dominates the engine's actual
        // save-window blocking and any in-flight restore), plus one
        // full frame per equal-priority co-tenant (FIFO, never
        // preempted; sporadic assumption — at most one pending
        // arrival each), plus the save/restore non-preemptible
        // windows, the vector's own moderation window, and the
        // wire/receive path upstream of the engine.
        Cycles max_lower = 0;
        Cycles equal_sum = 0;
        for (const VectorProfile &q : profiles) {
            if (q.vector == p.vector)
                continue;
            if (q.priority < p.priority)
                max_lower = std::max(max_lower, q.handlerCost);
            else if (q.priority == p.priority)
                equal_sum += q.handlerCost;
        }
        Cycles blocking = max_lower + equal_sum +
            costs.preemptSave + costs.preemptRestore +
            p.moderationWindow + costs.ipiWire +
            costs.uipiTrackedReceive;
        b.blocking = blocking;

        // Response-time recurrence: each strictly-higher-priority
        // co-tenant preempts (save + handler + restore) once per
        // release inside the busy window; sporadic releases are
        // 1 + floor(R / T) (a release just before the arrival plus
        // one per min-gap), or exactly one when no gap is declared.
        Cycles r = blocking;
        bool converged = false;
        for (unsigned iter = 0; iter < kMaxIterations; ++iter) {
            Cycles interference = 0;
            for (const VectorProfile &q : profiles) {
                if (q.vector == p.vector ||
                    q.priority <= p.priority)
                    continue;
                Cycles releases = q.minInterArrival > 0
                    ? 1 + r / q.minInterArrival
                    : 1;
                interference += releases *
                    (costs.preemptSave + q.handlerCost +
                     costs.preemptRestore);
            }
            Cycles next = blocking + interference;
            if (next == r) {
                converged = true;
                break;
            }
            r = next;
            if (r > kDivergenceCap)
                break;
        }
        b.bound = r;
        b.interference = r - blocking;
        b.converged = converged && r <= kDivergenceCap;
        out.push_back(b);
    }
    return out;
}

void
BoundChecker::setBound(unsigned vector, unsigned priority,
                       Cycles bound)
{
    PerVector &v = vectors_[vector];
    v.priority = priority;
    v.bound = bound;
    v.bounded = true;
}

void
BoundChecker::onRaise(unsigned vector, unsigned priority,
                      Cycles now)
{
    PerVector &v = vectors_[vector];
    if (!v.bounded)
        v.priority = priority;
    v.outstanding.push_back(now);
}

void
BoundChecker::onDeliver(unsigned vector, Cycles now)
{
    auto it = vectors_.find(vector);
    if (it == vectors_.end() || it->second.outstanding.empty())
        return;  // replayed continuation or unobserved raise
    PerVector &v = it->second;
    Cycles raised = v.outstanding.front();
    v.outstanding.pop_front();
    Cycles latency = now - raised;
    v.maxObserved = std::max(v.maxObserved, latency);
    ++matched_;
    if (v.bounded && latency > v.bound) {
        std::ostringstream os;
        os << "vector " << vector << " (priority " << v.priority
           << "): observed latency " << latency
           << " exceeds bound " << v.bound << " (raised at "
           << raised << ", delivered at " << now << ")";
        violations_.push_back(os.str());
    }
}

Cycles
BoundChecker::maxObserved(unsigned priority) const
{
    Cycles m = 0;
    for (const auto &[vec, v] : vectors_) {
        if (v.priority == priority)
            m = std::max(m, v.maxObserved);
    }
    return m;
}

Cycles
BoundChecker::maxObservedVector(unsigned vector) const
{
    auto it = vectors_.find(vector);
    return it == vectors_.end() ? 0 : it->second.maxObserved;
}

} // namespace xui
