/**
 * @file
 * Random-program generation for verification fuzzing.
 *
 * Generates well-formed looping programs (body of mixed ALU / FP /
 * memory ops, a trip-counted outer loop, a uiret handler) from a
 * seed. Two knobs matter to the checkers:
 *
 *  - `deterministicControl`: restrict branches to trip-counted loop
 *    branches so the committed main-code PC stream is a pure
 *    function of the program — the property the cross-seed and
 *    cross-delivery-mode architectural-equivalence checks rely on.
 *    Random-direction branches draw from the core's private RNG, so
 *    they are reproducible for a fixed system seed but not across
 *    seeds.
 *  - `withSafepoints`: sprinkle hardware-safepoint prefixes so
 *    safepoint-gated delivery (§4.4) can be fuzzed too.
 */

#ifndef XUI_VERIFY_FUZZ_HH
#define XUI_VERIFY_FUZZ_HH

#include <cstdint>

#include "uarch/program.hh"

namespace xui
{

/** Shape of a generated fuzz program. */
struct FuzzProgramOptions
{
    /** Emit safepoint prefixes / a safepoint in the loop. */
    bool withSafepoints = false;
    /** Only trip-counted control flow (see file comment). */
    bool deterministicControl = false;
    /** Loop-body instruction count bounds. */
    unsigned minBody = 4;
    unsigned maxBody = 28;
};

/** Build a random but well-formed looping program from `seed`. */
Program makeFuzzProgram(std::uint64_t seed,
                        const FuzzProgramOptions &opts = {});

} // namespace xui

#endif // XUI_VERIFY_FUZZ_HH
