/**
 * @file
 * Cross-delivery-mode differential harness.
 *
 * Runs the same fuzz program under Flush, Drain, and Tracked
 * delivery (same seeds, same timer pressure) and checks the
 * invariants the paper's argument rests on:
 *
 *  1. Architectural equivalence — the three modes retire the same
 *     commit-order main-code PC stream (delivery strategy changes
 *     *when* the handler runs, never *what* the program computes).
 *  2. Interrupt conservation — no mode loses or duplicates a
 *     delivery, and every per-interrupt timeline is monotonic.
 *  3. Latency ordering (Fig. 2) — tracked delivery starts the
 *     handler no later, on average, than flush delivery does.
 */

#ifndef XUI_VERIFY_DIFFERENTIAL_HH
#define XUI_VERIFY_DIFFERENTIAL_HH

#include <string>
#include <vector>

#include "verify/scenario.hh"

namespace xui
{

/** Knobs for the latency-ordering check. */
struct DifferentialOptions
{
    /** Minimum deliveries per mode before latency means compare. */
    std::uint64_t minDeliveries = 5;
    /**
     * Slack on the tracked-vs-flush mean handler-start comparison:
     * tracked must satisfy tracked <= flush * factor + cycles.
     * Defaults are exact (the paper's claim, Fig. 2).
     */
    double latencySlackFactor = 1.0;
    double latencySlackCycles = 0.0;
    /** Minimum common main-code commit prefix to compare. */
    std::size_t minPrefix = 1000;
};

/** Outcome of one three-way differential run. */
struct DifferentialReport
{
    ScenarioResult flush;
    ScenarioResult drain;
    ScenarioResult tracked;
    std::vector<std::string> violations;

    bool ok() const { return violations.empty(); }
};

/**
 * Run `base` under all three delivery strategies (the strategy
 * field of `base` is ignored) and check the cross-mode invariants.
 * @pre base.program.deterministicControl — random-direction
 *      branches would make the PC streams legitimately diverge.
 */
DifferentialReport
runDifferential(const ScenarioConfig &base,
                const DifferentialOptions &opts = {});

} // namespace xui

#endif // XUI_VERIFY_DIFFERENTIAL_HH
