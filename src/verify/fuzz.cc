#include "verify/fuzz.hh"

#include <algorithm>

#include "stats/rng.hh"

namespace xui
{

Program
makeFuzzProgram(std::uint64_t seed, const FuzzProgramOptions &opts)
{
    Rng rng(seed);
    ProgramBuilder b("fuzz");
    std::uint32_t top = b.here();
    unsigned span = std::max(1u, opts.maxBody - opts.minBody + 1);
    unsigned body = opts.minBody +
        static_cast<unsigned>(rng.nextBounded(span));
    for (unsigned i = 0; i < body; ++i) {
        switch (rng.nextBounded(6)) {
          case 0:
            b.intAlu(static_cast<std::uint8_t>(
                         reg::kGpr0 + rng.nextBounded(8)),
                     static_cast<std::uint8_t>(
                         reg::kGpr0 + rng.nextBounded(8)));
            break;
          case 1:
            b.intMult(static_cast<std::uint8_t>(
                          reg::kGpr0 + rng.nextBounded(8)),
                      static_cast<std::uint8_t>(
                          reg::kGpr0 + rng.nextBounded(8)));
            break;
          case 2:
            b.fpAlu(static_cast<std::uint8_t>(
                        reg::kFpr0 + rng.nextBounded(8)),
                    static_cast<std::uint8_t>(
                        reg::kFpr0 + rng.nextBounded(8)));
            break;
          case 3: {
            AddrPattern a;
            a.kind = AddrKind::Random;
            a.base = 0x1000'0000ull + (rng.next() & 0xff000);
            a.range = 1ull << (10 + rng.nextBounded(12));
            b.load(static_cast<std::uint8_t>(
                       reg::kGpr0 + rng.nextBounded(8)),
                   a);
            break;
          }
          case 4: {
            AddrPattern a;
            a.kind = AddrKind::Stride;
            a.base = 0x2000'0000ull;
            a.stride = 8 << rng.nextBounded(4);
            a.range = 1ull << 18;
            b.store(static_cast<std::uint8_t>(
                        reg::kGpr0 + rng.nextBounded(8)),
                    a);
            break;
          }
          case 5:
            if (opts.deterministicControl) {
                // Trip-counted inner loop back to the top: control
                // flow stays a pure function of the program.
                if (rng.nextBool(0.35))
                    b.loopBranch(top, 2 + rng.nextBounded(6));
                else
                    b.nop();
            } else if (rng.nextBool(0.5)) {
                b.randomBranch(top, rng.nextDouble() * 0.6);
            } else {
                b.nop();
            }
            break;
        }
        if (opts.withSafepoints && rng.nextBool(0.2))
            b.markSafepoint();
    }
    if (opts.withSafepoints)
        b.safepoint();
    b.loopBranch(top, 8 + rng.nextBounded(120));
    b.jump(top);
    b.beginHandler();
    for (unsigned i = 0; i < 1 + rng.nextBounded(12); ++i)
        b.intAlu(reg::kGpr0 + 12, reg::kGpr0 + 12);
    b.uiret();
    return b.build();
}

} // namespace xui
