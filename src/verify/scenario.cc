#include "verify/scenario.hh"

#include <algorithm>
#include <sstream>

#include "intr/kb_timer.hh"
#include "uarch/uarch_system.hh"
#include "verify/digest_tracer.hh"

namespace xui
{

namespace
{

void
checkInterruptFacts(const CoreStats &s, ScenarioResult &out)
{
    if (s.interruptsRaised < s.interruptsDelivered) {
        std::ostringstream os;
        os << "duplicated deliveries: raised "
           << s.interruptsRaised << " < delivered "
           << s.interruptsDelivered;
        out.violations.push_back(os.str());
    }
    if (s.interruptsRaised - s.interruptsDelivered > 1) {
        std::ostringstream os;
        os << "lost interrupts: raised " << s.interruptsRaised
           << ", delivered " << s.interruptsDelivered
           << " (more than one in flight)";
        out.violations.push_back(os.str());
    }
    // A record is closed at uiret commit, so a run that ends while
    // the final handler is still in flight legitimately has one
    // open (unpushed) record. Priority preemption nests handlers,
    // so each preemption allows one more open record at the end.
    if (s.intrRecords.size() > s.interruptsDelivered ||
        s.intrRecords.size() + 1 + s.preemptions <
            s.interruptsDelivered) {
        std::ostringstream os;
        os << "record count " << s.intrRecords.size()
           << " inconsistent with delivered "
           << s.interruptsDelivered;
        out.violations.push_back(os.str());
    }
    Cycles prev_uiret = 0;
    for (std::size_t i = 0; i < s.intrRecords.size(); ++i) {
        const IntrRecord &r = s.intrRecords[i];
        // Nested (preempting) deliveries interleave with the
        // records around them: a preempting record closes before
        // the handler it interrupted, so the cross-record ordering
        // check only applies between non-preempting neighbors.
        bool cross_ordered = r.injectedAt >= prev_uiret;
        if (r.preempting || s.preemptions > 0)
            cross_ordered = true;
        const bool mono = r.acceptedAt >= r.raisedAt &&
            r.injectedAt >= r.acceptedAt &&
            r.deliveryCommitAt >= r.firstUopCommitAt &&
            r.uiretCommitAt > r.deliveryCommitAt &&
            cross_ordered;
        if (!mono) {
            std::ostringstream os;
            os << "record " << i
               << " timeline not monotonic (raised " << r.raisedAt
               << ", accepted " << r.acceptedAt << ", injected "
               << r.injectedAt << ", deliveryCommit "
               << r.deliveryCommitAt << ", uiret "
               << r.uiretCommitAt << ", prev uiret " << prev_uiret
               << ")";
            out.violations.push_back(os.str());
        }
        prev_uiret = r.uiretCommitAt;
    }
}

} // namespace

ScenarioResult
extractScenarioResult(const ScenarioConfig &cfg, const Program &prog,
                      const OooCore &core, const DigestTracer &digest,
                      const std::vector<std::uint32_t> &commitPcs)
{
    ScenarioResult out;
    const CoreStats &s = core.stats();
    out.fullDigest = digest.fullDigest();
    out.archDigest = digest.archDigest();
    out.eventCount = digest.eventCount();
    out.committedInsts = s.committedInsts;
    out.committedUops = s.committedUops;
    out.fetchedUops = s.fetchedUops;
    out.squashedUops = s.squashedUops;
    out.raised = s.interruptsRaised;
    out.delivered = s.interruptsDelivered;
    out.reinjections = s.reinjections;
    out.cycles = core.now();
    out.intrRecords = s.intrRecords;
    out.ffEntries = s.ffEntries;
    out.ffExits = s.ffExits;
    out.ffInsts = s.ffInsts;
    out.ffCycles = s.ffCycles;

    const std::uint32_t handler_entry = prog.handlerEntry();
    out.mainPcs.reserve(commitPcs.size());
    for (std::uint32_t pc : commitPcs) {
        if (pc < handler_entry)
            out.mainPcs.push_back(pc);
        else
            ++out.handlerCommits;
    }

    double exec_sum = 0.0, commit_sum = 0.0;
    for (const IntrRecord &r : s.intrRecords) {
        exec_sum +=
            static_cast<double>(r.deliveryExecAt - r.raisedAt);
        commit_sum +=
            static_cast<double>(r.deliveryCommitAt - r.raisedAt);
    }
    if (!s.intrRecords.empty()) {
        double n = static_cast<double>(s.intrRecords.size());
        out.meanHandlerStartLatency = exec_sum / n;
        out.meanDeliveryCommitLatency = commit_sum / n;
    }

    if (s.committedInsts < cfg.targetInsts)
        out.violations.push_back("pipeline wedged: committed fewer "
                                 "instructions than targeted");
    if (s.committedUops > s.fetchedUops)
        out.violations.push_back(
            "conservation violated: committed > fetched uops");
    checkInterruptFacts(s, out);
    return out;
}

ScenarioResult
runScenario(const ScenarioConfig &cfg, TraceLog *capture,
            Tracer *extraTracer, IntrLifecycleObserver *observer,
            const std::function<void(UarchSystem &)> &preRun)
{
    Program prog = makeFuzzProgram(cfg.programSeed, cfg.program);

    CoreParams params;
    params.strategy = cfg.strategy;
    params.safepointMode = cfg.safepointMode;
    params.tickSkip = cfg.tickSkip;
    params.fastForward = cfg.fastForward;
    params.detailWindow = cfg.detailWindow;
    params.ffWarmup = cfg.ffWarmup;

    UarchSystem sys(cfg.systemSeed);

    DigestTracer digest;
    std::vector<std::uint32_t> commitPcs;
    digest.collectCommitPcs(&commitPcs);

    TeeTracer tee;
    tee.attach(&digest);
    TraceLog unused;
    LogTracer logger(capture != nullptr ? *capture : unused);
    if (capture != nullptr) {
        capture->clear();
        tee.attach(&logger);
    }
    tee.attach(extraTracer);
    sys.setTracer(&tee);
    sys.setIntrObserver(observer);

    OooCore &core = sys.addCore(params, &prog);
    core.kbTimer().configure(true, 0x21);
    core.kbTimer().setTimer(0, cfg.timerPeriod,
                            KbTimerMode::Periodic);

    if (preRun)
        preRun(sys);

    core.runUntilCommitted(cfg.targetInsts, cfg.maxCycles);
    core.runCycles(cfg.extraCycles);

    return extractScenarioResult(cfg, prog, core, digest, commitPcs);
}

DeterminismReport
checkDeterminism(const ScenarioConfig &cfg)
{
    DeterminismReport rep;
    ScenarioResult a = runScenario(cfg);
    ScenarioResult b = runScenario(cfg);
    rep.digestA = a.fullDigest;
    rep.digestB = b.fullDigest;
    rep.eventsA = a.eventCount;
    rep.eventsB = b.eventCount;
    rep.ok = a.fullDigest == b.fullDigest &&
        a.eventCount == b.eventCount;
    if (!rep.ok) {
        std::ostringstream os;
        os << "nondeterminism: digests " << std::hex << rep.digestA
           << " vs " << rep.digestB << std::dec << ", events "
           << rep.eventsA << " vs " << rep.eventsB;
        rep.message = os.str();
    }
    return rep;
}

ArchEquivalenceReport
checkArchEquivalence(const ScenarioResult &a, const ScenarioResult &b,
                     std::size_t minPrefix)
{
    ArchEquivalenceReport rep;
    std::size_t prefix = std::min(a.mainPcs.size(), b.mainPcs.size());
    rep.comparedPrefix = prefix;
    if (prefix < minPrefix) {
        std::ostringstream os;
        os << "main-code commit streams too short to compare ("
           << a.mainPcs.size() << " and " << b.mainPcs.size()
           << ", need " << minPrefix << ")";
        rep.message = os.str();
        return rep;
    }
    for (std::size_t i = 0; i < prefix; ++i) {
        if (a.mainPcs[i] != b.mainPcs[i]) {
            std::ostringstream os;
            os << "commit streams diverge at index " << i << ": pc "
               << a.mainPcs[i] << " vs " << b.mainPcs[i];
            rep.message = os.str();
            return rep;
        }
    }
    rep.ok = true;
    return rep;
}

} // namespace xui
