#include "verify/trace_log.hh"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "stats/digest.hh"

namespace xui
{

namespace
{

constexpr std::size_t kPackedSize = 8 + 8 + 4 + 1 + 1;

void
packRecord(const TraceRecord &r, std::uint8_t *out)
{
    std::uint64_t cycle = r.cycle;
    std::uint64_t seq = r.seq;
    std::uint32_t pc = r.pc;
    for (int i = 0; i < 8; ++i)
        out[i] = static_cast<std::uint8_t>(cycle >> (8 * i));
    for (int i = 0; i < 8; ++i)
        out[8 + i] = static_cast<std::uint8_t>(seq >> (8 * i));
    for (int i = 0; i < 4; ++i)
        out[16 + i] = static_cast<std::uint8_t>(pc >> (8 * i));
    out[20] = r.ev;
    out[21] = r.cls;
}

TraceRecord
unpackRecord(const std::uint8_t *in)
{
    TraceRecord r;
    std::uint64_t cycle = 0, seq = 0;
    std::uint32_t pc = 0;
    for (int i = 0; i < 8; ++i)
        cycle |= static_cast<std::uint64_t>(in[i]) << (8 * i);
    for (int i = 0; i < 8; ++i)
        seq |= static_cast<std::uint64_t>(in[8 + i]) << (8 * i);
    for (int i = 0; i < 4; ++i)
        pc |= static_cast<std::uint32_t>(in[16 + i]) << (8 * i);
    r.cycle = cycle;
    r.seq = seq;
    r.pc = pc;
    r.ev = in[20];
    r.cls = in[21];
    return r;
}

std::string
renderRecord(const TraceRecord &r)
{
    std::ostringstream os;
    os << traceEventName(static_cast<TraceEvent>(r.ev)) << " cycle:"
       << r.cycle << " sn:" << r.seq << " pc:";
    if (r.pc == 0xffffffffu)
        os << "ucode";
    else
        os << r.pc;
    os << " cls:" << static_cast<unsigned>(r.cls);
    return os.str();
}

} // namespace

std::uint64_t
TraceLog::digest() const
{
    Fnv1a h;
    std::uint8_t buf[kPackedSize];
    for (const TraceRecord &r : records_) {
        packRecord(r, buf);
        h.update(buf, sizeof(buf));
    }
    return h.value();
}

bool
TraceLog::save(std::ostream &os) const
{
    os.write(kMagic, sizeof(kMagic));
    std::uint64_t count = records_.size();
    std::uint8_t hdr[8];
    for (int i = 0; i < 8; ++i)
        hdr[i] = static_cast<std::uint8_t>(count >> (8 * i));
    os.write(reinterpret_cast<const char *>(hdr), sizeof(hdr));
    std::uint8_t buf[kPackedSize];
    for (const TraceRecord &r : records_) {
        packRecord(r, buf);
        os.write(reinterpret_cast<const char *>(buf), sizeof(buf));
    }
    return static_cast<bool>(os);
}

bool
TraceLog::load(std::istream &is)
{
    records_.clear();
    char magic[sizeof(kMagic)];
    if (!is.read(magic, sizeof(magic)) ||
        std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        return false;
    std::uint8_t hdr[8];
    if (!is.read(reinterpret_cast<char *>(hdr), sizeof(hdr)))
        return false;
    std::uint64_t count = 0;
    for (int i = 0; i < 8; ++i)
        count |= static_cast<std::uint64_t>(hdr[i]) << (8 * i);
    records_.reserve(count);
    std::uint8_t buf[kPackedSize];
    for (std::uint64_t i = 0; i < count; ++i) {
        if (!is.read(reinterpret_cast<char *>(buf), sizeof(buf))) {
            records_.clear();
            return false;
        }
        records_.push_back(unpackRecord(buf));
    }
    return true;
}

bool
TraceLog::saveFile(const std::string &path) const
{
    std::ofstream os(path, std::ios::binary);
    return os && save(os);
}

bool
TraceLog::loadFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    return is && load(is);
}

void
LogTracer::event(TraceEvent ev, Cycles cycle, std::uint64_t seq,
                 std::uint32_t pc, OpClass cls)
{
    TraceRecord r;
    r.cycle = cycle;
    r.seq = seq;
    r.pc = pc;
    r.ev = static_cast<std::uint8_t>(ev);
    r.cls = static_cast<std::uint8_t>(cls);
    log_.append(r);
}

void
ReplayTracer::event(TraceEvent ev, Cycles cycle, std::uint64_t seq,
                    std::uint32_t pc, OpClass cls)
{
    ++received_;
    if (diverged_)
        return;
    TraceRecord live;
    live.cycle = cycle;
    live.seq = seq;
    live.pc = pc;
    live.ev = static_cast<std::uint8_t>(ev);
    live.cls = static_cast<std::uint8_t>(cls);
    if (position_ >= golden_.size()) {
        diverged_ = true;
        divergenceIndex_ = position_;
        expected_ = TraceRecord{};
        actual_ = live;
        return;
    }
    const TraceRecord &want = golden_.at(position_);
    if (!(want == live)) {
        diverged_ = true;
        divergenceIndex_ = position_;
        expected_ = want;
        actual_ = live;
        return;
    }
    ++position_;
}

std::string
ReplayTracer::message() const
{
    if (ok())
        return "";
    std::ostringstream os;
    if (diverged_) {
        os << "divergence at event " << divergenceIndex_;
        if (divergenceIndex_ >= golden_.size()) {
            os << ": golden trace ended, live run emitted ["
               << renderRecord(actual_) << "]";
        } else {
            os << ": expected [" << renderRecord(expected_)
               << "] got [" << renderRecord(actual_) << "]";
        }
    } else {
        os << "live run ended early: matched " << position_ << " of "
           << golden_.size() << " golden events";
    }
    return os.str();
}

} // namespace xui
