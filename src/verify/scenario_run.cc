#include "verify/scenario_run.hh"

#include <algorithm>
#include <sstream>

#include "ckpt/snapshot.hh"
#include "intr/kb_timer.hh"

namespace xui
{

ScenarioRun::ScenarioRun(const ScenarioConfig &cfg,
                         IntrLifecycleObserver *observer)
    : cfg_(cfg),
      prog_(makeFuzzProgram(cfg.programSeed, cfg.program)),
      sys_(cfg.systemSeed)
{
    // Construction mirrors runScenario() exactly — same attach
    // order, same timer programming — so an unchunked ScenarioRun
    // is bit-identical to the monolithic runner.
    CoreParams params;
    params.strategy = cfg.strategy;
    params.safepointMode = cfg.safepointMode;
    params.tickSkip = cfg.tickSkip;
    params.fastForward = cfg.fastForward;
    params.detailWindow = cfg.detailWindow;
    params.ffWarmup = cfg.ffWarmup;

    digest_.collectCommitPcs(&commitPcs_);
    tee_.attach(&digest_);
    sys_.setTracer(&tee_);
    sys_.setIntrObserver(observer);

    core_ = &sys_.addCore(params, &prog_);
    core_->kbTimer().configure(true, 0x21);
    core_->kbTimer().setTimer(0, cfg.timerPeriod,
                              KbTimerMode::Periodic);

    phase0TargetInsts_ =
        core_->stats().committedInsts + cfg.targetInsts;
    phase0CycleLimit_ = core_->now() + cfg.maxCycles;
}

void
ScenarioRun::maybeAdvancePhase()
{
    // Phase exits replicate the monolithic run loops' own exit
    // conditions, so a chunk ending exactly at a boundary and a
    // monolithic call crossing it agree on where phase 1 starts.
    if (phase_ == 0 &&
        (core_->stats().committedInsts >= phase0TargetInsts_ ||
         core_->now() >= phase0CycleLimit_ || core_->halted())) {
        phase_ = 1;
        phase1End_ = core_->now() + cfg_.extraCycles;
    }
    if (phase_ == 1 && core_->now() >= phase1End_)
        phase_ = 2;
}

bool
ScenarioRun::advance(Cycles chunkCycles)
{
    maybeAdvancePhase();
    if (phase_ == 0) {
        std::uint64_t rem_insts =
            phase0TargetInsts_ - core_->stats().committedInsts;
        Cycles rem_cycles = phase0CycleLimit_ - core_->now();
        core_->runUntilCommitted(rem_insts,
                                 std::min(chunkCycles, rem_cycles));
        maybeAdvancePhase();
    } else if (phase_ == 1) {
        Cycles rem = phase1End_ - core_->now();
        core_->runCycles(std::min(chunkCycles, rem));
        maybeAdvancePhase();
    }
    return !done();
}

void
ScenarioRun::runToEnd()
{
    while (advance(~Cycles(0))) {
    }
}

void
ScenarioRun::saveState(ckpt::Writer &w) const
{
    core_->saveState(w);
    digest_.saveState(w);
    w.u64(commitPcs_.size());
    for (std::uint32_t pc : commitPcs_)
        w.u32(pc);
    w.u8(phase_);
    w.u64(phase0TargetInsts_);
    w.u64(phase0CycleLimit_);
    w.u64(phase1End_);
}

bool
ScenarioRun::loadState(ckpt::Reader &r)
{
    if (!core_->loadState(r) || !digest_.loadState(r))
        return false;
    std::uint64_t n = 0;
    if (!r.u64(n) || n > (1ull << 28))
        return r.fail();
    commitPcs_.clear();
    commitPcs_.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint32_t pc = 0;
        if (!r.u32(pc))
            return false;
        commitPcs_.push_back(pc);
    }
    if (!r.u8(phase_) || phase_ > 2)
        return r.fail();
    return r.u64(phase0TargetInsts_) && r.u64(phase0CycleLimit_) &&
           r.u64(phase1End_) && r.ok();
}

ScenarioResult
ScenarioRun::finish() const
{
    return extractScenarioResult(cfg_, prog_, *core_, digest_,
                                 commitPcs_);
}

RoundTripReport
checkRoundTrip(const ScenarioConfig &cfg, Cycles splitCycles,
               const std::string &snapshotPath)
{
    RoundTripReport rep;

    ScenarioRun reference(cfg);
    reference.runToEnd();
    ScenarioResult ref = reference.finish();

    const Cycles split =
        splitCycles != 0 ? splitCycles : ref.cycles / 2;

    // Second instance: run to the split boundary and checkpoint.
    ScenarioRun interrupted(cfg);
    while (!interrupted.done() && interrupted.now() < split)
        interrupted.advance(split - interrupted.now());
    ckpt::Writer w;
    interrupted.saveState(w);
    std::string payload = w.take();

    if (!snapshotPath.empty()) {
        // Drive the payload through the on-disk engine so the file
        // format itself is under test, not just the codec.
        ckpt::Snapshot snap;
        snap.tag = "roundtrip";
        snap.payload = std::move(payload);
        ckpt::SaveResult saved =
            ckpt::saveSnapshot(snapshotPath, snap);
        if (!saved.ok) {
            rep.message = "snapshot save failed: " + saved.error;
            return rep;
        }
        ckpt::Snapshot back;
        ckpt::LoadStatus st = ckpt::loadSnapshot(snapshotPath, back);
        ::remove(snapshotPath.c_str());
        if (st != ckpt::LoadStatus::Ok) {
            rep.message = std::string("snapshot load failed: ") +
                          ckpt::loadStatusName(st);
            return rep;
        }
        payload = std::move(back.payload);
    }

    ScenarioRun resumed(cfg);
    ckpt::Reader r(payload);
    if (!resumed.loadState(r)) {
        rep.message = "restore failed: malformed payload";
        return rep;
    }
    resumed.runToEnd();
    ScenarioResult res = resumed.finish();

    rep.referenceDigest = ref.fullDigest;
    rep.resumedDigest = res.fullDigest;
    rep.referenceEvents = ref.eventCount;
    rep.resumedEvents = res.eventCount;
    rep.bitIdentical = ref.fullDigest == res.fullDigest &&
                       ref.archDigest == res.archDigest &&
                       ref.eventCount == res.eventCount &&
                       ref.cycles == res.cycles;
    rep.ok = rep.bitIdentical;
    if (!rep.ok) {
        std::ostringstream os;
        os << "round-trip divergence: full digest " << std::hex
           << ref.fullDigest << " vs " << res.fullDigest
           << ", arch " << ref.archDigest << " vs "
           << res.archDigest << std::dec << ", events "
           << ref.eventCount << " vs " << res.eventCount
           << ", cycles " << ref.cycles << " vs " << res.cycles;
        rep.message = os.str();
    }
    return rep;
}

} // namespace xui
