#include "verify/statcheck.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/span.hh"

namespace xui
{

namespace
{

/** Nearest-rank percentile over a sorted sample vector. */
double
percentile(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    double rank = std::ceil(p / 100.0 *
                            static_cast<double>(sorted.size()));
    std::size_t idx = rank < 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
    if (idx >= sorted.size())
        idx = sorted.size() - 1;
    return sorted[idx];
}

double
pctDelta(double detail, double sampled)
{
    if (detail == 0.0)
        return sampled == 0.0 ? 0.0 : 100.0;
    return (sampled - detail) / detail * 100.0;
}

} // namespace

LatencyDist
deliveryLatencyDist(const std::vector<IntrRecord> &records,
                    IntrSource source)
{
    std::vector<double> lat;
    double sum = 0.0;
    for (const IntrRecord &r : records) {
        if (r.source != source || r.deliveryCommitAt == 0)
            continue;
        double d =
            static_cast<double>(r.deliveryCommitAt - r.raisedAt);
        lat.push_back(d);
        sum += d;
    }
    LatencyDist out;
    out.count = lat.size();
    if (lat.empty())
        return out;
    std::sort(lat.begin(), lat.end());
    out.p50 = percentile(lat, 50.0);
    out.p99 = percentile(lat, 99.0);
    out.mean = sum / static_cast<double>(lat.size());
    return out;
}

StatEquivalenceReport
checkStatEquivalence(const std::vector<IntrRecord> &detail,
                     const std::vector<IntrRecord> &sampled,
                     double tolPct, std::uint64_t minCount)
{
    StatEquivalenceReport rep;
    std::ostringstream msg;
    bool any = false;
    bool fail = false;
    for (IntrSource src : {IntrSource::UserIpi, IntrSource::KbTimer,
                           IntrSource::Forwarded}) {
        LatencyDist d = deliveryLatencyDist(detail, src);
        if (d.count < minCount)
            continue;  // not enough detail-side mass to compare
        any = true;
        SourceDelta row;
        row.source = src;
        row.detail = d;
        row.sampled = deliveryLatencyDist(sampled, src);
        row.p50DeltaPct = pctDelta(d.p50, row.sampled.p50);
        row.p99DeltaPct = pctDelta(d.p99, row.sampled.p99);
        row.countDeltaPct =
            pctDelta(static_cast<double>(d.count),
                     static_cast<double>(row.sampled.count));
        row.within = row.sampled.count > 0 &&
            std::abs(row.p50DeltaPct) <= tolPct &&
            std::abs(row.p99DeltaPct) <= tolPct &&
            std::abs(row.countDeltaPct) <= 2.0 * tolPct;
        rep.worstP50Pct = std::max(rep.worstP50Pct,
                                   std::abs(row.p50DeltaPct));
        rep.worstP99Pct = std::max(rep.worstP99Pct,
                                   std::abs(row.p99DeltaPct));
        if (!row.within) {
            fail = true;
            msg << intrSourceName(src) << ": p50 " << row.detail.p50
                << " -> " << row.sampled.p50 << " ("
                << row.p50DeltaPct << "%), p99 " << row.detail.p99
                << " -> " << row.sampled.p99 << " ("
                << row.p99DeltaPct << "%), count " << row.detail.count
                << " -> " << row.sampled.count << " ("
                << row.countDeltaPct << "%), tol " << tolPct
                << "%; ";
        }
        rep.sources.push_back(row);
    }
    if (!any) {
        rep.message = "no interrupt source delivered enough "
                      "interrupts in the detail run to compare";
        return rep;
    }
    rep.ok = !fail;
    if (fail)
        rep.message = msg.str();
    return rep;
}

} // namespace xui
