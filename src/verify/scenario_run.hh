/**
 * @file
 * Resumable scenario execution for checkpoint/restore verification.
 *
 * ScenarioRun is runScenario() (scenario.hh) split into hold-able
 * pieces: construct, advance in bounded chunks, checkpoint between
 * chunks, and extract the identical ScenarioResult at the end. The
 * load-bearing property is *chunk-invariance*: the core's run loops
 * are memoryless per tick (runUntilCommitted takes an absolute
 * commit target and a remaining budget; runCycles an absolute end),
 * so any partition of the run into advance() calls executes exactly
 * the same tick sequence as one monolithic call — which is what
 * makes a run interrupted at an arbitrary boundary and resumed from
 * snapshot bit-identical to the uninterrupted run.
 *
 * A checkpoint captures the core (OooCore::saveState), the digest
 * tracer mid-stream, the collected commit-PC vector, and the phase
 * bookkeeping below. Restore requires a ScenarioRun constructed from
 * the same ScenarioConfig — the program, core geometry, and RNG seeds
 * are reproduced by construction, not serialized.
 */

#ifndef XUI_VERIFY_SCENARIO_RUN_HH
#define XUI_VERIFY_SCENARIO_RUN_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "ckpt/codec.hh"
#include "uarch/uarch_system.hh"
#include "verify/digest_tracer.hh"
#include "verify/scenario.hh"

namespace xui
{

/** One scenario, advanced in chunks instead of run to completion. */
class ScenarioRun
{
  public:
    explicit ScenarioRun(const ScenarioConfig &cfg,
                         IntrLifecycleObserver *observer = nullptr);

    /**
     * Advance up to `chunkCycles` simulated cycles.
     * @return true while the run is not finished.
     */
    bool advance(Cycles chunkCycles);

    /** Run to completion (equivalent to advance() until done). */
    void runToEnd();

    bool done() const { return phase_ == 2; }
    Cycles now() const { return core_->now(); }
    std::uint64_t committedInsts() const
    {
        return core_->stats().committedInsts;
    }

    OooCore &core() { return *core_; }
    const DigestTracer &digest() const { return digest_; }

    /** Checkpoint the run at the current inter-chunk boundary. */
    void saveState(ckpt::Writer &w) const;

    /**
     * Restore a checkpoint taken from a ScenarioRun with the same
     * config. @return false on malformed/mismatched payload.
     */
    bool loadState(ckpt::Reader &r);

    /**
     * Extract the ScenarioResult — identical to what runScenario()
     * returns for the same config. Call once, after done().
     */
    ScenarioResult finish() const;

  private:
    ScenarioConfig cfg_;
    Program prog_;
    UarchSystem sys_;
    DigestTracer digest_;
    std::vector<std::uint32_t> commitPcs_;
    TeeTracer tee_;
    OooCore *core_;

    /** 0 = run-to-commit-target, 1 = extra cycles, 2 = finished. */
    std::uint8_t phase_ = 0;
    /** Absolute commit-count target of phase 0. */
    std::uint64_t phase0TargetInsts_ = 0;
    /** Absolute cycle bound of phase 0. */
    Cycles phase0CycleLimit_ = 0;
    /** Absolute end cycle of phase 1 (set at the 0 -> 1 switch). */
    Cycles phase1End_ = 0;

    void maybeAdvancePhase();
};

/**
 * Round-trip check for one scenario: run the reference to
 * completion; run a second instance to absolute cycle `splitCycles`
 * (0 means half of the reference run), checkpoint it, restore into a
 * third instance, run that to completion; compare full digests,
 * event counts, arch digests, and final cycles.
 *
 * With a non-empty `snapshotPath` the checkpoint additionally
 * round-trips through the on-disk snapshot engine (saveSnapshot /
 * loadSnapshot), so the crash-consistent file format — not just the
 * byte codec — is under test. The file is removed afterwards.
 */
struct RoundTripReport
{
    bool ok = false;
    bool bitIdentical = false;
    std::uint64_t referenceDigest = 0;
    std::uint64_t resumedDigest = 0;
    std::uint64_t referenceEvents = 0;
    std::uint64_t resumedEvents = 0;
    std::string message;
};

RoundTripReport checkRoundTrip(const ScenarioConfig &cfg,
                               Cycles splitCycles,
                               const std::string &snapshotPath = {});

} // namespace xui

#endif // XUI_VERIFY_SCENARIO_RUN_HH
