#include "verify/digest_tracer.hh"

namespace xui
{

void
DigestTracer::event(TraceEvent ev, Cycles cycle, std::uint64_t seq,
                    std::uint32_t pc, OpClass cls)
{
    // Pack the discriminants into two words so the byte stream is
    // unambiguous (no field-boundary aliasing between events).
    full_.update((static_cast<std::uint64_t>(ev) << 8) |
                 static_cast<std::uint64_t>(cls));
    full_.update(cycle);
    full_.update(seq);
    full_.update(pc);

    ++events_;
    ++counts_[static_cast<unsigned>(ev)];

    if (ev == TraceEvent::Commit && pc != kUcodePc) {
        arch_.update(pc);
        ++commits_;
        if (commitPcs_ != nullptr)
            commitPcs_->push_back(pc);
    }
}

void
DigestTracer::reset()
{
    full_.reset();
    arch_.reset();
    events_ = 0;
    commits_ = 0;
    for (auto &c : counts_)
        c = 0;
}

} // namespace xui
