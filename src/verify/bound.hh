/**
 * @file
 * Worst-case delivery-bound engine for mixed-criticality delivery.
 *
 * Two halves, matching the checked-bound methodology:
 *
 *  - computeDeliveryBounds() derives an *analytical* per-priority
 *    worst-case raise -> handler-start latency from the CostModel
 *    and a static description of the co-tenant vectors, via the
 *    classic response-time-analysis fixed point
 *
 *        R(P) = C + B(P) + sum_{higher prio H} ceil(R / T_H) *
 *               (save + C_H + restore)
 *
 *    where B(P) is the blocking term: the longest lower-or-equal
 *    priority non-preemptible section (one whole handler frame —
 *    the occupancy engine only preempts *running* frames, and the
 *    save/restore windows themselves are non-preemptible) plus the
 *    vector's own moderation window and the wire/receive costs.
 *
 *  - BoundChecker is an online observer wired to the kernel's
 *    occupancy-engine hooks: it FIFO-matches every raise to its
 *    delivery per vector and asserts the observed latency never
 *    exceeds the bound configured for that vector. Violations are
 *    collected (not fatal) so drivers can report
 *    observed-vs-analytical headroom and exit nonzero.
 *
 * The header is os-free: the kernel exposes plain std::function
 * hooks, so xui_verify_lib needs no link against xui_os.
 */

#ifndef XUI_VERIFY_BOUND_HH
#define XUI_VERIFY_BOUND_HH

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "os/cost_model.hh"

namespace xui
{

/** Static description of one co-tenant vector for the analysis. */
struct VectorProfile
{
    unsigned vector = 0;
    /** DeliveryPolicy::priority configured for the vector. */
    unsigned priority = 0;
    /** Handler occupancy (Kernel::setHandlerCost) in cycles. */
    Cycles handlerCost = 0;
    /**
     * Minimum inter-arrival gap in cycles (the sporadic-task
     * period). 0 = the vector fires at most once per busy window.
     */
    Cycles minInterArrival = 0;
    /** ITR moderation window delaying the notification (cycles). */
    Cycles moderationWindow = 0;
};

/** Analytical worst case for one profiled vector. */
struct DeliveryBound
{
    unsigned vector = 0;
    unsigned priority = 0;
    /** Worst-case raise -> handler-start latency (cycles). */
    Cycles bound = 0;
    /** Blocking term B(P) folded into the bound (reporting). */
    Cycles blocking = 0;
    /** Total higher-priority interference folded in (reporting). */
    Cycles interference = 0;
    /** False when the fixed point diverged (overload: no bound). */
    bool converged = true;
};

/**
 * Derive the analytical delivery bound for every profiled vector.
 * Pure function of (costs, profiles); deterministic.
 */
std::vector<DeliveryBound>
computeDeliveryBounds(const CostModel &costs,
                      const std::vector<VectorProfile> &profiles);

/**
 * Online raise -> deliver latency checker. Wire onRaise /
 * onDeliver to Kernel::setEngineRaiseHook / setEngineDeliverHook;
 * every vector with a configured bound is checked, others are
 * tracked but never flagged.
 */
class BoundChecker
{
  public:
    /** Configure the checked bound for a vector. */
    void setBound(unsigned vector, unsigned priority, Cycles bound);

    /** An arrival was raised toward the receiver. */
    void onRaise(unsigned vector, unsigned priority, Cycles now);

    /** The handler for `vector` started (FIFO-matched to raises). */
    void onDeliver(unsigned vector, Cycles now);

    /** Largest observed latency among vectors at `priority`. */
    Cycles maxObserved(unsigned priority) const;

    /** Largest observed latency for one vector. */
    Cycles maxObservedVector(unsigned vector) const;

    /** Deliveries matched so far. */
    std::uint64_t matched() const { return matched_; }

    /** Human-readable violation descriptions (empty = clean). */
    const std::vector<std::string> &violations() const
    {
        return violations_;
    }

    bool ok() const { return violations_.empty(); }

  private:
    struct PerVector
    {
        unsigned priority = 0;
        Cycles bound = 0;
        bool bounded = false;
        Cycles maxObserved = 0;
        std::deque<Cycles> outstanding;
    };

    std::unordered_map<unsigned, PerVector> vectors_;
    std::vector<std::string> violations_;
    std::uint64_t matched_ = 0;
};

} // namespace xui

#endif // XUI_VERIFY_BOUND_HH
