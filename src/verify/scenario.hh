/**
 * @file
 * Scenario runner for the verification subsystem: one fully
 * described fuzz workload (program seed, system seed, delivery
 * strategy, timer pressure) executed under digest instrumentation.
 * Everything the checkers need — timing digest, architectural
 * digest, commit-order main-code PC stream, interrupt conservation
 * and timeline facts — comes back in one ScenarioResult, so the
 * determinism checker, the cross-seed equivalence checker, and the
 * cross-mode differential harness are all thin comparisons on top
 * of the same runner.
 */

#ifndef XUI_VERIFY_SCENARIO_HH
#define XUI_VERIFY_SCENARIO_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "des/time.hh"
#include "uarch/core_params.hh"
#include "uarch/intr_observer.hh"
#include "uarch/ooo_core.hh"
#include "verify/fuzz.hh"
#include "verify/trace_log.hh"

namespace xui
{

class UarchSystem;

/** One verification workload, fully reproducible from this struct. */
struct ScenarioConfig
{
    /** Seed for the fuzz program shape. */
    std::uint64_t programSeed = 1;
    /** Seed for the UarchSystem master RNG (per-core streams). */
    std::uint64_t systemSeed = 1;
    DeliveryStrategy strategy = DeliveryStrategy::Tracked;
    bool safepointMode = false;
    /**
     * Run-to-next-wakeup in the core's run loops (CoreParams::
     * tickSkip). Exposed here so the differential harness can pin
     * digest equality of skipping vs. per-cycle ticking.
     */
    bool tickSkip = true;
    /**
     * Fast-forward (sampled-detail) mode (CoreParams::fastForward).
     * Off keeps the digest-pinned exact mode; on runs the
     * functional loop between interrupt activity with
     * `detailWindow` cycles of full detail after every lifecycle
     * event and `ffWarmup` cycles ahead of each predicted arrival.
     * Adversarially small windows force mode transitions into every
     * gap the controller can legally use.
     */
    bool fastForward = false;
    Cycles detailWindow = 512;
    Cycles ffWarmup = 256;
    FuzzProgramOptions program{};
    /** KB-timer period driving interrupt pressure. */
    Cycles timerPeriod = usToCycles(2);
    /** Run until this many macro instructions commit... */
    std::uint64_t targetInsts = 20000;
    /** ...bounded by this many cycles. */
    Cycles maxCycles = 20'000'000;
    /** Extra cycles of continued interrupt pressure afterwards. */
    Cycles extraCycles = 20000;
};

/** Everything observed from one scenario run. */
struct ScenarioResult
{
    /** Order-sensitive digest of every trace event (with cycles). */
    std::uint64_t fullDigest = 0;
    /** Timing-independent digest of the program-commit PC stream. */
    std::uint64_t archDigest = 0;
    std::uint64_t eventCount = 0;
    /** Commit-order PC stream of main-code (pre-handler) commits. */
    std::vector<std::uint32_t> mainPcs;
    /** Committed uops inside the handler region. */
    std::uint64_t handlerCommits = 0;

    std::uint64_t committedInsts = 0;
    std::uint64_t committedUops = 0;
    std::uint64_t fetchedUops = 0;
    std::uint64_t squashedUops = 0;
    std::uint64_t raised = 0;
    std::uint64_t delivered = 0;
    std::uint64_t reinjections = 0;
    Cycles cycles = 0;

    /** Fast-forward accounting (zero in exact-mode runs). */
    std::uint64_t ffEntries = 0;
    std::uint64_t ffExits = 0;
    std::uint64_t ffInsts = 0;
    Cycles ffCycles = 0;

    /**
     * Full per-interrupt timeline records, copied out of CoreStats
     * so the statistical-equivalence checker (statcheck.hh) can
     * compare delivery-latency distributions across runs.
     */
    std::vector<IntrRecord> intrRecords;

    /** Mean raise -> handler-start latency (deliveryExecAt). */
    double meanHandlerStartLatency = 0.0;
    /** Mean raise -> delivery-commit latency (Fig. 2 e2e view). */
    double meanDeliveryCommitLatency = 0.0;

    /**
     * Per-run sanity facts: interrupt conservation (no lost or
     * duplicated deliveries) and per-record timeline monotonicity.
     * Violations are rendered into `violations`.
     */
    std::vector<std::string> violations;

    bool ok() const { return violations.empty(); }
};

class DigestTracer;

/**
 * Build a ScenarioResult from a finished run's instrumentation —
 * the digest tracer, the collected commit-PC stream, and the core's
 * stats. Shared by runScenario() and the resumable ScenarioRun
 * (scenario_run.hh) so both produce identical results for identical
 * runs.
 */
ScenarioResult
extractScenarioResult(const ScenarioConfig &cfg, const Program &prog,
                      const OooCore &core, const DigestTracer &digest,
                      const std::vector<std::uint32_t> &commitPcs);

/**
 * Run one scenario.
 * @param capture when non-null, also records the full binary trace.
 * @param extraTracer when non-null, an additional tee'd trace sink.
 * @param observer when non-null, receives interrupt-lifecycle
 *        stage callbacks (src/obs span tracking).
 * @param preRun when non-empty, called after the core is built but
 *        before the run starts — the hook for attaching extra
 *        instrumentation (e.g. the pipeline-pressure profiler) so
 *        digest-neutrality can be pinned over the golden corpus.
 */
ScenarioResult
runScenario(const ScenarioConfig &cfg, TraceLog *capture = nullptr,
            Tracer *extraTracer = nullptr,
            IntrLifecycleObserver *observer = nullptr,
            const std::function<void(UarchSystem &)> &preRun = {});

/** Report from a double-run determinism check. */
struct DeterminismReport
{
    bool ok = false;
    std::uint64_t digestA = 0;
    std::uint64_t digestB = 0;
    std::uint64_t eventsA = 0;
    std::uint64_t eventsB = 0;
    std::string message;
};

/**
 * Run `cfg` twice from identical seeds and compare the full timing
 * digests — the whole-pipeline determinism regression.
 */
DeterminismReport checkDeterminism(const ScenarioConfig &cfg);

/** Report from an architectural-equivalence comparison. */
struct ArchEquivalenceReport
{
    bool ok = false;
    /** Length of the common prefix actually compared. */
    std::size_t comparedPrefix = 0;
    std::string message;
};

/**
 * Compare the commit-order main-code PC streams of two runs of the
 * same program. The shorter stream must be a prefix of the longer
 * one (runs stop at instruction/cycle bounds, so lengths differ),
 * and the common prefix must be at least `minPrefix` long.
 */
ArchEquivalenceReport
checkArchEquivalence(const ScenarioResult &a, const ScenarioResult &b,
                     std::size_t minPrefix);

} // namespace xui

#endif // XUI_VERIFY_SCENARIO_HH
