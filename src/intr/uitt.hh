/**
 * @file
 * User Interrupt Target Table (UITT) — the per-process table that
 * both grants send permission and provides routing state for
 * senduipi. Each entry is a (UPID pointer, user vector) tuple; the
 * senduipi operand is an index into this table.
 */

#ifndef XUI_INTR_UITT_HH
#define XUI_INTR_UITT_HH

#include <cstdint>
#include <vector>

#include "intr/upid.hh"

namespace xui
{

/** One UITT entry: destination descriptor plus the UV to post. */
struct UittEntry
{
    bool valid = false;
    /** Non-owning; the kernel model owns all UPIDs. */
    Upid *upid = nullptr;
    /** User vector (6 bits) delivered to the receiver. */
    std::uint8_t userVector = 0;
};

/** Per-process user-interrupt target table. */
class Uitt
{
  public:
    /** @param capacity maximum number of send routes. */
    explicit Uitt(std::size_t capacity = 256);

    /**
     * Install a route (kernel-side register_sender()).
     * @return the UITT index to pass to senduipi, or -1 if full.
     */
    int allocate(Upid *upid, std::uint8_t user_vector);

    /** Remove a route; the index may be reused. */
    void release(int index);

    /** Entry lookup used by the senduipi microcode. */
    const UittEntry *lookup(int index) const;

    /** Number of valid entries. */
    std::size_t validCount() const;

    std::size_t capacity() const { return entries_.size(); }

  private:
    std::vector<UittEntry> entries_;
};

} // namespace xui

#endif // XUI_INTR_UITT_HH
