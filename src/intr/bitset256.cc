#include "intr/bitset256.hh"

#include <bit>
#include <cassert>

namespace xui
{

void
Bitset256::set(unsigned idx)
{
    assert(idx < 256);
    words_[idx >> 6] |= 1ull << (idx & 63);
}

void
Bitset256::clear(unsigned idx)
{
    assert(idx < 256);
    words_[idx >> 6] &= ~(1ull << (idx & 63));
}

bool
Bitset256::test(unsigned idx) const
{
    assert(idx < 256);
    return (words_[idx >> 6] >> (idx & 63)) & 1;
}

bool
Bitset256::any() const
{
    return words_[0] | words_[1] | words_[2] | words_[3];
}

unsigned
Bitset256::count() const
{
    unsigned total = 0;
    for (auto w : words_)
        total += static_cast<unsigned>(std::popcount(w));
    return total;
}

unsigned
Bitset256::findFirst() const
{
    for (unsigned i = 0; i < 4; ++i) {
        if (words_[i])
            return i * 64 +
                static_cast<unsigned>(std::countr_zero(words_[i]));
    }
    return 256;
}

unsigned
Bitset256::findHighest() const
{
    for (int i = 3; i >= 0; --i) {
        if (words_[i])
            return static_cast<unsigned>(i) * 64 + 63 -
                static_cast<unsigned>(std::countl_zero(words_[i]));
    }
    return 256;
}

void
Bitset256::clearAll()
{
    words_ = {0, 0, 0, 0};
}

Bitset256
Bitset256::operator&(const Bitset256 &o) const
{
    Bitset256 r;
    for (unsigned i = 0; i < 4; ++i)
        r.words_[i] = words_[i] & o.words_[i];
    return r;
}

Bitset256
Bitset256::operator|(const Bitset256 &o) const
{
    Bitset256 r;
    for (unsigned i = 0; i < 4; ++i)
        r.words_[i] = words_[i] | o.words_[i];
    return r;
}

} // namespace xui
