#include "intr/upid.hh"

#include <cassert>

namespace xui
{

void
Upid::setOutstanding(bool v)
{
    if (v)
        low_ |= 1ull;
    else
        low_ &= ~1ull;
}

void
Upid::setSuppressed(bool v)
{
    if (v)
        low_ |= 2ull;
    else
        low_ &= ~2ull;
}

std::uint8_t
Upid::notificationVector() const
{
    return static_cast<std::uint8_t>((low_ >> 16) & 0xffull);
}

void
Upid::setNotificationVector(std::uint8_t nv)
{
    low_ = (low_ & ~(0xffull << 16)) |
        (static_cast<std::uint64_t>(nv) << 16);
}

std::uint32_t
Upid::destination() const
{
    return static_cast<std::uint32_t>((low_ >> 32) & 0xffffffffull);
}

void
Upid::setDestination(std::uint32_t apic_id)
{
    low_ = (low_ & 0xffffffffull) |
        (static_cast<std::uint64_t>(apic_id) << 32);
}

Upid::PostResult
Upid::post(unsigned user_vector)
{
    assert(user_vector < kNumUserVectors);
    // UV is a 6-bit field in the UITT entry; mask like hardware would
    // so an out-of-range vector can't become UB in the shift below.
    pir_ |= 1ull << (user_vector & (kNumUserVectors - 1));
    PostResult result{true, false};
    if (!suppressed() && !outstanding()) {
        setOutstanding(true);
        result.sendIpi = true;
    }
    return result;
}

std::uint64_t
Upid::fetchAndClearPir()
{
    std::uint64_t pending = pir_;
    pir_ = 0;
    return pending;
}

} // namespace xui
