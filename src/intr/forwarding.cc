#include "intr/forwarding.hh"

namespace xui
{

Bitset256
Dupid::fetchAndClear()
{
    Bitset256 out = pending_;
    pending_.clearAll();
    return out;
}

ForwardOutcome
ForwardingUnit::onInterrupt(unsigned vector)
{
    if (!enabled_.test(vector))
        return ForwardOutcome::NotForwarded;
    uirr_.set(vector);
    return active_.test(vector) ? ForwardOutcome::FastPath
                                : ForwardOutcome::SlowPath;
}

unsigned
ForwardingUnit::takeHighestUirr()
{
    unsigned v = uirr_.findHighest();
    if (v < 256)
        uirr_.clear(v);
    return v;
}

} // namespace xui
