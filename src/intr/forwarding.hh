/**
 * @file
 * Interrupt forwarding — the xUI local-APIC extension that routes
 * device interrupts destined for a core (APICID/vector) to the
 * user-level thread currently running there (paper §4.5).
 *
 * Two new 256-bit APIC registers control routing:
 *   - forwarding_enabled: which vectors are forwarded at all on this
 *     core;
 *   - forwarded_active: which of those belong to the thread currently
 *     running (written by the kernel on every context switch).
 *
 * When a forwarded vector arrives, its bit is set in the UIRR MSR;
 * then either the fast path (bit also in forwarded_active: deliver
 * straight to the user thread) or the slow path (kernel trap; vector
 * parked in the owner's DUPID for delivery at next resume) is taken.
 */

#ifndef XUI_INTR_FORWARDING_HH
#define XUI_INTR_FORWARDING_HH

#include <cstdint>

#include "intr/bitset256.hh"

namespace xui
{

/**
 * Device User Interrupt Posted Descriptor — the per-thread slow-path
 * parking area for forwarded device interrupts, analogous to the
 * UPID's PIR but written by the kernel trap handler rather than a
 * sending core.
 */
class Dupid
{
  public:
    /** Park a vector for later delivery. */
    void post(unsigned vector) { pending_.set(vector); }

    /** True when any vector is parked. */
    bool hasPending() const { return pending_.any(); }

    /** Fetch and clear all parked vectors. */
    Bitset256 fetchAndClear();

    const Bitset256 &pending() const { return pending_; }

    /** Raw restore, for checkpoint load. */
    void loadPending(const Bitset256 &pending) { pending_ = pending; }

  private:
    Bitset256 pending_;
};

/** Outcome of a device interrupt hitting the forwarding logic. */
enum class ForwardOutcome : std::uint8_t
{
    /** Vector not in forwarding_enabled: conventional interrupt. */
    NotForwarded,
    /** Forwarded straight to the running user thread. */
    FastPath,
    /**
     * Forwarded but the owner thread is not running: conventional
     * interrupt to the kernel, which parks the vector in the DUPID.
     */
    SlowPath,
};

/** The forwarding extension state of one local APIC. */
class ForwardingUnit
{
  public:
    /** Kernel-programmed: enable forwarding of a vector on this core. */
    void enableVector(unsigned vector) { enabled_.set(vector); }

    /** Kernel-programmed: stop forwarding a vector. */
    void disableVector(unsigned vector) { enabled_.clear(vector); }

    bool vectorEnabled(unsigned vector) const
    {
        return enabled_.test(vector);
    }

    /**
     * Written by the kernel on context switch: the full set of
     * vectors owned by the thread now running on this core.
     */
    void setActiveMask(const Bitset256 &mask) { active_ = mask; }

    const Bitset256 &activeMask() const { return active_; }
    const Bitset256 &enabledMask() const { return enabled_; }

    /**
     * Process an arriving interrupt. Sets UIRR for forwarded vectors
     * and classifies the delivery path.
     */
    ForwardOutcome onInterrupt(unsigned vector);

    /** UIRR MSR: requested (forwarded) user interrupts. */
    const Bitset256 &uirr() const { return uirr_; }

    /**
     * Consume the highest-priority requested vector (delivery
     * microcode / kernel trap handler reading UIRR).
     * @return the vector, or 256 when none pending.
     */
    unsigned takeHighestUirr();

    /** Clear a specific UIRR bit. */
    void clearUirr(unsigned vector) { uirr_.clear(vector); }

    /** Raw restore of all three registers, for checkpoint load. */
    void loadRegisters(const Bitset256 &enabled,
                       const Bitset256 &active, const Bitset256 &uirr)
    {
        enabled_ = enabled;
        active_ = active;
        uirr_ = uirr;
    }

  private:
    Bitset256 enabled_;
    Bitset256 active_;
    Bitset256 uirr_;
};

} // namespace xui

#endif // XUI_INTR_FORWARDING_HH
