#include "intr/policy.hh"

namespace xui
{

const char *
deliveryBehaviorName(DeliveryBehavior b)
{
    switch (b) {
      case DeliveryBehavior::NextOrMissed:
        return "next_or_missed";
      case DeliveryBehavior::NextOnly:
        return "next_only";
    }
    return "?";
}

const char *
triggerModeName(TriggerMode t)
{
    switch (t) {
      case TriggerMode::Edge:
        return "edge";
      case TriggerMode::Level:
        return "level";
    }
    return "?";
}

} // namespace xui
