/**
 * @file
 * Delivery policies and interrupt moderation for the notification
 * channels.
 *
 * Real user-interrupt drivers expose two orthogonal knobs that the
 * baseline protocol leaves implicit:
 *
 *  - DeliveryBehavior (imsar user-interrupt driver semantics):
 *    NEXT_OR_MISSED remembers posts that arrive while the receiver
 *    is descheduled and delivers them on resume (the UPID slow path
 *    — the protocol default); NEXT_ONLY delivers only interrupts
 *    that arrive while the receiver can take them, and missed ones
 *    are dropped by design (accounted as abandoned, never lost).
 *
 *  - TriggerMode: Edge notifies only on the ON 0->1 transition (one
 *    IPI per batch of posts — the UPID default); Level re-triggers a
 *    scan whenever a post finds pending state already set, which
 *    costs redundant scans but self-heals a dropped notification
 *    without waiting for the rescan backoff.
 *
 * On top of either behavior sits hardware-style interrupt
 * moderation (NIC ITR registers): a per-vector minimum gap between
 * notifications plus a coalescing window that batches every post in
 * the window into a single delivery. The VectorModerator is a pure
 * state machine — the kernel owns the clock and the flush event, so
 * the moderator schedules nothing and stays deterministic.
 *
 * Everything here defaults to off: an unconfigured vector takes the
 * exact legacy path, bit-identical to a build without this layer.
 */

#ifndef XUI_INTR_POLICY_HH
#define XUI_INTR_POLICY_HH

#include <cstdint>

#include "des/time.hh"

namespace xui
{

/** What happens to posts that arrive while the receiver can't run
 *  the handler (imsar NEXT_ONLY vs NEXT_OR_MISSED). */
enum class DeliveryBehavior : std::uint8_t
{
    /** Posts while descheduled are parked and drained on resume. */
    NextOrMissed,
    /** Posts while descheduled are missed (abandoned by design). */
    NextOnly,
};

/** When the notification is (re)raised relative to pending state. */
enum class TriggerMode : std::uint8_t
{
    /** Notify only on the ON 0->1 transition (UPID default). */
    Edge,
    /** Pending state re-triggers a scan on every post. */
    Level,
};

/**
 * Mixed-criticality priority levels per vector (RT-ULI style).
 * Level 0 is the default (best-effort, the legacy protocol); higher
 * levels preempt running lower-level handlers. Four levels match the
 * latency-critical / best-effort co-tenancy scenarios.
 */
constexpr unsigned kNumPriorityLevels = 4;

/** Clamp a requested priority into the supported level range. */
constexpr std::uint8_t
clampPriority(unsigned prio)
{
    return static_cast<std::uint8_t>(
        prio < kNumPriorityLevels ? prio : kNumPriorityLevels - 1);
}

/** Per-vector delivery policy. The default is the legacy protocol. */
struct DeliveryPolicy
{
    DeliveryBehavior behavior = DeliveryBehavior::NextOrMissed;
    TriggerMode trigger = TriggerMode::Edge;
    /**
     * Delivery priority level (0 = best-effort default). A pending
     * vector whose level exceeds the running handler's preempts it:
     * the handler frame is saved (preempt_save), the higher vector
     * delivers nested, and the preempted handler resumes afterwards
     * (preempt_restore). Level 0 everywhere is bit-identical to the
     * pre-priority protocol.
     */
    std::uint8_t priority = 0;
};

const char *deliveryBehaviorName(DeliveryBehavior b);
const char *triggerModeName(TriggerMode t);

/** ITR-style moderation knobs. Zero values disable each mechanism. */
struct ModerationParams
{
    /** Minimum gap between notifications (ITR register). */
    Cycles itr = 0;
    /** Posts within this window of the first batch into one
     *  notification (0 = deliver the first post immediately). */
    Cycles coalesceWindow = 0;

    bool enabled() const { return itr != 0 || coalesceWindow != 0; }
};

/**
 * Per-vector moderation state machine. The caller consults onPost()
 * for every post, schedules a flush event when told to, and calls
 * onFlush() when that event fires. cancelFlush() models a flush
 * event lost to fault injection: pending posts stay parked for the
 * recovery/resume paths and later posts re-arm a fresh window.
 */
class VectorModerator
{
  public:
    explicit VectorModerator(ModerationParams params)
        : params_(params)
    {
    }

    /** What the kernel should do with the post it just made. */
    enum class Verdict : std::uint8_t
    {
        /** Notify now (ITR gap satisfied, no window configured). */
        Deliver,
        /** First post of a batch: schedule a flush at flushAt(). */
        OpenWindow,
        /** A flush is already scheduled; this post rides along. */
        Coalesced,
    };

    /** Account a post at `now` and decide the notification's fate. */
    Verdict onPost(Cycles now)
    {
        ++posts_;
        if (flushPending_) {
            ++pendingPosts_;
            return Verdict::Coalesced;
        }
        if (params_.itr != 0 && now < nextAllowed_) {
            // ITR suppression: batch until the gap expires (and at
            // least a full coalescing window from this post).
            flushPending_ = true;
            flushAt_ = nextAllowed_;
            if (params_.coalesceWindow != 0 &&
                now + params_.coalesceWindow > flushAt_)
                flushAt_ = now + params_.coalesceWindow;
            pendingPosts_ = 1;
            return Verdict::OpenWindow;
        }
        if (params_.itr == 0 && params_.coalesceWindow != 0) {
            // Pure coalescer (no rate limit): every batch starts
            // with a full window.
            flushPending_ = true;
            flushAt_ = now + params_.coalesceWindow;
            pendingPosts_ = 1;
            return Verdict::OpenWindow;
        }
        // ITR gap satisfied: the first event of a burst notifies
        // immediately (NIC ITR semantics), the gap starts now.
        nextAllowed_ = now + params_.itr;
        return Verdict::Deliver;
    }

    /**
     * The scheduled flush event fired: one notification now covers
     * every pending post. Starts the next ITR gap.
     * @return the number of posts the notification covers.
     */
    std::uint64_t onFlush(Cycles now)
    {
        std::uint64_t n = pendingPosts_;
        flushPending_ = false;
        pendingPosts_ = 0;
        nextAllowed_ = now + params_.itr;
        return n;
    }

    /** The scheduled flush was lost (fault injection). */
    std::uint64_t cancelFlush()
    {
        std::uint64_t n = pendingPosts_;
        flushPending_ = false;
        pendingPosts_ = 0;
        return n;
    }

    bool flushPending() const { return flushPending_; }
    Cycles flushAt() const { return flushAt_; }
    std::uint64_t posts() const { return posts_; }
    const ModerationParams &params() const { return params_; }

  private:
    ModerationParams params_;
    bool flushPending_ = false;
    Cycles flushAt_ = 0;
    Cycles nextAllowed_ = 0;
    /** Posts covered by the currently scheduled flush. */
    std::uint64_t pendingPosts_ = 0;
    std::uint64_t posts_ = 0;
};

} // namespace xui

#endif // XUI_INTR_POLICY_HH
