#include "intr/uitt.hh"

#include <cassert>

namespace xui
{

Uitt::Uitt(std::size_t capacity)
    : entries_(capacity)
{}

int
Uitt::allocate(Upid *upid, std::uint8_t user_vector)
{
    assert(upid != nullptr);
    assert(user_vector < kNumUserVectors);
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (!entries_[i].valid) {
            entries_[i] = UittEntry{true, upid, user_vector};
            return static_cast<int>(i);
        }
    }
    return -1;
}

void
Uitt::release(int index)
{
    if (index < 0 ||
        static_cast<std::size_t>(index) >= entries_.size())
        return;
    entries_[static_cast<std::size_t>(index)] = UittEntry{};
}

const UittEntry *
Uitt::lookup(int index) const
{
    if (index < 0 ||
        static_cast<std::size_t>(index) >= entries_.size())
        return nullptr;
    const UittEntry &e = entries_[static_cast<std::size_t>(index)];
    return e.valid ? &e : nullptr;
}

std::size_t
Uitt::validCount() const
{
    std::size_t n = 0;
    for (const auto &e : entries_)
        n += e.valid ? 1 : 0;
    return n;
}

} // namespace xui
