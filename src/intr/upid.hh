/**
 * @file
 * User Posted Interrupt Descriptor (UPID) — the per-thread in-memory
 * descriptor at the heart of Intel UIPI routing (paper Table 1).
 *
 * Layout (128 bits):
 *   bit 0       ON    outstanding notification
 *   bit 1       SN    suppressed notification
 *   bits 23:16  NV    notification vector (conventional IPI vector)
 *   bits 63:32  NDST  APIC ID of the core the thread runs on
 *   bits 127:64 PIR   posted interrupt requests, one bit per user
 *                     vector (UV, 6-bit space)
 *
 * The struct stores the two raw 64-bit words exactly as hardware
 * would, with accessors implementing the field encodings, so tests
 * can validate the bit-level layout against Table 1.
 */

#ifndef XUI_INTR_UPID_HH
#define XUI_INTR_UPID_HH

#include <cstdint>

namespace xui
{

/** Number of user interrupt vectors (6-bit UV space). */
constexpr unsigned kNumUserVectors = 64;

/** Per-thread posted-interrupt descriptor. */
class Upid
{
  public:
    Upid() : low_(0), pir_(0) {}

    /** Result of posting a user vector via senduipi. */
    struct PostResult
    {
        /** The PIR bit was newly set (always true currently). */
        bool posted;
        /**
         * A notification IPI must be sent: SN was clear and this
         * post transitioned ON from 0 to 1.
         */
        bool sendIpi;
    };

    /** ON: a notification is outstanding for one or more UIs. */
    bool outstanding() const { return low_ & 1ull; }
    void setOutstanding(bool v);

    /** SN: senders should not notify (receiver descheduled). */
    bool suppressed() const { return (low_ >> 1) & 1ull; }
    void setSuppressed(bool v);

    /** NV: the conventional vector used for the notification IPI. */
    std::uint8_t notificationVector() const;
    void setNotificationVector(std::uint8_t nv);

    /** NDST: APIC ID of the core the owner thread is running on. */
    std::uint32_t destination() const;
    void setDestination(std::uint32_t apic_id);

    /** PIR: pending user vectors. */
    std::uint64_t pir() const { return pir_; }

    /** True when any user vector is posted. */
    bool hasPending() const { return pir_ != 0; }

    /**
     * Post a user vector, applying the senduipi protocol: set the
     * PIR bit; when SN is clear and ON was clear, set ON and request
     * an IPI. When SN is set, the post is recorded but no IPI is
     * requested. When ON is already set an IPI is already in flight,
     * so none is requested.
     */
    PostResult post(unsigned user_vector);

    /**
     * Atomically fetch and clear the PIR, as the notification
     * processing microcode does when moving posted vectors to UIRR.
     */
    std::uint64_t fetchAndClearPir();

    /** Clear ON (done during notification processing). */
    void clearOutstanding() { setOutstanding(false); }

    /** Raw words for layout validation. */
    std::uint64_t rawLow() const { return low_; }
    std::uint64_t rawPir() const { return pir_; }

    /** Raw word restore, for checkpoint load. */
    void loadRaw(std::uint64_t low, std::uint64_t pir)
    {
        low_ = low;
        pir_ = pir;
    }

  private:
    std::uint64_t low_;
    std::uint64_t pir_;
};

} // namespace xui

#endif // XUI_INTR_UPID_HH
