/**
 * @file
 * Kernel Bypass Timer (KB_Timer) architectural state (paper §4.3).
 *
 * One KB_Timer exists per physical core and is multiplexed among
 * kernel threads by the OS. User code programs it with two new
 * instructions, set_timer(cycles, mode) and clear_timer(); the kernel
 * gates access and assigns the delivery vector through kb_config_MSR
 * and saves/restores timer state across context switches through
 * kb_timer_state_MSR. Delivery bypasses the UPID entirely, entering
 * the interrupt_delivery microcode directly (~105 cycles).
 */

#ifndef XUI_INTR_KB_TIMER_HH
#define XUI_INTR_KB_TIMER_HH

#include <cstdint>

#include "des/time.hh"

namespace xui
{

/** Timer operating mode (the 1-bit mode flag of set_timer). */
enum class KbTimerMode : std::uint8_t
{
    OneShot = 0,   ///< `cycles` operand is an absolute deadline
    Periodic = 1,  ///< `cycles` operand is a period
};

/** Saved timer image the kernel keeps per kernel thread. */
struct KbTimerSave
{
    bool armed = false;
    KbTimerMode mode = KbTimerMode::OneShot;
    /** Absolute deadline at save time. */
    Cycles deadline = 0;
    /** Period (periodic mode only). */
    Cycles period = 0;
    /** Vector assigned by the kernel at enable time. */
    std::uint8_t vector = 0;
};

/** Architectural state of one per-core KB timer. */
class KbTimer
{
  public:
    KbTimer() = default;

    /** kb_config_MSR: kernel enables the timer and sets the vector. */
    void configure(bool enabled, std::uint8_t vector);

    bool enabled() const { return enabled_; }
    std::uint8_t vector() const { return vector_; }

    /**
     * set_timer(cycles, mode) — user-level instruction.
     * One-shot mode interprets `cycles` as an absolute deadline (as
     * the paper specifies, mirroring APIC TSC-deadline mode);
     * periodic mode interprets it as a period with the first firing
     * one period from `now`.
     * @return false when the timer is not enabled by the kernel
     *         (treated as #UD / no-op for unauthorized threads).
     */
    bool setTimer(Cycles now, Cycles cycles, KbTimerMode mode);

    /** clear_timer() — disarm without disabling. */
    void clearTimer();

    bool armed() const { return armed_; }
    KbTimerMode mode() const { return mode_; }
    Cycles deadline() const { return deadline_; }
    Cycles period() const { return period_; }

    /** True when the deadline has been reached. */
    bool expired(Cycles now) const
    {
        return enabled_ && armed_ && now >= deadline_;
    }

    /**
     * Acknowledge a firing: advance the deadline (periodic) or
     * disarm (one-shot). Call exactly once per delivered interrupt,
     * immediately after observing expired() — if user code can run
     * in between (a delayed in-flight fire), use consumeExpiry()
     * instead: acknowledge() after a one-shot re-arm disarms the
     * *new* programming (the arm-while-firing edge, pinned by
     * KbTimer.AcknowledgeAfterRearmDisarmsNewProgramming).
     */
    void acknowledge();

    /**
     * Consume an expiry only if the timer is still expired at `now`:
     * advance the deadline (periodic) or disarm (one-shot) and
     * return true. A clear_timer() or a re-arm to a future deadline
     * between the expiry observation and this call makes it a no-op,
     * so an in-flight fire cancelled by newer programming cannot
     * corrupt that programming.
     * @return true when an expiry was consumed (deliver the
     *         interrupt); false when the fire was cancelled.
     */
    bool consumeExpiry(Cycles now);

    /**
     * kb_timer_state_MSR read: capture state for a context switch.
     * Disarms the live timer so it will not fire for the next thread.
     */
    KbTimerSave saveAndDisarm();

    /**
     * Restore a previously saved image when its thread resumes.
     * @return true when the saved deadline already passed, in which
     *         case the kernel must deliver the missed interrupt via
     *         the slow path (paper §4.3).
     */
    bool restore(const KbTimerSave &save, Cycles now);

    /**
     * Raw state restore for checkpoint load. Unlike restore(), this
     * applies no missed-deadline policy — the bits come back exactly
     * as they were saved.
     */
    void loadRawState(bool enabled, std::uint8_t vector, bool armed,
                      KbTimerMode mode, Cycles deadline, Cycles period)
    {
        enabled_ = enabled;
        vector_ = vector;
        armed_ = armed;
        mode_ = mode;
        deadline_ = deadline;
        period_ = period;
    }

  private:
    bool enabled_ = false;
    std::uint8_t vector_ = 0;
    bool armed_ = false;
    KbTimerMode mode_ = KbTimerMode::OneShot;
    Cycles deadline_ = 0;
    Cycles period_ = 0;
};

} // namespace xui

#endif // XUI_INTR_KB_TIMER_HH
