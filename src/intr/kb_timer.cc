#include "intr/kb_timer.hh"

#include <cassert>

namespace xui
{

void
KbTimer::configure(bool enabled, std::uint8_t vector)
{
    enabled_ = enabled;
    vector_ = vector;
    if (!enabled_)
        armed_ = false;
}

bool
KbTimer::setTimer(Cycles now, Cycles cycles, KbTimerMode mode)
{
    if (!enabled_)
        return false;
    mode_ = mode;
    armed_ = true;
    if (mode == KbTimerMode::Periodic) {
        assert(cycles > 0 && "periodic timer needs a nonzero period");
        period_ = cycles;
        deadline_ = now + cycles;
    } else {
        period_ = 0;
        deadline_ = cycles;
    }
    return true;
}

void
KbTimer::clearTimer()
{
    armed_ = false;
}

void
KbTimer::acknowledge()
{
    if (!armed_)
        return;
    if (mode_ == KbTimerMode::Periodic)
        deadline_ += period_;
    else
        armed_ = false;
}

bool
KbTimer::consumeExpiry(Cycles now)
{
    if (!expired(now))
        return false;
    acknowledge();
    return true;
}

KbTimerSave
KbTimer::saveAndDisarm()
{
    KbTimerSave save;
    save.armed = armed_;
    save.mode = mode_;
    save.deadline = deadline_;
    save.period = period_;
    save.vector = vector_;
    armed_ = false;
    return save;
}

bool
KbTimer::restore(const KbTimerSave &save, Cycles now)
{
    armed_ = save.armed;
    mode_ = save.mode;
    deadline_ = save.deadline;
    period_ = save.period;
    vector_ = save.vector;
    if (!armed_)
        return false;
    if (now >= deadline_) {
        // The deadline passed while the thread was descheduled; the
        // kernel delivers the missed interrupt and, for periodic
        // timers, realigns the next deadline past `now`.
        if (mode_ == KbTimerMode::Periodic) {
            while (deadline_ <= now)
                deadline_ += period_;
        } else {
            armed_ = false;
        }
        return true;
    }
    return false;
}

} // namespace xui
