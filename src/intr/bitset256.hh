/**
 * @file
 * 256-bit vector bitmap used by the interrupt-forwarding registers
 * (forwarding_enabled / forwarded_active) and the UIRR MSR. One bit
 * per x86 interrupt vector.
 */

#ifndef XUI_INTR_BITSET256_HH
#define XUI_INTR_BITSET256_HH

#include <array>
#include <cstdint>

namespace xui
{

/** Fixed 256-bit bitmap with scan support (unlike std::bitset). */
class Bitset256
{
  public:
    Bitset256() { clearAll(); }

    /** Set bit `idx` (0..255). */
    void set(unsigned idx);

    /** Clear bit `idx`. */
    void clear(unsigned idx);

    /** Test bit `idx`. */
    bool test(unsigned idx) const;

    /** True when at least one bit is set. */
    bool any() const;

    /** Number of set bits. */
    unsigned count() const;

    /**
     * Index of the lowest set bit, or 256 when empty. Interrupt
     * priority on x86 favours *higher* vectors, so highestSet() is
     * what delivery uses; findFirst is for iteration.
     */
    unsigned findFirst() const;

    /** Index of the highest set bit, or 256 when empty. */
    unsigned findHighest() const;

    /** Clear every bit. */
    void clearAll();

    /** Bitwise AND. */
    Bitset256 operator&(const Bitset256 &o) const;

    /** Bitwise OR. */
    Bitset256 operator|(const Bitset256 &o) const;

    bool operator==(const Bitset256 &o) const { return words_ == o.words_; }

    /** Raw 64-bit word access (word 0 = vectors 0-63). */
    std::uint64_t word(unsigned i) const { return words_[i]; }

    /** Raw word write, for checkpoint restore. */
    void setWord(unsigned i, std::uint64_t v) { words_[i] = v; }

  private:
    std::array<std::uint64_t, 4> words_;
};

} // namespace xui

#endif // XUI_INTR_BITSET256_HH
