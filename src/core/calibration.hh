/**
 * @file
 * Calibration bridge: runs the cycle-tier core model on the paper's
 * microbenchmarks and extracts the per-mechanism costs that the
 * system tier's CostModel consumes — the same two-step methodology
 * the paper used (measure Sapphire Rapids, calibrate gem5, run
 * end-to-end experiments).
 */

#ifndef XUI_CORE_CALIBRATION_HH
#define XUI_CORE_CALIBRATION_HH

#include "des/time.hh"
#include "os/cost_model.hh"

namespace xui
{

/** Costs measured on the cycle-tier simulator. */
struct CalibrationResult
{
    /** Table 2: cycles per successful senduipi. */
    double senduipiCost = 0.0;
    /** Table 2: end-to-end latency, senduipi start -> handler. */
    double endToEndLatency = 0.0;
    /** Table 2: receiver-side cost per UIPI (flush strategy). */
    double receiverCostFlush = 0.0;
    /** Fig. 4: per-event receiver cost, tracked UIPI. */
    double receiverCostTracked = 0.0;
    /** Fig. 4: per-event receiver cost, KB timer + tracking. */
    double receiverCostKbTimer = 0.0;
    /** Table 2: clui cost. */
    double cluiCost = 0.0;
    /** Table 2: stui cost. */
    double stuiCost = 0.0;

    // Fig. 2 timeline (cycles from senduipi dispatch).
    double ipiArrival = 0.0;       ///< IPI interrupts receiver flow
    double notifyStart = 0.0;      ///< first notification event
    double deliveryDone = 0.0;     ///< handler entered
    double uiretCost = 0.0;        ///< uiret duration
};

/**
 * Run the calibration experiments on the cycle tier.
 * @param quick reduce iteration counts (used by tests).
 */
CalibrationResult calibrateFromCycleSim(bool quick = false);

/**
 * A CostModel whose notification entries are replaced by cycle-tier
 * measurements; everything else keeps the paper-derived defaults.
 */
CostModel makeCalibratedCostModel(const CalibrationResult &calib);

} // namespace xui

#endif // XUI_CORE_CALIBRATION_HH
