/**
 * @file
 * Umbrella header for the xUI reproduction library.
 *
 * The library has two tiers:
 *  - the cycle tier (uarch/, workloads/): an out-of-order core model
 *    implementing UIPI and the four xUI extensions — tracked
 *    interrupts, hardware safepoints, the KB timer, and interrupt
 *    forwarding — at micro-op granularity;
 *  - the system tier (des/, os/, runtime/, kv/, net/, accel/):
 *    request-level models of the paper's three end-to-end workloads,
 *    driven by the calibrated CostModel.
 *
 * See core/calibration.hh for regenerating the cost table from the
 * cycle tier.
 */

#ifndef XUI_CORE_XUI_HH
#define XUI_CORE_XUI_HH

// Architectural interrupt state.
#include "intr/bitset256.hh"
#include "intr/forwarding.hh"
#include "intr/kb_timer.hh"
#include "intr/uitt.hh"
#include "intr/upid.hh"

// Cycle tier.
#include "uarch/branch_predictor.hh"
#include "uarch/cache.hh"
#include "uarch/core_params.hh"
#include "uarch/interrupt_unit.hh"
#include "uarch/mcrom.hh"
#include "uarch/ooo_core.hh"
#include "uarch/program.hh"
#include "uarch/uarch_system.hh"
#include "workloads/kernels.hh"

// System tier.
#include "accel/client.hh"
#include "accel/dsa.hh"
#include "des/event_queue.hh"
#include "des/simulation.hh"
#include "des/time.hh"
#include "kv/kvstore.hh"
#include "kv/server.hh"
#include "kv/skiplist.hh"
#include "net/l3fwd.hh"
#include "net/lpm.hh"
#include "net/packet.hh"
#include "net/ring.hh"
#include "net/traffic.hh"
#include "os/cost_model.hh"
#include "os/kernel.hh"
#include "os/timer_core.hh"
#include "runtime/runtime.hh"

// Calibration bridge between the tiers.
#include "core/calibration.hh"

// Measurement utilities.
#include "stats/csv.hh"
#include "stats/distributions.hh"
#include "stats/histogram.hh"
#include "stats/rng.hh"
#include "stats/summary.hh"
#include "stats/table.hh"

#endif // XUI_CORE_XUI_HH
