#include "core/calibration.hh"

#include <algorithm>

#include "uarch/uarch_system.hh"
#include "workloads/kernels.hh"

namespace xui
{

namespace
{

/** Cycles per committed instruction of a program, standalone. */
double
cyclesPerInst(const Program &prog, std::uint64_t insts)
{
    CoreParams params;
    UarchSystem sys(7);
    OooCore &core = sys.addCore(params, &prog);
    Cycles cycles = core.runUntilCommitted(insts, insts * 600);
    return static_cast<double>(cycles) /
        static_cast<double>(core.stats().committedInsts);
}

/** clui/stui pair: loop with the pair minus plain loop. */
double
measureCluiStuiPair(std::uint64_t iters)
{
    ProgramBuilder with("cluistui");
    std::uint32_t top = with.here();
    with.clui();
    with.stui();
    with.intAlu(reg::kGpr0 + 1, reg::kGpr0 + 1);
    with.jump(top);
    Program prog_with = with.build();

    ProgramBuilder base("base");
    std::uint32_t top2 = base.here();
    base.intAlu(reg::kGpr0 + 1, reg::kGpr0 + 1);
    base.jump(top2);
    Program prog_base = base.build();

    double with_cpi = cyclesPerInst(prog_with, iters * 4);
    double base_cpi = cyclesPerInst(prog_base, iters * 2);
    // Per iteration: 4 insts with vs 2 insts base.
    return with_cpi * 4.0 - base_cpi * 2.0;
}

/**
 * Per-event receiver cost of an interrupt mechanism, measured as the
 * mean delivery-path occupancy (accept -> uiret retirement) over
 * periodic interrupts into the fib kernel — the quantity behind the
 * paper's 645/231/105-cycle comparison (Fig. 4).
 */
double
measureReceiverCost(DeliveryStrategy strategy, bool via_upid,
                    Cycles interval, std::uint64_t insts)
{
    KernelOptions opts;
    Program prog = makeFib(opts);

    CoreParams params;
    params.strategy = strategy;

    UarchSystem sys(11);
    OooCore &core = sys.addCore(params, &prog);
    std::uint64_t target = insts;
    Cycles elapsed = 0;
    if (via_upid) {
        core.upid().setNotificationVector(core.uinv());
        core.upid().setDestination(core.id());
        while (core.stats().committedInsts < target &&
               elapsed < insts * 700) {
            sys.run(interval);
            elapsed += interval;
            sys.injectUipi(core, 3);
        }
    } else {
        core.kbTimer().configure(true, 0x21);
        core.kbTimer().setTimer(0, interval, KbTimerMode::Periodic);
        core.runUntilCommitted(insts, insts * 700);
    }
    const auto &recs = core.stats().intrRecords;
    if (recs.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &r : recs)
        sum += static_cast<double>(r.uiretCommitAt - r.acceptedAt);
    return sum / static_cast<double>(recs.size());
}

} // namespace

CalibrationResult
calibrateFromCycleSim(bool quick)
{
    CalibrationResult out;
    std::uint64_t iters = quick ? 200 : 2000;
    std::uint64_t insts = quick ? 30000 : 300000;
    Cycles interval = usToCycles(5);

    // ----- sender + receiver pair: Table 2 / Fig. 2 -----------------
    {
        // A slow sender (long serial pad) so every delivery fully
        // completes before the next senduipi: sends and receives
        // then pair one-to-one.
        ProgramBuilder sb("slow-sender");
        std::uint32_t top = sb.here();
        sb.sendUipi(0);
        for (int i = 0; i < 900; ++i)
            sb.intMult(reg::kGpr0 + 1, reg::kGpr0 + 1);
        sb.loopBranch(top, 1u << 30);
        KernelOptions hopts;
        Program sender_prog = sb.build();
        Program receiver_prog = makeSpinLoop(hopts);

        CoreParams params;
        params.strategy = DeliveryStrategy::Flush;
        UarchSystem sys(5);
        OooCore &sender = sys.addCore(params, &sender_prog);
        OooCore &receiver = sys.addCore(params, &receiver_prog);
        (void)sender;
        sys.registerRoute(receiver, 3);

        sys.run(quick ? 200000 : 1000000);

        const auto &sends = sender.stats().sendRecords;
        const auto &recvs = receiver.stats().intrRecords;
        double wire = 0, notify = 0, deliver = 0, uiret = 0;
        std::size_t used = 0;
        std::size_t si = 0;
        for (std::size_t i = 1; i < recvs.size(); ++i) {
            const auto &r = recvs[i];
            // Pair each delivery with the latest send whose ICR
            // write executed before the IPI arrived.
            while (si + 1 < sends.size() &&
                   sends[si + 1].icrCommitAt != 0 &&
                   sends[si + 1].icrCommitAt <= r.raisedAt)
                ++si;
            const auto &s = sends[si];
            if (s.icrCommitAt == 0 || r.uiretCommitAt == 0)
                continue;
            if (r.raisedAt < s.icrCommitAt)
                continue;
            wire += static_cast<double>(r.raisedAt - s.icrCommitAt);
            notify += static_cast<double>(r.firstUopCommitAt -
                                          r.raisedAt);
            deliver += static_cast<double>(r.deliveryCommitAt -
                                           r.firstUopCommitAt);
            uiret += static_cast<double>(r.uiretCommitAt -
                                         r.deliveryCommitAt);
            ++used;
        }
        if (used) {
            out.ipiArrival = wire / used;
            out.notifyStart = notify / used;
            out.deliveryDone = deliver / used;
            out.uiretCost = uiret / used;
        }

        // senduipi sender-side cost: fast sender loop throughput.
        Program fast = makeSenderLoop(0);
        UarchSystem sys2(6);
        OooCore &s2 = sys2.addCore(params, &fast);
        OooCore &r2 = sys2.addCore(params, &receiver_prog);
        sys2.registerRoute(r2, 3);
        sys2.run(quick ? 100000 : 400000);
        std::size_t n = 0;
        for (const auto &rec : s2.stats().sendRecords)
            n += rec.icrCommitAt != 0;
        if (n > 1) {
            out.senduipiCost =
                static_cast<double>(s2.now()) /
                static_cast<double>(n);
        }

        // End-to-end: senduipi execution + wire + receiver-side
        // flush/notify/delivery up to the handler's first work.
        out.endToEndLatency = out.senduipiCost + out.ipiArrival +
            out.notifyStart + out.deliveryDone;
    }

    // ----- receiver per-event costs (Fig. 4 mechanisms) --------------
    out.receiverCostFlush = measureReceiverCost(
        DeliveryStrategy::Flush, true, interval, insts);
    out.receiverCostTracked = measureReceiverCost(
        DeliveryStrategy::Tracked, true, interval, insts);
    out.receiverCostKbTimer = measureReceiverCost(
        DeliveryStrategy::Tracked, false, interval, insts);

    // Table 2 receiver cost: delivery latency on the spin receiver
    // under flush (accept -> uiret commit).
    out.cluiCost = 2.0;
    double pair = measureCluiStuiPair(iters);
    out.stuiCost = std::max(0.0, pair - out.cluiCost);

    return out;
}

CostModel
makeCalibratedCostModel(const CalibrationResult &calib)
{
    CostModel costs;
    auto merge = [](Cycles &field, double measured) {
        if (measured > 0.0)
            field = static_cast<Cycles>(measured + 0.5);
    };
    merge(costs.uipiFlushReceive, calib.receiverCostFlush);
    merge(costs.uipiTrackedReceive, calib.receiverCostTracked);
    merge(costs.kbTimerReceive, calib.receiverCostKbTimer);
    merge(costs.forwardedReceive, calib.receiverCostKbTimer);
    merge(costs.senduipiCost, calib.senduipiCost);
    // CostModel::ipiWire is senduipi-start -> receiver interrupted.
    merge(costs.ipiWire, calib.senduipiCost + calib.ipiArrival);
    merge(costs.cluiStuiPair, calib.cluiCost + calib.stuiCost);
    return costs;
}

} // namespace xui
