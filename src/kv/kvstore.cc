#include "kv/kvstore.hh"

#include <cstdio>

namespace xui
{

KvStore::KvStore(const KvWorkloadParams &params, std::uint64_t seed)
    : params_(params), data_(seed)
{}

std::string
KvStore::keyFor(std::uint64_t i)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "key%012llu",
                  static_cast<unsigned long long>(i));
    return buf;
}

void
KvStore::preload()
{
    for (std::uint64_t i = 0; i < params_.numKeys; ++i)
        data_.put(keyFor(i), "value" + std::to_string(i));
}

Cycles
KvStore::execute(const KvRequest &req)
{
    switch (req.op) {
      case KvOp::Get:
        (void)data_.get(req.key);
        return req.serviceTime ? req.serviceTime
                               : params_.getServiceTime;
      case KvOp::Scan:
        (void)data_.scan(req.key, params_.scanLimit);
        return req.serviceTime ? req.serviceTime
                               : params_.scanServiceTime;
      case KvOp::Put:
        data_.put(req.key, "v");
        return req.serviceTime ? req.serviceTime
                               : params_.getServiceTime;
    }
    return params_.getServiceTime;
}

KvLoadGen::KvLoadGen(const KvWorkloadParams &params, double rate_rps,
                     Rng rng)
    : params_(params),
      rateRps_(rate_rps),
      arrivals_(rate_rps / static_cast<double>(kCyclesPerSec),
                rng.split()),
      rng_(rng)
{}

KvRequest
KvLoadGen::next()
{
    KvRequest req;
    req.id = nextId_++;
    req.arrival = arrivals_.nextArrival();
    bool is_get = rng_.nextBool(params_.getFraction);
    req.op = is_get ? KvOp::Get : KvOp::Scan;
    req.serviceTime = is_get ? params_.getServiceTime
                             : params_.scanServiceTime;
    req.key = KvStore::keyFor(
        rng_.nextBounded(params_.numKeys ? params_.numKeys : 1));
    return req;
}

} // namespace xui
