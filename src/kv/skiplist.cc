#include "kv/skiplist.hh"

#include <cassert>

namespace xui
{

SkipList::SkipList(std::uint64_t seed)
    : head_(new Node("", "", kMaxLevel)), level_(1), size_(0),
      rng_(seed)
{}

SkipList::~SkipList()
{
    Node *node = head_;
    while (node) {
        Node *next = node->next[0];
        delete node;
        node = next;
    }
}

unsigned
SkipList::randomHeight()
{
    unsigned h = 1;
    while (h < kMaxLevel && rng_.nextBool(0.25))
        ++h;
    return h;
}

SkipList::Node *
SkipList::findPredecessors(const std::string &key,
                           Node **preds) const
{
    Node *node = head_;
    for (int lvl = static_cast<int>(level_) - 1; lvl >= 0; --lvl) {
        while (node->next[lvl] && node->next[lvl]->key < key)
            node = node->next[lvl];
        if (preds)
            preds[lvl] = node;
    }
    return node->next[0];
}

bool
SkipList::put(const std::string &key, std::string value)
{
    Node *preds[kMaxLevel];
    for (unsigned i = 0; i < kMaxLevel; ++i)
        preds[i] = head_;
    Node *hit = findPredecessors(key, preds);

    if (hit && hit->key == key) {
        hit->value = std::move(value);
        return false;
    }

    unsigned height = randomHeight();
    if (height > level_)
        level_ = height;

    Node *node = new Node(key, std::move(value), height);
    for (unsigned lvl = 0; lvl < height; ++lvl) {
        node->next[lvl] = preds[lvl]->next[lvl];
        preds[lvl]->next[lvl] = node;
    }
    ++size_;
    return true;
}

std::optional<std::string>
SkipList::get(const std::string &key) const
{
    Node *hit = findPredecessors(key, nullptr);
    if (hit && hit->key == key)
        return hit->value;
    return std::nullopt;
}

bool
SkipList::erase(const std::string &key)
{
    Node *preds[kMaxLevel];
    for (unsigned i = 0; i < kMaxLevel; ++i)
        preds[i] = head_;
    Node *hit = findPredecessors(key, preds);
    if (!hit || hit->key != key)
        return false;

    for (unsigned lvl = 0; lvl < level_; ++lvl) {
        if (preds[lvl]->next[lvl] == hit)
            preds[lvl]->next[lvl] = hit->next[lvl];
    }
    delete hit;
    while (level_ > 1 && head_->next[level_ - 1] == nullptr)
        --level_;
    --size_;
    return true;
}

std::vector<std::pair<std::string, std::string>>
SkipList::scan(const std::string &start, std::size_t limit) const
{
    std::vector<std::pair<std::string, std::string>> out;
    Node *node = findPredecessors(start, nullptr);
    while (node && out.size() < limit) {
        out.emplace_back(node->key, node->value);
        node = node->next[0];
    }
    return out;
}

} // namespace xui
