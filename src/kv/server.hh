/**
 * @file
 * End-to-end KV server simulation (Fig. 7): open-loop load generator
 * feeding a KV store served by the user-level runtime under a chosen
 * preemption mechanism. Records per-type latency distributions.
 */

#ifndef XUI_KV_SERVER_HH
#define XUI_KV_SERVER_HH

#include <cstdint>

#include "des/simulation.hh"
#include "kv/kvstore.hh"
#include "os/cost_model.hh"
#include "runtime/runtime.hh"
#include "stats/histogram.hh"

namespace xui
{

class MetricsRegistry;
class TraceJsonWriter;

/** Configuration for one server run. */
struct KvServerConfig
{
    KvWorkloadParams workload;
    CostModel costs;
    PreemptMode mode = PreemptMode::XuiKbTimer;
    Cycles quantum = usToCycles(5);
    /**
     * Optional adaptive quantum: tighten the preemption interval
     * while the arrival rate crosses the high watermark (see
     * AdaptiveQuantumConfig). Disabled by default — the run is then
     * bit-identical to a fixed-quantum server.
     */
    AdaptiveQuantumConfig adaptive{};
    unsigned workerCores = 1;
    double offeredLoadRps = 50000.0;
    /** Simulated duration. */
    Cycles duration = 200 * kCyclesPerMs;
    /** Warmup fraction excluded from the histograms. */
    double warmupFraction = 0.1;
    std::uint64_t seed = 1;
    /** Optional observability sinks (null = off, zero cost). */
    MetricsRegistry *metrics = nullptr;
    TraceJsonWriter *traceOut = nullptr;
};

/** Results of one run. */
struct KvServerResult
{
    Histogram getLatency;
    Histogram scanLatency;
    std::uint64_t offered = 0;
    std::uint64_t completed = 0;
    double achievedRps = 0.0;
    /** Worker busy fraction (app + overheads). */
    double workerUtilization = 0.0;
    /** Timer-core utilization implied by UipiSwTimer (else 0). */
    double timerCoreUtilization = 0.0;
};

/** Run the Fig. 7 experiment once. */
KvServerResult runKvServer(const KvServerConfig &config);

} // namespace xui

#endif // XUI_KV_SERVER_HH
