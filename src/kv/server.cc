#include "kv/server.hh"

#include <memory>

#include "obs/metrics.hh"
#include "obs/trace_export.hh"

namespace xui
{

KvServerResult
runKvServer(const KvServerConfig &config)
{
    Simulation sim(config.seed);
    std::unique_ptr<DesTraceHook> hook;
    if (config.traceOut != nullptr) {
        hook = std::make_unique<DesTraceHook>(*config.traceOut);
        hook->attach(sim.queue());
    }
    KvStore store(config.workload, config.seed ^ 0xdb);
    store.preload();
    Runtime runtime(sim, config.costs, config.workerCores,
                    config.mode, config.quantum);
    if (config.adaptive.enabled()) {
        runtime.setAdaptiveQuantum(config.adaptive);
        if (config.metrics != nullptr)
            runtime.attachMetrics(*config.metrics);
    }
    KvLoadGen gen(config.workload, config.offeredLoadRps,
                  sim.makeRng());

    KvServerResult result;
    Cycles warmup = static_cast<Cycles>(
        config.warmupFraction * static_cast<double>(config.duration));

    // Pre-generate the arrival schedule and drive it through the
    // event queue (open loop: arrivals never wait for the server).
    std::uint64_t offered = 0;
    while (true) {
        KvRequest req = gen.next();
        if (req.arrival >= config.duration)
            break;
        ++offered;
        sim.queue().scheduleAt(req.arrival, [&, req]() mutable {
            // The UDP request reaches the server; the runtime gets a
            // uthread whose work is the store's service time.
            store.execute(req);
            UThread t;
            t.id = req.id;
            t.tag = req.op == KvOp::Scan ? 1 : 0;
            t.totalWork = req.serviceTime;
            t.onComplete = [&result, warmup,
                            arrival = req.arrival](const UThread &ut) {
                if (ut.enqueuedAt < warmup)
                    return;
                Cycles latency = ut.finishedAt - arrival;
                if (ut.tag == 1)
                    result.scanLatency.record(
                        static_cast<std::int64_t>(latency));
                else
                    result.getLatency.record(
                        static_cast<std::int64_t>(latency));
            };
            runtime.submit(std::move(t));
        });
    }
    result.offered = offered;

    sim.runUntil(config.duration);
    // Achieved rate is what the server sustained over the offered
    // window; the bounded drain below only completes the latency
    // samples of queued requests.
    std::uint64_t completed_in_window = runtime.completed();
    Cycles drain_limit = config.duration * 2;
    while (runtime.inFlight() > 0 && sim.now() < drain_limit) {
        if (!sim.queue().runOne())
            break;
    }

    result.completed = runtime.completed();
    double measured_span =
        cyclesToUs(config.duration) / 1e6;  // seconds
    result.achievedRps =
        static_cast<double>(completed_in_window) / measured_span;

    Cycles busy = 0;
    for (unsigned i = 0; i < runtime.numWorkers(); ++i) {
        const auto &ws = runtime.workerStats(i);
        busy += ws.appCycles + ws.notifCycles + ws.switchCycles;
    }
    result.workerUtilization =
        static_cast<double>(busy) /
        static_cast<double>(config.duration * runtime.numWorkers());
    if (config.mode == PreemptMode::UipiSwTimer) {
        result.timerCoreUtilization = std::min(
            1.0, static_cast<double>(runtime.timerCoreBusy()) /
                     static_cast<double>(config.duration));
    }

    if (config.metrics != nullptr) {
        MetricsRegistry &r = *config.metrics;
        r.counter("kv.offered").inc(result.offered);
        r.counter("kv.completed").inc(result.completed);
        r.latency("kv.get").merge(result.getLatency);
        r.latency("kv.scan").merge(result.scanLatency);
        r.gauge("kv.achieved_rps").set(result.achievedRps);
        r.gauge("kv.worker_utilization")
            .set(result.workerUtilization);
    }
    return result;
}

} // namespace xui
