/**
 * @file
 * Ordered in-memory skiplist — the memtable behind the KV store used
 * in the RocksDB reproduction (§5.3). A real data structure (not a
 * stub): probabilistic tower heights, ordered iteration for SCAN,
 * overwrite semantics for repeated PUTs.
 */

#ifndef XUI_KV_SKIPLIST_HH
#define XUI_KV_SKIPLIST_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "stats/rng.hh"

namespace xui
{

/** string -> string ordered map with skiplist internals. */
class SkipList
{
  public:
    static constexpr unsigned kMaxLevel = 16;

    explicit SkipList(std::uint64_t seed = 0x5eed);
    ~SkipList();

    SkipList(const SkipList &) = delete;
    SkipList &operator=(const SkipList &) = delete;

    /** Insert or overwrite. @return true when the key was new. */
    bool put(const std::string &key, std::string value);

    /** Point lookup. */
    std::optional<std::string> get(const std::string &key) const;

    /** Remove. @return true when the key existed. */
    bool erase(const std::string &key);

    /**
     * Range scan: up to `limit` pairs with key >= start, in order.
     */
    std::vector<std::pair<std::string, std::string>>
    scan(const std::string &start, std::size_t limit) const;

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Current tower height (tests). */
    unsigned level() const { return level_; }

  private:
    struct Node
    {
        std::string key;
        std::string value;
        std::vector<Node *> next;

        Node(std::string k, std::string v, unsigned height)
            : key(std::move(k)), value(std::move(v)),
              next(height, nullptr)
        {}
    };

    unsigned randomHeight();
    /** Last node with key < target at every level. */
    Node *findPredecessors(const std::string &key,
                           Node **preds) const;

    Node *head_;
    unsigned level_;
    std::size_t size_;
    mutable Rng rng_;
};

} // namespace xui

#endif // XUI_KV_SKIPLIST_HH
