/**
 * @file
 * The RocksDB-substitute key-value store plus the paper's workload
 * definition (99.5% GET at 1.2 us, 0.5% SCAN at 580 us; §5.3).
 *
 * The store performs real skiplist operations (so the API and data
 * path are genuine); the *simulated service time* of each request is
 * the paper's measured RocksDB cost, which is what the scheduling
 * experiments consume.
 */

#ifndef XUI_KV_KVSTORE_HH
#define XUI_KV_KVSTORE_HH

#include <cstdint>
#include <string>

#include "des/time.hh"
#include "kv/skiplist.hh"
#include "stats/distributions.hh"
#include "stats/rng.hh"

namespace xui
{

/** Request types in the bimodal workload. */
enum class KvOp : std::uint8_t
{
    Get,
    Scan,
    Put,
};

/** One client request. */
struct KvRequest
{
    std::uint64_t id = 0;
    KvOp op = KvOp::Get;
    std::string key;
    /** Arrival time at the server. */
    Cycles arrival = 0;
    /** Service demand in cycles (drawn at generation time). */
    Cycles serviceTime = 0;
};

/** Workload parameters (paper defaults). */
struct KvWorkloadParams
{
    double getFraction = 0.995;
    Cycles getServiceTime = usToCycles(1.2);
    Cycles scanServiceTime = usToCycles(580);
    /** Keys preloaded into the store. */
    std::size_t numKeys = 10000;
    /** SCAN range length (entries returned). */
    std::size_t scanLimit = 100;
};

/** The key-value store. */
class KvStore
{
  public:
    explicit KvStore(const KvWorkloadParams &params = {},
                     std::uint64_t seed = 0xdb);

    /** Populate `numKeys` sequential keys. */
    void preload();

    /**
     * Execute a request against the real skiplist.
     * @return the configured service time for this operation.
     */
    Cycles execute(const KvRequest &req);

    SkipList &data() { return data_; }
    const KvWorkloadParams &params() const { return params_; }

    /** Key for index i, zero-padded so ordering is lexicographic. */
    static std::string keyFor(std::uint64_t i);

  private:
    KvWorkloadParams params_;
    SkipList data_;
};

/**
 * Open-loop request generator: Poisson arrivals at a configured
 * offered load, bimodal op mix (Caladan-style load generator over
 * UDP, §5.3).
 */
class KvLoadGen
{
  public:
    /**
     * @param params workload definition
     * @param rate_rps offered load in requests/second
     * @param rng private stream
     */
    KvLoadGen(const KvWorkloadParams &params, double rate_rps,
              Rng rng);

    /** Generate the next request (arrival times increase). */
    KvRequest next();

    double rateRps() const { return rateRps_; }

  private:
    KvWorkloadParams params_;
    double rateRps_;
    PoissonProcess arrivals_;
    Rng rng_;
    std::uint64_t nextId_ = 1;
};

} // namespace xui

#endif // XUI_KV_KVSTORE_HH
