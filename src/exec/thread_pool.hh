/**
 * @file
 * Fixed-size work-stealing thread pool — the execution substrate of
 * the deterministic sweep engine (exec/sweep.hh).
 *
 * Each worker owns a deque of tasks; submit() distributes round-
 * robin across the deques, workers pop from the front of their own
 * deque and, when it runs dry, steal from the back of a victim's.
 * The pool never touches simulation state: tasks are opaque
 * closures, and every determinism guarantee lives one layer up in
 * the sweep's ordered reduction.
 *
 * Lock ordering: a task queue's mutex is only ever acquired either
 * alone or while holding `mu_` (the counter mutex); no path holds a
 * queue mutex while taking `mu_`, so the two levels cannot
 * deadlock.
 */

#ifndef XUI_EXEC_THREAD_POOL_HH
#define XUI_EXEC_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace xui::exec
{

/**
 * A pool of `threads` workers executing submitted closures. Tasks
 * may be submitted from any thread; completion is observed through
 * waitIdle(). Destruction drains every queued task first.
 */
class ThreadPool
{
  public:
    explicit ThreadPool(unsigned threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one task (round-robin across worker deques). */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished executing. */
    void waitIdle();

    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

  private:
    /** One worker's deque; stolen from the back, popped from the
     *  front by its owner. */
    struct TaskQueue
    {
        std::mutex mu;
        std::deque<std::function<void()>> tasks;
    };

    bool popOwn(unsigned self, std::function<void()> &out);
    bool stealOther(unsigned self, std::function<void()> &out);
    /** True when any deque holds a task. Caller must hold mu_. */
    bool anyQueued();
    void workerLoop(unsigned self);

    std::vector<std::unique_ptr<TaskQueue>> queues_;
    std::vector<std::thread> workers_;

    std::mutex mu_;
    std::condition_variable wake_;
    std::condition_variable idle_;
    /** Tasks submitted and not yet finished executing. */
    std::size_t pending_ = 0;
    /** Next deque submit() will push to. */
    std::size_t nextQueue_ = 0;
    bool stop_ = false;
};

} // namespace xui::exec

#endif // XUI_EXEC_THREAD_POOL_HH
