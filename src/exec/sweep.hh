/**
 * @file
 * Deterministic fan-out/reduce over independent jobs — the engine
 * behind the parallel verify corpus, the bench config grids, and
 * the golden-corpus tests.
 *
 * Contract: `run(i)` must be a pure function of the job index — in
 * this repo every job constructs its own `UarchSystem` or
 * `Simulation` and owns its RNG streams, tracer, digest, and
 * `MetricsRegistry`, so concurrent jobs share nothing mutable.
 * Under that contract the sweep guarantees:
 *
 *  - results are bit-identical for every thread count: `run` decides
 *    the values, the sweep only decides the schedule;
 *  - `reduce(i, result)` is invoked on the calling thread in strict
 *    job-index order (0, 1, ..., n-1) regardless of completion
 *    order, so order-sensitive reductions — floating-point sums,
 *    first-failure reporting, table rendering, JSON export — are
 *    deterministic too;
 *  - `jobs == 1` runs everything inline on the calling thread with
 *    no pool and no synchronization: the exact legacy serial path,
 *    run(i) immediately followed by reduce(i).
 *
 * The reduction is streaming: job i is reduced as soon as it and
 * every lower-indexed job have finished, while higher-indexed jobs
 * are still executing.
 */

#ifndef XUI_EXEC_SWEEP_HH
#define XUI_EXEC_SWEEP_HH

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <mutex>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "exec/thread_pool.hh"

namespace xui::exec
{

/** Worker count of `--jobs 0` / unspecified: one per hardware
 *  thread, never less than 1. */
unsigned hardwareJobs();

/** Map a requested job count to an actual one (0 means auto). */
unsigned effectiveJobs(unsigned requested);

/**
 * Strict `--jobs N` parsing: accepts only a non-empty all-digit
 * value in [1, 1024]. Rejects 0 (use auto-detection by omitting the
 * flag instead), signs, suffixes, and overflow.
 * @return false on malformed input (`out` untouched).
 */
bool parseJobs(const char *text, unsigned &jobs);

/**
 * Run `n` independent jobs on up to `jobs` threads and reduce the
 * results in job-index order on the calling thread (see file
 * comment for the determinism contract). An exception thrown by a
 * job is rethrown to the caller from the lowest-indexed failing
 * job, after every in-flight job has drained.
 */
template <typename RunFn, typename ReduceFn>
void
sweepReduce(std::size_t n, unsigned jobs, RunFn &&run,
            ReduceFn &&reduce)
{
    using R = std::invoke_result_t<RunFn &, std::size_t>;
    jobs = effectiveJobs(jobs);
    if (jobs <= 1 || n <= 1) {
        // Legacy serial path: no pool, no threads, no locks.
        for (std::size_t i = 0; i < n; ++i)
            reduce(i, run(i));
        return;
    }

    struct Slot
    {
        std::optional<R> result;
        std::exception_ptr error;
    };
    std::vector<Slot> slots(n);
    std::vector<char> done(n, 0);
    std::mutex mu;
    std::condition_variable done_cv;

    {
        ThreadPool pool(static_cast<unsigned>(
            std::min<std::size_t>(jobs, n)));
        for (std::size_t i = 0; i < n; ++i) {
            pool.submit([&, i] {
                Slot s;
                try {
                    s.result.emplace(run(i));
                } catch (...) {
                    s.error = std::current_exception();
                }
                {
                    std::lock_guard<std::mutex> lk(mu);
                    slots[i] = std::move(s);
                    done[i] = 1;
                }
                done_cv.notify_all();
            });
        }
        for (std::size_t i = 0; i < n; ++i) {
            Slot s;
            {
                std::unique_lock<std::mutex> lk(mu);
                done_cv.wait(lk, [&] { return done[i] != 0; });
                s = std::move(slots[i]);
            }
            if (s.error) {
                pool.waitIdle();
                std::rethrow_exception(s.error);
            }
            reduce(i, std::move(*s.result));
        }
        pool.waitIdle();
    }
}

/**
 * Fan out `n` jobs and return their results in job-index order.
 * Requires the result type to be default-constructible (every
 * result struct in this repo is).
 */
template <typename RunFn>
auto
sweep(std::size_t n, unsigned jobs, RunFn &&run)
    -> std::vector<std::invoke_result_t<RunFn &, std::size_t>>
{
    using R = std::invoke_result_t<RunFn &, std::size_t>;
    std::vector<R> results(n);
    sweepReduce(n, jobs, run,
                [&results](std::size_t i, R &&r) {
                    results[i] = std::move(r);
                });
    return results;
}

} // namespace xui::exec

#endif // XUI_EXEC_SWEEP_HH
