#include "exec/thread_pool.hh"

#include <utility>

namespace xui::exec
{

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = 1;
    queues_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        queues_.push_back(std::make_unique<TaskQueue>());
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    // The push and the notify must happen under mu_: a worker checks
    // anyQueued() under mu_ and atomically blocks on wake_ releasing
    // it, so publishing the task while holding mu_ guarantees every
    // worker that saw empty queues is already blocked when the
    // notification fires (no lost wakeup).
    std::lock_guard<std::mutex> lk(mu_);
    const std::size_t target = nextQueue_++ % queues_.size();
    ++pending_;
    {
        std::lock_guard<std::mutex> qlk(queues_[target]->mu);
        queues_[target]->tasks.push_back(std::move(task));
    }
    wake_.notify_one();
}

void
ThreadPool::waitIdle()
{
    std::unique_lock<std::mutex> lk(mu_);
    idle_.wait(lk, [this] { return pending_ == 0; });
}

bool
ThreadPool::popOwn(unsigned self, std::function<void()> &out)
{
    TaskQueue &q = *queues_[self];
    std::lock_guard<std::mutex> lk(q.mu);
    if (q.tasks.empty())
        return false;
    out = std::move(q.tasks.front());
    q.tasks.pop_front();
    return true;
}

bool
ThreadPool::stealOther(unsigned self, std::function<void()> &out)
{
    const std::size_t n = queues_.size();
    for (std::size_t k = 1; k < n; ++k) {
        TaskQueue &victim = *queues_[(self + k) % n];
        std::lock_guard<std::mutex> lk(victim.mu);
        if (victim.tasks.empty())
            continue;
        out = std::move(victim.tasks.back());
        victim.tasks.pop_back();
        return true;
    }
    return false;
}

bool
ThreadPool::anyQueued()
{
    for (auto &q : queues_) {
        std::lock_guard<std::mutex> lk(q->mu);
        if (!q->tasks.empty())
            return true;
    }
    return false;
}

void
ThreadPool::workerLoop(unsigned self)
{
    for (;;) {
        std::function<void()> task;
        if (popOwn(self, task) || stealOther(self, task)) {
            task();
            std::lock_guard<std::mutex> lk(mu_);
            if (--pending_ == 0)
                idle_.notify_all();
            continue;
        }
        std::unique_lock<std::mutex> lk(mu_);
        wake_.wait(lk, [this] { return stop_ || anyQueued(); });
        if (stop_ && !anyQueued())
            return;
    }
}

} // namespace xui::exec
