#include "exec/sweep.hh"

#include <cctype>
#include <thread>

namespace xui::exec
{

unsigned
hardwareJobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

unsigned
effectiveJobs(unsigned requested)
{
    return requested == 0 ? hardwareJobs() : requested;
}

bool
parseJobs(const char *text, unsigned &jobs)
{
    if (text == nullptr || *text == '\0')
        return false;
    unsigned long value = 0;
    for (const char *p = text; *p != '\0'; ++p) {
        if (!std::isdigit(static_cast<unsigned char>(*p)))
            return false;
        value = value * 10 + static_cast<unsigned long>(*p - '0');
        if (value > 1024)
            return false;
    }
    if (value == 0)
        return false;
    jobs = static_cast<unsigned>(value);
    return true;
}

} // namespace xui::exec
