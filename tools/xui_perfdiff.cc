/**
 * @file
 * CLI wrapper for the perf-regression diff (src/obs/perfdiff.hh):
 * compares two --metrics-json / BENCH_*.json snapshots under
 * per-metric tolerance rules and exits non-zero on regression —
 * CI's perf guard over the committed bench references.
 */

#include "obs/perfdiff.hh"

int
main(int argc, char **argv)
{
    return xui::perfdiffMain(argc, argv);
}
