/**
 * @file
 * xui_verify — the standalone verification driver.
 *
 * Fuzzes N random programs across K system seeds and, for every
 * (program, seed) pair:
 *
 *  - runs the double-run determinism check (identical full timing
 *    digests from identical seeds);
 *  - runs the three-way delivery-mode differential (flush / drain /
 *    tracked must retire identical main-code commit streams, lose
 *    no interrupts, and respect the Fig. 2 latency ordering);
 *  - checks cross-seed architectural equivalence (different system
 *    seeds perturb timing, never the committed program).
 *
 * Exit status is 0 iff every check passed, so the driver doubles as
 * the regression backstop for performance PRs: any change that
 * perturbs architectural behaviour, loses an interrupt, or breaks
 * determinism fails the run.
 *
 * Golden traces: --record FILE writes the binary trace of one
 * scenario; --replay FILE re-runs the same scenario and reports the
 * first divergence from the recorded stream.
 *
 * Observability: --metrics-json FILE / --trace-json FILE export one
 * instrumented scenario's metrics snapshot and Chrome trace (load at
 * https://ui.perfetto.dev) alongside whatever else the run does.
 *
 * Parallelism: --jobs N fans the (program, seed) grid out across N
 * worker threads (src/exec sweep engine; 0/unset = one per hardware
 * thread, 1 = the legacy serial path). Every job owns its own
 * simulated system, so the summary — counts, latency means, failure
 * list and its order — is bit-identical for every N.
 *
 * Checkpoint round-trip: --roundtrip sweeps the 96-row golden
 * corpus (32 seeds x 3 delivery strategies) proving that each row,
 * interrupted at its half-way cycle and resumed from a snapshot, is
 * bit-identical to the uninterrupted run; --snapshot-dir DIR
 * additionally drives every row's checkpoint through the on-disk
 * crash-consistent snapshot engine. --version prints the build
 * provenance stamped into snapshot headers.
 *
 * Usage:
 *   xui_verify [--programs N] [--seeds K] [--insts M]
 *              [--timer-us U] [--safepoints] [--quiet] [--jobs N]
 *              [--record FILE | --replay FILE]
 *              [--record-seed S]
 *              [--roundtrip] [--snapshot-dir DIR]
 *              [--metrics-json FILE] [--trace-json FILE]
 *              [--version]
 */

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/build_info.hh"
#include "ckpt/snapshot.hh"
#include "exec/sweep.hh"
#include "obs/session.hh"
#include "obs/trace_export.hh"
#include "verify/corpus.hh"
#include "verify/roundtrip.hh"
#include "verify/scenario.hh"

using namespace xui;

namespace
{

struct Options
{
    std::uint64_t programs = 20;
    std::uint64_t seeds = 2;
    std::uint64_t insts = 20000;
    double timerUs = 2.0;
    bool safepoints = false;
    bool quiet = false;
    std::string recordPath;
    std::string replayPath;
    std::uint64_t recordSeed = 1;
    std::string metricsJson;
    std::string traceJson;
    /** Sweep worker threads (0 = one per hardware thread). */
    unsigned jobs = 0;
    /** `--roundtrip`: golden-corpus checkpoint round-trip sweep. */
    bool roundtrip = false;
    /** `--snapshot-dir DIR`: on-disk snapshots for --roundtrip. */
    std::string snapshotDir;
};

void
usage(const char *argv0)
{
    std::cerr
        << "usage: " << argv0
        << " [--programs N] [--seeds K] [--insts M] [--timer-us U]\n"
        << "       [--safepoints] [--quiet] [--jobs N]\n"
        << "       [--record FILE | --replay FILE] "
        << "[--record-seed S]\n"
        << "       [--roundtrip] [--snapshot-dir DIR]\n"
        << "       [--metrics-json FILE] [--trace-json FILE]\n"
        << "       [--version]\n";
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        auto need = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << flag << " needs a value\n";
                return nullptr;
            }
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--programs") == 0) {
            const char *v = need("--programs");
            if (!v)
                return false;
            opt.programs = std::strtoull(v, nullptr, 10);
        } else if (std::strcmp(argv[i], "--seeds") == 0) {
            const char *v = need("--seeds");
            if (!v)
                return false;
            opt.seeds = std::strtoull(v, nullptr, 10);
        } else if (std::strcmp(argv[i], "--insts") == 0) {
            const char *v = need("--insts");
            if (!v)
                return false;
            opt.insts = std::strtoull(v, nullptr, 10);
        } else if (std::strcmp(argv[i], "--timer-us") == 0) {
            const char *v = need("--timer-us");
            if (!v)
                return false;
            opt.timerUs = std::strtod(v, nullptr);
        } else if (std::strcmp(argv[i], "--safepoints") == 0) {
            opt.safepoints = true;
        } else if (std::strcmp(argv[i], "--quiet") == 0) {
            opt.quiet = true;
        } else if (std::strcmp(argv[i], "--record") == 0) {
            const char *v = need("--record");
            if (!v)
                return false;
            opt.recordPath = v;
        } else if (std::strcmp(argv[i], "--replay") == 0) {
            const char *v = need("--replay");
            if (!v)
                return false;
            opt.replayPath = v;
        } else if (std::strcmp(argv[i], "--record-seed") == 0) {
            const char *v = need("--record-seed");
            if (!v)
                return false;
            opt.recordSeed = std::strtoull(v, nullptr, 10);
        } else if (std::strcmp(argv[i], "--metrics-json") == 0) {
            const char *v = need("--metrics-json");
            if (!v)
                return false;
            opt.metricsJson = v;
        } else if (std::strcmp(argv[i], "--trace-json") == 0) {
            const char *v = need("--trace-json");
            if (!v)
                return false;
            opt.traceJson = v;
        } else if (std::strcmp(argv[i], "--roundtrip") == 0) {
            opt.roundtrip = true;
        } else if (std::strcmp(argv[i], "--snapshot-dir") == 0) {
            const char *v = need("--snapshot-dir");
            if (!v)
                return false;
            opt.snapshotDir = v;
        } else if (std::strcmp(argv[i], "--version") == 0) {
            std::cout << "xui_verify " << ckpt::kBuildGitSha << " ("
                      << ckpt::kBuildType << "), snapshot format "
                      << ckpt::kFormatVersion << '\n';
            std::exit(0);
        } else if (std::strcmp(argv[i], "--jobs") == 0) {
            const char *v = need("--jobs");
            if (!v)
                return false;
            if (!exec::parseJobs(v, opt.jobs)) {
                std::cerr << "--jobs needs an integer >= 1, got '"
                          << v << "'\n";
                usage(argv[0]);
                return false;
            }
        } else if (std::strcmp(argv[i], "--help") == 0 ||
                   std::strcmp(argv[i], "-h") == 0) {
            usage(argv[0]);
            std::exit(0);
        } else {
            std::cerr << "unknown flag: " << argv[i] << '\n';
            usage(argv[0]);
            return false;
        }
    }
    return true;
}

ScenarioConfig
goldenScenario(const Options &opt)
{
    ScenarioConfig cfg;
    cfg.programSeed = opt.recordSeed;
    cfg.systemSeed = opt.recordSeed;
    cfg.strategy = DeliveryStrategy::Tracked;
    cfg.program.deterministicControl = true;
    cfg.timerPeriod = usToCycles(opt.timerUs);
    cfg.targetInsts = opt.insts;
    return cfg;
}

int
recordGolden(const Options &opt)
{
    TraceLog log;
    ScenarioResult r = runScenario(goldenScenario(opt), &log);
    if (!log.saveFile(opt.recordPath)) {
        std::cerr << "failed to write " << opt.recordPath << '\n';
        return 1;
    }
    std::cout << "recorded " << log.size() << " events, digest 0x"
              << std::hex << log.digest() << std::dec << " ("
              << r.committedInsts << " insts, " << r.delivered
              << " deliveries) to " << opt.recordPath << '\n';
    return 0;
}

int
replayGolden(const Options &opt)
{
    TraceLog golden;
    if (!golden.loadFile(opt.replayPath)) {
        std::cerr << "failed to load " << opt.replayPath << '\n';
        return 1;
    }
    ReplayTracer replay(golden);
    runScenario(goldenScenario(opt), nullptr, &replay);
    if (!replay.ok()) {
        std::cerr << "REPLAY FAIL: " << replay.message() << '\n';
        return 1;
    }
    std::cout << "replay OK: " << replay.received()
              << " events matched the golden trace\n";
    return 0;
}

/** Golden-corpus checkpoint round-trip sweep (--roundtrip). */
int
runRoundTripMode(const Options &opt)
{
    if (!opt.snapshotDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(opt.snapshotDir, ec);
        if (ec) {
            std::cerr << "cannot create " << opt.snapshotDir << ": "
                      << ec.message() << '\n';
            return 2;
        }
    }
    CorpusRoundTripOptions ro;
    ro.jobs = opt.jobs;
    ro.snapshotDir = opt.snapshotDir;
    CorpusRoundTripSummary sum = runCorpusRoundTrip(ro);
    if (!opt.quiet) {
        std::cout << "checkpoint round-trip: " << sum.rows
                  << " corpus rows, " << sum.passed
                  << " bit-identical ("
                  << (opt.snapshotDir.empty()
                          ? "in-memory codec"
                          : "on-disk snapshot engine")
                  << ")\n";
    }
    for (const auto &f : sum.failures)
        std::cout << "FAIL " << f << '\n';
    return sum.ok() ? 0 : 1;
}

/**
 * Run one instrumented golden scenario and write the requested
 * metrics / trace exports. No-op (exit 0) when neither flag is set.
 */
int
exportObservability(const Options &opt)
{
    ObsSession obs(opt.metricsJson, opt.traceJson);
    if (!obs.enabled())
        return 0;
    std::unique_ptr<PipelineTraceSink> sink;
    if (obs.trace()) {
        obs.trace()->nameProcess(kTracePidUarch, "uarch");
        obs.trace()->nameThread(kTracePidUarch, 0, "core0");
        sink = std::make_unique<PipelineTraceSink>(*obs.trace(), 0);
    }
    runScenario(goldenScenario(opt), nullptr, sink.get(),
                obs.spanTracker());
    return obs.finish();
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt))
        return 2;

    if (!opt.recordPath.empty())
        return recordGolden(opt);
    if (!opt.replayPath.empty())
        return replayGolden(opt);
    if (opt.roundtrip)
        return runRoundTripMode(opt);

    const int obs_rc = exportObservability(opt);

    CorpusOptions copt;
    copt.programs = opt.programs;
    copt.seeds = opt.seeds;
    copt.insts = opt.insts;
    copt.timerUs = opt.timerUs;
    copt.safepoints = opt.safepoints;
    copt.jobs = opt.jobs;

    CorpusSummary sum = runVerifyCorpus(copt);
    std::cout << renderCorpusSummary(copt, sum, opt.quiet);
    if (!sum.ok())
        return 1;
    return obs_rc;
}
