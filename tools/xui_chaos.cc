/**
 * @file
 * xui_chaos — the deterministic chaos sweep driver.
 *
 * Fans a (scenario x fault-seed) grid across worker threads. Each
 * cell builds its own simulated system, generates a fault schedule
 * from its seed, runs the scenario under a watchdog with the
 * delivery ledger attached, and checks the delivery invariants
 * (src/fault/invariants.hh). Failing cells are shrunk greedily to a
 * 1-minimal directive list and reported with a ready-to-paste replay
 * command; --out-dir additionally writes one .repro file per
 * failure (the CI artifact).
 *
 * Every cell is a pure function of (scenario, seed, schedule,
 * flags), so the grid summary and the failure list are bit-identical
 * for every --jobs value, and any reported failure replays exactly:
 *
 *   xui_chaos --replay --scenario kbtimer_periodic --seed 7 \
 *             --schedule "kbtimer_fire:3:drop:0"
 *
 * --no-recovery disables the kernel's graceful-degradation paths
 * (UPID rescan with backoff) and the final resume-drain, modelling a
 * receiver that never comes back: the way to demonstrate that the
 * invariants catch unrecovered loss (expect failures; pair with
 * --out-dir to collect the shrunk reproducers).
 *
 * Checkpoint/restore wiring (DESIGN.md §14): --checkpoint-every N
 * snapshots each cell every N fired events; with --ckpt-dir the
 * snapshots are crash-consistent on-disk generation sets that
 * --restore FILE resumes from (provenance-strict — a snapshot from a
 * different binary is refused, see --version). --crash-at K
 * simulates an in-process kill after K events; recovery restores the
 * newest valid generation and the resumed run must match the
 * crash-free one bit for bit.
 *
 * Usage:
 *   xui_chaos [--scenario NAME|all] [--seeds N] [--seed-base S]
 *             [--jobs N] [--directives N] [--horizon CYCLES]
 *             [--budget EVENTS] [--no-recovery] [--no-shrink]
 *             [--checkpoint-every N] [--ckpt-dir DIR]
 *             [--out-dir DIR] [--quiet] [--list] [--version]
 *   xui_chaos --replay --scenario NAME --seed S --schedule TEXT
 *             [--checkpoint-every N] [--crash-at K]
 *             [--ckpt-dir DIR] [--restore FILE]
 */

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "ckpt/build_info.hh"
#include "ckpt/snapshot.hh"
#include "exec/sweep.hh"
#include "fault/chaos.hh"
#include "fault/fault.hh"

using namespace xui;

namespace
{

struct Options
{
    std::string scenario = "all";
    unsigned seeds = 40;
    std::uint64_t seedBase = 1;
    unsigned jobs = 1;
    unsigned directives = 8;
    Cycles horizon = 200000;
    std::uint64_t budget = 2000000;
    bool recovery = true;
    bool shrinkFailures = true;
    bool quiet = false;
    bool list = false;
    bool replay = false;
    std::uint64_t seed = 1;
    std::string schedule;
    std::string outDir;
    std::uint64_t checkpointEvery = 0;
    std::uint64_t crashAt = 0;
    std::string ckptDir;
    std::string restorePath;
};

void
usage(const char *argv0)
{
    std::cerr
        << "usage: " << argv0
        << " [--scenario NAME|all] [--seeds N] [--seed-base S]\n"
        << "       [--jobs N] [--directives N] [--horizon CYCLES]\n"
        << "       [--budget EVENTS] [--no-recovery] [--no-shrink]\n"
        << "       [--checkpoint-every N] [--ckpt-dir DIR]\n"
        << "       [--out-dir DIR] [--quiet] [--list] [--version]\n"
        << "       " << argv0
        << " --replay --scenario NAME --seed S --schedule TEXT\n"
        << "       [--checkpoint-every N] [--crash-at K]\n"
        << "       [--ckpt-dir DIR] [--restore FILE]\n";
}

/** Digits only, no sign/whitespace/trailing junk, must fit u64. */
bool
parseU64Strict(const char *s, std::uint64_t &out)
{
    if (*s == '\0')
        return false;
    std::uint64_t v = 0;
    for (const char *p = s; *p != '\0'; ++p) {
        if (*p < '0' || *p > '9')
            return false;
        std::uint64_t d = static_cast<std::uint64_t>(*p - '0');
        if (v > (~std::uint64_t(0) - d) / 10)
            return false;
        v = v * 10 + d;
    }
    out = v;
    return true;
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        auto need = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << flag << " needs a value\n";
                return nullptr;
            }
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--scenario") == 0) {
            const char *v = need("--scenario");
            if (!v)
                return false;
            opt.scenario = v;
        } else if (std::strcmp(argv[i], "--seeds") == 0) {
            const char *v = need("--seeds");
            if (!v)
                return false;
            opt.seeds =
                static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (std::strcmp(argv[i], "--seed-base") == 0) {
            const char *v = need("--seed-base");
            if (!v)
                return false;
            opt.seedBase = std::strtoull(v, nullptr, 10);
        } else if (std::strcmp(argv[i], "--seed") == 0) {
            const char *v = need("--seed");
            if (!v)
                return false;
            opt.seed = std::strtoull(v, nullptr, 10);
        } else if (std::strcmp(argv[i], "--jobs") == 0) {
            const char *v = need("--jobs");
            if (!v)
                return false;
            if (!exec::parseJobs(v, opt.jobs)) {
                std::cerr << "--jobs needs an integer >= 1, got '"
                          << v << "'\n";
                return false;
            }
        } else if (std::strcmp(argv[i], "--directives") == 0) {
            const char *v = need("--directives");
            if (!v)
                return false;
            opt.directives =
                static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (std::strcmp(argv[i], "--horizon") == 0) {
            const char *v = need("--horizon");
            if (!v)
                return false;
            opt.horizon = std::strtoull(v, nullptr, 10);
        } else if (std::strcmp(argv[i], "--budget") == 0) {
            const char *v = need("--budget");
            if (!v)
                return false;
            opt.budget = std::strtoull(v, nullptr, 10);
        } else if (std::strcmp(argv[i], "--no-recovery") == 0) {
            opt.recovery = false;
        } else if (std::strcmp(argv[i], "--no-shrink") == 0) {
            opt.shrinkFailures = false;
        } else if (std::strcmp(argv[i], "--schedule") == 0) {
            const char *v = need("--schedule");
            if (!v)
                return false;
            opt.schedule = v;
        } else if (std::strcmp(argv[i], "--out-dir") == 0) {
            const char *v = need("--out-dir");
            if (!v)
                return false;
            opt.outDir = v;
        } else if (std::strcmp(argv[i], "--checkpoint-every") == 0) {
            const char *v = need("--checkpoint-every");
            if (!v)
                return false;
            if (!parseU64Strict(v, opt.checkpointEvery) ||
                opt.checkpointEvery == 0) {
                std::cerr << "--checkpoint-every needs an integer "
                             ">= 1, got '"
                          << v << "'\n";
                return false;
            }
        } else if (std::strcmp(argv[i], "--crash-at") == 0) {
            const char *v = need("--crash-at");
            if (!v)
                return false;
            if (!parseU64Strict(v, opt.crashAt) ||
                opt.crashAt == 0) {
                std::cerr << "--crash-at needs an integer >= 1, "
                             "got '"
                          << v << "'\n";
                return false;
            }
        } else if (std::strcmp(argv[i], "--ckpt-dir") == 0) {
            const char *v = need("--ckpt-dir");
            if (!v)
                return false;
            opt.ckptDir = v;
        } else if (std::strcmp(argv[i], "--restore") == 0) {
            const char *v = need("--restore");
            if (!v)
                return false;
            opt.restorePath = v;
        } else if (std::strcmp(argv[i], "--version") == 0) {
            std::cout << "xui_chaos " << ckpt::kBuildGitSha << " ("
                      << ckpt::kBuildType << "), snapshot format "
                      << ckpt::kFormatVersion << '\n';
            std::exit(0);
        } else if (std::strcmp(argv[i], "--replay") == 0) {
            opt.replay = true;
        } else if (std::strcmp(argv[i], "--quiet") == 0) {
            opt.quiet = true;
        } else if (std::strcmp(argv[i], "--list") == 0) {
            opt.list = true;
        } else if (std::strcmp(argv[i], "--help") == 0 ||
                   std::strcmp(argv[i], "-h") == 0) {
            usage(argv[0]);
            std::exit(0);
        } else {
            std::cerr << "unknown flag: " << argv[i] << '\n';
            usage(argv[0]);
            return false;
        }
    }
    return true;
}

std::string
replayCommand(const chaos::CellReport &rep, const Options &opt)
{
    std::string cmd = "xui_chaos --replay --scenario ";
    cmd += chaos::scenarioName(rep.kind);
    cmd += " --seed " + std::to_string(rep.seed);
    cmd += " --schedule \"" + rep.shrunk.encode() + "\"";
    if (!opt.recovery)
        cmd += " --no-recovery";
    if (opt.horizon != 200000)
        cmd += " --horizon " + std::to_string(opt.horizon);
    return cmd;
}

void
printCell(const chaos::CellResult &r)
{
    std::cout << "  posted " << r.posted << ", delivered "
              << r.delivered << ", abandoned " << r.abandoned
              << ", injected " << r.injected << ", handler runs "
              << r.handlerRuns << "\n  recovery: rescan "
              << r.recoveredRescan << ", timer-late "
              << r.recoveredTimerLate << ", fwd-parked "
              << r.recoveredFwdParked << ", spurious-scans "
              << r.spuriousScans;
    if (r.senderRetries != 0 || r.senderFallbacks != 0)
        std::cout << ", sender retries " << r.senderRetries
                  << " fallbacks " << r.senderFallbacks;
    if (r.modFlushes != 0 || r.modCoalesced != 0 ||
        r.modFlushDropped != 0 || r.modFlushDelayed != 0)
        std::cout << "\n  moderation: coalesced " << r.modCoalesced
                  << ", flushes " << r.modFlushes
                  << " (dropped " << r.modFlushDropped
                  << ", delayed " << r.modFlushDelayed
                  << "), coalesced-satisfied "
                  << r.coalescedSatisfied;
    if (r.ckptSnapshots != 0 || r.rollbackRetries != 0 ||
        r.crashRecovered)
        std::cout << "\n  checkpoint: snapshots " << r.ckptSnapshots
                  << ", corrupt-detected " << r.ckptCorruptDetected
                  << ", fallbacks " << r.ckptFallbacks
                  << ", rollback retries " << r.rollbackRetries
                  << " (replayed " << r.rollbackEventsReplayed
                  << " events)"
                  << (r.crashRecovered ? ", crash recovered" : "");
    std::cout << '\n';
}

int
runReplay(const Options &opt)
{
    chaos::CellConfig cc;
    if (!chaos::parseScenario(opt.scenario, cc.kind)) {
        std::cerr << "--replay needs a concrete --scenario name\n";
        return 2;
    }
    if (!fault::Schedule::decode(opt.schedule, cc.schedule)) {
        std::cerr << "malformed --schedule '" << opt.schedule
                  << "'\n";
        return 2;
    }
    cc.seed = opt.seed;
    cc.recovery = opt.recovery;
    cc.finalDrain = opt.recovery;
    cc.horizon = opt.horizon;
    cc.eventBudget = opt.budget;
    cc.ckptEvery = opt.checkpointEvery;
    cc.crashAtEvent = opt.crashAt;
    cc.restoreFrom = opt.restorePath;
    if (!opt.ckptDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(opt.ckptDir, ec);
        if (ec) {
            std::cerr << "cannot create " << opt.ckptDir << ": "
                      << ec.message() << '\n';
            return 2;
        }
        cc.ckptPathBase = opt.ckptDir + "/replay_" +
                          std::string(chaos::scenarioName(cc.kind)) +
                          "_" + std::to_string(cc.seed) + ".ckpt";
        // Snapshots written on explicit request are the product:
        // keep them so a later --restore can resume from them.
        cc.ckptKeepFiles = true;
    }

    chaos::CellResult r = chaos::runCell(cc);
    std::cout << "replay " << chaos::scenarioName(cc.kind)
              << " seed " << cc.seed << " schedule \""
              << cc.schedule.encode() << "\": "
              << (r.passed ? "PASS" : "FAIL") << '\n';
    printCell(r);
    for (const auto &v : r.violations)
        std::cout << "  violation: " << v << '\n';
    return r.passed ? 0 : 2;
}

int
runGridMain(const Options &opt)
{
    chaos::GridConfig gc;
    if (opt.scenario != "all") {
        chaos::ScenarioKind k;
        if (!chaos::parseScenario(opt.scenario, k)) {
            std::cerr << "unknown scenario '" << opt.scenario
                      << "' (try --list)\n";
            return 2;
        }
        gc.kinds.push_back(k);
    }
    gc.seeds = opt.seeds;
    gc.seedBase = opt.seedBase;
    gc.jobs = opt.jobs;
    gc.schedule.directives = opt.directives;
    gc.recovery = opt.recovery;
    gc.finalDrain = opt.recovery;
    gc.shrinkFailures = opt.shrinkFailures;
    gc.horizon = opt.horizon;
    gc.eventBudget = opt.budget;
    gc.ckptDir = opt.ckptDir;
    gc.ckptEvery = opt.checkpointEvery;
    if (!opt.ckptDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(opt.ckptDir, ec);
        if (ec) {
            std::cerr << "cannot create " << opt.ckptDir << ": "
                      << ec.message() << '\n';
            return 2;
        }
    }

    chaos::GridOutcome out = chaos::runGrid(gc);

    if (!opt.quiet) {
        std::cout << "chaos grid: " << out.cells << " cells, "
                  << out.injected << " faults injected, "
                  << out.posted << " posted / " << out.delivered
                  << " delivered / " << out.abandoned
                  << " abandoned\n";
    }
    if (!opt.outDir.empty() && !out.failures.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(opt.outDir, ec);
        if (ec)
            std::cerr << "cannot create " << opt.outDir << ": "
                      << ec.message() << '\n';
    }
    for (const auto &rep : out.failures) {
        std::cout << "FAIL " << chaos::scenarioName(rep.kind)
                  << " seed " << rep.seed << "\n  schedule:  "
                  << rep.schedule.encode() << "\n  shrunk to: "
                  << rep.shrunk.encode() << "\n  replay:    "
                  << replayCommand(rep, opt) << '\n';
        for (const auto &v : rep.result.violations)
            std::cout << "  violation: " << v << '\n';
        if (!opt.outDir.empty()) {
            std::string path =
                opt.outDir + "/" +
                std::string(chaos::scenarioName(rep.kind)) + "-" +
                std::to_string(rep.seed) + ".repro";
            std::ofstream f(path);
            // Provenance stamp: replaying a .repro against a
            // different binary is the classic silent-divergence
            // trap, so record the producer (cf. --version).
            f << "# built-by: " << ckpt::kBuildGitSha << " ("
              << ckpt::kBuildType << "), snapshot format "
              << ckpt::kFormatVersion << '\n';
            f << replayCommand(rep, opt) << '\n';
            for (const auto &v : rep.result.violations)
                f << "# " << v << '\n';
        }
    }
    if (!opt.quiet) {
        std::cout << (out.failed == 0 ? "all cells passed"
                                      : "FAILED cells: ")
                  << (out.failed == 0 ? std::string()
                                      : std::to_string(out.failed))
                  << '\n';
    }
    return out.failed == 0 ? 0 : 2;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    // Usage errors exit 2, matching the bench convention, so CI can
    // tell "bad invocation" apart from "cells failed" (also 2 — both
    // mean the run produced no trustworthy result).
    if (!parseArgs(argc, argv, opt))
        return 2;
    if (!opt.restorePath.empty() && !opt.replay) {
        std::cerr << "--restore is a --replay flag (a snapshot "
                     "resumes one cell, not a grid)\n";
        return 2;
    }
    if (opt.crashAt != 0 && !opt.replay) {
        std::cerr << "--crash-at is a --replay flag (grid cells "
                     "pick seed-determined crash points)\n";
        return 2;
    }
    if (opt.list) {
        for (std::size_t i = 0; i < chaos::kNumScenarios; ++i)
            std::cout << chaos::scenarioName(
                             static_cast<chaos::ScenarioKind>(i))
                      << '\n';
        return 0;
    }
    if (opt.replay)
        return runReplay(opt);
    return runGridMain(opt);
}
