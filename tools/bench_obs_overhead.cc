/**
 * @file
 * Observability-overhead smoke: pins the "zero cost when detached"
 * claim for the pipeline-pressure profiler (src/obs/sampler.hh).
 *
 * Runs the same deterministic scenario twice per trial, in-process
 * and interleaved to cancel host drift:
 *
 *   A  detached  — no cycle hook installed (the shipping default);
 *   B  attached  — a profiler probe installed with sampling AND tax
 *                  off, so the hook's fast path (two integer
 *                  compares against the absolute liveSpans /
 *                  nextSampleAt marks, no virtual call) runs every
 *                  cycle but never fires.
 *
 * B's cost is a strict upper bound on the cost the hook adds to an
 * unprofiled run: the detached path is B minus even the compares.
 * The gate fails (exit 1) when the median attached slowdown exceeds
 * 2% — the budget CI grants the whole observation layer.
 *
 * Usage: bench_obs_overhead [--quick] [--trials N]
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <vector>

#include "ckpt/build_info.hh"
#include "ckpt/snapshot.hh"
#include "obs/sampler.hh"
#include "uarch/uarch_system.hh"
#include "verify/scenario.hh"

namespace
{

constexpr double kBudgetPct = 2.0;

double
runOnce(const xui::ScenarioConfig &cfg, bool attached)
{
    using clock = std::chrono::steady_clock;
    // Sampling off (stride 0) + tax off: the hook is installed but
    // its onCycle() never fires — we time the dead branch itself.
    xui::ProfileConfig pc;
    xui::PipelinePressureProfiler prof(pc, nullptr, nullptr);
    std::function<void(xui::UarchSystem &)> pre;
    if (attached)
        pre = [&prof](xui::UarchSystem &sys) {
            prof.attachCore(sys.core(0));
        };
    auto t0 = clock::now();
    xui::ScenarioResult r =
        xui::runScenario(cfg, nullptr, nullptr,
                         attached ? &prof : nullptr, pre);
    auto t1 = clock::now();
    if (!r.ok()) {
        std::fprintf(stderr,
                     "bench_obs_overhead: scenario violation: %s\n",
                     r.violations.front().c_str());
        std::exit(2);
    }
    return std::chrono::duration<double>(t1 - t0).count();
}

double
median(std::vector<double> v)
{
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    unsigned trials = 5;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--trials") == 0 &&
                   i + 1 < argc) {
            trials = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
            if (trials == 0)
                trials = 1;
        } else if (std::strcmp(argv[i], "--version") == 0) {
            std::printf("%s %s (%s), snapshot format %u\n",
                        argv[0], xui::ckpt::kBuildGitSha,
                        xui::ckpt::kBuildType,
                        static_cast<unsigned>(
                            xui::ckpt::kFormatVersion));
            return 0;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--quick] [--trials N] "
                         "[--version]\n",
                         argv[0]);
            return 2;
        }
    }

    xui::ScenarioConfig cfg;
    cfg.programSeed = 7;
    cfg.systemSeed = 7 * 1000003 + 17;
    cfg.timerPeriod = 600;
    cfg.targetInsts = quick ? 20000 : 100000;
    cfg.extraCycles = 4000;

    // Warm-up run (page in code + allocator state) then interleaved
    // A/B trials; medians cancel one-off host noise.
    runOnce(cfg, false);
    std::vector<double> detached, attached;
    for (unsigned t = 0; t < trials; ++t) {
        detached.push_back(runOnce(cfg, false));
        attached.push_back(runOnce(cfg, true));
    }

    double d = median(detached);
    double a = median(attached);
    double pct = (a - d) / d * 100.0;
    std::printf("bench_obs_overhead: detached %.6fs, attached "
                "(sampling off) %.6fs, delta %+.2f%% (budget "
                "%.1f%%, %u trials)\n",
                d, a, pct, kBudgetPct, trials);
    if (pct > kBudgetPct) {
        std::printf("FAIL: profiling hook costs more than %.1f%% "
                    "with sampling off\n",
                    kBudgetPct);
        return 1;
    }
    std::printf("PASS\n");
    return 0;
}
